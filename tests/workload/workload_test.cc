#include <gtest/gtest.h>

#include "storage/mem_disk.h"
#include "workload/actor.h"
#include "workload/fio.h"
#include "workload/meter.h"

namespace deepnote::workload {
namespace {

using sim::Duration;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Actors

TEST(ActorTest, RunsInGlobalTimeOrder) {
  std::vector<int> order;
  LambdaActor a(SimTime::from_seconds(1), [&](SimTime now) {
    order.push_back(1);
    return now + Duration::from_seconds(3);  // next at 4, 7...
  });
  LambdaActor b(SimTime::from_seconds(2), [&](SimTime now) {
    order.push_back(2);
    return now + Duration::from_seconds(3);  // next at 5, 8...
  });
  ActorScheduler sched;
  sched.add(a);
  sched.add(b);
  sched.run_until(SimTime::from_seconds(6));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(ActorTest, FinishedActorStops) {
  int steps = 0;
  LambdaActor a(SimTime::zero(), [&](SimTime now) {
    ++steps;
    return steps >= 3 ? SimTime::infinity()
                      : now + Duration::from_seconds(1);
  });
  ActorScheduler sched;
  sched.add(a);
  sched.run_until(SimTime::from_seconds(100));
  EXPECT_EQ(steps, 3);
}

TEST(ActorTest, RunUntilReturnsLastStepTime) {
  LambdaActor a(SimTime::from_seconds(1), [&](SimTime now) {
    return now + Duration::from_seconds(10);
  });
  ActorScheduler sched;
  sched.add(a);
  const SimTime last = sched.run_until(SimTime::from_seconds(25));
  EXPECT_EQ(last, SimTime::from_seconds(21));
}

// ---------------------------------------------------------------------------
// WindowMeter

TEST(MeterTest, OnlyCountsInsideWindow) {
  WindowMeter meter(SimTime::from_seconds(10), SimTime::from_seconds(20));
  meter.record_ok(SimTime::from_seconds(5), SimTime::from_seconds(6), 1000);
  meter.record_ok(SimTime::from_seconds(11), SimTime::from_seconds(12),
                  1000);
  meter.record_ok(SimTime::from_seconds(21), SimTime::from_seconds(22),
                  1000);
  EXPECT_EQ(meter.ops(), 1u);
  EXPECT_EQ(meter.bytes(), 1000u);
  EXPECT_DOUBLE_EQ(meter.throughput_mbps(), 0.0001);
}

TEST(MeterTest, UnresponsiveWhenNoOps) {
  WindowMeter meter(SimTime::from_seconds(0), SimTime::from_seconds(10));
  meter.record_error(SimTime::from_seconds(5));
  EXPECT_FALSE(meter.responsive());
  EXPECT_EQ(meter.errors(), 1u);
}

// ---------------------------------------------------------------------------
// FIO on MemDisk

TEST(FioTest, ThroughputMatchesDeviceLatency) {
  // 20 us/op device + 80 us submit = 100 us/op -> 40.96 MB/s at 4 KiB.
  storage::MemDisk disk((1ull << 30) / 512, Duration::from_micros(20));
  FioRunner runner(disk);
  FioJobConfig job;
  job.pattern = IoPattern::kSeqWrite;
  job.submit_overhead = Duration::from_micros(80);
  job.ramp = Duration::from_seconds(1);
  job.duration = Duration::from_seconds(5);
  const FioReport report = runner.run(SimTime::zero(), job);
  EXPECT_NEAR(report.throughput_mbps, 40.96, 0.5);
  ASSERT_TRUE(report.latency_ms.has_value());
  EXPECT_NEAR(*report.latency_ms, 0.1, 0.005);
  EXPECT_EQ(report.ops_errored, 0u);
}

TEST(FioTest, FailingDeviceReportsNoLatency) {
  storage::MemDisk disk((1ull << 30) / 512);
  disk.set_failing(true);
  FioRunner runner(disk);
  FioJobConfig job;
  job.ramp = Duration::from_seconds(0.1);
  job.duration = Duration::from_seconds(1);
  const FioReport report = runner.run(SimTime::zero(), job);
  EXPECT_EQ(report.throughput_mbps, 0.0);
  EXPECT_FALSE(report.latency_ms.has_value());  // the "-" in Table 1
  EXPECT_GT(report.ops_errored, 0u);
}

TEST(FioTest, RandomPatternStaysInSpan) {
  storage::MemDisk disk((1ull << 30) / 512);
  FioRunner runner(disk);
  FioJobConfig job;
  job.pattern = IoPattern::kRandRead;
  job.span_bytes = 1 << 20;
  job.ramp = Duration::from_seconds(0.1);
  job.duration = Duration::from_seconds(1);
  // Must not throw (out-of-range would).
  const FioReport report = runner.run(SimTime::zero(), job);
  EXPECT_GT(report.ops_completed, 0u);
}

TEST(FioTest, ReadAndWritePatterns) {
  storage::MemDisk disk((1ull << 30) / 512);
  FioRunner runner(disk);
  for (auto pattern : {IoPattern::kSeqRead, IoPattern::kSeqWrite,
                       IoPattern::kRandRead, IoPattern::kRandWrite}) {
    FioJobConfig job;
    job.pattern = pattern;
    job.ramp = Duration::from_seconds(0.1);
    job.duration = Duration::from_seconds(0.5);
    const FioReport report = runner.run(SimTime::zero(), job);
    EXPECT_GT(report.throughput_mbps, 0.0);
  }
}

}  // namespace
}  // namespace deepnote::workload
