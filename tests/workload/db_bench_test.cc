// Tests for the db_bench-like workload suite on the full stack
// (MemDisk-backed for speed).
#include <gtest/gtest.h>

#include "storage/extfs.h"
#include "storage/kvdb/db.h"
#include "storage/mem_disk.h"
#include "workload/db_bench.h"

namespace deepnote::workload {
namespace {

using sim::Duration;
using sim::SimTime;

struct BenchFixture {
  storage::MemDisk disk{(1ull << 30) / 512};
  std::unique_ptr<storage::ExtFs> fs;
  std::unique_ptr<storage::kvdb::Db> db;
  SimTime t = SimTime::zero();
  DbBenchConfig cfg;

  BenchFixture() {
    EXPECT_TRUE(storage::ExtFs::mkfs(disk, t).ok());
    auto mount = storage::ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    storage::kvdb::DbConfig db_cfg;
    db_cfg.write_buffer_bytes = 4 << 20;
    auto open = storage::kvdb::Db::open(*fs, mount.done, db_cfg);
    EXPECT_TRUE(open.ok());
    db = std::move(open.db);
    t = open.done;

    cfg.preload_keys = 20000;
    cfg.ramp = Duration::from_seconds(0.5);
    cfg.duration = Duration::from_seconds(3.0);
  }

  DbBench bench() { return DbBench(*fs, *db); }

  void preload() {
    DbBench b = bench();
    t = b.fillseq(t, cfg.preload_keys, cfg);
    ASSERT_FALSE(db->fatal());
    auto fl = db->flush(t);
    ASSERT_TRUE(fl.ok());
    t = fl.done;
  }
};

TEST(DbBenchTest, MakeKeyIsFixedWidthAndOrdered) {
  const auto a = DbBench::make_key(1, 16);
  const auto b = DbBench::make_key(2, 16);
  const auto big = DbBench::make_key(123456789, 16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(big.size(), 16u);
  EXPECT_LT(a, b);
  EXPECT_LT(b, big);
}

TEST(DbBenchTest, FillseqLoadsAllKeys) {
  BenchFixture fx;
  fx.preload();
  auto g = fx.db->get(fx.t, DbBench::make_key(0, fx.cfg.key_bytes));
  EXPECT_TRUE(g.found);
  g = fx.db->get(fx.t, DbBench::make_key(fx.cfg.preload_keys - 1,
                                         fx.cfg.key_bytes));
  EXPECT_TRUE(g.found);
}

TEST(DbBenchTest, ReadRandomFindsPreloadedKeys) {
  BenchFixture fx;
  fx.preload();
  const DbBenchReport report = fx.bench().readrandom(fx.t, fx.cfg);
  EXPECT_GT(report.ops, 1000u);
  EXPECT_GT(report.throughput_mbps, 0.0);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_FALSE(report.db_fatal);
}

TEST(DbBenchTest, ReadWhileWritingMixesActors) {
  BenchFixture fx;
  fx.preload();
  DbBenchConfig cfg = fx.cfg;
  cfg.reader_actors = 2;
  const DbBenchReport report = fx.bench().readwhilewriting(fx.t, cfg);
  EXPECT_GT(report.ops, 1000u);
  // The writer extended the key space beyond the preload.
  EXPECT_GT(fx.db->last_sequence(), fx.cfg.preload_keys);
}

TEST(DbBenchTest, FillRandomGrowsStore) {
  BenchFixture fx;
  fx.preload();
  const std::uint64_t puts_before = fx.db->stats().puts;
  const DbBenchReport report = fx.bench().fillrandom(fx.t, fx.cfg);
  EXPECT_GT(report.ops, 1000u);
  EXPECT_GT(fx.db->stats().puts, puts_before + 1000);
}

TEST(DbBenchTest, OverwriteKeepsKeySpace) {
  BenchFixture fx;
  fx.preload();
  const DbBenchReport report = fx.bench().overwrite(fx.t, fx.cfg);
  EXPECT_GT(report.ops, 1000u);
  // Spot-check: an overwritten key returns the new value shape.
  auto g = fx.db->get(report.end_time, DbBench::make_key(5, 16));
  EXPECT_TRUE(g.found);
}

TEST(DbBenchTest, SeekRandomScansRuns) {
  BenchFixture fx;
  fx.preload();
  const DbBenchReport report = fx.bench().seekrandom(fx.t, fx.cfg, 10);
  EXPECT_GT(report.ops, 100u);
  // Each op moved ~10 entries of ~80 bytes.
  EXPECT_GT(report.throughput_mbps,
            report.ops_per_second * 400 / 1e6);
}

TEST(DbBenchTest, ReportsFatalWhenDeviceDies) {
  BenchFixture fx;
  fx.preload();
  fx.disk.fail_after(50);
  DbBenchConfig cfg = fx.cfg;
  cfg.duration = Duration::from_seconds(10.0);
  const DbBenchReport report = fx.bench().readwhilewriting(fx.t, cfg);
  EXPECT_TRUE(report.db_fatal);
  EXPECT_FALSE(report.fatal_message.empty());
}

}  // namespace
}  // namespace deepnote::workload
