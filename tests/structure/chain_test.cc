#include "structure/chain.h"

#include <gtest/gtest.h>

#include "acoustics/units.h"
#include "structure/mount.h"

namespace deepnote::structure {
namespace {

StructuralChain simple_chain() {
  EnclosureSpec enc;
  enc.material = WallMaterial::hard_plastic();
  enc.mass_law_reference_db = 20.0;
  MountSpec mount;
  mount.broadband_coupling_db = -2.0;
  mount.modes.push_back(Mode{.f0_hz = 680.0, .q = 4.0, .peak_gain_db = 10.0});
  return StructuralChain(Enclosure(enc), Mount(mount));
}

TEST(MountTest, BroadbandCouplingOffResonance) {
  MountSpec spec;
  spec.broadband_coupling_db = -2.0;
  spec.modes.push_back(Mode{.f0_hz = 680.0, .q = 4.0, .peak_gain_db = 10.0});
  Mount mount(spec);
  // At resonance: broadband + modal peak.
  EXPECT_NEAR(mount.coupling_db(680.0), 8.0, 0.2);
  // Far off resonance: broadband only (modal response negative, ignored).
  EXPECT_NEAR(mount.coupling_db(10000.0), -2.0, 0.2);
}

TEST(ChainTest, ComposesEnclosureAndMount) {
  StructuralChain chain = simple_chain();
  const double f = 680.0;
  const double expected = 150.0 -
                          chain.enclosure().transmission_loss_db(f) +
                          chain.mount().coupling_db(f);
  EXPECT_NEAR(chain.drive_spl_db(150.0, f), expected, 1e-9);
}

TEST(ChainTest, ExciteConvertsToPressure) {
  StructuralChain chain = simple_chain();
  acoustics::ToneState tone{680.0, 150.0, true};
  const DriveExcitation exc = chain.excite(tone);
  EXPECT_TRUE(exc.active);
  EXPECT_EQ(exc.frequency_hz, 680.0);
  const double spl = chain.drive_spl_db(150.0, 680.0);
  EXPECT_NEAR(exc.pressure_pa, acoustics::spl_water_db_to_pa(spl), 1e-9);
}

TEST(ChainTest, InactiveToneYieldsInactiveExcitation) {
  StructuralChain chain = simple_chain();
  EXPECT_FALSE(chain.excite(acoustics::ToneState{}).active);
}

TEST(ChainTest, InsertionLossHookAttenuates) {
  StructuralChain chain = simple_chain();
  const double before = chain.drive_spl_db(150.0, 1000.0);
  chain.set_insertion_loss([](double) { return 12.0; });
  EXPECT_NEAR(chain.drive_spl_db(150.0, 1000.0), before - 12.0, 1e-9);
  chain.set_insertion_loss(nullptr);
  EXPECT_NEAR(chain.drive_spl_db(150.0, 1000.0), before, 1e-9);
}

TEST(ChainTest, FrequencyDependentInsertionLoss) {
  StructuralChain chain = simple_chain();
  const double lo_before = chain.drive_spl_db(150.0, 200.0);
  const double hi_before = chain.drive_spl_db(150.0, 4000.0);
  chain.set_insertion_loss(
      [](double f) { return f > 1000.0 ? 20.0 : 2.0; });
  EXPECT_NEAR(chain.drive_spl_db(150.0, 200.0), lo_before - 2.0, 1e-9);
  EXPECT_NEAR(chain.drive_spl_db(150.0, 4000.0), hi_before - 20.0, 1e-9);
}

}  // namespace
}  // namespace deepnote::structure
