#include "structure/resonator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deepnote::structure {
namespace {

TEST(ModeResponseTest, PeakAtResonanceEqualsConfiguredGain) {
  const Mode m{.f0_hz = 650.0, .q = 5.0, .peak_gain_db = 14.0};
  EXPECT_NEAR(mode_response_db(m, 650.0), 14.0, 1e-9);
}

TEST(ModeResponseTest, StaticResponseIsPeakMinusQ) {
  // Far below resonance, |H| -> 1, i.e. peak_gain - 20 log10(Q).
  const Mode m{.f0_hz = 1000.0, .q = 10.0, .peak_gain_db = 20.0};
  EXPECT_NEAR(mode_response_db(m, 1.0), 20.0 - 20.0, 0.01);
}

TEST(ModeResponseTest, HighFrequencyRollsOffTwelveDbPerOctave) {
  const Mode m{.f0_hz = 500.0, .q = 5.0, .peak_gain_db = 10.0};
  const double at_8k = mode_response_db(m, 8000.0);
  const double at_16k = mode_response_db(m, 16000.0);
  EXPECT_NEAR(at_8k - at_16k, 12.0, 0.3);
}

TEST(ModeResponseTest, HigherQNarrowerPeak) {
  const Mode narrow{.f0_hz = 650.0, .q = 10.0, .peak_gain_db = 10.0};
  const Mode broad{.f0_hz = 650.0, .q = 2.0, .peak_gain_db = 10.0};
  // Equal at the peak...
  EXPECT_NEAR(mode_response_db(narrow, 650.0),
              mode_response_db(broad, 650.0), 1e-9);
  // ...but the narrow mode falls off faster off-resonance.
  EXPECT_LT(mode_response_db(narrow, 850.0), mode_response_db(broad, 850.0));
}

TEST(ModeResponseTest, QClampedAtHalf) {
  const Mode m{.f0_hz = 100.0, .q = 0.01, .peak_gain_db = 0.0};
  // Must not blow up / produce NaN.
  EXPECT_TRUE(std::isfinite(mode_response_db(m, 100.0)));
}

TEST(ModeResponseTest, InvalidFrequencyThrows) {
  const Mode m{.f0_hz = 0.0, .q = 5.0, .peak_gain_db = 0.0};
  EXPECT_THROW(mode_response_db(m, 100.0), std::invalid_argument);
}

TEST(ResonatorBankTest, EmptyBankIsSilent) {
  ResonatorBank bank;
  EXPECT_TRUE(bank.empty());
  EXPECT_LT(bank.response_db(650.0), -300.0);
}

TEST(ResonatorBankTest, SingleModeMatchesModeResponse) {
  const Mode m{.f0_hz = 650.0, .q = 4.0, .peak_gain_db = 12.0};
  ResonatorBank bank({m});
  for (double f : {100.0, 650.0, 2000.0}) {
    EXPECT_NEAR(bank.response_db(f), mode_response_db(m, f), 1e-9);
  }
}

TEST(ResonatorBankTest, OverlappingModesReinforce) {
  const Mode m{.f0_hz = 650.0, .q = 4.0, .peak_gain_db = 12.0};
  ResonatorBank one({m});
  ResonatorBank two({m, m});
  // Power sum of two equal modes: +3 dB.
  EXPECT_NEAR(two.response_db(650.0) - one.response_db(650.0), 3.01, 0.01);
}

TEST(ResonatorBankTest, PeakFrequencyFindsStrongestMode) {
  ResonatorBank bank;
  bank.add_mode(Mode{.f0_hz = 400.0, .q = 6.0, .peak_gain_db = 8.0, .label = {}});
  bank.add_mode(Mode{.f0_hz = 900.0, .q = 6.0, .peak_gain_db = 15.0, .label = {}});
  bank.add_mode(Mode{.f0_hz = 1500.0, .q = 6.0, .peak_gain_db = 5.0, .label = {}});
  const double peak = bank.peak_frequency_hz(100.0, 4000.0);
  EXPECT_NEAR(peak, 900.0, 20.0);
}

class BankMonotoneTailTest : public ::testing::TestWithParam<double> {};

TEST_P(BankMonotoneTailTest, ResponseDecaysAboveAllModes) {
  const double q = GetParam();
  ResonatorBank bank;
  bank.add_mode(Mode{.f0_hz = 500.0, .q = q, .peak_gain_db = 10.0});
  bank.add_mode(Mode{.f0_hz = 800.0, .q = q, .peak_gain_db = 10.0});
  double prev = bank.response_db(2000.0);
  for (double f = 2500.0; f <= 20000.0; f += 500.0) {
    const double r = bank.response_db(f);
    EXPECT_LT(r, prev) << "f=" << f;
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, BankMonotoneTailTest,
                         ::testing::Values(1.0, 3.0, 8.0));

}  // namespace
}  // namespace deepnote::structure
