#include "structure/enclosure.h"

#include <gtest/gtest.h>

namespace deepnote::structure {
namespace {

EnclosureSpec bare(WallMaterial material) {
  EnclosureSpec spec;
  spec.material = material;
  spec.mass_law_reference_db = 20.0;
  return spec;
}

TEST(EnclosureTest, MassLawRisesSixDbPerOctave) {
  Enclosure enc(bare(WallMaterial::steel()));
  const double at_2k = enc.transmission_loss_db(2000.0);
  const double at_4k = enc.transmission_loss_db(4000.0);
  EXPECT_NEAR(at_4k - at_2k, 6.02, 0.01);
}

TEST(EnclosureTest, HeavierWallBlocksMore) {
  Enclosure plastic(bare(WallMaterial::hard_plastic()));
  Enclosure aluminum(bare(WallMaterial::aluminum()));
  Enclosure steel(bare(WallMaterial::steel()));
  for (double f : {650.0, 2000.0, 8000.0}) {
    EXPECT_LT(plastic.transmission_loss_db(f),
              aluminum.transmission_loss_db(f))
        << f;
    EXPECT_LT(aluminum.transmission_loss_db(f),
              steel.transmission_loss_db(f))
        << f;
  }
}

TEST(EnclosureTest, MassLawNeverAmplifiesWithoutModes) {
  Enclosure enc(bare(WallMaterial::hard_plastic()));
  for (double f = 20.0; f < 20000.0; f *= 1.5) {
    EXPECT_GE(enc.transmission_loss_db(f), 0.0) << f;
  }
}

TEST(EnclosureTest, PanelModePunchesHole) {
  EnclosureSpec spec = bare(WallMaterial::aluminum());
  Enclosure without(spec);
  spec.panel_modes.push_back(
      Mode{.f0_hz = 800.0, .q = 6.0, .peak_gain_db = 15.0});
  Enclosure with(spec);
  // At the mode, the wall leaks ~15 dB more than the bare mass law.
  EXPECT_NEAR(without.transmission_loss_db(800.0) -
                  with.transmission_loss_db(800.0),
              15.0, 1.0);
  // Far away the hole closes.
  EXPECT_NEAR(without.transmission_loss_db(8000.0),
              with.transmission_loss_db(8000.0), 2.0);
}

TEST(EnclosureTest, InteriorSplSubtractsLoss) {
  Enclosure enc(bare(WallMaterial::aluminum()));
  const double tl = enc.transmission_loss_db(1000.0);
  EXPECT_NEAR(enc.interior_spl_db(160.0, 1000.0), 160.0 - tl, 1e-9);
}

TEST(EnclosureTest, InteriorCouplingOffset) {
  EnclosureSpec spec = bare(WallMaterial::aluminum());
  spec.interior_coupling_db = 5.0;
  Enclosure enc(spec);
  Enclosure base(bare(WallMaterial::aluminum()));
  EXPECT_NEAR(base.transmission_loss_db(1000.0) -
                  enc.transmission_loss_db(1000.0),
              5.0, 1e-9);
}

TEST(WallMaterialTest, PresetOrdering) {
  EXPECT_LT(WallMaterial::hard_plastic().surface_density_kg_m2,
            WallMaterial::aluminum().surface_density_kg_m2);
  EXPECT_LT(WallMaterial::aluminum().surface_density_kg_m2,
            WallMaterial::steel().surface_density_kg_m2);
  // Metals ring longer (lower loss factor).
  EXPECT_GT(WallMaterial::hard_plastic().loss_factor,
            WallMaterial::aluminum().loss_factor);
}

}  // namespace
}  // namespace deepnote::structure
