#include "sim/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/trial_runner.h"

namespace deepnote::sim {
namespace {

TEST(ResolveJobsTest, ExplicitRequestWins) {
  setenv("DEEPNOTE_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(7), 7u);
  unsetenv("DEEPNOTE_JOBS");
}

TEST(ResolveJobsTest, EnvOverridesAuto) {
  setenv("DEEPNOTE_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(0), 3u);
  unsetenv("DEEPNOTE_JOBS");
}

TEST(ResolveJobsTest, GarbageEnvFallsBackToHardware) {
  for (const char* bad : {"", "0", "-2", "eight", "4x"}) {
    setenv("DEEPNOTE_JOBS", bad, 1);
    EXPECT_GE(resolve_jobs(0), 1u) << "env=\"" << bad << "\"";
  }
  unsetenv("DEEPNOTE_JOBS");
  EXPECT_GE(resolve_jobs(0), 1u);
}

TEST(TrialSeedTest, DeterministicAndDistinct) {
  EXPECT_EQ(trial_seed(42, 7), trial_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 0x5eefull}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      seen.insert(trial_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 3u * 64u);  // no collisions across bases/indices
}

TEST(TaskPoolTest, ResultsArriveInSubmissionOrder) {
  TaskPool pool(4);
  const auto results = run_trials<std::size_t>(
      pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  TaskPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.run_indexed(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPoolTest, PoolIsReusableAcrossBatches) {
  TaskPool pool(3);
  std::atomic<int> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.run_indexed(10, [&](std::size_t) { sum.fetch_add(1); });
  }
  EXPECT_EQ(sum.load(), 50);
  pool.run_indexed(0, [&](std::size_t) { FAIL() << "empty batch ran"; });
}

TEST(TaskPoolTest, LowestIndexExceptionPropagates) {
  for (unsigned jobs : {1u, 4u}) {
    TaskPool pool(jobs);
    std::atomic<int> completed{0};
    try {
      pool.run_indexed(32, [&](std::size_t i) {
        if (i == 7 || i == 19) {
          throw std::runtime_error("trial " + std::to_string(i));
        }
        completed.fetch_add(1);
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 7") << "jobs=" << jobs;
    }
    if (jobs > 1) {
      // Parallel batches run every non-throwing task to completion.
      EXPECT_EQ(completed.load(), 30);
    }
  }
}

TEST(TaskPoolTest, SerialPoolRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const auto inline_id = std::this_thread::get_id();
  pool.run_indexed(4, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), inline_id);
  });
}

TEST(TaskPoolTest, MoreJobsThanTasks) {
  TaskPool pool(16);
  const auto results =
      run_trials<int>(pool, 3, [](std::size_t i) { return int(i) + 1; });
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
}

// The determinism contract: a trial's output is a function of
// trial_seed(base, index) alone, so any thread count produces the same
// result vector.
TEST(TaskPoolTest, SerialAndParallelResultsAreBitIdentical) {
  const auto trial = [](std::size_t i) {
    Rng rng(trial_seed(0xfeed, i));
    double acc = 0.0;
    for (int k = 0; k < 1000; ++k) acc += rng.gaussian();
    return acc;
  };
  const auto serial = run_trials<double>(64, 1, trial);
  for (unsigned jobs : {2u, 4u, 13u}) {
    const auto parallel = run_trials<double>(64, jobs, trial);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "jobs=" << jobs << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace deepnote::sim
