#include "sim/time.h"

#include <gtest/gtest.h>

namespace deepnote::sim {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime::zero(), SimTime{});
}

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  const SimTime t = SimTime::from_seconds(1.5);
  EXPECT_EQ(t.ns(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.millis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.micros(), 1.5e6);
  EXPECT_EQ(SimTime::from_millis(2.5).ns(), 2'500'000);
  EXPECT_EQ(SimTime::from_micros(3.0).ns(), 3'000);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::from_seconds(1.0), SimTime::from_seconds(2.0));
  EXPECT_LE(SimTime::from_seconds(1.0), SimTime::from_seconds(1.0));
  EXPECT_GT(SimTime::infinity(), SimTime::from_seconds(1e8));
}

TEST(SimTimeTest, InfinityIsSticky) {
  const SimTime inf = SimTime::infinity();
  EXPECT_TRUE(inf.is_infinite());
  EXPECT_TRUE((inf + Duration::from_seconds(5)).is_infinite());
  EXPECT_TRUE((inf - Duration::from_seconds(5)).is_infinite());
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::from_millis(10);
  const Duration b = Duration::from_millis(2.5);
  EXPECT_EQ((a + b).ns(), 12'500'000);
  EXPECT_EQ((a - b).ns(), 7'500'000);
  EXPECT_EQ((a * 3).ns(), 30'000'000);
  EXPECT_EQ((3 * a).ns(), 30'000'000);
}

TEST(DurationTest, PointMinusPointIsSpan) {
  const SimTime a = SimTime::from_seconds(3.0);
  const SimTime b = SimTime::from_seconds(1.0);
  EXPECT_EQ((a - b).seconds(), 2.0);
}

TEST(SimTimeTest, MinMax) {
  const SimTime a = SimTime::from_seconds(1.0);
  const SimTime b = SimTime::from_seconds(2.0);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(min(a, b), a);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(to_string(SimTime::from_seconds(1.5)), "1.500 s");
  EXPECT_EQ(to_string(SimTime::from_millis(2.25)), "2.250 ms");
  EXPECT_EQ(to_string(SimTime::from_micros(7.5)), "7.500 us");
  EXPECT_EQ(to_string(SimTime(42)), "42 ns");
  EXPECT_EQ(to_string(SimTime::infinity()), "inf");
}

}  // namespace
}  // namespace deepnote::sim
