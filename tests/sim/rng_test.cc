#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace deepnote::sim {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(0.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(21);
  Rng b = a.fork();
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngUniformRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(RngUniformRangeTest, UniformStaysInBoundsAndHitsMean) {
  const double hi = GetParam();
  Rng rng(static_cast<std::uint64_t>(hi * 1000) + 1);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.uniform(0.0, hi);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, hi);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, hi / 2, hi * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformRangeTest,
                         ::testing::Values(0.001, 1.0, 42.0, 1e6));

}  // namespace
}  // namespace deepnote::sim
