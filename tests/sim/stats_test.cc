#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace deepnote::sim {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(OnlineStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
  // Population variance of {1,2,4,8,16}.
  double var = 0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= xs.size();
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(OnlineStatsTest, MergeEqualsCombinedStream) {
  Rng rng(3);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(10, 3);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(5.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

TEST(LatencyHistogramTest, EmptyQuantilesZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5).ns(), 0);
  EXPECT_EQ(h.mean().ns(), 0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.add(Duration::from_micros(100));
  EXPECT_EQ(h.count(), 1u);
  // Bucketed: within ~3% of the true value.
  EXPECT_NEAR(h.p50().micros(), 100.0, 3.0);
  EXPECT_NEAR(h.mean().micros(), 100.0, 0.1);
  EXPECT_EQ(h.max_value().micros(), 100.0);
}

TEST(LatencyHistogramTest, QuantilesOfUniformSpread) {
  LatencyHistogram h;
  for (int us = 1; us <= 1000; ++us) {
    h.add(Duration::from_micros(us));
  }
  EXPECT_NEAR(h.p50().micros(), 500.0, 25.0);
  EXPECT_NEAR(h.quantile(0.99).micros(), 990.0, 40.0);
  EXPECT_NEAR(h.quantile(0.0).micros(), 1.0, 0.2);
}

TEST(LatencyHistogramTest, MergeAccumulates) {
  LatencyHistogram a, b;
  a.add(Duration::from_millis(1));
  b.add(Duration::from_millis(100));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.max_value().millis(), 100.0, 0.01);
  EXPECT_NEAR(a.mean().millis(), 50.5, 0.01);
}

TEST(LatencyHistogramTest, QuantileMonotoneInQ) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.add(Duration::from_nanos(
        static_cast<std::int64_t>(rng.exponential(1e6))));
  }
  Duration prev = Duration::zero();
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const Duration v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(RateMeterTest, ThroughputAndOps) {
  RateMeter m;
  m.start(SimTime::from_seconds(5.0));
  m.add_bytes(10'000'000);
  m.add_ops(100);
  m.stop(SimTime::from_seconds(15.0));
  EXPECT_DOUBLE_EQ(m.throughput_mbps(), 1.0);
  EXPECT_DOUBLE_EQ(m.ops_per_second(), 10.0);
  EXPECT_EQ(m.elapsed().seconds(), 10.0);
}

TEST(RateMeterTest, ZeroElapsedIsZeroRate) {
  RateMeter m;
  m.start(SimTime::from_seconds(1.0));
  m.stop(SimTime::from_seconds(1.0));
  m.add_bytes(1000);
  EXPECT_EQ(m.throughput_mbps(), 0.0);
  EXPECT_EQ(m.ops_per_second(), 0.0);
}

}  // namespace
}  // namespace deepnote::sim
