#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace deepnote::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, RunAdvancesClockThroughEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.at(SimTime::from_seconds(1), [&] { times.push_back(sim.now().seconds()); });
  sim.at(SimTime::from_seconds(2), [&] { times.push_back(sim.now().seconds()); });
  const auto fired = sim.run();
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(2));
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  sim.at(SimTime::from_seconds(1), [&] {
    sim.after(Duration::from_seconds(2), [] {});
  });
  sim.run();
  EXPECT_EQ(sim.now(), SimTime::from_seconds(3));
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(SimTime::from_seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.at(SimTime::from_seconds(1), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtLimitAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.at(SimTime::from_seconds(i), [&] { ++fired; });
  }
  sim.run_until(SimTime::from_seconds(4.5));
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.now(), SimTime::from_seconds(4.5));
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, PeriodicSelfReschedule) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) sim.after(Duration::from_seconds(1), tick);
  };
  sim.after(Duration::from_seconds(1), tick);
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), SimTime::from_seconds(5));
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(SimTime::from_seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, AdvanceToMovesIdleClock) {
  Simulator sim;
  sim.advance_to(SimTime::from_seconds(10));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(10));
  EXPECT_THROW(sim.advance_to(SimTime::from_seconds(5)),
               std::invalid_argument);
}

TEST(SimulatorTest, AdvanceToPastPendingEventThrows) {
  Simulator sim;
  sim.at(SimTime::from_seconds(1), [] {});
  EXPECT_THROW(sim.advance_to(SimTime::from_seconds(2)), std::logic_error);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::from_seconds(1), [&] { ++fired; });
  sim.at(SimTime::from_seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace deepnote::sim
