// Allocation accounting for the event kernel hot path.
//
// The PR3 contract: once the queue's slab and heap vectors are warm, a
// steady-state simulation loop whose event captures fit EventFn's inline
// buffer performs ZERO heap allocations. This binary overrides the
// global allocator to count, so it must stay its own test executable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace deepnote::sim {
namespace {

TEST(EventAllocTest, WarmSteadyStateLoopIsAllocationFree) {
  Simulator sim;
  struct Ctx {
    Simulator* sim;
    std::uint64_t count = 0;
    std::uint64_t pad[3] = {};
  };
  Ctx ctx{&sim};
  // Self-rescheduling daemon: the exact shape of the commit/writeback
  // timers. The capture (one pointer) fits inline.
  struct Tick {
    Ctx* ctx;
    void operator()() const {
      ++ctx->count;
      ctx->sim->after(Duration::from_micros(10), Tick{ctx});
    }
  };
  sim.after(Duration::from_micros(10), Tick{&ctx});
  // Warm-up: grows the slab, heap vector, and free list to steady state.
  sim.run_until(SimTime::from_seconds(0.01));
  const std::uint64_t warm_count = ctx.count;
  ASSERT_GT(warm_count, 100u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  sim.run_until(SimTime::from_seconds(0.02));
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_GT(ctx.count, warm_count + 100);
  EXPECT_EQ(after - before, 0u)
      << "steady-state event loop allocated on the hot path";
}

TEST(EventAllocTest, WarmScheduleCancelLoopIsAllocationFree) {
  EventQueue q;
  // Warm-up with the same pending depth the measured loop uses.
  std::int64_t t = 0;
  for (int i = 0; i < 64; ++i) q.schedule(SimTime(++t), [] {});
  std::uint64_t sink = 0;
  for (int i = 0; i < 1000; ++i) {
    auto f = q.pop();
    f.fn();
    const EventId id = q.schedule(SimTime(++t), [&sink] { ++sink; });
    if (i % 2 == 0) {
      q.cancel(id);
      q.schedule(SimTime(++t), [&sink] { ++sink; });
    }
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    auto f = q.pop();
    f.fn();
    const EventId id = q.schedule(SimTime(++t), [&sink] { ++sink; });
    if (i % 2 == 0) {
      q.cancel(id);
      q.schedule(SimTime(++t), [&sink] { ++sink; });
    }
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(sink, 0u);
}

TEST(EventAllocTest, OversizedCaptureAllocatesExactlyOncePerEvent) {
  EventQueue q;
  struct Big {
    std::uint64_t words[10] = {};
  } big;
  constexpr int kEvents = 100;
  // Warm up at the same pending depth so vector growth is excluded and
  // the measured allocations are purely the per-event heap spills.
  for (int i = 0; i < kEvents; ++i) q.schedule(SimTime(i), [big] { (void)big; });
  while (!q.empty()) q.pop();
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kEvents; ++i) {
    q.schedule(SimTime(i), [big] { (void)big; });
  }
  while (!q.empty()) q.pop().fn();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, static_cast<std::uint64_t>(kEvents));
}

}  // namespace
}  // namespace deepnote::sim
