#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::sim {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::infinity());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::from_seconds(3), [&] { fired.push_back(3); });
  q.schedule(SimTime::from_seconds(1), [&] { fired.push_back(1); });
  q.schedule(SimTime::from_seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto f = q.pop();
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> fired;
  const SimTime t = SimTime::from_seconds(1);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id =
      q.schedule(SimTime::from_seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // double-cancel
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::from_seconds(1), [&] { fired.push_back(1); });
  const EventId id =
      q.schedule(SimTime::from_seconds(2), [&] { fired.push_back(2); });
  q.schedule(SimTime::from_seconds(3), [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::from_seconds(1), [] {});
  q.schedule(SimTime::from_seconds(5), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::from_seconds(5));
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  // Schedule in a scrambled order; expect strictly nondecreasing pops.
  for (int i = 0; i < 1000; ++i) {
    q.schedule(SimTime((i * 7919) % 1009), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.time, prev);
    prev = f.time;
  }
}

}  // namespace
}  // namespace deepnote::sim
