#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "sim/rng.h"

namespace deepnote::sim {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::infinity());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::from_seconds(3), [&] { fired.push_back(3); });
  q.schedule(SimTime::from_seconds(1), [&] { fired.push_back(1); });
  q.schedule(SimTime::from_seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto f = q.pop();
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> fired;
  const SimTime t = SimTime::from_seconds(1);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id =
      q.schedule(SimTime::from_seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // double-cancel
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::from_seconds(1), [&] { fired.push_back(1); });
  const EventId id =
      q.schedule(SimTime::from_seconds(2), [&] { fired.push_back(2); });
  q.schedule(SimTime::from_seconds(3), [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::from_seconds(1), [] {});
  q.schedule(SimTime::from_seconds(5), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::from_seconds(5));
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  // Schedule in a scrambled order; expect strictly nondecreasing pops.
  for (int i = 0; i < 1000; ++i) {
    q.schedule(SimTime((i * 7919) % 1009), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.time, prev);
    prev = f.time;
  }
}

// ---------------------------------------------------------------------------
// EventFn (the SBO callable)

TEST(EventFnTest, SmallCapturesStayInline) {
  struct Ctx {
    std::uint64_t a = 0, b = 0;
    void* p = nullptr;
    void* q = nullptr;
  } ctx;  // 32 bytes: the common daemon/timeout closure shape
  int out = 0;
  EventFn fn([ctx, &out] { out = static_cast<int>(ctx.a) + 1; });
  EXPECT_FALSE(fn.heap_allocated());
  fn();
  EXPECT_EQ(out, 1);
}

TEST(EventFnTest, LargeCapturesSpillToHeap) {
  struct Big {
    std::uint64_t words[10] = {};
  } big;
  big.words[9] = 42;
  std::uint64_t out = 0;
  EventFn fn([big, &out] { out = big.words[9]; });
  EXPECT_TRUE(fn.heap_allocated());
  fn();
  EXPECT_EQ(out, 42u);
}

TEST(EventFnTest, MoveTransfersCallableAndEmptiesSource) {
  int calls = 0;
  EventFn a([&calls] { ++calls; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(calls, 2);
}

TEST(EventFnTest, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  int out = 0;
  EventFn fn([p = std::move(p), &out] { out = *p; });
  EventFn moved(std::move(fn));
  moved();
  EXPECT_EQ(out, 7);
}

// ---------------------------------------------------------------------------
// Slab recycling and id safety

TEST(EventQueueTest, StaleIdAfterSlotReuseIsRejected) {
  EventQueue q;
  const EventId first = q.schedule(SimTime(1), [] {});
  (void)q.pop();  // fires `first`; its slot returns to the free list
  bool second_fired = false;
  const EventId second =
      q.schedule(SimTime(2), [&] { second_fired = true; });
  // The recycled slot makes the ids collide on the slot index but not on
  // the generation: cancelling the stale id must not touch the live one.
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(second));
  EXPECT_FALSE(second_fired);
  EXPECT_FALSE(q.cancel(second));  // now stale itself
}

TEST(EventQueueTest, SlabBoundedByConcurrentPendingNotTotal) {
  EventQueue q;
  constexpr int kPending = 8;
  constexpr int kRounds = 10000;
  for (int i = 0; i < kPending; ++i) q.schedule(SimTime(i), [] {});
  for (int i = 0; i < kRounds; ++i) {
    auto f = q.pop();
    q.schedule(SimTime(f.time.ns() + kPending), [] {});
  }
  while (!q.empty()) q.pop();
  // 80k events flowed through; the slab must stay at the high-water mark
  // of concurrently pending events.
  EXPECT_LE(q.slab_slots(), static_cast<std::size_t>(kPending));
}

TEST(EventQueueTest, NextTimeAfterMassCancel) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(SimTime(i), [] {}));
  }
  const EventId keep = q.schedule(SimTime(100000), [] {});
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime(100000));
  EXPECT_TRUE(q.cancel(keep));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime::infinity());
}

// ---------------------------------------------------------------------------
// Randomized property test against a naive reference queue

struct RefEvent {
  std::int64_t time;
  std::uint64_t seq;
  int tag;
  bool live = true;
};

/// Naive O(n) model: min over live events by (time, seq).
class ReferenceQueue {
 public:
  void schedule(std::int64_t t, int tag) {
    events_.push_back(RefEvent{t, next_seq_++, tag});
  }
  bool cancel(std::size_t idx) {
    if (idx >= events_.size() || !events_[idx].live) return false;
    events_[idx].live = false;
    return true;
  }
  bool fired(std::size_t idx) const { return !events_[idx].live; }
  std::size_t live_count() const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.live ? 1 : 0;
    return n;
  }
  std::int64_t next_time() const {
    const RefEvent* best = min_live();
    return best ? best->time : std::numeric_limits<std::int64_t>::max();
  }
  int pop() {
    RefEvent* best = const_cast<RefEvent*>(min_live());
    best->live = false;
    return best->tag;
  }

 private:
  const RefEvent* min_live() const {
    const RefEvent* best = nullptr;
    for (const auto& e : events_) {
      if (!e.live) continue;
      if (!best || e.time < best->time ||
          (e.time == best->time && e.seq < best->seq)) {
        best = &e;
      }
    }
    return best;
  }
  std::vector<RefEvent> events_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventQueuePropertyTest, MatchesReferenceUnderRandomOps) {
  EventQueue q;
  ReferenceQueue ref;
  Rng rng(0xeeee);
  // id of the i-th scheduled event in both queues.
  std::vector<EventId> ids;
  int last_tag = -1;
  int next_tag = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 5 || q.empty()) {
      // Schedule; coarse time quantization forces plenty of FIFO ties.
      const std::int64_t t = rng.uniform_int(0, 49) * 100;
      const int tag = next_tag++;
      ids.push_back(q.schedule(SimTime(t), [tag, &last_tag] {
        last_tag = tag;
      }));
      ref.schedule(t, tag);
    } else if (roll < 8) {
      // Cancel a random id — possibly already fired or cancelled; the
      // return value must agree with the model either way.
      if (!ids.empty()) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
        EXPECT_EQ(q.cancel(ids[idx]), ref.cancel(idx)) << "step " << step;
      }
    } else {
      ASSERT_EQ(q.next_time().ns(), ref.next_time()) << "step " << step;
      auto f = q.pop();
      f.fn();
      EXPECT_EQ(last_tag, ref.pop()) << "step " << step;
    }
    ASSERT_EQ(q.size(), ref.live_count()) << "step " << step;
  }
  // Drain both and compare the full tail ordering.
  while (!q.empty()) {
    auto f = q.pop();
    f.fn();
    EXPECT_EQ(last_tag, ref.pop());
  }
  EXPECT_EQ(ref.live_count(), 0u);
}

}  // namespace
}  // namespace deepnote::sim
