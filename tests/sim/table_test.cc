#include "sim/table.h"

#include <gtest/gtest.h>

namespace deepnote::sim {
namespace {

Table sample_table() {
  Table t("Sample");
  t.set_columns({"Name", "Value"});
  t.row().cell("alpha").cell(1.25, 2);
  t.row().cell("beta").dash();
  return t;
}

TEST(TableTest, CellAccess) {
  Table t = sample_table();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.at(0, 0), "alpha");
  EXPECT_EQ(t.at(0, 1), "1.25");
  EXPECT_EQ(t.at(1, 1), "-");
  EXPECT_THROW(t.at(5, 0), std::out_of_range);
}

TEST(TableTest, FormatFixed) {
  EXPECT_EQ(format_fixed(22.666, 1), "22.7");
  EXPECT_EQ(format_fixed(0.0, 1), "0.0");
  EXPECT_EQ(format_fixed(-1.05, 2), "-1.05");
}

TEST(TableTest, CellOrDash) {
  Table t;
  t.set_columns({"x"});
  t.row().cell_or_dash(std::nullopt);
  t.row().cell_or_dash(3.14159, 2);
  EXPECT_EQ(t.at(0, 0), "-");
  EXPECT_EQ(t.at(1, 0), "3.14");
}

TEST(TableTest, TextOutputAligned) {
  const std::string text = sample_table().to_text();
  EXPECT_NE(text.find("Sample"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("Name"), std::string::npos);
}

TEST(TableTest, MarkdownOutput) {
  const std::string md = sample_table().to_markdown();
  EXPECT_NE(md.find("| Name | Value |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| alpha | 1.25 |"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t;
  t.set_columns({"a", "b"});
  t.row().cell("plain").cell("has,comma");
  t.row().cell("has\"quote").cell("x");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\",x"), std::string::npos);
}

TEST(TableTest, IntCell) {
  Table t;
  t.set_columns({"n"});
  t.row().cell(std::int64_t{-42});
  EXPECT_EQ(t.at(0, 0), "-42");
}

}  // namespace
}  // namespace deepnote::sim
