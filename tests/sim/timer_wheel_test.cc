// Timer wheel unit + property suite.
//
// The unit tests pin the contract edges: exact (deadline, schedule
// order) firing, <=t inclusivity, cascade and rollover across level
// windows, overdue scheduling, cancellation (head / middle / overdue),
// the horizon guard, and reset reuse. The seed-parameterized property
// test drives a random schedule/advance/cancel interleaving and checks
// the fired sequence against a naive per-timer deadline-scan reference —
// the same oracle a bounded-FIFO server would implement by scanning
// every queued request at each dequeue.
#include "sim/timer_wheel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "gtest/gtest.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace {

using deepnote::sim::Duration;
using deepnote::sim::Rng;
using deepnote::sim::SimTime;
using deepnote::sim::TimerWheel;

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

SimTime ns(std::int64_t v) { return SimTime{v}; }

std::vector<TimerWheel::Expired> fire_until(TimerWheel& wheel, SimTime t) {
  std::vector<TimerWheel::Expired> out;
  wheel.advance(t, out);
  return out;
}

TEST(TimerWheelTest, FiresInDeadlineOrderWithScheduleOrderTies) {
  TimerWheel wheel;
  wheel.schedule(ns(5'000'000), 1);
  wheel.schedule(ns(2'000'000), 2);
  wheel.schedule(ns(5'000'000), 3);  // same deadline as payload 1
  wheel.schedule(ns(1'000'000), 4);
  const auto fired = fire_until(wheel, ns(10'000'000));
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0].payload, 4u);
  EXPECT_EQ(fired[1].payload, 2u);
  EXPECT_EQ(fired[2].payload, 1u);  // scheduled before payload 3
  EXPECT_EQ(fired[3].payload, 3u);
  EXPECT_EQ(fired[2].deadline, fired[3].deadline);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, AdvanceIsInclusiveOfTheTargetInstant) {
  TimerWheel wheel;
  wheel.schedule(ns(1000), 1);
  wheel.schedule(ns(1001), 2);
  auto fired = fire_until(wheel, ns(1000));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 1u);
  EXPECT_EQ(fired[0].deadline.ns(), 1000);
  fired = fire_until(wheel, ns(1001));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 2u);
}

TEST(TimerWheelTest, SubTickDeadlinesSplitCorrectlyAcrossAdvances) {
  TimerWheel wheel;
  const std::int64_t tick = wheel.tick_nanos();
  // Two timers inside the same tick bucket; advancing into the middle of
  // the bucket must fire only the earlier one.
  wheel.schedule(ns(tick + 10), 1);
  wheel.schedule(ns(tick + 20), 2);
  auto fired = fire_until(wheel, ns(tick + 15));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 1u);
  EXPECT_EQ(wheel.pending(), 1u);
  fired = fire_until(wheel, ns(tick + 20));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 2u);
}

TEST(TimerWheelTest, CascadesAcrossLevelBoundaries) {
  TimerWheel wheel;
  const std::int64_t tick = wheel.tick_nanos();
  // One timer per wheel level: within the level-0 window (64 ticks),
  // past it (level 1), past the level-1 window (64^2 ticks), level 2,
  // and level 3.
  const std::int64_t deadlines[] = {
      3 * tick,         63 * tick,         64 * tick,
      100 * tick,       4096 * tick,       5000 * tick,
      262144 * tick,    300000 * tick,     16777216 * tick};
  std::uint64_t payload = 0;
  for (const std::int64_t d : deadlines) wheel.schedule(ns(d), payload++);
  // Advance in awkward strides (prime tick counts) so cascades land
  // mid-window rather than on clean boundaries.
  std::vector<TimerWheel::Expired> fired;
  std::int64_t t = 0;
  while (!wheel.empty()) {
    t += 977 * tick;
    wheel.advance(ns(t), fired);
  }
  ASSERT_EQ(fired.size(), std::size(deadlines));
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].payload, i) << "cascade broke firing order";
    EXPECT_EQ(fired[i].deadline.ns(), deadlines[i]);
  }
}

TEST(TimerWheelTest, RolloverAtExactWindowBoundaries) {
  TimerWheel wheel;
  const std::int64_t tick = wheel.tick_nanos();
  // Deadlines sitting exactly on window-boundary ticks at every level.
  for (std::int64_t boundary : {std::int64_t{64}, std::int64_t{128},
                                std::int64_t{4096}, std::int64_t{8192},
                                std::int64_t{262144}}) {
    wheel.schedule(ns(boundary * tick), static_cast<std::uint64_t>(boundary));
  }
  // Stop one nanosecond short of each boundary, then cross it.
  std::vector<TimerWheel::Expired> fired;
  for (std::int64_t boundary : {std::int64_t{64}, std::int64_t{128},
                                std::int64_t{4096}, std::int64_t{8192},
                                std::int64_t{262144}}) {
    fired.clear();
    wheel.advance(ns(boundary * tick - 1), fired);
    EXPECT_TRUE(fired.empty()) << "fired early at boundary " << boundary;
    wheel.advance(ns(boundary * tick), fired);
    ASSERT_EQ(fired.size(), 1u) << "missed boundary " << boundary;
    EXPECT_EQ(fired[0].payload, static_cast<std::uint64_t>(boundary));
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, OverdueScheduleFiresOnNextAdvanceAtItsOwnDeadline) {
  TimerWheel wheel;
  fire_until(wheel, ns(1'000'000));
  // A batch boundary can replay an arrival from before the frontier:
  // its deadline is already past. It must still fire, stamped with the
  // past deadline, on the next advance — even one that goes "backward".
  wheel.schedule(ns(400'000), 7);
  EXPECT_EQ(wheel.pending(), 1u);
  const auto fired = fire_until(wheel, ns(500'000));  // t < now: clamped
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 7u);
  EXPECT_EQ(fired[0].deadline.ns(), 400'000);
  EXPECT_EQ(wheel.now().ns(), 1'000'000);
}

TEST(TimerWheelTest, CancelHeadMiddleAndOverdue) {
  TimerWheel wheel;
  const auto a = wheel.schedule(ns(1000), 1);
  const auto b = wheel.schedule(ns(1000), 2);
  const auto c = wheel.schedule(ns(1000), 3);
  (void)a;
  (void)c;
  wheel.cancel(b);  // middle of the bucket list
  wheel.cancel(c);  // head of the bucket list
  auto fired = fire_until(wheel, ns(2000));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 1u);

  const auto overdue = wheel.schedule(ns(100), 4);  // deadline <= now
  wheel.cancel(overdue);
  fired = fire_until(wheel, ns(3000));
  EXPECT_TRUE(fired.empty());
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, HorizonGuardThrows) {
  TimerWheel wheel;
  const std::int64_t horizon = wheel.tick_nanos() * (std::int64_t{1} << 36);
  EXPECT_THROW(wheel.schedule(ns(horizon + 1), 0), std::invalid_argument);
  // In-horizon schedule still works afterwards (no node leaked).
  wheel.schedule(ns(1000), 1);
  const auto fired = fire_until(wheel, ns(1000));
  ASSERT_EQ(fired.size(), 1u);
}

TEST(TimerWheelTest, ResetRewindsAndReusesTheSlab) {
  TimerWheel wheel;
  for (int i = 0; i < 100; ++i) {
    wheel.schedule(ns(1000 + i), static_cast<std::uint64_t>(i));
  }
  fire_until(wheel, ns(10'000));
  const std::size_t slots = wheel.slab_slots();
  wheel.reset();
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.now().ns(), 0);
  // Warm replay: same load, no new slab growth, no heap allocation.
  std::vector<TimerWheel::Expired> out;
  out.reserve(128);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    wheel.schedule(ns(1000 + i), static_cast<std::uint64_t>(i));
  }
  wheel.advance(ns(10'000), out);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "warm wheel must not allocate";
  EXPECT_EQ(wheel.slab_slots(), slots);
  ASSERT_EQ(out.size(), 100u);
}

// ---------------------------------------------------------------------------
// Property test: random interleaving vs a naive deadline-scan reference.

struct NaiveTimer {
  std::int64_t deadline_ns;
  std::uint64_t seq;
  std::uint64_t payload;
};

class TimerWheelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TimerWheelPropertyTest, MatchesNaiveDeadlineScanReference) {
  Rng rng(GetParam());
  TimerWheel wheel(Duration::from_micros(1 + rng.uniform_int(0, 200)));
  std::vector<NaiveTimer> naive;
  std::vector<std::pair<TimerWheel::TimerId, std::uint64_t>> live;  // id, seq
  std::uint64_t next_seq = 0;
  std::uint64_t next_payload = 0;
  std::int64_t now = 0;
  std::vector<TimerWheel::Expired> fired;

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.55) {
      // Schedule: mostly near-future, sometimes far (cascade levels),
      // sometimes at-or-before now (overdue path).
      std::int64_t deadline;
      const double kind = rng.next_double();
      if (kind < 0.1) {
        deadline = now - rng.uniform_int(0, 1'000'000);
        if (deadline < 0) deadline = 0;
      } else if (kind < 0.85) {
        deadline = now + rng.uniform_int(1, 5'000'000);
      } else {
        deadline = now + rng.uniform_int(1, 20'000'000'000);
      }
      const std::uint64_t payload = next_payload++;
      const auto id = wheel.schedule(ns(deadline), payload);
      naive.push_back(NaiveTimer{deadline, next_seq, payload});
      live.emplace_back(id, next_seq);
      ++next_seq;
    } else if (roll < 0.65 && !live.empty()) {
      // Cancel a random live timer — but only if the wheel still holds
      // it (overdue timers fire on the next advance regardless).
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const auto [id, seq] = live[pick];
      wheel.cancel(id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      naive.erase(std::find_if(naive.begin(), naive.end(),
                               [seq](const NaiveTimer& t) {
                                 return t.seq == seq;
                               }));
    } else {
      // Advance; occasionally try to go backward (must clamp).
      std::int64_t target = now + rng.uniform_int(0, 2'000'000);
      if (rng.next_double() < 0.05) target = now - 1000;
      fired.clear();
      wheel.advance(ns(target), fired);
      const std::int64_t effective = std::max(target, now);
      // Reference: scan every pending timer, take deadline <= t, order
      // by (deadline, schedule seq).
      std::vector<NaiveTimer> due;
      for (const NaiveTimer& t : naive) {
        if (t.deadline_ns <= effective ||
            t.deadline_ns <= now /* overdue at schedule time */) {
          due.push_back(t);
        }
      }
      std::sort(due.begin(), due.end(),
                [](const NaiveTimer& a, const NaiveTimer& b) {
                  if (a.deadline_ns != b.deadline_ns) {
                    return a.deadline_ns < b.deadline_ns;
                  }
                  return a.seq < b.seq;
                });
      ASSERT_EQ(fired.size(), due.size()) << "step " << step;
      for (std::size_t i = 0; i < due.size(); ++i) {
        EXPECT_EQ(fired[i].payload, due[i].payload) << "step " << step;
        EXPECT_EQ(fired[i].deadline.ns(), due[i].deadline_ns)
            << "step " << step;
      }
      for (const NaiveTimer& t : due) {
        live.erase(std::find_if(live.begin(), live.end(),
                                [&](const auto& entry) {
                                  return entry.second == t.seq;
                                }));
        naive.erase(std::find_if(naive.begin(), naive.end(),
                                 [&](const NaiveTimer& n) {
                                   return n.seq == t.seq;
                                 }));
      }
      now = effective;
      ASSERT_EQ(wheel.pending(), naive.size()) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimerWheelPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

// Cancel-under-load: the hedge-cancellation path cancels most of what it
// schedules (a healthy cluster wins most hedges), so the wheel spends its
// life near a 90% cancel ratio with deep buckets. Batch-schedule bursts
// into few distinct buckets, cancel the bulk in adversarial orders
// (reverse = head-of-list each time, shuffled = arbitrary splices), then
// verify the few survivors fire exactly, in order, with pending counts
// honest at every step.
class TimerWheelCancelLoadTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimerWheelCancelLoadTest, HighCancelRatioKeepsTheWheelExact) {
  Rng rng(GetParam());
  TimerWheel wheel(Duration::from_micros(1 + rng.uniform_int(0, 100)));
  std::vector<NaiveTimer> naive;
  std::vector<std::pair<TimerWheel::TimerId, std::uint64_t>> live;
  std::uint64_t next_seq = 0;
  std::int64_t now = 0;
  std::vector<TimerWheel::Expired> fired;

  for (int round = 0; round < 60; ++round) {
    // Burst: 64-256 timers into at most 8 distinct deadlines, so bucket
    // lists get long and cancellation has to splice mid-list constantly.
    const int burst = static_cast<int>(rng.uniform_int(64, 256));
    std::int64_t deadlines[8];
    for (std::int64_t& d : deadlines) {
      d = now + rng.uniform_int(1, 50'000'000);
    }
    for (int i = 0; i < burst; ++i) {
      const std::int64_t deadline = deadlines[rng.uniform_int(0, 7)];
      const auto id = wheel.schedule(ns(deadline), next_seq);
      naive.push_back(NaiveTimer{deadline, next_seq, next_seq});
      live.emplace_back(id, next_seq);
      ++next_seq;
    }
    // Cancel ~90% of everything live, in reverse (LIFO: always the
    // bucket head) or shuffled order depending on the round.
    std::vector<std::size_t> order(live.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (round % 2 == 0) {
      std::reverse(order.begin(), order.end());
    } else {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[static_cast<std::size_t>(
                                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
      }
    }
    std::vector<std::pair<TimerWheel::TimerId, std::uint64_t>> survivors;
    for (const std::size_t pick : order) {
      if (rng.next_double() < 0.9) {
        const auto [id, seq] = live[pick];
        wheel.cancel(id);
        naive.erase(std::find_if(
            naive.begin(), naive.end(),
            [seq](const NaiveTimer& t) { return t.seq == seq; }));
      } else {
        survivors.push_back(live[pick]);
      }
    }
    live = std::move(survivors);
    ASSERT_EQ(wheel.pending(), naive.size()) << "round " << round;

    // Advance past a random subset of the burst window and check the
    // survivors fire in (deadline, schedule seq) order.
    const std::int64_t target = now + rng.uniform_int(0, 60'000'000);
    fired.clear();
    wheel.advance(ns(target), fired);
    std::vector<NaiveTimer> due;
    for (const NaiveTimer& t : naive) {
      if (t.deadline_ns <= target) due.push_back(t);
    }
    std::sort(due.begin(), due.end(),
              [](const NaiveTimer& a, const NaiveTimer& b) {
                if (a.deadline_ns != b.deadline_ns) {
                  return a.deadline_ns < b.deadline_ns;
                }
                return a.seq < b.seq;
              });
    ASSERT_EQ(fired.size(), due.size()) << "round " << round;
    for (std::size_t i = 0; i < due.size(); ++i) {
      EXPECT_EQ(fired[i].payload, due[i].payload) << "round " << round;
      EXPECT_EQ(fired[i].deadline.ns(), due[i].deadline_ns)
          << "round " << round;
    }
    for (const NaiveTimer& t : due) {
      live.erase(std::find_if(
          live.begin(), live.end(),
          [&](const auto& entry) { return entry.second == t.seq; }));
      naive.erase(std::find_if(
          naive.begin(), naive.end(),
          [&](const NaiveTimer& n) { return n.seq == t.seq; }));
    }
    now = target;
    ASSERT_EQ(wheel.pending(), naive.size()) << "round " << round;
  }
  // Drain: whatever survived every cancel wave still fires.
  fired.clear();
  wheel.advance(ns(now + 100'000'000'000), fired);
  EXPECT_EQ(fired.size(), naive.size());
  EXPECT_TRUE(wheel.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimerWheelCancelLoadTest,
                         ::testing::Values(7u, 11u, 42u, 1729u, 0xc0ffeeu,
                                           0xdeadu));

}  // namespace
