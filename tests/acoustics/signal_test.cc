#include "acoustics/signal.h"

#include <gtest/gtest.h>

namespace deepnote::acoustics {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(ToneSignalTest, ConstantWithinWindow) {
  ToneSignal tone(650.0, 166.0, SimTime::from_seconds(1),
                  SimTime::from_seconds(2));
  EXPECT_FALSE(tone.at(SimTime::from_seconds(0.5)).active);
  const ToneState mid = tone.at(SimTime::from_seconds(1.5));
  EXPECT_TRUE(mid.active);
  EXPECT_EQ(mid.frequency_hz, 650.0);
  EXPECT_EQ(mid.level_db, 166.0);
  EXPECT_FALSE(tone.at(SimTime::from_seconds(2.0)).active);  // end-exclusive
}

TEST(ToneSignalTest, UnboundedByDefault) {
  ToneSignal tone(100.0, 120.0);
  EXPECT_TRUE(tone.at(SimTime::from_seconds(1e6)).active);
}

TEST(ToneSignalTest, RejectsNonPositiveFrequency) {
  EXPECT_THROW(ToneSignal(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ToneSignal(-5.0, 100.0), std::invalid_argument);
}

TEST(SteppedSweepTest, VisitsEachFrequencyForDwell) {
  SteppedSweepSignal sweep({100.0, 200.0, 300.0}, 140.0,
                           Duration::from_seconds(10));
  EXPECT_EQ(sweep.at(SimTime::from_seconds(5)).frequency_hz, 100.0);
  EXPECT_EQ(sweep.at(SimTime::from_seconds(15)).frequency_hz, 200.0);
  EXPECT_EQ(sweep.at(SimTime::from_seconds(29.9)).frequency_hz, 300.0);
  EXPECT_FALSE(sweep.at(SimTime::from_seconds(30.1)).active);
}

TEST(SteppedSweepTest, GeometricPlanCoversRange) {
  const auto plan =
      SteppedSweepSignal::geometric_plan(100.0, 16900.0, 2.0);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front(), 100.0);
  EXPECT_LE(plan.back(), 16900.0);
  EXPECT_GT(plan.back(), 8000.0);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_NEAR(plan[i] / plan[i - 1], 2.0, 1e-9);
  }
}

TEST(SteppedSweepTest, LinearPlanStepsFifty) {
  // The Section 4.1 narrowing pass: 50 Hz increments.
  const auto plan = SteppedSweepSignal::linear_plan(300.0, 1000.0, 50.0);
  EXPECT_EQ(plan.size(), 15u);
  EXPECT_EQ(plan.front(), 300.0);
  EXPECT_NEAR(plan.back(), 1000.0, 1e-9);
}

TEST(SteppedSweepTest, BadPlansThrow) {
  EXPECT_THROW(SteppedSweepSignal::geometric_plan(0.0, 100.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(SteppedSweepSignal::geometric_plan(100.0, 50.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(SteppedSweepSignal::geometric_plan(100.0, 200.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(SteppedSweepSignal::linear_plan(100.0, 200.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      SteppedSweepSignal({}, 140.0, Duration::from_seconds(1)),
      std::invalid_argument);
}

TEST(ChirpSignalTest, InterpolatesLinearly) {
  ChirpSignal chirp(100.0, 1100.0, 150.0, SimTime::zero(),
                    Duration::from_seconds(10));
  EXPECT_EQ(chirp.at(SimTime::zero()).frequency_hz, 100.0);
  EXPECT_NEAR(chirp.at(SimTime::from_seconds(5)).frequency_hz, 600.0, 1e-6);
  EXPECT_FALSE(chirp.at(SimTime::from_seconds(10)).active);
}

TEST(PulsedToneTest, DutyCycleGatesTheTone) {
  PulsedToneSignal pulse(650.0, 166.0, Duration::from_seconds(10), 0.3);
  // ON for the first 3 s of each 10 s period.
  EXPECT_TRUE(pulse.at(SimTime::from_seconds(1)).active);
  EXPECT_TRUE(pulse.at(SimTime::from_seconds(2.9)).active);
  EXPECT_FALSE(pulse.at(SimTime::from_seconds(3.1)).active);
  EXPECT_FALSE(pulse.at(SimTime::from_seconds(9.9)).active);
  EXPECT_TRUE(pulse.at(SimTime::from_seconds(11.0)).active);
}

TEST(PulsedToneTest, ExtremeDuties) {
  PulsedToneSignal always(650.0, 166.0, Duration::from_seconds(1), 1.0);
  PulsedToneSignal never(650.0, 166.0, Duration::from_seconds(1), 0.0);
  for (double s : {0.1, 0.5, 0.9, 1.5}) {
    EXPECT_TRUE(always.at(SimTime::from_seconds(s)).active) << s;
    EXPECT_FALSE(never.at(SimTime::from_seconds(s)).active) << s;
  }
}

TEST(PulsedToneTest, BoundedInTime) {
  PulsedToneSignal pulse(650.0, 166.0, Duration::from_seconds(1), 0.5,
                         SimTime::from_seconds(10),
                         SimTime::from_seconds(20));
  EXPECT_FALSE(pulse.at(SimTime::from_seconds(5)).active);
  EXPECT_TRUE(pulse.at(SimTime::from_seconds(10.2)).active);
  EXPECT_FALSE(pulse.at(SimTime::from_seconds(25)).active);
}

TEST(PulsedToneTest, RejectsBadParameters) {
  EXPECT_THROW(PulsedToneSignal(0.0, 100.0, Duration::from_seconds(1), 0.5),
               std::invalid_argument);
  EXPECT_THROW(PulsedToneSignal(650.0, 100.0, Duration::zero(), 0.5),
               std::invalid_argument);
  EXPECT_THROW(PulsedToneSignal(650.0, 100.0, Duration::from_seconds(1), 1.5),
               std::invalid_argument);
}

TEST(SilenceSignalTest, NeverActive) {
  SilenceSignal s;
  EXPECT_FALSE(s.at(SimTime::zero()).active);
  EXPECT_FALSE(s.at(SimTime::from_seconds(100)).active);
}

}  // namespace
}  // namespace deepnote::acoustics
