#include "acoustics/units.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deepnote::acoustics {
namespace {

TEST(UnitsTest, DbHelpers) {
  EXPECT_DOUBLE_EQ(db_from_power_ratio(10.0), 10.0);
  EXPECT_DOUBLE_EQ(db_from_field_ratio(10.0), 20.0);
  EXPECT_DOUBLE_EQ(power_ratio_from_db(10.0), 10.0);
  EXPECT_DOUBLE_EQ(field_ratio_from_db(20.0), 10.0);
}

TEST(UnitsTest, DbRoundTrips) {
  for (double db : {-40.0, -6.0, 0.0, 3.0, 26.0, 120.0}) {
    EXPECT_NEAR(db_from_power_ratio(power_ratio_from_db(db)), db, 1e-9);
    EXPECT_NEAR(db_from_field_ratio(field_ratio_from_db(db)), db, 1e-9);
  }
}

TEST(UnitsTest, WaterSplConversions) {
  // 120 dB re 1 uPa = 1 Pa.
  EXPECT_NEAR(spl_water_db_to_pa(120.0), 1.0, 1e-9);
  EXPECT_NEAR(pa_to_spl_water_db(1.0), 120.0, 1e-9);
  // 140 dB -> 10 Pa.
  EXPECT_NEAR(spl_water_db_to_pa(140.0), 10.0, 1e-9);
}

TEST(UnitsTest, AirSplConversions) {
  // 94 dB re 20 uPa ~= 1 Pa (standard calibration figure).
  EXPECT_NEAR(spl_air_db_to_pa(94.0), 1.0, 0.01);
  EXPECT_NEAR(pa_to_spl_air_db(1.0), 94.0, 0.1);
}

TEST(UnitsTest, AirToWaterShiftIsTwentySix) {
  // The paper's Section 2.2 rule: +26 dB.
  EXPECT_NEAR(air_to_water_reference_shift_db(), 26.02, 0.01);
  EXPECT_NEAR(spl_air_db_to_water_db(140.0), 166.02, 0.01);
  EXPECT_NEAR(spl_water_db_to_air_db(166.02), 140.0, 0.01);
}

TEST(UnitsTest, SamePressureSameSplAcrossReferences) {
  // Converting a level between references must preserve pressure.
  const double air_db = 140.0;
  const double water_db = spl_air_db_to_water_db(air_db);
  EXPECT_NEAR(spl_air_db_to_pa(air_db), spl_water_db_to_pa(water_db), 1e-9);
}

class SplRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(SplRoundTripTest, WaterRoundTrip) {
  const double db = GetParam();
  EXPECT_NEAR(pa_to_spl_water_db(spl_water_db_to_pa(db)), db, 1e-9);
}

TEST_P(SplRoundTripTest, AirWaterAirRoundTrip) {
  const double db = GetParam();
  EXPECT_NEAR(spl_water_db_to_air_db(spl_air_db_to_water_db(db)), db, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, SplRoundTripTest,
                         ::testing::Values(60.0, 94.0, 120.0, 140.0, 180.0,
                                           220.0));

}  // namespace
}  // namespace deepnote::acoustics
