#include "acoustics/propagation.h"

#include <gtest/gtest.h>

namespace deepnote::acoustics {
namespace {

PropagationPath tank_path() {
  return PropagationPath(
      Medium(WaterConditions::tank()),
      SpreadingParams{SpreadingModel::kSpherical, 0.01, 100.0},
      AbsorptionModel::kFreshwater);
}

PropagationPath ocean_path() {
  return PropagationPath(
      Medium(WaterConditions::ocean()),
      SpreadingParams{SpreadingModel::kPractical, 1.0, 100.0},
      AbsorptionModel::kAinslieMcColm);
}

TEST(PropagationTest, ReceivedLevelAtReferenceEqualsSource) {
  const auto path = tank_path();
  ToneState tone{650.0, 166.0, true};
  EXPECT_NEAR(path.received_spl_db(tone, 0.01), 166.0, 1e-9);
}

TEST(PropagationTest, NearFieldDominatedBySpreading) {
  const auto path = tank_path();
  ToneState tone{650.0, 166.0, true};
  // 1 cm -> 10 cm: 20 dB of spherical spreading, absorption negligible.
  EXPECT_NEAR(path.received_spl_db(tone, 0.10), 146.0, 0.01);
  EXPECT_NEAR(path.received_spl_db(tone, 0.25), 138.04, 0.01);
}

TEST(PropagationTest, InactiveTonePassesThrough) {
  const auto path = tank_path();
  ToneState silent{};
  EXPECT_FALSE(path.received(silent, 1.0).active);
}

TEST(PropagationTest, DelayUsesSoundSpeed) {
  const auto path = tank_path();
  const double c = path.medium().sound_speed();
  EXPECT_NEAR(path.delay_seconds(c), 1.0, 1e-9);
  EXPECT_NEAR(path.delay_seconds(0.25), 0.25 / c, 1e-12);
}

TEST(PropagationTest, RequiredSourceLevelInvertsLoss) {
  const auto path = ocean_path();
  const double needed =
      path.required_source_level_db(650.0, 500.0, 140.0);
  EXPECT_NEAR(path.received_spl_db(ToneState{650.0, needed, true}, 500.0),
              140.0, 1e-9);
}

TEST(PropagationTest, MaxRangeIsConsistentWithDelivery) {
  const auto path = ocean_path();
  const double range = path.max_effective_range_m(650.0, 200.0, 140.0);
  ASSERT_GT(range, 0.0);
  // Delivered level at the range boundary is (just) the target...
  EXPECT_NEAR(
      path.received_spl_db(ToneState{650.0, 200.0, true}, range), 140.0,
      0.01);
  // ...and below it slightly beyond.
  EXPECT_LT(
      path.received_spl_db(ToneState{650.0, 200.0, true}, range * 1.01),
      140.0);
}

TEST(PropagationTest, MaxRangeZeroWhenUnreachable) {
  const auto path = ocean_path();
  EXPECT_EQ(path.max_effective_range_m(650.0, 100.0, 200.0), 0.0);
}

TEST(PropagationTest, LouderSourceReachesFarther) {
  // The paper's Section 5 "Effective Range" argument: a military-grade
  // source extends the attack radius.
  const auto path = ocean_path();
  const double pool = path.max_effective_range_m(650.0, 166.0, 150.0);
  const double sonar = path.max_effective_range_m(650.0, 220.0, 150.0);
  EXPECT_GT(sonar, pool * 10.0);
}

TEST(PropagationTest, HigherFrequencyShorterRange) {
  const auto path = ocean_path();
  const double lo = path.max_effective_range_m(650.0, 220.0, 120.0, 1e7);
  const double hi = path.max_effective_range_m(50000.0, 220.0, 120.0, 1e7);
  EXPECT_GT(lo, hi);
}

}  // namespace
}  // namespace deepnote::acoustics
