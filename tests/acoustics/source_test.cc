#include "acoustics/source.h"

#include <gtest/gtest.h>

#include <memory>

namespace deepnote::acoustics {
namespace {

using sim::SimTime;

AcousticSource tone_source(double frequency_hz, double level_db,
                           SpeakerSpec speaker = SpeakerSpec::aq339_diluvio(),
                           AmplifierSpec amp = AmplifierSpec::toa_bg2120()) {
  return AcousticSource(
      std::make_shared<ToneSignal>(frequency_hz, level_db), speaker, amp);
}

TEST(SourceTest, PassbandIsTransparent) {
  const auto src = tone_source(650.0, 166.0);
  const ToneState out = src.emitted(SimTime::zero());
  EXPECT_TRUE(out.active);
  EXPECT_EQ(out.frequency_hz, 650.0);
  EXPECT_NEAR(out.level_db, 166.0, 1e-9);
}

TEST(SourceTest, RolloffBelowPassband) {
  const auto& spec = SpeakerSpec::aq339_diluvio();
  const auto src = tone_source(spec.passband_lo_hz / 2.0, 166.0);
  const ToneState out = src.emitted(SimTime::zero());
  // One octave below: one rolloff step down.
  EXPECT_NEAR(out.level_db, 166.0 - spec.rolloff_db_per_octave, 0.01);
}

TEST(SourceTest, RolloffAbovePassband) {
  const auto& spec = SpeakerSpec::aq339_diluvio();
  const auto src = tone_source(spec.passband_hi_hz * 4.0, 166.0);
  const ToneState out = src.emitted(SimTime::zero());
  EXPECT_NEAR(out.level_db, 166.0 - 2.0 * spec.rolloff_db_per_octave, 0.01);
}

TEST(SourceTest, SpeakerMaxOutputCaps) {
  const auto src = tone_source(650.0, 500.0);  // absurd request
  const ToneState out = src.emitted(SimTime::zero());
  EXPECT_LE(out.level_db, SpeakerSpec::aq339_diluvio().max_output_db);
}

TEST(SourceTest, AmplifierClipCaps) {
  AmplifierSpec amp;
  amp.gain_db = 40.0;
  amp.clip_level_db = 170.0;
  const auto src =
      tone_source(650.0, 150.0, SpeakerSpec::aq339_diluvio(), amp);
  // 150 + 40 = 190 would exceed the clip; capped at 170.
  EXPECT_NEAR(src.emitted(SimTime::zero()).level_db, 170.0, 1e-9);
}

TEST(SourceTest, AmplifierGainApplies) {
  AmplifierSpec amp;
  amp.gain_db = 6.0;
  const auto src =
      tone_source(650.0, 150.0, SpeakerSpec::aq339_diluvio(), amp);
  EXPECT_NEAR(src.emitted(SimTime::zero()).level_db, 156.0, 1e-9);
}

TEST(SourceTest, InactiveSignalStaysInactive) {
  AcousticSource src(std::make_shared<SilenceSignal>(),
                     SpeakerSpec::aq339_diluvio());
  EXPECT_FALSE(src.emitted(SimTime::zero()).active);
}

TEST(SourceTest, SonarProjectorIsLouder) {
  EXPECT_GT(SpeakerSpec::sonar_projector().max_output_db,
            SpeakerSpec::aq339_diluvio().max_output_db);
}

TEST(SourceTest, NullSignalThrows) {
  EXPECT_THROW(
      AcousticSource(nullptr, SpeakerSpec::aq339_diluvio()),
      std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::acoustics
