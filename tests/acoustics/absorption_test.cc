#include "acoustics/absorption.h"

#include <gtest/gtest.h>

namespace deepnote::acoustics {
namespace {

TEST(AbsorptionTest, BalticReferenceFromPaper) {
  // Section 4.2: "water at a 50 m depth in the Baltic Sea was found to
  // attenuate a 500 Hz signal by 0.038 dB/km". Ainslie & McColm with
  // Baltic parameters should land in that neighbourhood.
  const auto baltic = WaterConditions::baltic();
  const double alpha =
      absorption_db_per_km(AbsorptionModel::kAinslieMcColm, 500.0, baltic);
  EXPECT_GT(alpha, 0.01);
  EXPECT_LT(alpha, 0.08);
}

TEST(AbsorptionTest, SeawaterAtOneKilohertz) {
  // Open-ocean absorption at 1 kHz is ~0.06 dB/km (textbook figure).
  const auto ocean = WaterConditions::ocean();
  const double alpha =
      absorption_db_per_km(AbsorptionModel::kAinslieMcColm, 1000.0, ocean);
  EXPECT_GT(alpha, 0.02);
  EXPECT_LT(alpha, 0.2);
}

TEST(AbsorptionTest, MonotoneInFrequency) {
  const auto ocean = WaterConditions::ocean();
  for (auto model : {AbsorptionModel::kAinslieMcColm,
                     AbsorptionModel::kFisherSimmons,
                     AbsorptionModel::kFreshwater}) {
    double prev = 0.0;
    for (double f = 100.0; f <= 100000.0; f *= 2.0) {
      const double alpha = absorption_db_per_km(model, f, ocean);
      EXPECT_GE(alpha, prev) << "f=" << f;
      prev = alpha;
    }
  }
}

TEST(AbsorptionTest, FreshwaterAbsorbsLessThanSeawater) {
  // The chemical relaxation terms (boric acid, MgSO4) only exist in
  // saltwater; a freshwater tank barely attenuates in the audio band.
  const auto ocean = WaterConditions::ocean();
  for (double f : {300.0, 650.0, 1300.0, 8000.0}) {
    const double sea =
        absorption_db_per_km(AbsorptionModel::kAinslieMcColm, f, ocean);
    const double fresh =
        absorption_db_per_km(AbsorptionModel::kFreshwater, f, ocean);
    EXPECT_LT(fresh, sea) << "f=" << f;
  }
}

TEST(AbsorptionTest, NegligibleAtAttackScaleDistances) {
  // Over 25 cm (the paper's maximum distance), absorption is
  // vanishingly small — the range falloff must come from spreading.
  const auto tank = WaterConditions::tank();
  const double db =
      path_absorption_db(AbsorptionModel::kFreshwater, 650.0, tank, 0.25);
  EXPECT_LT(db, 1e-6);
}

TEST(AbsorptionTest, FisherSimmonsSameOrderAsAinslieMcColm) {
  const auto ocean = WaterConditions::ocean();
  for (double f : {500.0, 2000.0, 10000.0, 50000.0}) {
    const double am =
        absorption_db_per_km(AbsorptionModel::kAinslieMcColm, f, ocean);
    const double fs =
        absorption_db_per_km(AbsorptionModel::kFisherSimmons, f, ocean);
    EXPECT_GT(fs, am / 20.0) << "f=" << f;
    EXPECT_LT(fs, am * 20.0) << "f=" << f;
  }
}

TEST(AbsorptionTest, PathAbsorptionScalesWithDistance) {
  const auto ocean = WaterConditions::ocean();
  const double one_km =
      path_absorption_db(AbsorptionModel::kAinslieMcColm, 1000.0, ocean,
                         1000.0);
  const double two_km =
      path_absorption_db(AbsorptionModel::kAinslieMcColm, 1000.0, ocean,
                         2000.0);
  EXPECT_NEAR(two_km, 2.0 * one_km, 1e-9);
}

class AbsorptionTemperatureTest : public ::testing::TestWithParam<double> {};

TEST_P(AbsorptionTemperatureTest, ViscousTermDecreasesWithTemperature) {
  // Pure-water absorption falls as water warms (lower viscosity).
  const double f = GetParam();
  double prev = freshwater_db_per_km(f, 0.0, 1.0);
  for (double t = 5.0; t <= 30.0; t += 5.0) {
    const double alpha = freshwater_db_per_km(f, t, 1.0);
    EXPECT_LT(alpha, prev) << "T=" << t;
    prev = alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, AbsorptionTemperatureTest,
                         ::testing::Values(500.0, 5000.0, 50000.0));

}  // namespace
}  // namespace deepnote::acoustics
