#include "acoustics/spreading.h"

#include <gtest/gtest.h>

namespace deepnote::acoustics {
namespace {

SpreadingParams spherical(double r0 = 0.01) {
  return SpreadingParams{SpreadingModel::kSpherical, r0, 100.0};
}

TEST(SpreadingTest, ZeroLossAtReference) {
  EXPECT_DOUBLE_EQ(spreading_loss_db(spherical(), 0.01), 0.0);
}

TEST(SpreadingTest, InsideReferenceClampsToZero) {
  EXPECT_DOUBLE_EQ(spreading_loss_db(spherical(), 0.001), 0.0);
}

TEST(SpreadingTest, SphericalSixDbPerDoubling) {
  const double at_2cm = spreading_loss_db(spherical(), 0.02);
  const double at_4cm = spreading_loss_db(spherical(), 0.04);
  EXPECT_NEAR(at_2cm, 6.02, 0.01);
  EXPECT_NEAR(at_4cm - at_2cm, 6.02, 0.01);
}

TEST(SpreadingTest, PaperDistances) {
  // The Table 1 distance ladder: spreading from 1 cm reference.
  EXPECT_NEAR(spreading_loss_db(spherical(), 0.05), 13.98, 0.01);
  EXPECT_NEAR(spreading_loss_db(spherical(), 0.10), 20.0, 0.01);
  EXPECT_NEAR(spreading_loss_db(spherical(), 0.25), 27.96, 0.01);
}

TEST(SpreadingTest, CylindricalThreeDbPerDoubling) {
  const SpreadingParams p{SpreadingModel::kCylindrical, 1.0, 100.0};
  EXPECT_NEAR(spreading_loss_db(p, 2.0), 3.01, 0.01);
  EXPECT_NEAR(spreading_loss_db(p, 4.0), 6.02, 0.01);
}

TEST(SpreadingTest, PracticalTransitions) {
  const SpreadingParams p{SpreadingModel::kPractical, 1.0, 100.0};
  // Spherical inside the transition range...
  EXPECT_NEAR(spreading_loss_db(p, 10.0), 20.0, 0.01);
  EXPECT_NEAR(spreading_loss_db(p, 100.0), 40.0, 0.01);
  // ...cylindrical beyond.
  EXPECT_NEAR(spreading_loss_db(p, 1000.0), 50.0, 0.01);
}

TEST(SpreadingTest, MonotoneInDistance) {
  for (auto model : {SpreadingModel::kSpherical, SpreadingModel::kCylindrical,
                     SpreadingModel::kPractical}) {
    const SpreadingParams p{model, 0.01, 10.0};
    double prev = -1.0;
    for (double d = 0.01; d < 1000.0; d *= 1.7) {
      const double tl = spreading_loss_db(p, d);
      EXPECT_GE(tl, prev);
      prev = tl;
    }
  }
}

TEST(SpreadingTest, BadReferenceThrows) {
  SpreadingParams p = spherical(0.0);
  EXPECT_THROW(spreading_loss_db(p, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::acoustics
