#include "acoustics/medium.h"

#include <gtest/gtest.h>

namespace deepnote::acoustics {
namespace {

TEST(MediumTest, MedwinReferenceValue) {
  // Medwin (1975) at T=20C, S=35 ppt, z=0: c ~= 1521 m/s.
  const double c = Medium::medwin_sound_speed(20.0, 35.0, 0.0);
  EXPECT_NEAR(c, 1521.0, 2.0);
}

TEST(MediumTest, FreshwaterSlowerThanSeawater) {
  const double fresh = Medium::medwin_sound_speed(20.0, 0.0, 0.0);
  const double sea = Medium::medwin_sound_speed(20.0, 35.0, 0.0);
  EXPECT_LT(fresh, sea);
  // Fresh water at 20C is ~1482 m/s.
  EXPECT_NEAR(fresh, 1482.0, 4.0);
}

TEST(MediumTest, SoundRoughlyFourTimesFasterThanAir) {
  // Section 2.2: "sound wave travels approximately 4 times faster in
  // water than air".
  const Medium tank{WaterConditions::tank()};
  EXPECT_NEAR(tank.sound_speed() / kSoundSpeedAirMs, 4.3, 0.3);
}

TEST(MediumTest, SpeedIncreasesWithTemperature) {
  double prev = Medium::medwin_sound_speed(0.0, 35.0, 10.0);
  for (double t = 2.0; t <= 30.0; t += 2.0) {
    const double c = Medium::medwin_sound_speed(t, 35.0, 10.0);
    EXPECT_GT(c, prev) << "T=" << t;
    prev = c;
  }
}

TEST(MediumTest, SpeedIncreasesWithSalinity) {
  double prev = Medium::medwin_sound_speed(10.0, 0.0, 10.0);
  for (double s = 5.0; s <= 40.0; s += 5.0) {
    const double c = Medium::medwin_sound_speed(10.0, s, 10.0);
    EXPECT_GT(c, prev) << "S=" << s;
    prev = c;
  }
}

TEST(MediumTest, SpeedIncreasesWithDepth) {
  double prev = Medium::medwin_sound_speed(10.0, 35.0, 0.0);
  for (double z = 100.0; z <= 1000.0; z += 100.0) {
    const double c = Medium::medwin_sound_speed(10.0, 35.0, z);
    EXPECT_GT(c, prev) << "z=" << z;
    prev = c;
  }
}

TEST(MediumTest, ImpedanceOrderOfMagnitude) {
  // Seawater characteristic impedance ~1.5e6 rayl.
  const Medium sea{WaterConditions::ocean()};
  EXPECT_NEAR(sea.impedance(), 1.54e6, 0.1e6);
}

TEST(MediumTest, Wavelength) {
  const Medium tank{WaterConditions::tank()};
  const double c = tank.sound_speed();
  EXPECT_NEAR(tank.wavelength(1000.0), c / 1000.0, 1e-9);
  // 650 Hz underwater: ~2.3 m wavelength — much larger than the
  // enclosure, which justifies the lumped (non-diffractive) chain model.
  EXPECT_GT(tank.wavelength(650.0), 2.0);
}

TEST(MediumTest, Presets) {
  EXPECT_EQ(WaterConditions::tank().salinity_ppt, 0.0);
  EXPECT_EQ(WaterConditions::ocean().salinity_ppt, 35.0);
  EXPECT_NEAR(WaterConditions::baltic().salinity_ppt, 7.0, 0.1);
  EXPECT_EQ(WaterConditions::ocean(100.0).depth_m, 100.0);
}

}  // namespace
}  // namespace deepnote::acoustics
