#include "hdd/geometry.h"

#include <gtest/gtest.h>

#include <set>

namespace deepnote::hdd {
namespace {

TEST(GeometryTest, BarracudaCapacityIsHalfTerabyte) {
  const Geometry g = Geometry::barracuda_500gb();
  EXPECT_GT(g.capacity_bytes(), 470e9);
  EXPECT_LT(g.capacity_bytes(), 530e9);
  EXPECT_EQ(g.heads(), 2u);
  EXPECT_DOUBLE_EQ(g.rpm(), 7200.0);
  EXPECT_NEAR(g.revolution_s(), 8.333e-3, 1e-5);
}

TEST(GeometryTest, LocateFirstAndLastSector) {
  const Geometry g = Geometry::barracuda_500gb();
  const PhysicalAddress first = g.locate(0);
  EXPECT_EQ(first.cylinder, 0u);
  EXPECT_EQ(first.head, 0u);
  EXPECT_EQ(first.sector, 0u);
  EXPECT_EQ(first.zone, 0u);
  const PhysicalAddress last = g.locate(g.total_sectors() - 1);
  EXPECT_EQ(last.zone, g.zones().size() - 1);
  EXPECT_EQ(last.cylinder, g.total_cylinders() - 1);
}

TEST(GeometryTest, LocateBeyondDeviceThrows) {
  const Geometry g = Geometry::tiny_test_drive();
  EXPECT_THROW(g.locate(g.total_sectors()), std::out_of_range);
}

TEST(GeometryTest, MappingIsInjective) {
  const Geometry g = Geometry::tiny_test_drive();
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t lba = 0; lba < g.total_sectors(); ++lba) {
    const PhysicalAddress a = g.locate(lba);
    ASSERT_TRUE(
        seen.emplace(a.cylinder, a.head, a.sector).second)
        << "duplicate mapping at lba " << lba;
    ASSERT_LT(a.sector, g.zones()[a.zone].sectors_per_track);
    ASSERT_LT(a.head, g.heads());
  }
  EXPECT_EQ(seen.size(), g.total_sectors());
}

TEST(GeometryTest, SequentialLbasStayOnTrackThenAdvance) {
  const Geometry g = Geometry::tiny_test_drive();
  const std::uint32_t spt = g.zones()[0].sectors_per_track;
  for (std::uint32_t i = 0; i < spt; ++i) {
    EXPECT_EQ(g.locate(i).head, 0u);
    EXPECT_EQ(g.locate(i).cylinder, 0u);
    EXPECT_EQ(g.locate(i).sector, i);
  }
  // Next sector rolls to the next head, same cylinder.
  EXPECT_EQ(g.locate(spt).head, 1u);
  EXPECT_EQ(g.locate(spt).cylinder, 0u);
}

TEST(GeometryTest, OuterZoneFasterThanInner) {
  const Geometry g = Geometry::barracuda_500gb();
  const double outer = g.media_rate_bps(0);
  const double inner = g.media_rate_bps(g.total_sectors() - 1);
  EXPECT_GT(outer, inner);
  EXPECT_NEAR(outer / inner, 2.0, 0.1);  // 2400 vs 1200 spt
  // Outer-zone sustained rate ~147 MB/s, desktop-class.
  EXPECT_NEAR(outer / 1e6, 147.0, 5.0);
}

TEST(GeometryTest, InvalidConfigsThrow) {
  EXPECT_THROW(Geometry(0, 7200, 100, {Zone{0, 1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(Geometry(1, 0, 100, {Zone{0, 1, 1}}), std::invalid_argument);
  EXPECT_THROW(Geometry(1, 7200, 100, {}), std::invalid_argument);
  EXPECT_THROW(Geometry(1, 7200, 100, {Zone{0, 0, 1}}),
               std::invalid_argument);
}

class ZoneBoundaryTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZoneBoundaryTest, ZoneIndexMatchesLocate) {
  const Geometry g = Geometry::barracuda_500gb();
  const std::size_t zi = GetParam();
  ASSERT_LT(zi, g.zones().size());
  // First LBA of zone zi: sum of previous zone sizes.
  std::uint64_t lba = 0;
  for (std::size_t i = 0; i < zi; ++i) {
    lba += static_cast<std::uint64_t>(g.zones()[i].cylinders) * g.heads() *
           g.zones()[i].sectors_per_track;
  }
  EXPECT_EQ(g.locate(lba).zone, zi);
  if (lba > 0) EXPECT_EQ(g.locate(lba - 1).zone, zi - 1);
}

INSTANTIATE_TEST_SUITE_P(Zones, ZoneBoundaryTest,
                         ::testing::Values(0u, 1u, 7u, 15u));

}  // namespace
}  // namespace deepnote::hdd
