#include "hdd/smart.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/attack.h"
#include "core/scenario.h"
#include "core/testbed.h"
#include "workload/fio.h"

namespace deepnote::hdd {
namespace {

using sim::SimTime;

void run_write_job(core::Testbed& bed, double seconds) {
  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kSeqWrite;
  job.submit_overhead = bed.spec().fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(1.0);
  job.duration = sim::Duration::from_seconds(seconds);
  workload::FioRunner runner(bed.device());
  runner.run(SimTime::zero(), job);
}

TEST(SmartTest, FreshDriveIsHealthy) {
  core::ScenarioSpec spec =
      core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  run_write_job(bed, 10.0);
  const SmartLog log = smart_log(bed.drive());
  EXPECT_TRUE(log.healthy());
  const auto* rrer = log.find(kAttrRawReadErrorRate);
  ASSERT_NE(rrer, nullptr);
  EXPECT_EQ(rrer->normalized, 100);
  EXPECT_EQ(rrer->raw_value, 0u);
  const auto* ops = log.find(kAttrPowerOnIoCount);
  ASSERT_NE(ops, nullptr);
  EXPECT_GT(ops->raw_value, 1000u);
}

TEST(SmartTest, AttackLeavesForensicFingerprint) {
  core::ScenarioSpec spec =
      core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  core::AttackConfig attack;
  attack.distance_m = 0.10;  // heavy retries + false trips, no hard park
  bed.apply_attack(SimTime::zero(), attack);
  run_write_job(bed, 20.0);

  const SmartLog log = smart_log(bed.drive());
  const auto* retries = log.find(kAttrRetrySectorEvents);
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->raw_value, 100u);
  EXPECT_LT(retries->normalized, 100);
  const auto* parks = log.find(kAttrLoadCycleCount);
  ASSERT_NE(parks, nullptr);
  EXPECT_GT(parks->raw_value, 0u);
}

TEST(SmartTest, ParkedDriveAccumulatesTimeouts) {
  core::ScenarioSpec spec =
      core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  bed.apply_attack(SimTime::zero(), core::AttackConfig{});  // 1 cm: park
  std::vector<std::byte> out(4096);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 10; ++i) {
    bed.device().read(t, static_cast<std::uint64_t>(i) * 8, 8, out);
    t = t + sim::Duration::from_seconds(80);
  }
  const SmartLog log = smart_log(bed.drive());
  const auto* timeouts = log.find(kAttrCommandTimeout);
  ASSERT_NE(timeouts, nullptr);
  EXPECT_GT(timeouts->raw_value, 9u);
}

// SMART 177 for the flash tier of a hybrid node: normalized health
// counts down linearly with consumed program/erase endurance. Takes
// plain numbers, so the HDD library stays independent of the flash
// model — the hybrid layer feeds it from FlashDevice wear counters.
TEST(SmartTest, MediaWearoutCountsDownWithEraseCycles) {
  const SmartAttribute fresh = media_wearout_attribute(0.0, 3000);
  EXPECT_EQ(fresh.id, kAttrMediaWearout);
  EXPECT_EQ(fresh.name, "Media_Wearout_Indicator");
  EXPECT_EQ(fresh.normalized, 100);
  EXPECT_EQ(fresh.raw_value, 0u);
  EXPECT_FALSE(fresh.failing_now());

  const SmartAttribute half = media_wearout_attribute(1500.0, 3000);
  EXPECT_EQ(half.normalized, 50);
  EXPECT_EQ(half.raw_value, 1500u);
  EXPECT_FALSE(half.failing_now());

  // At and past rated endurance the scale bottoms out at 1 (never 0),
  // and the attribute reads as failing against its threshold.
  const SmartAttribute spent = media_wearout_attribute(3000.0, 3000);
  EXPECT_EQ(spent.normalized, 1);
  EXPECT_TRUE(spent.failing_now());
  const SmartAttribute beyond = media_wearout_attribute(9000.0, 3000);
  EXPECT_EQ(beyond.normalized, 1);

  // A zero rating must not divide by zero.
  const SmartAttribute unrated = media_wearout_attribute(10.0, 0);
  EXPECT_GE(unrated.normalized, 1);
}

TEST(SmartTest, TextRenderingContainsAttributes) {
  core::ScenarioSpec spec =
      core::make_scenario(core::ScenarioId::kPlasticTower);
  core::Testbed bed(spec);
  const std::string text = smart_log(bed.drive()).to_text();
  EXPECT_NE(text.find("Raw_Read_Error_Rate"), std::string::npos);
  EXPECT_NE(text.find("Load_Cycle_Count"), std::string::npos);
  EXPECT_NE(text.find("Command_Timeout"), std::string::npos);
}

}  // namespace
}  // namespace deepnote::hdd
