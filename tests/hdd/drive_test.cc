#include "hdd/drive.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::hdd {
namespace {

using sim::Duration;
using sim::SimTime;

HddConfig test_config() {
  HddConfig cfg;
  cfg.geometry = Geometry::barracuda_500gb();
  cfg.servo.track_pitch_nm = 100.0;
  cfg.servo.write_fault_fraction = 0.10;
  cfg.servo.read_fault_fraction = 0.20;
  cfg.servo.compliance_floor_nm_per_pa = 0.01;  // floor-only: direct control
  cfg.servo.rejection_corner_hz = 0.0;
  cfg.servo.park_fraction = 0.25;
  cfg.servo.park_resume_s = 0.3;
  cfg.servo.false_trip_max_hz = 0.0;  // deterministic unless enabled
  cfg.command_overhead_read_s = 100e-6;
  cfg.command_overhead_write_s = 60e-6;
  cfg.write_cache_bytes = 1ull << 20;  // small cache: fills fast in tests
  cfg.lookahead_buffer_bytes = 1ull << 20;
  cfg.rng_seed = 42;
  return cfg;
}

std::vector<std::byte> block(std::uint32_t sectors, std::uint8_t fill) {
  return std::vector<std::byte>(
      static_cast<std::size_t>(sectors) * kSectorSize,
      static_cast<std::byte>(fill));
}

structure::DriveExcitation tone(double f, double pa) {
  return structure::DriveExcitation{f, pa, true};
}

TEST(DriveTest, WriteReadRoundTripThroughCache) {
  Hdd drive(test_config());
  auto data = block(8, 0xab);
  const IoResult w = drive.write(SimTime::zero(), 100, 8, data);
  ASSERT_TRUE(w.ok());
  std::vector<std::byte> out(data.size());
  const IoResult r = drive.read(w.complete, 100, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);  // served from the cache overlay
}

TEST(DriveTest, DataDurableAfterFlush) {
  Hdd drive(test_config());
  auto data = block(8, 0x77);
  const IoResult w = drive.write(SimTime::zero(), 0, 8, data);
  const IoResult f = drive.flush(w.complete);
  ASSERT_TRUE(f.ok());
  drive.power_cut();  // volatile state gone
  std::vector<std::byte> out(data.size());
  const IoResult r = drive.read(f.complete, 0, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(DriveTest, PowerCutLosesUnflushedWrites) {
  Hdd drive(test_config());
  auto data = block(8, 0x55);
  const IoResult w = drive.write(SimTime::zero(), 0, 8, data);
  ASSERT_TRUE(w.ok());
  drive.power_cut();
  std::vector<std::byte> out(data.size(), std::byte{0xff});
  const IoResult r = drive.read(w.complete, 0, 8, out);
  ASSERT_TRUE(r.ok());
  for (auto b : out) EXPECT_EQ(b, std::byte{0});  // lost
}

TEST(DriveTest, CachedWriteCostsOnlyInterfaceOverhead) {
  Hdd drive(test_config());
  auto data = block(8, 0x01);
  const IoResult w = drive.write(SimTime::zero(), 0, 8, data);
  EXPECT_NEAR((w.complete - SimTime::zero()).seconds(), 60e-6, 1e-9);
}

TEST(DriveTest, SequentialReadsBecomeLookaheadHits) {
  Hdd drive(test_config());
  std::vector<std::byte> out(8 * kSectorSize);
  SimTime t = SimTime::zero();
  // First read pays media; subsequent sequential reads hit the buffer.
  IoResult r = drive.read(t, 0, 8, out);
  ASSERT_TRUE(r.ok());
  t = r.complete + Duration::from_millis(1);  // let the prefetcher refill
  double total = 0.0;
  for (int i = 1; i <= 16; ++i) {
    r = drive.read(t, static_cast<std::uint64_t>(i) * 8, 8, out);
    ASSERT_TRUE(r.ok());
    total += (r.complete - t).seconds();
    t = r.complete;
  }
  // Average near the interface overhead, far below a revolution.
  EXPECT_LT(total / 16.0, 3 * 100e-6);
}

TEST(DriveTest, RandomReadPaysSeekAndRotation) {
  Hdd drive(test_config());
  std::vector<std::byte> out(8 * kSectorSize);
  SimTime t = SimTime::zero();
  IoResult r = drive.read(t, 0, 8, out);
  t = r.complete;
  // A far jump must cost milliseconds (seek + rotational latency).
  const std::uint64_t far_lba = drive.geometry().total_sectors() / 2;
  r = drive.read(t, far_lba, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_GT((r.complete - t).seconds(), 2e-3);
}

TEST(DriveTest, ParkedDriveHangsEverything) {
  Hdd drive(test_config());
  // 3000 Pa * 0.01 nm/Pa = 30 nm > 25 nm park threshold.
  drive.set_excitation(SimTime::zero(), tone(650.0, 3000.0));
  EXPECT_TRUE(drive.parked());
  std::vector<std::byte> out(8 * kSectorSize);
  EXPECT_EQ(drive.read(SimTime::zero(), 0, 8, out).status, IoStatus::kHung);
  // A flush with pending cached writes cannot reach media either.
  auto data = block(8, 0x11);
  ASSERT_TRUE(drive.write(SimTime::zero(), 0, 8, data).ok());
  EXPECT_EQ(drive.flush(SimTime::zero()).status, IoStatus::kHung);
  EXPECT_GT(drive.stats().hung_commands, 0u);
}

TEST(DriveTest, ParkedDriveStillAcceptsCachedWritesUntilFull) {
  Hdd drive(test_config());
  drive.set_excitation(SimTime::zero(), tone(650.0, 3000.0));
  auto data = block(8, 0x99);
  SimTime t = SimTime::zero();
  // 1 MiB cache = 256 x 4 KiB writes absorbed...
  IoResult w{};
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    w = drive.write(t, static_cast<std::uint64_t>(i) * 8, 8, data);
    if (w.status != IoStatus::kOk) break;
    ++accepted;
    t = w.complete;
  }
  EXPECT_EQ(accepted, 256);
  EXPECT_EQ(w.status, IoStatus::kHung);  // cache full, drain blocked
}

TEST(DriveTest, RecoversAfterAttackStops) {
  Hdd drive(test_config());
  drive.set_excitation(SimTime::zero(), tone(650.0, 3000.0));
  EXPECT_TRUE(drive.parked());
  drive.set_excitation(SimTime::from_seconds(1), structure::DriveExcitation{});
  EXPECT_FALSE(drive.parked());
  std::vector<std::byte> out(8 * kSectorSize);
  const IoResult r = drive.read(SimTime::from_seconds(1), 0, 8, out);
  EXPECT_TRUE(r.ok());
  // Unpark + recalibrate costs at most ~resume + media time.
  EXPECT_LT((r.complete - SimTime::from_seconds(1)).seconds(), 0.5);
}

TEST(DriveTest, VibrationCausesRetries) {
  HddConfig cfg = test_config();
  Hdd drive(cfg);
  // 1.8x write threshold: heavy write retries, reads unaffected.
  drive.set_excitation(SimTime::zero(), tone(650.0, 1800.0));
  auto data = block(8, 0x10);
  SimTime t = SimTime::zero();
  // Keep writing until the cache saturates and a write goes media-bound
  // (slower than a millisecond).
  bool saw_blocked_write = false;
  for (int i = 0; i < 2000; ++i) {
    const IoResult w = drive.write(t, static_cast<std::uint64_t>(i) * 8, 8,
                                   data);
    ASSERT_EQ(w.status, IoStatus::kOk);
    if ((w.complete - t).seconds() > 1e-3) {
      saw_blocked_write = true;
      t = w.complete;
      break;
    }
    t = w.complete;
  }
  EXPECT_TRUE(saw_blocked_write);
  EXPECT_GT(drive.stats().media_retries, 0u);
}

TEST(DriveTest, DeadlineRejectsWithoutSideEffects) {
  Hdd drive(test_config());
  drive.set_excitation(SimTime::zero(), tone(650.0, 1800.0));
  auto data = block(8, 0x20);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 256; ++i) {
    t = drive.write(t, static_cast<std::uint64_t>(i) * 8, 8, data).complete;
  }
  const std::uint64_t cached_before = drive.cached_bytes(t);
  // Impossible deadline: must hang and leave the cache untouched.
  const IoResult w =
      drive.write(t, 10000, 8, data, t + Duration::from_micros(1));
  EXPECT_EQ(w.status, IoStatus::kHung);
  EXPECT_EQ(drive.cached_bytes(t), cached_before);
}

TEST(DriveTest, FlushDeadlineHungLeavesCacheIntact) {
  Hdd drive(test_config());
  // Slow the drain so the cache retains content between writes.
  drive.set_excitation(SimTime::zero(), tone(650.0, 1800.0));
  auto data = block(8, 0x30);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 64; ++i) {
    t = drive.write(t, static_cast<std::uint64_t>(i) * 8, 8, data).complete;
  }
  const std::uint64_t cached = drive.cached_bytes(t);
  ASSERT_GT(cached, 0u);
  const IoResult f = drive.flush(t, t + Duration::from_nanos(1));
  EXPECT_EQ(f.status, IoStatus::kHung);
  EXPECT_EQ(drive.cached_bytes(t), cached);
  // Without a deadline (and without vibration) the flush succeeds and
  // empties the cache.
  drive.set_excitation(t, structure::DriveExcitation{});
  const IoResult f2 = drive.flush(t);
  EXPECT_TRUE(f2.ok());
  EXPECT_EQ(drive.cached_bytes(f2.complete), 0u);
}

TEST(DriveTest, BackgroundDrainEmptiesCacheOverTime) {
  Hdd drive(test_config());
  // Park the media so the cache retains writes...
  drive.set_excitation(SimTime::zero(), tone(650.0, 3000.0));
  auto data = block(8, 0x40);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 128; ++i) {
    t = drive.write(t, static_cast<std::uint64_t>(i) * 8, 8, data).complete;
  }
  ASSERT_GT(drive.cached_bytes(t), 0u);
  // ...then release it: the background drain empties the cache without
  // any foreground command.
  drive.set_excitation(t, structure::DriveExcitation{});
  EXPECT_EQ(drive.cached_bytes(t + Duration::from_seconds(1.0)), 0u);
}

TEST(DriveTest, ShockFalseTripsStallMedia) {
  HddConfig cfg = test_config();
  cfg.servo.false_trip_max_hz = 50.0;  // aggressive for the test
  Hdd drive(cfg);
  // 60% of park amplitude: no park but frequent false trips.
  drive.set_excitation(SimTime::zero(), tone(650.0, 1500.0));
  std::vector<std::byte> out(8 * kSectorSize);
  SimTime t = SimTime::zero();
  drive.read(t, 0, 8, out);
  // Run sequential reads for 10 simulated seconds; expect parks recorded.
  t = SimTime::from_seconds(0.5);
  for (int i = 1; i < 2000; ++i) {
    const IoResult r =
        drive.read(t, static_cast<std::uint64_t>(i) * 8, 8, out);
    ASSERT_TRUE(r.ok());
    t = sim::max(r.complete, t);
  }
  EXPECT_GT(drive.stats().shock_parks, 0u);
}

TEST(DriveTest, StatsAccumulate) {
  Hdd drive(test_config());
  auto data = block(8, 0x01);
  std::vector<std::byte> out(8 * kSectorSize);
  SimTime t = SimTime::zero();
  t = drive.write(t, 0, 8, data).complete;
  t = drive.read(t, 0, 8, out).complete;
  drive.flush(t);
  EXPECT_EQ(drive.stats().writes, 1u);
  EXPECT_EQ(drive.stats().reads, 1u);
  EXPECT_EQ(drive.stats().flushes, 1u);
  EXPECT_EQ(drive.stats().bytes_written, 8u * kSectorSize);
  EXPECT_EQ(drive.stats().bytes_read, 8u * kSectorSize);
}

TEST(DriveTest, RetainDataFalseSkipsStorageButKeepsTiming) {
  HddConfig cfg = test_config();
  cfg.retain_data = false;
  Hdd drive(cfg);
  auto data = block(8, 0x66);
  const IoResult w = drive.write(SimTime::zero(), 0, 8, data);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((w.complete - SimTime::zero()).seconds(), 60e-6, 1e-9);
  const IoResult f = drive.flush(w.complete);
  ASSERT_TRUE(f.ok());
  std::vector<std::byte> out(data.size(), std::byte{0xff});
  drive.read(f.complete, 0, 8, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});  // not retained
}

TEST(DriveTest, MismatchedSpanThrows) {
  Hdd drive(test_config());
  std::vector<std::byte> small(kSectorSize);
  EXPECT_THROW(drive.write(SimTime::zero(), 0, 8, small),
               std::invalid_argument);
  EXPECT_THROW(drive.read(SimTime::zero(), 0, 8, small),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::hdd
