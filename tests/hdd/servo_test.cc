#include "hdd/servo.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deepnote::hdd {
namespace {

ServoConfig base_config() {
  ServoConfig cfg;
  cfg.track_pitch_nm = 100.0;
  cfg.write_fault_fraction = 0.10;
  cfg.read_fault_fraction = 0.20;
  cfg.compliance_floor_nm_per_pa = 0.01;
  cfg.rejection_corner_hz = 0.0;  // disable for direct threshold math
  cfg.park_fraction = 0.25;
  cfg.false_trip_max_hz = 10.0;
  return cfg;
}

structure::DriveExcitation excite(double f, double pa) {
  return structure::DriveExcitation{f, pa, true};
}

TEST(ServoTest, Thresholds) {
  Servo servo(base_config());
  EXPECT_DOUBLE_EQ(servo.fault_threshold_nm(AccessKind::kWrite), 10.0);
  EXPECT_DOUBLE_EQ(servo.fault_threshold_nm(AccessKind::kRead), 20.0);
}

TEST(ServoTest, ReadToleranceMustExceedWrite) {
  ServoConfig cfg = base_config();
  cfg.read_fault_fraction = 0.05;  // tighter than write: invalid
  EXPECT_THROW(Servo{cfg}, std::invalid_argument);
}

TEST(ServoTest, NoExcitationMeansClean) {
  Servo servo(base_config());
  const ServoState st = servo.evaluate(structure::DriveExcitation{});
  EXPECT_EQ(st.offtrack_amplitude_nm, 0.0);
  EXPECT_FALSE(st.parked);
  EXPECT_EQ(st.false_trip_rate_hz, 0.0);
  EXPECT_EQ(servo.good_window_fraction(st, AccessKind::kWrite), 1.0);
}

TEST(ServoTest, AmplitudeIsPressureTimesCompliance) {
  Servo servo(base_config());
  // Floor-only compliance of 0.01 nm/Pa: 500 Pa -> 5 nm.
  const ServoState st = servo.evaluate(excite(650.0, 500.0));
  EXPECT_NEAR(st.offtrack_amplitude_nm, 5.0, 1e-9);
}

TEST(ServoTest, BelowThresholdFullWindow) {
  Servo servo(base_config());
  const ServoState st = servo.evaluate(excite(650.0, 900.0));  // 9 nm < 10
  EXPECT_EQ(servo.good_window_fraction(st, AccessKind::kWrite), 1.0);
  EXPECT_EQ(servo.attempt_success_probability(st, AccessKind::kWrite, 1e-4),
            1.0);
}

TEST(ServoTest, WindowShrinksWithAmplitude) {
  Servo servo(base_config());
  // 2x write threshold: w = (2/pi) asin(1/2) = 1/3.
  const ServoState st = servo.evaluate(excite(650.0, 2000.0));
  EXPECT_NEAR(servo.good_window_fraction(st, AccessKind::kWrite), 1.0 / 3.0,
              1e-9);
  // Read tolerance 20 nm equals the amplitude: full read window.
  EXPECT_EQ(servo.good_window_fraction(st, AccessKind::kRead), 1.0);
}

TEST(ServoTest, ReadsToleratesMoreThanWrites) {
  Servo servo(base_config());
  for (double pa : {1200.0, 1500.0, 2000.0, 2400.0}) {
    const ServoState st = servo.evaluate(excite(650.0, pa));
    EXPECT_GE(servo.good_window_fraction(st, AccessKind::kRead),
              servo.good_window_fraction(st, AccessKind::kWrite))
        << pa;
  }
}

TEST(ServoTest, AccessDurationPenalty) {
  Servo servo(base_config());
  const ServoState st = servo.evaluate(excite(650.0, 2000.0));  // w = 1/3
  const double p_fast =
      servo.attempt_success_probability(st, AccessKind::kWrite, 1e-6);
  const double p_slow =
      servo.attempt_success_probability(st, AccessKind::kWrite, 2e-4);
  EXPECT_GT(p_fast, p_slow);
  // Penalty is 2 f t: 2*650*2e-4 = 0.26.
  EXPECT_NEAR(p_fast - p_slow, 2.0 * 650.0 * (2e-4 - 1e-6), 1e-6);
}

TEST(ServoTest, SustainedParkAboveParkThreshold) {
  Servo servo(base_config());
  // Park at 25 nm: 2600 Pa * 0.01 = 26 nm.
  const ServoState st = servo.evaluate(excite(650.0, 2600.0));
  EXPECT_TRUE(st.parked);
  EXPECT_EQ(servo.good_window_fraction(st, AccessKind::kRead), 0.0);
  EXPECT_EQ(servo.attempt_success_probability(st, AccessKind::kRead, 1e-5),
            0.0);
}

TEST(ServoTest, FalseTripRateRampsQuadratically) {
  Servo servo(base_config());
  // Below 40% of park amplitude: no trips.
  EXPECT_EQ(servo.evaluate(excite(650.0, 900.0)).false_trip_rate_hz, 0.0);
  // At the park threshold boundary the rate approaches the max.
  const double near =
      servo.evaluate(excite(650.0, 2499.0)).false_trip_rate_hz;
  EXPECT_NEAR(near, 10.0, 0.1);
  // Midway (70% of park = 17.5 nm): (0.5)^2 * 10 = 2.5.
  const double mid =
      servo.evaluate(excite(650.0, 1750.0)).false_trip_rate_hz;
  EXPECT_NEAR(mid, 2.5, 0.05);
}

TEST(ServoTest, RejectionSuppressesLowFrequencies) {
  ServoConfig cfg = base_config();
  cfg.rejection_corner_hz = 420.0;
  cfg.rejection_order = 4;
  Servo servo(cfg);
  const double at_100 =
      servo.evaluate(excite(100.0, 1000.0)).offtrack_amplitude_nm;
  const double at_420 =
      servo.evaluate(excite(420.0, 1000.0)).offtrack_amplitude_nm;
  const double at_4200 =
      servo.evaluate(excite(4200.0, 1000.0)).offtrack_amplitude_nm;
  EXPECT_LT(at_100, at_420);
  // At the corner: half amplitude.
  EXPECT_NEAR(at_420, 5.0, 0.01);
  // Far above: full amplitude.
  EXPECT_NEAR(at_4200, 10.0, 0.01);
  // 100 Hz is (100/420)^4 / (1+...) ~ 0.32% of full.
  EXPECT_LT(at_100, 0.05);
}

TEST(ServoTest, ComplianceModesPeakAboveFloor) {
  ServoConfig cfg = base_config();
  cfg.compliance_modes.add_mode(
      structure::Mode{.f0_hz = 700.0, .q = 3.0, .peak_gain_db = 40.0});
  Servo servo(cfg);
  EXPECT_NEAR(servo.compliance_nm_per_pa(700.0), 0.01 * 101.0, 0.05);
  EXPECT_LT(servo.compliance_nm_per_pa(10000.0),
            servo.compliance_nm_per_pa(700.0) / 10.0);
}

class WindowMathTest : public ::testing::TestWithParam<double> {};

TEST_P(WindowMathTest, MatchesAsinFormula) {
  Servo servo(base_config());
  const double ratio = GetParam();  // amplitude / threshold
  const ServoState st =
      servo.evaluate(excite(650.0, 1000.0 * ratio));  // 10*ratio nm
  const double expected = (2.0 / M_PI) * std::asin(1.0 / ratio);
  EXPECT_NEAR(servo.good_window_fraction(st, AccessKind::kWrite), expected,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, WindowMathTest,
                         ::testing::Values(1.1, 1.5, 2.0, 2.49));

}  // namespace
}  // namespace deepnote::hdd
