#include "hdd/sector_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace deepnote::hdd {
namespace {

std::vector<std::byte> pattern(std::uint32_t sectors, std::uint8_t seed) {
  std::vector<std::byte> v(static_cast<std::size_t>(sectors) * kSectorSize);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return v;
}

TEST(SectorStoreTest, UnwrittenReadsZero) {
  SectorStore store(1024);
  std::vector<std::byte> out(kSectorSize, std::byte{0xff});
  store.read(5, 1, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_FALSE(store.any_written(0, 1024));
  EXPECT_EQ(store.allocated_bytes(), 0u);
}

TEST(SectorStoreTest, WriteReadRoundTrip) {
  SectorStore store(1024);
  const auto data = pattern(8, 0x42);
  store.write(100, 8, data);
  std::vector<std::byte> out(data.size());
  store.read(100, 8, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(store.any_written(100, 8));
}

TEST(SectorStoreTest, CrossesChunkBoundaries) {
  SectorStore store(4096);
  // 256 sectors per chunk: write across the boundary at sector 256.
  const auto data = pattern(32, 0x17);
  store.write(240, 32, data);
  std::vector<std::byte> out(data.size());
  store.read(240, 32, out);
  EXPECT_EQ(out, data);
}

TEST(SectorStoreTest, PartialOverwrite) {
  SectorStore store(1024);
  store.write(0, 4, pattern(4, 1));
  store.write(1, 2, pattern(2, 99));
  std::vector<std::byte> out(kSectorSize);
  store.read(0, 1, out);
  EXPECT_EQ(out, pattern(1, 1));
  store.read(1, 1, out);
  EXPECT_EQ(out, pattern(1, 99));
  store.read(3, 1, out);
  // Sector 3 retains the original pattern (offset 3 sectors into it).
  std::vector<std::byte> expected(kSectorSize);
  const auto orig = pattern(4, 1);
  std::copy(orig.begin() + 3 * kSectorSize, orig.end(), expected.begin());
  EXPECT_EQ(out, expected);
}

TEST(SectorStoreTest, BoundsChecks) {
  SectorStore store(100);
  std::vector<std::byte> buf(kSectorSize);
  EXPECT_THROW(store.write(100, 1, buf), std::out_of_range);
  std::vector<std::byte> two(2 * kSectorSize);
  EXPECT_THROW(store.read(99, 2, two), std::out_of_range);
  EXPECT_THROW(store.write(0, 2, buf), std::invalid_argument);  // size
}

TEST(SectorStoreTest, ClearDropsEverything) {
  SectorStore store(1024);
  store.write(0, 8, pattern(8, 3));
  store.clear();
  EXPECT_EQ(store.allocated_bytes(), 0u);
  std::vector<std::byte> out(kSectorSize, std::byte{0xff});
  store.read(0, 1, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(SectorStoreTest, SparseAllocationOnlyTouchedChunks) {
  SectorStore store(1ull << 30);  // huge device
  store.write(0, 1, pattern(1, 1));
  store.write(1ull << 29, 1, pattern(1, 2));
  // Two chunks of 128 KiB each.
  EXPECT_EQ(store.allocated_bytes(), 2u * 256 * kSectorSize);
}

TEST(SectorStoreTest, MultiChunkRunRoundTrip) {
  SectorStore store(4096);
  // A span covering three full chunk-runs: tail of chunk 0, all of chunk
  // 1, head of chunk 2. Exercises the run-splitting loop end to end.
  const auto data = pattern(256 + 300, 0x5c);
  store.write(200, 256 + 300, data);
  std::vector<std::byte> out(data.size());
  store.read(200, 256 + 300, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.allocated_bytes(), 3u * 256 * kSectorSize);
}

TEST(SectorStoreTest, ChunkAlignedFullChunkSpan) {
  SectorStore store(4096);
  const auto data = pattern(256, 0x33);
  store.write(256, 256, data);  // exactly chunk 1, aligned both ends
  std::vector<std::byte> out(data.size());
  store.read(256, 256, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.allocated_bytes(), 256u * kSectorSize);
}

TEST(SectorStoreTest, ReadSpanningWrittenAndUnwrittenChunks) {
  SectorStore store(4096);
  // Only the middle chunk is populated; the flanks must read as zeroes.
  store.write(256, 256, pattern(256, 0x77));
  std::vector<std::byte> out(3 * 256 * kSectorSize, std::byte{0xee});
  store.read(0, 3 * 256, out);
  for (std::size_t i = 0; i < 256 * kSectorSize; ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "leading chunk not zero at " << i;
  }
  std::vector<std::byte> mid(out.begin() + 256 * kSectorSize,
                             out.begin() + 2 * 256 * kSectorSize);
  EXPECT_EQ(mid, pattern(256, 0x77));
  for (std::size_t i = 2u * 256 * kSectorSize; i < out.size(); ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "trailing chunk not zero at " << i;
  }
}

TEST(SectorStoreTest, AnyWrittenIsChunkAccurateAcrossWideSpans) {
  SectorStore store(1ull << 24);
  EXPECT_FALSE(store.any_written(0, 0));  // empty span
  store.write(300000, 1, pattern(1, 9));
  // Chunk 1171 holds sector 300000 (1171*256 = 299776).
  EXPECT_TRUE(store.any_written(0, 1u << 20));        // wide span over it
  EXPECT_TRUE(store.any_written(299776, 1));          // same chunk counts
  EXPECT_FALSE(store.any_written(0, 299776));         // stops short of it
  EXPECT_FALSE(store.any_written(300032, 1u << 20));  // starts past it
}

TEST(SectorStoreTest, CachedChunkStaysCoherentAcrossInterleavedOps) {
  SectorStore store(4096);
  // Alternate between two chunks so the last-touched cache keeps
  // flipping, then verify both read back exactly.
  const auto a0 = pattern(4, 0x01);
  const auto b0 = pattern(4, 0x81);
  store.write(0, 4, a0);      // chunk 0 cached
  store.write(1024, 4, b0);   // chunk 4 cached
  std::vector<std::byte> out(a0.size());
  store.read(0, 4, out);      // back to chunk 0
  EXPECT_EQ(out, a0);
  const auto a1 = pattern(4, 0x02);
  store.write(0, 4, a1);      // overwrite through the cache
  store.read(1024, 4, out);   // chunk 4 again
  EXPECT_EQ(out, b0);
  store.read(0, 4, out);
  EXPECT_EQ(out, a1);
  store.clear();              // cache must be invalidated
  store.read(0, 4, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_FALSE(store.any_written(0, 4096));
}

TEST(SectorStoreTest, RandomizedRoundTripAgainstShadow) {
  SectorStore store(4096);
  std::vector<std::byte> shadow(4096 * kSectorSize, std::byte{0});
  sim::Rng rng(77);
  for (int op = 0; op < 500; ++op) {
    const auto lba = static_cast<std::uint64_t>(rng.uniform_int(0, 4000));
    const auto n = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
    if (lba + n > 4096) continue;
    auto data = pattern(n, static_cast<std::uint8_t>(op));
    store.write(lba, n, data);
    std::copy(data.begin(), data.end(),
              shadow.begin() + static_cast<std::ptrdiff_t>(lba * kSectorSize));
  }
  std::vector<std::byte> out(4096 * kSectorSize);
  store.read(0, 4096, out);
  EXPECT_EQ(out, shadow);
}

}  // namespace
}  // namespace deepnote::hdd
