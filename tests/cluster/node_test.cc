// ClusterNode identity-pinning tests.
//
// A node holds a device reference and an AttackDetector whose learned
// baseline IS the node's identity; an accidentally-moved-from node would
// keep routing I/O through dead state. The regression pinned here: the
// node once had defaulted move operations and lived in a std::vector,
// so any reallocation could silently relocate nodes mid-run. Nodes are
// now immovable and Cluster stores them in a deque, whose emplace_back
// never relocates existing elements.
#include "cluster/node.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

namespace deepnote::cluster {
namespace {

// The fix itself, enforced at compile time: a ClusterNode can never be
// copied or moved, so no container growth or std::move can detach it
// from its device/detector.
static_assert(!std::is_copy_constructible_v<ClusterNode>);
static_assert(!std::is_copy_assignable_v<ClusterNode>);
static_assert(!std::is_move_constructible_v<ClusterNode>);
static_assert(!std::is_move_assignable_v<ClusterNode>);

TEST(ClusterNode, AddressesAreStableAcrossClusterLifetime) {
  ClusterConfig config;
  config.topology = ClusterTopology{.pods = 4, .bays_per_pod = 6};
  Cluster cluster(config);
  ASSERT_EQ(cluster.num_nodes(), 24u);

  // Capture every node's identity (address, device address) up front...
  std::vector<ClusterNode*> before;
  std::vector<storage::BlockDevice*> devices_before;
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    before.push_back(&cluster.node(id));
    devices_before.push_back(&cluster.node(id).device());
  }

  // ...and check nothing relocates under the accessors the balancer and
  // engine actually route over.
  const std::vector<ClusterNode*> pointers = cluster.node_pointers();
  const std::vector<storage::BlockDevice*> devices =
      cluster.device_pointers();
  ASSERT_EQ(pointers.size(), before.size());
  ASSERT_EQ(devices.size(), devices_before.size());
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    EXPECT_EQ(pointers[id], before[id]) << "node " << id << " relocated";
    EXPECT_EQ(devices[id], devices_before[id]);
    EXPECT_EQ(&cluster.node(id), before[id]);
  }
}

TEST(ClusterNode, HealthTransitionsKeepTimestamps) {
  ClusterConfig config;
  config.topology = ClusterTopology{.pods = 1, .bays_per_pod = 2};
  Cluster cluster(config);
  ClusterNode& node = cluster.node(0);

  EXPECT_EQ(node.health(), NodeHealth::kHealthy);
  EXPECT_FALSE(node.drained_at().has_value());

  const sim::SimTime t1 = sim::SimTime::from_seconds(1.0);
  const sim::SimTime t2 = sim::SimTime::from_seconds(2.0);
  node.mark_degraded(t1);
  EXPECT_EQ(node.health(), NodeHealth::kDegraded);
  node.drain(t1);
  EXPECT_EQ(node.health(), NodeHealth::kDrained);
  ASSERT_TRUE(node.drained_at().has_value());
  EXPECT_EQ(node.drained_at()->ns(), t1.ns());
  node.readmit(t2);
  EXPECT_EQ(node.health(), NodeHealth::kHealthy);
  ASSERT_TRUE(node.readmitted_at().has_value());
  EXPECT_EQ(node.readmitted_at()->ns(), t2.ns());
}

}  // namespace
}  // namespace deepnote::cluster
