// Resilience-layer suite: the retry/backoff/budget primitives, the
// per-replica circuit breaker state machine, the brownout controller,
// the deterministic chaos schedule (pure replay from (seed, index)),
// and engine-level integration — chaos runs byte-identical at any wave
// parallelism, crashes drain and readmit, flap windows force and
// suppress the detector, breakers short-circuit, budgets deny, slow
// nodes trigger hedges whose losers are cancelled.
#include "cluster/resilience/retry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/engine.h"
#include "cluster/node.h"
#include "cluster/resilience/breaker.h"
#include "cluster/resilience/brownout.h"
#include "cluster/resilience/chaos.h"

namespace deepnote::cluster::resilience {
namespace {

using sim::Duration;
using sim::SimTime;

// --- backoff --------------------------------------------------------------

TEST(Backoff, ShapesWithoutJitter) {
  BackoffConfig config;
  config.jitter = 0.0;
  config.base = Duration::from_millis(10.0);
  config.cap = Duration::from_millis(200.0);

  config.kind = BackoffKind::kFixed;
  EXPECT_EQ(backoff_delay(config, 1, 0).ns(), Duration::from_millis(10.0).ns());
  EXPECT_EQ(backoff_delay(config, 7, 0).ns(), Duration::from_millis(10.0).ns());

  config.kind = BackoffKind::kLinear;
  EXPECT_EQ(backoff_delay(config, 3, 0).ns(), Duration::from_millis(30.0).ns());
  // Linear is clamped at the cap too.
  EXPECT_EQ(backoff_delay(config, 50, 0).ns(),
            Duration::from_millis(200.0).ns());

  config.kind = BackoffKind::kExponential;
  EXPECT_EQ(backoff_delay(config, 1, 0).ns(), Duration::from_millis(10.0).ns());
  EXPECT_EQ(backoff_delay(config, 3, 0).ns(), Duration::from_millis(40.0).ns());
  EXPECT_EQ(backoff_delay(config, 30, 0).ns(),
            Duration::from_millis(200.0).ns());
}

TEST(Backoff, FullJitterStaysInRangeAndIsDeterministic) {
  BackoffConfig config;
  config.kind = BackoffKind::kExponential;
  config.jitter = 1.0;
  config.base = Duration::from_millis(10.0);
  config.cap = Duration::from_seconds(1.0);

  std::uint64_t state = 0x5eed;
  std::set<std::int64_t> distinct;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t word = next_jitter_word(state);
    const Duration d = backoff_delay(config, 4, word);
    // Full jitter: uniform over (0, 80 ms]; never zero (the 1 ns floor
    // keeps a retry from re-entering the round that shed it).
    EXPECT_GE(d.ns(), 1);
    EXPECT_LE(d.ns(), Duration::from_millis(80.0).ns());
    // Same word, same delay: replay-stable by construction.
    EXPECT_EQ(backoff_delay(config, 4, word).ns(), d.ns());
    distinct.insert(d.ns());
  }
  EXPECT_GT(distinct.size(), 32u) << "jitter should actually spread delays";
}

TEST(Backoff, ZeroJitterWordHitsTheFloorNotZero) {
  BackoffConfig config;
  config.jitter = 1.0;  // delay = d * u, u == 0 for a zero word
  config.kind = BackoffKind::kFixed;
  EXPECT_GE(backoff_delay(config, 1, 0).ns(), 1);
}

TEST(Backoff, JitterStreamsDivergeAcrossSeeds) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    if (next_jitter_word(a) == next_jitter_word(b)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// --- retry budget ---------------------------------------------------------

TEST(RetryBudgetTest, EarnsFractionsSpendsWholeTokens) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.earn_per_request = 0.5;
  config.cap = 2.0;
  RetryBudget budget(config);
  budget.reset();
  // Starts at the cap: two immediate retries pass, the third is denied.
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  EXPECT_EQ(budget.spent(), 2u);
  EXPECT_EQ(budget.denied(), 1u);
  // One fresh request earns half a token: still short.
  budget.earn();
  EXPECT_FALSE(budget.try_spend());
  budget.earn();
  EXPECT_TRUE(budget.try_spend());
  // Earning never exceeds the cap.
  for (int i = 0; i < 100; ++i) budget.earn();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  budget.reset();
  EXPECT_EQ(budget.spent(), 0u);
  EXPECT_EQ(budget.denied(), 0u);
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

// --- circuit breaker ------------------------------------------------------

BreakerConfig test_breaker_config() {
  BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = 0.5;
  config.min_volume = 4;
  config.open_cooldown = Duration::from_seconds(1.0);
  config.half_open_probes = 2;
  return config;
}

TEST(Breaker, OpensOnFailureRateAndShortCircuits) {
  BreakerBank bank;
  bank.reset(4, 1, 4, test_breaker_config());
  EXPECT_EQ(bank.state(0), BreakerState::kClosed);
  for (int i = 0; i < 4; ++i) bank.record(0, 0, false);
  bank.update(SimTime::from_seconds(0.05));
  EXPECT_EQ(bank.state(0), BreakerState::kOpen);
  EXPECT_EQ(bank.stats().opens, 1u);
  // Open: every leg is denied and counted.
  EXPECT_FALSE(bank.allow(0, 0));
  EXPECT_FALSE(bank.allow(0, 0));
  EXPECT_EQ(bank.stats().short_circuits, 2u);
  // Untouched nodes stay closed and admitting.
  EXPECT_EQ(bank.state(1), BreakerState::kClosed);
  EXPECT_TRUE(bank.allow(0, 1));
}

TEST(Breaker, MinVolumeStopsOneUnluckyLegFromTripping) {
  BreakerBank bank;
  bank.reset(2, 1, 2, test_breaker_config());
  bank.record(0, 0, false);  // 100% failure rate but volume 1 < 4
  bank.update(SimTime::from_seconds(0.05));
  EXPECT_EQ(bank.state(0), BreakerState::kClosed);
  EXPECT_TRUE(bank.allow(0, 0));
}

TEST(Breaker, HalfOpenProbesCloseOrReopen) {
  BreakerBank bank;
  bank.reset(2, 1, 2, test_breaker_config());
  for (int i = 0; i < 8; ++i) bank.record(0, 0, false);
  bank.update(SimTime::from_seconds(0.05));
  ASSERT_EQ(bank.state(0), BreakerState::kOpen);

  // Cooldown not elapsed: still open, still denying.
  bank.update(SimTime::from_seconds(0.5));
  EXPECT_EQ(bank.state(0), BreakerState::kOpen);
  EXPECT_FALSE(bank.allow(0, 0));

  // Cooldown elapsed: half-open admits a bounded probe count per epoch.
  bank.update(SimTime::from_seconds(1.1));
  ASSERT_EQ(bank.state(0), BreakerState::kHalfOpen);
  EXPECT_TRUE(bank.allow(0, 0));
  EXPECT_TRUE(bank.allow(0, 0));
  EXPECT_FALSE(bank.allow(0, 0)) << "third probe in one epoch must be denied";

  // Clean probes close it.
  bank.record(0, 0, true);
  bank.record(0, 0, true);
  bank.update(SimTime::from_seconds(1.15));
  EXPECT_EQ(bank.state(0), BreakerState::kClosed);
  EXPECT_EQ(bank.stats().closes, 1u);
  EXPECT_TRUE(bank.allow(0, 0));

  // Trip it again; one failed probe re-opens (and restarts the cooldown).
  for (int i = 0; i < 8; ++i) bank.record(0, 0, false);
  bank.update(SimTime::from_seconds(1.2));
  bank.update(SimTime::from_seconds(2.3));
  ASSERT_EQ(bank.state(0), BreakerState::kHalfOpen);
  EXPECT_TRUE(bank.allow(0, 0));
  bank.record(0, 0, false);
  bank.update(SimTime::from_seconds(2.35));
  EXPECT_EQ(bank.state(0), BreakerState::kOpen);
  EXPECT_EQ(bank.stats().reopens, 1u);
  bank.update(SimTime::from_seconds(2.4));
  EXPECT_EQ(bank.state(0), BreakerState::kOpen) << "cooldown must restart";
}

// --- brownout -------------------------------------------------------------

TEST(Brownout, EscalatesAndClearsWithHysteresis) {
  BrownoutConfig config;
  config.enabled = true;
  config.classes = 4;
  config.ewma_alpha = 1.0;  // no smoothing: thresholds act immediately
  config.shed_threshold = 0.2;
  config.clear_threshold = 0.05;
  BrownoutController brownout;
  brownout.reset(config);

  EXPECT_EQ(brownout.shed_classes(), 0u);
  brownout.update(100, 30, 0);  // 30% misses: escalate
  EXPECT_EQ(brownout.shed_classes(), 1u);
  brownout.update(100, 30, 0);
  EXPECT_EQ(brownout.shed_classes(), 2u);
  brownout.update(100, 30, 0);
  // Top class is never shed: escalation saturates at classes - 1.
  brownout.update(100, 30, 0);
  EXPECT_EQ(brownout.shed_classes(), 3u);
  EXPECT_EQ(brownout.escalations(), 3u);
  EXPECT_TRUE(brownout.should_shed(0));
  EXPECT_TRUE(brownout.should_shed(2));
  EXPECT_FALSE(brownout.should_shed(3));

  // Between the thresholds: hold (hysteresis, no flapping).
  brownout.update(100, 10, 0);
  EXPECT_EQ(brownout.shed_classes(), 3u);
  // Below the clear threshold: step down one class per epoch.
  brownout.update(100, 0, 0);
  brownout.update(100, 0, 0);
  brownout.update(100, 0, 0);
  EXPECT_EQ(brownout.shed_classes(), 0u);
}

TEST(Brownout, DepthSignalEscalatesWithoutMisses) {
  BrownoutConfig config;
  config.enabled = true;
  config.depth_threshold = 64;
  BrownoutController brownout;
  brownout.reset(config);
  brownout.update(100, 0, 63);
  EXPECT_EQ(brownout.shed_classes(), 0u);
  brownout.update(100, 0, 64);
  EXPECT_EQ(brownout.shed_classes(), 1u);
}

TEST(Brownout, ClassAssignmentIsStableAndInRange) {
  BrownoutConfig config;
  config.enabled = true;
  config.classes = 4;
  BrownoutController brownout;
  brownout.reset(config);
  std::vector<std::uint64_t> per_class(4, 0);
  for (std::uint64_t client = 0; client < 4096; ++client) {
    const std::uint32_t c = brownout.class_of(client);
    ASSERT_LT(c, 4u);
    EXPECT_EQ(brownout.class_of(client), c);
    ++per_class[c];
  }
  // splitmix64 spread: no class starves even though ids are sequential.
  for (const std::uint64_t count : per_class) EXPECT_GT(count, 700u);
}

// --- chaos schedule -------------------------------------------------------

ChaosConfig test_chaos_config() {
  ChaosConfig config;
  config.start = SimTime::zero();
  config.end = SimTime::from_seconds(60.0);
  config.nodes = 15;
  config.pods = 3;
  config.crashes = 6;
  config.flaps = 5;
  config.slow_nodes = 4;
  config.pod_pulses = 3;
  return config;
}

TEST(ChaosSchedule, ReplayIsIdenticalFromSeedAndIndex) {
  const ChaosConfig config = test_chaos_config();
  const auto a = make_chaos_schedule(config, 0xfeed, 7);
  const auto b = make_chaos_schedule(config, 0xfeed, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at.ns(), b[i].at.ns());
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_DOUBLE_EQ(a[i].magnitude, b[i].magnitude);
  }
}

TEST(ChaosSchedule, DiffersAcrossSeedAndIndex) {
  const ChaosConfig config = test_chaos_config();
  const auto base = make_chaos_schedule(config, 0xfeed, 7);
  for (const auto& other : {make_chaos_schedule(config, 0xfeed, 8),
                           make_chaos_schedule(config, 0xbeef, 7)}) {
    ASSERT_EQ(other.size(), base.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base[i].at.ns() != other[i].at.ns() ||
          base[i].target != other[i].target) {
        any_diff = true;
        break;
      }
    }
    EXPECT_TRUE(any_diff);
  }
}

TEST(ChaosSchedule, SortedPairedAndInsideTheWindow) {
  const ChaosConfig config = test_chaos_config();
  const auto events = make_chaos_schedule(config, 1, 0);
  EXPECT_EQ(events.size(), 2u * (6 + 5 + 4 + 3));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at.ns(), events[i].at.ns()) << "unsorted at " << i;
  }
  // Every begin has a matching end at or after it, same target, and all
  // timestamps land inside [start, end].
  std::vector<std::pair<ChaosEventKind, ChaosEventKind>> pairs = {
      {ChaosEventKind::kNodeCrash, ChaosEventKind::kNodeRestart},
      {ChaosEventKind::kSlowNode, ChaosEventKind::kSlowNodeEnd},
      {ChaosEventKind::kPodAttackOn, ChaosEventKind::kPodAttackOff},
  };
  for (const auto& [begin_kind, end_kind] : pairs) {
    std::vector<std::uint32_t> begins;
    std::vector<std::uint32_t> ends;
    for (const ChaosEvent& e : events) {
      EXPECT_GE(e.at.ns(), config.start.ns());
      EXPECT_LE(e.at.ns(), config.end.ns());
      if (e.kind == begin_kind) begins.push_back(e.target);
      if (e.kind == end_kind) ends.push_back(e.target);
    }
    std::sort(begins.begin(), begins.end());
    std::sort(ends.begin(), ends.end());
    EXPECT_EQ(begins, ends) << "unpaired " << chaos_event_kind_name(begin_kind);
  }
}

TEST(ChaosSchedule, ScriptedOnlyNeedsNoGenerationWindow) {
  ChaosConfig config;  // start == end, nodes == 0: fine, nothing generated
  config.scripted.push_back({SimTime::from_seconds(1.0),
                             ChaosEventKind::kPodAttackOn, 0, 0.01});
  config.scripted.push_back({SimTime::from_seconds(2.0),
                             ChaosEventKind::kPodAttackOff, 0, 0.0});
  const auto events = make_chaos_schedule(config, 0, 0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ChaosEventKind::kPodAttackOn);
}

TEST(ChaosSchedule, ValidatesGeneratedClasses) {
  ChaosConfig config;
  config.crashes = 1;  // generated faults but no nodes / empty window
  EXPECT_THROW(make_chaos_schedule(config, 0, 0), std::invalid_argument);
  config.nodes = 4;
  EXPECT_THROW(make_chaos_schedule(config, 0, 0), std::invalid_argument);
  config.end = SimTime::from_seconds(1.0);
  EXPECT_NO_THROW(make_chaos_schedule(config, 0, 0));
  config.crashes = 0;
  config.pod_pulses = 1;  // pod faults need pods
  EXPECT_THROW(make_chaos_schedule(config, 0, 0), std::invalid_argument);
}

// --- engine integration ---------------------------------------------------

struct ChaosRunResult {
  std::uint64_t requests = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t outcome[kNumOutcomeKinds] = {};
  BalancerStats stats;
  ServingReport serving;
};

EngineConfig chaos_engine_config() {
  EngineConfig config;
  config.balancer.policy = PlacementPolicy::kCrossPod;
  config.traffic.arrival_rate_per_s = 400.0;
  config.traffic.duration = sim::Duration::from_seconds(4.0);
  config.traffic.seed = 0xbeef;
  config.serving.enabled = true;
  config.serving.server.queue_limit = 16;
  config.serving.clients = 128;
  return config;
}

/// One 3x5 serving cell with the given chaos schedule lowered onto it.
ChaosRunResult run_chaos_cell(EngineConfig config, const ChaosConfig& chaos,
                              std::uint64_t chaos_seed, unsigned jobs,
                              std::size_t min_ops_to_shard = 2048) {
  ClusterConfig cluster_config;
  cluster_config.topology = ClusterTopology{.pods = 3, .bays_per_pod = 5};
  cluster_config.seed = 0x5eed;
  Cluster cluster(cluster_config);

  config.jobs = jobs;
  config.min_ops_to_shard = min_ops_to_shard;
  ShardedClusterEngine engine(cluster.topology(), cluster.device_pointers(),
                              config);

  const auto schedule = make_chaos_schedule(chaos, chaos_seed, 0);
  SloTracker slo(sim::SimTime::zero());
  const EngineReport report = engine.run(
      sim::SimTime::zero(), slo, chaos_actions(schedule, engine, cluster, chaos));

  ChaosRunResult result;
  result.requests = report.traffic.requests;
  result.succeeded = slo.succeeded();
  result.failed = slo.failed();
  result.p50_ns = slo.p50().ns();
  result.p99_ns = slo.p99().ns();
  for (std::size_t k = 0; k < kNumOutcomeKinds; ++k) {
    result.outcome[k] = slo.outcome_count(static_cast<OutcomeKind>(k));
  }
  result.stats = report.stats;
  result.serving = report.serving;
  return result;
}

// The chaos determinism contract: a run under randomized crash + flap +
// slow-node + pulse faults is byte-identical whether waves run inline or
// sharded across a pool — the schedule is materialized up front and every
// mutation lands at a single-threaded barrier.
TEST(ChaosEngine, ChaosRunIsBitIdenticalAcrossJobs) {
  ChaosConfig chaos = test_chaos_config();
  chaos.end = SimTime::from_seconds(4.0);
  chaos.crashes = 3;
  chaos.flaps = 3;
  chaos.slow_nodes = 2;
  chaos.pod_pulses = 2;
  chaos.pulse_min = Duration::from_seconds(0.5);
  chaos.pulse_max = Duration::from_seconds(1.5);

  EngineConfig config = chaos_engine_config();
  config.serving.backoff.retry_failures = true;
  config.breaker.enabled = true;

  const ChaosRunResult inline_run = run_chaos_cell(config, chaos, 0xc4a0, 1);
  const ChaosRunResult sharded = run_chaos_cell(config, chaos, 0xc4a0, 4, 0);

  EXPECT_EQ(inline_run.requests, sharded.requests);
  EXPECT_EQ(inline_run.succeeded, sharded.succeeded);
  EXPECT_EQ(inline_run.failed, sharded.failed);
  EXPECT_EQ(inline_run.p50_ns, sharded.p50_ns);
  EXPECT_EQ(inline_run.p99_ns, sharded.p99_ns);
  for (std::size_t k = 0; k < kNumOutcomeKinds; ++k) {
    EXPECT_EQ(inline_run.outcome[k], sharded.outcome[k]) << "kind " << k;
  }
  EXPECT_EQ(inline_run.stats.drains, sharded.stats.drains);
  EXPECT_EQ(inline_run.stats.readmits, sharded.stats.readmits);
  EXPECT_EQ(inline_run.stats.read_failovers, sharded.stats.read_failovers);
  EXPECT_EQ(inline_run.stats.hedged_reads, sharded.stats.hedged_reads);
  EXPECT_EQ(inline_run.serving.legs_submitted, sharded.serving.legs_submitted);
  EXPECT_EQ(inline_run.serving.legs_failed, sharded.serving.legs_failed);
  EXPECT_EQ(inline_run.serving.legs_cancelled,
            sharded.serving.legs_cancelled);
  EXPECT_EQ(inline_run.serving.client_retries, sharded.serving.client_retries);
  EXPECT_EQ(inline_run.serving.breaker_opens, sharded.serving.breaker_opens);
  EXPECT_EQ(inline_run.serving.breaker_short_circuits,
            sharded.serving.breaker_short_circuits);
  EXPECT_EQ(inline_run.serving.retry_budget_spent,
            sharded.serving.retry_budget_spent);
}

// A crash window hard-fails legs at issue; the detector notices, drains
// the node, and readmits it after the scripted restart.
TEST(ChaosEngine, CrashDrainsThenRestartReadmits) {
  ChaosConfig chaos;
  chaos.scripted.push_back(
      {SimTime::from_seconds(0.5), ChaosEventKind::kNodeCrash, 3, 0.0});
  chaos.scripted.push_back(
      {SimTime::from_seconds(2.0), ChaosEventKind::kNodeRestart, 3, 0.0});
  const ChaosRunResult run =
      run_chaos_cell(chaos_engine_config(), chaos, 0, 1);
  // Crashed legs fail at issue, before the node pipeline: they surface
  // as read failovers (and detector errors -> the drain), not as
  // server-observed leg failures.
  EXPECT_GT(run.stats.read_failovers, 0u);
  EXPECT_GE(run.stats.drains, 1u);
  EXPECT_GE(run.stats.readmits, 1u);
  // Cross-pod replication keeps the cell serving through one dead node.
  EXPECT_GT(run.succeeded, 0u);
  EXPECT_GT(static_cast<double>(run.succeeded) /
                static_cast<double>(run.succeeded + run.failed),
            0.99);
}

// A forced flap drains a perfectly healthy node (no attack, no crash):
// the detector override is the only thing that could have done it.
TEST(ChaosEngine, ForcedFlapDrainsAHealthyNode) {
  ChaosConfig chaos;
  chaos.scripted.push_back(
      {SimTime::from_seconds(0.5), ChaosEventKind::kDetectorForce, 2, 0.0});
  chaos.scripted.push_back(
      {SimTime::from_seconds(2.0), ChaosEventKind::kDetectorClear, 2, 0.0});
  const ChaosRunResult run =
      run_chaos_cell(chaos_engine_config(), chaos, 0, 1);
  EXPECT_GE(run.stats.drains, 1u);
  EXPECT_GE(run.stats.readmits, 1u);
  EXPECT_EQ(run.serving.legs_failed, 0u) << "no real fault was injected";
}

// Suppression is the dual: with every node of an attacked pod
// suppressed, the detector is forbidden from draining them, so reads
// keep hitting dead replicas and failing over the hard way.
TEST(ChaosEngine, SuppressedDetectorCannotDrainTheAttackedPod) {
  ChaosConfig base;
  base.scripted.push_back(
      {SimTime::from_seconds(0.5), ChaosEventKind::kPodAttackOn, 0, 0.01});
  base.scripted.push_back(
      {SimTime::from_seconds(3.0), ChaosEventKind::kPodAttackOff, 0, 0.0});
  ChaosConfig suppressed = base;
  for (std::uint32_t node = 0; node < 5; ++node) {  // pod 0 = nodes 0..4
    suppressed.scripted.push_back(
        {SimTime::zero(), ChaosEventKind::kDetectorSuppress, node, 0.0});
  }
  const ChaosRunResult with_detector =
      run_chaos_cell(chaos_engine_config(), base, 0, 1);
  const ChaosRunResult without =
      run_chaos_cell(chaos_engine_config(), suppressed, 0, 1);
  EXPECT_GE(with_detector.stats.drains, 1u);
  EXPECT_EQ(without.stats.drains, 0u);
  EXPECT_GT(without.stats.read_failovers, with_detector.stats.read_failovers);
}

// A slow-node window inflates service times past the hedge threshold:
// reads against it hedge, and when the slow primary still answers first
// (or the backup queue is busy), the losing leg is cancelled in place —
// the queue slot comes back instead of being served to nobody.
TEST(ChaosEngine, SlowNodeTriggersHedgesAndCancellations) {
  ChaosConfig chaos;
  chaos.scripted.push_back(
      {SimTime::from_seconds(0.5), ChaosEventKind::kSlowNode, 1, 8.0});
  chaos.scripted.push_back(
      {SimTime::from_seconds(3.5), ChaosEventKind::kSlowNodeEnd, 1, 1.0});
  EngineConfig config = chaos_engine_config();
  config.balancer.hedge_threshold = Duration::from_millis(5.0);
  config.traffic.arrival_rate_per_s = 900.0;
  const ChaosRunResult run = run_chaos_cell(config, chaos, 0, 1);
  EXPECT_GT(run.stats.hedged_reads, 0u);
  EXPECT_GT(run.serving.legs_cancelled, 0u);
  EXPECT_EQ(run.serving.legs_failed, 0u) << "slowness is not failure";
}

// Breakers under a pod attack: the failing replicas trip open, legs to
// them short-circuit at issue, and the whole thing is invisible when the
// breaker is disabled (identical config, breaker off -> zero counters).
TEST(ChaosEngine, BreakerTripsAndShortCircuitsUnderAttack) {
  ChaosConfig chaos;
  chaos.scripted.push_back(
      {SimTime::from_seconds(0.5), ChaosEventKind::kPodAttackOn, 0, 0.01});
  chaos.scripted.push_back(
      {SimTime::from_seconds(3.0), ChaosEventKind::kPodAttackOff, 0, 0.0});
  EngineConfig config = chaos_engine_config();
  config.breaker.enabled = true;
  config.breaker.min_volume = 4;
  const ChaosRunResult with_breaker = run_chaos_cell(config, chaos, 0, 1);
  EXPECT_GT(with_breaker.serving.breaker_opens, 0u);
  EXPECT_GT(with_breaker.serving.breaker_short_circuits, 0u);

  config.breaker.enabled = false;
  const ChaosRunResult without = run_chaos_cell(config, chaos, 0, 1);
  EXPECT_EQ(without.serving.breaker_opens, 0u);
  EXPECT_EQ(without.serving.breaker_short_circuits, 0u);
}

// The retry budget under a storm: with retries enabled and the bucket
// small, spent and denied both move, and the denial count bounds the
// retry stream the cluster actually absorbed.
TEST(ChaosEngine, RetryBudgetSpendsAndDeniesUnderAttack) {
  ChaosConfig chaos;
  // Crash two of three pods outright: writes lose quorum (one live
  // replica cannot make two acks), so every write fails and retries —
  // an acoustic pulse would not do, because attacked drives still
  // absorb writes into their caches.
  for (std::uint32_t node = 0; node < 10; ++node) {  // pods 0 and 1
    chaos.scripted.push_back(
        {SimTime::from_seconds(0.5), ChaosEventKind::kNodeCrash, node, 0.0});
    chaos.scripted.push_back(
        {SimTime::from_seconds(3.0), ChaosEventKind::kNodeRestart, node, 0.0});
  }
  EngineConfig config = chaos_engine_config();
  config.traffic.arrival_rate_per_s = 800.0;
  config.serving.clients = 256;
  config.serving.backoff.retry_failures = true;
  config.serving.backoff.max_retries = resilience::kUnlimitedRetries;
  config.serving.retry_budget.enabled = true;
  config.serving.retry_budget.earn_per_request = 0.01;
  config.serving.retry_budget.cap = 4.0;
  const ChaosRunResult run = run_chaos_cell(config, chaos, 0, 1);
  EXPECT_GT(run.serving.retry_budget_spent, 0u);
  EXPECT_GT(run.serving.retry_budget_denied, 0u);
  EXPECT_EQ(run.serving.client_retries, run.serving.retry_budget_spent)
      << "every retry that went out must have spent a token";
}

// Brownout under saturation: the depth signal escalates, low-priority
// classes shed at issue, and the top class never does (the controller
// saturates at classes - 1).
TEST(ChaosEngine, BrownoutShedsLowPriorityUnderSaturation) {
  ChaosConfig chaos;
  chaos.scripted.push_back(
      {SimTime::from_seconds(0.5), ChaosEventKind::kPodAttackOn, 0, 0.01});
  chaos.scripted.push_back(
      {SimTime::from_seconds(1.0), ChaosEventKind::kPodAttackOn, 1, 0.01});
  EngineConfig config = chaos_engine_config();
  config.traffic.arrival_rate_per_s = 1200.0;
  config.serving.clients = 512;
  config.serving.backoff.retry_failures = true;
  config.brownout.enabled = true;
  config.brownout.depth_threshold = 8;
  const ChaosRunResult run = run_chaos_cell(config, chaos, 0, 1);
  EXPECT_GT(run.serving.brownout_shed, 0u);
  EXPECT_GT(run.serving.brownout_escalations, 0u);
}

}  // namespace
}  // namespace deepnote::cluster::resilience
