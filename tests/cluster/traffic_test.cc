// Traffic generator tests: Zipf popularity shape, open-loop Poisson
// arrival counts, deterministic replay, the read/write mix, and timeline
// action delivery.
#include "cluster/traffic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::cluster {
namespace {

constexpr std::uint64_t kSectors = 16384;

struct MiniServing {
  ClusterTopology topo{.pods = 3, .bays_per_pod = 1};
  std::vector<std::unique_ptr<storage::MemDisk>> disks;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<Balancer> balancer;

  MiniServing() {
    for (std::size_t pod = 0; pod < topo.pods; ++pod) {
      disks.push_back(std::make_unique<storage::MemDisk>(kSectors));
      nodes.push_back(std::make_unique<ClusterNode>(
          topo.node_id(pod, 0), pod, 0, *disks.back()));
    }
    std::vector<ClusterNode*> pointers;
    for (auto& n : nodes) pointers.push_back(n.get());
    BalancerConfig config;
    config.objects = 1000;
    balancer = std::make_unique<Balancer>(topo, pointers, config);
  }
};

TEST(Zipf, RankZeroIsHottest) {
  const ZipfGenerator zipf(1000, 0.99);
  sim::Rng rng(42);
  std::vector<std::uint64_t> counts(1000, 0);
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.next(rng)];
  for (std::size_t rank = 1; rank < counts.size(); ++rank) {
    EXPECT_GE(counts[0], counts[rank]) << "rank " << rank;
  }
  // Under theta=0.99 the head takes a far-greater-than-uniform share.
  EXPECT_GT(counts[0], kSamples / 100);
}

TEST(Zipf, StaysInRangeAndRejectsBadConfig) {
  const ZipfGenerator zipf(10, 0.5);
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.next(rng), 10u);
  EXPECT_THROW(ZipfGenerator(0, 0.99), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, 1.0), std::invalid_argument);
}

TEST(ZipfAlias, ExactProbabilitiesSumToOneAndDecay) {
  const ZipfAliasSampler zipf(1000, 0.99);
  double sum = 0.0;
  for (std::uint64_t rank = 0; rank < 1000; ++rank) {
    sum += zipf.probability(rank);
    if (rank > 0) EXPECT_LT(zipf.probability(rank), zipf.probability(rank - 1));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfAlias, MatchesTheExactDistribution) {
  // The alias table must reproduce its own exact pmf: bucket each of a
  // large sample run and compare against n * p(rank) within 5 sigma of
  // the binomial noise floor.
  constexpr std::uint64_t kN = 500;
  constexpr double kTheta = 0.99;
  constexpr int kSamples = 200000;
  const ZipfAliasSampler zipf(kN, kTheta);
  sim::Rng rng(0xa11a5);
  std::vector<std::uint64_t> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_LT(rank, kN);
    ++counts[rank];
  }
  for (std::uint64_t rank = 0; rank < kN; ++rank) {
    const double expected = kSamples * zipf.probability(rank);
    const double sigma = std::sqrt(expected);
    EXPECT_NEAR(static_cast<double>(counts[rank]), expected,
                5.0 * sigma + 1.0)
        << "rank " << rank;
  }
}

TEST(ZipfAlias, AgreesWithTheApproximateGenerator) {
  // The YCSB generator is an approximation of the same law; over coarse
  // buckets the two samplers must tell the same popularity story (the
  // alias sampler is the refinement, not a different distribution).
  constexpr std::uint64_t kN = 1000;
  constexpr double kTheta = 0.99;
  constexpr int kSamples = 100000;
  const ZipfAliasSampler alias(kN, kTheta);
  const ZipfGenerator approx(kN, kTheta);
  sim::Rng rng_a(77);
  sim::Rng rng_b(78);
  // Log-spaced buckets: [0,1), [1,10), [10,100), [100,1000).
  auto bucket_of = [](std::uint64_t rank) {
    if (rank < 1) return 0;
    if (rank < 10) return 1;
    if (rank < 100) return 2;
    return 3;
  };
  double share_a[4] = {0, 0, 0, 0};
  double share_b[4] = {0, 0, 0, 0};
  for (int i = 0; i < kSamples; ++i) {
    ++share_a[bucket_of(alias.next(rng_a))];
    ++share_b[bucket_of(approx.next(rng_b))];
  }
  for (int b = 0; b < 4; ++b) {
    share_a[b] /= kSamples;
    share_b[b] /= kSamples;
    EXPECT_NEAR(share_a[b], share_b[b], 0.02) << "bucket " << b;
  }
}

TEST(ZipfAlias, DeterministicAndRejectsBadConfig) {
  const ZipfAliasSampler zipf(100, 0.7);
  sim::Rng a(123);
  sim::Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(zipf.next(a), zipf.next(b));
  EXPECT_THROW(ZipfAliasSampler(0, 0.99), std::invalid_argument);
  EXPECT_THROW(ZipfAliasSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfAliasSampler(10, 1.0), std::invalid_argument);
}

TEST(Traffic, OpenLoopArrivalCountTracksTheRate) {
  MiniServing serving;
  TrafficConfig config;
  config.arrival_rate_per_s = 2000.0;
  config.duration = sim::Duration::from_seconds(1.0);
  config.keyspace = 1000;
  TrafficRunner runner(*serving.balancer, config);
  SloTracker slo(sim::SimTime::zero());
  const TrafficReport report = runner.run(sim::SimTime::zero(), slo);
  // Poisson(2000): +/- 5 sigma.
  EXPECT_GT(report.requests, 1750u);
  EXPECT_LT(report.requests, 2250u);
  EXPECT_EQ(report.requests, report.reads + report.writes);
  EXPECT_EQ(report.requests, slo.total());
}

TEST(Traffic, ReadWriteMixRoughlyHonored) {
  MiniServing serving;
  TrafficConfig config;
  config.arrival_rate_per_s = 5000.0;
  config.duration = sim::Duration::from_seconds(1.0);
  config.read_fraction = 0.9;
  config.keyspace = 1000;
  TrafficRunner runner(*serving.balancer, config);
  SloTracker slo(sim::SimTime::zero());
  const TrafficReport report = runner.run(sim::SimTime::zero(), slo);
  const double read_share =
      static_cast<double>(report.reads) / static_cast<double>(report.requests);
  EXPECT_GT(read_share, 0.85);
  EXPECT_LT(read_share, 0.95);
}

TEST(Traffic, SameSeedReplaysIdentically) {
  TrafficConfig config;
  config.arrival_rate_per_s = 1000.0;
  config.duration = sim::Duration::from_seconds(1.0);
  config.keyspace = 1000;
  config.seed = 0xfeed;

  MiniServing a;
  SloTracker slo_a(sim::SimTime::zero());
  const TrafficReport ra =
      TrafficRunner(*a.balancer, config).run(sim::SimTime::zero(), slo_a);

  MiniServing b;
  SloTracker slo_b(sim::SimTime::zero());
  const TrafficReport rb =
      TrafficRunner(*b.balancer, config).run(sim::SimTime::zero(), slo_b);

  EXPECT_EQ(ra.requests, rb.requests);
  EXPECT_EQ(ra.reads, rb.reads);
  EXPECT_EQ(ra.writes, rb.writes);
  EXPECT_EQ(slo_a.total(), slo_b.total());
  EXPECT_EQ(slo_a.p99().ns(), slo_b.p99().ns());
  for (std::size_t pod = 0; pod < a.topo.pods; ++pod) {
    EXPECT_EQ(a.disks[pod]->op_count(), b.disks[pod]->op_count());
  }
}

TEST(Traffic, TimelineActionsFireOnceInOrder) {
  MiniServing serving;
  TrafficConfig config;
  config.arrival_rate_per_s = 1000.0;
  config.duration = sim::Duration::from_seconds(1.0);
  config.keyspace = 1000;
  TrafficRunner runner(*serving.balancer, config);
  SloTracker slo(sim::SimTime::zero());

  std::vector<int> fired;
  std::vector<sim::SimTime> fired_at;
  std::vector<TimelineAction> actions;
  actions.push_back({sim::SimTime::from_millis(100.0), [&](sim::SimTime t) {
                       fired.push_back(1);
                       fired_at.push_back(t);
                     }});
  actions.push_back({sim::SimTime::from_millis(600.0), [&](sim::SimTime t) {
                       fired.push_back(2);
                       fired_at.push_back(t);
                     }});
  runner.run(sim::SimTime::zero(), slo, std::move(actions));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
  // Actions fire at their scheduled time or later (never travel back
  // behind the I/O frontier).
  EXPECT_GE(fired_at[0], sim::SimTime::from_millis(100.0));
  EXPECT_GE(fired_at[1], sim::SimTime::from_millis(600.0));
}

TEST(Traffic, RejectsDegenerateConfig) {
  MiniServing serving;
  TrafficConfig config;
  config.clients = 0;
  EXPECT_THROW(TrafficRunner(*serving.balancer, config),
               std::invalid_argument);
  config = {};
  config.arrival_rate_per_s = 0.0;
  EXPECT_THROW(TrafficRunner(*serving.balancer, config),
               std::invalid_argument);
  config = {};
  config.read_fraction = 1.5;
  EXPECT_THROW(TrafficRunner(*serving.balancer, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::cluster
