// Hybrid tiering experiment tests: the tentpole headline (the same
// same-pod attack that collapses a pure-HDD cell leaves the hybrid cell
// above 99%), the duration axis (longer attacks do not erode it),
// bit-exact determinism across worker counts, and a golden-CSV pin.
#include "cluster/hybrid_experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace deepnote::cluster {
namespace {

constexpr double kScale = 0.2;  // 2 s warmup / 8 s attack / 2 s cooldown

const std::vector<HybridTrialRow>& cached_rows() {
  static const std::vector<HybridTrialRow> rows =
      run_hybrid_experiment(hybrid_experiment_config(kScale));
  return rows;
}

const HybridTrialRow& find_row(NodeType node_type,
                               std::optional<double> distance_m,
                               double multiplier) {
  for (const HybridTrialRow& row : cached_rows()) {
    if (row.node_type == node_type && row.distance_m == distance_m &&
        row.attack_multiplier == multiplier) {
      return row;
    }
  }
  static HybridTrialRow missing;
  ADD_FAILURE() << "row not found";
  return missing;
}

TEST(HybridExperiment, BaselinesServeCleanlyOnBothNodeTypes) {
  for (const NodeType node_type : {NodeType::kHdd, NodeType::kHybrid}) {
    const HybridTrialRow& row = find_row(node_type, std::nullopt, 1.0);
    EXPECT_GE(row.availability, 0.999) << node_type_name(node_type);
    EXPECT_GT(row.requests, 0u);
  }
  // A quiet hybrid node never leaves kNormal: no flash-only ops, no
  // probes, nothing to drain.
  const HybridTrialRow& hybrid = find_row(NodeType::kHybrid, std::nullopt, 1.0);
  EXPECT_EQ(hybrid.flash_only_ops, 0u);
  EXPECT_EQ(hybrid.probes, 0u);
  EXPECT_EQ(hybrid.dirty_pages_left, 0u);
}

// The headline: same-pod placement puts every replica of every object
// inside the attacked enclosure, so the pure-HDD cell collapses — and
// the hybrid cell, with no spinning medium on its serving path, rides
// the same attack out above 99%.
TEST(HybridExperiment, FlashTierTurnsAnOutageIntoANonEvent) {
  const HybridTrialRow& hdd = find_row(NodeType::kHdd, 0.01, 1.0);
  const HybridTrialRow& hybrid = find_row(NodeType::kHybrid, 0.01, 1.0);

  EXPECT_LE(hdd.attack_availability, 0.20) << "pure HDD should collapse";
  EXPECT_GE(hybrid.attack_availability, 0.99);

  // The hybrid actually fought: HDD failures absorbed by the mirror,
  // tier flips to flash-only, probes watching for the all-clear.
  EXPECT_GT(hybrid.absorbed_errors, 0u);
  EXPECT_GT(hybrid.flash_only_ops, 0u);
  EXPECT_GT(hybrid.probes, 0u);
  // Pure-HDD rows carry no flash telemetry at all.
  EXPECT_EQ(hdd.absorbed_errors, 0u);
  EXPECT_EQ(hdd.flash_only_ops, 0u);
}

// The duration axis: the flash tier holds for as long as the heads stay
// parked — doubling the attack window does not erode availability.
TEST(HybridExperiment, LongerAttacksDoNotErodeTheHybrid) {
  for (const double multiplier : {0.5, 1.0, 2.0}) {
    const HybridTrialRow& row = find_row(NodeType::kHybrid, 0.01, multiplier);
    EXPECT_GE(row.attack_availability, 0.99) << "multiplier " << multiplier;
  }
  // The pure-HDD cell stays collapsed at every length instead.
  for (const double multiplier : {0.5, 1.0, 2.0}) {
    const HybridTrialRow& row = find_row(NodeType::kHdd, 0.01, multiplier);
    EXPECT_LE(row.attack_availability, 0.20) << "multiplier " << multiplier;
  }
}

TEST(HybridExperiment, HybridNeverServesWorseThanPureHdd) {
  for (const double distance : {0.01, 0.05}) {
    for (const double multiplier : {0.5, 1.0, 2.0}) {
      const HybridTrialRow& hdd = find_row(NodeType::kHdd, distance,
                                           multiplier);
      const HybridTrialRow& hybrid = find_row(NodeType::kHybrid, distance,
                                              multiplier);
      EXPECT_GE(hybrid.attack_availability, hdd.attack_availability)
          << "distance " << distance << " multiplier " << multiplier;
    }
  }
}

TEST(HybridExperiment, WearStaysInsideTheSmartScale) {
  for (const HybridTrialRow& row : cached_rows()) {
    EXPECT_GE(row.media_wearout, 1);
    EXPECT_LE(row.media_wearout, 100);
    if (row.node_type == NodeType::kHdd) {
      EXPECT_EQ(row.media_wearout, 100);  // no flash on board
    }
  }
}

TEST(HybridExperiment, DeterministicAcrossJobCounts) {
  HybridExperimentConfig config = hybrid_experiment_config(kScale);
  config.jobs = 1;
  const auto serial = run_hybrid_experiment(config);
  config.jobs = 4;
  const auto parallel = run_hybrid_experiment(config);
  const std::string csv_serial =
      build_hybrid_availability_table(config, serial).to_csv();
  const std::string csv_parallel =
      build_hybrid_availability_table(config, parallel).to_csv();
  EXPECT_EQ(csv_serial, csv_parallel);
}

std::string golden_path(const std::string& name) {
  return std::string(DEEPNOTE_GOLDEN_DIR) + "/" + name;
}

void diff_against_golden(const sim::Table& table, const std::string& name) {
  const std::string rendered = table.to_csv();
  const std::string path = golden_path(name);
  if (std::getenv("DEEPNOTE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("[golden updated: %s]\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — generate it with DEEPNOTE_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), rendered)
      << "table drifted from " << path
      << "\nIf intentional, regenerate with DEEPNOTE_UPDATE_GOLDEN=1 "
         "and review the CSV diff.";
}

TEST(HybridExperiment, GoldenHybridAvailabilityTable) {
  const HybridExperimentConfig config = hybrid_experiment_config(kScale);
  diff_against_golden(
      build_hybrid_availability_table(config, cached_rows()),
      "hybrid_availability.csv");
}

}  // namespace
}  // namespace deepnote::cluster
