// Overload-recovery experiment tests: the metastable-failure signature
// (naive retries stay collapsed after the attack ends; governed retries
// recover within seconds), the governance telemetry that explains why,
// byte-identical cells at any wave parallelism, and a golden-CSV pin of
// the whole grid.
#include "cluster/overload_experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/trial_runner.h"

namespace deepnote::cluster {
namespace {

// 0.25 s warmup, 5 s / 20 s attacks, 30 s of recovery observation. The
// attacks and the collapse physics are unscaled; only the observation
// window shrinks, so "never recovered" here means "collapsed for the
// full 30 s the cell watched" (the bench binary's default scale 1.0
// extends that to 10 sim minutes).
constexpr double kScale = 0.05;

const std::vector<OverloadTrialRow>& cached_rows() {
  static const std::vector<OverloadTrialRow> rows =
      run_overload_experiment(overload_experiment_config(kScale));
  return rows;
}

const OverloadTrialRow& find_row(OverloadPolicy policy, bool breaker_on,
                                 double attack_s) {
  for (const OverloadTrialRow& row : cached_rows()) {
    if (row.policy == policy && row.breaker_on == breaker_on &&
        row.attack.seconds() == attack_s) {
      return row;
    }
  }
  static OverloadTrialRow missing;
  ADD_FAILURE() << "overload row not found";
  return missing;
}

// The headline. Naive retries (fixed un-jittered backoff, unlimited
// attempts, expired requests still served): goodput stays collapsed for
// the entire post-attack window — long after the 5 s trigger is gone —
// because the retry population alone holds the fleet past capacity.
// Full governance (capped exponential + jitter, retry budget, expired
// dropping, breakers): the same population drains within 30 s.
TEST(OverloadExperiment, MetastableCollapseAndGovernedRecovery) {
  for (const double attack_s : {5.0, 20.0}) {
    const OverloadTrialRow& naive =
        find_row(OverloadPolicy::kNaive, false, attack_s);
    EXPECT_FALSE(naive.recovered) << attack_s;
    EXPECT_LT(naive.post_availability, 0.5) << attack_s;
    EXPECT_GT(naive.collapsed_windows, 10u) << attack_s;
    // The storm: retries dominate the request stream.
    EXPECT_GT(naive.retries, naive.requests / 2) << attack_s;

    const OverloadTrialRow& governed =
        find_row(OverloadPolicy::kGoverned, true, attack_s);
    EXPECT_TRUE(governed.recovered) << attack_s;
    EXPECT_LE(governed.recovery_s, 30.0) << attack_s;
  }
}

// Breakers alone do not fix a naive retry storm (the clients keep
// hammering; short-circuits just relocate the rejection), and retry
// shaping alone caps the depth of the collapse but does not fully break
// the loop — the grid's middle rows are the ablation.
TEST(OverloadExperiment, SingleMechanismsAreNotEnough) {
  const OverloadTrialRow& naive_breaker =
      find_row(OverloadPolicy::kNaive, true, 5.0);
  EXPECT_FALSE(naive_breaker.recovered);
  EXPECT_LT(naive_breaker.post_availability, 0.5);

  const OverloadTrialRow& governed_only =
      find_row(OverloadPolicy::kGoverned, false, 5.0);
  // Far better than the naive collapse, far worse than full governance.
  EXPECT_GT(governed_only.post_availability,
            find_row(OverloadPolicy::kNaive, false, 5.0).post_availability);
}

TEST(OverloadExperiment, GovernanceTelemetryExplainsTheRecovery) {
  const OverloadTrialRow& governed =
      find_row(OverloadPolicy::kGoverned, true, 20.0);
  EXPECT_GT(governed.retry_budget_spent, 0u);
  EXPECT_GT(governed.retry_budget_denied, 0u);
  EXPECT_GT(governed.breaker_opens, 0u);
  EXPECT_GT(governed.breaker_short_circuits, 0u);
  // Naive cells have no budget: counters must stay zero.
  const OverloadTrialRow& naive = find_row(OverloadPolicy::kNaive, false, 20.0);
  EXPECT_EQ(naive.retry_budget_spent, 0u);
  EXPECT_EQ(naive.retry_budget_denied, 0u);
  // The storm pins the queues at the admission limit.
  EXPECT_EQ(naive.max_queue_depth,
            overload_experiment_config(kScale).queue_limit);
}

// One cell, wave-parallel vs inline: the chaos-scripted attack, the
// breakers, the budget and the closed-loop retry jitter all land
// byte-identically regardless of DEEPNOTE_JOBS.
TEST(OverloadExperiment, CellIsBitIdenticalAcrossEngineJobs) {
  const OverloadExperimentConfig config = overload_experiment_config(kScale);
  const sim::Duration attack = sim::Duration::from_seconds(5.0);
  const std::uint64_t cell_seed = sim::trial_seed(config.seed, 7);
  const OverloadTrialRow a = run_overload_cell(
      config, OverloadPolicy::kGoverned, true, attack, cell_seed, nullptr, 1);
  const OverloadTrialRow b = run_overload_cell(
      config, OverloadPolicy::kGoverned, true, attack, cell_seed, nullptr, 4);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.attack_availability, b.attack_availability);
  EXPECT_DOUBLE_EQ(a.post_availability, b.post_availability);
  EXPECT_DOUBLE_EQ(a.recovery_s, b.recovery_s);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.collapsed_windows, b.collapsed_windows);
  EXPECT_EQ(a.retry_budget_spent, b.retry_budget_spent);
  EXPECT_EQ(a.retry_budget_denied, b.retry_budget_denied);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.breaker_short_circuits, b.breaker_short_circuits);
  EXPECT_EQ(a.legs_cancelled, b.legs_cancelled);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.drains, b.drains);
}

TEST(OverloadExperiment, DeterministicAcrossTrialJobCounts) {
  OverloadExperimentConfig config = overload_experiment_config(kScale);
  config.attack_durations = {sim::Duration::from_seconds(5.0)};
  config.policies = {OverloadPolicy::kGoverned};
  config.jobs = 1;
  const auto serial = run_overload_experiment(config);
  config.jobs = 4;
  const auto parallel = run_overload_experiment(config);
  EXPECT_EQ(build_overload_recovery_table(config, serial).to_csv(),
            build_overload_recovery_table(config, parallel).to_csv());
}

std::string golden_path(const std::string& name) {
  return std::string(DEEPNOTE_GOLDEN_DIR) + "/" + name;
}

void diff_against_golden(const sim::Table& table, const std::string& name) {
  const std::string rendered = table.to_csv();
  const std::string path = golden_path(name);
  if (std::getenv("DEEPNOTE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("[golden updated: %s]\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — generate it with DEEPNOTE_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), rendered)
      << "table drifted from " << path
      << "\nIf intentional, regenerate with DEEPNOTE_UPDATE_GOLDEN=1 "
         "and review the CSV diff.";
}

TEST(OverloadExperiment, GoldenOverloadRecoveryTable) {
  const OverloadExperimentConfig config = overload_experiment_config(kScale);
  diff_against_golden(build_overload_recovery_table(config, cached_rows()),
                      "overload_recovery.csv");
}

}  // namespace
}  // namespace deepnote::cluster
