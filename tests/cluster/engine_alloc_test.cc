// Allocation accounting for the sharded cluster engine's hot loop.
//
// The tentpole contract: once the per-epoch arenas (request SoA, leg
// slots, per-node op queues) are warm, a steady-state engine run
// performs ZERO heap allocations — traffic generation, routing, wave
// execution, and combine all recycle flat buffers. This binary
// overrides the global allocator to count, so it must stay its own
// test executable (mirrors tests/sim/event_alloc_test.cc).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cluster/engine.h"
#include "storage/mem_disk.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace deepnote::cluster {
namespace {

// A warm engine re-running the identical request stream must not touch
// the heap: every epoch's requests, legs, probes, and per-node queues
// land in arenas sized by the first run. MemDisk nodes keep the device
// layer allocation-free too (the drive model's write ledger is exempt
// from the contract — serving benches run timing-only).
TEST(EngineAllocTest, WarmEngineRunIsAllocationFree) {
  constexpr std::uint64_t kSectors = 16384;
  const ClusterTopology topo{.pods = 3, .bays_per_pod = 2};

  std::vector<std::unique_ptr<storage::MemDisk>> disks;
  std::vector<storage::BlockDevice*> devices;
  for (std::size_t i = 0; i < topo.nodes(); ++i) {
    disks.push_back(std::make_unique<storage::MemDisk>(kSectors));
    devices.push_back(disks.back().get());
  }

  EngineConfig config;
  config.balancer.objects = 1000;
  config.traffic.arrival_rate_per_s = 2000.0;
  config.traffic.duration = sim::Duration::from_seconds(0.5);
  config.traffic.keyspace = 1000;
  config.jobs = 1;
  ShardedClusterEngine engine(topo, devices, config);

  // Warm run: grows every arena to the stream's steady-state footprint
  // and faults in MemDisk chunks for every written object.
  SloTracker slo(sim::SimTime::zero());
  const EngineReport warm = engine.run(sim::SimTime::zero(), slo);
  ASSERT_GT(warm.traffic.requests, 500u);

  // Identical replay (same seed, same devices): zero allocations across
  // the full run — start_run's resets reuse capacity too.
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const EngineReport measured = engine.run(sim::SimTime::zero(), slo);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(measured.traffic.requests, warm.traffic.requests);
  EXPECT_EQ(after - before, 0u)
      << "steady-state engine loop allocated on the hot path";
}

}  // namespace
}  // namespace deepnote::cluster
