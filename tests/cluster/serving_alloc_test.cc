// Allocation accounting for the serving-mode engine loop.
//
// The serving pipeline adds per-node event queues, pooled request
// contexts, closed-loop client state, and the queue-wait / service-time
// histograms to the hot path. The contract extends the immediate-mode
// one (engine_alloc_test.cc): once a first run has warmed every arena —
// context pools, event slabs, the FIFO rings, histogram buckets, the
// depth timeline — a steady-state serving run performs ZERO heap
// allocations. This binary overrides the global allocator to count, so
// it must stay its own test executable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cluster/engine.h"
#include "storage/mem_disk.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace deepnote::cluster {
namespace {

// A warm serving engine re-running the identical closed-loop stream
// must not touch the heap: arrivals, admission, queueing, device
// completions, failure classification, client settle, and the depth /
// histogram telemetry all recycle warmed state.
TEST(ServingAllocTest, WarmServingRunIsAllocationFree) {
  constexpr std::uint64_t kSectors = 16384;
  const ClusterTopology topo{.pods = 3, .bays_per_pod = 2};

  std::vector<std::unique_ptr<storage::MemDisk>> disks;
  std::vector<storage::BlockDevice*> devices;
  for (std::size_t i = 0; i < topo.nodes(); ++i) {
    disks.push_back(std::make_unique<storage::MemDisk>(kSectors));
    devices.push_back(disks.back().get());
  }

  EngineConfig config;
  config.balancer.objects = 1000;
  config.traffic.arrival_rate_per_s = 2000.0;
  config.traffic.duration = sim::Duration::from_seconds(0.5);
  config.traffic.keyspace = 1000;
  config.jobs = 1;
  config.serving.enabled = true;
  config.serving.server.queue_limit = 8;
  config.serving.clients = 32;
  ShardedClusterEngine engine(topo, devices, config);

  // Warm run: grows the engine arenas plus the serving state — context
  // pools, event slabs, histograms — and faults in MemDisk chunks.
  SloTracker slo(sim::SimTime::zero());
  const EngineReport warm = engine.run(sim::SimTime::zero(), slo);
  ASSERT_GT(warm.traffic.requests, 500u);
  ASSERT_GT(warm.serving.legs_served, 0u);

  // Identical replay (same seed, same devices): zero allocations across
  // the full run — start_run's serving resets reuse capacity too.
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const EngineReport measured = engine.run(sim::SimTime::zero(), slo);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(measured.traffic.requests, warm.traffic.requests);
  EXPECT_EQ(after - before, 0u)
      << "steady-state serving loop allocated on the hot path";
}

}  // namespace
}  // namespace deepnote::cluster
