// Allocation accounting for the serving-mode engine loop.
//
// The serving pipeline adds per-node event queues, pooled request
// contexts, closed-loop client state, and the queue-wait / service-time
// histograms to the hot path. The contract extends the immediate-mode
// one (engine_alloc_test.cc): once a first run has warmed every arena —
// context pools, event slabs, the FIFO rings, histogram buckets, the
// depth timeline — a steady-state serving run performs ZERO heap
// allocations. This binary overrides the global allocator to count, so
// it must stay its own test executable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cluster/engine.h"
#include "cluster/serving/node_server.h"
#include "storage/mem_disk.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace deepnote::cluster {
namespace {

// A warm serving engine re-running the identical closed-loop stream
// must not touch the heap: arrivals, admission, queueing, device
// completions, failure classification, client settle, and the depth /
// histogram telemetry all recycle warmed state.
TEST(ServingAllocTest, WarmServingRunIsAllocationFree) {
  constexpr std::uint64_t kSectors = 16384;
  const ClusterTopology topo{.pods = 3, .bays_per_pod = 2};

  std::vector<std::unique_ptr<storage::MemDisk>> disks;
  std::vector<storage::BlockDevice*> devices;
  for (std::size_t i = 0; i < topo.nodes(); ++i) {
    disks.push_back(std::make_unique<storage::MemDisk>(kSectors));
    devices.push_back(disks.back().get());
  }

  EngineConfig config;
  config.balancer.objects = 1000;
  config.traffic.arrival_rate_per_s = 2000.0;
  config.traffic.duration = sim::Duration::from_seconds(0.5);
  config.traffic.keyspace = 1000;
  config.jobs = 1;
  config.serving.enabled = true;
  config.serving.server.queue_limit = 8;
  config.serving.clients = 32;
  ShardedClusterEngine engine(topo, devices, config);

  // Warm run: grows the engine arenas plus the serving state — context
  // pools, event slabs, histograms — and faults in MemDisk chunks.
  SloTracker slo(sim::SimTime::zero());
  const EngineReport warm = engine.run(sim::SimTime::zero(), slo);
  ASSERT_GT(warm.traffic.requests, 500u);
  ASSERT_GT(warm.serving.legs_served, 0u);

  // Identical replay (same seed, same devices): zero allocations across
  // the full run — start_run's serving resets reuse capacity too.
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const EngineReport measured = engine.run(sim::SimTime::zero(), slo);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(measured.traffic.requests, warm.traffic.requests);
  EXPECT_EQ(after - before, 0u)
      << "steady-state serving loop allocated on the hot path";
}

// Same contract with the wave pool engaged: jobs = 4 shards the client
// population into per-shard arrival heaps and splits the per-wave
// active-node / depth-dirty lists per shard. All of that state must
// recycle exactly like the inline path's. (min_ops_to_shard = 0 forces
// every wave through the pool, so the sharded structures are actually
// exercised.)
TEST(ServingAllocTest, WarmShardedServingRunIsAllocationFree) {
  constexpr std::uint64_t kSectors = 16384;
  const ClusterTopology topo{.pods = 3, .bays_per_pod = 2};

  std::vector<std::unique_ptr<storage::MemDisk>> disks;
  std::vector<storage::BlockDevice*> devices;
  for (std::size_t i = 0; i < topo.nodes(); ++i) {
    disks.push_back(std::make_unique<storage::MemDisk>(kSectors));
    devices.push_back(disks.back().get());
  }

  EngineConfig config;
  config.balancer.objects = 1000;
  config.traffic.arrival_rate_per_s = 2000.0;
  config.traffic.duration = sim::Duration::from_seconds(0.5);
  config.traffic.keyspace = 1000;
  config.jobs = 4;
  config.min_ops_to_shard = 0;
  config.serving.enabled = true;
  config.serving.server.queue_limit = 8;
  config.serving.clients = 32;
  ShardedClusterEngine engine(topo, devices, config);

  SloTracker slo(sim::SimTime::zero());
  const EngineReport warm = engine.run(sim::SimTime::zero(), slo);
  ASSERT_GT(warm.serving.legs_served, 0u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const EngineReport measured = engine.run(sim::SimTime::zero(), slo);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(measured.traffic.requests, warm.traffic.requests);
  EXPECT_EQ(after - before, 0u)
      << "sharded steady-state serving loop allocated on the hot path";
}

// reserve() is the cold-start contract: a freshly built server whose
// queue depth and batch sizes stay inside the reserved capacity must
// not allocate even on its very FIRST drain — this is what lets the
// engine construct a 10k-server fleet right before a timed run. The
// workload queues deep enough to arm deadline timers (wheel slab) and
// shed at the limit, so the context pool, both rings and the wheel all
// get exercised, not just the idle fast path.
TEST(ServingAllocTest, ReservedNodeServerFirstRunIsAllocationFree) {
  storage::MemDisk disk(1024);
  serving::ServerConfig config;
  config.queue_limit = 4;
  serving::NodeServer server(disk, config);
  server.reserve(/*slots=*/8, /*ring=*/16);

  std::vector<std::byte> buf(storage::kBlockSectorSize);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int batch = 0; batch < 4; ++batch) {
    const std::int64_t base_us = 1000 * (batch + 1);
    for (int i = 0; i < 8; ++i) {  // 8 arrivals vs queue_limit 4: sheds too
      const auto at = sim::SimTime::from_micros(base_us + i);
      server.submit(at, storage::DiskOpKind::kRead,
                    static_cast<std::uint64_t>(i), 1, {}, buf,
                    /*deadline=*/sim::SimTime::from_micros(base_us + 40 + i),
                    /*tag=*/static_cast<std::uint64_t>(i));
    }
    server.drain();
    server.clear_completions();
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  const auto& stats = server.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_GT(stats.shed + stats.timed_out, 0u) << "queue never filled";
  EXPECT_EQ(after - before, 0u)
      << "reserved server allocated on its first runs";
}

}  // namespace
}  // namespace deepnote::cluster
