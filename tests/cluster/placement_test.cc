#include "cluster/placement.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace deepnote::cluster {
namespace {

constexpr ClusterTopology kTopo{.pods = 3, .bays_per_pod = 5};

TEST(Placement, ReplicaSetsAreDeterministicAndDistinct) {
  const PlacementMap map(kTopo, PlacementPolicy::kCrossPod, 3);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto a = map.replicas(key);
    const auto b = map.replicas(key);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 3u);
    const std::set<NodeId> unique(a.begin(), a.end());
    EXPECT_EQ(unique.size(), 3u) << "duplicate replica for key " << key;
    for (NodeId id : a) EXPECT_LT(id, kTopo.nodes());
  }
}

TEST(Placement, SamePodPacksEveryReplicaIntoPodZero) {
  const PlacementMap map(kTopo, PlacementPolicy::kSamePod, 3);
  for (std::uint64_t key = 0; key < 500; ++key) {
    for (NodeId id : map.replicas(key)) {
      EXPECT_EQ(kTopo.pod_of(id), 0u);
    }
  }
}

TEST(Placement, CrossPodSpansDistinctPods) {
  const PlacementMap map(kTopo, PlacementPolicy::kCrossPod, 3);
  for (std::uint64_t key = 0; key < 500; ++key) {
    std::set<std::size_t> pods;
    for (NodeId id : map.replicas(key)) pods.insert(kTopo.pod_of(id));
    EXPECT_EQ(pods.size(), 3u) << "pod collision for key " << key;
  }
}

TEST(Placement, RackAwareUsesDistinctPodsAndFarBays) {
  const PlacementMap map(kTopo, PlacementPolicy::kRackAware, 3);
  // Bays count away from the incident wall: the far half of a 5-bay
  // tower is bays {3, 4}.
  const std::size_t far_cutoff = kTopo.bays_per_pod - (kTopo.bays_per_pod + 1) / 2;
  for (std::uint64_t key = 0; key < 500; ++key) {
    std::set<std::size_t> pods;
    for (NodeId id : map.replicas(key)) {
      pods.insert(kTopo.pod_of(id));
      EXPECT_GE(kTopo.bay_of(id), far_cutoff)
          << "near-wall bay used for key " << key;
    }
    EXPECT_EQ(pods.size(), 3u);
  }
}

TEST(Placement, KeysCoverTheWholeFleet) {
  const PlacementMap map(kTopo, PlacementPolicy::kCrossPod, 3);
  std::set<NodeId> touched;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    for (NodeId id : map.replicas(key)) touched.insert(id);
  }
  EXPECT_EQ(touched.size(), kTopo.nodes());
}

TEST(Placement, PrimariesSpreadAcrossPods) {
  const PlacementMap map(kTopo, PlacementPolicy::kCrossPod, 3);
  std::vector<std::size_t> per_pod(kTopo.pods, 0);
  constexpr std::uint64_t kKeys = 3000;
  std::vector<NodeId> replicas;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    map.replicas(key, replicas);
    ++per_pod[kTopo.pod_of(replicas.front())];
  }
  for (std::size_t pod = 0; pod < kTopo.pods; ++pod) {
    EXPECT_GT(per_pod[pod], kKeys / kTopo.pods / 2)
        << "pod " << pod << " starved of primaries";
  }
}

TEST(Placement, RejectsImpossibleReplication) {
  EXPECT_THROW(PlacementMap(kTopo, PlacementPolicy::kCrossPod, 0),
               std::invalid_argument);
  EXPECT_THROW(PlacementMap(kTopo, PlacementPolicy::kCrossPod, 4),
               std::invalid_argument);
  EXPECT_THROW(PlacementMap(kTopo, PlacementPolicy::kRackAware, 4),
               std::invalid_argument);
  EXPECT_THROW(PlacementMap(kTopo, PlacementPolicy::kSamePod, 6),
               std::invalid_argument);
  EXPECT_NO_THROW(PlacementMap(kTopo, PlacementPolicy::kSamePod, 5));
}

TEST(Placement, ReusedOutputVectorIsCleared) {
  const PlacementMap map(kTopo, PlacementPolicy::kSamePod, 2);
  std::vector<NodeId> out{99, 98, 97, 96};
  map.replicas(7, out);
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace deepnote::cluster
