// Balancer control-loop tests on MemDisk-backed nodes: failover,
// detector-driven drain, probe readmission, write quorum, the retry
// budget, and hedged reads — all in exact virtual time.
#include "cluster/balancer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::cluster {
namespace {

constexpr std::uint64_t kSectors = 16384;

struct MiniCluster {
  // 3 pods x 1 bay: node id == pod, every replica set spans all three
  // nodes (cross-pod, R=3) with a key-dependent primary.
  ClusterTopology topo{.pods = 3, .bays_per_pod = 1};
  std::vector<std::unique_ptr<storage::MemDisk>> disks;
  std::vector<std::unique_ptr<ClusterNode>> nodes;

  explicit MiniCluster(core::DetectorConfig detector = {},
                       sim::Duration latency = sim::Duration::from_micros(20)) {
    for (std::size_t pod = 0; pod < topo.pods; ++pod) {
      disks.push_back(std::make_unique<storage::MemDisk>(kSectors, latency));
      nodes.push_back(std::make_unique<ClusterNode>(
          topo.node_id(pod, 0), pod, 0, *disks.back(), detector));
    }
  }

  std::vector<ClusterNode*> pointers() {
    std::vector<ClusterNode*> out;
    for (auto& n : nodes) out.push_back(n.get());
    return out;
  }
};

BalancerConfig small_objects() {
  BalancerConfig config;
  config.objects = 1000;
  return config;
}

/// A key whose placement puts `primary` first.
std::uint64_t key_with_primary(const Balancer& balancer, NodeId primary) {
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (balancer.placement().replicas(key).front() == primary) return key;
  }
  ADD_FAILURE() << "no key with primary " << primary;
  return 0;
}

TEST(Balancer, ReadServedByPrimaryReplica) {
  MiniCluster mini;
  Balancer balancer(mini.topo, mini.pointers(), small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  const std::uint64_t key = key_with_primary(balancer, 1);
  const auto outcome = balancer.read(sim::SimTime::zero(), key, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_FALSE(outcome.hedged);
  EXPECT_EQ(outcome.complete, sim::SimTime::from_micros(20));
  EXPECT_EQ(mini.disks[1]->read_count(), 1u);
  EXPECT_EQ(mini.disks[0]->read_count(), 0u);
  EXPECT_EQ(balancer.stats().read_failovers, 0u);
}

TEST(Balancer, ReadFailsOverWhenPrimaryErrors) {
  MiniCluster mini;
  Balancer balancer(mini.topo, mini.pointers(), small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  const std::uint64_t key = key_with_primary(balancer, 0);
  mini.disks[0]->set_failing(true);
  const auto outcome = balancer.read(sim::SimTime::zero(), key, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 2u);
  // The retry starts when the primary's failure reports.
  EXPECT_EQ(outcome.complete, sim::SimTime::from_micros(40));
  EXPECT_EQ(balancer.stats().read_failovers, 1u);
  EXPECT_EQ(balancer.stats().failed_reads, 0u);
}

TEST(Balancer, ErrorBurstDrainsTheNodeOutOfRotation) {
  MiniCluster mini;  // default detector: error_burst = 3, no warmup needed
  Balancer balancer(mini.topo, mini.pointers(), small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  const std::uint64_t key = key_with_primary(balancer, 0);
  mini.disks[0]->set_failing(true);
  sim::SimTime now = sim::SimTime::zero();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(balancer.read(now, key, buf).ok);
    now = now + sim::Duration::from_millis(1.0);
  }
  EXPECT_EQ(mini.nodes[0]->health(), NodeHealth::kDrained);
  EXPECT_EQ(balancer.stats().drains, 1u);

  // Drained primary is ranked last: the next read goes straight to a
  // healthy replica, no failover needed.
  const std::uint64_t failing_reads = mini.disks[0]->read_count();
  const auto outcome = balancer.read(now, key, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(mini.disks[0]->read_count(), failing_reads);
}

TEST(Balancer, ProbeReadmitsARecoveredNode) {
  MiniCluster mini;
  BalancerConfig config = small_objects();
  Balancer balancer(mini.topo, mini.pointers(), config);
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  const std::uint64_t key = key_with_primary(balancer, 0);
  mini.disks[0]->set_failing(true);
  sim::SimTime now = sim::SimTime::zero();
  for (int i = 0; i < 3; ++i) {
    balancer.read(now, key, buf);
    now = now + sim::Duration::from_millis(1.0);
  }
  ASSERT_EQ(mini.nodes[0]->health(), NodeHealth::kDrained);

  // Probe while still broken: stays drained, next probe rescheduled.
  sim::SimTime probe_at = now + config.probe_interval;
  balancer.run_probes(probe_at);
  EXPECT_EQ(mini.nodes[0]->health(), NodeHealth::kDrained);
  EXPECT_GE(balancer.stats().probes, 1u);

  // Device recovers: the next due probe readmits and clears the alert.
  mini.disks[0]->clear_fault();
  probe_at = probe_at + config.probe_interval;
  balancer.run_probes(probe_at);
  EXPECT_EQ(mini.nodes[0]->health(), NodeHealth::kHealthy);
  EXPECT_FALSE(mini.nodes[0]->detector().alerted());
  EXPECT_EQ(balancer.stats().readmits, 1u);
}

TEST(Balancer, WriteNeedsMajorityQuorum) {
  MiniCluster mini;
  Balancer balancer(mini.topo, mini.pointers(), small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize,
                             std::byte{0x42});

  // All healthy: acked by all three, completion at the quorum (2nd) ack.
  auto outcome = balancer.write(sim::SimTime::zero(), 7, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.complete, sim::SimTime::from_micros(20));

  // One member down: 2 of 3 still make quorum.
  mini.disks[0]->set_failing(true);
  outcome = balancer.write(sim::SimTime::from_millis(1.0), 7, buf);
  EXPECT_TRUE(outcome.ok);

  // Two members down: quorum lost.
  mini.disks[1]->set_failing(true);
  outcome = balancer.write(sim::SimTime::from_millis(2.0), 7, buf);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(balancer.stats().quorum_losses, 1u);
  EXPECT_EQ(balancer.stats().failed_writes, 1u);
}

TEST(Balancer, WritesGoThroughDrainedReplicasWhenQuorumNeedsThem) {
  MiniCluster mini;
  Balancer balancer(mini.topo, mini.pointers(), small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  // Two of three replicas mis-drained (devices actually fine).
  mini.nodes[0]->drain(sim::SimTime::zero());
  mini.nodes[1]->drain(sim::SimTime::zero());
  const auto outcome = balancer.write(sim::SimTime::from_millis(1.0), 7, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);  // wrote through the drains
  EXPECT_EQ(balancer.stats().quorum_losses, 0u);
}

TEST(Balancer, FailStaticReadsStillTryAFullyDrainedSet) {
  MiniCluster mini;
  Balancer balancer(mini.topo, mini.pointers(), small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  for (auto& node : mini.nodes) node->drain(sim::SimTime::zero());
  const auto outcome = balancer.read(sim::SimTime::from_millis(1.0), 3, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
}

TEST(Balancer, RetryBudgetDeniesRunawayFailover) {
  // Detector that never alerts: keep the failing primary in rotation so
  // every read needs a failover token.
  core::DetectorConfig quiet;
  quiet.error_burst = 1000000;
  quiet.warmup_ops = 1000000;
  MiniCluster mini(quiet);
  BalancerConfig config = small_objects();
  config.retry_budget_ratio = 0.0;  // nothing refills
  config.retry_budget_cap = 2.0;    // two failovers, then denial
  config.hedge_threshold = sim::Duration::zero();
  Balancer balancer(mini.topo, mini.pointers(), config);
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  const std::uint64_t key = key_with_primary(balancer, 0);
  mini.disks[0]->set_failing(true);
  sim::SimTime now = sim::SimTime::zero();
  EXPECT_TRUE(balancer.read(now, key, buf).ok);
  now = now + sim::Duration::from_millis(1.0);
  EXPECT_TRUE(balancer.read(now, key, buf).ok);
  now = now + sim::Duration::from_millis(1.0);

  const auto denied = balancer.read(now, key, buf);
  EXPECT_FALSE(denied.ok);
  EXPECT_EQ(denied.attempts, 1u);
  EXPECT_EQ(balancer.stats().retries_denied, 1u);
  EXPECT_EQ(balancer.stats().failed_reads, 1u);
}

TEST(Balancer, HedgesReadsOffAHotPrimary) {
  // Primary on a slow disk; detector warms its recent-latency EWMA past
  // the hedge threshold after a few served reads.
  core::DetectorConfig quiet;
  quiet.warmup_ops = 1000000;  // no latency alerts, just EWMA tracking
  const ClusterTopology topo{.pods = 3, .bays_per_pod = 1};
  storage::MemDisk slow(kSectors, sim::Duration::from_millis(100.0));
  storage::MemDisk fast1(kSectors);
  storage::MemDisk fast2(kSectors);
  ClusterNode n0(0, 0, 0, slow, quiet);
  ClusterNode n1(1, 1, 0, fast1, quiet);
  ClusterNode n2(2, 2, 0, fast2, quiet);

  Balancer balancer(topo, {&n0, &n1, &n2}, small_objects());
  std::vector<std::byte> buf(8 * storage::kBlockSectorSize);

  const std::uint64_t key = key_with_primary(balancer, 0);
  sim::SimTime now = sim::SimTime::zero();
  // The first read seeds the recent-latency EWMA at 100 ms (> 40 ms
  // threshold), so every read after it hedges.
  EXPECT_FALSE(balancer.read(now, key, buf).hedged);
  now = now + sim::Duration::from_millis(200.0);

  const auto outcome = balancer.read(now, key, buf);
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.hedged);
  // The fast backup wins the race.
  EXPECT_EQ(outcome.complete, now + sim::Duration::from_micros(20));
  EXPECT_EQ(balancer.stats().hedged_reads, 1u);
  EXPECT_EQ(balancer.stats().hedge_wins, 1u);
}

TEST(Balancer, RejectsMismatchedNodeList) {
  MiniCluster mini;
  auto pointers = mini.pointers();
  pointers.pop_back();
  EXPECT_THROW(Balancer(mini.topo, pointers, small_objects()),
               std::invalid_argument);
}

TEST(Balancer, RejectsObjectSpaceLargerThanDevice) {
  MiniCluster mini;
  BalancerConfig config;
  config.objects = kSectors;  // * 8 sectors each: cannot fit
  EXPECT_THROW(Balancer(mini.topo, mini.pointers(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::cluster
