// Property suite for the serving pipeline (NodeServer's staged-ring /
// timer-wheel data plane), TEST_P over seeds.
//
// Each seed builds a random scenario — queue limit, admission policy,
// device latency, deadline tightness, fault injection, batch boundaries
// with mid-run drains — runs a few hundred requests through one server,
// and checks the invariants that make the serving mode trustworthy:
//
//  * conservation: every submitted request terminates in EXACTLY one of
//    {served, failed, timed out, shed}; no request is lost or reported
//    twice (tags are unique and cover the submission set);
//  * ordering: the completion ring is filled in non-decreasing virtual
//    time (timeouts included — the wheel retires them at their deadline
//    instant), and requests that reach the device are serviced in FIFO
//    admission order — (arrival time, submission seq) — on
//    non-overlapping single-server busy intervals;
//  * bounds: queue depth never exceeds the admission limit, and the
//    pipeline is empty after drain();
//  * sanity of the per-outcome timestamps (the queue-wait / service-time
//    decomposition the experiment layer reports).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "cluster/serving/node_server.h"
#include "sim/rng.h"
#include "storage/mem_disk.h"

namespace deepnote::cluster::serving {
namespace {

struct Scenario {
  std::size_t queue_limit = 1;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
  sim::Duration device_latency = sim::Duration::zero();
  std::size_t requests = 0;
  std::uint64_t fail_after = ~0ull;  ///< device fault injection point
};

struct Submission {
  sim::SimTime arrival = sim::SimTime::zero();
  sim::SimTime deadline = sim::SimTime::zero();
  bool is_read = false;
};

Scenario make_scenario(sim::Rng& rng) {
  Scenario s;
  s.queue_limit = static_cast<std::size_t>(rng.uniform_int(1, 12));
  s.admission = rng.bernoulli(0.5) ? AdmissionPolicy::kRejectNew
                                   : AdmissionPolicy::kDropOldest;
  // 0.2–3 ms per command against ~1 ms mean inter-arrival: some seeds
  // run under capacity, some saturate and shed/time out heavily.
  s.device_latency = sim::Duration::from_micros(rng.uniform(200.0, 3000.0));
  s.requests = static_cast<std::size_t>(rng.uniform_int(200, 400));
  if (rng.bernoulli(0.5)) {
    s.fail_after = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.requests / 2)));
  }
  return s;
}

std::vector<Submission> make_stream(sim::Rng& rng, const Scenario& s) {
  std::vector<Submission> stream;
  stream.reserve(s.requests);
  sim::SimTime at = sim::SimTime::zero() + sim::Duration::from_micros(10);
  for (std::size_t i = 0; i < s.requests; ++i) {
    // Bursty arrivals with occasional exact ties (the FIFO tie-break —
    // submission order — must decide those).
    if (!rng.bernoulli(0.15)) {
      at = at + sim::Duration::from_micros(rng.exponential(1000.0));
    }
    Submission sub;
    sub.arrival = at;
    // Deadlines from hopeless (one device latency) to generous.
    sub.deadline =
        at + sim::Duration::from_micros(rng.uniform(500.0, 20000.0));
    sub.is_read = rng.bernoulli(0.5);
    stream.push_back(sub);
  }
  return stream;
}

/// Runs the stream through a fresh server, draining at random batch
/// boundaries with probability `drain_prob` per submission (backlog
/// must carry across drains via busy_until_). Mid-stream drains advance
/// virtual time past later arrivals — the same trade the engine's wave
/// batching makes — so tests that assert global time ordering pass 0.
std::vector<ServeResult> run_stream(const std::vector<Submission>& stream,
                                    sim::Rng rng, NodeServer& server,
                                    double drain_prob,
                                    NodeServerStats* stats_out = nullptr) {
  std::vector<ServeResult> results;
  results.reserve(stream.size());
  const auto consume = [&] {
    server.drain();
    results.insert(results.end(), server.completions().begin(),
                   server.completions().end());
    server.clear_completions();
  };

  std::vector<std::byte> buf(storage::kBlockSectorSize);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Submission& sub = stream[i];
    if (sub.is_read) {
      server.submit(sub.arrival, storage::DiskOpKind::kRead, i % 64, 1, {},
                    std::span<std::byte>(buf), sub.deadline, i);
    } else {
      server.submit(sub.arrival, storage::DiskOpKind::kWrite, i % 64, 1,
                    std::span<const std::byte>(buf), {}, sub.deadline, i);
    }
    if (rng.bernoulli(drain_prob)) consume();
  }
  consume();
  EXPECT_EQ(server.depth(), 0u) << "pipeline not empty after drain";
  if (stats_out != nullptr) *stats_out = server.stats();
  return results;
}

class ServingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServingProperty, EveryRequestTerminatesExactlyOnce) {
  sim::Rng rng(GetParam());
  const Scenario s = make_scenario(rng);
  const std::vector<Submission> stream = make_stream(rng, s);

  storage::MemDisk disk(16384, s.device_latency);
  if (s.fail_after != ~0ull) disk.fail_after(s.fail_after);
  NodeServer server(disk, ServerConfig{s.queue_limit, s.admission});
  NodeServerStats stats;
  const std::vector<ServeResult> results =
      run_stream(stream, rng.fork(), server, 0.05, &stats);

  // Conservation: one terminal result per submission, no loss, no dupes.
  ASSERT_EQ(results.size(), stream.size());
  std::vector<bool> seen(stream.size(), false);
  for (const ServeResult& r : results) {
    ASSERT_LT(r.tag, stream.size());
    EXPECT_FALSE(seen[r.tag]) << "request " << r.tag << " reported twice";
    seen[r.tag] = true;
  }

  // The stats ledger agrees with the sink, and the four outcomes
  // partition the submissions.
  EXPECT_EQ(stats.submitted, stream.size());
  EXPECT_EQ(stats.served + stats.failed + stats.timed_out + stats.shed,
            stats.submitted);
  std::uint64_t counted[kNumOutcomeKinds] = {};
  for (const ServeResult& r : results) {
    ++counted[static_cast<std::size_t>(r.outcome)];
  }
  EXPECT_EQ(counted[static_cast<std::size_t>(OutcomeKind::kServed)],
            stats.served);
  EXPECT_EQ(counted[static_cast<std::size_t>(OutcomeKind::kFailed)],
            stats.failed);
  EXPECT_EQ(counted[static_cast<std::size_t>(OutcomeKind::kTimedOut)],
            stats.timed_out);
  EXPECT_EQ(counted[static_cast<std::size_t>(OutcomeKind::kShed)],
            stats.shed);
}

TEST_P(ServingProperty, CompletionOrderAndSingleServerService) {
  sim::Rng rng(GetParam());
  const Scenario s = make_scenario(rng);
  const std::vector<Submission> stream = make_stream(rng, s);

  storage::MemDisk disk(16384, s.device_latency);
  if (s.fail_after != ~0ull) disk.fail_after(s.fail_after);
  NodeServer server(disk, ServerConfig{s.queue_limit, s.admission});
  const std::vector<ServeResult> results =
      run_stream(stream, rng.fork(), server, 0.0);
  ASSERT_EQ(results.size(), stream.size());

  // The ring fills in virtual-time order for EVERY outcome: served /
  // failed at device completion, shed at the admission decision, and
  // timed out at the deadline instant — the timer wheel retires an
  // expired request the moment its deadline passes rather than when it
  // would have reached the head of the line.
  std::int64_t frontier_ns = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GE(results[i].complete.ns(), frontier_ns)
        << "completion ring went backwards in time at result " << i;
    frontier_ns = results[i].complete.ns();
  }

  // Requests that reached the device (served or failed) were serviced
  // one at a time, FIFO in (arrival, submission seq) order: sink order
  // for them is service order, busy intervals don't overlap, and their
  // tags — equal to submission index, with arrivals non-decreasing in
  // submission order — must be strictly increasing.
  const ServeResult* prev = nullptr;
  for (const ServeResult& r : results) {
    if (r.outcome != OutcomeKind::kServed && r.outcome != OutcomeKind::kFailed)
      continue;
    EXPECT_GE(r.service_start.ns(), r.arrival.ns());
    EXPECT_GT(r.complete.ns(), r.service_start.ns());
    if (prev != nullptr) {
      EXPECT_GE(r.service_start.ns(), prev->complete.ns())
          << "two commands overlapped on the single-server device";
      EXPECT_GT(r.tag, prev->tag) << "device service broke FIFO order";
    }
    prev = &r;
  }
}

TEST_P(ServingProperty, DepthBoundedAndTimestampsSane) {
  sim::Rng rng(GetParam());
  const Scenario s = make_scenario(rng);
  const std::vector<Submission> stream = make_stream(rng, s);

  storage::MemDisk disk(16384, s.device_latency);
  if (s.fail_after != ~0ull) disk.fail_after(s.fail_after);
  NodeServer server(disk, ServerConfig{s.queue_limit, s.admission});
  NodeServerStats stats;
  const std::vector<ServeResult> results =
      run_stream(stream, rng.fork(), server, 0.05, &stats);

  EXPECT_LE(stats.max_depth, s.queue_limit)
      << "queue depth exceeded the admission limit";

  for (const ServeResult& r : results) {
    const Submission& sub = stream[r.tag];
    EXPECT_EQ(r.arrival.ns(), sub.arrival.ns());
    switch (r.outcome) {
      case OutcomeKind::kServed:
      case OutcomeKind::kFailed:
        // Device time starts after arrival and before the client quit.
        EXPECT_GE(r.service_start.ns(), r.arrival.ns());
        EXPECT_LT(r.service_start.ns(), sub.deadline.ns());
        break;
      case OutcomeKind::kTimedOut:
        // Expired in queue: accounted at the deadline, no device time.
        EXPECT_EQ(r.complete.ns(), sub.deadline.ns());
        break;
      case OutcomeKind::kShed:
        // Refused at the admission decision; for reject-new that is the
        // request's own arrival, for drop-oldest the evictor's.
        EXPECT_GE(r.complete.ns(), r.arrival.ns());
        break;
    }
  }
}

TEST_P(ServingProperty, ResetReplaysIdentically) {
  sim::Rng rng(GetParam());
  const Scenario s = make_scenario(rng);
  const std::vector<Submission> stream = make_stream(rng, s);
  const sim::Rng drain_rng = rng.fork();

  storage::MemDisk disk(16384, s.device_latency);
  NodeServer server(disk, ServerConfig{s.queue_limit, s.admission});
  const std::vector<ServeResult> first =
      run_stream(stream, drain_rng, server, 0.05);
  server.reset();
  const std::vector<ServeResult> second =
      run_stream(stream, drain_rng, server, 0.05);

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].tag, second[i].tag);
    EXPECT_EQ(first[i].outcome, second[i].outcome);
    EXPECT_EQ(first[i].arrival.ns(), second[i].arrival.ns());
    EXPECT_EQ(first[i].service_start.ns(), second[i].service_start.ns());
    EXPECT_EQ(first[i].complete.ns(), second[i].complete.ns());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace deepnote::cluster::serving
