// Cluster availability experiment tests: the paper-level headline
// (placement decides whether a pod-level acoustic attack is an outage),
// bit-exact determinism across worker counts, and a golden-CSV pin.
#include "cluster/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace deepnote::cluster {
namespace {

constexpr double kScale = 0.2;  // 2 s warmup / 8 s attack / 2 s cooldown

const std::vector<ClusterTrialRow>& cached_rows() {
  static const std::vector<ClusterTrialRow> rows =
      run_cluster_experiment(cluster_experiment_config(kScale));
  return rows;
}

const ClusterTrialRow& find_row(PlacementPolicy policy,
                                std::optional<double> distance_m) {
  for (const ClusterTrialRow& row : cached_rows()) {
    if (row.policy == policy && row.distance_m == distance_m) return row;
  }
  static ClusterTrialRow missing;
  ADD_FAILURE() << "row not found";
  return missing;
}

TEST(ClusterExperiment, BaselinesServeCleanly) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kSamePod, PlacementPolicy::kCrossPod,
        PlacementPolicy::kRackAware}) {
    const ClusterTrialRow& row = find_row(policy, std::nullopt);
    EXPECT_GE(row.availability, 0.999) << placement_name(policy);
    EXPECT_GT(row.requests, 0u);
  }
}

// The headline: under a point-blank single-pod 650 Hz / 140 dB attack,
// replication policy is the difference between business-as-usual and an
// outage. Cross-pod placement loses at most one replica per object and
// keeps serving >= 99%; the dense same-pod layout loses every replica
// of every object at once and collapses (what little survives is writes
// absorbed by drive write caches).
TEST(ClusterExperiment, PlacementDecidesAvailabilityUnderAttack) {
  const ClusterTrialRow& same_pod = find_row(PlacementPolicy::kSamePod, 0.01);
  const ClusterTrialRow& cross_pod = find_row(PlacementPolicy::kCrossPod, 0.01);
  const ClusterTrialRow& rack_aware =
      find_row(PlacementPolicy::kRackAware, 0.01);

  EXPECT_LE(same_pod.attack_availability, 0.20) << "same-pod should collapse";
  EXPECT_GE(cross_pod.attack_availability, 0.99);
  EXPECT_GE(rack_aware.attack_availability, 0.99);

  // The survivors actually had to work for it: reads failed over and
  // the detector pulled attacked nodes from rotation.
  EXPECT_GT(cross_pod.read_failovers + cross_pod.drains, 0u);
  EXPECT_GT(same_pod.failed, 100u);
}

TEST(ClusterExperiment, AttackIsLocalizedToItsWindow) {
  const ClusterTrialRow& cross_pod = find_row(PlacementPolicy::kCrossPod, 0.01);
  // Whole-run availability includes warmup + cooldown and must not be
  // below the attack window's (recovery works).
  EXPECT_GE(cross_pod.availability, cross_pod.attack_availability);
}

TEST(ClusterExperiment, DistanceAttenuatesTheAttack) {
  const ClusterTrialRow& near = find_row(PlacementPolicy::kSamePod, 0.01);
  const ClusterTrialRow& far = find_row(PlacementPolicy::kSamePod, 0.25);
  EXPECT_LT(near.attack_availability, far.attack_availability);
  EXPECT_GE(far.attack_availability, 0.99);
}

TEST(ClusterExperiment, DeterministicAcrossJobCounts) {
  ClusterExperimentConfig config = cluster_experiment_config(kScale);
  config.jobs = 1;
  const auto serial = run_cluster_experiment(config);
  config.jobs = 4;
  const auto parallel = run_cluster_experiment(config);
  const std::string csv_serial =
      build_cluster_availability_table(config, serial).to_csv();
  const std::string csv_parallel =
      build_cluster_availability_table(config, parallel).to_csv();
  EXPECT_EQ(csv_serial, csv_parallel);
}

std::string golden_path(const std::string& name) {
  return std::string(DEEPNOTE_GOLDEN_DIR) + "/" + name;
}

void diff_against_golden(const sim::Table& table, const std::string& name) {
  const std::string rendered = table.to_csv();
  const std::string path = golden_path(name);
  if (std::getenv("DEEPNOTE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("[golden updated: %s]\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — generate it with DEEPNOTE_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), rendered)
      << "table drifted from " << path
      << "\nIf intentional, regenerate with DEEPNOTE_UPDATE_GOLDEN=1 "
         "and review the CSV diff.";
}

TEST(ClusterExperiment, GoldenAvailabilityTable) {
  const ClusterExperimentConfig config = cluster_experiment_config(kScale);
  diff_against_golden(
      build_cluster_availability_table(config, cached_rows()),
      "cluster_availability.csv");
}

// --- serving (queueing) experiment --------------------------------------

const std::vector<ServingTrialRow>& cached_serving_rows() {
  static const std::vector<ServingTrialRow> rows =
      run_serving_experiment(serving_experiment_config(kScale));
  return rows;
}

const ServingTrialRow& find_serving_row(std::size_t queue_limit,
                                        serving::AdmissionPolicy admission,
                                        std::optional<double> distance_m) {
  for (const ServingTrialRow& row : cached_serving_rows()) {
    if (row.queue_limit == queue_limit && row.admission == admission &&
        row.distance_m == distance_m) {
      return row;
    }
  }
  static ServingTrialRow missing;
  ADD_FAILURE() << "serving row not found";
  return missing;
}

TEST(ServingExperiment, BaselinesServeWithoutShedding) {
  const ServingExperimentConfig config = serving_experiment_config(kScale);
  for (const std::size_t queue_limit : config.queue_limits) {
    for (const serving::AdmissionPolicy admission : config.admissions) {
      const ServingTrialRow& row =
          find_serving_row(queue_limit, admission, std::nullopt);
      EXPECT_GE(row.availability, 0.999);
      EXPECT_EQ(row.shed_requests + row.timed_out_requests, 0u);
      EXPECT_GT(row.requests, 0u);
    }
  }
}

// The serving-mode headline: availability survives the attack (cross-pod
// replication covers for the attacked pod), but the queueing telemetry
// shows what the availability number hides — queues pinned at the
// admission limit and legs shed or expiring on the attacked nodes.
TEST(ServingExperiment, AttackStrainsTheQueuesNotTheHeadline) {
  const ServingTrialRow& quiet = find_serving_row(
      4, serving::AdmissionPolicy::kRejectNew, std::nullopt);
  const ServingTrialRow& attacked =
      find_serving_row(4, serving::AdmissionPolicy::kRejectNew, 0.01);

  EXPECT_GE(attacked.attack_availability, 0.95);
  EXPECT_GT(attacked.legs_shed + attacked.legs_timed_out,
            quiet.legs_shed + quiet.legs_timed_out);
  EXPECT_GE(attacked.attack_max_queue_depth, quiet.max_queue_depth);
  EXPECT_GT(attacked.read_failovers, quiet.read_failovers);
}

// A deeper queue converts sheds into waiting: fewer refused legs, longer
// queue-wait tail, at this load without hurting availability.
TEST(ServingExperiment, QueueDepthTradesSheddingForWaiting) {
  const ServingTrialRow& shallow =
      find_serving_row(4, serving::AdmissionPolicy::kRejectNew, 0.01);
  const ServingTrialRow& deep =
      find_serving_row(32, serving::AdmissionPolicy::kRejectNew, 0.01);
  EXPECT_LT(deep.legs_shed, shallow.legs_shed);
  EXPECT_GE(deep.attack_availability, shallow.attack_availability - 0.01);
}

TEST(ServingExperiment, DeterministicAcrossJobCounts) {
  ServingExperimentConfig config = serving_experiment_config(kScale);
  config.jobs = 1;
  const auto serial = run_serving_experiment(config);
  config.jobs = 4;
  const auto parallel = run_serving_experiment(config);
  const std::string csv_serial =
      build_cluster_serving_table(config, serial).to_csv();
  const std::string csv_parallel =
      build_cluster_serving_table(config, parallel).to_csv();
  EXPECT_EQ(csv_serial, csv_parallel);
}

TEST(ServingExperiment, GoldenServingTable) {
  const ServingExperimentConfig config = serving_experiment_config(kScale);
  diff_against_golden(
      build_cluster_serving_table(config, cached_serving_rows()),
      "cluster_serving.csv");
}

}  // namespace
}  // namespace deepnote::cluster
