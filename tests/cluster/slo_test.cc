#include "cluster/slo.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace deepnote::cluster {
namespace {

sim::SimTime at_s(double s) { return sim::SimTime::from_seconds(s); }

TEST(Slo, AvailabilityCountsSuccessesOverTotal) {
  SloTracker slo(sim::SimTime::zero());
  for (int i = 0; i < 9; ++i) {
    slo.record_success(at_s(0.1 * i), sim::Duration::from_millis(5.0));
  }
  slo.record_failure(at_s(0.95));
  EXPECT_EQ(slo.total(), 10u);
  EXPECT_EQ(slo.succeeded(), 9u);
  EXPECT_EQ(slo.failed(), 1u);
  EXPECT_DOUBLE_EQ(slo.availability(), 0.9);
}

TEST(Slo, RequestsLandInTheirArrivalWindow) {
  SloTracker slo(sim::SimTime::zero());
  slo.record_success(at_s(0.2), sim::Duration::from_millis(1.0));
  slo.record_failure(at_s(1.7));
  slo.record_failure(at_s(1.9));
  slo.record_success(at_s(3.5), sim::Duration::from_millis(1.0));
  const auto& windows = slo.windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].ok, 1u);
  EXPECT_EQ(windows[1].fail, 2u);
  EXPECT_DOUBLE_EQ(windows[1].availability(), 0.0);
  EXPECT_EQ(windows[2].ok + windows[2].fail, 0u);
  EXPECT_DOUBLE_EQ(windows[2].availability(), 1.0);
  EXPECT_EQ(windows[3].ok, 1u);
}

TEST(Slo, FocusIntervalAccountsArrivalsExactly) {
  SloTracker slo(sim::SimTime::zero());
  slo.set_focus(at_s(1.0), at_s(2.0));
  slo.record_success(at_s(0.999), sim::Duration::from_millis(1.0));  // before
  slo.record_failure(at_s(1.0));                                     // first in
  slo.record_success(at_s(1.5), sim::Duration::from_millis(1.0));    // in
  slo.record_failure(at_s(2.0));                                     // after
  EXPECT_EQ(slo.focus_total(), 2u);
  EXPECT_DOUBLE_EQ(slo.focus_availability(), 0.5);
  EXPECT_DOUBLE_EQ(slo.availability(), 0.5);
}

TEST(Slo, EmptyFocusReportsPerfectAvailability) {
  SloTracker slo(sim::SimTime::zero());
  slo.record_success(at_s(0.1), sim::Duration::from_millis(1.0));
  EXPECT_DOUBLE_EQ(slo.focus_availability(), 1.0);
  EXPECT_EQ(slo.focus_total(), 0u);
}

TEST(Slo, QuantilesComeFromSuccessfulLatencies) {
  SloTracker slo(sim::SimTime::zero());
  for (int i = 0; i < 2000; ++i) {
    slo.record_success(at_s(0.001 * i), sim::Duration::from_millis(5.0));
  }
  for (int i = 0; i < 10; ++i) {
    slo.record_success(at_s(2.0), sim::Duration::from_millis(500.0));
  }
  EXPECT_LT(slo.p50().millis(), 10.0);
  EXPECT_GE(slo.p999().millis(), 400.0);
  EXPECT_LE(slo.p50(), slo.p99());
  EXPECT_LE(slo.p99(), slo.p999());
}

TEST(Slo, ErrorBudgetConsumption) {
  SloConfig config;
  config.availability_target = 0.99;  // 1% budget
  SloTracker slo(sim::SimTime::zero(), config);
  for (int i = 0; i < 995; ++i) {
    slo.record_success(at_s(0.001 * i), sim::Duration::from_millis(1.0));
  }
  for (int i = 0; i < 5; ++i) slo.record_failure(at_s(1.0));
  // 5 failures of 1000 against a 10-failure budget: half consumed.
  EXPECT_NEAR(slo.error_budget_consumed(), 0.5, 1e-9);
}

TEST(Slo, RejectsDegenerateConfig) {
  SloConfig bad_window;
  bad_window.window = sim::Duration::zero();
  EXPECT_THROW(SloTracker(sim::SimTime::zero(), bad_window),
               std::invalid_argument);
  SloConfig bad_target;
  bad_target.availability_target = 1.0;
  EXPECT_THROW(SloTracker(sim::SimTime::zero(), bad_target),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::cluster
