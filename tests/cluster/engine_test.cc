// Sharded cluster engine tests: bit-exact determinism at any wave
// parallelism (including forced sharding), agreement with the serial
// Balancer composition on the paper-level headline, and the stepping
// API.
#include "cluster/engine.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cluster/experiment.h"
#include "core/attack.h"

namespace deepnote::cluster {
namespace {

struct RunResult {
  std::uint64_t requests = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t focus_total = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  BalancerStats stats;
  unsigned shards = 0;
};

/// One attacked cross-pod cell on the engine with the given wave
/// parallelism. min_ops_to_shard = 0 forces every wave through the
/// TaskPool shard path regardless of size.
RunResult run_attacked_cell(unsigned jobs, std::size_t min_ops_to_shard) {
  ClusterConfig cluster_config;
  cluster_config.topology = ClusterTopology{.pods = 3, .bays_per_pod = 5};
  cluster_config.seed = 0x5eed;
  Cluster cluster(cluster_config);

  EngineConfig config;
  config.balancer.policy = PlacementPolicy::kCrossPod;
  config.traffic.arrival_rate_per_s = 400.0;
  config.traffic.duration = sim::Duration::from_seconds(2.0);
  config.traffic.seed = 0xbeef;
  config.jobs = jobs;
  config.min_ops_to_shard = min_ops_to_shard;
  ShardedClusterEngine engine(cluster.topology(), cluster.device_pointers(),
                              config);

  const sim::SimTime attack_on = sim::SimTime::from_seconds(0.4);
  const sim::SimTime attack_off = sim::SimTime::from_seconds(1.6);
  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  attack.start = attack_on;
  attack.end = attack_off;
  std::vector<TimelineAction> actions;
  actions.push_back({attack_on, [&cluster, attack](sim::SimTime t) {
                       cluster.apply_attack(0, t, attack);
                     }});
  actions.push_back({attack_off, [&cluster](sim::SimTime t) {
                       cluster.stop_attack(0, t);
                     }});

  SloTracker slo(sim::SimTime::zero());
  slo.set_focus(attack_on, attack_off);
  const EngineReport report =
      engine.run(sim::SimTime::zero(), slo, std::move(actions));

  RunResult result;
  result.requests = report.traffic.requests;
  result.succeeded = slo.succeeded();
  result.failed = slo.failed();
  result.focus_total = slo.focus_total();
  result.p50_ns = slo.p50().ns();
  result.p99_ns = slo.p99().ns();
  result.p999_ns = slo.p999().ns();
  result.stats = report.stats;
  result.shards = engine.shards();
  return result;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.focus_total, b.focus_total);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.p999_ns, b.p999_ns);
  EXPECT_EQ(a.stats.reads, b.stats.reads);
  EXPECT_EQ(a.stats.writes, b.stats.writes);
  EXPECT_EQ(a.stats.read_failovers, b.stats.read_failovers);
  EXPECT_EQ(a.stats.hedged_reads, b.stats.hedged_reads);
  EXPECT_EQ(a.stats.hedge_wins, b.stats.hedge_wins);
  EXPECT_EQ(a.stats.retries_denied, b.stats.retries_denied);
  EXPECT_EQ(a.stats.failed_reads, b.stats.failed_reads);
  EXPECT_EQ(a.stats.failed_writes, b.stats.failed_writes);
  EXPECT_EQ(a.stats.quorum_losses, b.stats.quorum_losses);
  EXPECT_EQ(a.stats.deadline_misses, b.stats.deadline_misses);
  EXPECT_EQ(a.stats.drains, b.stats.drains);
  EXPECT_EQ(a.stats.degrades, b.stats.degrades);
  EXPECT_EQ(a.stats.readmits, b.stats.readmits);
  EXPECT_EQ(a.stats.probes, b.stats.probes);
}

// The partition-invariance contract: which thread executes a node's ops
// never shows in the output. Inline (jobs=1) and forced-sharded
// (jobs=8, every wave through the pool) runs must agree bit-exactly on
// every request outcome and every control-loop counter.
TEST(ClusterEngine, ShardedRunIsBitIdenticalToInline) {
  const RunResult inline_run = run_attacked_cell(1, 2048);
  const RunResult sharded_run = run_attacked_cell(8, 0);
  EXPECT_EQ(inline_run.shards, 1u);
  EXPECT_GT(sharded_run.shards, 1u);
  expect_identical(inline_run, sharded_run);
  // The run did real failover work (this is not a trivially-empty cell).
  EXPECT_GT(inline_run.requests, 0u);
  EXPECT_GT(inline_run.stats.read_failovers + inline_run.stats.drains, 0u);
}

TEST(ClusterEngine, ShardCountDoesNotChangeResults) {
  const RunResult two = run_attacked_cell(2, 0);
  const RunResult eight = run_attacked_cell(8, 0);
  expect_identical(two, eight);
}

// The engine and the serial Balancer composition are different
// schedulers over the same physics, detectors, and control policy; both
// must tell the same availability story for the paper's headline cell.
TEST(ClusterEngine, AgreesWithSerialCompositionOnTheHeadline) {
  const ClusterExperimentConfig config = cluster_experiment_config(0.1);
  for (const PlacementPolicy policy :
       {PlacementPolicy::kSamePod, PlacementPolicy::kCrossPod}) {
    const ClusterTrialRow engine_row =
        run_cluster_cell(config, policy, 0.01, 0x7e57);
    const ClusterTrialRow serial_row =
        run_cluster_cell_serial(config, policy, 0.01, 0x7e57);
    if (policy == PlacementPolicy::kSamePod) {
      EXPECT_LE(engine_row.attack_availability, 0.20);
      EXPECT_LE(serial_row.attack_availability, 0.20);
    } else {
      EXPECT_GE(engine_row.attack_availability, 0.99);
      EXPECT_GE(serial_row.attack_availability, 0.99);
    }
  }
}

TEST(ClusterEngine, SteppingApiMatchesOneShotRun) {
  ClusterConfig cluster_config;
  cluster_config.topology = ClusterTopology{.pods = 3, .bays_per_pod = 2};
  EngineConfig config;
  config.balancer.objects = 2000;
  config.traffic.arrival_rate_per_s = 500.0;
  config.traffic.duration = sim::Duration::from_seconds(1.0);

  Cluster one_shot_cluster(cluster_config);
  ShardedClusterEngine one_shot(one_shot_cluster.topology(),
                                one_shot_cluster.device_pointers(), config);
  SloTracker slo_a(sim::SimTime::zero());
  const EngineReport report_a = one_shot.run(sim::SimTime::zero(), slo_a);

  Cluster stepped_cluster(cluster_config);
  ShardedClusterEngine stepped(stepped_cluster.topology(),
                               stepped_cluster.device_pointers(), config);
  SloTracker slo_b(sim::SimTime::zero());
  stepped.start_run(sim::SimTime::zero(), slo_b);
  std::size_t epochs = 0;
  while (stepped.step()) ++epochs;
  const EngineReport report_b = stepped.finish();

  // ~1 s of traffic at a 50 ms epoch: the loop really stepped.
  EXPECT_GE(epochs, 15u);
  EXPECT_EQ(report_a.traffic.requests, report_b.traffic.requests);
  EXPECT_EQ(slo_a.succeeded(), slo_b.succeeded());
  EXPECT_EQ(slo_a.p99().ns(), slo_b.p99().ns());
}

TEST(ClusterEngine, RejectsDegenerateConfig) {
  ClusterConfig cluster_config;
  cluster_config.topology = ClusterTopology{.pods = 3, .bays_per_pod = 1};
  Cluster cluster(cluster_config);

  EngineConfig config;
  config.traffic.arrival_rate_per_s = 0.0;
  EXPECT_THROW(ShardedClusterEngine(cluster.topology(),
                                    cluster.device_pointers(), config),
               std::invalid_argument);
  config = {};
  config.epoch = sim::Duration::from_seconds(0.0);
  EXPECT_THROW(ShardedClusterEngine(cluster.topology(),
                                    cluster.device_pointers(), config),
               std::invalid_argument);
  config = {};
  config.zipf = std::make_shared<const ZipfAliasSampler>(123, 0.5);
  EXPECT_THROW(ShardedClusterEngine(cluster.topology(),
                                    cluster.device_pointers(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::cluster
