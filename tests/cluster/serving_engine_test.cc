// Serving-mode engine tests: bit-exact determinism at any wave
// parallelism (mirrors engine_test.cc for the immediate path), exact
// agreement with immediate dispatch on the counters the two modes must
// share, and the queueing phenomena the mode exists to surface — queue
// growth, shedding, timeouts, and retry-storm amplification under a
// single-pod acoustic attack.
#include "cluster/engine.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cluster/experiment.h"
#include "core/attack.h"

namespace deepnote::cluster {
namespace {

struct ServingRunResult {
  std::uint64_t requests = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t focus_total = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t outcome[kNumOutcomeKinds] = {};
  std::uint64_t focus_outcome[kNumOutcomeKinds] = {};
  BalancerStats stats;
  ServingReport serving;
  std::vector<ShardedClusterEngine::DepthSample> depth_timeline;
  std::int64_t qwait_p99_ns = 0;
  std::int64_t service_p99_ns = 0;
  unsigned shards = 0;
};

EngineConfig serving_engine_config() {
  EngineConfig config;
  config.balancer.policy = PlacementPolicy::kCrossPod;
  config.traffic.arrival_rate_per_s = 400.0;
  config.traffic.duration = sim::Duration::from_seconds(2.0);
  config.traffic.seed = 0xbeef;
  config.serving.enabled = true;
  config.serving.server.queue_limit = 4;
  return config;
}

/// One attacked cross-pod serving cell with the given wave parallelism;
/// min_ops_to_shard = 0 forces every wave through the TaskPool.
ServingRunResult run_attacked_serving_cell(EngineConfig config, unsigned jobs,
                                           std::size_t min_ops_to_shard) {
  ClusterConfig cluster_config;
  cluster_config.topology = ClusterTopology{.pods = 3, .bays_per_pod = 5};
  cluster_config.seed = 0x5eed;
  Cluster cluster(cluster_config);

  config.jobs = jobs;
  config.min_ops_to_shard = min_ops_to_shard;
  ShardedClusterEngine engine(cluster.topology(), cluster.device_pointers(),
                              config);

  const sim::SimTime attack_on = sim::SimTime::from_seconds(0.4);
  const sim::SimTime attack_off = sim::SimTime::from_seconds(1.6);
  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  attack.start = attack_on;
  attack.end = attack_off;
  std::vector<TimelineAction> actions;
  actions.push_back({attack_on, [&cluster, attack](sim::SimTime t) {
                       cluster.apply_attack(0, t, attack);
                     }});
  actions.push_back({attack_off, [&cluster](sim::SimTime t) {
                       cluster.stop_attack(0, t);
                     }});

  SloTracker slo(sim::SimTime::zero());
  slo.set_focus(attack_on, attack_off);
  const EngineReport report =
      engine.run(sim::SimTime::zero(), slo, std::move(actions));

  ServingRunResult result;
  result.requests = report.traffic.requests;
  result.succeeded = slo.succeeded();
  result.failed = slo.failed();
  result.focus_total = slo.focus_total();
  result.p50_ns = slo.p50().ns();
  result.p99_ns = slo.p99().ns();
  for (std::size_t k = 0; k < kNumOutcomeKinds; ++k) {
    result.outcome[k] = slo.outcome_count(static_cast<OutcomeKind>(k));
    result.focus_outcome[k] =
        slo.focus_outcome_count(static_cast<OutcomeKind>(k));
  }
  result.stats = report.stats;
  result.serving = report.serving;
  result.depth_timeline = engine.depth_timeline();
  result.qwait_p99_ns = engine.queue_wait_histogram().quantile(0.99).ns();
  result.service_p99_ns = engine.service_histogram().quantile(0.99).ns();
  result.shards = engine.shards();
  return result;
}

void expect_identical(const ServingRunResult& a, const ServingRunResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.focus_total, b.focus_total);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  for (std::size_t k = 0; k < kNumOutcomeKinds; ++k) {
    EXPECT_EQ(a.outcome[k], b.outcome[k]) << "outcome kind " << k;
    EXPECT_EQ(a.focus_outcome[k], b.focus_outcome[k]) << "outcome kind " << k;
  }
  EXPECT_EQ(a.stats.reads, b.stats.reads);
  EXPECT_EQ(a.stats.writes, b.stats.writes);
  EXPECT_EQ(a.stats.read_failovers, b.stats.read_failovers);
  EXPECT_EQ(a.stats.hedged_reads, b.stats.hedged_reads);
  EXPECT_EQ(a.stats.retries_denied, b.stats.retries_denied);
  EXPECT_EQ(a.stats.failed_reads, b.stats.failed_reads);
  EXPECT_EQ(a.stats.failed_writes, b.stats.failed_writes);
  EXPECT_EQ(a.stats.quorum_losses, b.stats.quorum_losses);
  EXPECT_EQ(a.stats.drains, b.stats.drains);
  EXPECT_EQ(a.stats.readmits, b.stats.readmits);
  EXPECT_EQ(a.stats.probes, b.stats.probes);
  EXPECT_EQ(a.serving.legs_submitted, b.serving.legs_submitted);
  EXPECT_EQ(a.serving.legs_served, b.serving.legs_served);
  EXPECT_EQ(a.serving.legs_failed, b.serving.legs_failed);
  EXPECT_EQ(a.serving.legs_timed_out, b.serving.legs_timed_out);
  EXPECT_EQ(a.serving.legs_shed, b.serving.legs_shed);
  EXPECT_EQ(a.serving.shed_requests, b.serving.shed_requests);
  EXPECT_EQ(a.serving.timed_out_requests, b.serving.timed_out_requests);
  EXPECT_EQ(a.serving.error_requests, b.serving.error_requests);
  EXPECT_EQ(a.serving.client_retries, b.serving.client_retries);
  EXPECT_EQ(a.serving.max_queue_depth, b.serving.max_queue_depth);
  EXPECT_EQ(a.qwait_p99_ns, b.qwait_p99_ns);
  EXPECT_EQ(a.service_p99_ns, b.service_p99_ns);
  ASSERT_EQ(a.depth_timeline.size(), b.depth_timeline.size());
  for (std::size_t i = 0; i < a.depth_timeline.size(); ++i) {
    EXPECT_EQ(a.depth_timeline[i].at.ns(), b.depth_timeline[i].at.ns());
    EXPECT_EQ(a.depth_timeline[i].depth, b.depth_timeline[i].depth);
  }
}

// The partition-invariance contract extends to serving mode: which
// thread drains a node's pipeline never shows in the output. Inline and
// forced-sharded runs agree bit-exactly on every SLO counter, every
// per-kind outcome, the serving telemetry, and the merged histograms.
TEST(ServingEngine, ShardedRunIsBitIdenticalToInline) {
  const ServingRunResult inline_run =
      run_attacked_serving_cell(serving_engine_config(), 1, 2048);
  const ServingRunResult sharded_run =
      run_attacked_serving_cell(serving_engine_config(), 8, 0);
  EXPECT_EQ(inline_run.shards, 1u);
  EXPECT_GT(sharded_run.shards, 1u);
  expect_identical(inline_run, sharded_run);
  // The cell exercised the serving machinery for real.
  EXPECT_GT(inline_run.requests, 0u);
  EXPECT_GT(inline_run.serving.legs_submitted, 0u);
}

TEST(ServingEngine, ShardCountDoesNotChangeResults) {
  const ServingRunResult two =
      run_attacked_serving_cell(serving_engine_config(), 2, 0);
  const ServingRunResult eight =
      run_attacked_serving_cell(serving_engine_config(), 8, 0);
  expect_identical(two, eight);
}

// Open-loop serving reuses the immediate path's traffic generator
// verbatim (same RNG stream, same routing), so the two modes must agree
// exactly on everything decided before ops reach a device: the request
// count and the read/write routing split.
TEST(ServingEngine, OpenLoopServingAgreesWithImmediateOnArrivals) {
  EngineConfig serving_config = serving_engine_config();
  serving_config.serving.closed_loop = false;
  serving_config.serving.server.queue_limit = 64;
  const ServingRunResult queued =
      run_attacked_serving_cell(serving_config, 1, 2048);

  EngineConfig immediate_config = serving_engine_config();
  immediate_config.serving.enabled = false;
  const ServingRunResult immediate =
      run_attacked_serving_cell(immediate_config, 1, 2048);

  EXPECT_GT(queued.requests, 0u);
  EXPECT_EQ(queued.requests, immediate.requests);
  EXPECT_EQ(queued.stats.reads, immediate.stats.reads);
  EXPECT_EQ(queued.stats.writes, immediate.stats.writes);
  EXPECT_EQ(queued.serving.client_retries, 0u) << "open loop cannot retry";
}

// Request conservation at the engine level: every request the SLO saw
// is served or classified into exactly one failure kind, and the
// request-kind counters in the serving report match the SLO's ledger.
TEST(ServingEngine, OutcomeClassificationIsConserved) {
  const ServingRunResult run =
      run_attacked_serving_cell(serving_engine_config(), 1, 2048);
  std::uint64_t outcome_total = 0;
  for (std::size_t k = 0; k < kNumOutcomeKinds; ++k) {
    outcome_total += run.outcome[k];
  }
  EXPECT_EQ(outcome_total, run.succeeded + run.failed);
  EXPECT_EQ(run.outcome[static_cast<std::size_t>(OutcomeKind::kServed)],
            run.succeeded);
  EXPECT_EQ(run.serving.shed_requests,
            run.outcome[static_cast<std::size_t>(OutcomeKind::kShed)]);
  EXPECT_EQ(run.serving.timed_out_requests,
            run.outcome[static_cast<std::size_t>(OutcomeKind::kTimedOut)]);
  EXPECT_EQ(run.serving.error_requests,
            run.outcome[static_cast<std::size_t>(OutcomeKind::kFailed)]);
  EXPECT_EQ(run.serving.legs_served + run.serving.legs_failed +
                run.serving.legs_timed_out + run.serving.legs_shed,
            run.serving.legs_submitted);
}

// The phenomena the mode exists to surface, on the experiment cell: a
// point-blank single-pod attack with a shallow queue grows backlog until
// depth hits the admission limit, sheds and times out legs on the
// attacked nodes, and stretches the queue-wait tail — strain that is
// invisible in the availability number because cross-pod replication
// absorbs the shed legs via failover. The quiet baseline shows none of
// it.
TEST(ServingEngine, AttackSurfacesQueueingPhenomena) {
  const ServingExperimentConfig config = serving_experiment_config(0.1);
  const ServingTrialRow quiet = run_serving_cell(
      config, 4, serving::AdmissionPolicy::kRejectNew, std::nullopt, 0x7e57);
  const ServingTrialRow attacked = run_serving_cell(
      config, 4, serving::AdmissionPolicy::kRejectNew, 0.01, 0x7e57);

  EXPECT_GE(quiet.availability, 0.999);
  EXPECT_EQ(quiet.attack_shed + quiet.attack_timed_out, 0u);

  // Replication still rides out the attack...
  EXPECT_GE(attacked.attack_availability, 0.95);
  // ...but the serving telemetry shows the strain underneath.
  EXPECT_GT(attacked.legs_shed + attacked.legs_timed_out,
            quiet.legs_shed + quiet.legs_timed_out);
  EXPECT_EQ(attacked.max_queue_depth, 4u);
  EXPECT_GE(attacked.attack_max_queue_depth, quiet.max_queue_depth);
  EXPECT_GT(attacked.read_failovers, quiet.read_failovers)
      << "shed legs should convert into failovers, not lost requests";
  EXPECT_GT(attacked.queue_wait_p99_ms, quiet.queue_wait_p99_ms);
}

// Retry-storm amplification: drive the whole cluster past device
// capacity so every replica queue sheds and requests fail shed-dominant
// end to end. Closed-loop clients then re-issue with backoff — the same
// client population submits measurably MORE requests than it would with
// retries disabled, load amplification under overload by definition.
TEST(ServingEngine, OverloadProvokesRetryStorm) {
  EngineConfig config = serving_engine_config();
  config.traffic.arrival_rate_per_s = 6000.0;
  config.traffic.duration = sim::Duration::from_seconds(1.0);
  config.serving.server.queue_limit = 2;
  config.serving.clients = 256;
  const ServingRunResult storm = run_attacked_serving_cell(config, 1, 2048);

  config.serving.backoff.max_retries = 0;
  const ServingRunResult no_retry = run_attacked_serving_cell(config, 1, 2048);

  EXPECT_GT(storm.serving.shed_requests, 0u)
      << "overload never exhausted a request's replica set";
  EXPECT_GT(storm.serving.client_retries, 0u);
  EXPECT_EQ(no_retry.serving.client_retries, 0u);
  // Shed backoff (5 ms, linear) is much shorter than the think mean
  // (clients / rate = ~43 ms), so retries re-issue sooner than fresh
  // requests would: the same population offers measurably more load.
  EXPECT_GT(storm.requests, no_retry.requests)
      << "shed retries should amplify offered load";
}

TEST(ServingEngine, RejectsDegenerateServingConfig) {
  ClusterConfig cluster_config;
  cluster_config.topology = ClusterTopology{.pods = 3, .bays_per_pod = 1};
  Cluster cluster(cluster_config);

  EngineConfig config = serving_engine_config();
  config.serving.clients = 0;
  EXPECT_THROW(ShardedClusterEngine(cluster.topology(),
                                    cluster.device_pointers(), config),
               std::invalid_argument);
  config = serving_engine_config();
  config.serving.server.queue_limit = 0;
  EXPECT_THROW(ShardedClusterEngine(cluster.topology(),
                                    cluster.device_pointers(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::cluster
