// Hybrid tier unit tests, driving the device directly with a
// controllable fake HDD: write acks at flash latency, HDD failures are
// absorbed (not surfaced) before any detection, the tier detector flips
// to flash-only, probes bring the node back through draining to normal,
// and a drain-time failure falls straight back to flash-only.
#include "cluster/hybrid.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::cluster {
namespace {

using sim::Duration;
using sim::SimTime;

// A bulk tier with a switch: healthy it serves in ~6 ms; failing it
// burns a 300 ms timeout and errors — the parked-head signature.
class FakeHdd final : public storage::BlockDevice {
 public:
  std::uint64_t total_sectors() const override { return 4096; }

  storage::BlockIo read(sim::SimTime now, std::uint64_t, std::uint32_t,
                        std::span<std::byte>) override {
    ++reads;
    return outcome(now);
  }
  storage::BlockIo write(sim::SimTime now, std::uint64_t, std::uint32_t,
                         std::span<const std::byte>) override {
    ++writes;
    return outcome(now);
  }
  storage::BlockIo flush(sim::SimTime now) override {
    ++flushes;
    return outcome(now);
  }

  bool failing = false;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t flushes = 0;

 private:
  storage::BlockIo outcome(sim::SimTime now) const {
    if (failing) {
      return {storage::BlockStatus::kIoError,
              now + Duration::from_millis(300.0)};
    }
    return {storage::BlockStatus::kOk, now + Duration::from_millis(6.0)};
  }
};

// Small flash tier (64 blocks x 4 pages x 1 KiB) with payload retention
// so byte-level assertions work; the FTL logical span (448 sectors)
// sits inside the fake HDD's 4096.
HybridConfig test_config() {
  HybridConfig config;
  config.flash.page_sectors = 2;
  config.flash.pages_per_block = 4;
  config.flash.blocks = 64;
  config.flash.retain_data = true;
  return config;
}

std::vector<std::byte> pattern(std::size_t sectors, std::uint8_t seed) {
  std::vector<std::byte> out(sectors * storage::kBlockSectorSize);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((seed + i * 11) & 0xFF);
  }
  return out;
}

struct Rig {
  FakeHdd hdd;
  HybridDevice tier{hdd, test_config()};

  // Write `pages` distinct pages at t; the flash mirror gets real bytes.
  void populate(SimTime t, int pages) {
    for (int p = 0; p < pages; ++p) {
      const std::vector<std::byte> buf =
          pattern(2, static_cast<std::uint8_t>(p));
      ASSERT_TRUE(
          tier.write(t, static_cast<std::uint64_t>(p) * 2, 2, buf).ok());
    }
  }

  // Three consecutive HDD errors trip the tier detector's burst rule.
  void trip_to_flash_only(SimTime t) {
    hdd.failing = true;
    std::vector<std::byte> out(2 * storage::kBlockSectorSize);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(tier.read(t + Duration::from_millis(i), 0, 2, out).ok())
          << "HDD failure must be absorbed, not surfaced";
    }
    ASSERT_EQ(tier.mode(), TierMode::kFlashOnly);
  }
};

TEST(HybridDeviceTest, NormalModeAcksOnFlashAndMirrorsToHdd) {
  Rig rig;
  const std::vector<std::byte> buf = pattern(2, 1);
  const storage::BlockIo w = rig.tier.write(SimTime::zero(), 0, 2, buf);
  ASSERT_TRUE(w.ok());
  // The ack point is flash (hundreds of microseconds), not the 6 ms HDD.
  EXPECT_LT((w.complete - SimTime::zero()).seconds(), 0.001);
  EXPECT_EQ(rig.hdd.writes, 1u);  // mirrored in parallel
  EXPECT_EQ(rig.tier.dirty_pages(), 0u);

  std::vector<std::byte> out(buf.size());
  ASSERT_TRUE(rig.tier.read(SimTime::zero(), 0, 2, out).ok());
  EXPECT_EQ(rig.hdd.reads, 1u);
  EXPECT_EQ(rig.tier.stats().hdd_reads, 1u);
  EXPECT_EQ(rig.tier.stats().flash_reads, 0u);
}

TEST(HybridDeviceTest, OutOfSpanOpsPassStraightThrough) {
  Rig rig;
  std::vector<std::byte> buf(2 * storage::kBlockSectorSize);
  const std::uint64_t beyond = rig.tier.ftl().total_sectors();
  ASSERT_TRUE(rig.tier.read(SimTime::zero(), beyond, 2, buf).ok());
  EXPECT_EQ(rig.hdd.reads, 1u);
  ASSERT_TRUE(rig.tier.write(SimTime::zero(), beyond, 2, buf).ok());
  EXPECT_EQ(rig.hdd.writes, 1u);
  EXPECT_EQ(rig.tier.stats().flash_reads, 0u);
}

TEST(HybridDeviceTest, HddFailuresAreAbsorbedBeforeAnyDetection) {
  Rig rig;
  rig.populate(SimTime::zero(), 1);
  rig.hdd.failing = true;
  std::vector<std::byte> out(2 * storage::kBlockSectorSize);
  // First failure: detector has not alerted, yet the read succeeds with
  // the flash mirror's bytes — availability never depended on detection.
  const storage::BlockIo r =
      rig.tier.read(SimTime::zero() + Duration::from_seconds(1), 0, 2, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, pattern(2, 0));
  EXPECT_EQ(rig.tier.stats().absorbed_errors, 1u);
  EXPECT_EQ(rig.tier.mode(), TierMode::kNormal);
  // The fallback still pays the failed HDD attempt's 300 ms first —
  // detection shapes this tail, not the outcome.
  EXPECT_GE((r.complete - (SimTime::zero() + Duration::from_seconds(1)))
                .seconds(),
            0.300);
}

TEST(HybridDeviceTest, ErrorBurstFlipsToFlashOnlyAndStopsHddTraffic) {
  Rig rig;
  rig.populate(SimTime::zero(), 4);
  rig.trip_to_flash_only(SimTime::zero() + Duration::from_seconds(1));
  EXPECT_EQ(rig.tier.stats().mode_changes, 1u);

  // Flash-only: writes dirty pages, no HDD mirror traffic.
  const std::uint64_t hdd_writes_before = rig.hdd.writes;
  const std::vector<std::byte> buf = pattern(2, 9);
  const SimTime t = SimTime::zero() + Duration::from_millis(1100.0);
  ASSERT_TRUE(rig.tier.write(t, 0, 2, buf).ok());
  ASSERT_TRUE(rig.tier.write(t, 2, 2, buf).ok());
  EXPECT_EQ(rig.hdd.writes, hdd_writes_before);
  EXPECT_EQ(rig.tier.dirty_pages(), 2u);
  EXPECT_GT(rig.tier.stats().flash_only_ops, 0u);

  // Reads come from flash and still return the latest bytes.
  std::vector<std::byte> out(buf.size());
  ASSERT_TRUE(rig.tier.read(t, 0, 2, out).ok());
  EXPECT_EQ(out, buf);
}

TEST(HybridDeviceTest, ProbesDriveDrainBackToNormal) {
  Rig rig;
  rig.populate(SimTime::zero(), 6);
  rig.trip_to_flash_only(SimTime::zero() + Duration::from_seconds(1));

  // Dirty six pages while the attack is on.
  const SimTime during = SimTime::zero() + Duration::from_millis(1400.0);
  for (int p = 0; p < 6; ++p) {
    const std::vector<std::byte> buf =
        pattern(2, static_cast<std::uint8_t>(32 + p));
    ASSERT_TRUE(
        rig.tier.write(during, static_cast<std::uint64_t>(p) * 2, 2, buf)
            .ok());
  }
  ASSERT_EQ(rig.tier.dirty_pages(), 6u);

  // Attack ends; ops spaced past the probe interval accumulate good
  // probes until the drain starts.
  rig.hdd.failing = false;
  std::vector<std::byte> out(2 * storage::kBlockSectorSize);
  SimTime t = SimTime::zero() + Duration::from_seconds(2);
  const HybridConfig config = test_config();
  for (std::uint32_t i = 0; i < config.probe_good_needed; ++i) {
    ASSERT_TRUE(rig.tier.read(t, 0, 2, out).ok());
    t = t + Duration::from_millis(300.0);
  }
  EXPECT_EQ(rig.tier.mode(), TierMode::kDraining);
  EXPECT_EQ(rig.tier.stats().probes, config.probe_good_needed);

  // Each serving op also writes back a batch; two ops drain all six.
  const std::uint64_t hdd_writes_before = rig.hdd.writes;
  ASSERT_TRUE(rig.tier.read(t, 0, 2, out).ok());
  ASSERT_TRUE(
      rig.tier.read(t + Duration::from_millis(10.0), 0, 2, out).ok());
  EXPECT_EQ(rig.tier.mode(), TierMode::kNormal);
  EXPECT_EQ(rig.tier.dirty_pages(), 0u);
  EXPECT_EQ(rig.tier.stats().drained_pages, 6u);
  EXPECT_EQ(rig.hdd.writes - hdd_writes_before, 6u);
}

TEST(HybridDeviceTest, FailedProbesKeepTheNodeOnFlash) {
  Rig rig;
  rig.populate(SimTime::zero(), 2);
  rig.trip_to_flash_only(SimTime::zero() + Duration::from_seconds(1));
  // Attack still on: probes fail, the good-probe count never builds.
  std::vector<std::byte> out(2 * storage::kBlockSectorSize);
  SimTime t = SimTime::zero() + Duration::from_seconds(2);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.tier.read(t, 0, 2, out).ok());
    t = t + Duration::from_millis(300.0);
  }
  EXPECT_EQ(rig.tier.mode(), TierMode::kFlashOnly);
  EXPECT_GT(rig.tier.stats().probes, 8u);
}

TEST(HybridDeviceTest, DrainFailureFallsBackToFlashOnly) {
  Rig rig;
  rig.populate(SimTime::zero(), 4);
  rig.trip_to_flash_only(SimTime::zero() + Duration::from_seconds(1));
  const SimTime during = SimTime::zero() + Duration::from_millis(1400.0);
  const std::vector<std::byte> buf = pattern(2, 7);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(
        rig.tier.write(during, static_cast<std::uint64_t>(p) * 2, 2, buf)
            .ok());
  }

  // Recover to draining...
  rig.hdd.failing = false;
  std::vector<std::byte> out(2 * storage::kBlockSectorSize);
  SimTime t = SimTime::zero() + Duration::from_seconds(2);
  for (std::uint32_t i = 0; i < test_config().probe_good_needed; ++i) {
    ASSERT_TRUE(rig.tier.read(t, 0, 2, out).ok());
    t = t + Duration::from_millis(300.0);
  }
  ASSERT_EQ(rig.tier.mode(), TierMode::kDraining);

  // ...then the attack resumes mid-drain: back to flash-only, the
  // remaining dirty pages wait for the next pass.
  rig.hdd.failing = true;
  ASSERT_TRUE(rig.tier.read(t, 0, 2, out).ok());
  EXPECT_EQ(rig.tier.mode(), TierMode::kFlashOnly);
  EXPECT_GT(rig.tier.dirty_pages(), 0u);
}

TEST(HybridDeviceTest, FlushAbsorbsBulkTierFailure) {
  Rig rig;
  rig.hdd.failing = true;
  // Data is durable on flash at the ack; a bulk flush error is noise.
  EXPECT_TRUE(rig.tier.flush(SimTime::zero()).ok());
  EXPECT_EQ(rig.hdd.flushes, 1u);
}

TEST(HybridDeviceTest, WearFeedsTheSmartMediaWearoutShape) {
  Rig rig;
  // Fresh tier: no erases, full health headroom for SMART 177 upstream.
  EXPECT_EQ(rig.tier.flash().mean_erase_count(), 0.0);
  EXPECT_GT(rig.tier.flash().config().rated_erase_cycles, 0u);
}

}  // namespace
}  // namespace deepnote::cluster
