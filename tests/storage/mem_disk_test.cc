#include "storage/mem_disk.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::storage {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(MemDiskTest, RoundTrip) {
  MemDisk disk(1024);
  std::vector<std::byte> in(8 * kBlockSectorSize, std::byte{0x5a});
  BlockIo w = disk.write(SimTime::zero(), 16, 8, in);
  ASSERT_TRUE(w.ok());
  std::vector<std::byte> out(in.size());
  BlockIo r = disk.read(w.complete, 16, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, in);
}

TEST(MemDiskTest, ConstantLatency) {
  MemDisk disk(1024, Duration::from_micros(50));
  std::vector<std::byte> buf(kBlockSectorSize);
  BlockIo io = disk.read(SimTime::from_seconds(1), 0, 1, buf);
  EXPECT_EQ((io.complete - SimTime::from_seconds(1)).micros(), 50.0);
}

TEST(MemDiskTest, FailInjection) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.set_failing(true);
  EXPECT_FALSE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.write(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.flush(SimTime::zero()).ok());
  disk.set_failing(false);
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
}

TEST(MemDiskTest, FailAfterCountdown) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.fail_after(2);
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.flush(SimTime::zero()).ok());
}

TEST(MemDiskTest, BoundsChecked) {
  MemDisk disk(10);
  std::vector<std::byte> buf(kBlockSectorSize);
  EXPECT_THROW(disk.read(SimTime::zero(), 10, 1, buf), std::out_of_range);
  EXPECT_THROW(disk.write(SimTime::zero(), 9, 2,
                          std::vector<std::byte>(2 * kBlockSectorSize)),
               std::out_of_range);
}

}  // namespace
}  // namespace deepnote::storage
