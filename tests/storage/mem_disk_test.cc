#include "storage/mem_disk.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::storage {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(MemDiskTest, RoundTrip) {
  MemDisk disk(1024);
  std::vector<std::byte> in(8 * kBlockSectorSize, std::byte{0x5a});
  BlockIo w = disk.write(SimTime::zero(), 16, 8, in);
  ASSERT_TRUE(w.ok());
  std::vector<std::byte> out(in.size());
  BlockIo r = disk.read(w.complete, 16, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, in);
}

TEST(MemDiskTest, ConstantLatency) {
  MemDisk disk(1024, Duration::from_micros(50));
  std::vector<std::byte> buf(kBlockSectorSize);
  BlockIo io = disk.read(SimTime::from_seconds(1), 0, 1, buf);
  EXPECT_EQ((io.complete - SimTime::from_seconds(1)).micros(), 50.0);
}

TEST(MemDiskTest, FailInjection) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.set_failing(true);
  EXPECT_FALSE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.write(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.flush(SimTime::zero()).ok());
  disk.set_failing(false);
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
}

TEST(MemDiskTest, FailAfterCountdown) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.fail_after(2);
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.flush(SimTime::zero()).ok());
}

TEST(MemDiskTest, FailAfterCountsFromArming) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  // Ops before arming do not count against the budget.
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  disk.fail_after(1);
  EXPECT_TRUE(disk.write(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.write(SimTime::zero(), 0, 1, buf).ok());
}

TEST(MemDiskTest, FailAfterFiltersByOpKind) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.fail_after(0, fault_ops::kWrites);
  // Reads and flushes keep working; writes die immediately.
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_TRUE(disk.flush(SimTime::zero()).ok());
  EXPECT_FALSE(disk.write(SimTime::zero(), 4, 1, buf).ok());
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
}

TEST(MemDiskTest, FirstFailureReportsOpIndexAndKind) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.fail_after(1, fault_ops::kWrites);
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());    // op 0
  EXPECT_TRUE(disk.write(SimTime::zero(), 8, 1, buf).ok());   // op 1
  EXPECT_FALSE(disk.write(SimTime::zero(), 16, 2,
                          std::vector<std::byte>(2 * kBlockSectorSize))
                   .ok());                                    // op 2
  ASSERT_TRUE(disk.first_failure().has_value());
  const FailedOp& f = *disk.first_failure();
  EXPECT_EQ(f.op_index, 2u);
  EXPECT_EQ(f.kind, DiskOpKind::kWrite);
  EXPECT_EQ(f.lba, 16u);
  EXPECT_EQ(f.sector_count, 2u);
  EXPECT_STREQ(disk_op_name(f.kind), "write");
  // Later failures do not overwrite the first record.
  EXPECT_FALSE(disk.write(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_EQ(disk.first_failure()->lba, 16u);
}

TEST(MemDiskTest, ClearFaultDisarmsAndForgets) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.fail_after(0);
  EXPECT_FALSE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  disk.clear_fault();
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.first_failure().has_value());
}

TEST(MemDiskTest, PerKindOpCounters) {
  MemDisk disk(1024);
  std::vector<std::byte> buf(kBlockSectorSize);
  disk.read(SimTime::zero(), 0, 1, buf);
  disk.write(SimTime::zero(), 0, 1, buf);
  disk.write(SimTime::zero(), 1, 1, buf);
  disk.flush(SimTime::zero());
  EXPECT_EQ(disk.read_count(), 1u);
  EXPECT_EQ(disk.write_count(), 2u);
  EXPECT_EQ(disk.flush_count(), 1u);
  EXPECT_EQ(disk.op_count(), 4u);
}

TEST(MemDiskTest, BoundsChecked) {
  MemDisk disk(10);
  std::vector<std::byte> buf(kBlockSectorSize);
  EXPECT_THROW(disk.read(SimTime::zero(), 10, 1, buf), std::out_of_range);
  EXPECT_THROW(disk.write(SimTime::zero(), 9, 2,
                          std::vector<std::byte>(2 * kBlockSectorSize)),
               std::out_of_range);
}

}  // namespace
}  // namespace deepnote::storage
