// FTL tests: read-your-writes through out-of-place remapping, sub-page
// read-modify-write, garbage collection under pressure, TRIM, and the
// wear-leveling distribution property — hot traffic must spread erases
// across the whole device, keeping the max-min wear spread bounded.
#include "storage/flash/ftl.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::storage {
namespace {

using sim::SimTime;

// 1 KiB pages, 4-page blocks, 16 blocks; 4 reserved: 48 logical pages.
FlashConfig small_config() {
  FlashConfig config;
  config.page_sectors = 2;
  config.pages_per_block = 4;
  config.blocks = 16;
  return config;
}

FtlConfig small_ftl() {
  FtlConfig config;
  config.reserved_blocks = 4;
  config.gc_free_threshold = 2;
  return config;
}

std::vector<std::byte> pattern(std::size_t sectors, std::uint8_t seed) {
  std::vector<std::byte> out(sectors * kBlockSectorSize);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((seed + i * 13) & 0xFF);
  }
  return out;
}

TEST(FtlTest, LogicalSpaceExcludesOverProvisioning) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  // (16 - 4 reserved) blocks x 4 pages x 2 sectors.
  EXPECT_EQ(ftl.total_sectors(), 96u);
  EXPECT_LT(ftl.total_sectors(), flash.total_sectors());
}

TEST(FtlTest, OverProvisioningMustFitTheDevice) {
  FlashDevice flash(small_config());
  FtlConfig config;
  config.reserved_blocks = 15;
  EXPECT_THROW(Ftl(flash, config), std::invalid_argument);
}

TEST(FtlTest, ReadYourWritesAcrossRemapping) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  const std::vector<std::byte> a = pattern(2, 1);
  const std::vector<std::byte> b = pattern(2, 2);
  std::vector<std::byte> out(a.size());

  ASSERT_TRUE(ftl.write(SimTime::zero(), 0, 2, a).ok());
  ASSERT_TRUE(ftl.read(SimTime::zero(), 0, 2, out).ok());
  EXPECT_EQ(out, a);
  // Overwrite in place from the host's view; out-of-place underneath
  // (the raw device would refuse a re-program).
  ASSERT_TRUE(ftl.write(SimTime::zero(), 0, 2, b).ok());
  ASSERT_TRUE(ftl.read(SimTime::zero(), 0, 2, out).ok());
  EXPECT_EQ(out, b);
  EXPECT_EQ(flash.stats().discipline_errors, 0u);
}

TEST(FtlTest, UnwrittenPagesReadErased) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  std::vector<std::byte> out(2 * kBlockSectorSize);
  ASSERT_TRUE(ftl.read(SimTime::zero(), 10, 2, out).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0xFF});
}

TEST(FtlTest, SubPageWritePreservesTheRestOfThePage) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  const std::vector<std::byte> full = pattern(2, 3);
  const std::vector<std::byte> sector = pattern(1, 4);
  ASSERT_TRUE(ftl.write(SimTime::zero(), 0, 2, full).ok());
  // One sector inside the page: read-modify-write underneath.
  ASSERT_TRUE(ftl.write(SimTime::zero(), 1, 1, sector).ok());
  std::vector<std::byte> out(full.size());
  ASSERT_TRUE(ftl.read(SimTime::zero(), 0, 2, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + kBlockSectorSize,
                         full.begin()));
  EXPECT_TRUE(std::equal(out.begin() + kBlockSectorSize, out.end(),
                         sector.begin()));
}

TEST(FtlTest, GarbageCollectionKeepsWritesFlowing) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  const std::vector<std::byte> buf = pattern(2, 5);
  // Rewrite a single logical page far more times than the device has
  // pages: only GC can reclaim the stale copies.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(ftl.write(SimTime::zero(), 0, 2, buf).ok()) << "write " << i;
  }
  EXPECT_GT(ftl.stats().gc_runs, 0u);
  EXPECT_GT(flash.stats().block_erases, 0u);
  // The cushion holds: GC keeps at least one free block in reserve.
  EXPECT_GE(ftl.free_blocks(), 1u);
}

// Regression: GC victims that still hold LIVE pages. Interleaving
// cold writes (never rewritten) with hot churn leaves every closed
// block a mix of valid and stale pages, so GC must relocate data —
// while a host write is mid-flight through place_page. This pins down
// two historical bugs: (1) relocation sharing the host staging buffer,
// so the host's logical page silently mapped to the last relocated
// page's bytes; (2) relocating with an explicit invalidate AND
// place_page's old-mapping invalidate, underflowing the victim's
// valid-page count so the block was never picked as a victim again and
// the free pool drained until writes failed.
TEST(FtlTest, GcRelocatesLivePagesWithoutCorruptingHostWrites) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  std::vector<std::byte> out(2 * kBlockSectorSize);
  // Lay down 24 cold pages (logical 24..47) interleaved with hot
  // traffic so cold pages scatter across physical blocks instead of
  // packing into fully-valid blocks GC would never pick.
  for (std::uint32_t p = 0; p < 24; ++p) {
    const std::uint8_t seed = static_cast<std::uint8_t>(100 + p);
    ASSERT_TRUE(
        ftl.write(SimTime::zero(), (24 + p) * 2, 2, pattern(2, seed)).ok());
    ASSERT_TRUE(
        ftl.write(SimTime::zero(), (p % 8) * 2, 2, pattern(2, p)).ok());
  }
  // Hammer the hot pages with a changing pattern, verifying read-back
  // after every write: a relocation that leaks into the host buffer
  // shows up on the exact write that rolled the open block.
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t lba = static_cast<std::uint64_t>(i % 8) * 2;
    const std::vector<std::byte> buf =
        pattern(2, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(ftl.write(SimTime::zero(), lba, 2, buf).ok())
        << "write " << i << " failed: GC accounting degraded";
    ASSERT_TRUE(ftl.read(SimTime::zero(), lba, 2, out).ok());
    ASSERT_EQ(out, buf) << "host data corrupted at write " << i;
  }
  ASSERT_GT(ftl.stats().relocated_pages, 0u)
      << "workload never exercised live-page relocation";
  EXPECT_GE(ftl.free_blocks(), 1u);
  // Every cold page survived its relocations intact.
  for (std::uint32_t p = 0; p < 24; ++p) {
    const std::uint8_t seed = static_cast<std::uint8_t>(100 + p);
    ASSERT_TRUE(ftl.read(SimTime::zero(), (24 + p) * 2, 2, out).ok());
    EXPECT_EQ(out, pattern(2, seed)) << "cold page " << 24 + p;
  }
}

TEST(FtlTest, TrimUnmapsFullyCoveredPages) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  const std::vector<std::byte> buf = pattern(4, 6);
  ASSERT_TRUE(ftl.write(SimTime::zero(), 0, 4, buf).ok());
  // TRIM both pages: a hint, no device command, pages become stale.
  const std::uint64_t erases_before = flash.stats().block_erases;
  ASSERT_TRUE(ftl.erase(SimTime::zero(), 0, 4).ok());
  EXPECT_EQ(ftl.stats().trimmed_pages, 2u);
  EXPECT_EQ(flash.stats().block_erases, erases_before);
  std::vector<std::byte> out(buf.size());
  ASSERT_TRUE(ftl.read(SimTime::zero(), 0, 4, out).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0xFF});
}

TEST(FtlTest, TrimKeepsPartiallyCoveredPages) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  const std::vector<std::byte> buf = pattern(2, 7);
  ASSERT_TRUE(ftl.write(SimTime::zero(), 0, 2, buf).ok());
  // One sector of a two-sector page: too little to discard the page.
  ASSERT_TRUE(ftl.erase(SimTime::zero(), 0, 1).ok());
  EXPECT_EQ(ftl.stats().trimmed_pages, 0u);
  std::vector<std::byte> out(buf.size());
  ASSERT_TRUE(ftl.read(SimTime::zero(), 0, 2, out).ok());
  EXPECT_EQ(out, buf);
}

// The wear-leveling distribution property the allocator exists for:
// hammering a handful of hot logical pages must NOT wear out a handful
// of physical blocks. The wear-aware allocator (lowest-erase-count free
// block) rotates hot traffic across the whole device, so after
// thousands of rewrites every block has been erased a similar number of
// times: the max-min spread stays a small constant while the mean
// climbs well past it.
TEST(FtlTest, WearLevelingBoundsTheEraseSpread) {
  FlashDevice flash(small_config());
  Ftl ftl(flash, small_ftl());
  const std::vector<std::byte> buf = pattern(2, 8);
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t lba = static_cast<std::uint64_t>(round % 4) * 2;
    ASSERT_TRUE(ftl.write(SimTime::zero(), lba, 2, buf).ok());
  }
  const std::uint32_t min = flash.min_erase_count();
  const std::uint32_t max = flash.max_erase_count();
  EXPECT_GE(flash.mean_erase_count(), 10.0);
  EXPECT_GT(min, 0u) << "some block never recycled: leveling failed";
  EXPECT_LE(max - min, 4u) << "wear concentrated: min=" << min
                           << " max=" << max;
}

}  // namespace
}  // namespace deepnote::storage
