#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/kvdb/db.h"
#include "storage/mem_disk.h"

namespace deepnote::storage::kvdb {
namespace {

using sim::SimTime;

struct VerifyFixture {
  MemDisk disk{(512ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  std::unique_ptr<Db> db;
  SimTime t = SimTime::zero();

  VerifyFixture() {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    DbConfig cfg;
    cfg.write_buffer_bytes = 256 << 10;
    auto open = Db::open(*fs, mount.done, cfg);
    EXPECT_TRUE(open.ok());
    db = std::move(open.db);
    t = open.done;
  }

  void fill(int n) {
    for (int i = 0; i < n; ++i) {
      auto r = db->put(t, "key" + std::to_string(i), "v");
      if (r.err == Errno::kEAGAIN || db->flush_pending()) {
        t = db->do_flush(t).done;
        if (r.err == Errno::kEAGAIN) {
          --i;
          continue;
        }
      }
      ASSERT_TRUE(r.ok());
      t = r.done;
    }
    auto fr = db->flush(t);
    ASSERT_TRUE(fr.ok());
    t = fr.done;
  }
};

TEST(KvdbVerifyTest, HealthyStoreIsClean) {
  VerifyFixture fx;
  fx.fill(20000);
  ASSERT_GT(fx.db->l0_count() + fx.db->l1_count(), 0u);
  const auto report = fx.db->verify_integrity(fx.t);
  EXPECT_TRUE(report.clean())
      << (report.problems.empty() ? "io" : report.problems.front());
}

TEST(KvdbVerifyTest, EmptyStoreIsClean) {
  VerifyFixture fx;
  EXPECT_TRUE(fx.db->verify_integrity(fx.t).clean());
}

TEST(KvdbVerifyTest, DetectsCorruptedSstData) {
  VerifyFixture fx;
  fx.fill(20000);
  // Find an SST file and scribble over its first data block through the
  // filesystem.
  auto rd = fx.fs->readdir(fx.t, "/db");
  ASSERT_TRUE(rd.ok());
  std::string victim;
  for (const auto& e : rd.entries) {
    if (e.name.find(".l1") != std::string::npos ||
        e.name.find(".l0") != std::string::npos) {
      victim = "/db/" + e.name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  auto lr = fx.fs->lookup(fx.t, victim);
  ASSERT_TRUE(lr.ok());
  std::vector<std::byte> garbage(256, std::byte{0xfe});
  ASSERT_TRUE(fx.fs->write(lr.done, lr.inode, 64, garbage).ok());

  const auto report = fx.db->verify_integrity(fx.t);
  EXPECT_FALSE(report.clean());
}

TEST(KvdbVerifyTest, CleanAfterCompaction) {
  VerifyFixture fx;
  // Enough churn for several flushes + a compaction.
  for (int round = 0; round < 3; ++round) {
    fx.fill(15000);
  }
  EXPECT_GT(fx.db->stats().compactions, 0u);
  EXPECT_TRUE(fx.db->verify_integrity(fx.t).clean());
}

}  // namespace
}  // namespace deepnote::storage::kvdb
