// Resource-exhaustion and limit behaviour of extfs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/extfs.h"
#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

TEST(ExtFsLimitsTest, EnospcOnDataBlocks) {
  // A deliberately tiny filesystem: mkfs caps total blocks.
  MemDisk disk((64ull << 20) / 512);
  SimTime t = SimTime::zero();
  MkfsOptions opt;
  opt.journal_blocks = 16;
  opt.num_inodes = 64;
  opt.total_blocks = 300;  // tiny data region
  ASSERT_TRUE(ExtFs::mkfs(disk, t, opt).ok());
  auto mount = ExtFs::mount(disk, t);
  ASSERT_TRUE(mount.ok());
  ExtFs& fs = *mount.fs;
  t = mount.done;

  std::uint32_t ino = 0;
  t = fs.create(t, "/hog", &ino).done;
  const std::uint64_t free_before = fs.free_blocks();
  ASSERT_GT(free_before, 0u);

  // Writing more than the free space must eventually fail with ENOSPC.
  std::vector<std::byte> chunk(kFsBlockSize, std::byte{0x77});
  Errno err = Errno::kOk;
  std::uint64_t written = 0;
  for (std::uint64_t i = 0; i < free_before + 16; ++i) {
    auto wr = fs.write(t, ino, i * kFsBlockSize, chunk);
    t = wr.done;
    if (!wr.ok()) {
      err = wr.err;
      break;
    }
    ++written;
  }
  EXPECT_EQ(err, Errno::kENOSPC);
  EXPECT_LE(written, free_before);
  EXPECT_GT(written, 0u);
  // The filesystem stays healthy: deleting recovers space and writes
  // work again.
  ASSERT_TRUE(fs.unlink(t, "/hog").ok());
  std::uint32_t ino2 = 0;
  t = fs.create(t, "/again", &ino2).done;
  EXPECT_TRUE(fs.write(t, ino2, 0, chunk).ok());
}

TEST(ExtFsLimitsTest, InodeExhaustion) {
  MemDisk disk((64ull << 20) / 512);
  SimTime t = SimTime::zero();
  MkfsOptions opt;
  opt.journal_blocks = 16;
  opt.num_inodes = 8;  // 0 invalid + 1 root + 6 usable
  ASSERT_TRUE(ExtFs::mkfs(disk, t, opt).ok());
  auto mount = ExtFs::mount(disk, t);
  ASSERT_TRUE(mount.ok());
  ExtFs& fs = *mount.fs;
  t = mount.done;

  int created = 0;
  Errno err = Errno::kOk;
  for (int i = 0; i < 10; ++i) {
    auto cr = fs.create(t, "/f" + std::to_string(i));
    t = cr.done;
    if (!cr.ok()) {
      err = cr.err;
      break;
    }
    ++created;
  }
  EXPECT_EQ(created, 6);
  EXPECT_EQ(err, Errno::kENOSPC);
  // Unlink frees the inode for reuse.
  ASSERT_TRUE(fs.unlink(t, "/f0").ok());
  EXPECT_TRUE(fs.create(t, "/reused").ok());
}

TEST(ExtFsLimitsTest, MkfsRejectsTooSmallDevice) {
  MemDisk disk((2ull << 20) / 512);  // 2 MiB: journal alone won't fit
  const FsResult r = ExtFs::mkfs(disk, SimTime::zero());
  EXPECT_EQ(r.err, Errno::kENOSPC);
}

TEST(ExtFsLimitsTest, DirtyThrottleBoundsMemory) {
  MemDisk disk((512ull << 20) / 512);
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  ExtFsConfig cfg;
  cfg.dirty_limit_bytes = 1 << 20;  // 1 MiB
  auto mount = ExtFs::mount(disk, t, cfg);
  ASSERT_TRUE(mount.ok());
  ExtFs& fs = *mount.fs;
  t = mount.done;
  std::uint32_t ino = 0;
  t = fs.create(t, "/big", &ino).done;
  std::vector<std::byte> chunk(64 << 10, std::byte{0x42});
  for (int i = 0; i < 64; ++i) {  // 4 MiB total through a 1 MiB window
    auto wr = fs.write(t, ino, static_cast<std::uint64_t>(i) * chunk.size(),
                       chunk);
    ASSERT_TRUE(wr.ok());
    t = wr.done;
    // The throttle keeps dirty bytes bounded (one chunk of slack).
    EXPECT_LE(fs.dirty_bytes(), cfg.dirty_limit_bytes + chunk.size());
  }
  EXPECT_GT(fs.stats().throttle_stalls, 0u);
}

TEST(ExtFsLimitsTest, TxnBlockLimitForcesCommit) {
  MemDisk disk((512ull << 20) / 512);
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  ExtFsConfig cfg;
  cfg.txn_block_limit = 8;  // tiny transactions
  auto mount = ExtFs::mount(disk, t, cfg);
  ASSERT_TRUE(mount.ok());
  ExtFs& fs = *mount.fs;
  t = mount.done;
  // Touching many metadata blocks (files big enough to need indirect
  // pointer blocks) must trigger inline commits rather than unbounded
  // transactions.
  std::vector<std::byte> chunk(32 * kFsBlockSize, std::byte{0x01});
  for (int i = 0; i < 40; ++i) {
    std::uint32_t ino = 0;
    t = fs.create(t, "/f" + std::to_string(i), &ino).done;
    auto wr = fs.write(t, ino, 0, chunk);
    ASSERT_TRUE(wr.ok());
    t = wr.done;
  }
  EXPECT_GT(fs.stats().commits, 2u);
}

}  // namespace
}  // namespace deepnote::storage
