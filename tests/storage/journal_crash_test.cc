// Property test: the journal protocol tolerates a device failure at ANY
// point during a commit.
//
// Using MemDisk::fail_after to kill the device after exactly N writes,
// we commit a transaction; whatever happens, a subsequent replay must
// see either (a) the previous consistent state or (b) the fully
// committed transaction — never a half-applied one. This is the
// atomicity property that makes the Ext4 model's -5 abort safe.
#include <gtest/gtest.h>

#include <vector>

#include "storage/journal.h"
#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

constexpr std::uint32_t kJournalStart = 1;
constexpr std::uint32_t kJournalBlocks = 64;
constexpr std::uint32_t kHomeA = 200;
constexpr std::uint32_t kHomeB = 201;

std::vector<std::byte> filled(std::uint8_t fill) {
  return std::vector<std::byte>(kFsBlockSize, static_cast<std::byte>(fill));
}

std::vector<std::byte> read_home(MemDisk& disk, std::uint32_t block) {
  std::vector<std::byte> out(kFsBlockSize);
  disk.read(SimTime::zero(),
            static_cast<std::uint64_t>(block) * kFsSectorsPerBlock,
            kFsSectorsPerBlock, out);
  return out;
}

void checkpoint(MemDisk& disk, std::uint32_t block,
                const std::vector<std::byte>& data) {
  disk.write(SimTime::zero(),
             static_cast<std::uint64_t>(block) * kFsSectorsPerBlock,
             kFsSectorsPerBlock, data);
}

class JournalCrashTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JournalCrashTest, CommitIsAtomicUnderDeviceFailure) {
  MemDisk disk(4096);

  // Establish a committed + checkpointed "old" state.
  {
    Journal journal(disk, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(journal
                    .commit(SimTime::zero(),
                            {JournalBlock{kHomeA, filled(0x0a)},
                             JournalBlock{kHomeB, filled(0x0b)}})
                    .ok());
    checkpoint(disk, kHomeA, filled(0x0a));
    checkpoint(disk, kHomeB, filled(0x0b));
  }

  // Attempt the "new" transaction with the device dying after N ops.
  Journal journal(disk, kJournalStart, kJournalBlocks, 2);
  disk.fail_after(GetParam());
  const JournalResult cr = journal.commit(
      SimTime::zero(), {JournalBlock{kHomeA, filled(0x1a)},
                        JournalBlock{kHomeB, filled(0x1b)}});
  disk.fail_after(~0ull);  // device healthy again ("after reboot")

  if (!cr.ok()) {
    EXPECT_TRUE(journal.aborted());
    EXPECT_EQ(journal.abort_code(), -5);
  }

  // Recovery.
  Journal recovery(disk, kJournalStart, kJournalBlocks, 2);
  std::uint64_t applied = 0;
  ASSERT_TRUE(recovery.replay(SimTime::zero(), &applied).ok());

  const auto a = read_home(disk, kHomeA);
  const auto b = read_home(disk, kHomeB);
  const bool old_state = a == filled(0x0a) && b == filled(0x0b);
  const bool new_state = a == filled(0x1a) && b == filled(0x1b);
  EXPECT_TRUE(old_state || new_state)
      << "half-applied transaction after crash at op " << GetParam();
  // If the commit reported success, the new state must be recoverable.
  if (cr.ok()) EXPECT_TRUE(new_state);
}

// Commit of 2 blocks = desc + 2 payloads + flush + commit + flush: kill
// the device at every step (0..5 writes/flushes) and well past it.
INSTANTIATE_TEST_SUITE_P(FailurePoints, JournalCrashTest,
                         ::testing::Range<std::uint64_t>(0, 9));

}  // namespace
}  // namespace deepnote::storage
