// The journal protocol tolerates a device failure at ANY point during a
// commit: whatever the crash schedule, replay must recover either the
// previous consistent state or the fully committed transaction — never a
// half-applied one. This atomicity is what makes the Ext4 model's -5
// abort safe under the paper's acoustic attack.
//
// Exploration runs through the fault harness: every (cut, variant)
// schedule over the journal pair workload, not just clean kills — torn
// commit blocks, write-cache reordering, and transient EIO bursts all
// get a turn (storage/fault_harness.h).
#include <gtest/gtest.h>

#include "storage/fault_harness.h"
#include "storage/fault_workloads.h"

namespace deepnote::storage {
namespace {

TEST(JournalCrashTest, CommitIsAtomicUnderEveryFaultSchedule) {
  const ExploreReport report =
      explore(journal_pair_workload(), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  // desc + 2 payloads + commit per transaction, plus 2 checkpoints each.
  EXPECT_GE(report.write_count, 12u);
}

TEST(JournalCrashTest, LongerTransactionChainsStayAtomic) {
  JournalWorkloadOptions opt;
  opt.transactions = 5;
  const ExploreReport report =
      explore(journal_pair_workload(opt), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
}

// Distinct base seeds draw distinct torn-prefix lengths and reorder
// subsets for the same cut points; the protocol must not depend on any
// particular draw.
class JournalCrashSeedTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JournalCrashSeedTest, AtomicUnderRandomizedFaultDraws) {
  ExploreOptions options;
  options.seed = GetParam();
  const ExploreReport report =
      explore(journal_pair_workload(), options);
  EXPECT_TRUE(report.passed())
      << report.summary() << " (base seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalCrashSeedTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace deepnote::storage
