#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/extfs.h"
#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

struct RenameFixture {
  MemDisk disk{(128ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  SimTime t = SimTime::zero();

  RenameFixture() {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    t = mount.done;
  }

  std::uint32_t create_with(const std::string& path,
                            const std::string& content) {
    std::uint32_t ino = 0;
    auto cr = fs->create(t, path, &ino);
    EXPECT_TRUE(cr.ok());
    t = cr.done;
    std::vector<std::byte> data(content.size());
    std::memcpy(data.data(), content.data(), content.size());
    auto wr = fs->write(t, ino, 0, data);
    EXPECT_TRUE(wr.ok());
    t = wr.done;
    return ino;
  }

  std::string read_all(const std::string& path) {
    auto lr = fs->lookup(t, path);
    EXPECT_TRUE(lr.ok());
    auto st = fs->stat(lr.done, lr.inode);
    std::vector<std::byte> out(st.size);
    auto rr = fs->read(st.done, lr.inode, 0, out);
    EXPECT_TRUE(rr.ok());
    t = rr.done;
    return std::string(reinterpret_cast<const char*>(out.data()),
                       out.size());
  }
};

TEST(ExtFsRenameTest, BasicRenameMovesContent) {
  RenameFixture fx;
  const std::uint32_t ino = fx.create_with("/old", "payload");
  ASSERT_TRUE(fx.fs->rename(fx.t, "/old", "/new").ok());
  EXPECT_EQ(fx.fs->lookup(fx.t, "/old").err, Errno::kENOENT);
  auto lr = fx.fs->lookup(fx.t, "/new");
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(lr.inode, ino);  // same inode: a true rename, not a copy
  EXPECT_EQ(fx.read_all("/new"), "payload");
}

TEST(ExtFsRenameTest, MoveBetweenDirectories) {
  RenameFixture fx;
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/a").ok());
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/b").ok());
  fx.create_with("/a/file", "x");
  ASSERT_TRUE(fx.fs->rename(fx.t, "/a/file", "/b/file").ok());
  EXPECT_EQ(fx.fs->lookup(fx.t, "/a/file").err, Errno::kENOENT);
  EXPECT_TRUE(fx.fs->lookup(fx.t, "/b/file").ok());
  // /a is now empty and removable.
  EXPECT_TRUE(fx.fs->unlink(fx.t, "/a").ok());
}

TEST(ExtFsRenameTest, ReplacesExistingFile) {
  RenameFixture fx;
  fx.create_with("/src", "new content");
  fx.create_with("/dst", "old content");
  const std::uint64_t free_before = fx.fs->free_inodes();
  ASSERT_TRUE(fx.fs->rename(fx.t, "/src", "/dst").ok());
  EXPECT_EQ(fx.read_all("/dst"), "new content");
  EXPECT_EQ(fx.fs->lookup(fx.t, "/src").err, Errno::kENOENT);
  // The victim's inode was freed.
  EXPECT_EQ(fx.fs->free_inodes(), free_before + 1);
}

TEST(ExtFsRenameTest, DirectoryRename) {
  RenameFixture fx;
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/dir").ok());
  fx.create_with("/dir/child", "c");
  ASSERT_TRUE(fx.fs->rename(fx.t, "/dir", "/moved").ok());
  EXPECT_TRUE(fx.fs->lookup(fx.t, "/moved/child").ok());
  EXPECT_EQ(fx.fs->lookup(fx.t, "/dir").err, Errno::kENOENT);
}

TEST(ExtFsRenameTest, CannotReplaceDirectory) {
  RenameFixture fx;
  fx.create_with("/f", "x");
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/d").ok());
  EXPECT_EQ(fx.fs->rename(fx.t, "/f", "/d").err, Errno::kEEXIST);
}

TEST(ExtFsRenameTest, MissingSourceFails) {
  RenameFixture fx;
  EXPECT_EQ(fx.fs->rename(fx.t, "/ghost", "/x").err, Errno::kENOENT);
}

TEST(ExtFsRenameTest, RenameToSelfIsNoop) {
  RenameFixture fx;
  fx.create_with("/same", "v");
  EXPECT_TRUE(fx.fs->rename(fx.t, "/same", "/same").ok());
  EXPECT_EQ(fx.read_all("/same"), "v");
}

TEST(ExtFsRenameTest, SurvivesRemountAndFsck) {
  RenameFixture fx;
  fx.create_with("/before", "durable");
  fx.create_with("/victim", "doomed");
  ASSERT_TRUE(fx.fs->rename(fx.t, "/before", "/victim").ok());
  ASSERT_TRUE(fx.fs->unmount(fx.t).ok());
  auto mount = ExtFs::mount(fx.disk, fx.t);
  ASSERT_TRUE(mount.ok());
  auto lr = mount.fs->lookup(mount.done, "/victim");
  ASSERT_TRUE(lr.ok());
  ASSERT_TRUE(mount.fs->unmount(lr.done).ok());
  EXPECT_TRUE(ExtFs::fsck(fx.disk, fx.t).clean());
}

TEST(ExtFsRenameTest, RejectedOnReadOnlyFs) {
  RenameFixture fx;
  fx.create_with("/f", "x");
  fx.disk.set_failing(true);
  fx.fs->commit(fx.t + sim::Duration::from_seconds(1));
  fx.disk.set_failing(false);
  ASSERT_TRUE(fx.fs->read_only());
  EXPECT_EQ(fx.fs->rename(fx.fs->abort_time(), "/f", "/g").err,
            Errno::kEROFS);
}

}  // namespace
}  // namespace deepnote::storage
