#include "storage/fault_harness.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

std::vector<std::byte> sector_fill(std::uint8_t fill) {
  return std::vector<std::byte>(kBlockSectorSize,
                                static_cast<std::byte>(fill));
}

// A correct workload: single-sector writes, each flushed and only then
// acknowledged. Invariant: every acknowledged sector holds its data;
// any other sector is still zero or holds its (unacknowledged) data.
class SectorLogWorkload final : public CrashWorkload {
 public:
  void run(const FaultPlan& plan) override {
    inner_ = std::make_unique<MemDisk>(64);
    faulty_ = std::make_unique<FaultyDisk>(*inner_, plan);
    acked_.assign(kSectors, false);
    for (std::uint32_t s = 0; s < kSectors; ++s) {
      if (!faulty_->write(SimTime::zero(), s, 1, sector_fill(fill(s)))
               .ok()) {
        continue;
      }
      if (faulty_->flush(SimTime::zero()).ok()) acked_[s] = true;
    }
  }

  std::uint64_t faulted_writes() const override {
    return faulty_->writes_seen();
  }

  CheckResult check() override {
    for (std::uint32_t s = 0; s < kSectors; ++s) {
      std::vector<std::byte> got(kBlockSectorSize);
      if (!inner_->read(SimTime::zero(), s, 1, got).ok()) {
        return CheckResult::fail("read failed");
      }
      const bool zero = got == sector_fill(0);
      const bool written = got == sector_fill(fill(s));
      if (acked_[s] && !written) {
        return CheckResult::fail("acked sector " + std::to_string(s) +
                                 " lost");
      }
      if (!written && !zero) {
        return CheckResult::fail("sector " + std::to_string(s) +
                                 " holds bytes never written");
      }
    }
    return CheckResult::ok();
  }

 private:
  static constexpr std::uint32_t kSectors = 10;
  static std::uint8_t fill(std::uint32_t s) {
    return static_cast<std::uint8_t>(s + 1);
  }

  std::unique_ptr<MemDisk> inner_;
  std::unique_ptr<FaultyDisk> faulty_;
  std::vector<bool> acked_;
};

// A broken workload: a two-block "pair" that must match, updated with
// two separate writes and no journaling — a crash between them violates
// the invariant. The harness must find it; shrink must land on the
// earliest clean cut (write 1, the first B update).
class BrokenPairWorkload final : public CrashWorkload {
 public:
  void run(const FaultPlan& plan) override {
    inner_ = std::make_unique<MemDisk>(64);
    faulty_ = std::make_unique<FaultyDisk>(*inner_, plan);
    for (std::uint8_t gen = 1; gen <= 2; ++gen) {
      faulty_->write(SimTime::zero(), 0, 1, sector_fill(gen));
      faulty_->write(SimTime::zero(), 8, 1, sector_fill(gen));
      faulty_->flush(SimTime::zero());
    }
  }

  std::uint64_t faulted_writes() const override {
    return faulty_->writes_seen();
  }

  CheckResult check() override {
    std::vector<std::byte> a(kBlockSectorSize), b(kBlockSectorSize);
    inner_->read(SimTime::zero(), 0, 1, a);
    inner_->read(SimTime::zero(), 8, 1, b);
    if (a != b) {
      return CheckResult::fail("pair mismatch: A=" +
                               std::to_string(int(a[0])) +
                               " B=" + std::to_string(int(b[0])));
    }
    return CheckResult::ok();
  }

 private:
  std::unique_ptr<MemDisk> inner_;
  std::unique_ptr<FaultyDisk> faulty_;
};

template <typename W>
WorkloadFactory factory_of() {
  return [] { return std::make_unique<W>(); };
}

TEST(FaultScheduleTest, IndexEncodesCutAndVariant) {
  const FaultSchedule s = schedule_at(0x5eed, 5 * 9 + 2);
  EXPECT_EQ(s.cut_write, 9u);
  EXPECT_EQ(s.variant, FaultVariant::kReorder);
  EXPECT_EQ(s.index, 47u);
  const FaultPlan p = s.plan(8);
  ASSERT_TRUE(p.cut_at_write.has_value());
  EXPECT_EQ(*p.cut_at_write, 9u);
  EXPECT_EQ(p.cache_window, 8u);
  EXPECT_FALSE(s.describe().empty());
}

TEST(FaultScheduleTest, PlanSeedsDifferPerIndexAndReplayExactly) {
  const FaultPlan p1 = schedule_at(1, 5).plan(8);
  const FaultPlan p2 = schedule_at(1, 10).plan(8);
  EXPECT_NE(p1.seed, p2.seed);
  EXPECT_EQ(p1.seed, schedule_at(1, 5).plan(8).seed);
}

TEST(FaultScheduleTest, EioVariantHasNoCut) {
  const FaultSchedule s = schedule_at(7, 5 * 3 + 3);
  EXPECT_EQ(s.variant, FaultVariant::kEio);
  const FaultPlan p = s.plan(8);
  EXPECT_FALSE(p.cut_at_write.has_value());
  EXPECT_GT(p.eio_len, 0u);
  EXPECT_EQ(p.eio_start, 3u);
}

TEST(FaultScheduleTest, EraseVariantCutsAtTheNthErase) {
  const FaultSchedule s = schedule_at(7, 5 * 6 + 4);
  EXPECT_EQ(s.variant, FaultVariant::kEraseInterrupt);
  const FaultPlan p = s.plan(8);
  EXPECT_FALSE(p.cut_at_write.has_value());
  ASSERT_TRUE(p.cut_at_erase.has_value());
  EXPECT_EQ(*p.cut_at_erase, 6u);
  EXPECT_NE(s.describe().find("erase"), std::string::npos);
}

TEST(FaultHarnessTest, CorrectWorkloadSurvivesExhaustiveExploration) {
  const ExploreReport report =
      explore(factory_of<SectorLogWorkload>(), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_EQ(report.write_count, 10u);
  // 10 writes x the 4 write-cut variants; the workload never erases, so
  // no interrupted-erase schedules are enumerated.
  EXPECT_EQ(report.erase_count, 0u);
  EXPECT_EQ(report.schedules_run, 40u);
}

TEST(FaultHarnessTest, ExplorationIsDeterministicAcrossJobCounts) {
  ExploreOptions serial;
  serial.jobs = 1;
  ExploreOptions parallel;
  parallel.jobs = 4;
  const ExploreReport a = explore(factory_of<BrokenPairWorkload>(), serial);
  const ExploreReport b =
      explore(factory_of<BrokenPairWorkload>(), parallel);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].schedule.index, b.failures[i].schedule.index);
    EXPECT_EQ(a.failures[i].detail, b.failures[i].detail);
  }
}

TEST(FaultHarnessTest, BrokenWorkloadIsCaughtAndShrinksToMinimalCut) {
  const ExploreReport report =
      explore(factory_of<BrokenPairWorkload>(), ExploreOptions{});
  ASSERT_FALSE(report.failures.empty());
  EXPECT_TRUE(report.benign_failure.empty())
      << "the bug needs a crash to show; benign run must pass";

  // Every reported failure replays to a failure from its (seed, index).
  for (const auto& f : report.failures) {
    FaultSchedule replayed;
    const CheckResult r =
        replay_schedule(factory_of<BrokenPairWorkload>(),
                        f.schedule.base_seed, f.schedule.index, 8,
                        &replayed);
    EXPECT_FALSE(r.passed) << f.schedule.describe();
    EXPECT_EQ(replayed.cut_write, f.schedule.cut_write);
  }

  // Shrinking the last (most complex) failure lands on the minimal
  // schedule: a clean cut at write 1 — after A's first update, before
  // B's.
  const FaultSchedule minimal =
      shrink(factory_of<BrokenPairWorkload>(), report.failures.back().schedule);
  EXPECT_EQ(minimal.variant, FaultVariant::kClean);
  EXPECT_EQ(minimal.cut_write, 1u);
  EXPECT_FALSE(replay_schedule(factory_of<BrokenPairWorkload>(),
                               minimal.base_seed, minimal.index)
                   .passed);
}

TEST(FaultHarnessTest, BenignOracleFailureIsReportedAsSuch) {
  // A workload whose invariant is wrong even without faults must be
  // flagged as a benign failure, not as a crash-consistency bug.
  class AlwaysWrong final : public CrashWorkload {
   public:
    void run(const FaultPlan& plan) override {
      inner_ = std::make_unique<MemDisk>(8);
      faulty_ = std::make_unique<FaultyDisk>(*inner_, plan);
      faulty_->write(SimTime::zero(), 0, 1, sector_fill(1));
    }
    std::uint64_t faulted_writes() const override {
      return faulty_->writes_seen();
    }
    CheckResult check() override {
      return CheckResult::fail("broken oracle");
    }
   private:
    std::unique_ptr<MemDisk> inner_;
    std::unique_ptr<FaultyDisk> faulty_;
  };
  const ExploreReport report =
      explore([] { return std::make_unique<AlwaysWrong>(); });
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.benign_failure, "broken oracle");
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.schedules_run, 0u);
}

}  // namespace
}  // namespace deepnote::storage
