#include "storage/kvdb/db.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/rng.h"
#include "storage/kvdb/memtable.h"
#include "storage/kvdb/skiplist.h"
#include "storage/mem_disk.h"

namespace deepnote::storage::kvdb {
namespace {

using sim::SimTime;

// ---------------------------------------------------------------------------
// Skiplist

TEST(SkipListTest, InsertAndFind) {
  SkipList<int> list;
  list.insert("banana", 2);
  list.insert("apple", 1);
  list.insert("cherry", 3);
  std::string_view key;
  const int* v = list.find_first_at_least("apple", &key);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 1);
  v = list.find_first_at_least("b", &key);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(key, "banana");
  EXPECT_EQ(list.find_first_at_least("zebra"), nullptr);
}

TEST(SkipListTest, OrderedTraversal) {
  SkipList<int> list;
  sim::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    list.insert(std::to_string(rng.next_u64() % 100000), i);
  }
  std::string prev;
  bool first = true;
  list.for_each([&](std::string_view k, const int&) {
    if (!first) EXPECT_GE(k, prev);
    prev = std::string(k);
    first = false;
  });
  EXPECT_EQ(list.size(), 500u);
}

// ---------------------------------------------------------------------------
// Memtable

TEST(MemTableTest, InternalKeyOrdersNewestFirst) {
  const std::string a = MemTable::internal_key("key", 5);
  const std::string b = MemTable::internal_key("key", 9);
  EXPECT_LT(b, a);  // higher sequence sorts first
  EXPECT_EQ(MemTable::user_key_of(a), "key");
  EXPECT_EQ(MemTable::sequence_of(a), 5u);
  EXPECT_EQ(MemTable::sequence_of(b), 9u);
}

TEST(MemTableTest, GetReturnsNewestVersion) {
  MemTable mt;
  mt.put("k", "old", 1);
  mt.put("k", "new", 2);
  std::string v;
  EXPECT_EQ(mt.get("k", &v), LookupState::kFound);
  EXPECT_EQ(v, "new");
}

TEST(MemTableTest, TombstoneShadowsOlderPut) {
  MemTable mt;
  mt.put("k", "value", 1);
  mt.del("k", 2);
  std::string v;
  EXPECT_EQ(mt.get("k", &v), LookupState::kDeleted);
}

TEST(MemTableTest, MissingKey) {
  MemTable mt;
  mt.put("aaa", "1", 1);
  mt.put("ccc", "3", 2);
  std::string v;
  EXPECT_EQ(mt.get("bbb", &v), LookupState::kMissing);
}

TEST(MemTableTest, BytesGrow) {
  MemTable mt;
  EXPECT_EQ(mt.approximate_bytes(), 0u);
  mt.put("key", std::string(1000, 'v'), 1);
  EXPECT_GT(mt.approximate_bytes(), 1000u);
}

// ---------------------------------------------------------------------------
// Db on extfs on MemDisk

struct DbFixture {
  MemDisk disk{(512ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  std::unique_ptr<Db> db;
  SimTime t = SimTime::zero();

  explicit DbFixture(DbConfig cfg = small_config()) {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    auto open = Db::open(*fs, mount.done, cfg);
    EXPECT_TRUE(open.ok());
    db = std::move(open.db);
    t = open.done;
  }

  static DbConfig small_config() {
    DbConfig cfg;
    cfg.write_buffer_bytes = 256 << 10;  // flush often in tests
    cfg.l0_compaction_trigger = 4;
    return cfg;
  }

  void pump() {  // run pending background work inline
    while (db->flush_pending()) {
      auto r = db->do_flush(t);
      ASSERT_TRUE(r.ok());
      t = r.done;
    }
  }

  void put(const std::string& k, const std::string& v) {
    auto r = db->put(t, k, v);
    if (r.err == Errno::kEAGAIN) {
      pump();
      r = db->put(t, k, v);
    }
    ASSERT_TRUE(r.ok());
    t = r.done;
    if (db->flush_pending()) pump();
  }

  std::string get(const std::string& k, bool* found = nullptr) {
    auto r = db->get(t, k);
    EXPECT_TRUE(r.ok());
    t = r.done;
    if (found) *found = r.found;
    return r.value;
  }
};

TEST(DbTest, PutGetRoundTrip) {
  DbFixture fx;
  fx.put("hello", "world");
  bool found = false;
  EXPECT_EQ(fx.get("hello", &found), "world");
  EXPECT_TRUE(found);
  fx.get("missing", &found);
  EXPECT_FALSE(found);
}

TEST(DbTest, OverwriteReturnsLatest) {
  DbFixture fx;
  fx.put("k", "v1");
  fx.put("k", "v2");
  EXPECT_EQ(fx.get("k"), "v2");
}

TEST(DbTest, DeleteHidesKey) {
  DbFixture fx;
  fx.put("k", "v");
  auto r = fx.db->del(fx.t, "k");
  ASSERT_TRUE(r.ok());
  fx.t = r.done;
  bool found = true;
  fx.get("k", &found);
  EXPECT_FALSE(found);
}

TEST(DbTest, GetFromFlushedSst) {
  DbFixture fx;
  for (int i = 0; i < 2000; ++i) {
    fx.put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  auto fr = fx.db->flush(fx.t);
  ASSERT_TRUE(fr.ok());
  fx.t = fr.done;
  EXPECT_GT(fx.db->l0_count() + fx.db->l1_count(), 0u);
  // Values must come back from SSTs (memtable was flushed).
  bool found = false;
  EXPECT_EQ(fx.get("key0", &found), "value0");
  EXPECT_TRUE(found);
  EXPECT_EQ(fx.get("key1999", &found), "value1999");
  EXPECT_TRUE(found);
}

TEST(DbTest, CompactionMergesLevels) {
  DbFixture fx;
  // Enough data to trigger several flushes and at least one compaction.
  for (int i = 0; i < 30000; ++i) {
    fx.put("key" + std::to_string(i % 5000),
           "gen" + std::to_string(i / 5000));
  }
  auto fr = fx.db->flush(fx.t);
  ASSERT_TRUE(fr.ok());
  fx.t = fr.done;
  EXPECT_GT(fx.db->stats().compactions, 0u);
  EXPECT_LT(fx.db->l0_count(), 4u);
  // The newest generation wins for a sampled key.
  EXPECT_EQ(fx.get("key100"), "gen5");
}

TEST(DbTest, TombstonesSurviveFlushAndCompaction) {
  DbFixture fx;
  for (int i = 0; i < 3000; ++i) {
    fx.put("key" + std::to_string(i), "v");
  }
  auto r = fx.db->del(fx.t, "key7");
  ASSERT_TRUE(r.ok());
  fx.t = r.done;
  ASSERT_TRUE(fx.db->flush(fx.t).ok());
  bool found = true;
  fx.get("key7", &found);
  EXPECT_FALSE(found);
}

TEST(DbTest, RecoveryFromWal) {
  MemDisk disk{(512ull << 20) / 512};
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  std::uint64_t last_seq = 0;
  {
    auto mount = ExtFs::mount(disk, t);
    ASSERT_TRUE(mount.ok());
    auto open = Db::open(*mount.fs, mount.done, DbFixture::small_config());
    ASSERT_TRUE(open.ok());
    Db& db = *open.db;
    t = open.done;
    for (int i = 0; i < 100; ++i) {
      auto r = db.put(t, "k" + std::to_string(i), "v" + std::to_string(i));
      ASSERT_TRUE(r.ok());
      t = r.done;
    }
    last_seq = db.last_sequence();
    // No flush, no close: simulate the process dying. The fs (buffered)
    // must still be synced for the WAL to be on disk.
    ASSERT_TRUE(mount.fs->sync(t).ok());
  }
  {
    auto mount = ExtFs::mount(disk, t);
    ASSERT_TRUE(mount.ok());
    auto open = Db::open(*mount.fs, mount.done, DbFixture::small_config());
    ASSERT_TRUE(open.ok());
    EXPECT_EQ(open.wal_records_recovered, 100u);
    EXPECT_GE(open.db->last_sequence(), last_seq);
    auto g = open.db->get(open.done, "k42");
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g.found);
    EXPECT_EQ(g.value, "v42");
  }
}

TEST(DbTest, RecoveryFromSstsAndWal) {
  MemDisk disk{(512ull << 20) / 512};
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  {
    auto mount = ExtFs::mount(disk, t);
    auto open = Db::open(*mount.fs, mount.done, DbFixture::small_config());
    Db& db = *open.db;
    t = open.done;
    for (int i = 0; i < 5000; ++i) {
      auto r = db.put(t, "k" + std::to_string(i), "flushed");
      if (r.err == Errno::kEAGAIN || db.flush_pending()) {
        t = db.do_flush(t).done;
        if (r.err == Errno::kEAGAIN) --i;
      }
      if (r.ok()) t = r.done;
    }
    // A few unflushed writes in the WAL on top.
    for (int i = 0; i < 10; ++i) {
      auto r = db.put(t, "fresh" + std::to_string(i), "wal");
      ASSERT_TRUE(r.ok());
      t = r.done;
    }
    ASSERT_TRUE(mount.fs->sync(t).ok());
  }
  {
    auto mount = ExtFs::mount(disk, t);
    auto open = Db::open(*mount.fs, mount.done, DbFixture::small_config());
    ASSERT_TRUE(open.ok());
    auto g = open.db->get(open.done, "k4321");
    EXPECT_TRUE(g.found);
    EXPECT_EQ(g.value, "flushed");
    g = open.db->get(open.done, "fresh3");
    EXPECT_TRUE(g.found);
    EXPECT_EQ(g.value, "wal");
  }
}

TEST(DbTest, FatalOnDeviceFailureDuringFlush) {
  DbFixture fx;
  for (int i = 0; i < 100; ++i) {
    fx.put("k" + std::to_string(i), std::string(100, 'x'));
  }
  fx.disk.set_failing(true);
  // Force a flush against the dead device.
  auto fr = fx.db->flush(fx.t);
  EXPECT_FALSE(fr.ok());
  EXPECT_TRUE(fx.db->fatal());
  EXPECT_FALSE(fx.db->fatal_message().empty());
  // All subsequent operations fail.
  EXPECT_EQ(fx.db->put(fr.done, "x", "y").err, Errno::kEIO);
  EXPECT_EQ(fx.db->get(fr.done, "k1").err, Errno::kEIO);
}

TEST(DbTest, WriteStallWhenFlushPending) {
  DbFixture fx;
  // Fill two memtables without running the flush daemon.
  DbConfig cfg = DbFixture::small_config();
  const std::string big(8 << 10, 'z');
  int eagain = 0;
  for (int i = 0; i < 200; ++i) {
    auto r = fx.db->put(fx.t, "k" + std::to_string(i), big);
    if (r.err == Errno::kEAGAIN) {
      ++eagain;
      break;
    }
    ASSERT_TRUE(r.ok());
    fx.t = r.done;
  }
  EXPECT_GT(eagain, 0);
  EXPECT_GT(fx.db->stats().stalled_writes, 0u);
  // The flush daemon clears the backlog and writes flow again.
  fx.pump();
  EXPECT_TRUE(fx.db->put(fx.t, "after", "stall").ok());
}

TEST(DbTest, ReadsStallAfterGracePeriod) {
  DbConfig cfg = DbFixture::small_config();
  cfg.stall_grace = sim::Duration::from_seconds(1.0);
  DbFixture fx(cfg);
  const std::string big(8 << 10, 'z');
  // Fill one memtable to switch it, then do NOT flush.
  for (int i = 0; i < 100 && !fx.db->flush_pending(); ++i) {
    auto r = fx.db->put(fx.t, "k" + std::to_string(i), big);
    ASSERT_TRUE(r.ok());
    fx.t = r.done;
  }
  ASSERT_TRUE(fx.db->flush_pending());
  // Within the grace period reads work (and see the immutable memtable).
  auto g = fx.db->get(fx.t, "k0");
  EXPECT_TRUE(g.ok());
  EXPECT_TRUE(g.found);
  // Past the grace period the store wedges.
  g = fx.db->get(fx.t + sim::Duration::from_seconds(2.0), "k0");
  EXPECT_EQ(g.err, Errno::kEAGAIN);
  EXPECT_GT(fx.db->stats().stalled_reads, 0u);
}

TEST(DbTest, RandomizedAgainstStdMap) {
  DbFixture fx;
  std::map<std::string, std::string> model;
  sim::Rng rng(2024);
  for (int op = 0; op < 4000; ++op) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 500));
    if (rng.bernoulli(0.7)) {
      const std::string value = "v" + std::to_string(op);
      fx.put(key, value);
      model[key] = value;
    } else {
      auto r = fx.db->del(fx.t, key);
      if (r.err == Errno::kEAGAIN) {
        fx.pump();
        r = fx.db->del(fx.t, key);
      }
      ASSERT_TRUE(r.ok());
      fx.t = r.done;
      model.erase(key);
      if (fx.db->flush_pending()) fx.pump();
    }
  }
  for (int i = 0; i <= 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    bool found = false;
    const std::string value = fx.get(key, &found);
    const auto it = model.find(key);
    ASSERT_EQ(found, it != model.end()) << key;
    if (found) EXPECT_EQ(value, it->second) << key;
  }
}

}  // namespace
}  // namespace deepnote::storage::kvdb
