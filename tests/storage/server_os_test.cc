#include "storage/server_os.h"

#include <gtest/gtest.h>

#include "storage/extfs.h"
#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::Duration;
using sim::SimTime;

struct OsFixture {
  MemDisk disk{(128ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  SimTime t = SimTime::zero();

  OsFixture() {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    t = mount.done;
  }
};

TEST(ServerOsTest, BootCreatesSystemFiles) {
  OsFixture fx;
  ServerOs os(*fx.fs);
  auto boot = os.boot(fx.t);
  ASSERT_TRUE(boot.ok());
  EXPECT_TRUE(fx.fs->lookup(boot.done, "/bin/ls").ok());
  EXPECT_TRUE(fx.fs->lookup(boot.done, "/var/log/syslog").ok());
  EXPECT_FALSE(os.crashed());
}

TEST(ServerOsTest, TicksAppendToSyslog) {
  OsFixture fx;
  ServerOs os(*fx.fs);
  auto boot = os.boot(fx.t);
  ASSERT_TRUE(boot.ok());
  auto lr = fx.fs->lookup(boot.done, "/var/log/syslog");
  const auto size_before = fx.fs->stat(boot.done, lr.inode).size;
  SimTime t = os.next_tick();
  for (int i = 0; i < 5; ++i) {
    auto r = os.tick(t);
    ASSERT_TRUE(r.ok());
    t = os.next_tick();
  }
  EXPECT_EQ(os.ticks(), 5u);
  const auto size_after = fx.fs->stat(t, lr.inode).size;
  EXPECT_GT(size_after, size_before);
}

TEST(ServerOsTest, TickCadenceIsConfigurable) {
  OsFixture fx;
  ServerOsConfig cfg;
  cfg.tick_interval = Duration::from_seconds(2.0);
  ServerOs os(*fx.fs, cfg);
  auto boot = os.boot(fx.t);
  ASSERT_TRUE(boot.ok());
  const SimTime first = os.next_tick();
  os.tick(first);
  EXPECT_EQ((os.next_tick() - first).seconds(), 2.0);
}

TEST(ServerOsTest, CrashesWhenRootFsAborts) {
  OsFixture fx;
  ServerOs os(*fx.fs);
  auto boot = os.boot(fx.t);
  ASSERT_TRUE(boot.ok());
  // Wound the filesystem: journal abort.
  SimTime t = os.next_tick();
  os.tick(t);
  fx.disk.set_failing(true);
  fx.fs->create(t, "/x");  // dirty the txn
  fx.fs->commit(t + Duration::from_millis(1));
  ASSERT_TRUE(fx.fs->read_only());
  fx.disk.set_failing(false);
  // The next tick after the abort time sees the dead root fs.
  const SimTime after = sim::max(os.next_tick(), fx.fs->abort_time());
  auto r = os.tick(after);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(os.crashed());
  EXPECT_NE(os.crash_reason().find("read-only"), std::string::npos);
  EXPECT_EQ(os.crash_time(), after);
}

TEST(ServerOsTest, CrashedOsRejectsFurtherTicks) {
  OsFixture fx;
  ServerOs os(*fx.fs);
  auto boot = os.boot(fx.t);
  ASSERT_TRUE(boot.ok());
  fx.disk.set_failing(true);
  fx.fs->create(boot.done, "/x");
  fx.fs->commit(boot.done + Duration::from_millis(1));
  fx.disk.set_failing(false);
  const SimTime after = sim::max(os.next_tick(), fx.fs->abort_time());
  os.tick(after);
  ASSERT_TRUE(os.crashed());
  const auto r = os.tick(after + Duration::from_seconds(1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(os.ticks(), 1u);  // no further activity
}

TEST(ServerOsTest, RebootOnExistingFilesystem) {
  OsFixture fx;
  {
    ServerOs os(*fx.fs);
    auto boot = os.boot(fx.t);
    ASSERT_TRUE(boot.ok());
    fx.t = os.next_tick();
    os.tick(fx.t);
  }
  // Second boot must attach to the existing /bin and /var/log.
  ServerOs os2(*fx.fs);
  auto boot2 = os2.boot(fx.t);
  EXPECT_TRUE(boot2.ok());
  auto r = os2.tick(os2.next_tick());
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace deepnote::storage
