#include "storage/os_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "hdd/drive.h"

namespace deepnote::storage {
namespace {

using sim::Duration;
using sim::SimTime;

hdd::HddConfig drive_config() {
  hdd::HddConfig cfg;
  cfg.geometry = hdd::Geometry::barracuda_500gb();
  cfg.servo.compliance_floor_nm_per_pa = 0.01;
  cfg.servo.rejection_corner_hz = 0.0;
  cfg.servo.false_trip_max_hz = 0.0;
  cfg.rng_seed = 7;
  return cfg;
}

OsDeviceConfig os_config() {
  OsDeviceConfig cfg;
  cfg.command_timeout = Duration::from_seconds(25.0);
  cfg.attempts = 3;
  return cfg;
}

structure::DriveExcitation park_tone() {
  return structure::DriveExcitation{650.0, 3000.0, true};  // 30 nm: park
}

TEST(OsDeviceTest, PassThroughWhenHealthy) {
  hdd::Hdd drive(drive_config());
  OsBlockDevice dev(drive, os_config());
  std::vector<std::byte> in(8 * kBlockSectorSize, std::byte{0x11});
  BlockIo w = dev.write(SimTime::zero(), 0, 8, in);
  ASSERT_TRUE(w.ok());
  std::vector<std::byte> out(in.size());
  BlockIo r = dev.read(w.complete, 0, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, in);
  EXPECT_EQ(dev.stats().timeouts, 0u);
  EXPECT_EQ(dev.stats().buffer_io_errors, 0u);
}

TEST(OsDeviceTest, HungDriveTimesOutAfterAttemptsTimesTimeout) {
  hdd::Hdd drive(drive_config());
  OsBlockDevice dev(drive, os_config());
  drive.set_excitation(SimTime::zero(), park_tone());
  std::vector<std::byte> out(8 * kBlockSectorSize);
  const BlockIo r = dev.read(SimTime::from_seconds(1), 0, 8, out);
  EXPECT_FALSE(r.ok());
  // 3 attempts x 25 s: the buffer I/O error lands exactly 75 s after
  // submission — the cadence behind the paper's ~80 s crashes.
  EXPECT_NEAR((r.complete - SimTime::from_seconds(1)).seconds(), 75.0,
              1e-6);
  EXPECT_EQ(dev.stats().timeouts, 3u);
  EXPECT_EQ(dev.stats().device_resets, 3u);
  EXPECT_EQ(dev.stats().buffer_io_errors, 1u);
}

TEST(OsDeviceTest, RecoversQuicklyOnceAttackStops) {
  hdd::Hdd drive(drive_config());
  OsBlockDevice dev(drive, os_config());
  drive.set_excitation(SimTime::zero(), park_tone());
  std::vector<std::byte> out(8 * kBlockSectorSize);
  const BlockIo dead = dev.read(SimTime::zero(), 0, 8, out);
  EXPECT_FALSE(dead.ok());
  // Attack ends; the next command completes promptly.
  drive.set_excitation(dead.complete, structure::DriveExcitation{});
  const BlockIo alive = dev.read(dead.complete, 0, 8, out);
  EXPECT_TRUE(alive.ok());
  EXPECT_LT((alive.complete - dead.complete).seconds(), 1.0);
  EXPECT_EQ(dev.stats().buffer_io_errors, 1u);
}

TEST(OsDeviceTest, FlushTimeoutCountsAsError) {
  hdd::Hdd drive(drive_config());
  OsBlockDevice dev(drive, os_config());
  // Park first, then queue cached writes (the electronics still accept
  // them); the flush cannot drain.
  drive.set_excitation(SimTime::zero(), park_tone());
  std::vector<std::byte> in(8 * kBlockSectorSize, std::byte{0x22});
  SimTime t = SimTime::zero();
  for (int i = 0; i < 64; ++i) {
    t = dev.write(t, static_cast<std::uint64_t>(i) * 8, 8, in).complete;
  }
  const BlockIo f = dev.flush(t);
  EXPECT_FALSE(f.ok());
  EXPECT_NEAR((f.complete - t).seconds(), 75.0, 1e-6);
}

TEST(OsDeviceTest, MediaErrorsAreRetriedImmediately) {
  // Moderate vibration + a tiny retry budget: commands fail fast with
  // media errors (not timeouts); the OS retries from the error time and
  // eventually reports a buffer I/O error without any device reset.
  hdd::HddConfig cfg = drive_config();
  cfg.max_media_retries = 2;
  cfg.write_cache_bytes = 4096;  // force the media path immediately
  hdd::Hdd drive(cfg);
  OsBlockDevice dev(drive, os_config());
  // 2.2x the write threshold: p ~ 0.23 per attempt, so a 2-retry budget
  // usually burns out.
  drive.set_excitation(SimTime::zero(),
                       structure::DriveExcitation{650.0, 2200.0, true});
  std::vector<std::byte> in(8 * kBlockSectorSize, std::byte{0x33});
  SimTime t = SimTime::zero();
  std::uint64_t media_error_commands = 0;
  for (int i = 0; i < 40; ++i) {
    const BlockIo io = dev.write(t, static_cast<std::uint64_t>(i) * 8, 8, in);
    t = io.complete;
    if (!io.ok()) ++media_error_commands;
  }
  EXPECT_GT(drive.stats().media_errors, 0u);
  // Failing commands completed far faster than the 75 s timeout path
  // (media error retries are immediate).
  EXPECT_LT(t.seconds(), 60.0);
  EXPECT_EQ(dev.stats().timeouts, 0u);
  EXPECT_EQ(dev.stats().buffer_io_errors, media_error_commands);
}

TEST(OsDeviceTest, TotalSectorsMatchesDrive) {
  hdd::Hdd drive(drive_config());
  OsBlockDevice dev(drive, os_config());
  EXPECT_EQ(dev.total_sectors(), drive.geometry().total_sectors());
}

}  // namespace
}  // namespace deepnote::storage
