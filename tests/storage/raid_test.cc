#include "storage/raid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::Duration;
using sim::SimTime;

std::vector<std::byte> pattern(std::uint32_t sectors, std::uint8_t fill) {
  return std::vector<std::byte>(
      static_cast<std::size_t>(sectors) * kBlockSectorSize,
      static_cast<std::byte>(fill));
}

TEST(Raid1Test, MirrorsWritesToAllMembers) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b});
  auto data = pattern(8, 0x42);
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(a.read(SimTime::zero(), 0, 8, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(b.read(SimTime::zero(), 0, 8, out).ok());
  EXPECT_EQ(out, data);
}

TEST(Raid1Test, SurvivesSingleMemberFailure) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b});
  auto data = pattern(8, 0x17);
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());
  a.set_failing(true);
  // Reads fail over to the healthy mirror.
  std::vector<std::byte> out(data.size());
  const BlockIo r = raid.read(SimTime::zero(), 0, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(raid.stats().read_failovers, 1u);
  // Writes degrade but succeed.
  ASSERT_TRUE(raid.write(SimTime::zero(), 8, 8, data).ok());
  EXPECT_EQ(raid.stats().degraded_writes, 1u);
}

TEST(Raid1Test, DiesWhenAllMembersFail) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b});
  a.set_failing(true);
  b.set_failing(true);
  auto data = pattern(8, 0x01);
  EXPECT_FALSE(raid.write(SimTime::zero(), 0, 8, data).ok());
  std::vector<std::byte> out(data.size());
  EXPECT_FALSE(raid.read(SimTime::zero(), 0, 8, out).ok());
  EXPECT_FALSE(raid.flush(SimTime::zero()).ok());
  EXPECT_GE(raid.stats().failed_ios, 3u);
}

TEST(Raid1Test, WriteLatencyIsSlowestMember) {
  MemDisk fast(1024, Duration::from_micros(10));
  MemDisk slow(1024, Duration::from_micros(500));
  Raid1Device raid({&fast, &slow});
  auto data = pattern(1, 0x02);
  const BlockIo io = raid.write(SimTime::zero(), 0, 1, data);
  EXPECT_EQ((io.complete - SimTime::zero()).micros(), 500.0);
}

TEST(Raid1Test, ExposesSmallestMember) {
  MemDisk a(1024), b(512);
  Raid1Device raid({&a, &b});
  EXPECT_EQ(raid.total_sectors(), 512u);
}

TEST(Raid0Test, StripesAcrossMembersAndRoundTrips) {
  MemDisk a(1024), b(1024);
  Raid0Device raid({&a, &b}, /*chunk_sectors=*/8);
  EXPECT_EQ(raid.total_sectors(), 2048u);
  // Write a large region spanning several chunks, read it back.
  auto data = pattern(64, 0x5a);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i & 0xff);
  }
  ASSERT_TRUE(raid.write(SimTime::zero(), 4, 64, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(raid.read(SimTime::zero(), 4, 64, out).ok());
  EXPECT_EQ(out, data);
  // Both members actually hold data (striping happened).
  EXPECT_GT(a.op_count(), 2u);
  EXPECT_GT(b.op_count(), 2u);
}

TEST(Raid0Test, AnyMemberFailureFailsIo) {
  MemDisk a(1024), b(1024);
  Raid0Device raid({&a, &b}, 8);
  b.set_failing(true);
  auto data = pattern(32, 0x01);
  EXPECT_FALSE(raid.write(SimTime::zero(), 0, 32, data).ok());
}

TEST(Raid1Test, EjectsMemberAfterConsecutiveErrors) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b}, /*eject_after_errors=*/2);
  a.set_failing(true);
  auto data = pattern(8, 0x07);
  // Two failing writes eject member 0.
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());
  ASSERT_TRUE(raid.write(SimTime::zero(), 8, 8, data).ok());
  EXPECT_TRUE(raid.member_failed(0));
  EXPECT_EQ(raid.active_members(), 1u);
  // Further writes no longer touch the dead member.
  const std::uint64_t ops_before = a.op_count();
  ASSERT_TRUE(raid.write(SimTime::zero(), 16, 8, data).ok());
  EXPECT_EQ(a.op_count(), ops_before);
  // Readmission brings it back.
  a.set_failing(false);
  raid.readmit(0);
  EXPECT_EQ(raid.active_members(), 2u);
  ASSERT_TRUE(raid.write(SimTime::zero(), 24, 8, data).ok());
  EXPECT_GT(a.op_count(), ops_before);
}

TEST(Raid0Test, SpansChunkBoundariesAtOddOffsets) {
  MemDisk a(1024), b(1024), c(1024);
  Raid0Device raid({&a, &b, &c}, /*chunk_sectors=*/8);
  // 21 sectors starting mid-chunk at lba 5: crosses three chunk
  // boundaries (5..7 | 8..15 | 16..23 | 24..25) over all three members.
  auto data = pattern(21, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 7 + 3) & 0xff);
  }
  ASSERT_TRUE(raid.write(SimTime::zero(), 5, 21, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(raid.read(SimTime::zero(), 5, 21, out).ok());
  EXPECT_EQ(out, data);

  // Verify the member mapping directly: array chunk k lives on member
  // k % 3 at member chunk k / 3. Chunks 0,1,2,3 hold lbas 5..25.
  struct Extent {
    MemDisk* member;
    std::uint64_t member_lba;  // first member sector of the extent
    std::uint32_t sectors;
    std::size_t data_offset;  // offset into `data`, in sectors
  };
  const std::vector<Extent> extents = {
      {&a, 5, 3, 0},   // array 5..7   -> chunk 0, member 0
      {&b, 0, 8, 3},   // array 8..15  -> chunk 1, member 1
      {&c, 0, 8, 11},  // array 16..23 -> chunk 2, member 2
      {&a, 8, 2, 19},  // array 24..25 -> chunk 3, member 0
  };
  for (const Extent& e : extents) {
    std::vector<std::byte> member_out(
        static_cast<std::size_t>(e.sectors) * kBlockSectorSize);
    ASSERT_TRUE(
        e.member->read(SimTime::zero(), e.member_lba, e.sectors, member_out)
            .ok());
    const std::span<const std::byte> expected(
        data.data() + e.data_offset * kBlockSectorSize, member_out.size());
    EXPECT_TRUE(std::equal(member_out.begin(), member_out.end(),
                           expected.begin(), expected.end()));
  }
}

TEST(Raid0Test, SingleSectorReadsRoundTripEveryOffset) {
  MemDisk a(256), b(256);
  Raid0Device raid({&a, &b}, /*chunk_sectors=*/4);
  auto data = pattern(64, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 64, data).ok());
  std::vector<std::byte> out(kBlockSectorSize);
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(raid.read(SimTime::zero(), lba, 1, out).ok()) << lba;
    const std::span<const std::byte> expected(
        data.data() + lba * kBlockSectorSize, kBlockSectorSize);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), expected.begin(),
                           expected.end()))
        << "sector " << lba;
  }
}

TEST(Raid1Test, ContinuesDegradedServiceAfterEjection) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b}, /*eject_after_errors=*/2);
  auto data = pattern(8, 0x3c);
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());

  // Member 0 dies; two failed reads eject it.
  a.set_failing(true);
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(raid.read(SimTime::zero(), 0, 8, out).ok());
  ASSERT_TRUE(raid.read(SimTime::zero(), 0, 8, out).ok());
  ASSERT_TRUE(raid.member_failed(0));
  ASSERT_EQ(raid.active_members(), 1u);

  // Degraded service: reads skip the ejected member entirely (no
  // failover latency, no commands sent to the dead drive) and writes
  // keep succeeding on the survivor.
  const std::uint64_t dead_ops = a.op_count();
  const std::uint64_t failovers = raid.stats().read_failovers;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(raid.read(SimTime::zero(), 0, 8, out).ok());
    EXPECT_EQ(out, data);
  }
  auto data2 = pattern(8, 0x77);
  ASSERT_TRUE(raid.write(SimTime::zero(), 8, 8, data2).ok());
  ASSERT_TRUE(raid.read(SimTime::zero(), 8, 8, out).ok());
  EXPECT_EQ(out, data2);
  EXPECT_EQ(a.op_count(), dead_ops);
  EXPECT_EQ(raid.stats().read_failovers, failovers);
  ASSERT_TRUE(raid.flush(SimTime::zero()).ok());
}

TEST(RaidTest, InvalidConfigsThrow) {
  EXPECT_THROW(Raid1Device raid({}), std::invalid_argument);
  MemDisk a(64);
  EXPECT_THROW(Raid0Device raid({&a}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::storage
