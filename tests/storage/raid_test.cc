#include "storage/raid.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::Duration;
using sim::SimTime;

std::vector<std::byte> pattern(std::uint32_t sectors, std::uint8_t fill) {
  return std::vector<std::byte>(
      static_cast<std::size_t>(sectors) * kBlockSectorSize,
      static_cast<std::byte>(fill));
}

TEST(Raid1Test, MirrorsWritesToAllMembers) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b});
  auto data = pattern(8, 0x42);
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(a.read(SimTime::zero(), 0, 8, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(b.read(SimTime::zero(), 0, 8, out).ok());
  EXPECT_EQ(out, data);
}

TEST(Raid1Test, SurvivesSingleMemberFailure) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b});
  auto data = pattern(8, 0x17);
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());
  a.set_failing(true);
  // Reads fail over to the healthy mirror.
  std::vector<std::byte> out(data.size());
  const BlockIo r = raid.read(SimTime::zero(), 0, 8, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(raid.stats().read_failovers, 1u);
  // Writes degrade but succeed.
  ASSERT_TRUE(raid.write(SimTime::zero(), 8, 8, data).ok());
  EXPECT_EQ(raid.stats().degraded_writes, 1u);
}

TEST(Raid1Test, DiesWhenAllMembersFail) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b});
  a.set_failing(true);
  b.set_failing(true);
  auto data = pattern(8, 0x01);
  EXPECT_FALSE(raid.write(SimTime::zero(), 0, 8, data).ok());
  std::vector<std::byte> out(data.size());
  EXPECT_FALSE(raid.read(SimTime::zero(), 0, 8, out).ok());
  EXPECT_FALSE(raid.flush(SimTime::zero()).ok());
  EXPECT_GE(raid.stats().failed_ios, 3u);
}

TEST(Raid1Test, WriteLatencyIsSlowestMember) {
  MemDisk fast(1024, Duration::from_micros(10));
  MemDisk slow(1024, Duration::from_micros(500));
  Raid1Device raid({&fast, &slow});
  auto data = pattern(1, 0x02);
  const BlockIo io = raid.write(SimTime::zero(), 0, 1, data);
  EXPECT_EQ((io.complete - SimTime::zero()).micros(), 500.0);
}

TEST(Raid1Test, ExposesSmallestMember) {
  MemDisk a(1024), b(512);
  Raid1Device raid({&a, &b});
  EXPECT_EQ(raid.total_sectors(), 512u);
}

TEST(Raid0Test, StripesAcrossMembersAndRoundTrips) {
  MemDisk a(1024), b(1024);
  Raid0Device raid({&a, &b}, /*chunk_sectors=*/8);
  EXPECT_EQ(raid.total_sectors(), 2048u);
  // Write a large region spanning several chunks, read it back.
  auto data = pattern(64, 0x5a);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i & 0xff);
  }
  ASSERT_TRUE(raid.write(SimTime::zero(), 4, 64, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(raid.read(SimTime::zero(), 4, 64, out).ok());
  EXPECT_EQ(out, data);
  // Both members actually hold data (striping happened).
  EXPECT_GT(a.op_count(), 2u);
  EXPECT_GT(b.op_count(), 2u);
}

TEST(Raid0Test, AnyMemberFailureFailsIo) {
  MemDisk a(1024), b(1024);
  Raid0Device raid({&a, &b}, 8);
  b.set_failing(true);
  auto data = pattern(32, 0x01);
  EXPECT_FALSE(raid.write(SimTime::zero(), 0, 32, data).ok());
}

TEST(Raid1Test, EjectsMemberAfterConsecutiveErrors) {
  MemDisk a(1024), b(1024);
  Raid1Device raid({&a, &b}, /*eject_after_errors=*/2);
  a.set_failing(true);
  auto data = pattern(8, 0x07);
  // Two failing writes eject member 0.
  ASSERT_TRUE(raid.write(SimTime::zero(), 0, 8, data).ok());
  ASSERT_TRUE(raid.write(SimTime::zero(), 8, 8, data).ok());
  EXPECT_TRUE(raid.member_failed(0));
  EXPECT_EQ(raid.active_members(), 1u);
  // Further writes no longer touch the dead member.
  const std::uint64_t ops_before = a.op_count();
  ASSERT_TRUE(raid.write(SimTime::zero(), 16, 8, data).ok());
  EXPECT_EQ(a.op_count(), ops_before);
  // Readmission brings it back.
  a.set_failing(false);
  raid.readmit(0);
  EXPECT_EQ(raid.active_members(), 2u);
  ASSERT_TRUE(raid.write(SimTime::zero(), 24, 8, data).ok());
  EXPECT_GT(a.op_count(), ops_before);
}

TEST(RaidTest, InvalidConfigsThrow) {
  EXPECT_THROW(Raid1Device raid({}), std::invalid_argument);
  MemDisk a(64);
  EXPECT_THROW(Raid0Device raid({&a}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace deepnote::storage
