// Crash-consistency property suite for the flash CoW commit log: every
// (cut, variant) fault schedule — including the interrupted-erase
// variant only erase-block media exercise — must leave a mountable log
// holding the acknowledged state (plus at most the atomic in-flight
// commit). Schedules are pure (seed, index) functions, so any failure
// replays exactly.
#include <gtest/gtest.h>

#include "storage/fault_harness.h"
#include "storage/flash/flash_workload.h"

namespace deepnote::storage {
namespace {

TEST(FlashCrashTest, CommitLogSurvivesEverySchedule) {
  const ExploreReport report =
      explore(flash_commitlog_workload(), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  // The tiny metadata blocks force compactions, so the benign run
  // erases: the erase-interrupt variant is actually enumerated here.
  EXPECT_GT(report.erase_count, 0u)
      << "workload never compacts; erase schedules not exercised";
  EXPECT_EQ(report.schedules_run,
            report.write_count * 4 + report.erase_count);
}

TEST(FlashCrashTest, EraseInterruptSchedulesReplayDeterministically) {
  const WorkloadFactory factory = flash_commitlog_workload();
  const ExploreOptions options;
  // First erase-interrupt schedule: cut at erase 0.
  const std::uint64_t index = 0 * kNumFaultVariants +
                              static_cast<std::uint64_t>(
                                  FaultVariant::kEraseInterrupt);
  FaultSchedule first;
  const CheckResult a =
      replay_schedule(factory, options.seed, index, options.cache_window,
                      &first);
  const CheckResult b =
      replay_schedule(factory, options.seed, index, options.cache_window);
  EXPECT_EQ(first.variant, FaultVariant::kEraseInterrupt);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_TRUE(a.passed) << a.detail;
}

// A bigger commit stream (more compactions, more erase cut points)
// still survives every schedule: the pair-flip window — erase, full
// rewrite, revision bump — is where CoW bugs live.
TEST(FlashCrashTest, CompactionHeavyStreamSurvivesEverySchedule) {
  FlashLogWorkloadOptions options;
  options.commits = 96;
  options.attr_ids = 4;
  const ExploreReport report =
      explore(flash_commitlog_workload(options), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GT(report.erase_count, 4u);
}

}  // namespace
}  // namespace deepnote::storage
