#include "storage/journal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

constexpr std::uint32_t kJournalStart = 1;
constexpr std::uint32_t kJournalBlocks = 64;

std::vector<std::byte> payload_block(std::uint8_t fill) {
  return std::vector<std::byte>(kFsBlockSize, static_cast<std::byte>(fill));
}

JournalBlock make_block(std::uint32_t home, std::uint8_t fill) {
  return JournalBlock{home, payload_block(fill)};
}

std::vector<std::byte> read_home(MemDisk& disk, std::uint32_t block) {
  std::vector<std::byte> out(kFsBlockSize);
  disk.read(SimTime::zero(), static_cast<std::uint64_t>(block) *
                                 kFsSectorsPerBlock,
            kFsSectorsPerBlock, out);
  return out;
}

TEST(JournalTest, CommitThenReplayAppliesHomeWrites) {
  MemDisk disk(4096);
  {
    Journal journal(disk, kJournalStart, kJournalBlocks, 1);
    const JournalResult r = journal.commit(
        SimTime::zero(), {make_block(100, 0xaa), make_block(101, 0xbb)});
    ASSERT_TRUE(r.ok());
  }
  // Home locations untouched before replay.
  EXPECT_EQ(read_home(disk, 100)[0], std::byte{0});
  Journal recovery(disk, kJournalStart, kJournalBlocks, 1);
  std::uint64_t applied = 0;
  const JournalResult r = recovery.replay(SimTime::zero(), &applied);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(read_home(disk, 100), payload_block(0xaa));
  EXPECT_EQ(read_home(disk, 101), payload_block(0xbb));
}

TEST(JournalTest, MultipleTransactionsReplayInOrder) {
  MemDisk disk(4096);
  {
    Journal journal(disk, kJournalStart, kJournalBlocks, 1);
    // Same home block written twice: the later transaction must win.
    ASSERT_TRUE(journal.commit(SimTime::zero(), {make_block(50, 0x01)}).ok());
    ASSERT_TRUE(journal.commit(SimTime::zero(), {make_block(50, 0x02)}).ok());
  }
  Journal recovery(disk, kJournalStart, kJournalBlocks, 1);
  std::uint64_t applied = 0;
  ASSERT_TRUE(recovery.replay(SimTime::zero(), &applied).ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(read_home(disk, 50), payload_block(0x02));
  EXPECT_EQ(recovery.next_sequence(), 3u);
}

TEST(JournalTest, TornCommitIsIgnored) {
  MemDisk disk(4096);
  {
    Journal journal(disk, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(journal.commit(SimTime::zero(), {make_block(60, 0x10)}).ok());
  }
  // Corrupt the commit record of the only transaction (journal block 2:
  // descriptor=0, payload=1, commit=2).
  std::vector<std::byte> garbage(kFsBlockSize, std::byte{0xff});
  disk.write(SimTime::zero(),
             static_cast<std::uint64_t>(kJournalStart + 2) *
                 kFsSectorsPerBlock,
             kFsSectorsPerBlock, garbage);
  Journal recovery(disk, kJournalStart, kJournalBlocks, 1);
  std::uint64_t applied = 0;
  ASSERT_TRUE(recovery.replay(SimTime::zero(), &applied).ok());
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(read_home(disk, 60)[0], std::byte{0});
}

TEST(JournalTest, ChecksumMismatchRejectsTransaction) {
  MemDisk disk(4096);
  {
    Journal journal(disk, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(journal.commit(SimTime::zero(), {make_block(70, 0x33)}).ok());
  }
  // Corrupt the payload copy (journal block 1) but leave the commit block.
  std::vector<std::byte> garbage(kFsBlockSize, std::byte{0x44});
  disk.write(SimTime::zero(),
             static_cast<std::uint64_t>(kJournalStart + 1) *
                 kFsSectorsPerBlock,
             kFsSectorsPerBlock, garbage);
  Journal recovery(disk, kJournalStart, kJournalBlocks, 1);
  std::uint64_t applied = 0;
  ASSERT_TRUE(recovery.replay(SimTime::zero(), &applied).ok());
  EXPECT_EQ(applied, 0u);
}

TEST(JournalTest, AbortsWithMinusFiveOnDeviceError) {
  MemDisk disk(4096);
  Journal journal(disk, kJournalStart, kJournalBlocks, 1);
  disk.set_failing(true);
  const JournalResult r =
      journal.commit(SimTime::zero(), {make_block(80, 0x01)});
  EXPECT_EQ(r.err, Errno::kEIO);
  EXPECT_TRUE(journal.aborted());
  EXPECT_EQ(journal.abort_code(), -5);  // the paper's JBD error code
  // Subsequent commits fail fast even after the device recovers.
  disk.set_failing(false);
  EXPECT_EQ(journal.commit(SimTime::zero(), {make_block(81, 0x02)}).err,
            Errno::kEIO);
}

TEST(JournalTest, WrapsWhenTailRunsOut) {
  MemDisk disk(8192);
  Journal journal(disk, kJournalStart, 16, 1);
  // Each txn consumes 3 blocks (desc + 1 payload + commit): five commits
  // force a wrap in a 16-block journal.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        journal
            .commit(SimTime::zero(),
                    {make_block(200 + static_cast<std::uint32_t>(i),
                                static_cast<std::uint8_t>(i))})
            .ok())
        << i;
  }
  EXPECT_EQ(journal.next_sequence(), 7u);
}

TEST(JournalTest, ClearEmptiesJournal) {
  MemDisk disk(4096);
  Journal journal(disk, kJournalStart, kJournalBlocks, 1);
  ASSERT_TRUE(journal.commit(SimTime::zero(), {make_block(90, 0x77)}).ok());
  ASSERT_TRUE(journal.clear(SimTime::zero()).ok());
  Journal recovery(disk, kJournalStart, kJournalBlocks, 1);
  std::uint64_t applied = 0;
  ASSERT_TRUE(recovery.replay(SimTime::zero(), &applied).ok());
  EXPECT_EQ(applied, 0u);
}

TEST(JournalTest, EmptyCommitIsNoop) {
  MemDisk disk(4096);
  Journal journal(disk, kJournalStart, kJournalBlocks, 1);
  const JournalResult r = journal.commit(SimTime::zero(), {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(journal.next_sequence(), 1u);
}

TEST(JournalTest, OversizedTransactionThrows) {
  MemDisk disk(4096);
  Journal journal(disk, kJournalStart, 8, 1);
  std::vector<JournalBlock> blocks;
  for (std::uint32_t i = 0; i < 10; ++i) blocks.push_back(make_block(i, 1));
  EXPECT_THROW(journal.commit(SimTime::zero(), blocks),
               std::invalid_argument);
}

TEST(JournalTest, SequencePersistsAcrossCommits) {
  MemDisk disk(4096);
  Journal journal(disk, kJournalStart, kJournalBlocks, 41);
  ASSERT_TRUE(journal.commit(SimTime::zero(), {make_block(10, 1)}).ok());
  EXPECT_EQ(journal.next_sequence(), 42u);
}

}  // namespace
}  // namespace deepnote::storage
