#include "storage/kvdb/sstable.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/rng.h"
#include "storage/kvdb/bloom.h"
#include "storage/mem_disk.h"

namespace deepnote::storage::kvdb {
namespace {

using sim::SimTime;

// ---------------------------------------------------------------------------
// Bloom filter

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) bloom.add("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.may_contain("key" + std::to_string(i))) << i;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) bloom.add("key" + std::to_string(i));
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.may_contain("absent" + std::to_string(i))) ++fp;
  }
  // 10 bits/key: ~1% expected; allow 3%.
  EXPECT_LT(fp, 300);
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter bloom(100);
  for (int i = 0; i < 100; ++i) bloom.add("x" + std::to_string(i));
  const auto bytes = bloom.serialize();
  const BloomFilter restored =
      BloomFilter::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(restored.num_probes(), bloom.num_probes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(restored.may_contain("x" + std::to_string(i)));
  }
}

// ---------------------------------------------------------------------------
// SST build + read

struct SstFixture {
  MemDisk disk{(256ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  SimTime t = SimTime::zero();

  SstFixture() {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    t = mount.done;
  }
};

MemEntry put_entry(std::string value, std::uint64_t seq) {
  MemEntry e;
  e.type = EntryType::kPut;
  e.sequence = seq;
  e.value = std::move(value);
  return e;
}

TEST(SstTest, BuildWriteOpenGet) {
  SstFixture fx;
  SstBuilder builder(100);
  // Internal order: ascending user key.
  for (int i = 100; i < 200; ++i) {
    builder.add("key" + std::to_string(i),
                put_entry("val" + std::to_string(i), 10));
  }
  ASSERT_TRUE(builder.write_to(*fx.fs, fx.t, "/test.sst").ok());
  auto open = SstReader::open(*fx.fs, fx.t, "/test.sst");
  ASSERT_TRUE(open.ok());
  SstReader& sst = *open.reader;
  EXPECT_EQ(sst.entry_count(), 100u);
  EXPECT_EQ(sst.smallest(), "key100");
  EXPECT_EQ(sst.largest(), "key199");
  EXPECT_EQ(sst.max_sequence(), 10u);

  auto g = sst.get(fx.t, "key150");
  EXPECT_EQ(g.state, LookupState::kFound);
  EXPECT_EQ(g.value, "val150");
  g = sst.get(fx.t, "key999");
  EXPECT_EQ(g.state, LookupState::kMissing);
  g = sst.get(fx.t, "aaa");  // below smallest
  EXPECT_EQ(g.state, LookupState::kMissing);
}

TEST(SstTest, TombstonesComeBackAsDeleted) {
  SstFixture fx;
  SstBuilder builder(10);
  MemEntry dead;
  dead.type = EntryType::kDelete;
  dead.sequence = 5;
  builder.add("gone", dead);
  builder.add("here", put_entry("v", 4));
  ASSERT_TRUE(builder.write_to(*fx.fs, fx.t, "/t.sst").ok());
  auto open = SstReader::open(*fx.fs, fx.t, "/t.sst");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.reader->get(fx.t, "gone").state, LookupState::kDeleted);
  EXPECT_EQ(open.reader->get(fx.t, "here").state, LookupState::kFound);
}

TEST(SstTest, MultiBlockFilesUseIndex) {
  SstFixture fx;
  SstBuilder builder(5000);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    const std::string value(100, static_cast<char>('a' + i % 26));
    builder.add(key, put_entry(value, 1));
    model[key] = value;
  }
  ASSERT_TRUE(builder.write_to(*fx.fs, fx.t, "/big.sst").ok());
  auto open = SstReader::open(*fx.fs, fx.t, "/big.sst");
  ASSERT_TRUE(open.ok());
  sim::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d",
                  static_cast<int>(rng.uniform_int(0, 4999)));
    auto g = open.reader->get(fx.t, key);
    ASSERT_EQ(g.state, LookupState::kFound) << key;
    EXPECT_EQ(g.value, model[key]);
  }
}

TEST(SstTest, ScanVisitsAllEntriesInOrder) {
  SstFixture fx;
  SstBuilder builder(1000);
  for (int i = 0; i < 1000; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%05d", i);
    builder.add(key, put_entry(std::to_string(i), 2));
  }
  ASSERT_TRUE(builder.write_to(*fx.fs, fx.t, "/scan.sst").ok());
  auto open = SstReader::open(*fx.fs, fx.t, "/scan.sst");
  ASSERT_TRUE(open.ok());
  int count = 0;
  std::string prev;
  auto r = open.reader->scan(fx.t, [&](std::string_view key,
                                       const MemEntry& e) {
    EXPECT_GE(std::string(key), prev);
    EXPECT_EQ(e.value, std::to_string(count));
    prev = std::string(key);
    ++count;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count, 1000);
}

TEST(SstTest, OpenRejectsGarbage) {
  SstFixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/junk.sst", &ino).done;
  std::vector<std::byte> junk(200, std::byte{0x5a});
  fx.t = fx.fs->write(fx.t, ino, 0, junk).done;
  auto open = SstReader::open(*fx.fs, fx.t, "/junk.sst");
  EXPECT_FALSE(open.ok());
  EXPECT_EQ(open.reader, nullptr);
}

TEST(SstTest, OpenMissingFileFails) {
  SstFixture fx;
  auto open = SstReader::open(*fx.fs, fx.t, "/nope.sst");
  EXPECT_EQ(open.err, Errno::kENOENT);
}

}  // namespace
}  // namespace deepnote::storage::kvdb
