#include "storage/faulty_disk.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

std::vector<std::byte> pattern(std::size_t sectors, std::uint8_t fill) {
  return std::vector<std::byte>(sectors * kBlockSectorSize,
                                static_cast<std::byte>(fill));
}

std::vector<std::byte> read_back(BlockDevice& dev, std::uint64_t lba,
                                 std::uint32_t sectors) {
  std::vector<std::byte> out(sectors * kBlockSectorSize);
  EXPECT_TRUE(dev.read(SimTime::zero(), lba, sectors, out).ok());
  return out;
}

TEST(FaultyDiskTest, BenignPlanPassesThrough) {
  MemDisk inner(256);
  FaultyDisk disk(inner);
  const auto data = pattern(4, 0x5a);
  ASSERT_TRUE(disk.write(SimTime::zero(), 8, 4, data).ok());
  ASSERT_TRUE(disk.flush(SimTime::zero()).ok());
  EXPECT_EQ(read_back(disk, 8, 4), data);
  EXPECT_EQ(read_back(inner, 8, 4), data);  // written through
  EXPECT_EQ(disk.writes_seen(), 1u);
  EXPECT_FALSE(disk.dead());
}

TEST(FaultyDiskTest, CutAtWriteKillsTheDevice) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.cut_at_write = 1;
  FaultyDisk disk(inner, plan);

  ASSERT_TRUE(disk.write(SimTime::zero(), 0, 1, pattern(1, 0x01)).ok());
  // Write 1 is the cut: it fails, nothing persists, the device dies.
  EXPECT_FALSE(disk.write(SimTime::zero(), 8, 1, pattern(1, 0x02)).ok());
  EXPECT_TRUE(disk.dead());
  std::vector<std::byte> buf(kBlockSectorSize);
  EXPECT_FALSE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  EXPECT_FALSE(disk.flush(SimTime::zero()).ok());
  // Durable state: write 0 only.
  EXPECT_EQ(read_back(inner, 0, 1), pattern(1, 0x01));
  EXPECT_EQ(read_back(inner, 8, 1), pattern(1, 0x00));
  ASSERT_TRUE(disk.first_failure().has_value());
  EXPECT_EQ(disk.first_failure()->kind, DiskOpKind::kWrite);
  EXPECT_EQ(disk.first_failure()->lba, 8u);
}

TEST(FaultyDiskTest, ReviveClearsDeathButNotDurableState) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.cut_at_write = 0;
  FaultyDisk disk(inner, plan);
  EXPECT_FALSE(disk.write(SimTime::zero(), 0, 1, pattern(1, 0xaa)).ok());
  EXPECT_TRUE(disk.dead());
  disk.revive();
  EXPECT_FALSE(disk.dead());
  ASSERT_TRUE(disk.write(SimTime::zero(), 0, 1, pattern(1, 0xbb)).ok());
  EXPECT_EQ(read_back(disk, 0, 1), pattern(1, 0xbb));
}

TEST(FaultyDiskTest, TornWritePersistsSectorPrefix) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.seed = 42;
  plan.cut_at_write = 0;
  plan.tear_cut_write = true;
  FaultyDisk disk(inner, plan);

  const auto data = pattern(8, 0x77);
  EXPECT_FALSE(disk.write(SimTime::zero(), 16, 8, data).ok());
  EXPECT_TRUE(disk.dead());
  // Some strict sector prefix persisted; the rest still zero.
  const auto got = read_back(inner, 16, 8);
  std::size_t persisted = 0;
  while (persisted < 8 &&
         got[persisted * kBlockSectorSize] == std::byte{0x77}) {
    ++persisted;
  }
  EXPECT_GE(persisted, 1u);
  EXPECT_LT(persisted, 8u);
  for (std::size_t s = persisted; s < 8; ++s) {
    EXPECT_EQ(got[s * kBlockSectorSize], std::byte{0x00});
  }
  // Deterministic: same plan seed, same prefix.
  MemDisk inner2(256);
  FaultyDisk disk2(inner2, plan);
  EXPECT_FALSE(disk2.write(SimTime::zero(), 16, 8, data).ok());
  EXPECT_EQ(read_back(inner2, 16, 8), got);
}

TEST(FaultyDiskTest, SingleSectorCutWriteCannotTear) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.cut_at_write = 0;
  plan.tear_cut_write = true;
  FaultyDisk disk(inner, plan);
  EXPECT_FALSE(disk.write(SimTime::zero(), 4, 1, pattern(1, 0x99)).ok());
  // A 1-sector write has no interior boundary: all or nothing (nothing).
  EXPECT_EQ(read_back(inner, 4, 1), pattern(1, 0x00));
}

TEST(FaultyDiskTest, CacheHoldsWritesUntilFlush) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.cache_window = 4;
  FaultyDisk disk(inner, plan);

  const auto data = pattern(2, 0x33);
  ASSERT_TRUE(disk.write(SimTime::zero(), 8, 2, data).ok());
  // Read-your-writes through the cache, but the device has nothing yet.
  EXPECT_EQ(read_back(disk, 8, 2), data);
  EXPECT_EQ(read_back(inner, 8, 2), pattern(2, 0x00));
  ASSERT_TRUE(disk.flush(SimTime::zero()).ok());
  EXPECT_EQ(read_back(inner, 8, 2), data);
}

TEST(FaultyDiskTest, CacheOverlayNewestWinsOnOverlap) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.cache_window = 8;
  FaultyDisk disk(inner, plan);
  ASSERT_TRUE(disk.write(SimTime::zero(), 8, 4, pattern(4, 0x11)).ok());
  ASSERT_TRUE(disk.write(SimTime::zero(), 10, 1, pattern(1, 0x22)).ok());
  const auto got = read_back(disk, 8, 4);
  EXPECT_EQ(got[0 * kBlockSectorSize], std::byte{0x11});
  EXPECT_EQ(got[1 * kBlockSectorSize], std::byte{0x11});
  EXPECT_EQ(got[2 * kBlockSectorSize], std::byte{0x22});
  EXPECT_EQ(got[3 * kBlockSectorSize], std::byte{0x11});
}

TEST(FaultyDiskTest, CacheOverflowDrainsOldestEntries) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.cache_window = 2;
  FaultyDisk disk(inner, plan);
  ASSERT_TRUE(disk.write(SimTime::zero(), 0, 1, pattern(1, 0x01)).ok());
  ASSERT_TRUE(disk.write(SimTime::zero(), 1, 1, pattern(1, 0x02)).ok());
  ASSERT_TRUE(disk.write(SimTime::zero(), 2, 1, pattern(1, 0x03)).ok());
  // Window of 2: the oldest write was forced through.
  EXPECT_EQ(read_back(inner, 0, 1), pattern(1, 0x01));
  EXPECT_EQ(read_back(inner, 2, 1), pattern(1, 0x00));
}

TEST(FaultyDiskTest, CutUnderCachePersistsSeededSubset) {
  // With a cut under an 8-deep cache, only a seeded subset of the cached
  // writes persists. Across seeds we should see different subsets, and
  // the same seed must reproduce the same subset.
  const auto run_once = [](std::uint64_t seed) {
    MemDisk inner(256);
    FaultPlan plan;
    plan.seed = seed;
    plan.cache_window = 8;
    plan.cut_at_write = 6;
    FaultyDisk disk(inner, plan);
    for (std::uint32_t w = 0; w < 7; ++w) {
      disk.write(SimTime::zero(), w, 1,
                 pattern(1, static_cast<std::uint8_t>(w + 1)));
    }
    EXPECT_TRUE(disk.dead());
    std::vector<bool> survived(6);
    for (std::uint32_t w = 0; w < 6; ++w) {
      survived[w] = read_back(inner, w, 1)[0] != std::byte{0x00};
    }
    return survived;
  };
  const auto a1 = run_once(1);
  const auto a2 = run_once(1);
  EXPECT_EQ(a1, a2) << "same seed must persist the same subset";
  bool any_diff = false;
  for (std::uint64_t s = 2; s < 12 && !any_diff; ++s) {
    any_diff = run_once(s) != a1;
  }
  EXPECT_TRUE(any_diff) << "different seeds should vary the subset";
}

TEST(FaultyDiskTest, EioBurstIsTransient) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.eio_start = 1;
  plan.eio_len = 2;
  plan.eio_ops = fault_ops::kWrites;
  FaultyDisk disk(inner, plan);
  EXPECT_TRUE(disk.write(SimTime::zero(), 0, 1, pattern(1, 1)).ok());
  EXPECT_FALSE(disk.write(SimTime::zero(), 1, 1, pattern(1, 2)).ok());
  EXPECT_FALSE(disk.write(SimTime::zero(), 2, 1, pattern(1, 3)).ok());
  EXPECT_TRUE(disk.write(SimTime::zero(), 3, 1, pattern(1, 4)).ok());
  EXPECT_FALSE(disk.dead());
  // Reads were never in the op mask.
  std::vector<std::byte> buf(kBlockSectorSize);
  EXPECT_TRUE(disk.read(SimTime::zero(), 0, 1, buf).ok());
  // Failed writes did not persist.
  EXPECT_EQ(read_back(inner, 1, 1), pattern(1, 0x00));
}

TEST(FaultyDiskTest, EioBurstRepeatsWithPeriod) {
  MemDisk inner(256);
  FaultPlan plan;
  plan.eio_start = 0;
  plan.eio_len = 1;
  plan.eio_period = 3;  // fail op 0, 3, 6, ... of the matching kind
  plan.eio_ops = fault_ops::kWrites;
  FaultyDisk disk(inner, plan);
  for (std::uint32_t w = 0; w < 9; ++w) {
    const bool ok = disk.write(SimTime::zero(), w, 1, pattern(1, 1)).ok();
    EXPECT_EQ(ok, w % 3 != 0) << "write " << w;
  }
}

}  // namespace
}  // namespace deepnote::storage
