#include "storage/kvdb/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/mem_disk.h"

namespace deepnote::storage::kvdb {
namespace {

using sim::SimTime;

struct WalFixture {
  MemDisk disk{(64ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  SimTime t = SimTime::zero();

  WalFixture() {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    t = mount.done;
  }
};

struct Record {
  EntryType type;
  std::string key;
  std::string value;
  std::uint64_t seq;
};

std::vector<Record> replay_all(ExtFs& fs, SimTime t, std::string_view path) {
  std::vector<Record> out;
  Wal::replay(fs, t, path,
              [&](EntryType type, std::string_view key,
                  std::string_view value, std::uint64_t seq) {
                out.push_back(Record{type, std::string(key),
                                     std::string(value), seq});
              });
  return out;
}

TEST(WalTest, AppendAndReplay) {
  WalFixture fx;
  auto wal = Wal::create(*fx.fs, fx.t, "/test.wal");
  ASSERT_TRUE(wal.ok());
  fx.t = wal.done;
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "alpha", "1", 10).done;
  fx.t = wal.wal->append(fx.t, EntryType::kDelete, "beta", "", 11).done;
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "gamma", "3", 12).done;

  const auto records = replay_all(*fx.fs, fx.t, "/test.wal");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "alpha");
  EXPECT_EQ(records[0].value, "1");
  EXPECT_EQ(records[0].seq, 10u);
  EXPECT_EQ(records[1].type, EntryType::kDelete);
  EXPECT_EQ(records[2].key, "gamma");
}

TEST(WalTest, ReplayStopsAtTornTail) {
  WalFixture fx;
  auto wal = Wal::create(*fx.fs, fx.t, "/torn.wal");
  ASSERT_TRUE(wal.ok());
  fx.t = wal.done;
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "good", "1", 1).done;
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "alsogood", "2", 2).done;
  const std::uint64_t valid_bytes = wal.wal->bytes_appended();
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "lost", "3", 3).done;

  // Truncate mid-record (simulating a crash torn write).
  auto lr = fx.fs->lookup(fx.t, "/torn.wal");
  ASSERT_TRUE(lr.ok());
  ASSERT_TRUE(fx.fs->truncate(fx.t, lr.inode, valid_bytes + 7).ok());

  const auto records = replay_all(*fx.fs, fx.t, "/torn.wal");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].key, "alsogood");
}

TEST(WalTest, CorruptRecordStopsReplay) {
  WalFixture fx;
  auto wal = Wal::create(*fx.fs, fx.t, "/corrupt.wal");
  ASSERT_TRUE(wal.ok());
  fx.t = wal.done;
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "first", "1", 1).done;
  const std::uint64_t first_end = wal.wal->bytes_appended();
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "second", "2", 2).done;
  // Flip a byte inside the second record's payload.
  auto lr = fx.fs->lookup(fx.t, "/corrupt.wal");
  std::vector<std::byte> evil{std::byte{0xff}};
  fx.t = fx.fs->write(fx.t, lr.inode, first_end + 6, evil).done;

  const auto records = replay_all(*fx.fs, fx.t, "/corrupt.wal");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "first");
}

TEST(WalTest, EmptyWalReplaysNothing) {
  WalFixture fx;
  auto wal = Wal::create(*fx.fs, fx.t, "/empty.wal");
  ASSERT_TRUE(wal.ok());
  const auto records = replay_all(*fx.fs, wal.done, "/empty.wal");
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, SyncPersistsThroughFsCrash) {
  WalFixture fx;
  auto wal = Wal::create(*fx.fs, fx.t, "/sync.wal");
  ASSERT_TRUE(wal.ok());
  fx.t = wal.done;
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "durable", "yes", 1).done;
  auto sr = wal.wal->sync(fx.t);
  ASSERT_TRUE(sr.ok());
  fx.t = sr.done;
  // Remount (as after a crash; MemDisk has no volatile cache so sync is
  // enough) and replay.
  ASSERT_TRUE(fx.fs->unmount(fx.t).ok());
  auto mount = ExtFs::mount(fx.disk, fx.t);
  ASSERT_TRUE(mount.ok());
  const auto records = replay_all(*mount.fs, mount.done, "/sync.wal");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "durable");
}

TEST(WalTest, LargeValuesRoundTrip) {
  WalFixture fx;
  auto wal = Wal::create(*fx.fs, fx.t, "/big.wal");
  ASSERT_TRUE(wal.ok());
  fx.t = wal.done;
  const std::string big(100000, 'B');
  fx.t = wal.wal->append(fx.t, EntryType::kPut, "big", big, 1).done;
  const auto records = replay_all(*fx.fs, fx.t, "/big.wal");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].value, big);
}

}  // namespace
}  // namespace deepnote::storage::kvdb
