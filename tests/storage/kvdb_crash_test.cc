// Crash-consistency property tests for the LSM store on the full stack
// (extfs on the HDD model, volatile write cache included).
//
// Property: after a random power cut, reopening the store recovers every
// write acknowledged BEFORE the last successful durability point (WAL
// sync / flush), and never returns a value that was never written.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "hdd/drive.h"
#include "sim/rng.h"
#include "storage/extfs.h"
#include "storage/kvdb/db.h"
#include "storage/os_device.h"

namespace deepnote::storage::kvdb {
namespace {

using sim::SimTime;

hdd::HddConfig small_drive(std::uint64_t seed) {
  hdd::HddConfig cfg;
  cfg.geometry = hdd::Geometry(
      2, 7200.0, 100.0,
      {hdd::Zone{0, 512, 512}, hdd::Zone{0, 512, 384}});  // ~450 MiB
  cfg.servo.false_trip_max_hz = 0.0;
  cfg.rng_seed = seed;
  return cfg;
}

class KvdbCrashTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvdbCrashTest, DurablePrefixSurvivesPowerCut) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  hdd::Hdd drive(small_drive(seed));
  OsBlockDevice dev(drive);

  SimTime t = SimTime::zero();
  MkfsOptions mkfs;
  mkfs.journal_blocks = 128;
  ASSERT_TRUE(ExtFs::mkfs(dev, t, mkfs).ok());

  std::map<std::string, std::string> model;        // everything written
  std::map<std::string, std::string> durable;      // state at last sync
  SimTime crash_time;
  {
    auto mount = ExtFs::mount(dev, t);
    ASSERT_TRUE(mount.ok());
    DbConfig cfg;
    cfg.write_buffer_bytes = 128 << 10;
    auto open = Db::open(*mount.fs, mount.done, cfg);
    ASSERT_TRUE(open.ok());
    Db& db = *open.db;
    t = open.done;

    const int ops = 200 + static_cast<int>(rng.uniform_int(0, 400));
    const int crash_at = static_cast<int>(rng.uniform_int(50, ops - 1));
    for (int op = 0; op < ops; ++op) {
      if (op == crash_at) break;
      const std::string key =
          "k" + std::to_string(rng.uniform_int(0, 100));
      const std::string value = "v" + std::to_string(op);
      auto r = db.put(t, key, value);
      if (r.err == Errno::kEAGAIN || db.flush_pending()) {
        auto fr = db.do_flush(t);
        ASSERT_TRUE(fr.ok());
        t = fr.done;
        if (r.err == Errno::kEAGAIN) {
          --op;
          continue;
        }
      }
      ASSERT_TRUE(r.ok());
      t = r.done;
      model[key] = value;
      // Periodic explicit durability point: flush + fs sync.
      if (rng.bernoulli(0.05)) {
        auto fr = db.flush(t);
        ASSERT_TRUE(fr.ok());
        auto sr = mount.fs->sync(fr.done);
        ASSERT_TRUE(sr.ok());
        t = sr.done;
        durable = model;
      }
    }
    crash_time = t;
    drive.power_cut();
  }

  // Recovery on the same device contents.
  auto mount = ExtFs::mount(dev, crash_time);
  ASSERT_TRUE(mount.ok()) << "remount failed (seed " << seed << ")";
  DbConfig cfg;
  cfg.write_buffer_bytes = 128 << 10;
  auto open = Db::open(*mount.fs, mount.done, cfg);
  ASSERT_TRUE(open.ok()) << "db reopen failed (seed " << seed << ")";
  Db& db = *open.db;
  SimTime t2 = open.done;

  // 1. Every durable key/value must be present with a value at least as
  //    new as the durable one (later writes may also have survived).
  for (const auto& [key, value] : durable) {
    auto g = db.get(t2, key);
    ASSERT_TRUE(g.ok());
    t2 = g.done;
    ASSERT_TRUE(g.found) << "durable key lost: " << key << " (seed "
                         << seed << ")";
    // The recovered value is the durable one or any later write of the
    // same key from the model.
    EXPECT_TRUE(g.value == value || model.at(key) == g.value)
        << key << " -> " << g.value;
  }
  // 2. No phantom values: anything found must match some write we made.
  for (int i = 0; i <= 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto g = db.get(t2, key);
    ASSERT_TRUE(g.ok());
    t2 = g.done;
    if (g.found) {
      auto it = model.find(key);
      ASSERT_NE(it, model.end()) << "phantom key " << key;
      EXPECT_EQ(g.value.substr(0, 1), "v");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvdbCrashTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace deepnote::storage::kvdb
