// Crash-consistency exploration for the LSM store on extfs.
//
// Property: after ANY fault schedule — clean power cut at every write
// boundary, torn writes, write-cache reordering, transient EIO bursts —
// reopening the store recovers every key acknowledged before the last
// successful durability point (Db::flush + ExtFs::sync), every visible
// value passes its embedded checksum, and SSTs + filesystem fsck clean.
//
// All schedules run through the fault harness (storage/fault_harness.h)
// and replay from (seed, index); the workload oracle lives in
// storage/fault_workloads.cc.
#include <gtest/gtest.h>

#include "storage/fault_harness.h"
#include "storage/fault_workloads.h"

namespace deepnote::storage {
namespace {

KvdbWorkloadOptions quick_options(std::uint64_t seed) {
  KvdbWorkloadOptions opt;
  opt.keys = 12;
  opt.puts = 30;
  opt.barrier_every = 8;
  opt.workload_seed = seed;
  return opt;
}

TEST(KvdbCrashTest, DurablePrefixSurvivesEveryFaultSchedule) {
  const ExploreReport report =
      explore(kvdb_workload(quick_options(0x4b5eedull)), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GT(report.write_count, 0u);
}

// Frequent barriers make almost every put durably acknowledged — the
// strictest version of the oracle (any lost ack is a failure).
TEST(KvdbCrashTest, TightBarrierCadenceSurvivesEverySchedule) {
  KvdbWorkloadOptions opt = quick_options(0x4b5eedull);
  opt.puts = 20;
  opt.barrier_every = 2;
  const ExploreReport report =
      explore(kvdb_workload(opt), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
}

class KvdbCrashSeedTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(KvdbCrashSeedTest, DurablePrefixSurvivesRandomizedDraws) {
  ExploreOptions options;
  options.seed = GetParam();
  const ExploreReport report =
      explore(kvdb_workload(quick_options(GetParam())), options);
  EXPECT_TRUE(report.passed())
      << report.summary() << " (base seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvdbCrashSeedTest,
                         ::testing::Range<std::uint64_t>(1, 5));

}  // namespace
}  // namespace deepnote::storage
