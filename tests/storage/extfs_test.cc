#include "storage/extfs.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/rng.h"
#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

constexpr std::uint64_t kDiskSectors = (256ull << 20) / 512;  // 256 MiB

struct Fixture {
  MemDisk disk{kDiskSectors};
  std::unique_ptr<ExtFs> fs;
  sim::SimTime t = SimTime::zero();

  Fixture() {
    auto mk = ExtFs::mkfs(disk, t);
    EXPECT_TRUE(mk.ok());
    auto mount = ExtFs::mount(disk, mk.done);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    t = mount.done;
  }
};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(std::span<const std::byte> v, std::size_t n) {
  return std::string(reinterpret_cast<const char*>(v.data()), n);
}

TEST(ExtFsTest, MkfsThenMountIsCleanAndEmpty) {
  Fixture fx;
  EXPECT_FALSE(fx.fs->read_only());
  EXPECT_EQ(fx.fs->error_code(), 0);
  auto rd = fx.fs->readdir(fx.t, "/");
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(rd.entries.empty());
  EXPECT_GT(fx.fs->free_blocks(), 0u);
  EXPECT_GT(fx.fs->free_inodes(), 0u);
}

TEST(ExtFsTest, CreateLookupStat) {
  Fixture fx;
  std::uint32_t ino = 0;
  auto cr = fx.fs->create(fx.t, "/hello.txt", &ino);
  ASSERT_TRUE(cr.ok());
  EXPECT_NE(ino, 0u);
  auto lr = fx.fs->lookup(cr.done, "/hello.txt");
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(lr.inode, ino);
  auto st = fx.fs->stat(lr.done, ino);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.kind, InodeKind::kFile);
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(st.link_count, 1);
}

TEST(ExtFsTest, DuplicateCreateFails) {
  Fixture fx;
  ASSERT_TRUE(fx.fs->create(fx.t, "/a").ok());
  EXPECT_EQ(fx.fs->create(fx.t, "/a").err, Errno::kEEXIST);
}

TEST(ExtFsTest, LookupMissingIsEnoent) {
  Fixture fx;
  EXPECT_EQ(fx.fs->lookup(fx.t, "/nope").err, Errno::kENOENT);
}

TEST(ExtFsTest, WriteReadRoundTrip) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/data", &ino).done;
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  auto wr = fx.fs->write(fx.t, ino, 0, bytes_of(msg));
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ(wr.bytes, msg.size());
  std::vector<std::byte> out(msg.size());
  auto rr = fx.fs->read(wr.done, ino, 0, out);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr.bytes, msg.size());
  EXPECT_EQ(string_of(out, msg.size()), msg);
}

TEST(ExtFsTest, WriteAtOffsetAndSparseHoleReadsZero) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/sparse", &ino).done;
  const std::uint64_t offset = 3 * kFsBlockSize + 100;
  auto wr = fx.fs->write(fx.t, ino, offset, bytes_of("X"));
  ASSERT_TRUE(wr.ok());
  auto st = fx.fs->stat(wr.done, ino);
  EXPECT_EQ(st.size, offset + 1);
  // The hole reads as zeroes.
  std::vector<std::byte> out(10, std::byte{0xff});
  auto rr = fx.fs->read(st.done, ino, 0, out);
  ASSERT_TRUE(rr.ok());
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  // The written byte survives.
  std::vector<std::byte> one(1);
  rr = fx.fs->read(rr.done, ino, offset, one);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(string_of(one, 1), "X");
}

TEST(ExtFsTest, ReadPastEofReturnsShort) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/f", &ino).done;
  fx.t = fx.fs->write(fx.t, ino, 0, bytes_of("abc")).done;
  std::vector<std::byte> out(100);
  auto rr = fx.fs->read(fx.t, ino, 0, out);
  EXPECT_EQ(rr.bytes, 3u);
  rr = fx.fs->read(fx.t, ino, 50, out);
  EXPECT_EQ(rr.bytes, 0u);
}

TEST(ExtFsTest, LargeFileThroughIndirectBlocks) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/big", &ino).done;
  // 1 MiB: beyond the 12 direct blocks (48 KiB) into the indirect range.
  const std::size_t kSize = 1 << 20;
  std::vector<std::byte> data(kSize);
  sim::Rng rng(9);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  auto wr = fx.fs->write(fx.t, ino, 0, data);
  ASSERT_TRUE(wr.ok());
  // Push it out and read back through the device.
  auto sy = fx.fs->sync(wr.done);
  ASSERT_TRUE(sy.ok());
  std::vector<std::byte> out(kSize);
  auto rr = fx.fs->read(sy.done, ino, 0, out);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(out, data);
}

TEST(ExtFsTest, VeryLargeFileThroughDoubleIndirect) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/huge", &ino).done;
  // Offset beyond direct (48 KiB) + single indirect (4 MiB).
  const std::uint64_t offset = (12ull + kPtrsPerBlock + 5) * kFsBlockSize;
  auto wr = fx.fs->write(fx.t, ino, offset, bytes_of("deep"));
  ASSERT_TRUE(wr.ok());
  ASSERT_TRUE(fx.fs->sync(wr.done).ok());
  std::vector<std::byte> out(4);
  auto rr = fx.fs->read(fx.t, ino, offset, out);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(string_of(out, 4), "deep");
}

TEST(ExtFsTest, MkdirAndNestedPaths) {
  Fixture fx;
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/a").ok());
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/a/b").ok());
  ASSERT_TRUE(fx.fs->create(fx.t, "/a/b/c.txt").ok());
  auto lr = fx.fs->lookup(fx.t, "/a/b/c.txt");
  EXPECT_TRUE(lr.ok());
  // Not a directory: path through a file fails.
  EXPECT_EQ(fx.fs->create(fx.t, "/a/b/c.txt/d").err, Errno::kENOTDIR);
  // Missing intermediate.
  EXPECT_EQ(fx.fs->create(fx.t, "/a/x/y").err, Errno::kENOENT);
}

TEST(ExtFsTest, ReaddirListsEntries) {
  Fixture fx;
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/dir").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        fx.fs->create(fx.t, "/dir/f" + std::to_string(i)).ok());
  }
  auto rd = fx.fs->readdir(fx.t, "/dir");
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd.entries.size(), 10u);
  for (const auto& e : rd.entries) {
    EXPECT_EQ(e.kind, InodeKind::kFile);
    EXPECT_EQ(e.name.substr(0, 1), "f");
  }
}

TEST(ExtFsTest, ManyFilesInOneDirectorySpillDirBlocks) {
  Fixture fx;
  // 64 dirents per block: 200 files need several directory blocks.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fx.fs->create(fx.t, "/file" + std::to_string(i)).ok())
        << i;
  }
  auto rd = fx.fs->readdir(fx.t, "/");
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd.entries.size(), 200u);
}

TEST(ExtFsTest, UnlinkFreesSpace) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/victim", &ino).done;
  // Measured after create: the root directory block stays allocated.
  const std::uint64_t free_before = fx.fs->free_blocks();
  std::vector<std::byte> data(64 * kFsBlockSize, std::byte{1});
  fx.t = fx.fs->write(fx.t, ino, 0, data).done;
  ASSERT_TRUE(fx.fs->sync(fx.t).ok());
  EXPECT_LT(fx.fs->free_blocks(), free_before);
  ASSERT_TRUE(fx.fs->unlink(fx.t, "/victim").ok());
  EXPECT_EQ(fx.fs->free_blocks(), free_before);
  EXPECT_EQ(fx.fs->lookup(fx.t, "/victim").err, Errno::kENOENT);
}

TEST(ExtFsTest, UnlinkNonEmptyDirectoryFails) {
  Fixture fx;
  ASSERT_TRUE(fx.fs->mkdir(fx.t, "/d").ok());
  ASSERT_TRUE(fx.fs->create(fx.t, "/d/f").ok());
  EXPECT_EQ(fx.fs->unlink(fx.t, "/d").err, Errno::kENOTEMPTY);
  ASSERT_TRUE(fx.fs->unlink(fx.t, "/d/f").ok());
  EXPECT_TRUE(fx.fs->unlink(fx.t, "/d").ok());
}

TEST(ExtFsTest, TruncateToZeroReleasesBlocks) {
  Fixture fx;
  std::uint32_t ino = 0;
  fx.t = fx.fs->create(fx.t, "/t", &ino).done;
  const std::uint64_t free_before = fx.fs->free_blocks();
  std::vector<std::byte> data(32 * kFsBlockSize, std::byte{2});
  fx.t = fx.fs->write(fx.t, ino, 0, data).done;
  ASSERT_TRUE(fx.fs->sync(fx.t).ok());
  ASSERT_TRUE(fx.fs->truncate(fx.t, ino, 0).ok());
  auto st = fx.fs->stat(fx.t, ino);
  EXPECT_EQ(st.size, 0u);
  // Only the inode remains; all data blocks returned.
  EXPECT_EQ(fx.fs->free_blocks(), free_before);
}

TEST(ExtFsTest, PersistenceAcrossRemount) {
  MemDisk disk(kDiskSectors);
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  {
    auto mount = ExtFs::mount(disk, t);
    ASSERT_TRUE(mount.ok());
    std::uint32_t ino = 0;
    t = mount.fs->create(mount.done, "/persist", &ino).done;
    t = mount.fs->write(t, ino, 0, bytes_of("durable")).done;
    ASSERT_TRUE(mount.fs->unmount(t).ok());
  }
  {
    auto mount = ExtFs::mount(disk, t);
    ASSERT_TRUE(mount.ok());
    auto lr = mount.fs->lookup(mount.done, "/persist");
    ASSERT_TRUE(lr.ok());
    std::vector<std::byte> out(7);
    auto rr = mount.fs->read(lr.done, lr.inode, 0, out);
    ASSERT_TRUE(rr.ok());
    EXPECT_EQ(string_of(out, 7), "durable");
  }
}

TEST(ExtFsTest, FsckCleanAfterActivity) {
  MemDisk disk(kDiskSectors);
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  auto mount = ExtFs::mount(disk, t);
  ASSERT_TRUE(mount.ok());
  ExtFs& fs = *mount.fs;
  t = mount.done;
  ASSERT_TRUE(fs.mkdir(t, "/x").ok());
  for (int i = 0; i < 20; ++i) {
    std::uint32_t ino = 0;
    t = fs.create(t, "/x/f" + std::to_string(i), &ino).done;
    std::vector<std::byte> data((static_cast<std::size_t>(i) + 1) * 1000,
                                std::byte{7});
    t = fs.write(t, ino, 0, data).done;
  }
  t = fs.unlink(t, "/x/f3").done;
  t = fs.unlink(t, "/x/f7").done;
  ASSERT_TRUE(fs.unmount(t).ok());
  const auto report = ExtFs::fsck(disk, t);
  EXPECT_TRUE(report.clean()) << (report.problems.empty()
                                      ? "io error"
                                      : report.problems.front());
}

TEST(ExtFsTest, JournalAbortMakesFsReadOnlyWithMinusFive) {
  MemDisk disk(kDiskSectors);
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  auto mount = ExtFs::mount(disk, t);
  ASSERT_TRUE(mount.ok());
  ExtFs& fs = *mount.fs;
  std::uint32_t ino = 0;
  t = fs.create(mount.done, "/f", &ino).done;
  disk.set_failing(true);
  const FsResult cr = fs.commit(t);
  EXPECT_EQ(cr.err, Errno::kEIO);
  EXPECT_TRUE(fs.read_only());
  EXPECT_EQ(fs.error_code(), -5);  // the paper's Ext4 failure signature
  disk.set_failing(false);
  // The abort takes effect at its completion time.
  const SimTime after = fs.abort_time();
  EXPECT_TRUE(fs.read_only_at(after));
  EXPECT_EQ(fs.create(after, "/g").err, Errno::kEROFS);
  EXPECT_EQ(fs.write(after, ino, 0, bytes_of("x")).err, Errno::kEROFS);
}

TEST(ExtFsTest, InvalidPathsRejected) {
  Fixture fx;
  EXPECT_EQ(fx.fs->create(fx.t, "relative").err, Errno::kEINVAL);
  EXPECT_EQ(fx.fs->create(fx.t, "").err, Errno::kEINVAL);
  const std::string long_name(100, 'x');
  EXPECT_EQ(fx.fs->create(fx.t, "/" + long_name).err,
            Errno::kENAMETOOLONG);
}

TEST(ExtFsTest, FsyncMakesDataDurableImmediately) {
  MemDisk disk(kDiskSectors);
  SimTime t = SimTime::zero();
  ASSERT_TRUE(ExtFs::mkfs(disk, t).ok());
  auto mount = ExtFs::mount(disk, t);
  ExtFs& fs = *mount.fs;
  std::uint32_t ino = 0;
  t = fs.create(mount.done, "/f", &ino).done;
  t = fs.write(t, ino, 0, bytes_of("synced")).done;
  ASSERT_TRUE(fs.fsync(t, ino).ok());
  EXPECT_EQ(fs.dirty_bytes(), 0u);
}

TEST(ExtFsTest, MountRejectsGarbageSuperblock) {
  MemDisk disk(kDiskSectors);
  auto mount = ExtFs::mount(disk, SimTime::zero());
  EXPECT_EQ(mount.err, Errno::kEINVAL);
  EXPECT_EQ(mount.fs, nullptr);
}

}  // namespace
}  // namespace deepnote::storage
