// Range-scan tests for the LSM store: merged iteration across memtable,
// immutable memtable, L0 and L1, with newest-wins and hidden tombstones.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "storage/kvdb/db.h"
#include "storage/mem_disk.h"

namespace deepnote::storage::kvdb {
namespace {

using sim::SimTime;

struct ScanFixture {
  MemDisk disk{(512ull << 20) / 512};
  std::unique_ptr<ExtFs> fs;
  std::unique_ptr<Db> db;
  SimTime t = SimTime::zero();

  explicit ScanFixture(std::uint64_t buffer = 256 << 10) {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    fs = std::move(mount.fs);
    DbConfig cfg;
    cfg.write_buffer_bytes = buffer;
    auto open = Db::open(*fs, mount.done, cfg);
    EXPECT_TRUE(open.ok());
    db = std::move(open.db);
    t = open.done;
  }

  void put(const std::string& k, const std::string& v) {
    auto r = db->put(t, k, v);
    if (r.err == Errno::kEAGAIN) {
      t = db->do_flush(t).done;
      r = db->put(t, k, v);
    }
    ASSERT_TRUE(r.ok());
    t = r.done;
    if (db->flush_pending()) t = db->do_flush(t).done;
  }

  std::vector<std::pair<std::string, std::string>> scan(
      const std::string& from, const std::string& to) {
    std::vector<std::pair<std::string, std::string>> out;
    auto r = db->scan(t, from, to, [&](std::string_view k,
                                       std::string_view v) {
      out.emplace_back(std::string(k), std::string(v));
      return true;
    });
    EXPECT_TRUE(r.ok());
    t = r.done;
    return out;
  }
};

TEST(DbScanTest, EmptyDbScansNothing) {
  ScanFixture fx;
  EXPECT_TRUE(fx.scan("", "").empty());
}

TEST(DbScanTest, MemtableOnlyOrdered) {
  ScanFixture fx;
  fx.put("cherry", "3");
  fx.put("apple", "1");
  fx.put("banana", "2");
  const auto got = fx.scan("", "");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, "apple");
  EXPECT_EQ(got[1].first, "banana");
  EXPECT_EQ(got[2].first, "cherry");
}

TEST(DbScanTest, RangeBoundsAreHalfOpen) {
  ScanFixture fx;
  for (char c = 'a'; c <= 'f'; ++c) {
    fx.put(std::string(1, c), "v");
  }
  const auto got = fx.scan("b", "e");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got.front().first, "b");
  EXPECT_EQ(got.back().first, "d");
}

TEST(DbScanTest, NewestVersionWinsAcrossLevels) {
  ScanFixture fx;
  // Old version flushed to an SST...
  for (int i = 0; i < 3000; ++i) {
    fx.put("key" + std::to_string(i), "old");
  }
  ASSERT_TRUE(fx.db->flush(fx.t).ok());
  // ...new version in the memtable.
  fx.put("key42", "new");
  const auto got = fx.scan("key42", "key42\xff");
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].second, "new");
  // Only one version visible.
  int key42_count = 0;
  for (const auto& [k, v] : got) {
    if (k == "key42") ++key42_count;
  }
  EXPECT_EQ(key42_count, 1);
}

TEST(DbScanTest, TombstonesHideEntriesAcrossLevels) {
  ScanFixture fx;
  for (int i = 0; i < 3000; ++i) {
    fx.put("key" + std::to_string(i), "v");
  }
  ASSERT_TRUE(fx.db->flush(fx.t).ok());
  auto dr = fx.db->del(fx.t, "key100");
  ASSERT_TRUE(dr.ok());
  fx.t = dr.done;
  const auto got = fx.scan("key100", "key101");
  for (const auto& [k, v] : got) {
    EXPECT_NE(k, "key100");
  }
}

TEST(DbScanTest, EarlyStopVisitor) {
  ScanFixture fx;
  for (int i = 0; i < 100; ++i) {
    fx.put("k" + std::to_string(1000 + i), "v");
  }
  int seen = 0;
  auto r = fx.db->scan(fx.t, "", "", [&](std::string_view, std::string_view) {
    return ++seen < 5;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(r.entries, 5u);
}

TEST(DbScanTest, MatchesModelAfterMixedWorkload) {
  ScanFixture fx;
  std::map<std::string, std::string> model;
  sim::Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d",
                  static_cast<int>(rng.uniform_int(0, 800)));
    if (rng.bernoulli(0.75)) {
      const std::string value = "v" + std::to_string(op);
      fx.put(key, value);
      model[key] = value;
    } else {
      auto r = fx.db->del(fx.t, key);
      if (r.err == Errno::kEAGAIN) {
        fx.t = fx.db->do_flush(fx.t).done;
        r = fx.db->del(fx.t, key);
      }
      ASSERT_TRUE(r.ok());
      fx.t = r.done;
      model.erase(key);
      if (fx.db->flush_pending()) fx.t = fx.db->do_flush(fx.t).done;
    }
  }
  const auto got = fx.scan("", "");
  ASSERT_EQ(got.size(), model.size());
  auto it = model.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    EXPECT_EQ(got[i].first, it->first);
    EXPECT_EQ(got[i].second, it->second);
  }
}

TEST(DbScanTest, ScanSurvivesCompaction) {
  ScanFixture fx;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 2500; ++i) {
      fx.put("key" + std::to_string(i), "round" + std::to_string(round));
    }
  }
  ASSERT_TRUE(fx.db->flush(fx.t).ok());
  EXPECT_GT(fx.db->stats().compactions, 0u);
  const auto got = fx.scan("key0", "key1");  // just "key0"
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, "round5");
}

TEST(DbScanTest, StallAppliesToScans) {
  DbConfig cfg;
  cfg.write_buffer_bytes = 64 << 10;
  cfg.stall_grace = sim::Duration::from_seconds(1.0);
  ScanFixture fx(64 << 10);
  fx.db = nullptr;  // rebuild with grace config
  auto open = Db::open(*fx.fs, fx.t, cfg);
  ASSERT_TRUE(open.ok());
  fx.db = std::move(open.db);
  fx.t = open.done;
  const std::string big(4 << 10, 'z');
  for (int i = 0; i < 100 && !fx.db->flush_pending(); ++i) {
    auto r = fx.db->put(fx.t, "k" + std::to_string(i), big);
    ASSERT_TRUE(r.ok());
    fx.t = r.done;
  }
  ASSERT_TRUE(fx.db->flush_pending());
  auto r = fx.db->scan(fx.t + sim::Duration::from_seconds(2), "", "",
                       [](std::string_view, std::string_view) {
                         return true;
                       });
  EXPECT_EQ(r.err, Errno::kEAGAIN);
}

}  // namespace
}  // namespace deepnote::storage::kvdb
