// Exhaustive crash-consistency exploration of the real storage stacks
// (ISSUE acceptance: 200+-write extfs and kvdb workloads, every
// (cut, variant) schedule, parallelized on the task pool; an injected
// regression must be caught with a replayable minimal schedule).
#include <gtest/gtest.h>

#include "storage/fault_harness.h"
#include "storage/fault_workloads.h"

namespace deepnote::storage {
namespace {

TEST(CrashExplorationTest, ExtfsSurvivesEveryScheduleOf200PlusWrites) {
  const ExploreReport report =
      explore(extfs_append_workload(), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GE(report.write_count, 200u)
      << "workload too small for the acceptance criterion";
  // Disk workloads never erase: the 4 write-cut variants only.
  EXPECT_EQ(report.schedules_run, report.write_count * 4);
}

TEST(CrashExplorationTest, KvdbSurvivesEveryScheduleOf200PlusWrites) {
  const ExploreReport report = explore(kvdb_workload(), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GE(report.write_count, 200u)
      << "workload too small for the acceptance criterion";
  EXPECT_EQ(report.schedules_run, report.write_count * 4);
}

TEST(CrashExplorationTest, Raid1AbsorbsEverySingleMemberSchedule) {
  AppendWorkloadOptions opt;
  opt.files = 2;
  opt.appends = 16;
  const ExploreReport report =
      explore(raid1_workload(opt), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GT(report.write_count, 0u);
}

TEST(CrashExplorationTest, JournalPairSurvivesEverySchedule) {
  const ExploreReport report =
      explore(journal_pair_workload(), ExploreOptions{});
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GT(report.write_count, 0u);
}

// The regression gate: a journal whose device drops flush barriers is
// correct under naive testing (benign run passes; clean cuts pass
// because MemDisk persists writes in order) — only the harness's
// reorder variant exposes it. The failure must shrink to a minimal
// schedule that still replays to a failure from (seed, index) alone.
TEST(CrashExplorationTest, DroppedBarrierRegressionIsCaught) {
  JournalWorkloadOptions buggy;
  buggy.drop_flush_barriers = true;
  const WorkloadFactory factory = journal_pair_workload(buggy);

  const ExploreReport report = explore(factory, ExploreOptions{});
  EXPECT_TRUE(report.benign_failure.empty())
      << "regression must be invisible without a crash";
  ASSERT_FALSE(report.failures.empty())
      << "harness missed the dropped-barrier regression";
  for (const auto& f : report.failures) {
    EXPECT_EQ(f.schedule.variant, FaultVariant::kReorder)
        << f.schedule.describe()
        << ": only the write-cache reorder variant can see a missing "
           "barrier on an in-order device";
  }

  const FaultSchedule minimal =
      shrink(factory, report.failures.front().schedule);
  EXPECT_EQ(minimal.variant, FaultVariant::kReorder);
  EXPECT_LE(minimal.index, report.failures.front().schedule.index);

  // The minimal schedule replays to the same verdict from its logged
  // (seed, index) pair — the bug report is self-contained.
  FaultSchedule replayed;
  const CheckResult r = replay_schedule(factory, minimal.base_seed,
                                        minimal.index, 8, &replayed);
  EXPECT_FALSE(r.passed) << minimal.describe();
  EXPECT_EQ(replayed.index, minimal.index);
  EXPECT_FALSE(r.detail.empty());
}

// The same schedules with barriers intact pass — the regression above
// is caught by the variant, not by an over-strict oracle.
TEST(CrashExplorationTest, IntactBarriersPassTheReorderSchedules) {
  ExploreOptions reorder_only;
  reorder_only.torn_writes = false;
  reorder_only.eio_bursts = false;
  const ExploreReport report =
      explore(journal_pair_workload(), reorder_only);
  EXPECT_TRUE(report.passed()) << report.summary();
}

}  // namespace
}  // namespace deepnote::storage
