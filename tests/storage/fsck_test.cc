// Negative tests for the offline checker: fsck must *detect* each class
// of corruption it claims to check.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/extfs.h"
#include "storage/mem_disk.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

constexpr std::uint64_t kDiskSectors = (128ull << 20) / 512;

struct CorruptFixture {
  MemDisk disk{kDiskSectors};
  SuperblockDisk sb;
  SimTime t = SimTime::zero();

  CorruptFixture() {
    EXPECT_TRUE(ExtFs::mkfs(disk, t).ok());
    auto mount = ExtFs::mount(disk, t);
    EXPECT_TRUE(mount.ok());
    ExtFs& fs = *mount.fs;
    t = mount.done;
    std::uint32_t ino = 0;
    t = fs.create(t, "/a", &ino).done;
    std::vector<std::byte> data(8 * kFsBlockSize, std::byte{0x11});
    t = fs.write(t, ino, 0, data).done;
    t = fs.create(t, "/b").done;
    EXPECT_TRUE(fs.unmount(t).ok());
    read_sb();
    // Sanity: clean before corruption.
    EXPECT_TRUE(ExtFs::fsck(disk, t).clean());
  }

  void read_sb() {
    std::vector<std::byte> blk(kFsBlockSize);
    disk.read(t, 0, kFsSectorsPerBlock, blk);
    std::memcpy(&sb, blk.data(), sizeof(sb));
  }

  std::vector<std::byte> read_block(std::uint32_t no) {
    std::vector<std::byte> blk(kFsBlockSize);
    disk.read(t, static_cast<std::uint64_t>(no) * kFsSectorsPerBlock,
              kFsSectorsPerBlock, blk);
    return blk;
  }

  void write_block(std::uint32_t no, const std::vector<std::byte>& blk) {
    disk.write(t, static_cast<std::uint64_t>(no) * kFsSectorsPerBlock,
               kFsSectorsPerBlock, blk);
  }

  InodeDisk read_inode(std::uint32_t ino, std::uint32_t* block_out = nullptr,
                       std::uint32_t* offset_out = nullptr) {
    const std::uint32_t block = sb.inode_table_start + ino / kInodesPerBlock;
    const std::uint32_t offset = (ino % kInodesPerBlock) * kInodeSize;
    auto blk = read_block(block);
    InodeDisk inode;
    std::memcpy(&inode, blk.data() + offset, sizeof(inode));
    if (block_out) *block_out = block;
    if (offset_out) *offset_out = offset;
    return inode;
  }

  void write_inode(std::uint32_t ino, const InodeDisk& inode) {
    std::uint32_t block = 0, offset = 0;
    read_inode(ino, &block, &offset);
    auto blk = read_block(block);
    std::memcpy(blk.data() + offset, &inode, sizeof(inode));
    write_block(block, blk);
  }

  bool fsck_flags(const std::string& needle) {
    const auto report = ExtFs::fsck(disk, t);
    for (const auto& p : report.problems) {
      if (p.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

TEST(FsckTest, DetectsBlockMarkedUsedButUnreferenced) {
  CorruptFixture fx;
  // Set a random free data-region bit in the block bitmap.
  auto bm = fx.read_block(fx.sb.block_bitmap_start);
  const std::uint32_t victim = fx.sb.data_start + 500;
  bm[victim / 8] = static_cast<std::byte>(
      static_cast<unsigned char>(bm[victim / 8]) | (1u << (victim % 8)));
  fx.write_block(fx.sb.block_bitmap_start, bm);
  EXPECT_TRUE(fx.fsck_flags("marked used but unreferenced"));
}

TEST(FsckTest, DetectsReferencedBlockMarkedFree) {
  CorruptFixture fx;
  // Clear the bitmap bit of one of /a's data blocks.
  const InodeDisk a = fx.read_inode(2);  // first created inode after root
  ASSERT_NE(a.direct[0], 0u);
  auto bm = fx.read_block(fx.sb.block_bitmap_start);
  const std::uint32_t victim = a.direct[0];
  bm[victim / 8] = static_cast<std::byte>(
      static_cast<unsigned char>(bm[victim / 8]) & ~(1u << (victim % 8)));
  fx.write_block(fx.sb.block_bitmap_start, bm);
  EXPECT_TRUE(fx.fsck_flags("referenced but marked free"));
}

TEST(FsckTest, DetectsMultiplyReferencedBlock) {
  CorruptFixture fx;
  // Point /b's first block at /a's first block.
  const InodeDisk a = fx.read_inode(2);
  InodeDisk b = fx.read_inode(3);
  b.direct[0] = a.direct[0];
  b.size_bytes = kFsBlockSize;
  fx.write_inode(3, b);
  EXPECT_TRUE(fx.fsck_flags("multiply referenced"));
}

TEST(FsckTest, DetectsUnreachableInode) {
  CorruptFixture fx;
  // Allocate a new inode directly in the table + bitmap but link it
  // nowhere.
  InodeDisk ghost;
  ghost.kind = static_cast<std::uint16_t>(InodeKind::kFile);
  ghost.link_count = 1;
  fx.write_inode(7, ghost);
  auto bm = fx.read_block(fx.sb.inode_bitmap_start);
  bm[0] = static_cast<std::byte>(static_cast<unsigned char>(bm[0]) | 0x80);
  fx.write_block(fx.sb.inode_bitmap_start, bm);
  EXPECT_TRUE(fx.fsck_flags("unreachable from root"));
}

TEST(FsckTest, DetectsDanglingDirent) {
  CorruptFixture fx;
  // Mark /b's inode free in the table while its dirent remains.
  InodeDisk b = fx.read_inode(3);
  b.kind = static_cast<std::uint16_t>(InodeKind::kFree);
  fx.write_inode(3, b);
  EXPECT_TRUE(fx.fsck_flags("points to unallocated inode"));
}

TEST(FsckTest, DetectsBadLinkCount) {
  CorruptFixture fx;
  InodeDisk a = fx.read_inode(2);
  a.link_count = 9;
  fx.write_inode(2, a);
  EXPECT_TRUE(fx.fsck_flags("link count"));
}

TEST(FsckTest, DetectsBlockOutsideDataRegion) {
  CorruptFixture fx;
  InodeDisk a = fx.read_inode(2);
  a.direct[1] = 1;  // inside the journal area
  fx.write_inode(2, a);
  EXPECT_TRUE(fx.fsck_flags("outside data region"));
}

TEST(FsckTest, DetectsBadSuperblock) {
  CorruptFixture fx;
  auto blk = fx.read_block(0);
  blk[0] = std::byte{0xde};
  fx.write_block(0, blk);
  const auto report = ExtFs::fsck(fx.disk, fx.t);
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace deepnote::storage
