// Crash-consistency property tests for extfs.
//
// A workload of random namespace + file operations runs on the HDD model
// (volatile write cache and all); at a random instant the power is cut.
// After remount (journal replay) we require:
//   1. the filesystem is structurally consistent (fsck reports nothing);
//   2. every file that was fsynced still exists with exactly the content
//      it had at its last fsync (durability of acknowledged syncs).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "hdd/drive.h"
#include "sim/rng.h"
#include "storage/extfs.h"
#include "storage/os_device.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

hdd::HddConfig crash_drive_config(std::uint64_t seed) {
  hdd::HddConfig cfg;
  cfg.geometry = hdd::Geometry::tiny_test_drive();
  // The tiny drive is small; use a bigger one built from explicit zones.
  cfg.geometry = hdd::Geometry(
      2, 7200.0, 100.0,
      {hdd::Zone{0, 512, 512}, hdd::Zone{0, 512, 384}});  // ~450 MiB
  cfg.servo.false_trip_max_hz = 0.0;
  cfg.write_cache_bytes = 1ull << 20;  // small: forces real drain traffic
  cfg.rng_seed = seed;
  return cfg;
}

struct FileModel {
  std::uint32_t inode = 0;
  std::string current;  ///< content written so far
  std::string synced;   ///< content at the last acknowledged fsync
  bool ever_synced = false;
};

class CrashWorkload {
 public:
  explicit CrashWorkload(std::uint64_t seed)
      : rng_(seed), drive_(crash_drive_config(seed)), dev_(drive_) {}

  void run_and_crash() {
    SimTime t = SimTime::zero();
    MkfsOptions mkfs;
    mkfs.journal_blocks = 128;
    mkfs.num_inodes = 512;
    ASSERT_TRUE(ExtFs::mkfs(dev_, t, mkfs).ok());
    auto mount = ExtFs::mount(dev_, t);
    ASSERT_TRUE(mount.ok());
    ExtFs& fs = *mount.fs;
    t = mount.done;

    const int ops = 120 + static_cast<int>(rng_.uniform_int(0, 200));
    const int crash_at = static_cast<int>(rng_.uniform_int(20, ops - 1));
    for (int op = 0; op < ops; ++op) {
      if (op == crash_at) {
        drive_.power_cut();  // volatile cache gone; fs state abandoned
        crash_time_ = t;
        return;
      }
      step(fs, t);
      // Drive the daemons occasionally like a kernel would.
      if (fs.commit_due(t)) t = fs.commit(t).done;
      if ((op & 7) == 0) t = fs.writeback(t, 1u << 20).done;
    }
    drive_.power_cut();
    crash_time_ = t;
  }

  void verify_after_recovery() {
    auto mount = ExtFs::mount(dev_, crash_time_);
    ASSERT_TRUE(mount.ok()) << "remount after crash failed";
    ExtFs& fs = *mount.fs;
    SimTime t = mount.done;

    // Durability: fsynced files must exist with their synced content as
    // a prefix-exact match (later unsynced appends may or may not have
    // survived; synced bytes must).
    for (const auto& [name, model] : files_) {
      if (!model.ever_synced) continue;
      auto lr = fs.lookup(t, "/" + name);
      ASSERT_TRUE(lr.ok()) << "fsynced file lost: " << name;
      t = lr.done;
      auto st = fs.stat(t, lr.inode);
      ASSERT_TRUE(st.ok());
      ASSERT_GE(st.size, model.synced.size()) << name;
      std::vector<std::byte> out(model.synced.size());
      auto rr = fs.read(t, lr.inode, 0, out);
      ASSERT_TRUE(rr.ok());
      t = rr.done;
      const std::string got(reinterpret_cast<const char*>(out.data()),
                            out.size());
      EXPECT_EQ(got, model.synced) << "fsynced content damaged: " << name;
    }

    ASSERT_TRUE(fs.unmount(t).ok());
    const auto report = ExtFs::fsck(dev_, t);
    EXPECT_TRUE(report.clean())
        << "fsck: "
        << (report.problems.empty() ? "io error" : report.problems.front());
  }

 private:
  void step(ExtFs& fs, SimTime& t) {
    const int kind = static_cast<int>(rng_.uniform_int(0, 9));
    if (kind <= 2 || files_.empty()) {  // create
      const std::string name = "f" + std::to_string(next_id_++);
      FileModel model;
      auto cr = fs.create(t, "/" + name, &model.inode);
      t = cr.done;
      if (cr.ok()) files_[name] = model;
      return;
    }
    auto it = files_.begin();
    std::advance(it, rng_.uniform_int(
                         0, static_cast<std::int64_t>(files_.size()) - 1));
    FileModel& model = it->second;
    if (kind <= 6) {  // append
      const auto len = static_cast<std::size_t>(rng_.uniform_int(1, 9000));
      std::string chunk(len, 'a');
      for (auto& c : chunk) {
        c = static_cast<char>('a' + (rng_.next_u64() % 26));
      }
      std::vector<std::byte> data(chunk.size());
      std::memcpy(data.data(), chunk.data(), chunk.size());
      auto wr = fs.write(t, model.inode, model.current.size(), data);
      t = wr.done;
      if (wr.ok()) model.current += chunk;
      return;
    }
    if (kind <= 8) {  // fsync
      auto sr = fs.fsync(t, model.inode);
      t = sr.done;
      if (sr.ok()) {
        model.synced = model.current;
        model.ever_synced = true;
      }
      return;
    }
    // unlink
    auto ur = fs.unlink(t, "/" + it->first);
    t = ur.done;
    if (ur.ok()) files_.erase(it);
  }

  sim::Rng rng_;
  hdd::Hdd drive_;
  OsBlockDevice dev_;
  std::map<std::string, FileModel> files_;
  int next_id_ = 0;
  SimTime crash_time_ = SimTime::zero();
};

class ExtFsCrashPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExtFsCrashPropertyTest, RecoveryIsConsistentAndDurable) {
  CrashWorkload workload(GetParam());
  workload.run_and_crash();
  workload.verify_after_recovery();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtFsCrashPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace deepnote::storage
