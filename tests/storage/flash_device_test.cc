// NAND flash device model tests: erase-block geometry, the
// program-once-per-erase discipline, latency asymmetry, wear counters,
// and the no-payload fleet mode.
#include "storage/flash/flash_device.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepnote::storage {
namespace {

using sim::SimTime;

// 1 KiB pages, 4-page blocks, 8 blocks: 64 sectors total.
FlashConfig small_config() {
  FlashConfig config;
  config.page_sectors = 2;
  config.pages_per_block = 4;
  config.blocks = 8;
  return config;
}

std::vector<std::byte> pattern(std::size_t sectors, std::uint8_t seed) {
  std::vector<std::byte> out(sectors * kBlockSectorSize);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

TEST(FlashDeviceTest, GeometryExposesErasBlocks) {
  FlashDevice flash(small_config());
  EXPECT_EQ(flash.block_sectors(), 8u);
  EXPECT_EQ(flash.total_sectors(), 64u);
}

TEST(FlashDeviceTest, LatencyAsymmetryReadProgramErase) {
  const FlashConfig config = small_config();
  FlashDevice flash(config);
  std::vector<std::byte> buf = pattern(2, 1);

  const BlockIo w = flash.write(SimTime::zero(), 0, 2, buf);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.complete, SimTime::zero() + config.program_latency);

  const BlockIo r =
      flash.read(SimTime::zero(), 0, 2, std::span<std::byte>(buf));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.complete, SimTime::zero() + config.read_latency);

  const BlockIo e = flash.erase(SimTime::zero(), 0, flash.block_sectors());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.complete, SimTime::zero() + config.erase_latency);

  // Programs and erases are orders of magnitude apart from reads.
  EXPECT_GT(config.program_latency.seconds(), config.read_latency.seconds());
  EXPECT_GT(config.erase_latency.seconds(), config.program_latency.seconds());
}

TEST(FlashDeviceTest, MultiPageCommandsChargePerPage) {
  const FlashConfig config = small_config();
  FlashDevice flash(config);
  std::vector<std::byte> buf = pattern(4, 2);
  // Two pages in one command: twice the single-page latency.
  const BlockIo w = flash.write(SimTime::zero(), 0, 4, buf);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.complete,
            SimTime::zero() + config.program_latency * std::int64_t{2});
  const BlockIo r =
      flash.read(SimTime::zero(), 0, 4, std::span<std::byte>(buf));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.complete,
            SimTime::zero() + config.read_latency * std::int64_t{2});
}

TEST(FlashDeviceTest, ReprogramWithoutEraseIsADisciplineError) {
  FlashDevice flash(small_config());
  std::vector<std::byte> buf = pattern(2, 3);
  ASSERT_TRUE(flash.write(SimTime::zero(), 0, 2, buf).ok());
  // Same page again without an erase: refused, not silently merged.
  const BlockIo again = flash.write(SimTime::zero(), 0, 2, buf);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(flash.stats().discipline_errors, 1u);
  // A sibling page in the same block is still fine.
  EXPECT_TRUE(flash.write(SimTime::zero(), 2, 2, buf).ok());
  // After a whole-block erase the page programs again.
  ASSERT_TRUE(flash.erase(SimTime::zero(), 0, flash.block_sectors()).ok());
  EXPECT_TRUE(flash.write(SimTime::zero(), 0, 2, buf).ok());
}

TEST(FlashDeviceTest, EraseMustCoverExactlyOneAlignedBlock) {
  FlashDevice flash(small_config());
  // Misaligned start.
  EXPECT_FALSE(flash.erase(SimTime::zero(), 2, flash.block_sectors()).ok());
  // Partial block.
  EXPECT_FALSE(flash.erase(SimTime::zero(), 0, 2).ok());
  // Out of range.
  EXPECT_FALSE(
      flash.erase(SimTime::zero(), flash.total_sectors(),
                  flash.block_sectors())
          .ok());
  EXPECT_EQ(flash.stats().discipline_errors, 3u);
}

TEST(FlashDeviceTest, ErasedBytesReadAllOnes) {
  FlashDevice flash(small_config());
  const std::vector<std::byte> in = pattern(2, 4);
  std::vector<std::byte> out(in.size());
  // Never-programmed pages read 0xFF.
  ASSERT_TRUE(flash.read(SimTime::zero(), 0, 2, out).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0xFF});
  // Programmed bytes round-trip.
  ASSERT_TRUE(flash.write(SimTime::zero(), 0, 2, in).ok());
  ASSERT_TRUE(flash.read(SimTime::zero(), 0, 2, out).ok());
  EXPECT_EQ(out, in);
  // Erase restores the erased pattern.
  ASSERT_TRUE(flash.erase(SimTime::zero(), 0, flash.block_sectors()).ok());
  ASSERT_TRUE(flash.read(SimTime::zero(), 0, 2, out).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0xFF});
}

TEST(FlashDeviceTest, ZeroSectorTransfersAreNoOps) {
  FlashDevice flash(small_config());
  std::vector<std::byte> buf;
  // Regression: the page-range arithmetic underflowed on an empty
  // transfer and walked the programmed bitmap far out of bounds.
  const BlockIo r = flash.read(SimTime::zero(), 0, 0, buf);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.complete, SimTime::zero());
  const BlockIo w = flash.write(SimTime::zero(), 0, 0, buf);
  EXPECT_TRUE(w.ok());
  EXPECT_EQ(w.complete, SimTime::zero());
  EXPECT_EQ(flash.stats().page_reads, 0u);
  EXPECT_EQ(flash.stats().page_programs, 0u);
  EXPECT_EQ(flash.stats().discipline_errors, 0u);
}

TEST(FlashDeviceTest, PerBlockWearCounters) {
  FlashDevice flash(small_config());
  const std::uint32_t bs = flash.block_sectors();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(flash.erase(SimTime::zero(), 0, bs).ok());
  }
  ASSERT_TRUE(flash.erase(SimTime::zero(), bs, bs).ok());
  EXPECT_EQ(flash.erase_count(0), 3u);
  EXPECT_EQ(flash.erase_count(1), 1u);
  EXPECT_EQ(flash.erase_count(2), 0u);
  EXPECT_EQ(flash.min_erase_count(), 0u);
  EXPECT_EQ(flash.max_erase_count(), 3u);
  EXPECT_DOUBLE_EQ(flash.mean_erase_count(), 4.0 / 8.0);
  EXPECT_EQ(flash.stats().block_erases, 4u);
}

TEST(FlashDeviceTest, FleetModeKeepsWearAndDisciplineWithoutPayload) {
  FlashConfig config = small_config();
  config.retain_data = false;
  FlashDevice flash(config);
  std::vector<std::byte> buf = pattern(2, 5);
  ASSERT_TRUE(flash.write(SimTime::zero(), 0, 2, buf).ok());
  // Discipline still enforced with no payload bytes behind it.
  EXPECT_FALSE(flash.write(SimTime::zero(), 0, 2, buf).ok());
  EXPECT_EQ(flash.stats().discipline_errors, 1u);
  ASSERT_TRUE(flash.erase(SimTime::zero(), 0, flash.block_sectors()).ok());
  EXPECT_TRUE(flash.write(SimTime::zero(), 0, 2, buf).ok());
  EXPECT_EQ(flash.erase_count(0), 1u);
  // Reads complete (timing path) without touching payload state.
  EXPECT_TRUE(flash.read(SimTime::zero(), 0, 2, buf).ok());
}

}  // namespace
}  // namespace deepnote::storage
