// CoW commit-log tests: format/commit/get round-trips, remount
// recovery, compaction under a tiny geometry, deletes, revision
// arbitration between the block pair, and input validation.
#include "storage/flash/commit_log.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/flash/flash_device.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

// 1 KiB pages, 4-page (8-sector) blocks: a commit group is at most one
// block, so a handful of commits forces a compaction.
FlashConfig small_flash() {
  FlashConfig config;
  config.page_sectors = 2;
  config.pages_per_block = 4;
  config.blocks = 8;
  return config;
}

CommitLogConfig log_config(const FlashDevice& flash) {
  CommitLogConfig config;
  config.block_lba[0] = 0;
  config.block_lba[1] = flash.block_sectors();
  config.block_sectors = flash.block_sectors();
  config.page_sectors = flash.config().page_sectors;
  return config;
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

void expect_value(const CommitLog& log, std::uint8_t id,
                  const std::string& want) {
  const std::span<const std::byte> got = log.get(id);
  ASSERT_EQ(got.size(), want.size()) << "attr " << int{id};
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0)
      << "attr " << int{id};
}

TEST(CommitLogTest, FormatCommitGetRoundTrip) {
  FlashDevice flash(small_flash());
  CommitLog log(flash, log_config(flash));
  ASSERT_TRUE(log.format(SimTime::zero()).ok());
  EXPECT_TRUE(log.mounted());
  EXPECT_TRUE(log.get(7).empty());

  const std::vector<std::byte> a = bytes_of("alpha");
  const std::vector<std::byte> b = bytes_of("bravo-longer-value");
  const SetAttr ops[] = {SetAttr{7, a}, SetAttr{9, b}};
  ASSERT_TRUE(log.commit(SimTime::zero(), ops).ok());

  expect_value(log, 7, "alpha");
  expect_value(log, 9, "bravo-longer-value");
  EXPECT_TRUE(log.get(8).empty());
  EXPECT_EQ(log.stats().commits, 2u);  // format's sealing commit + ours
}

TEST(CommitLogTest, RemountRecoversCommittedState) {
  FlashDevice flash(small_flash());
  {
    CommitLog log(flash, log_config(flash));
    ASSERT_TRUE(log.format(SimTime::zero()).ok());
    for (int c = 0; c < 5; ++c) {
      const std::vector<std::byte> v =
          bytes_of("v" + std::to_string(c));
      const SetAttr ops[] = {
          SetAttr{static_cast<std::uint8_t>(c), v},
          SetAttr{42, v},
      };
      ASSERT_TRUE(log.commit(SimTime::zero(), ops).ok());
    }
  }
  // A fresh log over the same device sees exactly what was committed.
  CommitLog reopened(flash, log_config(flash));
  ASSERT_TRUE(reopened.mount(SimTime::zero()).ok());
  for (int c = 0; c < 5; ++c) {
    expect_value(reopened, static_cast<std::uint8_t>(c),
                 "v" + std::to_string(c));
  }
  expect_value(reopened, 42, "v4");  // last writer wins
}

TEST(CommitLogTest, MountWithoutFormatFails) {
  FlashDevice flash(small_flash());
  CommitLog log(flash, log_config(flash));
  EXPECT_FALSE(log.mount(SimTime::zero()).ok());
  EXPECT_FALSE(log.mounted());
}

TEST(CommitLogTest, CompactionFlipsThePairAndKeepsState) {
  FlashDevice flash(small_flash());
  CommitLog log(flash, log_config(flash));
  ASSERT_TRUE(log.format(SimTime::zero()).ok());
  const std::uint32_t rev_after_format = log.revision();
  // Far more commit bytes than one 4-page block holds: the log must
  // compact (erase the idle block, rewrite state, bump the revision),
  // and the state must survive every flip.
  for (int c = 0; c < 40; ++c) {
    const std::vector<std::byte> v =
        bytes_of("value-" + std::to_string(c));
    const SetAttr ops[] = {
        SetAttr{static_cast<std::uint8_t>(c % 3), v}};
    ASSERT_TRUE(log.commit(SimTime::zero(), ops).ok()) << "commit " << c;
  }
  EXPECT_GT(log.stats().compactions, 0u);
  EXPECT_GT(log.revision(), rev_after_format);
  expect_value(log, 0, "value-39");
  expect_value(log, 1, "value-37");
  expect_value(log, 2, "value-38");

  // Remount arbitrates the pair by revision and lands on the same state.
  CommitLog reopened(flash, log_config(flash));
  ASSERT_TRUE(reopened.mount(SimTime::zero()).ok());
  EXPECT_EQ(reopened.revision(), log.revision());
  expect_value(reopened, 0, "value-39");
  expect_value(reopened, 1, "value-37");
  expect_value(reopened, 2, "value-38");
}

TEST(CommitLogTest, EmptyValueDeletesAnAttribute) {
  FlashDevice flash(small_flash());
  CommitLog log(flash, log_config(flash));
  ASSERT_TRUE(log.format(SimTime::zero()).ok());
  const std::vector<std::byte> v = bytes_of("ephemeral");
  const SetAttr set[] = {SetAttr{5, v}};
  ASSERT_TRUE(log.commit(SimTime::zero(), set).ok());
  expect_value(log, 5, "ephemeral");
  const SetAttr del[] = {SetAttr{5, {}}};
  ASSERT_TRUE(log.commit(SimTime::zero(), del).ok());
  EXPECT_TRUE(log.get(5).empty());
  // The delete is durable, not just in-memory.
  CommitLog reopened(flash, log_config(flash));
  ASSERT_TRUE(reopened.mount(SimTime::zero()).ok());
  EXPECT_TRUE(reopened.get(5).empty());
}

TEST(CommitLogTest, OversizedValueIsRejectedWithoutSideEffects) {
  FlashDevice flash(small_flash());
  CommitLog log(flash, log_config(flash));
  ASSERT_TRUE(log.format(SimTime::zero()).ok());
  const std::vector<std::byte> big(kMaxAttrLen + 1, std::byte{0xAB});
  const std::vector<std::byte> ok_v = bytes_of("ok");
  const SetAttr ops[] = {SetAttr{1, ok_v}, SetAttr{2, big}};
  EXPECT_FALSE(log.commit(SimTime::zero(), ops).ok());
  // Atomic: the valid op in the same group must not have applied.
  EXPECT_TRUE(log.get(1).empty());
  EXPECT_TRUE(log.get(2).empty());
}

TEST(CommitLogTest, CommitsLandOnlyInTheMetadataPair) {
  FlashDevice flash(small_flash());
  CommitLogConfig config = log_config(flash);
  // Put the pair in blocks 2 and 5; everything else must stay erased.
  config.block_lba[0] = 2 * flash.block_sectors();
  config.block_lba[1] = 5 * flash.block_sectors();
  CommitLog log(flash, config);
  ASSERT_TRUE(log.format(SimTime::zero()).ok());
  for (int c = 0; c < 20; ++c) {
    const std::vector<std::byte> v = bytes_of(std::to_string(c));
    const SetAttr ops[] = {SetAttr{1, v}};
    ASSERT_TRUE(log.commit(SimTime::zero(), ops).ok());
  }
  for (std::uint32_t block = 0; block < flash.config().blocks; ++block) {
    if (block == 2 || block == 5) continue;
    EXPECT_EQ(flash.erase_count(block), 0u) << "block " << block;
  }
}

}  // namespace
}  // namespace deepnote::storage
