// Property tests: randomized workload shapes under randomized fault
// schedules. Each case derives everything from the gtest seed parameter,
// and every assertion logs the (base_seed, schedule_index) pair so a
// failure replays exactly with:
//
//     replay_schedule(factory, base_seed, index);
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "storage/fault_harness.h"
#include "storage/fault_workloads.h"

namespace deepnote::storage {
namespace {

std::uint64_t benign_write_count(const WorkloadFactory& factory) {
  auto w = factory();
  w->run(FaultPlan{});
  return w->faulted_writes();
}

class ExtfsFaultPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtfsFaultPropertyTest, NeverFsckCorruptNorLosesSyncedBytes) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);

  AppendWorkloadOptions opt;
  opt.files = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  opt.appends = static_cast<std::uint32_t>(rng.uniform_int(6, 24));
  opt.max_append_bytes =
      static_cast<std::uint32_t>(rng.uniform_int(1, 4000));
  opt.fsync_every = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  opt.sync_every = static_cast<std::uint32_t>(rng.uniform_int(3, 12));
  opt.workload_seed = rng.next_u64();
  const WorkloadFactory factory = extfs_append_workload(opt);

  const std::uint64_t writes = benign_write_count(factory);
  ASSERT_GT(writes, 0u);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t index =
        rng.uniform_int(0, writes * kNumFaultVariants - 1);
    const CheckResult r = replay_schedule(factory, seed, index);
    EXPECT_TRUE(r.passed)
        << r.detail << "\n  replay: seed=" << seed << " index=" << index
        << " — " << schedule_at(seed, index).describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtfsFaultPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

class KvdbFaultPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvdbFaultPropertyTest, NeverLosesSyncedKeyNorServesBadChecksum) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);

  KvdbWorkloadOptions opt;
  opt.keys = static_cast<std::uint32_t>(rng.uniform_int(4, 32));
  opt.puts = static_cast<std::uint32_t>(rng.uniform_int(20, 80));
  opt.value_bytes = static_cast<std::uint32_t>(rng.uniform_int(8, 120));
  opt.barrier_every = static_cast<std::uint32_t>(rng.uniform_int(5, 30));
  opt.workload_seed = rng.next_u64();
  const WorkloadFactory factory = kvdb_workload(opt);

  const std::uint64_t writes = benign_write_count(factory);
  ASSERT_GT(writes, 0u);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t index =
        rng.uniform_int(0, writes * kNumFaultVariants - 1);
    const CheckResult r = replay_schedule(factory, seed, index);
    EXPECT_TRUE(r.passed)
        << r.detail << "\n  replay: seed=" << seed << " index=" << index
        << " — " << schedule_at(seed, index).describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvdbFaultPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace deepnote::storage
