// Golden-table regression suite for the paper's headline results.
//
// Each test runs the SAME pipeline as the corresponding bench binary
// (core/paper_tables.h) at a reduced scale and default seed, renders the
// table to CSV, and diffs it byte-for-byte against the checked-in golden
// under tests/golden/. There is NO tolerance: any drift in physics,
// storage modelling, trial seeding, or table formatting fails the diff.
//
// Intentional changes: regenerate the goldens with
//
//     DEEPNOTE_UPDATE_GOLDEN=1 ctest -R GoldenTables
//
// then review the CSV diff like any other code change (see README.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/paper_tables.h"

namespace deepnote::core {
namespace {

// Scales chosen so the whole suite stays in test-budget territory while
// the attack effects (throughput collapse, crashes) remain visible.
constexpr double kSweepScale = 0.1;
constexpr double kRangeScale = 0.1;
constexpr double kCrashScale = 0.5;  // limit 150 s; crashes hit ~81 s

std::string golden_path(const std::string& name) {
  return std::string(DEEPNOTE_GOLDEN_DIR) + "/" + name;
}

void diff_against_golden(const sim::Table& table, const std::string& name) {
  const std::string rendered = table.to_csv();
  const std::string path = golden_path(name);
  if (std::getenv("DEEPNOTE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("[golden updated: %s]\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — generate it with DEEPNOTE_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), rendered)
      << "table drifted from " << path
      << "\nIf intentional, regenerate with DEEPNOTE_UPDATE_GOLDEN=1 "
         "and review the CSV diff.";
}

TEST(GoldenTables, Fig2FrequencySweep) {
  const Figure2Series series = run_figure2(figure2_config(kSweepScale));
  diff_against_golden(format_figure2(series, /*write_side=*/true),
                      "fig2_frequency_sweep_write.csv");
  diff_against_golden(format_figure2(series, /*write_side=*/false),
                      "fig2_frequency_sweep_read.csv");
}

TEST(GoldenTables, Table1RangeFio) {
  diff_against_golden(build_table1(table1_config(kRangeScale)),
                      "table1_range_fio.csv");
}

TEST(GoldenTables, Table2RangeKvdb) {
  diff_against_golden(
      build_table2(table2_config(kRangeScale),
                   table2_bench_config(kRangeScale), table2_db_config()),
      "table2_range_kvdb.csv");
}

TEST(GoldenTables, Table3Crashes) {
  diff_against_golden(build_table3(table3_config(kCrashScale)),
                      "table3_crashes.csv");
}

}  // namespace
}  // namespace deepnote::core
