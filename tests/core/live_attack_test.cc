#include "core/live_attack.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "workload/fio.h"
#include "workload/meter.h"

namespace deepnote::core {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(LiveAttackTest, DriverAppliesAndClearsExcitation) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  auto tone = std::make_shared<acoustics::ToneSignal>(
      650.0, 166.0, SimTime::from_seconds(1), SimTime::from_seconds(3));
  LiveAttackDriver driver(bed, tone, 0.01, Duration::from_millis(100));

  workload::ActorScheduler sched;
  sched.add(driver);
  // Before the tone starts: polling, no excitation.
  sched.run_until(SimTime::from_seconds(0.5));
  EXPECT_FALSE(bed.drive().parked());
  // During: the 650 Hz / 1 cm tone parks the drive.
  sched.run_until(SimTime::from_seconds(2.0));
  EXPECT_TRUE(bed.drive().parked());
  EXPECT_TRUE(driver.current_tone().active);
  // After: cleared and the driver retires.
  sched.run_until(SimTime::from_seconds(4.0));
  EXPECT_FALSE(bed.drive().parked());
  EXPECT_TRUE(driver.finished());
}

TEST(LiveAttackTest, SweepKillsOnlyDuringVulnerableDwell) {
  ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  Testbed bed(spec);

  // Three 10 s dwells: safe (100 Hz), vulnerable (650 Hz), safe (4 kHz).
  // Attack from 10 cm: writes degrade heavily but individual commands
  // still complete, so dwell transitions stay crisp. (At 1 cm a wedged
  // command would span dwells — the documented atomic-step limitation of
  // the virtual-time model.)
  auto sweep = std::make_shared<acoustics::SteppedSweepSignal>(
      std::vector<double>{100.0, 650.0, 4000.0}, 166.0,
      Duration::from_seconds(10));
  LiveAttackDriver driver(bed, sweep, 0.10, Duration::from_millis(50));

  // A sequential writer actor measuring per-dwell throughput.
  std::vector<std::byte> block(4096, std::byte{0x5a});
  std::array<std::uint64_t, 3> bytes_per_dwell{};
  std::uint64_t lba = 0;
  workload::LambdaActor writer(
      SimTime::zero(), [&](SimTime now) -> SimTime {
        const auto begin = now + spec.fio_submit_overhead;
        const storage::BlockIo io = bed.device().write(begin, lba, 8, block);
        if (io.ok()) {
          const auto dwell = static_cast<std::size_t>(
              std::min<std::int64_t>(io.complete.ns() / 10'000'000'000ll, 2));
          bytes_per_dwell[dwell] += 4096;
          lba += 8;
        }
        return io.complete;
      });

  workload::ActorScheduler sched;
  sched.add(driver);
  sched.add(writer);
  sched.run_until(SimTime::from_seconds(30));

  const double safe1 = static_cast<double>(bytes_per_dwell[0]) / 10e6;
  const double vuln = static_cast<double>(bytes_per_dwell[1]) / 10e6;
  const double safe2 = static_cast<double>(bytes_per_dwell[2]) / 10e6;
  EXPECT_GT(safe1, 20.0);
  // Middle dwell: writes collapse (cache absorption allows a little).
  EXPECT_LT(vuln, 5.0);
  EXPECT_GT(safe2, 15.0);  // recovery
}

TEST(LiveAttackTest, ChirpCrossesTheBand) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  auto chirp = std::make_shared<acoustics::ChirpSignal>(
      100.0, 2000.0, 166.0, SimTime::zero(), Duration::from_seconds(10));
  LiveAttackDriver driver(bed, chirp, 0.01, Duration::from_millis(20));
  workload::ActorScheduler sched;
  sched.add(driver);

  // At t=0.5s the chirp is at ~195 Hz: safe.
  sched.run_until(SimTime::from_seconds(0.5));
  EXPECT_FALSE(bed.drive().parked());
  // At t=3s it is ~670 Hz: parked.
  sched.run_until(SimTime::from_seconds(3.0));
  EXPECT_TRUE(bed.drive().parked());
  // At t=9.9s it is ~1980 Hz: released again.
  sched.run_until(SimTime::from_seconds(9.95));
  EXPECT_FALSE(bed.drive().parked());
}

}  // namespace
}  // namespace deepnote::core
