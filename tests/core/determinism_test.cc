// The parallel trial engine's core guarantee: running an experiment grid
// with N workers produces byte-identical results to running it serially
// (jobs=1), for the exact configurations the paper benches use (Fig. 2
// sweep, Table 1 range, Table 3 crashes) — only shortened.
//
// Also covers the attack-chain memo cache: hits must return the same
// values as cold evaluations, and defenses that edit the chain's
// transfer function must invalidate it.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/crash_experiment.h"
#include "core/defense.h"
#include "core/range_test.h"
#include "core/sweep.h"
#include "core/testbed.h"

namespace deepnote::core {
namespace {

void expect_identical(const workload::FioReport& a,
                      const workload::FioReport& b) {
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.read_mbps, b.read_mbps);
  EXPECT_EQ(a.write_mbps, b.write_mbps);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.ops_errored, b.ops_errored);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
}

AttackConfig best_attack() {
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  return attack;
}

TEST(DeterminismTest, SweepParallelMatchesSerial) {
  FrequencySweep sweep(ScenarioId::kPlasticTower);
  SweepConfig config;
  config.attack = best_attack();
  config.ramp = sim::Duration::from_seconds(0.5);
  config.duration = sim::Duration::from_seconds(2.0);
  config.frequencies_hz = {200.0, 650.0, 650.0, 1200.0, 4000.0};

  config.jobs = 1;
  const auto serial = sweep.run(config);
  config.jobs = 4;
  const auto parallel = sweep.run(config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].frequency_hz, parallel[i].frequency_hz);
    EXPECT_EQ(serial[i].offtrack_nm, parallel[i].offtrack_nm);
    expect_identical(serial[i].write, parallel[i].write);
    expect_identical(serial[i].read, parallel[i].read);
  }
}

TEST(DeterminismTest, RangeFioParallelMatchesSerial) {
  RangeTest range(ScenarioId::kPlasticTower);
  RangeTestConfig config;
  config.attack = best_attack();
  config.distances_m = {std::nullopt, 0.01, 0.10, 0.15, 0.25};
  config.ramp = sim::Duration::from_seconds(1.0);
  config.duration = sim::Duration::from_seconds(4.0);

  config.jobs = 1;
  const auto serial = range.run_fio(config);
  config.jobs = 4;
  const auto parallel = range.run_fio(config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].distance_m, parallel[i].distance_m);
    expect_identical(serial[i].read, parallel[i].read);
    expect_identical(serial[i].write, parallel[i].write);
  }
}

TEST(DeterminismTest, RangeKvdbParallelMatchesSerial) {
  // The Table-2 workload (readwhilewriting over the LSM store) exercises
  // the whole hot path this PR rewrote: event kernel, sector-store runs,
  // WAL/memtable scratch buffers. The reports must stay bit-identical
  // across job counts.
  RangeTest range(ScenarioId::kPlasticTower);
  RangeTestConfig config;
  config.attack = best_attack();
  config.distances_m = {std::nullopt, 0.01, 0.15};
  config.ramp = sim::Duration::from_seconds(0.5);
  config.duration = sim::Duration::from_seconds(2.0);

  workload::DbBenchConfig bench;
  bench.preload_keys = 2000;
  bench.reader_actors = 2;
  bench.ramp = sim::Duration::from_seconds(0.5);
  bench.duration = sim::Duration::from_seconds(2.0);
  storage::kvdb::DbConfig db;

  config.jobs = 1;
  const auto serial = range.run_kvdb(config, bench, db);
  config.jobs = 4;
  const auto parallel = range.run_kvdb(config, bench, db);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].distance_m, parallel[i].distance_m);
    EXPECT_EQ(serial[i].report.throughput_mbps,
              parallel[i].report.throughput_mbps);
    EXPECT_EQ(serial[i].report.ops_per_second,
              parallel[i].report.ops_per_second);
    EXPECT_EQ(serial[i].report.ops, parallel[i].report.ops);
    EXPECT_EQ(serial[i].report.errors, parallel[i].report.errors);
    EXPECT_EQ(serial[i].report.db_fatal, parallel[i].report.db_fatal);
    EXPECT_EQ(serial[i].report.fatal_message, parallel[i].report.fatal_message);
    EXPECT_EQ(serial[i].report.end_time, parallel[i].report.end_time);
  }
  // The no-attack row actually made progress.
  EXPECT_GT(serial[0].report.ops, 0u);
}

TEST(DeterminismTest, CrashSuiteParallelMatchesSerial) {
  CrashExperiments experiments(ScenarioId::kPlasticTower);
  CrashExperimentConfig config;
  config.attack = best_attack();
  config.limit = sim::Duration::from_seconds(120.0);

  config.jobs = 1;
  const CrashSuite serial = experiments.run_all(config);
  config.jobs = 3;
  const CrashSuite parallel = experiments.run_all(config);

  const auto check = [](const CrashResult& a, const CrashResult& b) {
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.time_to_crash_s, b.time_to_crash_s);
    EXPECT_EQ(a.error_output, b.error_output);
  };
  check(serial.ext4, parallel.ext4);
  check(serial.ubuntu_server, parallel.ubuntu_server);
  check(serial.rocksdb, parallel.rocksdb);
  // And the suite matches the standalone entry points exactly.
  check(serial.ext4, experiments.ext4(config));
  EXPECT_TRUE(serial.ext4.crashed);
}

TEST(DeterminismTest, ReconBaselineIsTrueNoAttackRun) {
  FrequencySweep sweep(ScenarioId::kPlasticTower);
  SweepConfig config;
  config.attack = best_attack();
  config.ramp = sim::Duration::from_seconds(0.5);
  config.duration = sim::Duration::from_seconds(2.0);

  const SweepPoint base = sweep.baseline(config);
  EXPECT_EQ(base.offtrack_nm, 0.0);
  EXPECT_EQ(base.frequency_hz, 0.0);
  EXPECT_GT(base.write.throughput_mbps, 20.0);
  EXPECT_EQ(base.write.ops_errored, 0u);
}

TEST(DeterminismTest, OfftrackMemoHitsMatchColdValues) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack = best_attack();

  std::vector<double> cold;
  for (double f = 100.0; f <= 4000.0; f += 100.0) {
    attack.frequency_hz = f;
    cold.push_back(bed.predicted_offtrack_nm(attack));
  }
  // Second pass: every lookup is a memo hit now.
  std::size_t i = 0;
  for (double f = 100.0; f <= 4000.0; f += 100.0) {
    attack.frequency_hz = f;
    EXPECT_EQ(bed.predicted_offtrack_nm(attack), cold[i++]) << f;
  }
  // A cache wipe changes nothing observable.
  bed.clear_analysis_cache();
  attack.frequency_hz = 600.0;
  EXPECT_EQ(bed.predicted_offtrack_nm(attack), cold[5]);
}

TEST(DeterminismTest, InsertionLossInvalidatesOfftrackMemo) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack = best_attack();
  attack.frequency_hz = 2000.0;  // the liner bites hardest in the kHz range

  const double undefended = bed.predicted_offtrack_nm(attack);
  install_defense(bed, DefenseKind::kAbsorbingLiner);
  const double defended = bed.predicted_offtrack_nm(attack);
  EXPECT_LT(defended, undefended);

  // Matches a testbed that had the liner from the start (no stale memo).
  Testbed fresh(make_scenario(ScenarioId::kPlasticTower));
  install_defense(fresh, DefenseKind::kAbsorbingLiner);
  EXPECT_EQ(defended, fresh.predicted_offtrack_nm(attack));

  // Removing the loss restores the undefended value.
  bed.chain().set_insertion_loss(nullptr);
  EXPECT_EQ(bed.predicted_offtrack_nm(attack), undefended);
}

}  // namespace
}  // namespace deepnote::core
