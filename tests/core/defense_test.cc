#include "core/defense.h"

#include <gtest/gtest.h>

namespace deepnote::core {
namespace {

AttackConfig best_attack() {
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  return attack;
}

double offtrack_with(DefenseKind kind, double frequency_hz = 650.0) {
  ScenarioSpec spec =
      with_defense(make_scenario(ScenarioId::kPlasticTower), kind);
  Testbed bed(spec);
  install_defense(bed, kind);
  AttackConfig attack = best_attack();
  attack.frequency_hz = frequency_hz;
  return bed.predicted_offtrack_nm(attack);
}

TEST(DefenseTest, EveryDefenseReducesOfftrack) {
  const double baseline = offtrack_with(DefenseKind::kNone);
  for (auto kind : {DefenseKind::kAbsorbingLiner,
                    DefenseKind::kVibrationDampener}) {
    EXPECT_LT(offtrack_with(kind), baseline) << defense_name(kind);
  }
}

TEST(DefenseTest, ControllerWidensToleranceNotAmplitude) {
  // The firmware defense does not change the vibration; it widens the
  // fault thresholds and pushes the rejection corner up.
  ScenarioSpec base = make_scenario(ScenarioId::kPlasticTower);
  ScenarioSpec hard =
      with_defense(base, DefenseKind::kAugmentedController);
  EXPECT_GT(hard.hdd.servo.write_fault_fraction,
            base.hdd.servo.write_fault_fraction);
  EXPECT_GT(hard.hdd.servo.rejection_corner_hz,
            base.hdd.servo.rejection_corner_hz);
  EXPECT_LE(hard.hdd.servo.read_fault_fraction, 0.45);
}

TEST(DefenseTest, LinerIsWeakAtLowFrequency) {
  // Acoustic foam absorbs poorly at low frequencies — a liner helps less
  // at 300 Hz than at 1300 Hz (relative attenuation).
  const double base_300 = offtrack_with(DefenseKind::kNone, 300.0);
  const double base_1300 = offtrack_with(DefenseKind::kNone, 1300.0);
  const double liner_300 = offtrack_with(DefenseKind::kAbsorbingLiner, 300.0);
  const double liner_1300 =
      offtrack_with(DefenseKind::kAbsorbingLiner, 1300.0);
  EXPECT_GT(liner_300 / base_300, liner_1300 / base_1300);
}

TEST(DefenseTest, OverheatingRiskOrdering) {
  // Section 5: insulating defenses trade attack resistance for cooling.
  EXPECT_EQ(defense_properties(DefenseKind::kNone).overheating_risk, 0.0);
  EXPECT_EQ(
      defense_properties(DefenseKind::kAugmentedController).overheating_risk,
      0.0);
  EXPECT_GT(defense_properties(DefenseKind::kAbsorbingLiner).overheating_risk,
            defense_properties(DefenseKind::kVibrationDampener)
                .overheating_risk);
}

TEST(DefenseTest, NamesAreStable) {
  EXPECT_STREQ(defense_name(DefenseKind::kNone), "none");
  EXPECT_STREQ(defense_name(DefenseKind::kAbsorbingLiner), "absorbing liner");
  EXPECT_STREQ(defense_name(DefenseKind::kVibrationDampener),
               "vibration dampener");
  EXPECT_STREQ(defense_name(DefenseKind::kAugmentedController),
               "augmented controller");
}

TEST(DefenseTest, DampenerSurvivesBestAttack) {
  // With the dampener installed, the best-attack tone no longer parks the
  // drive.
  ScenarioSpec spec = with_defense(make_scenario(ScenarioId::kPlasticTower),
                                   DefenseKind::kVibrationDampener);
  Testbed bed(spec);
  install_defense(bed, DefenseKind::kVibrationDampener);
  bed.apply_attack(sim::SimTime::zero(), best_attack());
  const double park_nm = bed.drive().servo().config().park_fraction *
                         bed.drive().servo().config().track_pitch_nm;
  EXPECT_LT(bed.predicted_offtrack_nm(best_attack()), park_nm * 2.0);
}

}  // namespace
}  // namespace deepnote::core
