// Long-horizon stability: ten simulated minutes of a full stack under
// normal conditions must leave everything healthy — no spurious crashes,
// no filesystem damage, no store corruption, bounded memory state.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/testbed.h"
#include "storage/extfs.h"
#include "storage/kvdb/db.h"
#include "storage/server_os.h"
#include "workload/actor.h"
#include "workload/db_bench.h"

namespace deepnote::core {
namespace {

using storage::Errno;

TEST(SoakTest, TenMinutesOfNormalOperation) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));

  sim::SimTime t = sim::SimTime::zero();
  storage::MkfsOptions mkfs;
  mkfs.total_blocks = 2u << 18;
  ASSERT_TRUE(storage::ExtFs::mkfs(bed.device(), t, mkfs).ok());
  auto mount = storage::ExtFs::mount(bed.device(), t);
  ASSERT_TRUE(mount.ok());
  storage::ExtFs& fs = *mount.fs;

  storage::ServerOs os(fs);
  auto boot = os.boot(mount.done);
  ASSERT_TRUE(boot.ok());

  storage::kvdb::DbConfig db_cfg;
  db_cfg.root = "/srv";
  db_cfg.write_buffer_bytes = 8 << 20;
  auto open = storage::kvdb::Db::open(fs, boot.done, db_cfg);
  ASSERT_TRUE(open.ok());
  storage::kvdb::Db& db = *open.db;
  t = open.done;

  // Actors: a steady writer at ~2k ops/s, ticks, daemons.
  std::uint64_t key = 0;
  workload::LambdaActor writer(t, [&](sim::SimTime now) -> sim::SimTime {
    if (db.fatal()) return sim::SimTime::infinity();
    auto r = db.put(now, workload::DbBench::make_key(key % 200000, 16),
                    workload::DbBench::make_value(key, 64));
    if (r.err == Errno::kEAGAIN) {
      return r.done + sim::Duration::from_millis(5);
    }
    EXPECT_TRUE(r.ok());
    ++key;
    return r.done + sim::Duration::from_micros(500);
  });
  workload::LambdaActor flusher(t, [&](sim::SimTime now) -> sim::SimTime {
    if (db.fatal()) return sim::SimTime::infinity();
    if (db.flush_pending()) {
      return sim::max(db.do_flush(now).done,
                      now + sim::Duration::from_millis(10));
    }
    return now + sim::Duration::from_millis(10);
  });
  workload::LambdaActor commit_daemon(
      t, [&](sim::SimTime now) -> sim::SimTime {
        if (fs.read_only()) return sim::SimTime::infinity();
        if (fs.commit_due(now)) {
          return sim::max(fs.commit(now).done,
                          now + sim::Duration::from_millis(100));
        }
        return now + sim::Duration::from_millis(100);
      });
  workload::LambdaActor writeback_daemon(
      t, [&](sim::SimTime now) -> sim::SimTime {
        if (fs.read_only() || fs.dirty_bytes() == 0) {
          return now + sim::Duration::from_millis(100);
        }
        return sim::max(fs.writeback(now, 8ull << 20).done,
                        now + sim::Duration::from_millis(100));
      });
  workload::LambdaActor ticker(os.next_tick(),
                               [&](sim::SimTime now) -> sim::SimTime {
                                 os.tick(now);
                                 return os.crashed()
                                            ? sim::SimTime::infinity()
                                            : os.next_tick();
                               });

  workload::ActorScheduler sched;
  sched.add(writer);
  sched.add(flusher);
  sched.add(commit_daemon);
  sched.add(writeback_daemon);
  sched.add(ticker);
  const sim::SimTime end = t + sim::Duration::from_seconds(600);
  sched.run_until(end);

  // Everything survived.
  EXPECT_FALSE(db.fatal()) << db.fatal_message();
  EXPECT_FALSE(fs.read_only());
  EXPECT_FALSE(os.crashed()) << os.crash_reason();
  EXPECT_GT(key, 500000u);  // the writer actually made progress
  EXPECT_GT(db.stats().flushes, 5u);
  EXPECT_GT(fs.stats().commits, 50u);

  // The store's data is intact and the filesystem checks out.
  EXPECT_TRUE(db.verify_integrity(end).clean());
  auto g = db.get(end, workload::DbBench::make_key(0, 16));
  EXPECT_TRUE(g.ok());
  ASSERT_TRUE(fs.unmount(end).ok());
  const auto fsck = storage::ExtFs::fsck(bed.device(), end);
  EXPECT_TRUE(fsck.clean())
      << (fsck.problems.empty() ? "io" : fsck.problems.front());
  // The drive saw no attack artefacts.
  EXPECT_EQ(bed.drive().stats().hung_commands, 0u);
  EXPECT_EQ(bed.drive().stats().shock_parks, 0u);
}

}  // namespace
}  // namespace deepnote::core
