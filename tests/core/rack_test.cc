#include "core/rack.h"

#include <gtest/gtest.h>

#include <vector>

#include "workload/fio.h"

namespace deepnote::core {
namespace {

AttackConfig best_attack(double distance_m = 0.01) {
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = distance_m;
  return attack;
}

TEST(RackTest, BuildsRequestedBays) {
  RackConfig cfg;
  cfg.bays = 5;
  RackTestbed rack(cfg);
  EXPECT_EQ(rack.bays(), 5u);
  EXPECT_EQ(rack.parked_bays(), 0u);
}

TEST(RackTest, ZeroBaysRejected) {
  RackConfig cfg;
  cfg.bays = 0;
  EXPECT_THROW(RackTestbed rack(cfg), std::invalid_argument);
}

TEST(RackTest, CouplingFallsAcrossBays) {
  RackTestbed rack(RackConfig{});
  const AttackConfig attack = best_attack();
  double prev = 1e12;
  for (std::size_t bay = 0; bay < rack.bays(); ++bay) {
    const double nm = rack.predicted_offtrack_nm(bay, attack);
    EXPECT_LT(nm, prev) << "bay " << bay;
    prev = nm;
  }
}

TEST(RackTest, CloseAttackParksWholeRack) {
  RackTestbed rack(RackConfig{});
  rack.apply_attack(sim::SimTime::zero(), best_attack(0.01));
  EXPECT_EQ(rack.parked_bays(), rack.bays());
  rack.stop_attack(sim::SimTime::from_seconds(1));
  EXPECT_EQ(rack.parked_bays(), 0u);
}

TEST(RackTest, MidRangeAttackKillsOnlyNearBays) {
  // At an intermediate distance the near bays park while far bays hold:
  // the partial-rack kill the bench demonstrates.
  RackTestbed rack(RackConfig{});
  const double park_nm = 25.0;
  // Find a distance with a genuine split.
  double split_distance = 0.0;
  for (double d = 0.02; d <= 0.20; d += 0.005) {
    const double near = rack.predicted_offtrack_nm(0, best_attack(d));
    const double far =
        rack.predicted_offtrack_nm(rack.bays() - 1, best_attack(d));
    if (near >= park_nm && far < park_nm) {
      split_distance = d;
      break;
    }
  }
  ASSERT_GT(split_distance, 0.0) << "no partial-kill distance found";
  rack.apply_attack(sim::SimTime::zero(), best_attack(split_distance));
  EXPECT_GT(rack.parked_bays(), 0u);
  EXPECT_LT(rack.parked_bays(), rack.bays());
}

TEST(RackTest, BaysServeIndependently) {
  RackTestbed rack(RackConfig{});
  rack.apply_attack(sim::SimTime::zero(), best_attack(0.06));
  // Run a short FIO job against the nearest and farthest bays.
  auto run = [&](std::size_t bay) {
    workload::FioJobConfig job;
    job.pattern = workload::IoPattern::kSeqWrite;
    job.submit_overhead = rack.spec().fio_submit_overhead;
    job.ramp = sim::Duration::from_seconds(2.0);
    job.duration = sim::Duration::from_seconds(5.0);
    workload::FioRunner runner(rack.device(bay));
    return runner.run(sim::SimTime::zero(), job).throughput_mbps;
  };
  const double near = run(0);
  const double far = run(rack.bays() - 1);
  EXPECT_LT(near, far);
}

TEST(RackTest, BayOffsetsAreLinear) {
  RackConfig cfg;
  cfg.near_bay_gain_db = 2.0;
  cfg.per_bay_step_db = -1.5;
  RackTestbed rack(cfg);
  EXPECT_DOUBLE_EQ(rack.bay_offset_db(0), 2.0);
  EXPECT_DOUBLE_EQ(rack.bay_offset_db(2), -1.0);
  EXPECT_DOUBLE_EQ(rack.bay_offset_db(4), -4.0);
}

}  // namespace
}  // namespace deepnote::core
