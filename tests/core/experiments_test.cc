// Integration tests: the paper's experiments, asserted on *shape*.
//
// These re-run (shortened) versions of the Table 1/2/3 and Figure 2
// procedures and check the qualitative results the paper reports:
// baselines, kill bands, distance cliffs, crash cadence.
#include <gtest/gtest.h>

#include "core/crash_experiment.h"
#include "core/range_test.h"
#include "core/report.h"
#include "core/sweep.h"

namespace deepnote::core {
namespace {

AttackConfig best_attack() {
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  return attack;
}

TEST(ExperimentTest, Table1ShapeMatchesPaper) {
  RangeTest range(ScenarioId::kPlasticTower);
  RangeTestConfig config;
  config.attack = best_attack();
  config.ramp = sim::Duration::from_seconds(3.0);
  config.duration = sim::Duration::from_seconds(15.0);
  const auto rows = range.run_fio(config);
  ASSERT_EQ(rows.size(), 7u);

  // No-attack baselines: the paper's 18.0 / 22.7 MB/s.
  EXPECT_NEAR(rows[0].read.throughput_mbps, 18.0, 0.2);
  EXPECT_NEAR(rows[0].write.throughput_mbps, 22.7, 0.2);
  ASSERT_TRUE(rows[0].read.latency_ms.has_value());
  EXPECT_NEAR(*rows[0].read.latency_ms, 0.2, 0.05);

  // 1 cm and 5 cm: dead, no responses.
  for (int i : {1, 2}) {
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].read.throughput_mbps, 0.0);
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].write.throughput_mbps, 0.0);
    EXPECT_FALSE(
        rows[static_cast<std::size_t>(i)].read.latency_ms.has_value());
  }

  // 10 cm: writes nearly dead, reads degraded but alive.
  EXPECT_LT(rows[3].write.throughput_mbps, 1.0);
  EXPECT_GT(rows[3].read.throughput_mbps, 8.0);
  EXPECT_LT(rows[3].read.throughput_mbps, 17.0);

  // 15 cm: writes partially recovered.
  EXPECT_GT(rows[4].write.throughput_mbps, 0.3);
  EXPECT_LT(rows[4].write.throughput_mbps, 10.0);
  EXPECT_GT(rows[4].read.throughput_mbps, 16.0);

  // 20+ cm: back to baseline.
  for (int i : {5, 6}) {
    EXPECT_NEAR(rows[static_cast<std::size_t>(i)].write.throughput_mbps,
                22.7, 1.0);
    EXPECT_NEAR(rows[static_cast<std::size_t>(i)].read.throughput_mbps,
                18.0, 1.0);
  }

  // And the rendered table has the paper's layout.
  const sim::Table table = format_table1(rows);
  EXPECT_EQ(table.num_rows(), 7u);
  EXPECT_EQ(table.at(0, 0), "No Attack");
  EXPECT_EQ(table.at(1, 0), "1 cm");
  EXPECT_EQ(table.at(1, 3), "-");  // no-response latency
}

TEST(ExperimentTest, Figure2KillBandShape) {
  FrequencySweep sweep(ScenarioId::kPlasticTower);
  SweepConfig config;
  config.attack = best_attack();
  // The ramp must outlast the drive's write-cache absorption (~1.4 s at
  // baseline rate) so Table/Figure numbers reflect steady state.
  config.ramp = sim::Duration::from_seconds(3.0);
  config.duration = sim::Duration::from_seconds(8.0);
  config.frequencies_hz = {100.0, 200.0, 300.0, 650.0,
                           1000.0, 2000.0, 4000.0, 8000.0};
  const auto points = sweep.run(config);
  ASSERT_EQ(points.size(), 8u);

  auto writes = [&](std::size_t i) {
    return points[i].write.throughput_mbps;
  };
  // Safe below the band...
  EXPECT_GT(writes(0), 20.0);  // 100 Hz
  EXPECT_GT(writes(1), 20.0);  // 200 Hz
  // ...dead inside...
  EXPECT_LT(writes(2), 2.0);   // 300 Hz
  EXPECT_LT(writes(3), 0.5);   // 650 Hz
  EXPECT_LT(writes(4), 2.0);   // 1000 Hz
  // ...safe above.
  EXPECT_GT(writes(5), 20.0);  // 2000 Hz
  EXPECT_GT(writes(6), 20.0);  // 4000 Hz
  EXPECT_GT(writes(7), 20.0);  // 8000 Hz

  // Writes are hit at least as hard as reads wherever the drive is
  // partially alive.
  for (const auto& p : points) {
    if (p.write.throughput_mbps < 1.0 && p.read.throughput_mbps < 1.0) {
      continue;  // both dead: nothing to compare
    }
    EXPECT_LE(p.write.throughput_mbps / 22.7,
              p.read.throughput_mbps / 18.0 + 0.1)
        << p.frequency_hz;
  }
}

TEST(ExperimentTest, ReconFindsVulnerableBand) {
  FrequencySweep sweep(ScenarioId::kPlasticTower);
  SweepConfig base;
  base.ramp = sim::Duration::from_seconds(0.5);
  base.duration = sim::Duration::from_seconds(3.0);
  const auto recon = sweep.recon(best_attack(), 100.0, 16900.0, 200.0, &base);
  ASSERT_FALSE(recon.coarse.empty());
  ASSERT_FALSE(recon.refined.empty());
  // The paper's Section 4.1 band: roughly 300 Hz .. 1.7 kHz.
  ASSERT_TRUE(recon.band_lo_hz.has_value());
  ASSERT_TRUE(recon.band_hi_hz.has_value());
  EXPECT_GT(*recon.band_lo_hz, 150.0);
  EXPECT_LT(*recon.band_lo_hz, 500.0);
  EXPECT_GT(*recon.band_hi_hz, 1000.0);
  EXPECT_LT(*recon.band_hi_hz, 2200.0);
  // The baseline comes from a true speaker-off run, not a silent attack.
  EXPECT_NEAR(recon.baseline_mbps, 22.7, 0.5);
}

TEST(ExperimentTest, CrashCadenceNearEightySeconds) {
  CrashExperiments experiments(ScenarioId::kPlasticTower);
  CrashExperimentConfig config;
  config.attack = best_attack();

  const CrashResult ext4 = experiments.ext4(config);
  ASSERT_TRUE(ext4.crashed);
  EXPECT_NEAR(ext4.time_to_crash_s, 80.0, 1.0);
  EXPECT_NE(ext4.error_output.find("-5"), std::string::npos);

  const CrashResult ubuntu = experiments.ubuntu_server(config);
  ASSERT_TRUE(ubuntu.crashed);
  EXPECT_NEAR(ubuntu.time_to_crash_s, 81.0, 1.5);
  EXPECT_GT(ubuntu.time_to_crash_s, ext4.time_to_crash_s);

  const CrashResult rocksdb = experiments.rocksdb(config);
  ASSERT_TRUE(rocksdb.crashed);
  EXPECT_NEAR(rocksdb.time_to_crash_s, 81.3, 2.0);
  EXPECT_NE(rocksdb.error_output.find("WAL sync failed"),
            std::string::npos);
}

TEST(ExperimentTest, NoCrashWithoutAttack) {
  CrashExperiments experiments(ScenarioId::kPlasticTower);
  CrashExperimentConfig config;
  config.attack = best_attack();
  config.attack.spl_air_db = -100.0;  // silence
  config.limit = sim::Duration::from_seconds(30.0);
  const CrashResult r = experiments.ext4(config);
  EXPECT_FALSE(r.crashed);
}

TEST(ExperimentTest, FormattersProduceAllRows) {
  std::vector<CrashRow> rows;
  CrashResult ok;
  ok.crashed = true;
  ok.time_to_crash_s = 80.0;
  ok.error_output = "err";
  rows.push_back({"Ext4", "fs", ok});
  rows.push_back({"App", "thing", CrashResult{}});
  const sim::Table t = format_table3(rows);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 2), "80.0 seconds");
  EXPECT_EQ(t.at(1, 2), "-");
}

}  // namespace
}  // namespace deepnote::core
