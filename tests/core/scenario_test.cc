#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/attack.h"
#include "core/testbed.h"

namespace deepnote::core {
namespace {

TEST(ScenarioTest, AllThreeScenariosBuild) {
  for (auto id : {ScenarioId::kPlasticFloor, ScenarioId::kPlasticTower,
                  ScenarioId::kMetalTower}) {
    const ScenarioSpec spec = make_scenario(id);
    EXPECT_EQ(spec.id, id);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.enclosure.panel_modes.empty());
    EXPECT_GT(spec.hdd.geometry.total_sectors(), 0u);
    // Every scenario uses the same victim drive.
    EXPECT_DOUBLE_EQ(spec.hdd.servo.write_fault_fraction, 0.10);
  }
}

TEST(ScenarioTest, TankWaterIsFresh) {
  const ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower);
  EXPECT_EQ(spec.water.salinity_ppt, 0.0);
  EXPECT_EQ(spec.absorption, acoustics::AbsorptionModel::kFreshwater);
}

TEST(ScenarioTest, MetalWallHeavierThanPlastic) {
  const auto plastic = make_scenario(ScenarioId::kPlasticTower);
  const auto metal = make_scenario(ScenarioId::kMetalTower);
  EXPECT_GT(metal.enclosure.material.surface_density_kg_m2,
            plastic.enclosure.material.surface_density_kg_m2);
}

TEST(ScenarioTest, OsTimeoutCadenceIsSeventyFiveSeconds) {
  const ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower);
  EXPECT_NEAR(spec.os_device.command_timeout.seconds() *
                  spec.os_device.attempts,
              75.0, 1e-9);
}

TEST(AttackTest, SourceLevelUsesPlusTwentySixRule) {
  AttackConfig attack;
  attack.spl_air_db = 140.0;
  EXPECT_NEAR(attack.source_level_water_db(), 166.02, 0.01);
}

TEST(AttackTest, SourceEmitsRequestedTone) {
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  const auto source = attack.make_source();
  const auto tone = source.emitted(sim::SimTime::zero());
  EXPECT_TRUE(tone.active);
  EXPECT_EQ(tone.frequency_hz, 650.0);
  EXPECT_NEAR(tone.level_db, 166.02, 0.01);
}

TEST(TestbedTest, ExteriorSplFallsWithDistance) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack;
  double prev = 1e9;
  for (double d : {0.01, 0.05, 0.10, 0.15, 0.20, 0.25}) {
    attack.distance_m = d;
    const double spl = bed.exterior_spl_db(attack);
    EXPECT_LT(spl, prev) << d;
    prev = spl;
  }
  // 1 cm -> 25 cm: ~28 dB of spherical spreading.
  attack.distance_m = 0.01;
  const double near = bed.exterior_spl_db(attack);
  attack.distance_m = 0.25;
  EXPECT_NEAR(near - bed.exterior_spl_db(attack), 27.96, 0.05);
}

TEST(TestbedTest, OfftrackPeaksInVulnerableBand) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack;
  attack.distance_m = 0.01;
  auto offtrack = [&](double f) {
    attack.frequency_hz = f;
    return bed.predicted_offtrack_nm(attack);
  };
  const double write_fault =
      bed.drive().servo().fault_threshold_nm(hdd::AccessKind::kWrite);
  // Inside the paper's vulnerable band: far past the write threshold.
  EXPECT_GT(offtrack(650.0), 5.0 * write_fault);
  EXPECT_GT(offtrack(400.0), write_fault);
  EXPECT_GT(offtrack(1000.0), write_fault);
  // Outside: safe.
  EXPECT_LT(offtrack(100.0), write_fault);
  EXPECT_LT(offtrack(8000.0), write_fault);
}

TEST(TestbedTest, OfftrackDecaysWithDistance) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  double prev = 1e12;
  for (double d : {0.01, 0.05, 0.10, 0.15, 0.20, 0.25}) {
    attack.distance_m = d;
    const double nm = bed.predicted_offtrack_nm(attack);
    EXPECT_LT(nm, prev) << d;
    prev = nm;
  }
}

TEST(TestbedTest, ApplyAttackParksDriveAtBestParameters) {
  Testbed bed(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack;  // defaults: 650 Hz, 140 dB, 1 cm
  bed.apply_attack(sim::SimTime::zero(), attack);
  EXPECT_TRUE(bed.drive().parked());
  EXPECT_TRUE(bed.active_attack().has_value());
  bed.stop_attack(sim::SimTime::from_seconds(1));
  EXPECT_FALSE(bed.drive().parked());
  EXPECT_FALSE(bed.active_attack().has_value());
}

TEST(ScenarioTest, SteelVesselResistsPoolSpeaker) {
  // Extension scenario: the paper's best attack barely moves the heads
  // behind a pressure hull, and even the pool speaker's maximum output
  // (clipped by the transducer) cannot park the drive...
  Testbed vessel(make_scenario(ScenarioId::kSteelVessel));
  AttackConfig attack;  // 650 Hz, 140 dB, 1 cm
  EXPECT_LT(vessel.predicted_offtrack_nm(attack), 5.0);
  attack.spl_air_db = 200.0;  // beyond the AQ339's ceiling: clips
  EXPECT_LT(vessel.predicted_offtrack_nm(attack), 25.0);
  // ...but the required level (amplitude scales linearly with pressure)
  // is within reach of a sonar-class projector (<= 194 dB re 20 uPa).
  attack.spl_air_db = 140.0;
  const double at_140 = vessel.predicted_offtrack_nm(attack);
  const double required_air_db =
      140.0 + 20.0 * std::log10(25.0 / at_140);
  EXPECT_LT(required_air_db, 194.0);
  EXPECT_GT(required_air_db, 150.0);
}

TEST(ScenarioTest, SteelVesselSitsInOcean) {
  const ScenarioSpec spec = make_scenario(ScenarioId::kSteelVessel);
  EXPECT_GT(spec.water.salinity_ppt, 30.0);
  EXPECT_EQ(spec.absorption, acoustics::AbsorptionModel::kAinslieMcColm);
}

TEST(TestbedTest, MetalScenarioDiesAboveThirteenHundredHz) {
  Testbed metal(make_scenario(ScenarioId::kMetalTower));
  Testbed plastic(make_scenario(ScenarioId::kPlasticTower));
  AttackConfig attack;
  attack.frequency_hz = 1500.0;
  attack.distance_m = 0.01;
  const double write_fault = 10.0;
  // Paper Section 4.1: Scenario 3's effectiveness ends at ~1.3 kHz while
  // the plastic scenarios extend further.
  EXPECT_LT(metal.predicted_offtrack_nm(attack), write_fault);
  EXPECT_GT(plastic.predicted_offtrack_nm(attack), write_fault);
}

}  // namespace
}  // namespace deepnote::core
