#include "core/detector.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/attack.h"
#include "core/scenario.h"
#include "core/testbed.h"

namespace deepnote::core {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(DetectorTest, QuietOnSteadyWorkload) {
  AttackDetector det;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 10000; ++i) {
    t = t + Duration::from_micros(200);
    det.record_ok(t, 180e-6 + (i % 7) * 5e-6);  // mild jitter
  }
  EXPECT_FALSE(det.alerted());
  EXPECT_NEAR(det.baseline_latency_s(), 195e-6, 40e-6);
}

TEST(DetectorTest, AlertsOnLatencyJump) {
  AttackDetector det;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 1000; ++i) {
    t = t + Duration::from_micros(200);
    det.record_ok(t, 200e-6);
  }
  ASSERT_FALSE(det.alerted());
  // The attack begins: latencies jump to ~15 ms (retry storms).
  for (int i = 0; i < 100 && !det.alerted(); ++i) {
    t = t + Duration::from_millis(15);
    det.record_ok(t, 15e-3);
  }
  EXPECT_TRUE(det.alerted());
  EXPECT_NE(det.alert_reason().find("latency anomaly"), std::string::npos);
}

TEST(DetectorTest, AlertsOnErrorBurst) {
  AttackDetector det;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 500; ++i) {
    t = t + Duration::from_micros(200);
    det.record_ok(t, 200e-6);
  }
  det.record_error(t + Duration::from_seconds(75));
  det.record_error(t + Duration::from_seconds(150));
  EXPECT_FALSE(det.alerted());
  det.record_error(t + Duration::from_seconds(225));
  EXPECT_TRUE(det.alerted());
  EXPECT_NE(det.alert_reason().find("consecutive I/O failures"),
            std::string::npos);
}

TEST(DetectorTest, SuccessResetsErrorBurst) {
  AttackDetector det;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 500; ++i) {
    t = t + Duration::from_micros(200);
    det.record_ok(t, 200e-6);
  }
  det.record_error(t);
  det.record_error(t);
  det.record_ok(t, 200e-6);  // recovered
  det.record_error(t);
  det.record_error(t);
  EXPECT_FALSE(det.alerted());
}

TEST(DetectorTest, BaselineNotPoisonedDuringAttack) {
  AttackDetector det;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 1000; ++i) {
    t = t + Duration::from_micros(200);
    det.record_ok(t, 200e-6);
  }
  const double baseline_before = det.baseline_latency_s();
  for (int i = 0; i < 500; ++i) {
    t = t + Duration::from_millis(15);
    det.record_ok(t, 15e-3);
  }
  // The baseline must not have learned the attack latencies.
  EXPECT_LT(det.baseline_latency_s(), baseline_before * 1.5);
}

TEST(DetectorTest, AcknowledgeClearsAlert) {
  AttackDetector det;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 500; ++i) det.record_ok(t, 200e-6);
  for (int i = 0; i < 3; ++i) det.record_error(t);
  ASSERT_TRUE(det.alerted());
  det.acknowledge();
  EXPECT_FALSE(det.alerted());
}

TEST(DetectorTest, EndToEndAgainstSimulatedAttack) {
  // Full-stack: FIO-style writer on the testbed; the detector watches
  // op completions and must fire within seconds of the attack starting.
  ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  Testbed bed(spec);
  AttackDetector det;

  std::vector<std::byte> block(4096, std::byte{0x5a});
  SimTime t = SimTime::zero();
  std::uint64_t lba = 0;
  const SimTime attack_at = SimTime::from_seconds(10);
  bool attack_applied = false;
  SimTime detected = SimTime::infinity();
  while (t < SimTime::from_seconds(120)) {
    if (!attack_applied && t >= attack_at) {
      AttackConfig attack;
      attack.distance_m = 0.10;  // degraded but serving: subtle case
      bed.apply_attack(t, attack);
      attack_applied = true;
    }
    const auto begin = t + spec.fio_submit_overhead;
    const storage::BlockIo io = bed.device().write(begin, lba, 8, block);
    if (io.ok()) {
      det.record_ok(io.complete, (io.complete - t).seconds());
    } else {
      det.record_error(io.complete);
    }
    lba += 8;
    t = io.complete;
    if (det.alerted()) {
      detected = t;
      break;
    }
  }
  ASSERT_TRUE(det.alerted());
  const double reaction = (detected - attack_at).seconds();
  EXPECT_GT(reaction, 0.0);
  EXPECT_LT(reaction, 30.0) << "detector too slow: " << reaction << "s";
}

}  // namespace
}  // namespace deepnote::core
