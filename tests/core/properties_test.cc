// Cross-scenario property tests: invariants that must hold in every
// testbed configuration, parameterized over all four scenarios.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/testbed.h"
#include "workload/fio.h"

namespace deepnote::core {
namespace {

class ScenarioPropertyTest : public ::testing::TestWithParam<ScenarioId> {};

TEST_P(ScenarioPropertyTest, BaselinesIdenticalAcrossScenarios) {
  // The victim drive is the same in every scenario; without an attack the
  // container cannot matter.
  ScenarioSpec spec = make_scenario(GetParam());
  spec.hdd.retain_data = false;
  Testbed bed(spec);
  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kSeqWrite;
  job.submit_overhead = spec.fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(1.0);
  job.duration = sim::Duration::from_seconds(5.0);
  workload::FioRunner runner(bed.device());
  EXPECT_NEAR(runner.run(sim::SimTime::zero(), job).throughput_mbps, 22.7,
              0.2);
}

TEST_P(ScenarioPropertyTest, OfftrackScalesLinearlyWithSourcePressure) {
  Testbed bed(make_scenario(GetParam()));
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.distance_m = 0.01;
  attack.spl_air_db = 120.0;
  const double lo = bed.predicted_offtrack_nm(attack);
  attack.spl_air_db = 140.0;  // +20 dB = x10 pressure
  const double hi = bed.predicted_offtrack_nm(attack);
  ASSERT_GT(lo, 0.0);
  EXPECT_NEAR(hi / lo, 10.0, 0.01);
}

TEST_P(ScenarioPropertyTest, OfftrackMonotoneInDistance) {
  Testbed bed(make_scenario(GetParam()));
  AttackConfig attack;
  attack.frequency_hz = 650.0;
  double prev = 1e18;
  for (double d = 0.01; d <= 0.5; d *= 1.5) {
    attack.distance_m = d;
    const double nm = bed.predicted_offtrack_nm(attack);
    EXPECT_LE(nm, prev) << d;
    prev = nm;
  }
}

TEST_P(ScenarioPropertyTest, SafeFarOutsideTheAudioBand) {
  Testbed bed(make_scenario(GetParam()));
  AttackConfig attack;
  attack.distance_m = 0.01;
  for (double f : {20.0, 50.0, 10000.0, 16000.0}) {
    attack.frequency_hz = f;
    EXPECT_LT(bed.predicted_offtrack_nm(attack), 10.0)
        << scenario_name(GetParam()) << " at " << f << " Hz";
  }
}

TEST_P(ScenarioPropertyTest, StopAttackAlwaysRecovers) {
  Testbed bed(make_scenario(GetParam()));
  AttackConfig attack;  // best attack
  bed.apply_attack(sim::SimTime::zero(), attack);
  bed.stop_attack(sim::SimTime::from_seconds(5));
  EXPECT_FALSE(bed.drive().parked());
  std::vector<std::byte> out(4096);
  const auto io = bed.device().read(sim::SimTime::from_seconds(5), 0, 8, out);
  EXPECT_TRUE(io.ok());
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioPropertyTest,
                         ::testing::Values(ScenarioId::kPlasticFloor,
                                           ScenarioId::kPlasticTower,
                                           ScenarioId::kMetalTower,
                                           ScenarioId::kSteelVessel),
                         [](const auto& info) {
                           switch (info.param) {
                             case ScenarioId::kPlasticFloor:
                               return "PlasticFloor";
                             case ScenarioId::kPlasticTower:
                               return "PlasticTower";
                             case ScenarioId::kMetalTower:
                               return "MetalTower";
                             case ScenarioId::kSteelVessel:
                               return "SteelVessel";
                           }
                           return "Unknown";
                         });

TEST(DeterminismTest, IdenticalSeedsGiveIdenticalExperiments) {
  auto run_once = [] {
    ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower, 1234);
    spec.hdd.retain_data = false;
    Testbed bed(spec);
    AttackConfig attack;
    attack.distance_m = 0.10;  // stochastic regime: trips + retries
    bed.apply_attack(sim::SimTime::zero(), attack);
    workload::FioJobConfig job;
    job.pattern = workload::IoPattern::kSeqWrite;
    job.submit_overhead = spec.fio_submit_overhead;
    job.ramp = sim::Duration::from_seconds(2.0);
    job.duration = sim::Duration::from_seconds(10.0);
    job.seed = 99;
    workload::FioRunner runner(bed.device());
    return runner.run(sim::SimTime::zero(), job);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.ops_errored, b.ops_errored);
  ASSERT_EQ(a.latency_ms.has_value(), b.latency_ms.has_value());
  if (a.latency_ms) EXPECT_EQ(*a.latency_ms, *b.latency_ms);
}

TEST(DeterminismTest, DifferentDriveSeedsDifferInStochasticRegime) {
  auto run_with_seed = [](std::uint64_t seed) {
    ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower, seed);
    spec.hdd.retain_data = false;
    Testbed bed(spec);
    AttackConfig attack;
    attack.distance_m = 0.10;
    bed.apply_attack(sim::SimTime::zero(), attack);
    workload::FioJobConfig job;
    job.pattern = workload::IoPattern::kSeqWrite;
    job.submit_overhead = spec.fio_submit_overhead;
    job.ramp = sim::Duration::from_seconds(2.0);
    job.duration = sim::Duration::from_seconds(10.0);
    workload::FioRunner runner(bed.device());
    return runner.run(sim::SimTime::zero(), job).ops_completed;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(FioMixedTest, MixedPatternSplitsByRatio) {
  ScenarioSpec spec = make_scenario(ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  Testbed bed(spec);
  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kRandMixed;
  job.read_mix = 0.7;
  job.span_bytes = 64 << 20;  // small span: seeks stay short
  job.submit_overhead = spec.fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(1.0);
  job.duration = sim::Duration::from_seconds(10.0);
  workload::FioRunner runner(bed.device());
  const auto report = runner.run(sim::SimTime::zero(), job);
  ASSERT_GT(report.throughput_mbps, 0.0);
  EXPECT_NEAR(report.read_mbps / (report.read_mbps + report.write_mbps),
              0.7, 0.1);
  EXPECT_NEAR(report.read_mbps + report.write_mbps, report.throughput_mbps,
              0.2);
}

}  // namespace
}  // namespace deepnote::core
