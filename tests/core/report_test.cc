#include "core/report.h"

#include <gtest/gtest.h>

namespace deepnote::core {
namespace {

TEST(ReportTest, FormatDistance) {
  EXPECT_EQ(format_distance(std::nullopt), "No Attack");
  EXPECT_EQ(format_distance(0.01), "1 cm");
  EXPECT_EQ(format_distance(0.25), "25 cm");
  EXPECT_EQ(format_distance(0.155), "15.5 cm");
}

TEST(ReportTest, Table1LayoutAndDashes) {
  std::vector<FioRangeRow> rows(2);
  rows[0].distance_m = std::nullopt;
  rows[0].read.throughput_mbps = 18.0;
  rows[0].read.latency_ms = 0.23;
  rows[0].write.throughput_mbps = 22.7;
  rows[0].write.latency_ms = 0.18;
  rows[1].distance_m = 0.01;  // dead: no latency
  const sim::Table t = format_table1(rows);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.at(0, 0), "No Attack");
  EXPECT_EQ(t.at(0, 1), "18.0");
  EXPECT_EQ(t.at(0, 3), "0.2");
  EXPECT_EQ(t.at(1, 0), "1 cm");
  EXPECT_EQ(t.at(1, 1), "0.0");
  EXPECT_EQ(t.at(1, 3), "-");
  EXPECT_EQ(t.at(1, 4), "-");
}

TEST(ReportTest, Table2ScalesIoRate) {
  std::vector<KvRangeRow> rows(1);
  rows[0].distance_m = std::nullopt;
  rows[0].report.throughput_mbps = 8.7;
  rows[0].report.ops_per_second = 110000.0;
  const sim::Table t = format_table2(rows);
  EXPECT_EQ(t.at(0, 1), "8.7");
  EXPECT_EQ(t.at(0, 2), "1.1");  // x100k ops/s, the paper's unit
}

TEST(ReportTest, Figure2TwoSeries) {
  std::vector<std::pair<std::string, std::vector<SweepPoint>>> series(2);
  series[0].first = "S1";
  series[1].first = "S2";
  for (auto& [name, points] : series) {
    points.resize(2);
    points[0].frequency_hz = 300;
    points[0].write.throughput_mbps = 0.1;
    points[0].read.throughput_mbps = 1.0;
    points[1].frequency_hz = 2000;
    points[1].write.throughput_mbps = 22.7;
    points[1].read.throughput_mbps = 18.0;
  }
  const sim::Table w = format_figure2(series, true);
  EXPECT_EQ(w.num_columns(), 3u);
  EXPECT_EQ(w.num_rows(), 2u);
  EXPECT_EQ(w.at(0, 0), "300");
  EXPECT_EQ(w.at(0, 1), "0.1");
  const sim::Table r = format_figure2(series, false);
  EXPECT_EQ(r.at(1, 2), "18.0");
}

}  // namespace
}  // namespace deepnote::core
