// Compares two BENCH files (deepnote-bench-v1) and fails loudly on
// performance regressions.
//
//   bench_compare <reference.json> <candidate.json> [--threshold 0.15]
//
// A suite regresses when candidate ns/op exceeds reference ns/op by more
// than the threshold fraction; an end-to-end trials/sec entry regresses
// when the candidate rate drops below the reference by more than the
// threshold fraction (higher is better). Every entry under "end_to_end"
// present in both files is compared; entries only one side has are
// reported but never fail the gate. An end-to-end entry in the
// candidate that carries a "min_speedup" field is additionally gated on
// its own recorded baseline: candidate current/baseline must reach that
// floor (this is how the 1000-node cluster engine enforces >= 10x over
// the serial composition). Exit code 1 with a readable per-suite diff
// when anything regresses, 0 otherwise.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/minijson.h"

namespace {

using deepnote::tools::JsonValue;
using deepnote::tools::json_parse;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct EndToEndEntry {
  double current = 0.0;  // trials/s
  std::optional<double> baseline;
  std::optional<double> min_speedup;
};

struct BenchFile {
  std::map<std::string, double> suites;  // name -> current ns/op
  std::map<std::string, EndToEndEntry> end_to_end;
};

BenchFile load(const std::string& path) {
  const JsonValue root = json_parse(read_file(path));
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->string_or("") != "deepnote-bench-v1") {
    throw std::runtime_error(path + ": not a deepnote-bench-v1 file");
  }
  BenchFile f;
  if (const JsonValue* suites = root.find("suites")) {
    for (const auto& [name, suite] : suites->object) {
      if (const JsonValue* ns = suite.find("current_ns_per_op");
          ns != nullptr && ns->is_number()) {
        f.suites[name] = ns->number;
      }
    }
  }
  if (const JsonValue* e2e = root.find("end_to_end")) {
    for (const auto& [name, entry] : e2e->object) {
      const JsonValue* t = entry.find("current_trials_per_s");
      if (t == nullptr || !t->is_number()) continue;
      EndToEndEntry e;
      e.current = t->number;
      if (const JsonValue* b = entry.find("baseline_trials_per_s");
          b != nullptr && b->is_number()) {
        e.baseline = b->number;
      }
      if (const JsonValue* m = entry.find("min_speedup");
          m != nullptr && m->is_number()) {
        e.min_speedup = m->number;
      }
      f.end_to_end[name] = e;
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        return 2;
      }
      threshold = std::atof(argv[++i]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <reference.json> <candidate.json> "
                 "[--threshold 0.15]\n");
    return 2;
  }

  try {
    const BenchFile ref = load(paths[0]);
    const BenchFile cand = load(paths[1]);

    int regressions = 0;
    int compared = 0;
    std::printf("%-44s %14s %14s %9s\n", "suite", "ref ns/op", "cand ns/op",
                "delta");
    for (const auto& [name, ref_ns] : ref.suites) {
      const auto it = cand.suites.find(name);
      if (it == cand.suites.end()) {
        std::printf("%-44s %14.1f %14s %9s\n", name.c_str(), ref_ns, "MISSING",
                    "-");
        continue;
      }
      ++compared;
      const double delta = ref_ns > 0 ? (it->second - ref_ns) / ref_ns : 0.0;
      const bool regressed = delta > threshold;
      std::printf("%-44s %14.1f %14.1f %+8.1f%%%s\n", name.c_str(), ref_ns,
                  it->second, delta * 100.0,
                  regressed ? "  << REGRESSION" : "");
      if (regressed) ++regressions;
    }
    for (const auto& [name, ns] : cand.suites) {
      if (ref.suites.find(name) == ref.suites.end()) {
        std::printf("%-44s %14s %14.1f %9s\n", name.c_str(), "NEW", ns, "-");
      }
    }
    for (const auto& [name, ref_entry] : ref.end_to_end) {
      const std::string label = "end_to_end." + name;
      const double ref_rate = ref_entry.current;
      const auto it = cand.end_to_end.find(name);
      if (it == cand.end_to_end.end()) {
        std::printf("%-44s %12.3f/s %14s %9s\n", label.c_str(), ref_rate,
                    "MISSING", "-");
        continue;
      }
      ++compared;
      const double delta =
          ref_rate > 0 ? (it->second.current - ref_rate) / ref_rate : 0.0;
      const bool regressed = delta < -threshold;  // higher is better here
      std::printf("%-44s %12.3f/s %12.3f/s %+8.1f%%%s\n", label.c_str(),
                  ref_rate, it->second.current, delta * 100.0,
                  regressed ? "  << REGRESSION" : "");
      if (regressed) ++regressions;
    }
    for (const auto& [name, entry] : cand.end_to_end) {
      if (ref.end_to_end.find(name) == ref.end_to_end.end()) {
        const std::string label = "end_to_end." + name;
        std::printf("%-44s %14s %12.3f/s %9s\n", label.c_str(), "NEW",
                    entry.current, "-");
      }
    }
    // Speedup floors travel with the candidate file: an entry that
    // records both its own baseline and a min_speedup must clear it.
    for (const auto& [name, entry] : cand.end_to_end) {
      if (!entry.min_speedup.has_value() || !entry.baseline.has_value() ||
          *entry.baseline <= 0) {
        continue;
      }
      ++compared;
      const double speedup = entry.current / *entry.baseline;
      const bool regressed = speedup < *entry.min_speedup;
      std::printf("%-44s %13.2fx %12.2fx%s\n",
                  ("end_to_end." + name + ".speedup").c_str(),
                  *entry.min_speedup, speedup,
                  regressed ? "  << BELOW FLOOR" : "");
      if (regressed) ++regressions;
    }
    if (compared == 0) {
      std::fprintf(stderr, "bench_compare: no overlapping suites to compare\n");
      return 2;
    }
    if (regressions > 0) {
      std::printf("\n%d regression(s) beyond %.0f%% threshold\n", regressions,
                  threshold * 100.0);
      return 1;
    }
    std::printf("\nno regressions beyond %.0f%% threshold (%d compared)\n",
                threshold * 100.0, compared);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  return 0;
}
