// Compares two BENCH files (deepnote-bench-v1) and fails loudly on
// performance regressions.
//
//   bench_compare <reference.json> <candidate.json> [--threshold 0.15]
//                 [--allow-missing]
//
// A suite regresses when candidate ns/op exceeds reference ns/op by more
// than the threshold fraction; an end-to-end trials/sec entry regresses
// when the candidate rate drops below the reference by more than the
// threshold fraction (higher is better). Every entry under "end_to_end"
// present in both files is compared. A suite or end-to-end entry the
// reference has but the candidate DOESN'T is a failure — a benchmark
// that silently stops running is indistinguishable from one that
// regressed to nothing — unless --allow-missing restores the old
// report-only behavior (CI smoke runs use it: the smoke invocation
// deliberately skips the heavy cells). Candidate-only entries are
// reported but never fail. An end-to-end entry in the candidate that
// carries a "min_speedup" field is additionally gated on its own
// recorded baseline: candidate current/baseline must reach that floor
// (this is how the 1000-node cluster engine enforces >= 10x over the
// serial composition). An entry with a "gates" object is gated on its
// own "metrics" absolutely: each gated metric must stay inside
// [min, max] — this is how overload_recovery_1k enforces the <= 30 s
// recovery time regardless of host speed. The per-suite table is
// sorted worst delta first so the regression (or near-miss) is always
// the first row; the exit-1 failure message names every offending
// suite. Exit code 1 when anything regresses, 0 otherwise.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/minijson.h"

namespace {

using deepnote::tools::JsonValue;
using deepnote::tools::json_parse;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct MetricGate {
  std::optional<double> min;
  std::optional<double> max;
};

struct EndToEndEntry {
  double current = 0.0;  // trials/s
  std::optional<double> baseline;
  std::optional<double> min_speedup;
  std::map<std::string, double> metrics;    // sim-time measurements
  std::map<std::string, MetricGate> gates;  // absolute bounds on metrics
};

struct BenchFile {
  std::map<std::string, double> suites;  // name -> current ns/op
  std::map<std::string, EndToEndEntry> end_to_end;
};

BenchFile load(const std::string& path) {
  const JsonValue root = json_parse(read_file(path));
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->string_or("") != "deepnote-bench-v1") {
    throw std::runtime_error(path + ": not a deepnote-bench-v1 file");
  }
  BenchFile f;
  if (const JsonValue* suites = root.find("suites")) {
    for (const auto& [name, suite] : suites->object) {
      if (const JsonValue* ns = suite.find("current_ns_per_op");
          ns != nullptr && ns->is_number()) {
        f.suites[name] = ns->number;
      }
    }
  }
  if (const JsonValue* e2e = root.find("end_to_end")) {
    for (const auto& [name, entry] : e2e->object) {
      const JsonValue* t = entry.find("current_trials_per_s");
      if (t == nullptr || !t->is_number()) continue;
      EndToEndEntry e;
      e.current = t->number;
      if (const JsonValue* b = entry.find("baseline_trials_per_s");
          b != nullptr && b->is_number()) {
        e.baseline = b->number;
      }
      if (const JsonValue* m = entry.find("min_speedup");
          m != nullptr && m->is_number()) {
        e.min_speedup = m->number;
      }
      if (const JsonValue* metrics = entry.find("metrics")) {
        for (const auto& [metric, v] : metrics->object) {
          if (v.is_number()) e.metrics[metric] = v.number;
        }
      }
      if (const JsonValue* gates = entry.find("gates")) {
        for (const auto& [metric, bounds] : gates->object) {
          MetricGate gate;
          if (const JsonValue* lo = bounds.find("min");
              lo != nullptr && lo->is_number()) {
            gate.min = lo->number;
          }
          if (const JsonValue* hi = bounds.find("max");
              hi != nullptr && hi->is_number()) {
            gate.max = hi->number;
          }
          e.gates[metric] = gate;
        }
      }
      f.end_to_end[name] = e;
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.15;
  bool allow_missing = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        return 2;
      }
      threshold = std::atof(argv[++i]);
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <reference.json> <candidate.json> "
                 "[--threshold 0.15] [--allow-missing]\n");
    return 2;
  }

  try {
    const BenchFile ref = load(paths[0]);
    const BenchFile cand = load(paths[1]);

    // One row per comparison. `badness` is the sort key — the fraction
    // by which the candidate is worse than what it is held against
    // (positive = worse), so the table leads with the entries closest
    // to (or past) the gate regardless of which metric they use.
    struct Row {
      std::string name;
      std::string ref_col;
      std::string cand_col;
      std::string delta_col;
      double badness = 0.0;
      bool comparable = false;  // one-sided rows sort last, never fail
      bool regressed = false;
    };
    std::vector<Row> rows;
    auto fmt = [](const char* f, double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), f, v);
      return std::string(buf);
    };

    int compared = 0;
    for (const auto& [name, ref_ns] : ref.suites) {
      const auto it = cand.suites.find(name);
      if (it == cand.suites.end()) {
        // A vanished suite fails unless --allow-missing: silence is not
        // evidence of health. Max badness so it leads the table.
        rows.push_back({name, fmt("%.1f", ref_ns), "MISSING", "-",
                        /*badness=*/1e9, /*comparable=*/!allow_missing,
                        /*regressed=*/!allow_missing});
        continue;
      }
      ++compared;
      const double delta = ref_ns > 0 ? (it->second - ref_ns) / ref_ns : 0.0;
      rows.push_back({name, fmt("%.1f", ref_ns), fmt("%.1f", it->second),
                      fmt("%+.1f%%", delta * 100.0), delta, true,
                      delta > threshold});
    }
    for (const auto& [name, ns] : cand.suites) {
      if (ref.suites.find(name) == ref.suites.end()) {
        rows.push_back({name, "NEW", fmt("%.1f", ns), "-"});
      }
    }
    for (const auto& [name, ref_entry] : ref.end_to_end) {
      const std::string label = "end_to_end." + name;
      const double ref_rate = ref_entry.current;
      const auto it = cand.end_to_end.find(name);
      if (it == cand.end_to_end.end()) {
        rows.push_back({label, fmt("%.3f/s", ref_rate), "MISSING", "-",
                        /*badness=*/1e9, /*comparable=*/!allow_missing,
                        /*regressed=*/!allow_missing});
        continue;
      }
      ++compared;
      const double delta =
          ref_rate > 0 ? (it->second.current - ref_rate) / ref_rate : 0.0;
      // Higher is better for rates: badness is the drop.
      rows.push_back({label, fmt("%.3f/s", ref_rate),
                      fmt("%.3f/s", it->second.current),
                      fmt("%+.1f%%", delta * 100.0), -delta, true,
                      delta < -threshold});
    }
    for (const auto& [name, entry] : cand.end_to_end) {
      if (ref.end_to_end.find(name) == ref.end_to_end.end()) {
        rows.push_back({"end_to_end." + name, "NEW",
                        fmt("%.3f/s", entry.current), "-"});
      }
    }
    // Speedup floors travel with the candidate file: an entry that
    // records both its own baseline and a min_speedup must clear it.
    // Badness is the shortfall against the floor, so a floor check that
    // barely passes still sorts near the top.
    for (const auto& [name, entry] : cand.end_to_end) {
      if (!entry.min_speedup.has_value() || !entry.baseline.has_value() ||
          *entry.baseline <= 0) {
        continue;
      }
      ++compared;
      const double speedup = entry.current / *entry.baseline;
      const double floor = *entry.min_speedup;
      rows.push_back({"end_to_end." + name + ".speedup", fmt("%.2fx", floor),
                      fmt("%.2fx", speedup),
                      fmt("%+.1f%%", (speedup / floor - 1.0) * 100.0),
                      floor > 0 ? 1.0 - speedup / floor : 0.0, true,
                      speedup < floor});
    }
    // Absolute metric gates travel with the candidate too: an entry
    // that records "metrics" and "gates" must keep every gated metric
    // inside [min, max]. These are sim-time measurements (e.g. seconds
    // to recover from an overload), so no reference or threshold
    // applies — the bound is the contract. Badness is the fractional
    // distance past the bound (negative slack when inside it).
    for (const auto& [name, entry] : cand.end_to_end) {
      for (const auto& [metric, gate] : entry.gates) {
        const std::string label = "end_to_end." + name + "." + metric;
        const auto found = entry.metrics.find(metric);
        if (found == entry.metrics.end()) {
          rows.push_back({label, "gated", "NO METRIC", "-", /*badness=*/1e9,
                          /*comparable=*/true, /*regressed=*/true});
          ++compared;
          continue;
        }
        const double value = found->second;
        std::string bound;
        double badness = 0.0;
        bool regressed = false;
        if (gate.max.has_value()) {
          bound = fmt("<= %.4g", *gate.max);
          const double scale = std::max(std::abs(*gate.max), 1.0);
          badness = (value - *gate.max) / scale;
          regressed = value > *gate.max;
        }
        if (gate.min.has_value()) {
          if (!bound.empty()) bound += " ";
          bound += fmt(">= %.4g", *gate.min);
          const double scale = std::max(std::abs(*gate.min), 1.0);
          badness = std::max(badness, (*gate.min - value) / scale);
          regressed = regressed || value < *gate.min;
        }
        ++compared;
        rows.push_back({label, bound, fmt("%.4g", value), "-", badness,
                        /*comparable=*/true, regressed});
      }
    }
    if (compared == 0) {
      std::fprintf(stderr, "bench_compare: no overlapping suites to compare\n");
      return 2;
    }

    std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (a.comparable != b.comparable) return a.comparable;  // one-sided last
      return a.badness > b.badness;  // worst first
    });
    std::printf("%-44s %14s %14s %9s\n", "suite (worst delta first)", "ref",
                "cand", "delta");
    std::vector<std::string> offenders;
    for (const Row& r : rows) {
      std::printf("%-44s %14s %14s %9s%s\n", r.name.c_str(), r.ref_col.c_str(),
                  r.cand_col.c_str(), r.delta_col.c_str(),
                  r.regressed ? "  << FAIL" : "");
      if (r.regressed) offenders.push_back(r.name);
    }
    if (!offenders.empty()) {
      std::string list;
      for (const std::string& name : offenders) {
        if (!list.empty()) list += ", ";
        list += name;
      }
      std::printf("\n%zu regression(s) beyond %.0f%% threshold: %s\n",
                  offenders.size(), threshold * 100.0, list.c_str());
      return 1;
    }
    std::printf("\nno regressions beyond %.0f%% threshold (%d compared)\n",
                threshold * 100.0, compared);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  return 0;
}
