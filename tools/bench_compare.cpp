// Compares two BENCH files (deepnote-bench-v1) and fails loudly on
// performance regressions.
//
//   bench_compare <reference.json> <candidate.json> [--threshold 0.15]
//
// A suite regresses when candidate ns/op exceeds reference ns/op by more
// than the threshold fraction; the end-to-end trials/sec regresses when
// the candidate is slower than reference/(1+threshold). Exit code 1 with
// a readable per-suite diff when anything regresses, 0 otherwise.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/minijson.h"

namespace {

using deepnote::tools::JsonValue;
using deepnote::tools::json_parse;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct BenchFile {
  std::map<std::string, double> suites;  // name -> current ns/op
  std::optional<double> trials_per_s;
};

BenchFile load(const std::string& path) {
  const JsonValue root = json_parse(read_file(path));
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->string_or("") != "deepnote-bench-v1") {
    throw std::runtime_error(path + ": not a deepnote-bench-v1 file");
  }
  BenchFile f;
  if (const JsonValue* suites = root.find("suites")) {
    for (const auto& [name, suite] : suites->object) {
      if (const JsonValue* ns = suite.find("current_ns_per_op");
          ns != nullptr && ns->is_number()) {
        f.suites[name] = ns->number;
      }
    }
  }
  if (const JsonValue* t = root.find_path(
          {"end_to_end", "table2_range_kvdb", "current_trials_per_s"});
      t != nullptr && t->is_number()) {
    f.trials_per_s = t->number;
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        return 2;
      }
      threshold = std::atof(argv[++i]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <reference.json> <candidate.json> "
                 "[--threshold 0.15]\n");
    return 2;
  }

  try {
    const BenchFile ref = load(paths[0]);
    const BenchFile cand = load(paths[1]);

    int regressions = 0;
    int compared = 0;
    std::printf("%-44s %14s %14s %9s\n", "suite", "ref ns/op", "cand ns/op",
                "delta");
    for (const auto& [name, ref_ns] : ref.suites) {
      const auto it = cand.suites.find(name);
      if (it == cand.suites.end()) {
        std::printf("%-44s %14.1f %14s %9s\n", name.c_str(), ref_ns, "MISSING",
                    "-");
        continue;
      }
      ++compared;
      const double delta = ref_ns > 0 ? (it->second - ref_ns) / ref_ns : 0.0;
      const bool regressed = delta > threshold;
      std::printf("%-44s %14.1f %14.1f %+8.1f%%%s\n", name.c_str(), ref_ns,
                  it->second, delta * 100.0,
                  regressed ? "  << REGRESSION" : "");
      if (regressed) ++regressions;
    }
    for (const auto& [name, ns] : cand.suites) {
      if (ref.suites.find(name) == ref.suites.end()) {
        std::printf("%-44s %14s %14.1f %9s\n", name.c_str(), "NEW", ns, "-");
      }
    }
    if (ref.trials_per_s.has_value() && cand.trials_per_s.has_value()) {
      ++compared;
      const double delta =
          (*cand.trials_per_s - *ref.trials_per_s) / *ref.trials_per_s;
      const bool regressed = delta < -threshold;  // higher is better here
      std::printf("%-44s %12.3f/s %12.3f/s %+8.1f%%%s\n",
                  "end_to_end.table2_range_kvdb", *ref.trials_per_s,
                  *cand.trials_per_s, delta * 100.0,
                  regressed ? "  << REGRESSION" : "");
      if (regressed) ++regressions;
    }
    if (compared == 0) {
      std::fprintf(stderr, "bench_compare: no overlapping suites to compare\n");
      return 2;
    }
    if (regressions > 0) {
      std::printf("\n%d regression(s) beyond %.0f%% threshold\n", regressions,
                  threshold * 100.0);
      return 1;
    }
    std::printf("\nno regressions beyond %.0f%% threshold (%d compared)\n",
                threshold * 100.0, compared);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  return 0;
}
