// Minimal JSON parser/emitter for the perf tooling.
//
// Hand-rolled so the bench harness has no dependency beyond the standard
// library: parses the subset google-benchmark emits (objects, arrays,
// strings with escapes, doubles, bools, null) into an ordered tree.
// Throws std::runtime_error with a byte offset on malformed input.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace deepnote::tools {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys keep the first occurrence on find().
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// `find` chained through nested objects.
  const JsonValue* find_path(std::initializer_list<std::string_view> keys)
      const {
    const JsonValue* v = this;
    for (const auto key : keys) {
      v = v->find(key);
      if (v == nullptr) return nullptr;
    }
    return v;
  }

  double number_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::string string_or(std::string fallback) const {
    return kind == Kind::kString ? str : std::move(fallback);
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "minijson: " << what << " at byte " << pos_;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return JsonValue{};
      default:
        return number();
    }
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
    }
    pos_ += word.size();
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Keep it simple: decode BMP code points to UTF-8.
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = string_body();
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_body();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue json_parse(std::string_view text) {
  return detail::Parser(text).parse();
}

/// Escape a string for embedding in emitted JSON.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace deepnote::tools
