// Evaluates the Section 5 defense candidates against the best attack.
//
// For each defense: run the FIO write job at the paper's best attack
// parameters and at a sweep of frequencies, and report how much
// throughput survives — plus the overheating-risk proxy, since Section 5
// warns that insulating defenses fight the sea-water cooling that
// motivated underwater data centers in the first place.
//
//   $ ./examples/defense_evaluation
#include <cstdio>

#include "core/defense.h"
#include "workload/fio.h"

using namespace deepnote;

namespace {

double write_throughput_under(core::DefenseKind kind, double frequency_hz) {
  core::ScenarioSpec spec = core::with_defense(
      core::make_scenario(core::ScenarioId::kPlasticTower), kind);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  core::install_defense(bed, kind);

  core::AttackConfig attack;
  attack.frequency_hz = frequency_hz;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  bed.apply_attack(sim::SimTime::zero(), attack);

  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kSeqWrite;
  job.submit_overhead = spec.fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(3.0);
  job.duration = sim::Duration::from_seconds(10.0);
  workload::FioRunner runner(bed.device());
  return runner.run(sim::SimTime::zero(), job).throughput_mbps;
}

}  // namespace

int main() {
  std::printf("Defense evaluation — Scenario 2, 140 dB SPL at 1 cm\n");
  std::printf("(sequential-write throughput under attack; baseline "
              "22.7 MB/s)\n\n");

  const double freqs[] = {300.0, 500.0, 650.0, 900.0, 1300.0};
  std::printf("%-22s", "defense");
  for (double f : freqs) std::printf("  %6.0fHz", f);
  std::printf("   overheat-risk\n");
  std::printf("%s\n", std::string(22 + 5 * 9 + 16, '-').c_str());

  for (auto kind : {core::DefenseKind::kNone,
                    core::DefenseKind::kAbsorbingLiner,
                    core::DefenseKind::kVibrationDampener,
                    core::DefenseKind::kAugmentedController}) {
    const auto props = core::defense_properties(kind);
    std::printf("%-22s", props.name.c_str());
    for (double f : freqs) {
      std::printf("  %6.1f ", write_throughput_under(kind, f));
    }
    std::printf("   %.2f\n", props.overheating_risk);
  }

  std::printf(
      "\nreading: the dampener and controller recover most of the band;\n"
      "the foam liner helps mainly above ~1 kHz (poor low-frequency\n"
      "absorption) and carries the worst overheating risk — the tradeoff\n"
      "Section 5 of the paper warns about.\n");
  return 0;
}
