// Attacker reconnaissance: the Section 4.1 frequency-sweep procedure.
//
// An attacker who does not know the victim's resonances sweeps a coarse
// grid from 100 Hz to 16.9 kHz, watches the victim's throughput, then
// narrows in with 50 Hz steps between the vulnerable frequencies — the
// exact methodology the paper describes.
//
//   $ ./examples/frequency_sweep [scenario:1|2|3]
#include <cstdio>
#include <cstdlib>

#include "core/sweep.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  if (argc > 1) {
    switch (std::atoi(argv[1])) {
      case 1: scenario = core::ScenarioId::kPlasticFloor; break;
      case 2: scenario = core::ScenarioId::kPlasticTower; break;
      case 3: scenario = core::ScenarioId::kMetalTower; break;
      default:
        std::fprintf(stderr, "usage: %s [1|2|3]\n", argv[0]);
        return 1;
    }
  }
  std::printf("Recon sweep against %s\n", core::scenario_name(scenario));
  std::printf("attack: 140 dB SPL at 1 cm; coarse quarter-octave pass, then "
              "50 Hz narrowing\n");
  std::printf("trial engine: %u jobs (set DEEPNOTE_JOBS to override)\n\n",
              sim::resolve_jobs(0));

  core::AttackConfig attack;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;

  core::FrequencySweep sweep(scenario);
  core::SweepConfig base;
  base.ramp = sim::Duration::from_seconds(2.0);
  base.duration = sim::Duration::from_seconds(6.0);
  const auto recon = sweep.recon(attack, 100.0, 16900.0, 50.0, &base);

  std::printf("coarse pass (%zu points):\n", recon.coarse.size());
  for (const auto& p : recon.coarse) {
    const bool hit = p.write.throughput_mbps < 11.0;
    std::printf("  %7.0f Hz  write %5.1f MB/s  read %5.1f MB/s  %s\n",
                p.frequency_hz, p.write.throughput_mbps,
                p.read.throughput_mbps, hit ? "<== vulnerable" : "");
  }

  if (!recon.band_lo_hz.has_value()) {
    std::printf("\nno vulnerable band found.\n");
    return 0;
  }
  std::printf("\nrefined 50 Hz pass bounds the vulnerable band: "
              "%.0f Hz .. %.0f Hz\n",
              *recon.band_lo_hz, *recon.band_hi_hz);

  // Pick the best attack tone: deepest write kill in the refined pass.
  double best_f = 0.0, best_tput = 1e9;
  for (const auto& p : recon.refined) {
    if (p.write.throughput_mbps < best_tput) {
      best_tput = p.write.throughput_mbps;
      best_f = p.frequency_hz;
    }
  }
  std::printf("best attack tone: %.0f Hz (write throughput %.1f MB/s)\n",
              best_f, best_tput);
  std::printf("(the paper settles on 650 Hz for Scenario 2)\n");
  return 0;
}
