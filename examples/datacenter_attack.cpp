// End-to-end attack on a running "data-center" stack: an Ubuntu-like
// server with an ext4-like root filesystem and a RocksDB-like store,
// all living on the victim HDD inside the submerged enclosure.
//
// Prints a timeline of the infrastructure dying, reproducing the story
// of the paper's Section 4.4 in one run.
//
//   $ ./examples/datacenter_attack
#include <cstdio>

#include "core/attack.h"
#include "core/scenario.h"
#include "core/testbed.h"
#include "hdd/smart.h"
#include "storage/extfs.h"
#include "storage/kvdb/db.h"
#include "storage/server_os.h"
#include "workload/actor.h"
#include "workload/db_bench.h"

using namespace deepnote;
using storage::Errno;

int main() {
  std::printf("Deep Note: attacking a submerged server (Scenario 2)\n\n");

  core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));

  // --- Provision the machine. ---------------------------------------------
  sim::SimTime t = sim::SimTime::zero();
  storage::MkfsOptions mkfs;
  mkfs.total_blocks = 2u << 18;  // 4 GiB root filesystem
  if (!storage::ExtFs::mkfs(bed.device(), t, mkfs).ok()) return 1;
  auto mount = storage::ExtFs::mount(bed.device(), t);
  if (!mount.ok()) return 1;
  storage::ExtFs& fs = *mount.fs;

  storage::ServerOs os(fs);
  auto boot = os.boot(mount.done);
  if (!boot.ok()) return 1;
  std::printf("[%7.2f s] server booted, root filesystem mounted\n",
              boot.done.seconds());

  storage::kvdb::DbConfig db_cfg;
  db_cfg.root = "/srv/db";
  db_cfg.write_buffer_bytes = 48ull << 20;
  if (!fs.mkdir(boot.done, "/srv").ok()) return 1;
  auto open = storage::kvdb::Db::open(fs, boot.done, db_cfg);
  if (!open.ok()) return 1;
  storage::kvdb::Db& db = *open.db;
  t = open.done;

  // Preload some customer data.
  workload::DbBench bench(fs, db);
  workload::DbBenchConfig bench_cfg;
  t = bench.fillseq(t, 50000, bench_cfg);
  t = fs.sync(t).done;
  std::printf("[%7.2f s] database serving (%llu keys loaded)\n",
              t.seconds(),
              static_cast<unsigned long long>(db.last_sequence()));

  // --- The attack begins. --------------------------------------------------
  core::AttackConfig attack;  // 650 Hz, 140 dB SPL, 1 cm
  const sim::SimTime attack_start = t;
  bed.apply_attack(attack_start, attack);
  std::printf("[%7.2f s] *** attack ON: %.0f Hz, %.0f dB SPL, %.0f cm — "
              "head off-track %.0f nm (park threshold %.0f nm)\n",
              attack_start.seconds(), attack.frequency_hz, attack.spl_air_db,
              attack.distance_m * 100, bed.predicted_offtrack_nm(attack),
              bed.drive().servo().config().park_fraction *
                  bed.drive().servo().config().track_pitch_nm);

  auto since = [&](sim::SimTime when) {
    return (when - attack_start).seconds();
  };

  // --- Actors: db writer, flush thread, fs daemons, system ticks. ----------
  std::uint64_t key = 50000;
  bool reported_stall = false;
  workload::LambdaActor writer(t, [&](sim::SimTime now) -> sim::SimTime {
    if (db.fatal()) return sim::SimTime::infinity();
    auto r = db.put(now, workload::DbBench::make_key(key, 16),
                    workload::DbBench::make_value(key, 64));
    if (r.err == Errno::kEAGAIN) {
      if (!reported_stall) {
        std::printf("[T+%6.1f s] database write stall: flush wedged on "
                    "the unresponsive drive\n", since(now));
        reported_stall = true;
      }
      return r.done + sim::Duration::from_millis(50);
    }
    if (!r.ok()) return sim::SimTime::infinity();
    ++key;
    return r.done;
  });
  workload::LambdaActor flusher(t, [&](sim::SimTime now) -> sim::SimTime {
    if (db.fatal()) return sim::SimTime::infinity();
    if (db.flush_pending()) {
      auto r = db.do_flush(now);
      return sim::max(r.done, now + sim::Duration::from_millis(10));
    }
    return now + sim::Duration::from_millis(10);
  });
  workload::LambdaActor commit_daemon(t, [&](sim::SimTime now) -> sim::SimTime {
    if (fs.read_only()) return sim::SimTime::infinity();
    if (fs.commit_due(now)) {
      return sim::max(fs.commit(now).done,
                      now + sim::Duration::from_millis(100));
    }
    return now + sim::Duration::from_millis(100);
  });
  workload::LambdaActor writeback_daemon(t, [&](sim::SimTime now)
                                                -> sim::SimTime {
    if (fs.read_only() || fs.dirty_bytes() == 0) {
      return now + sim::Duration::from_millis(100);
    }
    return sim::max(fs.writeback(now, 8ull << 20).done,
                    now + sim::Duration::from_millis(100));
  });
  workload::LambdaActor ticker(os.next_tick(),
                               [&](sim::SimTime now) -> sim::SimTime {
    if (os.crashed()) return sim::SimTime::infinity();
    os.tick(now);
    return os.crashed() ? sim::SimTime::infinity() : os.next_tick();
  });

  workload::ActorScheduler sched;
  sched.add(writer);
  sched.add(flusher);
  sched.add(commit_daemon);
  sched.add(writeback_daemon);
  sched.add(ticker);

  bool said_fs = false, said_db = false, said_os = false;
  sim::SimTime cursor = t;
  const sim::SimTime limit = attack_start + sim::Duration::from_seconds(120);
  while (cursor < limit && !(said_fs && said_db && said_os)) {
    cursor = cursor + sim::Duration::from_millis(250);
    sched.run_until(cursor);
    if (!said_fs && fs.read_only()) {
      std::printf("[T+%6.1f s] EXT4 DEAD: journal aborted with error %d; "
                  "root filesystem remounted read-only\n",
                  since(fs.abort_time()), fs.error_code());
      said_fs = true;
    }
    if (!said_db && db.fatal()) {
      std::printf("[T+%6.1f s] ROCKSDB DEAD: %s\n", since(db.fatal_time()),
                  db.fatal_message().c_str());
      said_db = true;
    }
    if (!said_os && os.crashed()) {
      std::printf("[T+%6.1f s] UBUNTU DEAD: %s\n", since(os.crash_time()),
                  os.crash_reason().c_str());
      said_os = true;
    }
  }

  std::printf("\npost-mortem SMART log of the victim drive:\n%s",
              hdd::smart_log(bed.drive()).to_text().c_str());
  std::printf("\ndrive forensics: %llu hung commands, %llu device resets, "
              "%llu buffer I/O errors\n",
              static_cast<unsigned long long>(bed.drive().stats().hung_commands),
              static_cast<unsigned long long>(bed.device().stats().device_resets),
              static_cast<unsigned long long>(
                  bed.device().stats().buffer_io_errors));
  std::printf("paper reference (Table 3): Ext4 80.0 s, Ubuntu 81.0 s, "
              "RocksDB 81.3 s\n");
  return 0;
}
