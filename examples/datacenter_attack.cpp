// End-to-end attack on a running "data-center": a 3-pod serving cluster
// (5 drives per pod, 3-way replicated objects, health-checked load
// balancing) takes a 650 Hz / 140 dB blast on one pod while open-loop
// client traffic keeps arriving.
//
// The run is repeated under two placement policies. Same-pod packing
// puts every replica set inside the insonified enclosure — the attack
// takes all three replicas at once and availability collapses.
// Cross-pod placement loses at most one replica per object; the
// balancer's detectors drain the parked drives, reads fail over, and
// the service rides out the attack.
//
//   $ ./examples/datacenter_attack
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/experiment.h"
#include "cluster/node.h"
#include "cluster/slo.h"
#include "cluster/traffic.h"
#include "core/attack.h"

using namespace deepnote;

namespace {

constexpr double kWarmupS = 5.0;
constexpr double kAttackS = 20.0;
constexpr double kCooldownS = 5.0;

struct RunResult {
  double availability = 1.0;
  double attack_availability = 1.0;
  cluster::BalancerStats stats;
};

RunResult serve_through_attack(cluster::PlacementPolicy policy) {
  std::printf("--- policy: %s ---\n", cluster::placement_name(policy));

  cluster::ClusterConfig cluster_config;  // 3 pods x 5 bays, Scenario 2
  cluster_config.seed = 0xdeeb;
  cluster::Cluster dc(cluster_config);

  cluster::BalancerConfig balancer_config;
  balancer_config.policy = policy;
  cluster::Balancer balancer(dc, balancer_config);

  cluster::TrafficConfig traffic_config;
  traffic_config.arrival_rate_per_s = 400.0;
  traffic_config.duration =
      sim::Duration::from_seconds(kWarmupS + kAttackS + kCooldownS);
  cluster::TrafficRunner traffic(balancer, traffic_config);

  const sim::SimTime start = sim::SimTime::zero();
  const sim::SimTime attack_on = start + sim::Duration::from_seconds(kWarmupS);
  const sim::SimTime attack_off =
      attack_on + sim::Duration::from_seconds(kAttackS);

  cluster::SloTracker slo(start);
  slo.set_focus(attack_on, attack_off);

  // The timeline is printed after the run, merged and sorted: the
  // attack markers fire during traffic, while drain/readmit times are
  // reconstructed from the node health timestamps.
  struct Event {
    sim::SimTime at;
    std::string line;
  };
  std::vector<Event> events;

  core::AttackConfig attack;  // 650 Hz, 140 dB SPL, 1 cm
  std::vector<cluster::TimelineAction> actions;
  actions.push_back({attack_on, [&](sim::SimTime when) {
                       dc.apply_attack(0, when, attack);
                       char buf[128];
                       std::snprintf(buf, sizeof(buf),
                                     "*** attack ON: %.0f Hz, %.0f dB SPL, "
                                     "%.0f cm from pod 0",
                                     attack.frequency_hz, attack.spl_air_db,
                                     attack.distance_m * 100);
                       events.push_back({when, buf});
                     }});
  actions.push_back({attack_off, [&](sim::SimTime when) {
                       char buf[128];
                       std::snprintf(buf, sizeof(buf),
                                     "*** attack OFF (%zu drives still parked)",
                                     dc.parked_nodes());
                       events.push_back({when, buf});
                       dc.stop_attack(0, when);
                     }});
  const auto report = traffic.run(start, slo, std::move(actions));

  for (cluster::ClusterNode* node : dc.node_pointers()) {
    for (const auto& [stamp, what] :
         {std::pair{node->drained_at(), "drained"},
          std::pair{node->readmitted_at(), "readmitted"}}) {
      if (!stamp.has_value()) continue;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "detector %s node %u (pod %zu, bay %zu)", what,
                    node->id(), dc.topology().pod_of(node->id()),
                    dc.topology().bay_of(node->id()));
      events.push_back({*stamp, buf});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  for (const Event& e : events) {
    std::printf("[%6.1f s] %s\n", e.at.seconds(), e.line.c_str());
  }

  RunResult r;
  r.availability = slo.availability();
  r.attack_availability = slo.focus_availability();
  r.stats = balancer.stats();
  std::printf("[%6.1f s] run complete: %llu requests, %llu failed, "
              "%llu failovers, %llu hedged, %llu drains, %llu readmits\n",
              traffic_config.duration.seconds(),
              static_cast<unsigned long long>(report.requests),
              static_cast<unsigned long long>(r.stats.failed_reads +
                                              r.stats.failed_writes),
              static_cast<unsigned long long>(r.stats.read_failovers),
              static_cast<unsigned long long>(r.stats.hedged_reads),
              static_cast<unsigned long long>(r.stats.drains),
              static_cast<unsigned long long>(r.stats.readmits));
  std::printf("           availability %.3f%% overall, %.3f%% inside the "
              "attack window; p99 %.2f ms\n\n",
              r.availability * 100.0, r.attack_availability * 100.0,
              slo.p99().millis());
  return r;
}

}  // namespace

int main() {
  std::printf("Deep Note: attacking one pod of a replicated serving "
              "cluster (Scenario 2)\n");
  std::printf("3 pods x 5 drives, R=3 objects, %.0f req/s open-loop, "
              "%.0f%% reads; attack hits pod 0 for %.0f s\n\n",
              400.0, 90.0, kAttackS);

  const RunResult same_pod =
      serve_through_attack(cluster::PlacementPolicy::kSamePod);
  const RunResult cross_pod =
      serve_through_attack(cluster::PlacementPolicy::kCrossPod);

  std::printf("verdict: same-pod served %.1f%% of requests during the "
              "attack; cross-pod served %.1f%%.\n",
              same_pod.attack_availability * 100.0,
              cross_pod.attack_availability * 100.0);
  std::printf("Placement that respects the acoustic blast radius turns a "
              "datacenter outage into a routine failover.\n");
  return 0;
}
