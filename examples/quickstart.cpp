// Quickstart: assemble the paper's Scenario 2 testbed, measure the
// baseline, then fire the best-attack tone (650 Hz, 140 dB SPL, 1 cm)
// and watch the drive die.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/attack.h"
#include "core/scenario.h"
#include "core/testbed.h"
#include "workload/fio.h"

using namespace deepnote;

namespace {

workload::FioReport run_fio(core::Testbed& bed, workload::IoPattern pattern,
                            std::uint64_t seed) {
  workload::FioJobConfig job;
  job.pattern = pattern;
  job.submit_overhead = bed.spec().fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(2.0);
  job.duration = sim::Duration::from_seconds(10.0);
  job.seed = seed;
  workload::FioRunner runner(bed.device());
  return runner.run(sim::SimTime::zero(), job);
}

void print_report(const char* label, const workload::FioReport& r) {
  if (r.latency_ms.has_value()) {
    std::printf("  %-28s %6.1f MB/s   lat %.2f ms   (%llu ops, %llu errors)\n",
                label, r.throughput_mbps, *r.latency_ms,
                static_cast<unsigned long long>(r.ops_completed),
                static_cast<unsigned long long>(r.ops_errored));
  } else {
    std::printf("  %-28s %6.1f MB/s   lat -        (%llu ops, %llu errors)\n",
                label, r.throughput_mbps,
                static_cast<unsigned long long>(r.ops_completed),
                static_cast<unsigned long long>(r.ops_errored));
  }
}

}  // namespace

int main() {
  std::printf("Deep Note quickstart — Scenario 2 (plastic container, "
              "storage tower)\n\n");

  // Baseline: no attack.
  {
    core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
    print_report("baseline seq write:",
                 run_fio(bed, workload::IoPattern::kSeqWrite, 1));
  }
  {
    core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
    print_report("baseline seq read:",
                 run_fio(bed, workload::IoPattern::kSeqRead, 2));
  }

  // The paper's best attack parameters.
  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;

  {
    core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
    std::printf("\nattack: %.0f Hz at %.0f dB SPL, %.0f cm from the "
                "enclosure\n",
                attack.frequency_hz, attack.spl_air_db,
                attack.distance_m * 100);
    std::printf("  exterior SPL at wall:    %.1f dB re 1 uPa\n",
                bed.exterior_spl_db(attack));
    std::printf("  predicted head off-track: %.1f nm (write fault at %.1f "
                "nm, park at %.1f nm)\n",
                bed.predicted_offtrack_nm(attack),
                bed.drive().servo().fault_threshold_nm(hdd::AccessKind::kWrite),
                bed.drive().servo().config().park_fraction *
                    bed.drive().servo().config().track_pitch_nm);

    bed.apply_attack(sim::SimTime::zero(), attack);
    print_report("under attack seq write:",
                 run_fio(bed, workload::IoPattern::kSeqWrite, 3));
  }
  {
    core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
    bed.apply_attack(sim::SimTime::zero(), attack);
    print_report("under attack seq read:",
                 run_fio(bed, workload::IoPattern::kSeqRead, 4));
    std::printf("\n  drive stats: %llu hung commands, %llu media retries, "
                "%llu shock parks\n",
                static_cast<unsigned long long>(bed.drive().stats().hung_commands),
                static_cast<unsigned long long>(bed.drive().stats().media_retries),
                static_cast<unsigned long long>(bed.drive().stats().shock_parks));
  }
  return 0;
}
