// Does RAID protect against acoustic attacks? Only if the mirrors do
// not share an enclosure.
//
// Two deployments of a RAID-1 pair, both attacked at 650 Hz / 140 dB
// from 3 cm:
//   (a) both members in the attacked tower  -> the array dies whole;
//   (b) one member in a remote enclosure    -> the array limps through
//       two 75 s command timeouts, ejects the wedged member, and then
//       serves at full speed in degraded mode.
//
//   $ ./examples/raid_mirror
#include <cstdio>
#include <vector>

#include "core/rack.h"
#include "storage/raid.h"

using namespace deepnote;

namespace {

void run_deployment(const char* label, bool shared_enclosure) {
  std::printf("=== %s ===\n", label);
  core::RackConfig cfg;
  core::RackTestbed attacked(cfg);
  core::RackTestbed remote(cfg);

  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.03;
  attacked.apply_attack(sim::SimTime::zero(), attack);

  storage::BlockDevice* m0 = &attacked.device(0);
  storage::BlockDevice* m1 =
      shared_enclosure
          ? static_cast<storage::BlockDevice*>(&attacked.device(1))
          : &remote.device(0);
  storage::Raid1Device raid({m0, m1});

  std::vector<std::byte> block(4096, std::byte{0x5a});
  sim::SimTime t = sim::SimTime::zero();
  std::uint64_t lba = 0;
  double window_bytes = 0.0;
  sim::SimTime window_start = t;
  int reported_eject = 0;
  const sim::SimTime end = sim::SimTime::from_seconds(240);
  while (t < end) {
    const storage::BlockIo io =
        raid.write(t + sim::Duration::from_micros(100), lba, 8, block);
    lba += 8;
    if (io.ok()) window_bytes += 4096;
    t = io.complete;
    const std::size_t ejected = raid.members() - raid.active_members();
    if (static_cast<int>(ejected) > reported_eject) {
      reported_eject = static_cast<int>(ejected);
      std::printf("  [%6.1f s] md: %d member(s) FAILED and ejected "
                  "(%zu still active)\n",
                  t.seconds(), reported_eject, raid.active_members());
    }
    if ((t - window_start).seconds() >= 30.0) {
      std::printf("  [%6.1f s] array throughput over last 30 s: %5.1f MB/s"
                  "  (degraded writes %llu, failed I/Os %llu)\n",
                  t.seconds(), window_bytes / 1e6 / 30.0,
                  static_cast<unsigned long long>(
                      raid.stats().degraded_writes),
                  static_cast<unsigned long long>(raid.stats().failed_ios));
      window_bytes = 0.0;
      window_start = t;
    }
    if (raid.active_members() == 0) {
      std::printf("  [%6.1f s] ARRAY DEAD: all members ejected\n",
                  t.seconds());
      break;
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("RAID-1 vs the acoustic attack (650 Hz, 140 dB SPL, 3 cm)\n\n");
  run_deployment("deployment A: both mirrors in the attacked tower", true);
  run_deployment("deployment B: second mirror in a remote enclosure", false);
  std::printf(
      "Takeaway: redundancy only helps against *independent* failures.\n"
      "An acoustic attack is a common-mode fault for every spindle in\n"
      "the insonified enclosure — mirrors must be physically separated\n"
      "(different vessel, or at least acoustic isolation) to survive.\n");
  return 0;
}
