// Regenerates the cluster availability table: a 3x5-pod serving
// datacenter under a single-pod 650 Hz / 140 dB attack, swept over
// placement policy (same-pod / cross-pod / rack-aware) and attacker
// distance.
//
// With --serving, runs the queueing experiment instead: the same
// attacked cell with the async serving front-end enabled, swept over
// queue depth and admission policy (see EXPERIMENTS.md § Serving).
//
// Configs and execution live in cluster/experiment.h so the golden-table
// regression suite exercises the identical pipeline. Pass --csv or --md
// to change the output format (see core/report.h).
#include <cstring>
#include <iostream>

#include "cluster/experiment.h"
#include "core/report.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  bool serving = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serving") == 0) {
      serving = true;
      // Hide the flag from print_table's --csv/--md scan.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (serving) {
    const cluster::ServingExperimentConfig config =
        cluster::serving_experiment_config();
    std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
              << " jobs; set DEEPNOTE_JOBS to override]\n";
    const auto rows = cluster::run_serving_experiment(config);
    core::print_table(cluster::build_cluster_serving_table(config, rows),
                      argc, argv);
    std::cout << "Headline: availability holds through the attack (cross-pod "
                 "failover), but the tail inflates and the decomposition "
                 "pins it on queue wait, not device service — with shallow "
                 "queues converting the backlog into shed legs and "
                 "failovers.\n";
    return 0;
  }
  const cluster::ClusterExperimentConfig config =
      cluster::cluster_experiment_config();
  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  const auto rows = cluster::run_cluster_experiment(config);
  core::print_table(cluster::build_cluster_availability_table(config, rows),
                    argc, argv);
  std::cout << "Headline: cross-pod 3-way replication rides out the pod "
               "attack at >99% availability; same-pod placement collapses "
               "during the attack window.\n";
  return 0;
}
