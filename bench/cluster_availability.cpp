// Regenerates the cluster availability table: a 3x5-pod serving
// datacenter under a single-pod 650 Hz / 140 dB attack, swept over
// placement policy (same-pod / cross-pod / rack-aware) and attacker
// distance.
//
// Configs and execution live in cluster/experiment.h so the golden-table
// regression suite exercises the identical pipeline. Pass --csv or --md
// to change the output format (see core/report.h).
#include <iostream>

#include "cluster/experiment.h"
#include "core/report.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  const cluster::ClusterExperimentConfig config =
      cluster::cluster_experiment_config();
  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  const auto rows = cluster::run_cluster_experiment(config);
  core::print_table(cluster::build_cluster_availability_table(config, rows),
                    argc, argv);
  std::cout << "Headline: cross-pod 3-way replication rides out the pod "
               "attack at >99% availability; same-pod placement collapses "
               "during the attack window.\n";
  return 0;
}
