// google-benchmark microbenchmarks for the substrates: how fast the
// simulator itself runs (host wall-clock per simulated operation).
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "acoustics/absorption.h"
#include "cluster/balancer.h"
#include "cluster/engine.h"
#include "cluster/node.h"
#include "core/attack.h"
#include "core/scenario.h"
#include "core/testbed.h"
#include "hdd/drive.h"
#include "hdd/sector_store.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/task_pool.h"
#include "sim/trial_runner.h"
#include "storage/extfs.h"
#include "storage/fault_harness.h"
#include "storage/fault_workloads.h"
#include "storage/kvdb/db.h"
#include "storage/kvdb/memtable.h"
#include "storage/mem_disk.h"
#include "workload/db_bench.h"

using namespace deepnote;

// ---------------------------------------------------------------------------
// sim

static void BM_RngNextDouble(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_double());
  }
}
BENCHMARK(BM_RngNextDouble);

// The queue persists across iterations, matching how the simulator uses
// it: one queue, warm, for an entire run. Each iteration schedules a
// batch of kEventBatch events at scattered times and drains them; the
// batch is sized to the pending-event depth a live trial sustains
// (tens of actor daemons and drive/fs timers, not thousands).
constexpr int kEventBatch = 64;
static void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t base = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventBatch; ++i) {
      q.schedule(sim::SimTime(base + (i * 7919) % 1009), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
    base += 1009;
  }
  state.SetItemsProcessed(state.iterations() * kEventBatch);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Schedule/pop with an actor-sized capture (~40 bytes): the shape every
// daemon/timeout event in the workload layer has. Small enough for the
// event kernel's inline callable storage; large enough that
// std::function would heap-allocate it.
static void BM_EventQueueScheduleAndPopCapture(benchmark::State& state) {
  struct Ctx {
    std::uint64_t a = 1, b = 2;
    void* p = nullptr;
    void* q = nullptr;
  } ctx;
  std::uint64_t sink = 0;
  sim::EventQueue q;
  std::int64_t base = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventBatch; ++i) {
      q.schedule(sim::SimTime(base + (i * 7919) % 1009),
                 [ctx, &sink] { sink += ctx.a + ctx.b; });
    }
    while (!q.empty()) q.pop().fn();
    base += 1009;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEventBatch);
}
BENCHMARK(BM_EventQueueScheduleAndPopCapture);

// Oversized capture (80 bytes): exercises the heap-fallback path of the
// event callable.
static void BM_EventQueueLargeCapture(benchmark::State& state) {
  struct Big {
    std::uint64_t words[10] = {};
  } big;
  big.words[0] = 7;
  std::uint64_t sink = 0;
  sim::EventQueue q;
  std::int64_t base = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventBatch; ++i) {
      q.schedule(sim::SimTime(base + (i * 7919) % 1009),
                 [big, &sink] { sink += big.words[0]; });
    }
    while (!q.empty()) q.pop().fn();
    base += 1009;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEventBatch);
}
BENCHMARK(BM_EventQueueLargeCapture);

// Interleaved schedule/cancel/pop: the pattern the drive's timeout and
// retry timers produce (most timers are cancelled before they fire).
static void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  std::uint64_t sink = 0;
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  std::int64_t base = 0;
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < kEventBatch; ++i) {
      ids.push_back(q.schedule(sim::SimTime(base + (i * 7919) % 1009),
                               [&sink] { ++sink; }));
    }
    for (int i = 0; i < kEventBatch; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
    while (!q.empty()) q.pop().fn();
    base += 1009;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEventBatch);
}
BENCHMARK(BM_EventQueueScheduleCancelPop);

static void BM_LatencyHistogramAdd(benchmark::State& state) {
  sim::LatencyHistogram h;
  sim::Rng rng(2);
  for (auto _ : state) {
    h.add_ns(static_cast<std::int64_t>(rng.exponential(1e6)));
  }
}
BENCHMARK(BM_LatencyHistogramAdd);

// Per-task overhead of fanning a batch through the trial-execution pool
// (batch setup + index claiming + completion handshake; the tasks are
// no-ops). Real trials cost milliseconds to seconds, so dispatch must
// stay in the microsecond range per batch.
static void BM_TaskPoolDispatch(benchmark::State& state) {
  sim::TaskPool pool(static_cast<unsigned>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.run_indexed(64, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TaskPoolDispatch)->Arg(1)->Arg(2)->Arg(4);

static void BM_TrialSeedDerivation(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::trial_seed(0x5eef, i++));
  }
}
BENCHMARK(BM_TrialSeedDerivation);

// ---------------------------------------------------------------------------
// acoustics / structure

static void BM_AbsorptionAinslieMcColm(benchmark::State& state) {
  const auto water = acoustics::WaterConditions::ocean();
  double f = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acoustics::absorption_db_per_km(
        acoustics::AbsorptionModel::kAinslieMcColm, f, water));
    f = f < 50000.0 ? f * 1.01 : 100.0;
  }
}
BENCHMARK(BM_AbsorptionAinslieMcColm);

static void BM_FullAttackChainEvaluation(benchmark::State& state) {
  core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
  core::AttackConfig attack;
  double f = 100.0;
  for (auto _ : state) {
    attack.frequency_hz = f;
    benchmark::DoNotOptimize(bed.predicted_offtrack_nm(attack));
    f = f < 16000.0 ? f + 37.0 : 100.0;
  }
}
BENCHMARK(BM_FullAttackChainEvaluation);

// Cold vs memoized attack-chain evaluation: the cold path walks source ->
// water -> enclosure -> mount -> servo every call (cache wiped each
// iteration); the memoized path revisits tones a sweep already touched.
static void BM_AttackChainCold(benchmark::State& state) {
  core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
  core::AttackConfig attack;
  double f = 100.0;
  for (auto _ : state) {
    bed.clear_analysis_cache();
    attack.frequency_hz = f;
    benchmark::DoNotOptimize(bed.predicted_offtrack_nm(attack));
    f = f < 16000.0 ? f + 37.0 : 100.0;
  }
}
BENCHMARK(BM_AttackChainCold);

static void BM_AttackChainMemoized(benchmark::State& state) {
  core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
  core::AttackConfig attack;
  // Warm the cache with a Fig. 2-sized tone grid, then measure hits.
  std::vector<double> tones;
  for (double f = 100.0; f <= 8000.0; f += 250.0) tones.push_back(f);
  for (double f : tones) {
    attack.frequency_hz = f;
    bed.predicted_offtrack_nm(attack);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    attack.frequency_hz = tones[i];
    benchmark::DoNotOptimize(bed.predicted_offtrack_nm(attack));
    i = (i + 1) % tones.size();
  }
}
BENCHMARK(BM_AttackChainMemoized);

// ---------------------------------------------------------------------------
// hdd

static void BM_HddSequentialWrite4k(benchmark::State& state) {
  core::ScenarioSpec spec = core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  hdd::Hdd drive(spec.hdd);
  std::vector<std::byte> block(4096, std::byte{0x5a});
  sim::SimTime t = sim::SimTime::zero();
  std::uint64_t lba = 0;
  for (auto _ : state) {
    t = drive.write(t, lba, 8, block).complete;
    lba += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HddSequentialWrite4k);

static void BM_HddSequentialRead4k(benchmark::State& state) {
  core::ScenarioSpec spec = core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  hdd::Hdd drive(spec.hdd);
  std::vector<std::byte> block(4096);
  sim::SimTime t = sim::SimTime::zero();
  std::uint64_t lba = 0;
  for (auto _ : state) {
    t = drive.read(t, lba, 8, block).complete;
    lba += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HddSequentialRead4k);

static void BM_HddWriteUnderAttack(benchmark::State& state) {
  core::ScenarioSpec spec = core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  core::AttackConfig attack;
  attack.distance_m = 0.15;  // partial degradation: retries sampled
  bed.apply_attack(sim::SimTime::zero(), attack);
  std::vector<std::byte> block(4096, std::byte{0x5a});
  sim::SimTime t = sim::SimTime::zero();
  std::uint64_t lba = 0;
  for (auto _ : state) {
    t = bed.drive().write(t, lba, 8, block).complete;
    lba += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HddWriteUnderAttack);

// Sector-store span I/O across span sizes (1 sector .. a full 256-sector
// chunk): measures the per-sector cost of the backing store that every
// media access and cache-overlay read pays.
static void BM_SectorStoreWrite(benchmark::State& state) {
  const auto sectors = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint64_t kDeviceSectors = 1ull << 18;  // 128 MiB
  hdd::SectorStore store(kDeviceSectors);
  std::vector<std::byte> buf(
      static_cast<std::size_t>(sectors) * hdd::kSectorSize, std::byte{0x5a});
  std::uint64_t lba = 0;
  for (auto _ : state) {
    store.write(lba, sectors, buf);
    lba += sectors;
    if (lba + sectors > kDeviceSectors) lba = 0;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          sectors * hdd::kSectorSize);
}
BENCHMARK(BM_SectorStoreWrite)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

static void BM_SectorStoreRead(benchmark::State& state) {
  const auto sectors = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint64_t kDeviceSectors = 1ull << 16;  // 32 MiB
  hdd::SectorStore store(kDeviceSectors);
  std::vector<std::byte> fill(
      static_cast<std::size_t>(kDeviceSectors) * hdd::kSectorSize,
      std::byte{0x42});
  store.write(0, static_cast<std::uint32_t>(kDeviceSectors), fill);
  std::vector<std::byte> buf(
      static_cast<std::size_t>(sectors) * hdd::kSectorSize);
  std::uint64_t lba = 0;
  for (auto _ : state) {
    store.read(lba, sectors, buf);
    lba += sectors;
    if (lba + sectors > kDeviceSectors) lba = 0;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          sectors * hdd::kSectorSize);
}
BENCHMARK(BM_SectorStoreRead)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

static void BM_SectorStoreAnyWritten(benchmark::State& state) {
  constexpr std::uint64_t kDeviceSectors = 1ull << 18;
  hdd::SectorStore store(kDeviceSectors);
  std::vector<std::byte> one(hdd::kSectorSize, std::byte{1});
  store.write(kDeviceSectors - 1, 1, one);
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.any_written(lba, 2048));
    lba = (lba + 2048) % (kDeviceSectors - 2048);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SectorStoreAnyWritten);

// ---------------------------------------------------------------------------
// storage

static void BM_MemTablePut(benchmark::State& state) {
  storage::kvdb::MemTable mt;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    mt.put("key" + std::to_string(seq % 100000), "value", seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTablePut);

static void BM_MemTableGet(benchmark::State& state) {
  storage::kvdb::MemTable mt;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    mt.put("key" + std::to_string(i), "value", i + 1);
  }
  std::string v;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mt.get("key" + std::to_string(i++ % 100000), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableGet);

static void BM_ExtFsBufferedWrite4k(benchmark::State& state) {
  storage::MemDisk disk((1ull << 30) / 512);
  sim::SimTime t = sim::SimTime::zero();
  storage::ExtFs::mkfs(disk, t);
  auto mount = storage::ExtFs::mount(disk, t);
  std::uint32_t ino = 0;
  t = mount.fs->create(mount.done, "/bench", &ino).done;
  std::vector<std::byte> block(4096, std::byte{0x5a});
  std::uint64_t offset = 0;
  for (auto _ : state) {
    t = mount.fs->write(t, ino, offset, block).done;
    offset += 4096;
    if (offset > (512ull << 20)) {
      state.PauseTiming();
      mount.fs->truncate(t, ino, 0);
      offset = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtFsBufferedWrite4k);

static void BM_KvdbPut(benchmark::State& state) {
  storage::MemDisk disk((2ull << 30) / 512);
  sim::SimTime t = sim::SimTime::zero();
  storage::ExtFs::mkfs(disk, t);
  auto mount = storage::ExtFs::mount(disk, t);
  storage::kvdb::DbConfig cfg;
  cfg.write_buffer_bytes = 64ull << 20;
  auto open = storage::kvdb::Db::open(*mount.fs, mount.done, cfg);
  storage::kvdb::Db& db = *open.db;
  t = open.done;
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto r = db.put(t, "key" + std::to_string(i++), "value-payload-64b");
    if (r.err == storage::Errno::kEAGAIN || db.flush_pending()) {
      state.PauseTiming();
      t = db.do_flush(t).done;
      state.ResumeTiming();
      continue;
    }
    t = r.done;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvdbPut);

// ---------------------------------------------------------------------------
// workload

// Host cost of the sequential preload every Table-2 trial starts with:
// key/value formatting + WAL append + memtable insert per op, with the
// filesystem daemons ticked alongside. Items are db ops.
static void BM_DbBenchFillseq(benchmark::State& state) {
  // Fresh store per iteration: this is the Table-2 setup phase exactly —
  // a sequential preload of an empty db. Store construction is excluded
  // from timing.
  constexpr std::uint64_t kKeysPerIter = 10000;
  for (auto _ : state) {
    state.PauseTiming();
    storage::MemDisk disk((2ull << 30) / 512);
    sim::SimTime t = sim::SimTime::zero();
    storage::ExtFs::mkfs(disk, t);
    auto mount = storage::ExtFs::mount(disk, t);
    storage::kvdb::DbConfig cfg;
    cfg.write_buffer_bytes = 64ull << 20;
    auto open = storage::kvdb::Db::open(*mount.fs, mount.done, cfg);
    workload::DbBench bench(*mount.fs, *open.db);
    workload::DbBenchConfig bcfg;
    t = open.done;
    state.ResumeTiming();
    t = bench.fillseq(t, kKeysPerIter, bcfg);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kKeysPerIter));
}
BENCHMARK(BM_DbBenchFillseq);

// ---------------------------------------------------------------------------
// crash-consistency harness

// Cost of replaying a single fault schedule end to end: build the
// workload, run it against the faulted device, crash, run the
// consistency checker. This is the unit the exhaustive explorer fans
// out, so its cost bounds how large a workload stays explorable.
static void BM_FaultScheduleReplay(benchmark::State& state) {
  auto factory = storage::journal_pair_workload();
  const std::uint64_t index =
      static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto result = storage::replay_schedule(factory, 0x5eed, index);
    benchmark::DoNotOptimize(result.passed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultScheduleReplay)->Arg(1)->Arg(22);

// Full exhaustive exploration (every cut point x every fault variant)
// of the journal pair workload on the trial pool. Items = schedules.
static void BM_FaultExhaustiveExploration(benchmark::State& state) {
  auto factory = storage::journal_pair_workload();
  storage::ExploreOptions opts;
  opts.jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    auto report = storage::explore(factory, opts);
    schedules += report.schedules_run;
    benchmark::DoNotOptimize(report.failures.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(schedules));
}
BENCHMARK(BM_FaultExhaustiveExploration)->Arg(1)->Arg(4);

// ---------------------------------------------------------------------------
// cluster

// Pure replica-set computation: hash a key to R nodes under each
// placement policy. This sits on every request the balancer serves.
static void BM_PlacementReplicas(benchmark::State& state) {
  const cluster::ClusterTopology topo;
  const cluster::PlacementMap placement(
      topo, static_cast<cluster::PlacementPolicy>(state.range(0)),
      /*replication=*/3);
  std::vector<cluster::NodeId> replicas;
  std::uint64_t key = 0;
  for (auto _ : state) {
    placement.replicas(key++, replicas);
    benchmark::DoNotOptimize(replicas.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementReplicas)
    ->Arg(static_cast<int>(cluster::PlacementPolicy::kSamePod))
    ->Arg(static_cast<int>(cluster::PlacementPolicy::kCrossPod))
    ->Arg(static_cast<int>(cluster::PlacementPolicy::kRackAware));

// Host cost of one replicated read through the whole serving path:
// placement, health ranking, node I/O, detector update, control-loop
// reaction. MemDisk members isolate the balancer's own overhead from
// the HDD model. Items are requests.
static void BM_ClusterBalancerRead(benchmark::State& state) {
  const cluster::ClusterTopology topo{.pods = 3, .bays_per_pod = 1};
  storage::MemDisk d0(16384), d1(16384), d2(16384);
  cluster::ClusterNode n0(0, 0, 0, d0), n1(1, 1, 0, d1), n2(2, 2, 0, d2);
  cluster::BalancerConfig config;
  config.objects = 1000;
  cluster::Balancer balancer(topo, {&n0, &n1, &n2}, config);
  std::vector<std::byte> buf(static_cast<std::size_t>(config.object_sectors) *
                             storage::kBlockSectorSize);
  sim::SimTime t = sim::SimTime::zero();
  std::uint64_t key = 0;
  for (auto _ : state) {
    const auto r = balancer.read(t, key++ % config.objects, buf);
    benchmark::DoNotOptimize(r.ok);
    t = r.complete;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterBalancerRead);

// The tentpole end-to-end number: 1000 nodes (200 pods x 5 bays),
// 3-way cross-pod replication, a 1M-key Zipf read/write mix through the
// sharded epoch engine, with one pod insonified for the middle two
// thirds of the timeline. Every iteration is a complete availability
// trial on a pristine cluster; fixture construction (testbeds, alias
// table, placement) is excluded from timing so the measured quantity is
// the serving loop itself. Items are requests served.
static void BM_ClusterAvailability(benchmark::State& state) {
  // The 1M-key alias table is immutable and shared across iterations,
  // exactly as run_cluster_experiment shares it across grid cells.
  static const auto zipf =
      std::make_shared<const cluster::ZipfAliasSampler>(1000000, 0.99);

  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  attack.start = sim::SimTime::from_seconds(0.5);
  attack.end = sim::SimTime::from_seconds(2.5);

  std::int64_t requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cluster::ClusterConfig cluster_config;
    cluster_config.topology =
        cluster::ClusterTopology{.pods = 200, .bays_per_pod = 5};
    cluster_config.seed = 0x1234;
    cluster::Cluster cluster(cluster_config);

    cluster::EngineConfig config;
    config.balancer.policy = cluster::PlacementPolicy::kCrossPod;
    config.balancer.objects = 20000;
    config.traffic.arrival_rate_per_s = 400.0;
    config.traffic.duration = sim::Duration::from_seconds(3.0);
    config.traffic.keyspace = 1000000;
    config.traffic.seed = 0xbeef;
    config.zipf = zipf;
    config.jobs = 0;  // $DEEPNOTE_JOBS
    cluster::ShardedClusterEngine engine(cluster.topology(),
                                         cluster.device_pointers(), config);

    std::vector<cluster::TimelineAction> actions;
    actions.push_back({attack.start, [&cluster, attack](sim::SimTime t) {
                         cluster.apply_attack(0, t, attack);
                       }});
    actions.push_back({attack.end, [&cluster](sim::SimTime t) {
                         cluster.stop_attack(0, t);
                       }});
    cluster::SloTracker slo(sim::SimTime::zero());
    slo.set_focus(attack.start, attack.end);
    state.ResumeTiming();

    const cluster::EngineReport report =
        engine.run(sim::SimTime::zero(), slo, std::move(actions));
    benchmark::DoNotOptimize(report.stats.reads);
    requests += static_cast<std::int64_t>(report.traffic.requests);
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ClusterAvailability);

// The scale-out number: the same attacked availability trial on 10,000
// nodes (2000 pods x 5 bays) with the serving data plane enabled —
// bounded-FIFO queues, deadline timer wheels and 640 closed-loop
// clients in front of every device. Arrival rate scales with the fleet
// so per-node load matches BM_ClusterAvailability; what this measures
// is whether any engine cost grows with fleet size rather than with
// traffic (reset walks, stats aggregation, depth sampling all must
// not). Fixture construction is excluded as above. Items are requests.
static void BM_ClusterServing10k(benchmark::State& state) {
  static const auto zipf =
      std::make_shared<const cluster::ZipfAliasSampler>(1000000, 0.99);

  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  attack.start = sim::SimTime::from_seconds(0.5);
  attack.end = sim::SimTime::from_seconds(2.5);

  std::int64_t requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cluster::ClusterConfig cluster_config;
    cluster_config.topology =
        cluster::ClusterTopology{.pods = 2000, .bays_per_pod = 5};
    cluster_config.seed = 0x1234;
    cluster::Cluster cluster(cluster_config);

    cluster::EngineConfig config;
    config.balancer.policy = cluster::PlacementPolicy::kCrossPod;
    config.balancer.objects = 20000;
    config.traffic.arrival_rate_per_s = 4000.0;
    config.traffic.duration = sim::Duration::from_seconds(3.0);
    config.traffic.keyspace = 1000000;
    config.traffic.seed = 0xbeef;
    config.zipf = zipf;
    config.jobs = 0;  // $DEEPNOTE_JOBS
    config.serving.enabled = true;
    config.serving.server.queue_limit = 8;
    config.serving.clients = 640;
    cluster::ShardedClusterEngine engine(cluster.topology(),
                                         cluster.device_pointers(), config);

    std::vector<cluster::TimelineAction> actions;
    actions.push_back({attack.start, [&cluster, attack](sim::SimTime t) {
                         cluster.apply_attack(0, t, attack);
                       }});
    actions.push_back({attack.end, [&cluster](sim::SimTime t) {
                         cluster.stop_attack(0, t);
                       }});
    cluster::SloTracker slo(sim::SimTime::zero());
    slo.set_focus(attack.start, attack.end);
    state.ResumeTiming();

    const cluster::EngineReport report =
        engine.run(sim::SimTime::zero(), slo, std::move(actions));
    benchmark::DoNotOptimize(report.serving.legs_served);
    requests += static_cast<std::int64_t>(report.traffic.requests);
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ClusterServing10k);

BENCHMARK_MAIN();
