// Defense ablation (paper Section 5, "In-air Defenses").
//
// For each candidate defense, re-runs the Table 1 style distance ladder
// at 650 Hz and the frequency sweep at 1 cm, reporting write throughput.
// Shows which part of the attack surface each defense closes and at what
// overheating cost.
#include <cstdio>
#include <iostream>

#include "core/defense.h"
#include "sim/table.h"
#include "workload/fio.h"

using namespace deepnote;

namespace {

double write_mbps(core::DefenseKind kind, double frequency_hz,
                  double distance_m) {
  core::ScenarioSpec spec = core::with_defense(
      core::make_scenario(core::ScenarioId::kPlasticTower), kind);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  core::install_defense(bed, kind);
  core::AttackConfig attack;
  attack.frequency_hz = frequency_hz;
  attack.spl_air_db = 140.0;
  attack.distance_m = distance_m;
  bed.apply_attack(sim::SimTime::zero(), attack);
  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kSeqWrite;
  job.submit_overhead = spec.fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(3.0);
  job.duration = sim::Duration::from_seconds(8.0);
  workload::FioRunner runner(bed.device());
  return runner.run(sim::SimTime::zero(), job).throughput_mbps;
}

constexpr core::DefenseKind kAll[] = {
    core::DefenseKind::kNone, core::DefenseKind::kAbsorbingLiner,
    core::DefenseKind::kVibrationDampener,
    core::DefenseKind::kAugmentedController};

}  // namespace

int main() {
  {
    sim::Table t("Write throughput (MB/s) vs frequency at 1 cm, per defense "
                 "(baseline 22.7)");
    std::vector<std::string> headers{"Defense"};
    const double freqs[] = {300, 450, 650, 900, 1100, 1300, 1500};
    for (double f : freqs) headers.push_back(sim::format_fixed(f, 0) + " Hz");
    headers.push_back("overheat risk");
    t.set_columns(headers);
    for (auto kind : kAll) {
      t.row().cell(core::defense_name(kind));
      for (double f : freqs) t.cell(write_mbps(kind, f, 0.01), 1);
      t.cell(core::defense_properties(kind).overheating_risk, 2);
    }
    std::cout << t << "\n";
  }
  {
    sim::Table t("Write throughput (MB/s) vs distance at 650 Hz, per "
                 "defense");
    std::vector<std::string> headers{"Defense"};
    const double dists[] = {0.01, 0.05, 0.10, 0.15, 0.20};
    for (double d : dists) {
      headers.push_back(sim::format_fixed(d * 100, 0) + " cm");
    }
    t.set_columns(headers);
    for (auto kind : kAll) {
      t.row().cell(core::defense_name(kind));
      for (double d : dists) t.cell(write_mbps(kind, 650.0, d), 1);
    }
    std::cout << t << "\n";
  }
  std::printf("Reading: defenses shrink the vulnerable band and pull the\n"
              "kill radius inward; none is free — the liner insulates the\n"
              "servers the water was supposed to cool (Section 5).\n");
  return 0;
}
