// Distills benchmark output into the repo's BENCH json format.
//
// Inputs:
//   --micro <file>     google-benchmark JSON (--benchmark_format=json) with
//                      the micro suites. Per-op time is derived from
//                      items_per_second when a suite reports items, else
//                      cpu_time per iteration is used.
//   --baseline <file>  optional. Either a previous BENCH file (its
//                      baseline_* numbers are carried forward unchanged;
//                      an end-to-end entry new since that file seeds its
//                      baseline from the previous current rate) or a raw
//                      google-benchmark JSON (distilled and used as the
//                      baseline, for the first generation).
//   --table2           run the reduced Table-2 kvdb range sweep end to end
//                      (serial, wall-clocked) and record trials/sec.
//   --cluster          run the reduced cluster-availability grid end to
//                      end (serial, wall-clocked) and record cells/sec.
//   --cluster1k        run the 1000-node attacked availability cell on
//                      the sharded epoch engine AND on the PR5 serial
//                      composition (Balancer + TrafficRunner) over the
//                      same workload; the serial rate is recorded as the
//                      entry's baseline and the engine is gated at
//                      >= 10x (bench_compare enforces min_speedup).
//   --serving1k        run the same 1000-node attacked cell with the
//                      serving front-end enabled AND with immediate
//                      dispatch; the immediate rate is the baseline and
//                      serving is gated at >= 0.5x of it (the pipeline
//                      may cost at most ~2x per request).
//   --serving10k       the 10,000-node scale-out of --serving1k (2000
//                      pods x 5 bays, 640 clients, 4000 req/s — same
//                      per-node load), gated at >= 0.4x of immediate.
//   --overload1k       run the 1000-node governed overload-recovery cell
//                      (two thirds of the pods pulsed for 5 s, closed-loop
//                      population sized to sustain a naive retry storm)
//                      and record the recovery-time metric, gated at
//                      <= 30 s via the entry's "gates" object.
//   --overload10k      the 10,000-node scale-out of --overload1k at 60%
//                      utilization (larger fleets sample their placement
//                      tail deeper and need the headroom), same gate.
//   --hybrid1k         run the 1000-node same-pod attacked availability
//                      cell on pure-HDD nodes AND on flash-fronted
//                      hybrid nodes, gated absolutely on sim-time
//                      availability: the attack must drop the pure-HDD
//                      fleet below 15% while the hybrid fleet stays at
//                      or above 99% through the same attack.
//   --out <file>       output path (default: BENCH_PR5.json).
//
// The emitted file is the input format of tools/bench_compare.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/hybrid_experiment.h"
#include "cluster/overload_experiment.h"
#include "core/attack.h"
#include "core/range_test.h"
#include "core/scenario.h"
#include "sim/trial_runner.h"
#include "storage/kvdb/db.h"
#include "tools/minijson.h"
#include "workload/db_bench.h"

namespace {

using deepnote::tools::JsonValue;
using deepnote::tools::json_escape;
using deepnote::tools::json_parse;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// name -> ns per op, from a google-benchmark JSON tree.
std::map<std::string, double> distill_micro(const JsonValue& root) {
  std::map<std::string, double> out;
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    throw std::runtime_error("no 'benchmarks' array: not google-benchmark JSON");
  }
  for (const JsonValue& b : benches->array) {
    const JsonValue* name = b.find("name");
    if (name == nullptr || !name->is_string()) continue;
    // Skip aggregate rows (mean/median/stddev of repetitions).
    if (b.find("aggregate_name") != nullptr) continue;
    const JsonValue* items = b.find("items_per_second");
    const JsonValue* cpu = b.find("cpu_time");
    double ns_per_op = 0.0;
    if (items != nullptr && items->is_number() && items->number > 0) {
      ns_per_op = 1e9 / items->number;
    } else if (cpu != nullptr && cpu->is_number()) {
      ns_per_op = cpu->number;  // time_unit is ns in our suites
    } else {
      continue;
    }
    out[name->str] = ns_per_op;
  }
  return out;
}

struct EndToEnd {
  std::uint64_t trials = 0;
  double wall_s = 0.0;
  double trials_per_s = 0.0;
  std::uint64_t total_ops = 0;
  /// Measured in this run (e.g. the serial composition on the same
  /// workload). When set it overrides any baseline carried forward from
  /// a previous BENCH file.
  std::optional<double> measured_baseline_per_s;
  /// Emitted as "min_speedup": bench_compare fails the candidate when
  /// current/baseline drops below it.
  std::optional<double> min_speedup;
  /// Named scalar results from inside the run (sim-time measurements,
  /// not wall-clock rates), emitted under "metrics".
  std::vector<std::pair<std::string, double>> metrics;
  /// Absolute bounds on metrics, emitted under "gates"; bench_compare
  /// fails the candidate when a gated metric leaves [min, max].
  struct Gate {
    std::string metric;
    std::optional<double> min;
    std::optional<double> max;
  };
  std::vector<Gate> gates;
};

/// The reduced Table-2 sweep: readwhilewriting over the LSM store at three
/// attack distances. Serial so the wall-clock number is stable; one
/// warm-up pass plus best-of-2 timed passes keeps cold-start page faults
/// and scheduler noise out of the recorded rate.
EndToEnd run_table2() {
  using namespace deepnote;
  core::RangeTest range(core::ScenarioId::kPlasticTower);
  core::RangeTestConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.attack.distance_m = 0.01;
  config.distances_m = {std::nullopt, 0.01, 0.15};
  config.ramp = sim::Duration::from_seconds(0.5);
  config.duration = sim::Duration::from_seconds(2.0);
  config.jobs = 1;

  workload::DbBenchConfig bench;
  bench.preload_keys = 2000;
  bench.reader_actors = 2;
  bench.ramp = sim::Duration::from_seconds(0.5);
  bench.duration = sim::Duration::from_seconds(2.0);
  storage::kvdb::DbConfig db;

  (void)range.run_kvdb(config, bench, db);  // warm-up

  EndToEnd e;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto rows = range.run_kvdb(config, bench, db);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || wall < e.wall_s) {
      e.trials = rows.size();
      e.wall_s = wall;
      e.trials_per_s = wall > 0 ? static_cast<double>(e.trials) / wall : 0;
      e.total_ops = 0;
      for (const auto& row : rows) e.total_ops += row.report.ops;
    }
  }
  return e;
}

/// The reduced cluster grid: the full policy x distance availability
/// experiment at a short timeline. Serving a Zipf read/write mix through
/// the balancer over 15 simulated drives per cell makes this the cluster
/// layer's steady-state throughput number. Same warm-up + best-of-2
/// protocol as the Table-2 sweep.
EndToEnd run_cluster() {
  using namespace deepnote;
  cluster::ClusterExperimentConfig config =
      cluster::cluster_experiment_config(/*scale=*/0.1);
  config.jobs = 1;

  (void)cluster::run_cluster_experiment(config);  // warm-up

  EndToEnd e;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto rows = cluster::run_cluster_experiment(config);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || wall < e.wall_s) {
      e.trials = rows.size();
      e.wall_s = wall;
      e.trials_per_s = wall > 0 ? static_cast<double>(e.trials) / wall : 0;
      e.total_ops = 0;
      for (const auto& row : rows) e.total_ops += row.requests;
    }
  }
  return e;
}

/// The tentpole cell: 1000 nodes (200 pods x 5 bays), 3-way cross-pod
/// replication, 1M-key Zipf at 400 req/s for 3 simulated seconds, pod 0
/// insonified at 650 Hz / 140 dB / 1 cm from t=0.5s to t=2.5s. The same
/// workload runs on the sharded epoch engine (current) and on the PR5
/// serial composition (baseline). Fixture construction — testbeds,
/// placement, the engine's shared alias table — happens outside the
/// timer on both sides; the serial path's per-run O(keyspace) Zipf
/// normalization stays inside because it IS part of that composition's
/// serving cost (TrafficRunner rebuilds it every run). Warm-up pass plus
/// best-of-2 on each side, fresh cluster per pass so drive state never
/// leaks between passes.
EndToEnd run_cluster_1k() {
  using namespace deepnote;
  const cluster::ClusterTopology topo{.pods = 200, .bays_per_pod = 5};

  cluster::BalancerConfig balancer_config;
  balancer_config.policy = cluster::PlacementPolicy::kCrossPod;
  balancer_config.objects = 20000;

  cluster::TrafficConfig traffic;
  traffic.arrival_rate_per_s = 400.0;
  traffic.duration = sim::Duration::from_seconds(3.0);
  traffic.keyspace = 1000000;
  traffic.seed = 0xbeef;

  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  attack.start = sim::SimTime::from_seconds(0.5);
  attack.end = sim::SimTime::from_seconds(2.5);

  const auto zipf = std::make_shared<const cluster::ZipfAliasSampler>(
      traffic.keyspace, traffic.zipf_theta);

  auto make_cluster = [&]() {
    cluster::ClusterConfig config;
    config.topology = topo;
    config.seed = 0x1234;
    return std::make_unique<cluster::Cluster>(config);
  };
  auto make_actions = [&](cluster::Cluster* c) {
    std::vector<cluster::TimelineAction> actions;
    actions.push_back({attack.start, [c, attack](sim::SimTime t) {
                         c->apply_attack(0, t, attack);
                       }});
    actions.push_back(
        {attack.end, [c](sim::SimTime t) { c->stop_attack(0, t); }});
    return actions;
  };

  double engine_wall = 0.0;
  std::uint64_t engine_requests = 0;
  for (int rep = 0; rep < 3; ++rep) {  // rep 0 is the warm-up
    auto cl = make_cluster();
    cluster::EngineConfig config;
    config.balancer = balancer_config;
    config.traffic = traffic;
    config.zipf = zipf;
    config.jobs = 0;  // $DEEPNOTE_JOBS
    cluster::ShardedClusterEngine engine(cl->topology(),
                                         cl->device_pointers(), config);
    cluster::SloTracker slo(sim::SimTime::zero());
    slo.set_focus(attack.start, attack.end);
    auto actions = make_actions(cl.get());
    const auto t0 = std::chrono::steady_clock::now();
    const cluster::EngineReport report =
        engine.run(sim::SimTime::zero(), slo, std::move(actions));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 1 || (rep > 1 && wall < engine_wall)) {
      engine_wall = wall;
      engine_requests = report.traffic.requests;
    }
  }

  double serial_wall = 0.0;
  for (int rep = 0; rep < 3; ++rep) {  // rep 0 is the warm-up
    auto cl = make_cluster();
    auto nodes = cl->node_pointers();
    cluster::Balancer balancer(cl->topology(), nodes, balancer_config);
    cluster::TrafficRunner runner(balancer, traffic);
    cluster::SloTracker slo(sim::SimTime::zero());
    slo.set_focus(attack.start, attack.end);
    auto actions = make_actions(cl.get());
    const auto t0 = std::chrono::steady_clock::now();
    (void)runner.run(sim::SimTime::zero(), slo, std::move(actions));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 1 || (rep > 1 && wall < serial_wall)) serial_wall = wall;
  }

  EndToEnd e;
  e.trials = 1;
  e.wall_s = engine_wall;
  e.trials_per_s = engine_wall > 0 ? 1.0 / engine_wall : 0.0;
  e.total_ops = engine_requests;
  e.measured_baseline_per_s =
      serial_wall > 0 ? std::optional<double>(1.0 / serial_wall) : std::nullopt;
  e.min_speedup = 10.0;
  return e;
}

/// The serving-mode twin of the availability cell: same topology, same
/// attacked workload, but every node fronted by the bounded-FIFO
/// request pipeline with closed-loop clients. The immediate-dispatch
/// engine on the identical workload is measured alongside as the
/// baseline, so the recorded "speedup" is serving's relative throughput
/// (it is < 1 by construction — the pipeline does strictly more work
/// per request). min_speedup floors that overhead. `pods` scales the
/// fleet (x 5 bays); arrival rate and client population scale with it
/// so per-node load is constant across cell sizes.
EndToEnd run_cluster_serving_cell(std::size_t pods, double rate_per_s,
                                  std::size_t clients, int reps,
                                  double min_speedup) {
  using namespace deepnote;
  const cluster::ClusterTopology topo{.pods = pods, .bays_per_pod = 5};

  cluster::BalancerConfig balancer_config;
  balancer_config.policy = cluster::PlacementPolicy::kCrossPod;
  balancer_config.objects = 20000;

  cluster::TrafficConfig traffic;
  traffic.arrival_rate_per_s = rate_per_s;
  traffic.duration = sim::Duration::from_seconds(3.0);
  traffic.keyspace = 1000000;
  traffic.seed = 0xbeef;

  core::AttackConfig attack;
  attack.frequency_hz = 650.0;
  attack.spl_air_db = 140.0;
  attack.distance_m = 0.01;
  attack.start = sim::SimTime::from_seconds(0.5);
  attack.end = sim::SimTime::from_seconds(2.5);

  const auto zipf = std::make_shared<const cluster::ZipfAliasSampler>(
      traffic.keyspace, traffic.zipf_theta);

  auto make_cluster = [&]() {
    cluster::ClusterConfig config;
    config.topology = topo;
    config.seed = 0x1234;
    return std::make_unique<cluster::Cluster>(config);
  };
  auto make_actions = [&](cluster::Cluster* c) {
    std::vector<cluster::TimelineAction> actions;
    actions.push_back({attack.start, [c, attack](sim::SimTime t) {
                         c->apply_attack(0, t, attack);
                       }});
    actions.push_back(
        {attack.end, [c](sim::SimTime t) { c->stop_attack(0, t); }});
    return actions;
  };
  auto run_engine = [&](bool serving_on, double& best_wall,
                        std::uint64_t& requests) {
    for (int rep = 0; rep < reps; ++rep) {  // rep 0 is the warm-up
      auto cl = make_cluster();
      cluster::EngineConfig config;
      config.balancer = balancer_config;
      config.traffic = traffic;
      config.zipf = zipf;
      config.jobs = 0;  // $DEEPNOTE_JOBS
      if (serving_on) {
        config.serving.enabled = true;
        config.serving.server.queue_limit = 8;
        config.serving.clients = clients;
      }
      cluster::ShardedClusterEngine engine(cl->topology(),
                                           cl->device_pointers(), config);
      cluster::SloTracker slo(sim::SimTime::zero());
      slo.set_focus(attack.start, attack.end);
      auto actions = make_actions(cl.get());
      const auto t0 = std::chrono::steady_clock::now();
      const cluster::EngineReport report =
          engine.run(sim::SimTime::zero(), slo, std::move(actions));
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      if (rep == 1 || (rep > 1 && wall < best_wall)) {
        best_wall = wall;
        requests = report.traffic.requests;
      }
    }
  };

  double serving_wall = 0.0;
  std::uint64_t serving_requests = 0;
  run_engine(true, serving_wall, serving_requests);

  double immediate_wall = 0.0;
  std::uint64_t immediate_requests = 0;
  run_engine(false, immediate_wall, immediate_requests);

  EndToEnd e;
  e.trials = 1;
  e.wall_s = serving_wall;
  e.trials_per_s = serving_wall > 0 ? 1.0 / serving_wall : 0.0;
  e.total_ops = serving_requests;
  e.measured_baseline_per_s =
      immediate_wall > 0 ? std::optional<double>(1.0 / immediate_wall)
                         : std::nullopt;
  e.min_speedup = min_speedup;
  return e;
}

/// 1000 nodes, 64 closed-loop clients at 400 req/s. The serving data
/// plane must stay within 2x of immediate dispatch (>= 0.5x), a floor
/// set from the measured ~0.7x with headroom for this host's noise.
EndToEnd run_cluster_serving_1k() {
  return run_cluster_serving_cell(/*pods=*/200, /*rate_per_s=*/400.0,
                                  /*clients=*/64, /*reps=*/6,
                                  /*min_speedup=*/0.5);
}

/// The scale-out cell: 10,000 nodes (2000 pods x 5 bays), 640 clients
/// at 4000 req/s — per-node load identical to the 1k cell, so any
/// super-linear cost in fleet size (reset walks, stats aggregation,
/// depth sampling) shows up as a ratio drop relative to cluster_serving
/// _1k. Fewer reps: the cell is ~10x the work of the 1k one.
EndToEnd run_cluster_serving_10k() {
  return run_cluster_serving_cell(/*pods=*/2000, /*rate_per_s=*/4000.0,
                                  /*clients=*/640, /*reps=*/4,
                                  /*min_speedup=*/0.4);
}

/// The overload-recovery cell: the governed+breaker corner of the
/// metastable grid at fleet scale. `pods` x 5 bays; the closed-loop
/// client population and its arrival rate scale with the fleet so the
/// per-node pressure matches the 15-node grid the golden CSV pins. Two
/// thirds of the pods are pulsed for 5 s through the chaos schedule
/// (enough to break every cross-pod write quorum), and the cell is
/// judged on SIM-TIME metrics — recovery seconds, post-attack
/// availability — gated absolutely via the entry's "gates" object. A
/// slower machine cannot move them: the run is deterministic from the
/// experiment seed at any DEEPNOTE_JOBS. The wall-clock rate is still
/// recorded so throughput trends stay visible across BENCH files.
EndToEnd run_overload_recovery_cell(std::size_t pods, double scale,
                                    double load) {
  using namespace deepnote;
  cluster::OverloadExperimentConfig config =
      cluster::overload_experiment_config(scale);
  config.topology = {.pods = pods, .bays_per_pod = 5};
  // `load` scales the offered pressure relative to the golden grid's
  // ~70% fleet utilization (clients scale with arrival so the per-client
  // think time is unchanged). 1.0 reproduces the grid's margin.
  const double fleet =
      static_cast<double>(pods * 5) / 15.0;  // vs the golden 3 x 5 grid
  config.traffic.arrival_rate_per_s *= fleet * load;
  config.clients = static_cast<std::size_t>(
      static_cast<double>(config.clients) * fleet * load);
  // The 15-node grid keeps the default Zipf skew, where the head key is
  // ~7% of traffic — fine when total arrival is 1.8k/s, fatal when the
  // fleet-scaled arrival lands that same 7% on ONE object's replicas.
  // Fleet cells spread the keys near-uniformly so saturation stays a
  // fleet-wide property, not a hot-shard artifact.
  config.traffic.zipf_theta = 0.01;
  // Hold replicas-per-node at the 1k cell's ~60: with the default 20k
  // objects a 10k-node fleet would carry ~6 replicas per node, and the
  // Poisson tail (nodes drawing 9+) sits permanently past capacity —
  // a placement-variance artifact, not the overload under study.
  config.balancer.objects = static_cast<std::uint64_t>(pods * 5) * 20;
  config.attacked_pods.clear();
  for (std::size_t pod = 0; pod < pods * 2 / 3; ++pod) {
    config.attacked_pods.push_back(pod);
  }

  const auto zipf = std::make_shared<const cluster::ZipfAliasSampler>(
      config.traffic.keyspace, config.traffic.zipf_theta);
  const sim::Duration attack = sim::Duration::from_seconds(5.0);

  const auto t0 = std::chrono::steady_clock::now();
  const cluster::OverloadTrialRow row = cluster::run_overload_cell(
      config, cluster::OverloadPolicy::kGoverned, /*breaker_on=*/true, attack,
      sim::trial_seed(config.seed, 0), zipf, /*engine_jobs=*/0);
  const auto t1 = std::chrono::steady_clock::now();

  EndToEnd e;
  e.trials = 1;
  e.wall_s = std::chrono::duration<double>(t1 - t0).count();
  e.trials_per_s = e.wall_s > 0 ? 1.0 / e.wall_s : 0.0;
  e.total_ops = row.requests;
  e.metrics = {
      {"recovered", row.recovered ? 1.0 : 0.0},
      {"recovery_s", row.recovery_s},
      {"attack_availability", row.attack_availability},
      {"post_availability", row.post_availability},
      {"retries", static_cast<double>(row.retries)},
      {"breaker_opens", static_cast<double>(row.breaker_opens)},
  };
  // The ISSUE's acceptance bar: governance brings the fleet back to a
  // >= 99% SLO window within 30 simulated seconds of attack-off.
  e.gates = {
      {"recovered", /*min=*/1.0, /*max=*/std::nullopt},
      {"recovery_s", /*min=*/std::nullopt, /*max=*/30.0},
  };
  return e;
}

/// 1000 nodes, ~273k closed-loop clients at 120k req/s offered — the
/// golden grid's ~70% utilization. The observation window is 60 s of
/// sim time (scale 0.1), double the recovery gate, so a near-miss reads
/// as a recovery_s breach rather than a confusing recovered=0.
EndToEnd run_overload_recovery_1k() {
  return run_overload_recovery_cell(/*pods=*/200, /*scale=*/0.1,
                                    /*load=*/1.0);
}

/// The 10,000-node scale-out, at 60% of the grid's utilization and a
/// shorter window (30 s; the cell is ~10x the 1k one's work). The lower
/// load is a real fleet-sizing result, not a softball: at 10k nodes the
/// placement and queueing tails are sampled ~10x deeper, and at the
/// grid's 70% average utilization the worst-loaded nodes sit past their
/// capacity knee PERMANENTLY — steady-state availability plateaus near
/// 93% with no attack at all, held there by the breaker/detector churn
/// on the saturated tail. Bigger fleets need headroom for their own
/// variance; 60% keeps the whole tail inside capacity, so the cell
/// isolates attack recovery (the thing under test) from tail overload.
EndToEnd run_overload_recovery_10k() {
  return run_overload_recovery_cell(/*pods=*/2000, /*scale=*/0.05,
                                    /*load=*/0.6);
}

/// The hybrid-tiering cell at fleet scale: 1000 nodes (200 pods x 5
/// bays), same-pod placement — every replica of every object inside the
/// attacked pod, so placement cannot save the fleet and the node's own
/// storage stack is all that matters. The identical attacked workload
/// (650 Hz / 140 dB / 1 cm on pod 0 for 4 simulated seconds) runs once
/// on pure-HDD nodes and once on flash-fronted hybrids. Judged on
/// SIM-TIME availability, deterministic from the experiment seed at any
/// DEEPNOTE_JOBS: the gates require the pure-HDD fleet to collapse
/// below 15% inside the attack window while the hybrid fleet serves
/// >= 99% through the same window (the ISSUE's acceptance bar). The
/// pure-HDD wall rate is recorded as the baseline so the flash tier's
/// host-side simulation cost stays visible, but no min_speedup gates it
/// — the cell buys availability, not throughput.
EndToEnd run_hybrid_availability_1k() {
  using namespace deepnote;
  cluster::HybridExperimentConfig config =
      cluster::hybrid_experiment_config(/*scale=*/0.1);
  config.topology = {.pods = 200, .bays_per_pod = 5};

  const auto zipf = std::make_shared<const cluster::ZipfAliasSampler>(
      config.traffic.keyspace, config.traffic.zipf_theta);
  constexpr double kDistance = 0.01;
  constexpr double kMultiplier = 1.0;

  const auto t0 = std::chrono::steady_clock::now();
  const cluster::HybridTrialRow hdd = cluster::run_hybrid_cell(
      config, cluster::NodeType::kHdd, kDistance, kMultiplier,
      sim::trial_seed(config.seed, 0), zipf, /*engine_jobs=*/0);
  const auto t1 = std::chrono::steady_clock::now();
  const cluster::HybridTrialRow hybrid = cluster::run_hybrid_cell(
      config, cluster::NodeType::kHybrid, kDistance, kMultiplier,
      sim::trial_seed(config.seed, 1), zipf, /*engine_jobs=*/0);
  const auto t2 = std::chrono::steady_clock::now();

  const double hdd_wall = std::chrono::duration<double>(t1 - t0).count();
  const double hybrid_wall = std::chrono::duration<double>(t2 - t1).count();

  EndToEnd e;
  e.trials = 1;
  e.wall_s = hybrid_wall;
  e.trials_per_s = hybrid_wall > 0 ? 1.0 / hybrid_wall : 0.0;
  e.total_ops = hybrid.requests;
  e.measured_baseline_per_s =
      hdd_wall > 0 ? std::optional<double>(1.0 / hdd_wall) : std::nullopt;
  e.metrics = {
      {"hdd_attack_availability", hdd.attack_availability},
      {"hybrid_attack_availability", hybrid.attack_availability},
      {"hybrid_availability", hybrid.availability},
      {"absorbed_errors", static_cast<double>(hybrid.absorbed_errors)},
      {"flash_only_ops", static_cast<double>(hybrid.flash_only_ops)},
      {"drained_pages", static_cast<double>(hybrid.drained_pages)},
      {"dirty_pages_left", static_cast<double>(hybrid.dirty_pages_left)},
      {"media_wearout", static_cast<double>(hybrid.media_wearout)},
  };
  // The acceptance bar: the attack that drops the pure-HDD fleet below
  // 15% leaves the hybrid fleet at >= 99% availability.
  e.gates = {
      {"hdd_attack_availability", /*min=*/std::nullopt, /*max=*/0.15},
      {"hybrid_attack_availability", /*min=*/0.99, /*max=*/std::nullopt},
  };
  return e;
}

void emit_number_or_null(std::ostream& os, std::optional<double> v) {
  if (v.has_value()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", *v);
    os << buf;
  } else {
    os << "null";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string micro_path;
  std::string baseline_path;
  std::string out_path = "BENCH_PR6.json";
  bool with_table2 = false;
  bool with_cluster = false;
  bool with_cluster_1k = false;
  bool with_serving_1k = false;
  bool with_serving_10k = false;
  bool with_overload_1k = false;
  bool with_overload_10k = false;
  bool with_hybrid_1k = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_json: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--micro") {
      micro_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--table2") {
      with_table2 = true;
    } else if (arg == "--cluster") {
      with_cluster = true;
    } else if (arg == "--cluster1k") {
      with_cluster_1k = true;
    } else if (arg == "--serving1k") {
      with_serving_1k = true;
    } else if (arg == "--serving10k") {
      with_serving_10k = true;
    } else if (arg == "--overload1k") {
      with_overload_1k = true;
    } else if (arg == "--overload10k") {
      with_overload_10k = true;
    } else if (arg == "--hybrid1k") {
      with_hybrid_1k = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_json --micro <gbench.json> [--baseline "
                   "<file>] [--table2] [--cluster] [--cluster1k] "
                   "[--serving1k] [--serving10k] [--overload1k] "
                   "[--overload10k] [--hybrid1k] [--out <file>]\n");
      return 2;
    }
  }
  if (micro_path.empty()) {
    std::fprintf(stderr, "bench_json: --micro is required\n");
    return 2;
  }

  try {
    // The end-to-end sweeps run first, on a clean heap: parsing the JSON
    // inputs leaves thousands of live small allocations that measurably
    // slow the allocation-heavy simulation.
    std::vector<std::pair<std::string, EndToEnd>> end_to_end;
    if (with_table2) {
      std::fprintf(stderr, "bench_json: running reduced Table-2 sweep...\n");
      end_to_end.emplace_back("table2_range_kvdb", run_table2());
    }
    if (with_cluster) {
      std::fprintf(stderr, "bench_json: running reduced cluster grid...\n");
      end_to_end.emplace_back("cluster_availability", run_cluster());
    }
    if (with_cluster_1k) {
      std::fprintf(stderr,
                   "bench_json: running 1000-node engine-vs-serial cell...\n");
      end_to_end.emplace_back("cluster_availability_1k", run_cluster_1k());
    }
    if (with_serving_1k) {
      std::fprintf(stderr,
                   "bench_json: running 1000-node serving-vs-immediate "
                   "cell...\n");
      end_to_end.emplace_back("cluster_serving_1k", run_cluster_serving_1k());
    }
    if (with_serving_10k) {
      std::fprintf(stderr,
                   "bench_json: running 10,000-node serving-vs-immediate "
                   "cell...\n");
      end_to_end.emplace_back("cluster_serving_10k",
                              run_cluster_serving_10k());
    }
    if (with_overload_1k) {
      std::fprintf(stderr,
                   "bench_json: running 1000-node overload-recovery "
                   "cell...\n");
      end_to_end.emplace_back("overload_recovery_1k",
                              run_overload_recovery_1k());
    }
    if (with_overload_10k) {
      std::fprintf(stderr,
                   "bench_json: running 10,000-node overload-recovery "
                   "cell...\n");
      end_to_end.emplace_back("overload_recovery_10k",
                              run_overload_recovery_10k());
    }
    if (with_hybrid_1k) {
      std::fprintf(stderr,
                   "bench_json: running 1000-node hybrid-vs-HDD "
                   "availability cell...\n");
      end_to_end.emplace_back("hybrid_availability_1k",
                              run_hybrid_availability_1k());
    }

    const std::map<std::string, double> current =
        distill_micro(json_parse(read_file(micro_path)));

    std::map<std::string, double> baseline;
    std::map<std::string, double> baseline_e2e;  // entry -> trials/s
    if (!baseline_path.empty()) {
      const JsonValue base = json_parse(read_file(baseline_path));
      if (base.find("benchmarks") != nullptr) {
        baseline = distill_micro(base);  // raw google-benchmark JSON
      } else if (const JsonValue* suites = base.find("suites")) {
        // A previous BENCH file: keep its recorded baselines.
        for (const auto& [name, suite] : suites->object) {
          if (const JsonValue* b = suite.find("baseline_ns_per_op");
              b != nullptr && b->is_number()) {
            baseline[name] = b->number;
          } else if (const JsonValue* c = suite.find("current_ns_per_op");
                     c != nullptr && c->is_number()) {
            // A suite that was NEW in the previous file (null baseline):
            // its first recorded rate becomes the baseline going
            // forward, so it gates from its second generation on —
            // same rule the end-to-end entries already follow.
            baseline[name] = c->number;
          }
        }
        if (const JsonValue* prev = base.find("end_to_end")) {
          for (const auto& [name, entry] : prev->object) {
            if (const JsonValue* b = entry.find("baseline_trials_per_s");
                b != nullptr && b->is_number()) {
              baseline_e2e[name] = b->number;
            } else if (const JsonValue* c = entry.find("current_trials_per_s");
                       c != nullptr && c->is_number()) {
              // The previous file had no baseline for this entry yet:
              // its current rate becomes the baseline going forward.
              baseline_e2e[name] = c->number;
            }
          }
        }
      } else {
        throw std::runtime_error("unrecognized --baseline format");
      }
    }

    std::ofstream os(out_path, std::ios::binary);
    if (!os) {
      throw std::runtime_error("cannot write " + out_path);
    }
    os << "{\n  \"schema\": \"deepnote-bench-v1\",\n  \"suites\": {\n";
    bool first = true;
    for (const auto& [name, ns] : current) {
      if (!first) os << ",\n";
      first = false;
      os << "    \"" << json_escape(name) << "\": {\"baseline_ns_per_op\": ";
      auto it = baseline.find(name);
      emit_number_or_null(
          os, it != baseline.end() ? std::optional<double>(it->second)
                                   : std::nullopt);
      os << ", \"current_ns_per_op\": ";
      emit_number_or_null(os, ns);
      os << ", \"speedup\": ";
      emit_number_or_null(os, it != baseline.end() && ns > 0
                                  ? std::optional<double>(it->second / ns)
                                  : std::nullopt);
      os << "}";
    }
    os << "\n  }";
    if (!end_to_end.empty()) {
      os << ",\n  \"end_to_end\": {";
      bool first_e2e = true;
      for (const auto& [name, e] : end_to_end) {
        if (!first_e2e) os << ",";
        first_e2e = false;
        const auto it = baseline_e2e.find(name);
        std::optional<double> base_rate =
            it != baseline_e2e.end() ? std::optional<double>(it->second)
                                     : std::nullopt;
        // A baseline measured alongside the candidate (the serial
        // composition on the identical workload) beats a carried-forward
        // number: the two rates then share one machine and one build.
        if (e.measured_baseline_per_s.has_value()) {
          base_rate = e.measured_baseline_per_s;
        }
        os << "\n    \"" << json_escape(name) << "\": {"
           << "\"trials\": " << e.trials << ", \"wall_s\": ";
        emit_number_or_null(os, e.wall_s);
        os << ", \"current_trials_per_s\": ";
        emit_number_or_null(os, e.trials_per_s);
        os << ", \"baseline_trials_per_s\": ";
        emit_number_or_null(os, base_rate);
        os << ", \"speedup\": ";
        emit_number_or_null(
            os, base_rate.has_value() && *base_rate > 0
                    ? std::optional<double>(e.trials_per_s / *base_rate)
                    : std::nullopt);
        if (e.min_speedup.has_value()) {
          os << ", \"min_speedup\": ";
          emit_number_or_null(os, e.min_speedup);
        }
        os << ", \"total_ops\": " << e.total_ops;
        if (!e.metrics.empty()) {
          os << ", \"metrics\": {";
          bool first_metric = true;
          for (const auto& [metric, value] : e.metrics) {
            if (!first_metric) os << ", ";
            first_metric = false;
            os << "\"" << json_escape(metric) << "\": ";
            emit_number_or_null(os, value);
          }
          os << "}";
        }
        if (!e.gates.empty()) {
          os << ", \"gates\": {";
          bool first_gate = true;
          for (const auto& gate : e.gates) {
            if (!first_gate) os << ", ";
            first_gate = false;
            os << "\"" << json_escape(gate.metric) << "\": {";
            bool inner = false;
            if (gate.min.has_value()) {
              os << "\"min\": ";
              emit_number_or_null(os, gate.min);
              inner = true;
            }
            if (gate.max.has_value()) {
              if (inner) os << ", ";
              os << "\"max\": ";
              emit_number_or_null(os, gate.max);
            }
            os << "}";
          }
          os << "}";
        }
        os << "}";
      }
      os << "\n  }";
    }
    os << "\n}\n";
    std::fprintf(stderr, "bench_json: wrote %s (%zu suites, %zu end-to-end)\n",
                 out_path.c_str(), current.size(), end_to_end.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_json: %s\n", e.what());
    return 1;
  }
  return 0;
}
