// Rack ablation: a full 5-bay tower under attack.
//
// The paper tests one drive in one bay; a deployed tower holds five, and
// they do not couple to the enclosure field equally. This bench maps the
// kill pattern across the rack: which bays die at which distances, and
// the rack's aggregate write capacity under attack.
#include <cstdio>
#include <iostream>

#include "core/rack.h"
#include "storage/raid.h"
#include "sim/table.h"
#include "workload/fio.h"

using namespace deepnote;

namespace {

double bay_write_mbps(core::RackTestbed& rack, std::size_t bay) {
  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kSeqWrite;
  job.submit_overhead = rack.spec().fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(3.0);
  job.duration = sim::Duration::from_seconds(8.0);
  workload::FioRunner runner(rack.device(bay));
  return runner.run(sim::SimTime::zero(), job).throughput_mbps;
}

}  // namespace

int main() {
  const double distances[] = {0.01, 0.03, 0.05, 0.08, 0.12, 0.20};

  sim::Table t("5-bay tower: per-bay write throughput (MB/s) vs attack "
               "distance (650 Hz, 140 dB, Scenario 2 enclosure)");
  std::vector<std::string> headers{"Distance"};
  core::RackConfig cfg;
  for (std::size_t bay = 0; bay < cfg.bays; ++bay) {
    headers.push_back("bay " + std::to_string(bay) + " (" +
                      sim::format_fixed(core::RackTestbed(cfg).bay_offset_db(bay),
                                        1) +
                      " dB)");
  }
  headers.push_back("rack total");
  headers.push_back("parked bays");
  t.set_columns(headers);

  for (double d : distances) {
    core::RackTestbed rack(cfg);
    core::AttackConfig attack;
    attack.frequency_hz = 650.0;
    attack.spl_air_db = 140.0;
    attack.distance_m = d;
    rack.apply_attack(sim::SimTime::zero(), attack);

    t.row().cell(sim::format_fixed(d * 100, 0) + " cm");
    double total = 0.0;
    for (std::size_t bay = 0; bay < rack.bays(); ++bay) {
      const double mbps = bay_write_mbps(rack, bay);
      total += mbps;
      t.cell(mbps, 1);
    }
    t.cell(total, 1);
    t.cell(static_cast<std::int64_t>(rack.parked_bays()));
  }
  std::cout << t << "\n";

  // Does mirroring help? A RAID-1 pair inside the same tower vs a mirror
  // whose second member sits in a different (unattacked) enclosure.
  {
    sim::Table rt("RAID-1 under attack (650 Hz, 140 dB, 3 cm): same-rack "
                  "mirror vs cross-enclosure mirror");
    rt.set_columns({"Mirror layout", "steady write MB/s",
                    "degraded writes", "failed I/Os", "members ejected"});
    core::AttackConfig attack;
    attack.frequency_hz = 650.0;
    attack.spl_air_db = 140.0;
    attack.distance_m = 0.03;

    auto run_mirror = [&](bool second_member_attacked) {
      core::RackTestbed rack(cfg);
      rack.apply_attack(sim::SimTime::zero(), attack);
      // A second rack far away (or unattacked) hosts the remote mirror.
      core::RackTestbed remote(cfg);
      storage::BlockDevice* m0 = &rack.device(0);
      storage::BlockDevice* m1 = second_member_attacked
                                     ? static_cast<storage::BlockDevice*>(
                                           &rack.device(1))
                                     : &remote.device(0);
      storage::Raid1Device raid({m0, m1});
      std::vector<std::byte> block(4096, std::byte{0x5a});
      sim::SimTime now = sim::SimTime::zero();
      std::uint64_t bytes = 0;
      // Ejecting the wedged member costs 2 x 75 s of command timeouts;
      // measure the steady state after the md layer has acted.
      const sim::SimTime from = sim::SimTime::from_seconds(160);
      const sim::SimTime to = sim::SimTime::from_seconds(190);
      std::uint64_t lba = 0;
      while (now < to) {
        const storage::BlockIo io = raid.write(
            now + sim::Duration::from_micros(100), lba, 8, block);
        if (io.ok() && io.complete >= from && io.complete <= to) {
          bytes += 4096;
        }
        lba += 8;
        now = io.complete;
      }
      rt.row()
          .cell(second_member_attacked ? "both members in attacked tower"
                                       : "second member in remote enclosure")
          .cell(static_cast<double>(bytes) / 1e6 / (to - from).seconds(), 1)
          .cell(static_cast<std::int64_t>(raid.stats().degraded_writes))
          .cell(static_cast<std::int64_t>(raid.stats().failed_ios))
          .cell(static_cast<std::int64_t>(raid.members() -
                                          raid.active_members()));
    };
    run_mirror(true);
    run_mirror(false);
    std::cout << rt << "\n";
  }

  std::printf(
      "Reading: at point-blank range the whole tower parks; as the\n"
      "speaker backs off, bays recover wall-first-last — correlated (not\n"
      "independent!) failures. A same-rack RAID-1 mirror buys nothing:\n"
      "both members wedge together. Placing the mirror in a different\n"
      "enclosure restores availability — after the md layer has paid two\n"
      "75 s command timeouts to eject the wedged member (writes are paced\n"
      "by the slowest member until then).\n");
  return 0;
}
