// Model ablation: which pieces of the drive/servo model produce the
// paper's phenomenology?
//
// Re-runs the Table 1 style measurement (650 Hz, Scenario 2) with one
// mechanism removed at a time, showing what each contributes:
//   * no write cache       -> the baseline itself collapses (sync 4 KiB
//                              writes pay a revolution each);
//   * no shock sensor      -> nothing ever parks: the "no response" rows
//                              become slow-but-alive;
//   * no servo rejection   -> the attack works at low frequencies too;
//   * equal r/w tolerance  -> the read/write asymmetry disappears;
//   * no retry budget cap  -> commands grind forever instead of failing.
#include <cstdio>
#include <iostream>

#include "core/scenario.h"
#include "core/testbed.h"
#include "sim/table.h"
#include "workload/fio.h"

using namespace deepnote;

namespace {

enum class Variant {
  kFull,
  kNoWriteCache,
  kNoShockSensor,
  kNoServoRejection,
  kEqualTolerances,
};

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kFull: return "full model";
    case Variant::kNoWriteCache: return "write cache off";
    case Variant::kNoShockSensor: return "shock sensor off";
    case Variant::kNoServoRejection: return "servo rejection off";
    case Variant::kEqualTolerances: return "equal r/w tolerance";
  }
  return "?";
}

core::ScenarioSpec spec_for(Variant v) {
  core::ScenarioSpec spec = core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  switch (v) {
    case Variant::kFull:
      break;
    case Variant::kNoWriteCache:
      spec.hdd.write_cache_enabled = false;
      break;
    case Variant::kNoShockSensor:
      spec.hdd.servo.park_fraction = 1e9;  // never parks
      spec.hdd.servo.false_trip_max_hz = 0.0;
      break;
    case Variant::kNoServoRejection:
      spec.hdd.servo.rejection_corner_hz = 0.0;
      break;
    case Variant::kEqualTolerances:
      spec.hdd.servo.read_fault_fraction = spec.hdd.servo.write_fault_fraction;
      break;
  }
  return spec;
}

struct Cell {
  double read;
  double write;
};

Cell measure(Variant v, double frequency_hz, double distance_m) {
  Cell out{};
  for (int side = 0; side < 2; ++side) {
    core::ScenarioSpec spec = spec_for(v);
    core::Testbed bed(spec);
    if (distance_m > 0.0) {
      core::AttackConfig attack;
      attack.frequency_hz = frequency_hz;
      attack.spl_air_db = 140.0;
      attack.distance_m = distance_m;
      bed.apply_attack(sim::SimTime::zero(), attack);
    }
    workload::FioJobConfig job;
    job.pattern = side == 0 ? workload::IoPattern::kSeqRead
                            : workload::IoPattern::kSeqWrite;
    job.submit_overhead = spec.fio_submit_overhead;
    job.ramp = sim::Duration::from_seconds(3.0);
    job.duration = sim::Duration::from_seconds(8.0);
    workload::FioRunner runner(bed.device());
    const double mbps = runner.run(sim::SimTime::zero(), job).throughput_mbps;
    (side == 0 ? out.read : out.write) = mbps;
  }
  return out;
}

}  // namespace

int main() {
  sim::Table t("Model ablation: read/write MB/s (650 Hz unless noted, "
               "Scenario 2)");
  t.set_columns({"variant", "baseline R", "baseline W", "1cm R", "1cm W",
                 "10cm R", "10cm W", "150Hz@1cm W"});
  for (auto v : {Variant::kFull, Variant::kNoWriteCache,
                 Variant::kNoShockSensor, Variant::kNoServoRejection,
                 Variant::kEqualTolerances}) {
    const Cell base = measure(v, 0.0, 0.0);
    const Cell close = measure(v, 650.0, 0.01);
    const Cell mid = measure(v, 650.0, 0.10);
    const Cell low = measure(v, 150.0, 0.01);
    t.row()
        .cell(variant_name(v))
        .cell(base.read, 1)
        .cell(base.write, 1)
        .cell(close.read, 1)
        .cell(close.write, 1)
        .cell(mid.read, 1)
        .cell(mid.write, 1)
        .cell(low.write, 1);
  }
  std::cout << t << "\n";
  std::printf(
      "Reading (cf. DESIGN.md #5):\n"
      " * the write-back cache is what makes the no-attack 4 KiB write\n"
      "   baseline fast — without it the drive pays a rotation per op;\n"
      " * the shock sensor turns heavy vibration into a hard park (the\n"
      "   paper's 'no response' rows); without it the drive limps on;\n"
      " * servo rejection sets the 300 Hz lower band edge — without it\n"
      "   the 150 Hz attack also kills writes;\n"
      " * the tighter write tolerance is the whole read/write asymmetry.\n");
  return 0;
}
