// Extension: would a *real* underwater data center be vulnerable?
//
// The paper's testbed uses thin plastic/aluminum containers; deployed
// vessels (Project Natick style) are thick steel pressure hulls in open
// water. This bench compares the paper's Scenario 2 against the
// steel-vessel extension: off-track amplitude across frequency, write
// throughput at point-blank range, and the source level an attacker
// would need.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/scenario.h"
#include "core/testbed.h"
#include "sim/table.h"
#include "workload/fio.h"

using namespace deepnote;

namespace {

double write_mbps(core::ScenarioId id, const core::AttackConfig& attack) {
  core::ScenarioSpec spec = core::make_scenario(id);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  bed.apply_attack(sim::SimTime::zero(), attack);
  workload::FioJobConfig job;
  job.pattern = workload::IoPattern::kSeqWrite;
  job.submit_overhead = spec.fio_submit_overhead;
  job.ramp = sim::Duration::from_seconds(3.0);
  job.duration = sim::Duration::from_seconds(8.0);
  workload::FioRunner runner(bed.device());
  return runner.run(sim::SimTime::zero(), job).throughput_mbps;
}

/// Attacker SPL (air-reference dB, paper convention) needed to park the
/// drive at 1 cm and the given frequency: the off-track amplitude scales
/// linearly with pressure, so solve directly.
double required_spl_air_db(core::ScenarioId id, double frequency_hz) {
  core::Testbed bed(core::make_scenario(id));
  core::AttackConfig probe;
  probe.frequency_hz = frequency_hz;
  probe.spl_air_db = 140.0;
  probe.distance_m = 0.01;
  const double park_nm = bed.drive().servo().config().park_fraction *
                         bed.drive().servo().config().track_pitch_nm;
  const double nm = bed.predicted_offtrack_nm(probe);
  if (nm <= 0.0) return 1e9;
  return 140.0 + 20.0 * std::log10(park_nm / nm);
}

}  // namespace

int main() {
  {
    sim::Table t("Head off-track amplitude (nm) at 140 dB SPL, 1 cm: "
                 "paper testbed vs steel vessel (park at 25 nm, write "
                 "fault at 10 nm)");
    t.set_columns({"Frequency", "Scenario 2 (plastic tote)",
                   "Steel pressure vessel"});
    for (double f : {150.0, 300.0, 520.0, 650.0, 900.0, 1300.0}) {
      core::AttackConfig attack;
      attack.frequency_hz = f;
      attack.distance_m = 0.01;
      core::Testbed plastic(
          core::make_scenario(core::ScenarioId::kPlasticTower));
      core::Testbed vessel(core::make_scenario(core::ScenarioId::kSteelVessel));
      t.row()
          .cell(sim::format_fixed(f, 0) + " Hz")
          .cell(plastic.predicted_offtrack_nm(attack), 1)
          .cell(vessel.predicted_offtrack_nm(attack), 2);
    }
    std::cout << t << "\n";
  }
  {
    sim::Table t("Write throughput (MB/s) under the paper's best attack "
                 "(650 Hz, 140 dB, 1 cm)");
    t.set_columns({"Deployment", "baseline", "under attack"});
    core::AttackConfig attack;
    core::AttackConfig silent = attack;
    silent.spl_air_db = -100.0;
    for (auto id : {core::ScenarioId::kPlasticTower,
                    core::ScenarioId::kMetalTower,
                    core::ScenarioId::kSteelVessel}) {
      t.row()
          .cell(core::scenario_name(id))
          .cell(write_mbps(id, silent), 1)
          .cell(write_mbps(id, attack), 1);
    }
    std::cout << t << "\n";
  }
  {
    sim::Table t("Attacker SPL (dB re 20 uPa, the paper's convention) "
                 "needed to PARK the drive at 1 cm");
    t.set_columns({"Frequency", "Scenario 2", "Steel vessel",
                   "feasible underwater source?"});
    for (double f : {300.0, 520.0, 650.0, 1000.0}) {
      const double plastic =
          required_spl_air_db(core::ScenarioId::kPlasticTower, f);
      const double vessel =
          required_spl_air_db(core::ScenarioId::kSteelVessel, f);
      // Our sonar-class projector tops out at 220 dB re 1 uPa = 194 dB
      // re 20 uPa equivalent.
      const char* feasible = vessel <= 194.0 ? "yes (sonar-class)"
                                             : "beyond sonar-class";
      t.row()
          .cell(sim::format_fixed(f, 0) + " Hz")
          .cell(plastic, 1)
          .cell(vessel, 1)
          .cell(feasible);
    }
    std::cout << t << "\n";
  }
  std::printf(
      "Reading: the thin-walled lab containers understate a real hull —\n"
      "a 140 dB pool speaker that kills the paper's testbed leaves a\n"
      "steel vessel's heads well inside tolerance. But the hull is not a\n"
      "proof of safety: at its own ring modes a sonar-class projector\n"
      "still reaches park amplitude, supporting the paper's call for\n"
      "testbeds that represent deployment-grade enclosures (Section 5).\n");
  return 0;
}
