// Reproduces Table 1: FIO read/write throughput and latency of the HDD
// when the acoustic attack occurs at varied distances (650 Hz, 140 dB
// SPL, Scenario 2).
#include <cstdio>
#include <iostream>

#include "core/range_test.h"
#include "core/report.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  core::RangeTest range(core::ScenarioId::kPlasticTower);
  core::RangeTestConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.ramp = sim::Duration::from_seconds(5.0);
  config.duration = sim::Duration::from_seconds(30.0);

  std::fprintf(stderr,
               "[trial engine: %u jobs; set DEEPNOTE_JOBS to override]\n",
               sim::resolve_jobs(config.jobs));
  const auto rows = range.run_fio(config);
  core::print_table(core::format_table1(rows), argc, argv);
  std::printf("Paper reference (Table 1):\n"
              "  No Attack: R 18.0 / W 22.7 MB/s, lat 0.2/0.2 ms\n"
              "  1 cm: 0/0 (-/-)   5 cm: 0/0 (-/-)   10 cm: 12.6/0.3\n"
              "  15 cm: 17.6/2.9   20 cm: 17.6/21.1  25 cm: 18.0/22.0\n");
  return 0;
}
