// Reproduces Table 1: FIO read/write throughput and latency of the HDD
// when the acoustic attack occurs at varied distances (650 Hz, 140 dB
// SPL, Scenario 2).
//
// Config and execution live in core/paper_tables.h so the golden-table
// regression suite exercises the identical pipeline.
#include <cstdio>

#include "core/paper_tables.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  const core::RangeTestConfig config = core::table1_config();
  std::fprintf(stderr,
               "[trial engine: %u jobs; set DEEPNOTE_JOBS to override]\n",
               sim::resolve_jobs(config.jobs));
  core::print_table(core::build_table1(config), argc, argv);
  std::printf("Paper reference (Table 1):\n"
              "  No Attack: R 18.0 / W 22.7 MB/s, lat 0.2/0.2 ms\n"
              "  1 cm: 0/0 (-/-)   5 cm: 0/0 (-/-)   10 cm: 12.6/0.3\n"
              "  15 cm: 17.6/2.9   20 cm: 17.6/21.1  25 cm: 18.0/22.0\n");
  return 0;
}
