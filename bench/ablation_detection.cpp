// Detection ablation (paper Section 5.1: defenses start with noticing).
//
// Runs the FIO write workload with the AttackDetector watching command
// completions, across attack distances and frequencies, and reports the
// detector's reaction time plus the SMART fingerprint the attack leaves.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/detector.h"
#include "core/scenario.h"
#include "core/testbed.h"
#include "hdd/smart.h"
#include "sim/table.h"

using namespace deepnote;

namespace {

struct Outcome {
  bool detected = false;
  double reaction_s = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t parks = 0;
  std::uint64_t hung = 0;
};

Outcome run_monitored_attack(double frequency_hz, double distance_m) {
  core::ScenarioSpec spec =
      core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);
  // One buffer-I/O error after steady service is alarming by itself; a
  // production monitor watching kernel logs would react even earlier, at
  // the first command-timeout reset (~25 s in).
  core::DetectorConfig det_cfg;
  det_cfg.error_burst = 1;
  core::AttackDetector detector(det_cfg);

  std::vector<std::byte> block(4096, std::byte{0x5a});
  sim::SimTime t = sim::SimTime::zero();
  std::uint64_t lba = 0;
  const sim::SimTime attack_at = sim::SimTime::from_seconds(10);
  bool attack_on = false;
  Outcome out;
  while (t < sim::SimTime::from_seconds(200)) {
    if (!attack_on && t >= attack_at) {
      core::AttackConfig attack;
      attack.frequency_hz = frequency_hz;
      attack.spl_air_db = 140.0;
      attack.distance_m = distance_m;
      bed.apply_attack(t, attack);
      attack_on = true;
    }
    const auto begin = t + spec.fio_submit_overhead;
    const storage::BlockIo io = bed.device().write(begin, lba, 8, block);
    if (io.ok()) {
      detector.record_ok(io.complete, (io.complete - t).seconds());
    } else {
      detector.record_error(io.complete);
    }
    lba += 8;
    t = io.complete;
    if (attack_on && detector.alerted()) {
      out.detected = true;
      out.reaction_s = (detector.alert_time() - attack_at).seconds();
      break;
    }
  }
  out.retries = bed.drive().stats().media_retries;
  out.parks = bed.drive().stats().shock_parks;
  out.hung = bed.drive().stats().hung_commands;
  return out;
}

}  // namespace

int main() {
  sim::Table t("Host-side detection: reaction time of the latency/error "
               "monitor after attack start");
  t.set_columns({"Attack", "Detected", "Reaction s", "SMART retries",
                 "SMART parks", "SMART timeouts"});
  struct Case {
    const char* label;
    double frequency_hz;
    double distance_m;
  };
  const Case cases[] = {
      {"650 Hz @ 1 cm (kill)", 650.0, 0.01},
      {"650 Hz @ 10 cm (degrade)", 650.0, 0.10},
      {"650 Hz @ 15 cm (graze)", 650.0, 0.15},
      {"650 Hz @ 25 cm (none)", 650.0, 0.25},
      {"400 Hz @ 5 cm", 400.0, 0.05},
      {"1.2 kHz @ 5 cm (weak)", 1200.0, 0.05},
      {"4 kHz @ 1 cm (outside band)", 4000.0, 0.01},
  };
  for (const auto& c : cases) {
    const Outcome out = run_monitored_attack(c.frequency_hz, c.distance_m);
    t.row().cell(c.label);
    if (out.detected) {
      t.cell("yes").cell(out.reaction_s, 1);
    } else {
      t.cell("no").dash();
    }
    t.cell(static_cast<std::int64_t>(out.retries));
    t.cell(static_cast<std::int64_t>(out.parks));
    t.cell(static_cast<std::int64_t>(out.hung));
  }
  std::cout << t << "\n";
  std::printf(
      "Reading: the latency monitor flags partial attacks within ~2 s;\n"
      "a hard kill surfaces as the first buffer-I/O error at 75 s (a\n"
      "kernel-log watcher would see the first timeout reset at 25 s).\n"
      "Off-band or out-of-range tones produce no alert and no SMART\n"
      "fingerprint — no false positives. Detection-and-response, the\n"
      "paper's Section 5.1 direction, looks cheap to deploy.\n");
  return 0;
}
