// Pulsed-attack ablation (threat model, first attacker objective):
// "provoke a controlled throughput loss ... for a specific amount of
// time to induce application or process delays".
//
// A duty-cycled 650 Hz tone throttles the victim proportionally to the
// duty cycle — the attacker has a throughput *dial*, not just an
// on/off switch. Short pulse periods hurt more than their duty alone
// (each pulse costs a park/resume recovery on top of the ON time).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/live_attack.h"
#include "sim/table.h"

using namespace deepnote;

namespace {

double write_mbps_under_pulse(double duty, double period_s) {
  core::ScenarioSpec spec =
      core::make_scenario(core::ScenarioId::kPlasticTower);
  spec.hdd.retain_data = false;
  core::Testbed bed(spec);

  // Pulse from 10 cm: the ON phase throttles writes to ~0.2 MB/s through
  // retry storms while commands still complete, so each pulse boundary
  // takes effect within one command. (At 1 cm the drive parks and a
  // single wedged command spans pulses — the virtual-time model's
  // documented atomic-step limit.)
  auto signal = std::make_shared<acoustics::PulsedToneSignal>(
      650.0, 166.0, sim::Duration::from_seconds(period_s), duty);
  core::LiveAttackDriver driver(bed, signal, 0.10,
                                sim::Duration::from_millis(20),
                                sim::SimTime::zero(),
                                /*retire_on_silence=*/false);

  std::vector<std::byte> block(4096, std::byte{0x5a});
  std::uint64_t lba = 0;
  std::uint64_t bytes = 0;
  const sim::SimTime measure_from = sim::SimTime::from_seconds(5);
  const sim::SimTime measure_to = sim::SimTime::from_seconds(65);
  workload::LambdaActor writer(
      sim::SimTime::zero(), [&](sim::SimTime now) -> sim::SimTime {
        const auto begin = now + spec.fio_submit_overhead;
        const storage::BlockIo io = bed.device().write(begin, lba, 8, block);
        if (io.ok() && io.complete >= measure_from &&
            io.complete <= measure_to) {
          bytes += 4096;
        }
        lba += 8;
        return io.complete;
      });
  workload::ActorScheduler sched;
  sched.add(driver);
  sched.add(writer);
  sched.run_until(measure_to);
  return static_cast<double>(bytes) / 1e6 /
         (measure_to - measure_from).seconds();
}

}  // namespace

int main() {
  sim::Table t("Pulsed 650 Hz attack at 10 cm: steady-state write "
               "throughput (MB/s, baseline 22.7) vs duty cycle");
  t.set_columns({"Duty cycle", "period 2 s", "period 5 s", "period 10 s"});
  for (double duty : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    t.row().cell(sim::format_fixed(duty * 100, 0) + " %");
    for (double period : {2.0, 5.0, 10.0}) {
      t.cell(write_mbps_under_pulse(duty, period), 1);
    }
  }
  std::cout << t << "\n";
  std::printf(
      "Reading: duty cycle acts as a throughput dial — the attacker can\n"
      "hold the victim at any chosen fraction of its capacity. Unlike\n"
      "the crash attack this throttling produces no error logs at all;\n"
      "only latency monitoring catches it (see ablation_detection).\n");
  return 0;
}
