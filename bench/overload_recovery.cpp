// Regenerates the overload-recovery table: a two-pod acoustic pulse on a
// closed-loop serving cluster, swept over retry policy (naive vs.
// governed), circuit breakers, and attack duration. The naive rows stay
// collapsed long after the pulse ends — the metastable-failure regime —
// while the governed rows recover in seconds (see EXPERIMENTS.md
// § Overload and recovery).
//
// Configs and execution live in cluster/overload_experiment.h so the
// golden-table regression suite exercises the identical pipeline.
// --scale F shrinks the warmup and the post-attack observation window
// (default 1.0 = 600 s of recovery observation per cell). Pass --csv or
// --md to change the output format (see core/report.h).
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "cluster/overload_experiment.h"
#include "core/report.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  double scale = 1.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      scale = std::atof(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  const cluster::OverloadExperimentConfig config =
      cluster::overload_experiment_config(scale);
  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  const auto rows = cluster::run_overload_experiment(config);
  core::print_table(cluster::build_overload_recovery_table(config, rows),
                    argc, argv);
  std::cout << "Headline: with naive retries (fixed backoff, no jitter, no "
               "budget, wasted work) goodput stays collapsed long after the "
               "attack stops — a metastable failure sustained purely by "
               "retry load. Governed retries (capped exponential + full "
               "jitter, retry budget, expired-request dropping) recover "
               "within seconds of attack-off.\n";
  return 0;
}
