// Reproduces Table 3: crashes in real-world applications under a
// sustained attack (650 Hz, 140 dB SPL, 1 cm, Scenario 2).
//
// Config and execution live in core/paper_tables.h so the golden-table
// regression suite exercises the identical pipeline.
#include <iostream>

#include "core/paper_tables.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  const core::CrashExperimentConfig config = core::table3_config();
  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  core::print_table(core::build_table3(config), argc, argv);
  std::cout << "Paper reference (Table 3): Ext4 80.0 s (JBD error -5), "
               "Ubuntu 81.0 s, RocksDB 81.3 s; average 80.8 s.\n";
  return 0;
}
