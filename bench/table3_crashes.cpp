// Reproduces Table 3: crashes in real-world applications under a
// sustained attack (650 Hz, 140 dB SPL, 1 cm, Scenario 2).
#include <iostream>

#include "core/crash_experiment.h"
#include "core/report.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  core::CrashExperiments experiments(core::ScenarioId::kPlasticTower);
  core::CrashExperimentConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.attack.distance_m = 0.01;

  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  const core::CrashSuite suite = experiments.run_all(config);
  std::vector<core::CrashRow> rows;
  rows.push_back({"Ext4", "Journaling filesystem", suite.ext4});
  rows.push_back({"Ubuntu", "Ubuntu server 16.04", suite.ubuntu_server});
  rows.push_back({"RocksDB", "Key-value database", suite.rocksdb});

  core::print_table(core::format_table3(rows), argc, argv);
  std::cout << "Paper reference (Table 3): Ext4 80.0 s (JBD error -5), "
               "Ubuntu 81.0 s, RocksDB 81.3 s; average 80.8 s.\n";
  return 0;
}
