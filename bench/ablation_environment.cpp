// Water-condition ablation (paper Section 5, "Water Conditions" and
// "Effective Range").
//
// The paper argues temperature, salinity and depth change the sound
// speed and absorption, and therefore the attacker's reach; and that a
// stronger source ("military-grade marine loudspeakers") extends the
// attack beyond the 25 cm proof-of-concept range. This bench quantifies
// both claims with the acoustics substrate:
//   (a) medium properties across environments;
//   (b) the maximum range at which each source still delivers the SPL
//       that kills the drive at 650 Hz;
//   (c) the required source level as a function of target distance.
#include <cstdio>
#include <iostream>

#include "acoustics/propagation.h"
#include "acoustics/units.h"
#include "core/scenario.h"
#include "core/testbed.h"
#include "sim/table.h"

using namespace deepnote;
using acoustics::AbsorptionModel;
using acoustics::Medium;
using acoustics::PropagationPath;
using acoustics::SpreadingModel;
using acoustics::SpreadingParams;
using acoustics::WaterConditions;

namespace {

/// SPL at the enclosure wall that suffices to park the victim drive at
/// 650 Hz in Scenario 2 (from the calibrated chain, solved once).
double kill_spl_at_wall() {
  core::Testbed bed(core::make_scenario(core::ScenarioId::kPlasticTower));
  const double park_nm = bed.drive().servo().config().park_fraction *
                         bed.drive().servo().config().track_pitch_nm;
  // predicted_offtrack scales linearly with incident pressure: find the
  // exterior SPL giving exactly park_nm.
  core::AttackConfig probe;
  probe.frequency_hz = 650.0;
  probe.distance_m = 0.01;
  const double nm_at_166 = bed.predicted_offtrack_nm(probe);
  const double headroom_db =
      acoustics::db_from_field_ratio(nm_at_166 / park_nm);
  return bed.exterior_spl_db(probe) - headroom_db;
}

PropagationPath path_for(const WaterConditions& water,
                         AbsorptionModel model) {
  return PropagationPath(
      Medium(water),
      SpreadingParams{SpreadingModel::kPractical, 0.01, 100.0}, model);
}

}  // namespace

int main() {
  const double kill_spl = kill_spl_at_wall();
  std::printf("SPL at the wall that parks the drive (650 Hz, Scenario 2): "
              "%.1f dB re 1 uPa\n\n", kill_spl);

  struct Env {
    const char* name;
    WaterConditions water;
    AbsorptionModel model;
  };
  const Env envs[] = {
      {"lab tank (fresh, 22C)", WaterConditions::tank(),
       AbsorptionModel::kFreshwater},
      {"ocean 36 m (Natick)", WaterConditions::ocean(36.0),
       AbsorptionModel::kAinslieMcColm},
      {"ocean 20 m (Hainan)", WaterConditions::ocean(20.0),
       AbsorptionModel::kAinslieMcColm},
      {"Baltic 50 m", WaterConditions::baltic(),
       AbsorptionModel::kAinslieMcColm},
      {"warm ocean 36 m (25C)",
       WaterConditions{25.0, 35.0, 36.0, 8.0},
       AbsorptionModel::kAinslieMcColm},
  };

  sim::Table medium_table("Medium properties and 650 Hz absorption");
  medium_table.set_columns({"Environment", "Sound speed m/s",
                            "Absorption dB/km @650Hz",
                            "Absorption dB/km @8kHz"});
  for (const auto& env : envs) {
    const Medium m(env.water);
    medium_table.row()
        .cell(env.name)
        .cell(m.sound_speed(), 1)
        .cell(absorption_db_per_km(env.model, 650.0, env.water), 4)
        .cell(absorption_db_per_km(env.model, 8000.0, env.water), 3);
  }
  std::cout << medium_table << "\n";

  struct Source {
    const char* name;
    double source_level_db;
  };
  const Source sources[] = {
      {"pool speaker, 140 dB SPL(air)", 166.0},
      {"pool speaker at max output", 180.0},
      {"sonar-class projector", 220.0},
  };
  sim::Table range_table(
      "Maximum attack range at 650 Hz (delivering the kill SPL)");
  std::vector<std::string> headers{"Environment"};
  for (const auto& s : sources) headers.emplace_back(s.name);
  range_table.set_columns(headers);
  for (const auto& env : envs) {
    range_table.row().cell(env.name);
    const auto path = path_for(env.water, env.model);
    for (const auto& s : sources) {
      const double range =
          path.max_effective_range_m(650.0, s.source_level_db, kill_spl);
      char buf[32];
      if (range >= 1000.0) {
        std::snprintf(buf, sizeof(buf), "%.1f km", range / 1000.0);
      } else {
        std::snprintf(buf, sizeof(buf), "%.2f m", range);
      }
      range_table.cell(buf);
    }
  }
  std::cout << range_table << "\n";

  sim::Table sl_table(
      "Required source level vs target distance (ocean, 650 Hz)");
  sl_table.set_columns({"Distance", "Required SL dB re 1 uPa",
                        "Feasible with pool speaker (<=180 dB)",
                        "Feasible with sonar (<=220 dB)"});
  const auto ocean = path_for(WaterConditions::ocean(36.0),
                              AbsorptionModel::kAinslieMcColm);
  for (double d : {0.25, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const double sl = ocean.required_source_level_db(650.0, d, kill_spl);
    char dist[32];
    if (d >= 1000.0) {
      std::snprintf(dist, sizeof(dist), "%.0f km", d / 1000.0);
    } else {
      std::snprintf(dist, sizeof(dist), "%.2f m", d);
    }
    sl_table.row()
        .cell(dist)
        .cell(sl, 1)
        .cell(sl <= 180.0 ? "yes" : "no")
        .cell(sl <= 220.0 ? "yes" : "no");
  }
  std::cout << sl_table << "\n";
  std::printf(
      "Findings (cf. paper Section 5):\n"
      " * At 650 Hz the absorption differences between environments are\n"
      "   irrelevant at attack-scale ranges (<0.1 dB even over 1 km) — the\n"
      "   range budget is spreading-dominated, so raising the source level\n"
      "   is the attacker's lever, exactly as Section 4.2 argues.\n"
      " * Water conditions shift the sound speed by ~6%% (timing, not\n"
      "   amplitude) and only shape the range budget at tens of km.\n"
      " * A sonar-class projector extends the kill radius from centimetres\n"
      "   to tens of metres, covering a whole data-center pod.\n");
  return 0;
}
