// Reproduces Figure 2: HDD sequential write (2a) and read (2b)
// throughput during the acoustic attack at different frequencies, in all
// three scenarios (140 dB SPL at 1 cm).
#include <iostream>
#include <vector>

#include "core/report.h"
#include "core/sweep.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  core::SweepConfig config;
  config.attack.spl_air_db = 140.0;
  config.attack.distance_m = 0.01;
  config.ramp = sim::Duration::from_seconds(2.0);
  config.duration = sim::Duration::from_seconds(10.0);
  // The paper plots 100 Hz .. 8 kHz; denser below 2 kHz where the action
  // is, mirroring the 50 Hz narrowing of Section 4.1.
  for (double f = 100.0; f <= 2000.0; f += 100.0) {
    config.frequencies_hz.push_back(f);
  }
  for (double f = 2250.0; f <= 8000.0; f += 250.0) {
    config.frequencies_hz.push_back(f);
  }

  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  std::vector<std::pair<std::string, std::vector<core::SweepPoint>>> series;
  for (auto id : {core::ScenarioId::kPlasticFloor,
                  core::ScenarioId::kPlasticTower,
                  core::ScenarioId::kMetalTower}) {
    core::FrequencySweep sweep(id);
    series.emplace_back(core::scenario_name(id), sweep.run(config));
  }

  core::print_table(core::format_figure2(series, /*write_side=*/true),
                    argc, argv);
  core::print_table(core::format_figure2(series, /*write_side=*/false),
                    argc, argv);
  std::cout <<
      "Paper reference (Fig. 2): write throughput collapses to ~0 between\n"
      "~300 Hz and 1.3-1.7 kHz depending on scenario; reads collapse over\n"
      "a narrower band (300-800 Hz in Scenario 3); no effect above ~2 kHz\n"
      "or below ~300 Hz; writes are hit harder than reads throughout.\n";
  return 0;
}
