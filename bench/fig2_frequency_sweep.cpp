// Reproduces Figure 2: HDD sequential write (2a) and read (2b)
// throughput during the acoustic attack at different frequencies, in all
// three scenarios (140 dB SPL at 1 cm).
//
// Grid, configs, and execution live in core/paper_tables.h so the
// golden-table regression suite exercises the identical pipeline.
#include <iostream>

#include "core/paper_tables.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  const core::SweepConfig config = core::figure2_config();
  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  const core::Figure2Series series = core::run_figure2(config);

  core::print_table(core::format_figure2(series, /*write_side=*/true),
                    argc, argv);
  core::print_table(core::format_figure2(series, /*write_side=*/false),
                    argc, argv);
  std::cout <<
      "Paper reference (Fig. 2): write throughput collapses to ~0 between\n"
      "~300 Hz and 1.3-1.7 kHz depending on scenario; reads collapse over\n"
      "a narrower band (300-800 Hz in Scenario 3); no effect above ~2 kHz\n"
      "or below ~300 Hz; writes are hit harder than reads throughout.\n";
  return 0;
}
