// Reproduces Table 2: throughput and I/O rate of the RocksDB-like store
// under readwhilewriting when the attack occurs at varied distances
// (650 Hz, 140 dB SPL, Scenario 2).
//
// Configs and execution live in core/paper_tables.h so the golden-table
// regression suite exercises the identical pipeline.
#include <iostream>

#include "core/paper_tables.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  const core::RangeTestConfig config = core::table2_config();
  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  core::print_table(
      core::build_table2(config, core::table2_bench_config(),
                         core::table2_db_config()),
      argc, argv);
  std::cout << "Paper reference (Table 2): No Attack 8.7 MB/s & 1.1; "
               "1-10 cm: 0 & 0; 15 cm: 3.7 & 0.9; 20-25 cm: 8.6 & 1.1.\n";
  return 0;
}
