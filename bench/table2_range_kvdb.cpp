// Reproduces Table 2: throughput and I/O rate of the RocksDB-like store
// under readwhilewriting when the attack occurs at varied distances
// (650 Hz, 140 dB SPL, Scenario 2).
#include <iostream>

#include "core/range_test.h"
#include "core/report.h"
#include "sim/task_pool.h"

using namespace deepnote;

int main(int argc, char** argv) {
  core::RangeTest range(core::ScenarioId::kPlasticTower);
  core::RangeTestConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.duration = sim::Duration::from_seconds(30.0);

  workload::DbBenchConfig bench;
  bench.key_bytes = 16;
  bench.value_bytes = 64;
  bench.reader_actors = 1;
  // CALIBRATED with the db op costs so the no-attack row reports the
  // paper's 8.7 MB/s and ~1.1e5 ops/s.
  bench.writer_think = sim::Duration::from_micros(9);
  bench.ramp = sim::Duration::from_seconds(10.0);
  bench.preload_keys = 100000;

  storage::kvdb::DbConfig db;
  db.write_buffer_bytes = 48ull << 20;
  db.put_cpu = sim::Duration::from_micros(13);
  db.get_cpu = sim::Duration::from_micros(13);

  std::cerr << "[trial engine: " << sim::resolve_jobs(config.jobs)
            << " jobs; set DEEPNOTE_JOBS to override]\n";
  const auto rows = range.run_kvdb(config, bench, db);
  core::print_table(core::format_table2(rows), argc, argv);
  std::cout << "Paper reference (Table 2): No Attack 8.7 MB/s & 1.1; "
               "1-10 cm: 0 & 0; 15 cm: 3.7 & 0.9; 20-25 cm: 8.6 & 1.1.\n";
  return 0;
}
