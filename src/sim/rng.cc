#include "sim/rng.h"

#include <cassert>
#include <cmath>

namespace deepnote::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t Rng::splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Seed the xoshiro state from splitmix64 as recommended by the authors;
  // guarantees a non-zero state for any seed.
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * m;
  has_cached_gaussian_ = true;
  return u * m;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace deepnote::sim
