// Deterministic parallel trial execution.
//
// run_trials fans `count` independent trial closures across a TaskPool
// and returns their results in submission order. Each trial derives its
// own RNG seed with trial_seed(base_seed, index) — a splitmix64 stream
// over the (base, index) pair — so a trial's result depends only on its
// index and the base seed, never on which thread ran it or in what
// order: jobs=1 and jobs=N output is bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/task_pool.h"

namespace deepnote::sim {

/// Statistically independent, platform-stable seed for trial `index` of
/// an experiment seeded with `base_seed` (splitmix64 output at stream
/// position index+1 from `base_seed`). Adjacent indices and adjacent
/// base seeds both decorrelate fully.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index);

/// Run trial(0) .. trial(count-1) on the pool; results in submission
/// order. `Result` must be default-constructible; trials must not share
/// mutable state (each builds its own Testbed/Rng from its seed).
template <typename Result, typename Fn>
std::vector<Result> run_trials(TaskPool& pool, std::size_t count,
                               Fn&& trial) {
  std::vector<Result> results(count);
  pool.run_indexed(count,
                   [&](std::size_t i) { results[i] = trial(i); });
  return results;
}

/// One-shot convenience: build a pool (`jobs` = 0 resolves via
/// $DEEPNOTE_JOBS / all cores), fan the trials, return ordered results.
template <typename Result, typename Fn>
std::vector<Result> run_trials(std::size_t count, unsigned jobs,
                               Fn&& trial) {
  TaskPool pool(jobs);
  return run_trials<Result>(pool, count, std::forward<Fn>(trial));
}

}  // namespace deepnote::sim
