// Priority event queue for the discrete-event kernel.
//
// Events with equal timestamps fire in insertion order (FIFO), which keeps
// runs deterministic regardless of heap internals.
//
// Hot-path design (zero steady-state allocation):
//  * EventFn is a small-buffer-optimized callable: captures up to
//    kInlineBytes live inline in the queue's slab; larger captures fall
//    back to one heap allocation.
//  * Event records live in a slab (std::vector<Slot>) recycled through a
//    free list, so memory is bounded by the high-water mark of pending
//    events rather than growing monotonically over a run.
//  * The ready queue is an index-based 4-ary min-heap keyed by
//    (time, seq); entries carry the key so comparisons never touch the
//    slab, and slots carry their heap position so cancel() is O(log n)
//    with no tombstone set.
//  * EventIds are generation-tagged slot indices: O(1) validation, and
//    stale ids (fired or cancelled, slot since recycled) are rejected
//    without any lookup structure.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace deepnote::sim {

/// Move-only type-erased callable with inline storage for small captures.
/// Replaces std::function on the event hot path: scheduling an event whose
/// capture fits kInlineBytes performs no heap allocation.
class EventFn {
 public:
  /// Captures up to this size (and max_align_t alignment) are stored
  /// inline. 48 bytes covers every daemon/timeout closure in the tree.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// Construct a callable directly in this object's storage, replacing
  /// any current one — lets the queue build the capture in its slab slot
  /// with no temporary EventFn and no relocate.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const EventFn& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }

  /// True when the capture spilled to the heap (introspection for tests
  /// and benches).
  bool heap_allocated() const noexcept { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move the callable from `src` storage into `dst` storage and
    /// destroy the source representation. Null means the representation
    /// is trivially relocatable: a memcpy of the inline buffer suffices
    /// (true for trivially-copyable captures and for the heap pointer),
    /// skipping an indirect call on the schedule/pop hot path.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null means trivially destructible: reset() skips the call.
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<D*>(s))(); },
      // Trivially-copyable captures (the common daemon closure: a couple
      // of pointers and ints) relocate by buffer memcpy instead.
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              D* f = static_cast<D*>(src);
              ::new (dst) D(std::move(*f));
              f->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) noexcept { static_cast<D*>(s)->~D(); },
      /*heap=*/false,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<D**>(s))(); },
      // The representation is just a pointer: buffer memcpy relocates it.
      nullptr,
      [](void* s) noexcept { delete *static_cast<D**>(s); },
      /*heap=*/true,
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Generation-tagged slot index: low 32 bits slot, high 32 bits the
/// slot's generation at scheduling time. Opaque to callers.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule fn at absolute time t. Returns an id usable with cancel().
  EventId schedule(SimTime t, EventFn fn);

  /// Hot-path overload for callables: the capture is constructed directly
  /// in the slab slot, skipping the temporary EventFn and its relocate.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventId schedule(SimTime t, F&& f) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].fn.emplace(std::forward<F>(f));
    return push_entry(t, slot);
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. O(log n); the slot is recycled immediately.
  bool cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; infinity when empty.
  SimTime next_time() const {
    return heap_.empty() ? SimTime::infinity() : SimTime(heap_.front().time_ns);
  }

  /// Pop and return the earliest live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

  /// Slab high-water mark (slots ever allocated). Bounded by the maximum
  /// number of *concurrently pending* events, not the events scheduled
  /// over the queue's lifetime — exposed so tests can pin that down.
  std::size_t slab_slots() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint32_t generation = 0;
    EventFn fn;
  };
  /// Slot index bits inside a HeapEntry key (the rest hold the sequence
  /// number). 24 bits bound *concurrently pending* events at 16M; 40 seq
  /// bits bound lifetime scheduled events at ~10^12 — both far above any
  /// run this simulator produces, and asserted in debug builds.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

  /// Heap entries carry the full ordering key in 16 bytes so comparisons
  /// and sift moves never touch the slab. `key` is (seq << 24) | slot:
  /// seqs are unique, so comparing keys is exactly the FIFO tiebreak.
  struct HeapEntry {
    std::int64_t time_ns;
    std::uint64_t key;
    std::uint32_t slot() const { return static_cast<std::uint32_t>(key & kSlotMask); }
  };

  static constexpr std::uint32_t kNotQueued = 0xffffffffu;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
    return a.key < b.key;
  }

  void place(std::uint32_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    heap_pos_[e.slot()] = pos;
  }
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  /// Push `slot` (whose fn is already in place) onto the heap at time t.
  EventId push_entry(SimTime t, std::uint32_t slot);
  /// Remove the heap entry at `pos` (swap-with-last + sift).
  void heap_erase(std::uint32_t pos);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  std::vector<Slot> slots_;
  // Heap position per slot (kNotQueued when idle), kept outside Slot so
  // the back-pointer writes during sifts touch a dense uint32 array
  // instead of 64-byte-stride slab entries.
  std::vector<std::uint32_t> heap_pos_;
  std::vector<HeapEntry> heap_;       // 4-ary min-heap
  std::vector<std::uint32_t> free_;   // recycled slot indices
  std::uint64_t next_seq_ = 0;
};

}  // namespace deepnote::sim
