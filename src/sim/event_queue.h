// Priority event queue for the discrete-event kernel.
//
// Events with equal timestamps fire in insertion order (FIFO), which keeps
// runs deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace deepnote::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule fn at absolute time t. Returns an id usable with cancel().
  EventId schedule(SimTime t, EventFn fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. The heap entry is tombstoned and skipped on pop.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; infinity when empty.
  SimTime next_time();

  /// Pop and return the earliest live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order tiebreak
    EventId id;
    // std::priority_queue is a max-heap; invert so earliest pops first.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled_top();

  std::priority_queue<Entry> heap_;
  std::vector<EventFn> fns_;  // indexed by id; moved-from once fired
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace deepnote::sim
