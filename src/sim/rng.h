// Deterministic random number generation for simulations.
//
// xoshiro256++ core with convenience distributions. Every experiment takes
// an explicit seed; two runs with the same seed produce identical event
// sequences on every platform (no libstdc++ distribution dependence).
#pragma once

#include <array>
#include <cstdint>

namespace deepnote::sim {

/// xoshiro256++ PRNG (Blackman & Vigna). Not cryptographic; fast, high
/// quality, and stable across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double gaussian();

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child generator (for per-actor streams).
  Rng fork();

 private:
  static std::uint64_t splitmix64(std::uint64_t& x);

  std::array<std::uint64_t, 4> s_{};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace deepnote::sim
