// Discrete-event simulation kernel.
//
// A Simulator owns the clock and the event queue. Components schedule
// callbacks at absolute or relative simulated times; run() dispatches
// them in timestamp order (FIFO among equal timestamps).
//
// Storage-stack code in this project is largely written in a synchronous
// "virtual time" style (operations compute their own completion time), so
// the kernel is deliberately small: it exists for periodic daemons
// (journal commit timers, writeback), timeouts, and the multi-actor
// workload scheduler in workload/.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace deepnote::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedule at an absolute time (must not be in the past).
  EventId at(SimTime t, EventFn fn);

  /// Schedule after a relative delay.
  EventId after(Duration d, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run until simulated time t (inclusive of events at exactly t).
  /// The clock is advanced to t even if the queue drains earlier.
  std::uint64_t run_until(SimTime t);

  /// Fire exactly one event if any is pending before `limit`.
  /// Returns true if an event fired.
  bool step(SimTime limit = SimTime::infinity());

  /// Advance the clock directly; only valid when no earlier event is
  /// pending. Used by synchronous (virtual-time) code paths.
  void advance_to(SimTime t);

  bool idle() { return queue_.empty(); }
  SimTime next_event_time() { return queue_.next_time(); }

 private:
  SimTime now_ = SimTime::zero();
  EventQueue queue_;
};

}  // namespace deepnote::sim
