#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace deepnote::sim {

TimerWheel::TimerWheel(Duration tick, SimTime origin) {
  if (tick.ns() <= 0) {
    throw std::invalid_argument("timer wheel: tick must be positive");
  }
  tick_shift_ = 64 - std::countl_zero(
                         static_cast<std::uint64_t>(tick.ns()) - 1);
  if (tick_shift_ < 1) tick_shift_ = 1;
  // reset() takes the O(1) fast path on an empty wheel, so the bucket
  // arrays must be initialized here, not there.
  for (std::uint32_t& head : heads_) head = kNil;
  for (std::uint64_t& occ : occupancy_) occ = 0;
  reset(origin);
}

void TimerWheel::reset(SimTime origin) {
  origin_ns_ = origin.ns();
  now_ns_ = origin.ns();
  cur_tick_ = 0;
  next_seq_ = 0;
  scratch_.clear();
  if (pending_ == 0) {
    // Every bucket is already empty and every slab node already on the
    // free list: rewind the clock and stop. This keeps resetting a
    // fleet of thousands of (mostly idle) wheels O(1) each instead of
    // O(buckets) — the common case for an engine warm replay.
    return;
  }
  pending_ = 0;
  for (std::uint32_t& head : heads_) head = kNil;
  for (std::uint64_t& occ : occupancy_) occ = 0;
  free_head_ = kNil;
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    nodes_[id].bucket = kFreeBucket;
    nodes_[id].next = free_head_;
    free_head_ = id;
  }
}

void TimerWheel::reserve(std::size_t slots) {
  nodes_.reserve(slots);
  scratch_.reserve(slots);
  while (nodes_.size() < slots) {
    Node node;
    node.bucket = kFreeBucket;
    node.next = free_head_;
    nodes_.push_back(node);
    free_head_ = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
}

std::uint32_t TimerWheel::acquire_node() {
  if (free_head_ == kNil) {
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  const std::uint32_t id = free_head_;
  free_head_ = nodes_[id].next;
  return id;
}

void TimerWheel::release_node(std::uint32_t id) {
  nodes_[id].bucket = kFreeBucket;
  nodes_[id].next = free_head_;
  free_head_ = id;
}

void TimerWheel::link(std::uint32_t bucket, std::uint32_t id) {
  Node& node = nodes_[id];
  node.bucket = bucket;
  node.prev = kNil;
  node.next = heads_[bucket];
  if (node.next != kNil) nodes_[node.next].prev = id;
  heads_[bucket] = id;
  if (bucket < kOverdueBucket) {
    occupancy_[bucket >> kLevelBits] |= std::uint64_t{1}
                                        << (bucket & (kSlots - 1));
  }
}

void TimerWheel::unlink(std::uint32_t id) {
  Node& node = nodes_[id];
  assert(node.bucket != kFreeBucket && "timer already fired or cancelled");
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    heads_[node.bucket] = node.next;
  }
  if (node.next != kNil) nodes_[node.next].prev = node.prev;
  if (node.bucket < kOverdueBucket && heads_[node.bucket] == kNil) {
    occupancy_[node.bucket >> kLevelBits] &=
        ~(std::uint64_t{1} << (node.bucket & (kSlots - 1)));
  }
  node.bucket = kFreeBucket;
}

void TimerWheel::place(std::uint32_t id, std::int64_t tick) {
  assert(tick >= cur_tick_);
  // Level = highest differing bit between the tick and the cursor, so
  // the slot always lands in the cursor's aligned window at that level,
  // strictly after the per-level cursor — buckets never wrap, and
  // next_pending_tick's >=cursor masks see every pending timer.
  int level = 0;
  if (tick != cur_tick_) {
    const int bit = 63 - std::countl_zero(
                             static_cast<std::uint64_t>(tick ^ cur_tick_));
    level = bit / kLevelBits;
    if (level >= kLevels) {
      throw std::invalid_argument("timer wheel: deadline beyond horizon");
    }
  }
  const int slot =
      static_cast<int>((tick >> (kLevelBits * level)) & (kSlots - 1));
  link(static_cast<std::uint32_t>(level * kSlots + slot), id);
}

TimerWheel::TimerId TimerWheel::schedule(SimTime deadline,
                                         std::uint64_t payload) {
  if (deadline.ns() > now_ns_) {
    const std::int64_t tick = tick_of(deadline.ns());
    if ((tick ^ cur_tick_) >> (kLevelBits * kLevels) != 0) {
      throw std::invalid_argument("timer wheel: deadline beyond horizon");
    }
  }
  const std::uint32_t id = acquire_node();
  Node& node = nodes_[id];
  node.deadline_ns = deadline.ns();
  node.seq = next_seq_++;
  node.payload = payload;
  if (deadline.ns() <= now_ns_) {
    // Already due: fires (at its own past deadline) on the next advance.
    link(kOverdueBucket, id);
  } else {
    place(id, tick_of(deadline.ns()));
  }
  ++pending_;
  return id;
}

void TimerWheel::cancel(TimerId id) {
  unlink(id);
  release_node(id);
  --pending_;
}

std::int64_t TimerWheel::next_pending_tick() const {
  {
    const int c = static_cast<int>(cur_tick_ & (kSlots - 1));
    const std::uint64_t m = occupancy_[0] & (~std::uint64_t{0} << c);
    if (m != 0) return (cur_tick_ & ~std::int64_t{kSlots - 1}) +
                       std::countr_zero(m);
  }
  for (int level = 1; level < kLevels; ++level) {
    const std::int64_t index = cur_tick_ >> (kLevelBits * level);
    const int c = static_cast<int>(index & (kSlots - 1));
    const std::uint64_t m = occupancy_[level] & (~std::uint64_t{0} << c);
    if (m != 0) {
      const std::int64_t base = index & ~std::int64_t{kSlots - 1};
      return (base + std::countr_zero(m)) << (kLevelBits * level);
    }
  }
  return -1;
}

void TimerWheel::jump_to(std::int64_t tick) {
  const std::int64_t old = cur_tick_;
  cur_tick_ = tick;
  // Highest level whose window index moved; every level at or below it
  // moved too, so cascade each new per-level cursor bucket top-down.
  int top = 0;
  for (int level = kLevels - 1; level >= 1; --level) {
    if ((old >> (kLevelBits * level)) != (tick >> (kLevelBits * level))) {
      top = level;
      break;
    }
  }
  for (int level = top; level >= 1; --level) {
    const int slot =
        static_cast<int>((tick >> (kLevelBits * level)) & (kSlots - 1));
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(level * kSlots + slot);
    std::uint32_t id = heads_[bucket];
    heads_[bucket] = kNil;
    occupancy_[level] &= ~(std::uint64_t{1} << slot);
    while (id != kNil) {
      const std::uint32_t next = nodes_[id].next;
      // Every tick in a cascaded cursor bucket is >= the new cursor and
      // within the bucket's span, so place() strictly descends levels.
      place(id, tick_of(nodes_[id].deadline_ns));
      id = next;
    }
  }
}

void TimerWheel::advance(SimTime t, std::vector<Expired>& out) {
  std::int64_t t_ns = t.ns();
  if (t_ns < now_ns_) t_ns = now_ns_;  // monotone clock; past is a no-op
  const std::int64_t target_tick = tick_of(t_ns);
  scratch_.clear();
  // Overdue timers were scheduled at deadline <= now <= t: all fire.
  while (heads_[kOverdueBucket] != kNil) {
    const std::uint32_t id = heads_[kOverdueBucket];
    unlink(id);
    scratch_.push_back(id);
  }
  for (;;) {
    const std::int64_t nt = next_pending_tick();
    if (nt < 0 || nt > target_tick) break;
    if (nt > cur_tick_) jump_to(nt);
    // Walk the level-0 cursor bucket. It is the only bucket that can mix
    // due and not-yet-due timers (when it is the target tick itself).
    const std::uint32_t bucket = static_cast<std::uint32_t>(
        cur_tick_ & (kSlots - 1));
    std::uint32_t id = heads_[bucket];
    bool kept = false;
    while (id != kNil) {
      const std::uint32_t next = nodes_[id].next;
      if (nodes_[id].deadline_ns <= t_ns) {
        unlink(id);
        scratch_.push_back(id);
      } else {
        kept = true;
      }
      id = next;
    }
    // Anything kept sits at the target tick with a deadline beyond t;
    // every other pending timer is at a later tick.
    if (kept) break;
  }
  if (cur_tick_ < target_tick) jump_to(target_tick);
  now_ns_ = t_ns;
  std::sort(scratch_.begin(), scratch_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (nodes_[a].deadline_ns != nodes_[b].deadline_ns) {
                return nodes_[a].deadline_ns < nodes_[b].deadline_ns;
              }
              return nodes_[a].seq < nodes_[b].seq;
            });
  for (const std::uint32_t id : scratch_) {
    out.push_back(Expired{SimTime{nodes_[id].deadline_ns},
                          nodes_[id].payload});
    release_node(id);
    --pending_;
  }
  scratch_.clear();
}

}  // namespace deepnote::sim
