#include "sim/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace deepnote::sim {

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_title(std::string title) {
  title_ = std::move(title);
  return *this;
}

Table& Table::set_columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string{value}); }

Table& Table::cell(double value, int decimals) {
  return cell(format_fixed(value, decimals));
}

Table& Table::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

Table& Table::dash() { return cell(std::string{"-"}); }

Table& Table::cell_or_dash(std::optional<double> value, int decimals) {
  if (value.has_value()) return cell(*value, decimals);
  return dash();
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  if (row >= rows_.size() || col >= rows_[row].size()) {
    throw std::out_of_range("Table::at");
  }
  return rows_[row][col];
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  return widths;
}

std::string Table::to_text() const {
  const auto widths = column_widths();
  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "  " << v << std::string(widths[c] - v.size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << " " << (c < cells.size() ? cells[c] : std::string{}) << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << escape(cells[c]);
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

}  // namespace deepnote::sim
