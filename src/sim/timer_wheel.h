// Hierarchical timer wheel over virtual time.
//
// The serving data plane retires thousands of per-request deadlines and
// backoff retries per epoch. A comparison heap pays O(log n) per
// schedule/fire and — worse for the hot path — a cache miss per level of
// the sift; the wheel pays O(1) per schedule/cancel and amortized O(1)
// per fired timer: a timer is dropped into the bucket covering its
// deadline (6 levels x 64 slots, power-of-two tick), and advance() walks
// only occupied buckets using per-level occupancy bitmasks, cascading a
// coarse bucket into finer ones when the cursor enters its window.
//
// Semantics:
//  * Time is monotone. advance(t) expires every pending timer with
//    deadline <= t, in exact (deadline, schedule order). Calling
//    advance with t in the past is a no-op advance to `now` (overdue
//    timers still fire — see below).
//  * schedule() with deadline <= now parks the timer on an overdue list
//    fired by the next advance() call, stamped with its own (past)
//    deadline. This is what a bounded-FIFO server needs when a batch
//    boundary replays arrivals from before the wheel's frontier.
//  * cancel() is O(1) and only valid for a timer that has not fired.
//  * Buckets, the node slab and the expiry scratch are all recycled: a
//    warm wheel performs zero heap allocations (enforced by
//    tests/sim/timer_wheel_test).
//
// The horizon is tick * 64^6 (with the default 64 us tick, ~52 days of
// sim time); scheduling past it throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace deepnote::sim {

class TimerWheel {
 public:
  using TimerId = std::uint32_t;
  static constexpr TimerId kInvalidTimer = 0xffffffffu;

  struct Expired {
    SimTime deadline;
    std::uint64_t payload = 0;
  };

  /// `tick` is rounded up to a power-of-two number of nanoseconds (so
  /// bucket math is a shift); the default 64 us tick becomes 65.536 us.
  explicit TimerWheel(Duration tick = Duration::from_micros(64),
                      SimTime origin = SimTime::zero());

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  /// Movable so owners (per-node servers) can live in plain vectors.
  TimerWheel(TimerWheel&&) = default;

  /// Drop every pending timer and rewind the clock to `origin`. The
  /// node slab is retained so the next run stays allocation-free; an
  /// already-empty wheel resets in O(1).
  void reset(SimTime origin = SimTime::zero());

  /// Pre-grow the node slab to at least `slots` so the first `slots`
  /// concurrent timers never allocate (cold-start hygiene for fleets
  /// of per-node wheels whose first run is timed).
  void reserve(std::size_t slots);

  /// Arm a timer. `payload` comes back verbatim in the Expired record.
  TimerId schedule(SimTime deadline, std::uint64_t payload);

  /// Disarm a pending timer. Must not be called for a timer that has
  /// already fired or been cancelled.
  void cancel(TimerId id);

  /// Advance to `t` (clamped to now if earlier), appending one Expired
  /// per fired timer to `out` in (deadline, schedule order). `out` is
  /// not cleared.
  void advance(SimTime t, std::vector<Expired>& out);

  SimTime now() const { return SimTime{now_ns_}; }
  std::size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }
  /// Slab high-water mark, for allocation tests.
  std::size_t slab_slots() const { return nodes_.size(); }
  std::int64_t tick_nanos() const { return std::int64_t{1} << tick_shift_; }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 6;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  // Bucket ids: level * kSlots + slot, then one overdue list; kFreeBucket
  // marks a slab node on the free list (debug guard for double-cancel).
  static constexpr std::uint32_t kOverdueBucket = kLevels * kSlots;
  static constexpr std::uint32_t kNumBuckets = kOverdueBucket + 1;
  static constexpr std::uint32_t kFreeBucket = kNumBuckets;

  struct Node {
    std::int64_t deadline_ns = 0;
    std::uint64_t seq = 0;
    std::uint64_t payload = 0;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t bucket = kFreeBucket;
  };

  std::int64_t tick_of(std::int64_t ns) const {
    return (ns - origin_ns_) >> tick_shift_;
  }
  std::uint32_t acquire_node();
  void release_node(std::uint32_t id);
  void link(std::uint32_t bucket, std::uint32_t id);
  void unlink(std::uint32_t id);
  /// Drop a node into the bucket for absolute tick `tick` (>= cur_tick_).
  void place(std::uint32_t id, std::int64_t tick);
  /// Move the cursor to `tick`, cascading the coarse bucket at each new
  /// per-level cursor into finer levels. No pending timer may live at a
  /// tick below `tick` except inside those cascaded buckets.
  void jump_to(std::int64_t tick);
  /// Earliest tick that may hold a pending timer (bucket start for
  /// levels >= 1, so a lower bound), or -1 when all buckets are empty.
  std::int64_t next_pending_tick() const;

  int tick_shift_ = 16;
  std::int64_t origin_ns_ = 0;
  std::int64_t now_ns_ = 0;
  std::int64_t cur_tick_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;

  std::uint32_t heads_[kNumBuckets];
  std::uint64_t occupancy_[kLevels];
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint32_t> scratch_;  ///< expiring ids, pre-sort
};

}  // namespace deepnote::sim
