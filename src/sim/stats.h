// Streaming statistics used by the workload runners and experiment harness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.h"

namespace deepnote::sim {

/// Welford online mean / variance / min / max accumulator.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-bucketed latency histogram (HdrHistogram-style, base-10 sub-bucketed).
/// Records values in nanoseconds; quantiles are approximate to bucket width
/// (< 2% relative error with 90 buckets/decade).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void add(Duration d) { add_ns(d.ns()); }
  void add_ns(std::int64_t ns) {
    // Exact-match memo of the last bucket lookup: latency samples repeat
    // heavily (identical device service times, zero queue waits), and a
    // repeat skips the log10 in bucket_for while landing in the same
    // bucket by construction.
    if (ns != memo_ns_) {
      memo_ns_ = ns;
      memo_bucket_ = bucket_for(ns);
    }
    ++buckets_[static_cast<std::size_t>(memo_bucket_)];
    ++total_;
    max_ns_ = std::max(max_ns_, ns);
    sum_ns_ += static_cast<double>(ns);
  }
  void merge(const LatencyHistogram& other);
  void reset();

  std::size_t count() const { return total_; }
  /// q in [0,1]; returns the approximate q-quantile. Zero when empty.
  Duration quantile(double q) const;
  Duration p50() const { return quantile(0.50); }
  Duration p99() const { return quantile(0.99); }
  Duration max_value() const { return Duration{max_ns_}; }
  Duration mean() const;

 private:
  static constexpr int kDecades = 12;            // 1 ns .. ~1000 s
  static constexpr int kBucketsPerDecade = 90;   // ~2.6% bucket width
  static constexpr int kNumBuckets = kDecades * kBucketsPerDecade;

  static int bucket_for(std::int64_t ns);
  static std::int64_t bucket_mid_ns(int bucket);

  std::vector<std::uint64_t> buckets_;
  std::size_t total_ = 0;
  std::int64_t max_ns_ = 0;
  double sum_ns_ = 0.0;
  // bucket_for(-1) clamps to bucket 0, so this seed pair is consistent.
  std::int64_t memo_ns_ = -1;
  int memo_bucket_ = 0;
};

/// Throughput accounting over an interval of simulated time.
class RateMeter {
 public:
  void start(SimTime t) { start_ = t; }
  void stop(SimTime t) { stop_ = t; }
  void add_bytes(std::uint64_t b) { bytes_ += b; }
  void add_ops(std::uint64_t n = 1) { ops_ += n; }
  void reset();

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t ops() const { return ops_; }
  Duration elapsed() const { return stop_ - start_; }

  /// MB/s with MB = 1e6 bytes (matches FIO's default reporting).
  double throughput_mbps() const;
  double ops_per_second() const;

 private:
  SimTime start_;
  SimTime stop_;
  std::uint64_t bytes_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace deepnote::sim
