#include "sim/task_pool.h"

#include <cstdlib>

namespace deepnote::sim {

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DEEPNOTE_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

TaskPool::TaskPool(unsigned jobs) : jobs_(resolve_jobs(jobs)) {
  if (jobs_ < 2) return;  // serial pool: tasks run on the calling thread
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(std::size_t)>* fn = fn_;
    const std::size_t count = count_;
    lock.unlock();
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        if (!error_ || i < error_index_) {
          error_ = std::current_exception();
          error_index_ = i;
        }
      }
    }
    lock.lock();
    // Every worker checks out of the batch before run_indexed returns, so
    // the next batch can never race a straggler from this one.
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void TaskPool::run_indexed(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  error_ = nullptr;
  error_index_ = 0;
  active_workers_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void TaskPool::run(const std::vector<std::function<void()>>& tasks) {
  run_indexed(tasks.size(), [&](std::size_t i) { tasks[i](); });
}

}  // namespace deepnote::sim
