#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace deepnote::sim {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::bucket_for(std::int64_t ns) {
  if (ns < 1) ns = 1;
  const double lg = std::log10(static_cast<double>(ns));
  int b = static_cast<int>(lg * kBucketsPerDecade);
  return std::clamp(b, 0, kNumBuckets - 1);
}

std::int64_t LatencyHistogram::bucket_mid_ns(int bucket) {
  const double lg = (static_cast<double>(bucket) + 0.5) /
                    static_cast<double>(kBucketsPerDecade);
  return static_cast<std::int64_t>(std::pow(10.0, lg));
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
  sum_ns_ += other.sum_ns_;
}

void LatencyHistogram::reset() {
  // In place (not `*this = {}`): reset runs on warmed hot-path state and
  // must not reallocate the bucket vector.
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  max_ns_ = 0;
  sum_ns_ = 0.0;
}

Duration LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return Duration::zero();
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen > target) return Duration{bucket_mid_ns(b)};
  }
  return Duration{max_ns_};
}

Duration LatencyHistogram::mean() const {
  if (total_ == 0) return Duration::zero();
  return Duration{
      static_cast<std::int64_t>(sum_ns_ / static_cast<double>(total_))};
}

void RateMeter::reset() { *this = RateMeter{}; }

double RateMeter::throughput_mbps() const {
  const double secs = elapsed().seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(bytes_) / 1e6 / secs;
}

double RateMeter::ops_per_second() const {
  const double secs = elapsed().seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(ops_) / secs;
}

}  // namespace deepnote::sim
