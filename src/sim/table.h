// Tabular output for the experiment harness and benches.
//
// Renders the same data as aligned plain text (for terminals), GitHub
// markdown, or CSV. Cells are strings; numeric helpers format consistently
// with the paper's tables (fixed decimals, "-" for no-response).
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace deepnote::sim {

class Table {
 public:
  explicit Table(std::string title = {});

  Table& set_title(std::string title);
  Table& set_columns(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  /// Fixed-decimal numeric cell.
  Table& cell(double value, int decimals = 1);
  Table& cell(std::int64_t value);
  /// "-" cell, used for "no response" entries.
  Table& dash();
  /// Numeric if present, "-" otherwise.
  Table& cell_or_dash(std::optional<double> value, int decimals = 1);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;
  const std::string& title() const { return title_; }

  std::string to_text() const;
  std::string to_markdown() const;
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::size_t> column_widths() const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals ("22.7").
std::string format_fixed(double value, int decimals);

}  // namespace deepnote::sim
