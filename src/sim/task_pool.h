// Fixed-size worker pool for independent simulation trials.
//
// Every experiment driver in core/ executes a grid of independent,
// deterministically-seeded trials (one discrete-event simulation per
// frequency point / distance row / crash victim). The pool fans those
// closures across a fixed set of host threads; determinism is preserved
// by construction because each trial carries its own seed (see
// sim/trial_runner.h) and results are always delivered in submission
// order — which thread ran a trial, and when, never shows in the output.
//
// jobs == 1 runs every task inline on the calling thread (no workers are
// spawned), so a serial run is the exact reference the parallel runs are
// measured against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepnote::sim {

/// Worker count for a config that asks for `jobs = 0` ("auto"):
/// $DEEPNOTE_JOBS when set to a positive integer, otherwise
/// hardware_concurrency() (at least 1). A nonzero `requested` wins.
unsigned resolve_jobs(unsigned requested);

class TaskPool {
 public:
  /// jobs = 0 resolves via resolve_jobs() (env DEEPNOTE_JOBS / all cores).
  explicit TaskPool(unsigned jobs = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Run fn(0) .. fn(count-1) across the pool and block until every index
  /// has completed. Indices are claimed dynamically, so uneven trial
  /// costs balance across workers. If tasks throw, the remaining tasks
  /// still run and the exception with the lowest index is rethrown here.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Convenience: fan a vector of closures (same semantics).
  void run(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();

  unsigned jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current batch, valid while active_workers_ > 0. Workers snapshot
  // fn_/count_ under mu_ when they join a batch; indices are claimed
  // lock-free from next_.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
};

}  // namespace deepnote::sim
