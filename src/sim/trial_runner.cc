#include "sim/trial_runner.h"

namespace deepnote::sim {

std::uint64_t trial_seed(std::uint64_t base_seed,
                         std::uint64_t trial_index) {
  // splitmix64 (Steele, Lea & Flood): jump the stream seeded at
  // `base_seed` directly to position index+1 (the increment is the
  // 64-bit golden ratio), then apply the output finalizer. Position 0 is
  // skipped so trial 0 of base b never equals a raw splitmix64(b) that
  // other seeding paths may already use.
  std::uint64_t x =
      base_seed + (trial_index + 1) * 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace deepnote::sim
