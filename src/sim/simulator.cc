#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace deepnote::sim {

EventId Simulator::at(SimTime t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::at: event scheduled in the past");
  }
  return queue_.schedule(t, std::move(fn));
}

EventId Simulator::after(Duration d, EventFn fn) {
  return at(now_ + d, std::move(fn));
}

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::uint64_t Simulator::run_until(SimTime t) {
  std::uint64_t fired = 0;
  while (step(t)) ++fired;
  if (now_ < t) now_ = t;
  return fired;
}

bool Simulator::step(SimTime limit) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > limit) return false;
  auto fired = queue_.pop();
  assert(fired.time >= now_);
  now_ = fired.time;
  fired.fn();
  return true;
}

void Simulator::advance_to(SimTime t) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::advance_to: time went backwards");
  }
  if (queue_.next_time() < t) {
    throw std::logic_error(
        "Simulator::advance_to: pending event earlier than target time");
  }
  now_ = t;
}

}  // namespace deepnote::sim
