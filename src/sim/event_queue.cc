#include "sim/event_queue.h"

#include <algorithm>

namespace deepnote::sim {

namespace {
constexpr std::uint32_t kArity = 4;
}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  heap_pos_.push_back(kNotQueued);
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  heap_pos_[slot] = kNotQueued;
  ++s.generation;  // invalidate outstanding ids for this slot
  free_.push_back(slot);
}

void EventQueue::sift_up(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void EventQueue::sift_down(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  const auto n = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    const std::uint64_t first = std::uint64_t{pos} * kArity + 1;
    if (first >= n) break;
    const std::uint32_t last =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(first + kArity, n));
    std::uint32_t best = static_cast<std::uint32_t>(first);
    for (std::uint32_t c = best + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

void EventQueue::heap_erase(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    const HeapEntry moved = heap_[last];
    heap_.pop_back();
    place(pos, moved);
    // The moved entry may need to go either way relative to `pos`.
    sift_down(pos);
    if (heap_pos_[moved.slot()] == pos) sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  return push_entry(t, slot);
}

EventId EventQueue::push_entry(SimTime t, std::uint32_t slot) {
  assert(slot <= kSlotMask);
  assert(next_seq_ < (std::uint64_t{1} << (64 - kSlotBits)));
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{t.ns(), (next_seq_++ << kSlotBits) | slot});
  heap_pos_[slot] = pos;
  sift_up(pos);
  return (static_cast<EventId>(slots_[slot].generation) << 32) | slot;
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.generation != generation || heap_pos_[slot] == kNotQueued) return false;
  heap_erase(heap_pos_[slot]);
  release_slot(slot);
  return true;
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty());
  const HeapEntry root = heap_.front();
  const std::uint32_t slot = root.slot();
  Slot& s = slots_[slot];
  Fired fired{SimTime(root.time_ns),
              (static_cast<EventId>(s.generation) << 32) | slot,
              std::move(s.fn)};
  heap_erase(0);
  release_slot(slot);
  return fired;
}

}  // namespace deepnote::sim
