#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace deepnote::sim {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  const EventId id = fns_.size();
  fns_.push_back(std::move(fn));
  heap_.push(Entry{t, next_seq_++, id});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= fns_.size() || !fns_[id]) return false;
  if (!cancelled_.insert(id).second) return false;
  fns_[id] = nullptr;
  --live_;
  return true;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) != 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  if (heap_.empty()) return SimTime::infinity();
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_top();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  --live_;
  Fired fired{e.time, e.id, std::move(fns_[e.id])};
  fns_[e.id] = nullptr;
  return fired;
}

}  // namespace deepnote::sim
