// Simulated-time primitives.
//
// All simulation components agree on a single integral time base
// (nanoseconds since simulation start) so event ordering is exact and
// runs are bit-for-bit reproducible. Physics code uses double seconds;
// conversion helpers live here.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace deepnote::sim {

/// A point in simulated time, in nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  /// A time later than every schedulable event; used for hung I/O.
  static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e6)};
  }
  static constexpr SimTime from_micros(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e3)};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool is_infinite() const { return *this == infinity(); }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  std::int64_t ns_ = 0;
};

/// A span of simulated time. Distinct from SimTime to keep point/span
/// arithmetic honest.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration from_millis(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e6)};
  }
  static constexpr Duration from_micros(double us) {
    return Duration{static_cast<std::int64_t>(us * 1e3)};
  }
  static constexpr Duration from_nanos(std::int64_t ns) { return Duration{ns}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double micros() const { return static_cast<double>(ns_) * 1e-3; }

  friend constexpr bool operator==(Duration, Duration) = default;
  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return Duration{a.ns_ * k};
  }

 private:
  std::int64_t ns_ = 0;
};

constexpr SimTime operator+(SimTime t, Duration d) {
  if (t.is_infinite()) return t;
  return SimTime{t.ns() + d.ns()};
}
constexpr SimTime operator-(SimTime t, Duration d) {
  if (t.is_infinite()) return t;
  return SimTime{t.ns() - d.ns()};
}
constexpr Duration operator-(SimTime a, SimTime b) {
  return Duration{a.ns() - b.ns()};
}

constexpr SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }
constexpr SimTime min(SimTime a, SimTime b) { return a < b ? a : b; }

/// Human-readable rendering ("1.234 s", "56.7 ms", ...), for logs and tables.
std::string to_string(SimTime t);
std::string to_string(Duration d);

}  // namespace deepnote::sim
