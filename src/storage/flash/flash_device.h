// Simulated NAND flash device: erase-block geometry, program/erase
// latency asymmetry, per-block wear counters.
//
// The model enforces the NAND programming discipline the CoW metadata
// layer (commit_log.h) and the FTL (ftl.h) are built around: a page may
// be programmed once after each erase of its block, erases work on whole
// blocks only, and erased bytes read back 0xFF. Violations complete with
// an I/O error and are counted, so a layering bug shows up as a loud
// test failure instead of silently corrupting state.
//
// Acoustic interference is an HDD-specific failure mode — there is no
// spinning medium here to disturb — which is exactly why the hybrid
// cluster node (cluster/hybrid.h) uses this device to ride through the
// attacks that park every HDD head in the pod.
//
// Like the HDD model, `retain_data = false` keeps timing, wear and
// discipline state but no payload bytes: the cluster serves
// timing/availability-only traffic from thousands of these.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/block_device.h"

namespace deepnote::storage {

struct FlashConfig {
  std::uint32_t page_sectors = 8;      ///< 4 KiB program unit
  std::uint32_t pages_per_block = 64;  ///< 256 KiB erase block
  std::uint32_t blocks = 256;          ///< 64 MiB device

  /// NAND latency asymmetry: reads are tens of microseconds, programs
  /// hundreds, erases milliseconds — per page / page / block.
  sim::Duration read_latency = sim::Duration::from_micros(60);
  sim::Duration program_latency = sim::Duration::from_micros(350);
  sim::Duration erase_latency = sim::Duration::from_millis(2.0);

  /// Rated program/erase endurance per block (consumer TLC ballpark);
  /// feeds the SMART media-wearout attribute.
  std::uint32_t rated_erase_cycles = 3000;

  /// false: timing/wear/discipline only, no payload bytes (fleet mode).
  bool retain_data = true;
};

struct FlashStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_programs = 0;
  std::uint64_t block_erases = 0;
  /// Programming-discipline violations (re-program without erase,
  /// unaligned erase): layering bugs, not environmental faults.
  std::uint64_t discipline_errors = 0;
};

class FlashDevice final : public BlockDevice {
 public:
  explicit FlashDevice(FlashConfig config = {});

  const FlashConfig& config() const { return config_; }
  std::uint64_t total_sectors() const override {
    return static_cast<std::uint64_t>(config_.blocks) * block_sectors();
  }
  std::uint32_t block_sectors() const {
    return config_.page_sectors * config_.pages_per_block;
  }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  /// Programs are persistent when the command completes (no volatile
  /// write cache in the model), so the barrier is free.
  BlockIo flush(sim::SimTime now) override;
  /// Whole-block erase: `lba` block-aligned, `sector_count` one block.
  BlockIo erase(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count) override;

  const FlashStats& stats() const { return stats_; }
  std::uint32_t erase_count(std::uint32_t block) const {
    return erase_counts_.at(block);
  }
  /// Wear-leveling health: the spread a wear-aware allocator bounds.
  std::uint32_t min_erase_count() const;
  std::uint32_t max_erase_count() const;
  /// Mean completed program/erase cycles across all blocks.
  double mean_erase_count() const;

 private:
  bool page_programmed(std::uint64_t page) const {
    return (programmed_[page >> 6] >> (page & 63)) & 1u;
  }
  void set_page_programmed(std::uint64_t page) {
    programmed_[page >> 6] |= 1ull << (page & 63);
  }

  FlashConfig config_;
  FlashStats stats_;
  std::vector<std::uint64_t> programmed_;  ///< one bit per page
  std::vector<std::uint32_t> erase_counts_;
  /// Payload bytes per block, allocated on first program (retain mode).
  std::vector<std::vector<std::byte>> data_;
};

}  // namespace deepnote::storage
