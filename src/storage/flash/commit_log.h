// littlefs-style copy-on-write metadata commit log over an erase-block
// device.
//
// State is a small set of (id, value) attributes held in a metadata
// *block pair*. Updates append tag+CRC framed commit groups to the
// active block; when the block fills (or an append fails), the full
// state is compacted into the other block under a bumped revision, and
// the pair flips. Mount scans both blocks, replays every commit whose
// CRC chain verifies, and adopts the valid block with the newer
// revision — so a power cut (clean, torn, cache-reordered, or
// mid-erase; see fault_harness.h) at ANY device operation leaves the
// log in the state of some committed prefix: a commit either fully
// applies or fully rolls back. This is the lfs_dir_commit_* shape: tag
// entries, a commit CRC sealing the group, revision-count arbitration
// between the pair.
//
// Wire format inside a block (byte offsets, little-endian):
//   [0..4)  revision u32
//   then commit groups, each starting at a program-page boundary:
//     ([tag u32: type<<24 | id<<16 | len] [payload len bytes])*
//     [tag kCrc, len 4] [crc u32]
//     0xFF padding to the next page boundary
// Each commit's CRC32 covers its own bytes [group start, crc payload)
// seeded by the previous commit's CRC (the first group seeds from the
// CRC of the revision word), chaining groups the way littlefs chains
// ptags: stale or foreign bytes cannot splice into a valid history.
//
// The log pads every commit to whole program pages and never
// re-programs a page between erases, honoring NAND discipline
// (flash_device.h); it calls flush() before acknowledging so the
// volatile-cache fault variant cannot reorder an ack past its bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/block_device.h"

namespace deepnote::storage {

struct CommitLogConfig {
  /// LBAs of the metadata block pair (each one erase block).
  std::uint64_t block_lba[2] = {0, 0};
  std::uint32_t block_sectors = 0;  ///< erase-block size
  std::uint32_t page_sectors = 0;   ///< program unit
};

/// One attribute update in a commit group.
struct SetAttr {
  std::uint8_t id = 0;
  std::span<const std::byte> value;
};

inline constexpr std::uint32_t kMaxAttrLen = 32;

struct CommitLogStats {
  std::uint64_t commits = 0;      ///< acknowledged commit groups
  std::uint64_t compactions = 0;  ///< pair flips (erase + full rewrite)
  std::uint64_t pages_programmed = 0;
};

class CommitLog {
 public:
  /// Does not take ownership. Buffers are sized here; commit() and
  /// mount() allocate nothing.
  CommitLog(BlockDevice& device, CommitLogConfig config);

  /// Fresh log: erase both blocks, seal revision 1 with an empty commit.
  BlockIo format(sim::SimTime now);
  /// Recover from whatever a crash left: scan the pair, replay the valid
  /// chain with the newest revision. Fails only when neither block holds
  /// a single valid commit (never formatted, or format itself was cut).
  BlockIo mount(sim::SimTime now);

  /// Atomically apply `ops`. On error nothing is applied; the next
  /// commit retries through compaction of the surviving state.
  BlockIo commit(sim::SimTime now, std::span<const SetAttr> ops);

  bool mounted() const { return mounted_; }
  std::uint32_t revision() const { return revision_; }
  /// Value bytes for `id`, empty span when unset.
  std::span<const std::byte> get(std::uint8_t id) const;
  const CommitLogStats& stats() const { return stats_; }

 private:
  struct AttrSlot {
    bool present = false;
    std::uint8_t len = 0;
    std::byte value[kMaxAttrLen];
  };
  struct ScanResult {
    bool valid = false;           ///< at least one commit verified
    std::uint32_t revision = 0;
    std::uint32_t next_page = 0;  ///< append cursor after the valid tail
    std::uint32_t chain_crc = 0;  ///< CRC seed for the next commit
    sim::SimTime complete = sim::SimTime::zero();
  };

  std::uint32_t page_bytes() const {
    return config_.page_sectors * kBlockSectorSize;
  }
  std::uint32_t block_bytes() const {
    return config_.block_sectors * kBlockSectorSize;
  }
  std::uint32_t pages_per_block() const {
    return config_.block_sectors / config_.page_sectors;
  }

  /// Serialize a commit group into scratch_ at `byte_offset` (a page
  /// boundary), 0xFF-padded to whole pages; returns pages used, 0 when
  /// the group cannot fit in a block.
  std::uint32_t build_group(std::span<const SetAttr> ops,
                            std::uint32_t seed_crc,
                            std::uint32_t byte_offset,
                            std::uint32_t* group_crc);
  BlockIo program_group(sim::SimTime now, std::uint32_t which,
                        std::uint32_t first_page, std::uint32_t pages);
  BlockIo compact(sim::SimTime now, std::span<const SetAttr> ops);
  /// Validate one block's commit chain; when `state` is non-null the
  /// verified entries are replayed into it (it is reset first).
  ScanResult scan_block(sim::SimTime now, std::uint32_t which,
                        std::vector<AttrSlot>* state);
  static void apply_one(std::vector<AttrSlot>& state, std::uint8_t id,
                        std::span<const std::byte> value);

  BlockDevice& device_;
  CommitLogConfig config_;
  CommitLogStats stats_;

  bool mounted_ = false;
  bool needs_compact_ = false;
  std::uint32_t active_ = 0;  ///< index into config_.block_lba
  std::uint32_t revision_ = 0;
  std::uint32_t cursor_page_ = 0;  ///< next free page in the active block
  std::uint32_t chain_crc_ = 0;
  std::vector<AttrSlot> attrs_;       ///< 256 slots, id-indexed
  std::vector<AttrSlot> scan_state_;  ///< scratch for mount()
  std::vector<std::byte> scratch_;    ///< one block of build/program space
  std::vector<std::byte> read_buf_;   ///< one block of scan space
};

}  // namespace deepnote::storage
