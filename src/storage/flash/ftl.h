// Page-mapped flash translation layer: presents a plain BlockDevice on
// top of the NAND model (flash_device.h), hiding the programming
// discipline from callers the way an SSD controller does.
//
// Writes never re-program in place. Each host page lands on the next
// free page of the open write block; the previous physical page for
// that logical page becomes stale. New write blocks come from the
// wear-aware allocator: the free block with the LOWEST erase count
// (ties to the lowest index), so hot logical pages are spread across
// the whole device and the max-min erase spread stays bounded — the
// property the wear-leveling distribution test pins down. When free
// blocks run low, garbage collection picks the closed block with the
// fewest valid pages, relocates them, and erases it.
//
// The logical space is smaller than the physical space by
// `reserved_blocks` (over-provisioning), which guarantees GC can always
// find a victim with stale pages.
//
// erase() is a TRIM hint: fully-covered logical pages are unmapped (their
// physical pages become stale for GC) with no device command issued.
//
// The mapping tables live in controller RAM (volatile): this layer is
// for wear and timing realism, not crash consistency — durable metadata
// belongs to the commit log (commit_log.h).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/flash/flash_device.h"

namespace deepnote::storage {

struct FtlConfig {
  /// Physical blocks kept out of the logical capacity (over-provision).
  std::uint32_t reserved_blocks = 8;
  /// Run GC when the free-block pool drops below this.
  std::uint32_t gc_free_threshold = 2;
};

struct FtlStats {
  std::uint64_t host_page_reads = 0;
  std::uint64_t host_page_writes = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t relocated_pages = 0;
  std::uint64_t trimmed_pages = 0;
};

class Ftl final : public BlockDevice {
 public:
  /// Does not take ownership of `device`. All tables are sized here;
  /// the I/O paths allocate nothing.
  Ftl(FlashDevice& device, FtlConfig config = {});

  std::uint64_t total_sectors() const override {
    return static_cast<std::uint64_t>(logical_pages_) * page_sectors();
  }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;
  BlockIo erase(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count) override;

  const FtlStats& stats() const { return stats_; }
  const FlashDevice& device() const { return device_; }
  std::uint32_t free_blocks() const { return free_count_; }

 private:
  static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;
  enum class BlockState : std::uint8_t { kFree, kOpen, kClosed };

  std::uint32_t page_sectors() const { return device_.config().page_sectors; }
  std::uint32_t pages_per_block() const {
    return device_.config().pages_per_block;
  }

  /// Lowest-erase-count free block, ties to the lowest index;
  /// kUnmapped when the pool is empty.
  std::uint32_t pick_free_block() const;
  /// Closed block with the fewest valid pages; kUnmapped if none.
  std::uint32_t pick_gc_victim() const;
  /// Ensure the open block has a free page, collecting garbage first
  /// when the pool is low. Returns false only on device error.
  bool ensure_open_block(sim::SimTime& now);
  bool collect_garbage(sim::SimTime& now);
  /// Program `buf` (one full page) as the new home of logical page
  /// `lp`, invalidating its previous physical page if mapped.
  bool place_page(sim::SimTime& now, std::uint32_t lp,
                  std::span<const std::byte> buf);
  void invalidate(std::uint32_t phys);

  FlashDevice& device_;
  FtlConfig config_;
  FtlStats stats_;

  std::uint32_t logical_pages_ = 0;
  bool in_gc_ = false;  ///< relocation must not re-enter GC
  std::uint32_t open_block_ = kUnmapped;
  std::uint32_t open_next_ = 0;  ///< next free page index in open block
  std::uint32_t free_count_ = 0;
  std::vector<std::uint32_t> map_;         ///< logical page -> physical page
  std::vector<std::uint32_t> rmap_;        ///< physical page -> logical page
  std::vector<std::uint16_t> valid_count_; ///< per block
  std::vector<BlockState> state_;          ///< per block
  std::vector<std::byte> page_buf_;        ///< one-page host RMW staging
  /// GC relocation scratch. Separate from page_buf_: ensure_open_block
  /// inside place_page can trigger GC while page_buf_ holds pending
  /// host data, and relocation must not clobber it.
  std::vector<std::byte> gc_buf_;
};

}  // namespace deepnote::storage
