// CrashWorkload for the flash CoW metadata layer (commit_log.h), run
// under the fault harness (fault_harness.h).
//
// The workload formats a commit log on a small-geometry NAND device and
// streams attribute commits at it; the device is faulted with every
// (cut, variant) schedule the harness enumerates — including the
// interrupted-erase variant, which only erase-block media exercise.
// Small geometry (short blocks) forces frequent compactions, so the
// schedules cut inside the erase + rewrite + pair-flip window where CoW
// bugs live.
//
// Post-crash oracle: a fresh mount over the raw flash must recover
// EXACTLY the acknowledged state, or the acknowledged state plus the
// single in-flight commit (atomic: all of its ops or none of them).
#pragma once

#include <cstdint>

#include "storage/fault_harness.h"

namespace deepnote::storage {

struct FlashLogWorkloadOptions {
  std::uint32_t commits = 48;  ///< attribute commits after format
  std::uint32_t attr_ids = 6;  ///< distinct attribute ids in play
  std::uint32_t max_ops_per_commit = 3;
  std::uint64_t workload_seed = 0xf1a5ull;
};

WorkloadFactory flash_commitlog_workload(FlashLogWorkloadOptions options = {});

}  // namespace deepnote::storage
