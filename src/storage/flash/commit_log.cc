#include "storage/flash/commit_log.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace deepnote::storage {
namespace {

// Tag types (top byte of the tag word). 0xFF is reserved: an erased
// page reads back all-0xFF, so a tag starting 0xFF marks the end of the
// programmed region.
constexpr std::uint32_t kTagSet = 0x51;
constexpr std::uint32_t kTagCrc = 0xCC;
constexpr std::uint32_t kErasedWord = 0xFFFFFFFFu;

std::uint32_t crc32(std::uint32_t seed, std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = table[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u32(std::byte* at, std::uint32_t v) {
  at[0] = static_cast<std::byte>(v & 0xFF);
  at[1] = static_cast<std::byte>((v >> 8) & 0xFF);
  at[2] = static_cast<std::byte>((v >> 16) & 0xFF);
  at[3] = static_cast<std::byte>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(const std::byte* at) {
  return std::to_integer<std::uint32_t>(at[0]) |
         std::to_integer<std::uint32_t>(at[1]) << 8 |
         std::to_integer<std::uint32_t>(at[2]) << 16 |
         std::to_integer<std::uint32_t>(at[3]) << 24;
}

std::uint32_t make_tag(std::uint32_t type, std::uint8_t id,
                       std::uint32_t len) {
  return type << 24 | static_cast<std::uint32_t>(id) << 16 | (len & 0xFFFF);
}

}  // namespace

CommitLog::CommitLog(BlockDevice& device, CommitLogConfig config)
    : device_(device), config_(config) {
  if (config_.page_sectors == 0 || config_.block_sectors == 0 ||
      config_.block_sectors % config_.page_sectors != 0 ||
      pages_per_block() < 2) {
    throw std::invalid_argument("commit log: bad block geometry");
  }
  attrs_.resize(256);
  scan_state_.resize(256);
  scratch_.resize(block_bytes());
  read_buf_.resize(block_bytes());
}

std::span<const std::byte> CommitLog::get(std::uint8_t id) const {
  const AttrSlot& slot = attrs_[id];
  if (!slot.present) return {};
  return std::span<const std::byte>(slot.value, slot.len);
}

void CommitLog::apply_one(std::vector<AttrSlot>& state, std::uint8_t id,
                          std::span<const std::byte> value) {
  AttrSlot& slot = state[id];
  if (value.empty()) {  // zero-length set is a delete
    slot.present = false;
    slot.len = 0;
    return;
  }
  slot.present = true;
  slot.len = static_cast<std::uint8_t>(value.size());
  std::memcpy(slot.value, value.data(), value.size());
}

std::uint32_t CommitLog::build_group(std::span<const SetAttr> ops,
                                     std::uint32_t seed_crc,
                                     std::uint32_t byte_offset,
                                     std::uint32_t* group_crc) {
  std::uint32_t pos = byte_offset;
  for (const SetAttr& op : ops) {
    const std::uint32_t len = static_cast<std::uint32_t>(op.value.size());
    if (pos + 4 + len + 8 > block_bytes()) return 0;  // + room for CRC
    put_u32(scratch_.data() + pos, make_tag(kTagSet, op.id, len));
    if (len != 0) {
      std::memcpy(scratch_.data() + pos + 4, op.value.data(), len);
    }
    pos += 4 + len;
  }
  put_u32(scratch_.data() + pos, make_tag(kTagCrc, 0, 4));
  const std::uint32_t crc = crc32(
      seed_crc, std::span<const std::byte>(scratch_.data() + byte_offset,
                                           pos + 4 - byte_offset));
  put_u32(scratch_.data() + pos + 4, crc);
  pos += 8;
  const std::uint32_t end =
      (pos - byte_offset + page_bytes() - 1) / page_bytes() * page_bytes() +
      byte_offset;
  std::fill(scratch_.begin() + pos, scratch_.begin() + end, std::byte{0xFF});
  *group_crc = crc;
  return (end - byte_offset) / page_bytes();
}

BlockIo CommitLog::program_group(sim::SimTime now, std::uint32_t which,
                                 std::uint32_t first_page,
                                 std::uint32_t pages) {
  const BlockIo io = device_.write(
      now,
      config_.block_lba[which] +
          static_cast<std::uint64_t>(first_page) * config_.page_sectors,
      pages * config_.page_sectors,
      std::span<const std::byte>(scratch_.data(),
                                 static_cast<std::size_t>(pages) *
                                     page_bytes()));
  if (io.ok()) stats_.pages_programmed += pages;
  return io;
}

BlockIo CommitLog::commit(sim::SimTime now, std::span<const SetAttr> ops) {
  if (!mounted_) return BlockIo{BlockStatus::kIoError, now};
  for (const SetAttr& op : ops) {
    if (op.value.size() > kMaxAttrLen) {
      return BlockIo{BlockStatus::kIoError, now};
    }
  }
  if (!needs_compact_) {
    std::uint32_t group_crc = 0;
    const std::uint32_t pages = build_group(ops, chain_crc_, 0, &group_crc);
    if (pages != 0 && cursor_page_ + pages <= pages_per_block()) {
      const BlockIo w = program_group(now, active_, cursor_page_, pages);
      if (w.ok()) {
        const BlockIo f = device_.flush(w.complete);
        if (f.ok()) {
          for (const SetAttr& op : ops) apply_one(attrs_, op.id, op.value);
          cursor_page_ += pages;
          chain_crc_ = group_crc;
          ++stats_.commits;
          return f;
        }
        now = f.complete;
      } else {
        now = w.complete;
      }
      // The append may have left partially-programmed pages we are not
      // allowed to touch again; fall through to a pair flip.
    }
    needs_compact_ = true;
  }
  return compact(now, ops);
}

BlockIo CommitLog::compact(sim::SimTime now, std::span<const SetAttr> ops) {
  const std::uint32_t target = 1 - active_;
  // Overlay `ops` on the current state; nothing below mutates attrs_
  // until the new block is durable.
  scan_state_ = attrs_;
  for (const SetAttr& op : ops) apply_one(scan_state_, op.id, op.value);
  std::array<SetAttr, 256> all;
  std::size_t n = 0;
  for (std::uint32_t id = 0; id < 256; ++id) {
    const AttrSlot& slot = scan_state_[id];
    if (!slot.present) continue;
    all[n++] = SetAttr{static_cast<std::uint8_t>(id),
                       std::span<const std::byte>(slot.value, slot.len)};
  }

  const std::uint32_t new_rev = revision_ + 1;
  put_u32(scratch_.data(), new_rev);
  std::fill(scratch_.begin() + 4, scratch_.begin() + page_bytes(),
            std::byte{0xFF});
  const std::uint32_t seed =
      crc32(0, std::span<const std::byte>(scratch_.data(), 4));
  std::uint32_t group_crc = 0;
  const std::uint32_t pages = build_group(
      std::span<const SetAttr>(all.data(), n), seed, page_bytes(),
      &group_crc);
  if (pages == 0 || 1 + pages > pages_per_block()) {
    return BlockIo{BlockStatus::kIoError, now};  // state exceeds a block
  }

  const BlockIo e =
      device_.erase(now, config_.block_lba[target], config_.block_sectors);
  if (!e.ok()) return e;
  const BlockIo w = program_group(e.complete, target, 0, 1 + pages);
  if (!w.ok()) return w;
  const BlockIo f = device_.flush(w.complete);
  if (!f.ok()) return f;

  attrs_ = scan_state_;
  active_ = target;
  revision_ = new_rev;
  cursor_page_ = 1 + pages;
  chain_crc_ = group_crc;
  needs_compact_ = false;
  ++stats_.compactions;
  ++stats_.commits;
  return f;
}

CommitLog::ScanResult CommitLog::scan_block(sim::SimTime now,
                                            std::uint32_t which,
                                            std::vector<AttrSlot>* state) {
  if (state) {
    for (AttrSlot& slot : *state) slot.present = false;
  }
  ScanResult r;
  const BlockIo io =
      device_.read(now, config_.block_lba[which], config_.block_sectors,
                   read_buf_);
  r.complete = io.complete;
  if (!io.ok()) return r;

  const std::uint32_t rev = get_u32(read_buf_.data());
  if (rev == kErasedWord) return r;
  std::uint32_t chain =
      crc32(0, std::span<const std::byte>(read_buf_.data(), 4));

  std::uint32_t page = 1;
  while (page < pages_per_block()) {
    const std::uint32_t start = page * page_bytes();
    // Pass 1: frame the group and verify its chained CRC.
    std::uint32_t pos = start;
    bool framed = false;
    std::uint32_t crc_payload = 0;
    while (pos + 4 <= block_bytes()) {
      const std::uint32_t tag = get_u32(read_buf_.data() + pos);
      if (tag == kErasedWord) break;  // end of programmed region
      const std::uint32_t type = tag >> 24;
      const std::uint32_t len = tag & 0xFFFF;
      if (type == kTagSet) {
        if (len > kMaxAttrLen || pos + 4 + len > block_bytes()) break;
        pos += 4 + len;
      } else if (type == kTagCrc) {
        if (len != 4 || pos + 8 > block_bytes()) break;
        crc_payload = pos + 4;
        framed = true;
        break;
      } else {
        break;  // foreign bytes
      }
    }
    if (!framed) break;
    const std::uint32_t stored = get_u32(read_buf_.data() + crc_payload);
    const std::uint32_t computed = crc32(
        chain, std::span<const std::byte>(read_buf_.data() + start,
                                          crc_payload - start));
    if (computed != stored) break;  // torn or stale commit: chain ends

    if (state) {
      // Pass 2: replay the verified entries.
      std::uint32_t p = start;
      while (p < crc_payload - 4) {
        const std::uint32_t tag = get_u32(read_buf_.data() + p);
        const std::uint32_t len = tag & 0xFFFF;
        apply_one(*state, static_cast<std::uint8_t>((tag >> 16) & 0xFF),
                  std::span<const std::byte>(read_buf_.data() + p + 4, len));
        p += 4 + len;
      }
    }
    chain = stored;
    r.valid = true;
    page = (crc_payload + 4 + page_bytes() - 1) / page_bytes();
  }
  r.revision = rev;
  r.next_page = page;
  r.chain_crc = chain;
  return r;
}

BlockIo CommitLog::mount(sim::SimTime now) {
  mounted_ = false;
  needs_compact_ = false;
  const ScanResult s0 = scan_block(now, 0, nullptr);
  const ScanResult s1 = scan_block(s0.complete, 1, nullptr);
  if (!s0.valid && !s1.valid) {
    return BlockIo{BlockStatus::kIoError, s1.complete};
  }
  const std::uint32_t pick =
      (s0.valid && (!s1.valid || s0.revision >= s1.revision)) ? 0 : 1;
  const ScanResult s = scan_block(s1.complete, pick, &attrs_);
  if (!s.valid) return BlockIo{BlockStatus::kIoError, s.complete};
  active_ = pick;
  revision_ = s.revision;
  cursor_page_ = s.next_page;
  chain_crc_ = s.chain_crc;
  mounted_ = true;
  return BlockIo{BlockStatus::kOk, s.complete};
}

BlockIo CommitLog::format(sim::SimTime now) {
  mounted_ = false;
  const BlockIo e =
      device_.erase(now, config_.block_lba[1], config_.block_sectors);
  if (!e.ok()) return e;
  for (AttrSlot& slot : attrs_) slot.present = false;
  revision_ = 0;
  active_ = 1;  // compact() flips to block 0 under revision 1
  needs_compact_ = false;
  const BlockIo io = compact(e.complete, {});
  if (!io.ok()) return io;
  mounted_ = true;
  return io;
}

}  // namespace deepnote::storage
