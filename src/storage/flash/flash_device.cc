#include "storage/flash/flash_device.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace deepnote::storage {

FlashDevice::FlashDevice(FlashConfig config) : config_(config) {
  if (config_.page_sectors == 0 || config_.pages_per_block == 0 ||
      config_.blocks == 0) {
    throw std::invalid_argument("flash: empty geometry");
  }
  const std::uint64_t pages =
      static_cast<std::uint64_t>(config_.blocks) * config_.pages_per_block;
  programmed_.assign((pages + 63) / 64, 0);
  erase_counts_.assign(config_.blocks, 0);
  data_.resize(config_.retain_data ? config_.blocks : 0);
}

BlockIo FlashDevice::read(sim::SimTime now, std::uint64_t lba,
                          std::uint32_t sector_count,
                          std::span<std::byte> out) {
  // Empty transfers are a no-op; the last_page arithmetic below would
  // underflow on sector_count == 0.
  if (sector_count == 0) return BlockIo{BlockStatus::kOk, now};
  if (lba + sector_count > total_sectors()) {
    return BlockIo{BlockStatus::kIoError, now};
  }
  const std::uint64_t first_page = lba / config_.page_sectors;
  const std::uint64_t last_page =
      (lba + sector_count - 1) / config_.page_sectors;
  const std::uint64_t pages = last_page - first_page + 1;
  stats_.page_reads += pages;
  if (config_.retain_data) {
    // Erased (and never-programmed) bytes read back 0xFF, NAND-style.
    std::memset(out.data(), 0xFF,
                static_cast<std::size_t>(sector_count) * kBlockSectorSize);
    const std::uint32_t bsectors = block_sectors();
    for (std::uint64_t s = 0; s < sector_count;) {
      const std::uint64_t abs = lba + s;
      const std::uint32_t block = static_cast<std::uint32_t>(abs / bsectors);
      const std::uint64_t in_block = abs % bsectors;
      const std::uint64_t run =
          std::min<std::uint64_t>(sector_count - s, bsectors - in_block);
      if (!data_[block].empty()) {
        std::memcpy(out.data() + s * kBlockSectorSize,
                    data_[block].data() + in_block * kBlockSectorSize,
                    static_cast<std::size_t>(run) * kBlockSectorSize);
      }
      s += run;
    }
  }
  return BlockIo{BlockStatus::kOk,
                 now + config_.read_latency *
                           static_cast<std::int64_t>(pages)};
}

BlockIo FlashDevice::write(sim::SimTime now, std::uint64_t lba,
                           std::uint32_t sector_count,
                           std::span<const std::byte> in) {
  if (sector_count == 0) return BlockIo{BlockStatus::kOk, now};
  if (lba + sector_count > total_sectors()) {
    return BlockIo{BlockStatus::kIoError, now};
  }
  const std::uint64_t first_page = lba / config_.page_sectors;
  const std::uint64_t last_page =
      (lba + sector_count - 1) / config_.page_sectors;
  // NAND programming discipline: every touched page must still be in its
  // erased state. Checked before any side effect so a refused program
  // leaves the device untouched.
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    if (page_programmed(page)) {
      ++stats_.discipline_errors;
      return BlockIo{BlockStatus::kIoError, now};
    }
  }
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    set_page_programmed(page);
  }
  const std::uint64_t pages = last_page - first_page + 1;
  stats_.page_programs += pages;
  if (config_.retain_data) {
    const std::uint32_t bsectors = block_sectors();
    for (std::uint64_t s = 0; s < sector_count;) {
      const std::uint64_t abs = lba + s;
      const std::uint32_t block = static_cast<std::uint32_t>(abs / bsectors);
      const std::uint64_t in_block = abs % bsectors;
      const std::uint64_t run =
          std::min<std::uint64_t>(sector_count - s, bsectors - in_block);
      if (data_[block].empty()) {
        data_[block].assign(
            static_cast<std::size_t>(bsectors) * kBlockSectorSize,
            std::byte{0xFF});
      }
      std::memcpy(data_[block].data() + in_block * kBlockSectorSize,
                  in.data() + s * kBlockSectorSize,
                  static_cast<std::size_t>(run) * kBlockSectorSize);
      s += run;
    }
  }
  return BlockIo{BlockStatus::kOk,
                 now + config_.program_latency *
                           static_cast<std::int64_t>(pages)};
}

BlockIo FlashDevice::flush(sim::SimTime now) {
  return BlockIo{BlockStatus::kOk, now};
}

BlockIo FlashDevice::erase(sim::SimTime now, std::uint64_t lba,
                           std::uint32_t sector_count) {
  const std::uint32_t bsectors = block_sectors();
  if (lba % bsectors != 0 || sector_count != bsectors ||
      lba + sector_count > total_sectors()) {
    ++stats_.discipline_errors;
    return BlockIo{BlockStatus::kIoError, now};
  }
  const std::uint32_t block = static_cast<std::uint32_t>(lba / bsectors);
  const std::uint64_t first_page =
      static_cast<std::uint64_t>(block) * config_.pages_per_block;
  for (std::uint64_t page = first_page;
       page < first_page + config_.pages_per_block; ++page) {
    programmed_[page >> 6] &= ~(1ull << (page & 63));
  }
  ++erase_counts_[block];
  ++stats_.block_erases;
  if (config_.retain_data && !data_[block].empty()) {
    std::fill(data_[block].begin(), data_[block].end(), std::byte{0xFF});
  }
  return BlockIo{BlockStatus::kOk, now + config_.erase_latency};
}

std::uint32_t FlashDevice::min_erase_count() const {
  return *std::min_element(erase_counts_.begin(), erase_counts_.end());
}

std::uint32_t FlashDevice::max_erase_count() const {
  return *std::max_element(erase_counts_.begin(), erase_counts_.end());
}

double FlashDevice::mean_erase_count() const {
  std::uint64_t total = 0;
  for (const std::uint32_t c : erase_counts_) total += c;
  return static_cast<double>(total) / static_cast<double>(config_.blocks);
}

}  // namespace deepnote::storage
