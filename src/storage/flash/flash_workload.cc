#include "storage/flash/flash_workload.h"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "storage/flash/commit_log.h"
#include "storage/flash/flash_device.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

// Tiny geometry: 1 KiB pages, 4-page blocks. The metadata pair fills
// after a handful of commits, so the workload spends most of its writes
// inside compactions — the interesting window.
FlashConfig small_flash() {
  FlashConfig cfg;
  cfg.page_sectors = 2;
  cfg.pages_per_block = 4;
  cfg.blocks = 8;
  return cfg;
}

class FlashCommitLogWorkload final : public CrashWorkload {
 public:
  explicit FlashCommitLogWorkload(FlashLogWorkloadOptions options)
      : options_(options) {}

  void run(const FaultPlan& plan) override {
    flash_ = std::make_unique<FlashDevice>(small_flash());
    faulty_ = std::make_unique<FaultyDisk>(*flash_, plan);
    log_ = std::make_unique<CommitLog>(*faulty_, log_config());

    acked_.assign(256, {});
    in_flight_.clear();
    formatted_ = log_->format(SimTime::zero()).ok();
    if (!formatted_) return;

    // The op stream is a pure function of workload_seed: every schedule
    // of this workload sees the same commits, so cut indices line up.
    sim::Rng rng(options_.workload_seed);
    for (std::uint32_t c = 0; c < options_.commits; ++c) {
      const std::uint32_t nops = static_cast<std::uint32_t>(
          rng.uniform_int(1, options_.max_ops_per_commit));
      std::array<SetAttr, 16> ops;
      // Ops point into member-owned buffers: check() reads the in-flight
      // commit after run() returns.
      for (std::uint32_t i = 0; i < nops; ++i) {
        const std::uint8_t id = static_cast<std::uint8_t>(
            rng.uniform_int(0, options_.attr_ids - 1));
        in_flight_bufs_[i] = value_of(id, c);
        ops[i] = SetAttr{id, in_flight_bufs_[i]};
      }
      in_flight_.assign(ops.begin(), ops.begin() + nops);
      if (!log_->commit(SimTime::zero(),
                        std::span<const SetAttr>(ops.data(), nops))
               .ok()) {
        // First error = the crash; the device is dead from here on.
        return;
      }
      for (std::uint32_t i = 0; i < nops; ++i) {
        acked_[ops[i].id].assign(ops[i].value.begin(), ops[i].value.end());
      }
      in_flight_.clear();
    }
    in_flight_.clear();
  }

  std::uint64_t faulted_writes() const override {
    return faulty_->writes_seen();
  }
  std::uint64_t faulted_erases() const override {
    return faulty_->erases_seen();
  }

  CheckResult check() override {
    // Recovery runs on the raw flash: the crash killed the fault layer,
    // not the chip.
    CommitLog recovered(*flash_, log_config());
    const bool mounted = recovered.mount(SimTime::zero()).ok();
    if (!formatted_) {
      // Format never acked: an unmountable pair is fine; a mountable one
      // must be empty.
      if (!mounted) return CheckResult::ok();
      for (std::uint32_t id = 0; id < 256; ++id) {
        if (!recovered.get(static_cast<std::uint8_t>(id)).empty()) {
          return CheckResult::fail("unacked format left attribute " +
                                   std::to_string(id));
        }
      }
      return CheckResult::ok();
    }
    if (!mounted) {
      return CheckResult::fail("acked format but mount failed");
    }
    if (matches(recovered, /*with_in_flight=*/false)) return CheckResult::ok();
    if (!in_flight_.empty() && matches(recovered, /*with_in_flight=*/true)) {
      return CheckResult::ok();
    }
    return CheckResult::fail(mismatch_detail(recovered));
  }

 private:
  CommitLogConfig log_config() const {
    CommitLogConfig cfg;
    const std::uint32_t bsectors =
        small_flash().page_sectors * small_flash().pages_per_block;
    cfg.block_lba[0] = 0;
    cfg.block_lba[1] = bsectors;
    cfg.block_sectors = bsectors;
    cfg.page_sectors = small_flash().page_sectors;
    return cfg;
  }

  static std::vector<std::byte> value_of(std::uint8_t id, std::uint32_t c) {
    const std::uint32_t len = 1 + (id + c * 7) % kMaxAttrLen;
    std::vector<std::byte> v(len);
    for (std::uint32_t k = 0; k < len; ++k) {
      v[k] = static_cast<std::byte>((id * 37 + c * 11 + k) & 0xFF);
    }
    return v;
  }

  std::vector<std::byte> expected(std::uint8_t id,
                                  bool with_in_flight) const {
    std::vector<std::byte> want = acked_[id];
    if (with_in_flight) {
      for (const SetAttr& op : in_flight_) {
        if (op.id == id) want.assign(op.value.begin(), op.value.end());
      }
    }
    return want;
  }

  bool matches(const CommitLog& log, bool with_in_flight) const {
    for (std::uint32_t id = 0; id < 256; ++id) {
      const auto got = log.get(static_cast<std::uint8_t>(id));
      const std::vector<std::byte> want =
          expected(static_cast<std::uint8_t>(id), with_in_flight);
      if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
        return false;
      }
    }
    return true;
  }

  std::string mismatch_detail(const CommitLog& log) const {
    for (std::uint32_t id = 0; id < 256; ++id) {
      const auto got = log.get(static_cast<std::uint8_t>(id));
      const std::vector<std::byte> want =
          expected(static_cast<std::uint8_t>(id), false);
      if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
        return "attribute " + std::to_string(id) + ": recovered " +
               std::to_string(got.size()) + " bytes, acked " +
               std::to_string(want.size()) +
               " bytes (neither acked state nor acked+in-flight)";
      }
    }
    return "recovered state matches neither candidate";
  }

  FlashLogWorkloadOptions options_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FaultyDisk> faulty_;
  std::unique_ptr<CommitLog> log_;
  bool formatted_ = false;
  std::vector<std::vector<std::byte>> acked_;  ///< id-indexed model
  std::vector<SetAttr> in_flight_;
  std::array<std::vector<std::byte>, 16> in_flight_bufs_;
};

}  // namespace

WorkloadFactory flash_commitlog_workload(FlashLogWorkloadOptions options) {
  return [options] {
    return std::make_unique<FlashCommitLogWorkload>(options);
  };
}

}  // namespace deepnote::storage
