#include "storage/flash/ftl.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace deepnote::storage {

Ftl::Ftl(FlashDevice& device, FtlConfig config)
    : device_(device), config_(config) {
  const std::uint32_t blocks = device_.config().blocks;
  if (config_.reserved_blocks + std::max(1u, config_.gc_free_threshold) >=
      blocks) {
    throw std::invalid_argument("ftl: over-provisioning exceeds device");
  }
  logical_pages_ = (blocks - config_.reserved_blocks) * pages_per_block();
  map_.assign(logical_pages_, kUnmapped);
  rmap_.assign(static_cast<std::size_t>(blocks) * pages_per_block(),
               kUnmapped);
  valid_count_.assign(blocks, 0);
  state_.assign(blocks, BlockState::kFree);
  free_count_ = blocks;
  page_buf_.resize(static_cast<std::size_t>(page_sectors()) *
                   kBlockSectorSize);
  gc_buf_.resize(page_buf_.size());
}

std::uint32_t Ftl::pick_free_block() const {
  std::uint32_t best = kUnmapped;
  std::uint32_t best_wear = 0;
  for (std::uint32_t b = 0; b < state_.size(); ++b) {
    if (state_[b] != BlockState::kFree) continue;
    const std::uint32_t wear = device_.erase_count(b);
    if (best == kUnmapped || wear < best_wear) {
      best = b;
      best_wear = wear;
    }
  }
  return best;
}

std::uint32_t Ftl::pick_gc_victim() const {
  // Fewest valid pages first (cheapest reclaim); ties go to the
  // LEAST-worn block. An index tie-break here quietly defeats wear
  // leveling: fully-stale low-index blocks win every round and cycle
  // through erases while high-index blocks never recycle at all.
  std::uint32_t best = kUnmapped;
  for (std::uint32_t b = 0; b < state_.size(); ++b) {
    if (state_[b] != BlockState::kClosed) continue;
    if (best == kUnmapped || valid_count_[b] < valid_count_[best] ||
        (valid_count_[b] == valid_count_[best] &&
         device_.erase_count(b) < device_.erase_count(best))) {
      best = b;
    }
  }
  return best;
}

void Ftl::invalidate(std::uint32_t phys) {
  rmap_[phys] = kUnmapped;
  --valid_count_[phys / pages_per_block()];
}

bool Ftl::collect_garbage(sim::SimTime& now) {
  const std::uint32_t victim = pick_gc_victim();
  if (victim == kUnmapped) return false;
  ++stats_.gc_runs;
  in_gc_ = true;
  bool ok = true;
  const std::uint32_t first = victim * pages_per_block();
  for (std::uint32_t i = 0; ok && i < pages_per_block(); ++i) {
    const std::uint32_t lp = rmap_[first + i];
    if (lp == kUnmapped) continue;
    const BlockIo r = device_.read(
        now, static_cast<std::uint64_t>(first + i) * page_sectors(),
        page_sectors(), gc_buf_);
    if (!r.ok()) {
      ok = false;
      break;
    }
    now = r.complete;
    // No explicit invalidate here: place_page sees map_[lp] still
    // pointing at first + i and invalidates it exactly once. Doing it
    // here too would decrement the victim's valid count twice per
    // relocated page and underflow it.
    ok = place_page(now, lp, gc_buf_);
    if (ok) ++stats_.relocated_pages;
  }
  if (ok) {
    const BlockIo e = device_.erase(
        now, static_cast<std::uint64_t>(victim) * device_.block_sectors(),
        device_.block_sectors());
    ok = e.ok();
    if (ok) {
      now = e.complete;
      state_[victim] = BlockState::kFree;
      ++free_count_;
    }
  }
  in_gc_ = false;
  return ok;
}

bool Ftl::ensure_open_block(sim::SimTime& now) {
  if (open_block_ != kUnmapped && open_next_ < pages_per_block()) {
    return true;
  }
  if (open_block_ != kUnmapped) {
    state_[open_block_] = BlockState::kClosed;
    open_block_ = kUnmapped;
  }
  // Keep a relocation cushion: GC itself consumes pages of the block it
  // opens, so collect before the pool is actually dry. Relocation
  // (in_gc_) draws straight from the cushion instead of recursing.
  while (!in_gc_ && free_count_ <= config_.gc_free_threshold) {
    if (!collect_garbage(now)) break;
  }
  const std::uint32_t block = pick_free_block();
  if (block == kUnmapped) return false;
  state_[block] = BlockState::kOpen;
  --free_count_;
  open_block_ = block;
  open_next_ = 0;
  return true;
}

bool Ftl::place_page(sim::SimTime& now, std::uint32_t lp,
                     std::span<const std::byte> buf) {
  if (!ensure_open_block(now)) return false;
  const std::uint32_t phys = open_block_ * pages_per_block() + open_next_;
  const BlockIo w = device_.write(
      now, static_cast<std::uint64_t>(phys) * page_sectors(), page_sectors(),
      buf);
  if (!w.ok()) return false;
  now = w.complete;
  ++open_next_;
  const std::uint32_t old = map_[lp];
  if (old != kUnmapped) invalidate(old);
  map_[lp] = phys;
  rmap_[phys] = lp;
  ++valid_count_[open_block_];
  return true;
}

BlockIo Ftl::read(sim::SimTime now, std::uint64_t lba,
                  std::uint32_t sector_count, std::span<std::byte> out) {
  if (lba + sector_count > total_sectors()) {
    return BlockIo{BlockStatus::kIoError, now};
  }
  const std::uint32_t psec = page_sectors();
  for (std::uint64_t s = 0; s < sector_count;) {
    const std::uint64_t abs = lba + s;
    const std::uint32_t lp = static_cast<std::uint32_t>(abs / psec);
    const std::uint32_t in_page = static_cast<std::uint32_t>(abs % psec);
    const std::uint32_t run = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(sector_count - s), psec - in_page);
    const std::span<std::byte> slice =
        out.subspan(static_cast<std::size_t>(s) * kBlockSectorSize,
                    static_cast<std::size_t>(run) * kBlockSectorSize);
    ++stats_.host_page_reads;
    if (map_[lp] != kUnmapped) {
      const BlockIo r = device_.read(
          now,
          static_cast<std::uint64_t>(map_[lp]) * psec + in_page, run, slice);
      if (!r.ok()) return r;
      now = r.complete;
    } else {
      // Never written: erased convention, charged like a real read so
      // timing does not depend on payload history.
      std::memset(slice.data(), 0xFF, slice.size());
      now = now + device_.config().read_latency;
    }
    s += run;
  }
  return BlockIo{BlockStatus::kOk, now};
}

BlockIo Ftl::write(sim::SimTime now, std::uint64_t lba,
                   std::uint32_t sector_count, std::span<const std::byte> in) {
  if (lba + sector_count > total_sectors()) {
    return BlockIo{BlockStatus::kIoError, now};
  }
  const std::uint32_t psec = page_sectors();
  for (std::uint64_t s = 0; s < sector_count;) {
    const std::uint64_t abs = lba + s;
    const std::uint32_t lp = static_cast<std::uint32_t>(abs / psec);
    const std::uint32_t in_page = static_cast<std::uint32_t>(abs % psec);
    const std::uint32_t run = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(sector_count - s), psec - in_page);
    if (run < psec) {
      // Sub-page write: read-modify-write through the page buffer.
      if (map_[lp] != kUnmapped) {
        const BlockIo r = device_.read(
            now, static_cast<std::uint64_t>(map_[lp]) * psec, psec,
            page_buf_);
        if (!r.ok()) return r;
        now = r.complete;
      } else {
        std::memset(page_buf_.data(), 0xFF, page_buf_.size());
      }
      std::memcpy(page_buf_.data() +
                      static_cast<std::size_t>(in_page) * kBlockSectorSize,
                  in.data() + s * kBlockSectorSize,
                  static_cast<std::size_t>(run) * kBlockSectorSize);
    } else {
      std::memcpy(page_buf_.data(), in.data() + s * kBlockSectorSize,
                  page_buf_.size());
    }
    if (!place_page(now, lp, page_buf_)) {
      return BlockIo{BlockStatus::kIoError, now};
    }
    ++stats_.host_page_writes;
    s += run;
  }
  return BlockIo{BlockStatus::kOk, now};
}

BlockIo Ftl::flush(sim::SimTime now) { return device_.flush(now); }

BlockIo Ftl::erase(sim::SimTime now, std::uint64_t lba,
                   std::uint32_t sector_count) {
  if (lba + sector_count > total_sectors()) {
    return BlockIo{BlockStatus::kIoError, now};
  }
  const std::uint32_t psec = page_sectors();
  // TRIM: unmap the fully-covered logical pages; partial pages keep
  // their data.
  std::uint64_t first = (lba + psec - 1) / psec;
  std::uint64_t last = (lba + sector_count) / psec;  // exclusive
  for (std::uint64_t lp = first; lp < last; ++lp) {
    if (map_[lp] == kUnmapped) continue;
    invalidate(map_[lp]);
    map_[static_cast<std::size_t>(lp)] = kUnmapped;
    ++stats_.trimmed_pages;
  }
  return BlockIo{BlockStatus::kOk, now};
}

}  // namespace deepnote::storage
