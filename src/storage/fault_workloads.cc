#include "storage/fault_workloads.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "storage/extfs.h"
#include "storage/journal.h"
#include "storage/kvdb/db.h"
#include "storage/mem_disk.h"
#include "storage/raid.h"

namespace deepnote::storage {
namespace {

using sim::SimTime;

constexpr std::uint64_t kDiskSectors = 16384;  // 8 MiB backing device

MkfsOptions small_fs() {
  MkfsOptions o;
  o.journal_blocks = 64;
  o.num_inodes = 64;
  o.total_blocks = 2048;
  return o;
}

// ===========================================================================
// Append-only file workload (extfs and RAID-1 flavors).

/// Oracle for one append-only file. `current` is everything acknowledged
/// by successful write() calls; `tail` is the payload of the first
/// failed write — extfs may have buffered any prefix of it (and even
/// committed it via a later transaction), so post-crash content beyond
/// `current` must match `tail`. Appending stops at the first failure so
/// the model stays exact.
struct FileModel {
  std::string path;
  std::uint32_t inode = 0;  ///< 0 until create succeeded
  std::vector<std::byte> current;
  std::vector<std::byte> tail;
  std::uint64_t synced_size = 0;  ///< durably acknowledged prefix
  bool ever_synced = false;
  bool tainted = false;  ///< a write failed; no further appends
  /// A REPORTED fsync/sync failure involved this file: extfs drops dirty
  /// pages whose device write failed (Linux buffer-I/O-error semantics),
  /// so bytes beyond `synced_size` are unrecoverable and unpredictable.
  /// Only the durably acknowledged prefix stays checkable.
  bool lossy = false;
};

struct AppendProgram {
  AppendWorkloadOptions opt;
  std::vector<FileModel> files;
  bool unmounted = false;

  void ack_sync_all() {
    for (auto& f : files) {
      if (f.inode != 0 && !f.lossy) {
        f.synced_size = f.current.size();
        f.ever_synced = true;
      }
    }
  }

  /// Drive the workload against a mounted fs, tolerating errors (after
  /// a cut every call fails; the program just stops making progress).
  void run(ExtFs& fs, SimTime start) {
    sim::Rng rng(opt.workload_seed);
    SimTime t = start;
    files.clear();
    files.resize(opt.files);
    for (std::uint32_t i = 0; i < opt.files; ++i) {
      files[i].path = "/f" + std::to_string(i);
      std::uint32_t ino = 0;
      FsResult cr = fs.create(t, files[i].path, &ino);
      t = cr.done;
      if (cr.ok()) files[i].inode = ino;
    }
    for (std::uint32_t a = 0; a < opt.appends; ++a) {
      if (fs.read_only_at(t)) break;
      FileModel& f = files[a % opt.files];
      const auto len = static_cast<std::size_t>(
          rng.uniform_int(1, opt.max_append_bytes));
      std::vector<std::byte> payload(len);
      std::uint64_t h = rng.next_u64();
      for (auto& b : payload) {
        h = h * 6364136223846793005ull + 1442695040888963407ull;
        b = static_cast<std::byte>(h >> 33);
      }
      if (f.inode != 0 && !f.tainted) {
        FsIoResult w = fs.write(t, f.inode, f.current.size(), payload);
        t = w.done;
        if (w.ok()) {
          f.current.insert(f.current.end(), payload.begin(), payload.end());
        } else {
          f.tail = std::move(payload);
          f.tainted = true;
        }
      }
      if ((a + 1) % opt.fsync_every == 0 && f.inode != 0 && !f.tainted) {
        FsResult s = fs.fsync(t, f.inode);
        t = s.done;
        if (s.ok()) {
          f.synced_size = f.current.size();
          f.ever_synced = true;
        } else {
          // The failed writeback may have dropped this file's dirty
          // pages — everything beyond the durable prefix is gone.
          f.lossy = true;
          f.tainted = true;
        }
      }
      if ((a + 1) % opt.sync_every == 0 && !fs.read_only_at(t)) {
        FsResult s = fs.sync(t);
        t = s.done;
        if (s.ok()) {
          ack_sync_all();
        } else {
          mark_all_lossy();
          break;
        }
      }
    }
    if (!fs.read_only_at(t)) {
      FsResult u = fs.unmount(t);
      if (u.ok()) {
        unmounted = true;
        ack_sync_all();
      } else {
        mark_all_lossy();
      }
    }
  }

  /// A failed global writeback (sync/unmount) may have dropped dirty
  /// pages of ANY file; only durably acknowledged prefixes survive.
  void mark_all_lossy() {
    for (auto& f : files) {
      f.lossy = true;
      f.tainted = true;
    }
  }
};

/// Remount the durable image and assert the ordered-data invariants:
/// nothing durably acknowledged lost, nothing beyond the acknowledged
/// (or failed-write) bytes visible, fsck clean after unmount.
CheckResult check_files(BlockDevice& durable,
                        const std::vector<FileModel>& files) {
  auto m = ExtFs::mount(durable, SimTime::zero());
  if (!m.ok()) {
    return CheckResult::fail(std::string("remount failed: ") +
                             errno_name(m.err));
  }
  ExtFs& fs = *m.fs;
  SimTime t = m.done;
  for (const auto& f : files) {
    FsLookupResult lk = fs.lookup(t, f.path);
    t = lk.done;
    if (!lk.ok()) {
      if (lk.err == Errno::kENOENT && !f.ever_synced) continue;
      return CheckResult::fail(f.path + ": lookup failed (" +
                               errno_name(lk.err) + ") after crash" +
                               (f.ever_synced ? " despite fsync ack" : ""));
    }
    FsStatResult st = fs.stat(t, lk.inode);
    t = st.done;
    if (!st.ok()) {
      return CheckResult::fail(f.path + ": stat failed after remount");
    }
    const std::uint64_t size = st.size;
    if (f.ever_synced && size < f.synced_size) {
      std::ostringstream os;
      os << f.path << ": committed content lost — size " << size
         << " < fsync-acked " << f.synced_size;
      return CheckResult::fail(os.str());
    }
    if (size > f.current.size() + f.tail.size()) {
      std::ostringstream os;
      os << f.path << ": uncommitted content visible — size " << size
         << " > acked " << f.current.size() << " + failed-write "
         << f.tail.size();
      return CheckResult::fail(os.str());
    }
    std::vector<std::byte> got(size);
    if (size > 0) {
      FsIoResult r = fs.read(t, lk.inode, 0, got);
      t = r.done;
      if (!r.ok() || r.bytes != size) {
        return CheckResult::fail(f.path + ": read failed after remount");
      }
    }
    // For lossy files only the durably acknowledged prefix is
    // predictable — dropped dirty pages leave stale bytes above it.
    const std::size_t checkable =
        f.lossy ? static_cast<std::size_t>(f.synced_size)
                : f.current.size() + f.tail.size();
    const std::size_t head = std::min<std::size_t>(
        std::min<std::size_t>(size, f.current.size()), checkable);
    if (head > 0 &&
        std::memcmp(got.data(), f.current.data(), head) != 0) {
      return CheckResult::fail(f.path +
                               ": acked content corrupted after crash");
    }
    const std::size_t tail_end = std::min<std::size_t>(size, checkable);
    if (tail_end > head &&
        std::memcmp(got.data() + head, f.tail.data(), tail_end - head) !=
            0) {
      return CheckResult::fail(
          f.path + ": bytes beyond acked prefix match no issued write");
    }
  }
  FsResult u = fs.unmount(t);
  if (!u.ok()) {
    return CheckResult::fail("unmount failed on healthy device");
  }
  ExtFs::FsckReport rep = ExtFs::fsck(durable, u.done);
  if (!rep.clean()) {
    return CheckResult::fail(
        "fsck: " + (rep.problems.empty() ? std::string("io error")
                                         : rep.problems.front()));
  }
  return CheckResult::ok();
}

class ExtfsAppendWorkload final : public CrashWorkload {
 public:
  explicit ExtfsAppendWorkload(AppendWorkloadOptions opt) {
    program_.opt = opt;
  }

  void run(const FaultPlan& plan) override {
    inner_ = std::make_unique<MemDisk>(kDiskSectors);
    FsResult mk = ExtFs::mkfs(*inner_, SimTime::zero(), small_fs());
    faulty_ = std::make_unique<FaultyDisk>(*inner_, plan);
    auto m = ExtFs::mount(*faulty_, mk.done);
    if (!m.ok()) return;  // cut during mount: nothing was acknowledged
    program_.run(*m.fs, m.done);
  }

  std::uint64_t faulted_writes() const override {
    return faulty_ ? faulty_->writes_seen() : 0;
  }

  CheckResult check() override {
    return check_files(*inner_, program_.files);
  }

 private:
  std::unique_ptr<MemDisk> inner_;
  std::unique_ptr<FaultyDisk> faulty_;
  AppendProgram program_;
};

class Raid1Workload final : public CrashWorkload {
 public:
  explicit Raid1Workload(AppendWorkloadOptions opt) { program_.opt = opt; }

  void run(const FaultPlan& plan) override {
    member0_ = std::make_unique<MemDisk>(kDiskSectors);
    member1_ = std::make_unique<MemDisk>(kDiskSectors);
    {
      Raid1Device fmt({member0_.get(), member1_.get()});
      FsResult mk = ExtFs::mkfs(fmt, SimTime::zero(), small_fs());
      mkfs_done_ = mk.done;
    }
    faulty0_ = std::make_unique<FaultyDisk>(*member0_, plan);
    array_ = std::make_unique<Raid1Device>(
        std::vector<BlockDevice*>{faulty0_.get(), member1_.get()});
    auto m = ExtFs::mount(*array_, mkfs_done_);
    if (!m.ok()) return;
    program_.run(*m.fs, m.done);
  }

  std::uint64_t faulted_writes() const override {
    return faulty0_ ? faulty0_->writes_seen() : 0;
  }

  CheckResult check() override {
    // The mirror must have absorbed the member-0 fault completely: the
    // array never went down, so the workload must have shut down
    // cleanly and the surviving member alone must serve every
    // acknowledged byte.
    if (!program_.unmounted) {
      return CheckResult::fail(
          "RAID-1 array failed to absorb a single-member fault");
    }
    return check_files(*member1_, program_.files);
  }

 private:
  std::unique_ptr<MemDisk> member0_;
  std::unique_ptr<MemDisk> member1_;
  std::unique_ptr<FaultyDisk> faulty0_;
  std::unique_ptr<Raid1Device> array_;
  SimTime mkfs_done_;
  AppendProgram program_;
};

// ===========================================================================
// Journal pair workload.

/// The injected firmware bug behind
/// JournalWorkloadOptions::drop_flush_barriers: writes pass through, but
/// flush barriers are silently acknowledged without reaching the device.
class BarrierDroppingDevice final : public BlockDevice {
 public:
  explicit BarrierDroppingDevice(BlockDevice& inner) : inner_(inner) {}

  std::uint64_t total_sectors() const override {
    return inner_.total_sectors();
  }
  BlockIo read(SimTime now, std::uint64_t lba, std::uint32_t sector_count,
               std::span<std::byte> out) override {
    return inner_.read(now, lba, sector_count, out);
  }
  BlockIo write(SimTime now, std::uint64_t lba, std::uint32_t sector_count,
                std::span<const std::byte> in) override {
    return inner_.write(now, lba, sector_count, in);
  }
  BlockIo flush(SimTime now) override { return BlockIo{BlockStatus::kOk, now}; }

 private:
  BlockDevice& inner_;
};

class JournalPairWorkload final : public CrashWorkload {
 public:
  explicit JournalPairWorkload(JournalWorkloadOptions opt) : opt_(opt) {}

  void run(const FaultPlan& plan) override {
    inner_ = std::make_unique<MemDisk>(4096);
    // Generation 1: committed and checkpointed on the healthy device.
    {
      Journal seeded(*inner_, kJournalStart, kJournalBlocks, 1);
      seeded.commit(SimTime::zero(), {JournalBlock{kHomeA, fill_a(1)},
                                      JournalBlock{kHomeB, fill_b(1)}});
      checkpoint(*inner_, kHomeA, fill_a(1));
      checkpoint(*inner_, kHomeB, fill_b(1));
    }
    acked_gen_ = 1;

    faulty_ = std::make_unique<FaultyDisk>(*inner_, plan);
    BlockDevice* dev = faulty_.get();
    if (opt_.drop_flush_barriers) {
      buggy_ = std::make_unique<BarrierDroppingDevice>(*faulty_);
      dev = buggy_.get();
    }
    Journal journal(*dev, kJournalStart, kJournalBlocks, 2);
    SimTime t = SimTime::zero();
    for (std::uint32_t g = 2; g < 2 + opt_.transactions; ++g) {
      if (journal.aborted() || faulty_->dead()) break;
      JournalResult cr = journal.commit(
          t, {JournalBlock{kHomeA, fill_a(g)},
              JournalBlock{kHomeB, fill_b(g)}});
      t = cr.done;
      if (!cr.ok()) break;
      acked_gen_ = g;
      checkpoint(*dev, kHomeA, fill_a(g));
      checkpoint(*dev, kHomeB, fill_b(g));
    }
  }

  std::uint64_t faulted_writes() const override {
    return faulty_ ? faulty_->writes_seen() : 0;
  }

  CheckResult check() override {
    // Reboot: replay on the healthy device, then the homes must hold one
    // consistent generation, at least as new as the last acked commit.
    Journal recovery(*inner_, kJournalStart, kJournalBlocks, 2);
    if (!recovery.replay(SimTime::zero()).ok()) {
      return CheckResult::fail("journal replay failed on healthy device");
    }
    std::vector<std::byte> a(kFsBlockSize), b(kFsBlockSize);
    read_home(*inner_, kHomeA, a);
    read_home(*inner_, kHomeB, b);
    for (std::uint32_t g = 1; g < 2 + opt_.transactions; ++g) {
      if (a == fill_a(g) && b == fill_b(g)) {
        if (g < acked_gen_) {
          return CheckResult::fail(
              "acked generation " + std::to_string(acked_gen_) +
              " lost: homes hold generation " + std::to_string(g));
        }
        return CheckResult::ok();
      }
    }
    return CheckResult::fail("homes hold no consistent generation pair");
  }

 private:
  static constexpr std::uint32_t kJournalStart = 1;
  static constexpr std::uint32_t kJournalBlocks = 64;
  static constexpr std::uint32_t kHomeA = 200;
  static constexpr std::uint32_t kHomeB = 201;

  static std::vector<std::byte> fill_a(std::uint32_t gen) {
    return std::vector<std::byte>(kFsBlockSize,
                                  static_cast<std::byte>(0xa0 + gen));
  }
  static std::vector<std::byte> fill_b(std::uint32_t gen) {
    return std::vector<std::byte>(kFsBlockSize,
                                  static_cast<std::byte>(0xb0 + gen));
  }
  static void checkpoint(BlockDevice& dev, std::uint32_t block,
                         const std::vector<std::byte>& data) {
    dev.write(SimTime::zero(),
              static_cast<std::uint64_t>(block) * kFsSectorsPerBlock,
              kFsSectorsPerBlock, data);
  }
  static void read_home(BlockDevice& dev, std::uint32_t block,
                        std::vector<std::byte>& out) {
    dev.read(SimTime::zero(),
             static_cast<std::uint64_t>(block) * kFsSectorsPerBlock,
             kFsSectorsPerBlock, out);
  }

  JournalWorkloadOptions opt_;
  std::unique_ptr<MemDisk> inner_;
  std::unique_ptr<FaultyDisk> faulty_;
  std::unique_ptr<BarrierDroppingDevice> buggy_;
  std::uint32_t acked_gen_ = 0;
};

// ===========================================================================
// KvDb workload.

std::string kv_key(const KvdbWorkloadOptions& opt, std::uint32_t slot) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%04u", slot % opt.keys);
  return buf;
}

/// Value for (key, version): "<version>|<seeded payload>|<fnv checksum>".
/// Fully determined by its inputs, so the checker both validates the
/// embedded checksum and regenerates the exact expected bytes.
std::string kv_value(const KvdbWorkloadOptions& opt, std::string_view key,
                     std::uint32_t version) {
  char head[16];
  std::snprintf(head, sizeof(head), "%06u|", version);
  std::string payload(opt.value_bytes, 'a');
  std::uint64_t h =
      fnv1a64(key.data(), key.size(), opt.workload_seed + version);
  for (auto& c : payload) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
    c = static_cast<char>('a' + (h >> 33) % 26);
  }
  std::string v = std::string(head) + payload;
  char sum[24];
  std::snprintf(sum, sizeof(sum), "|%016llx",
                static_cast<unsigned long long>(
                    fnv1a64(v.data(), v.size())));
  return v + sum;
}

class KvdbCrashWorkload final : public CrashWorkload {
 public:
  explicit KvdbCrashWorkload(KvdbWorkloadOptions opt) : opt_(opt) {}

  void run(const FaultPlan& plan) override {
    inner_ = std::make_unique<MemDisk>(kDiskSectors);
    FsResult mk = ExtFs::mkfs(*inner_, SimTime::zero(), small_fs());
    faulty_ = std::make_unique<FaultyDisk>(*inner_, plan);
    auto m = ExtFs::mount(*faulty_, mk.done);
    if (!m.ok()) return;
    ExtFs& fs = *m.fs;
    SimTime t = m.done;

    auto op = kvdb::Db::open(fs, t, db_config());
    if (!op.ok()) return;
    kvdb::Db& db = *op.db;
    t = op.done;

    sim::Rng rng(opt_.workload_seed);
    for (std::uint32_t p = 0; p < opt_.puts; ++p) {
      if (db.fatal() || fs.read_only_at(t)) break;
      const std::string key = kv_key(
          opt_, static_cast<std::uint32_t>(
                    rng.uniform_int(0, opt_.keys - 1)));
      const std::uint32_t version = ++attempted_[key];
      kvdb::DbResult pr = db.put(t, key, kv_value(opt_, key, version));
      t = pr.done;
      if (pr.ok()) {
        acked_[key] = version;
      }
      // Stand in for the flush daemon: persist any swapped-out memtable.
      if (db.flush_pending() && !db.fatal()) {
        kvdb::DbResult fr = db.do_flush(t);
        t = fr.done;
      }
      if ((p + 1) % opt_.barrier_every == 0 && !db.fatal() &&
          !fs.read_only_at(t)) {
        kvdb::DbResult f1 = db.flush(t);
        t = f1.done;
        FsResult f2 = fs.sync(t);
        t = f2.done;
        if (f1.ok() && f2.ok()) durable_ = acked_;
      }
    }
    if (!db.fatal() && !fs.read_only_at(t)) {
      kvdb::DbResult c = db.close(t);
      t = c.done;
      if (c.ok() && !fs.read_only_at(t)) {
        FsResult u = fs.unmount(t);
        if (u.ok()) durable_ = acked_;
      }
    }
  }

  std::uint64_t faulted_writes() const override {
    return faulty_ ? faulty_->writes_seen() : 0;
  }

  CheckResult check() override {
    auto m = ExtFs::mount(*inner_, SimTime::zero());
    if (!m.ok()) {
      return CheckResult::fail(std::string("remount failed: ") +
                               errno_name(m.err));
    }
    ExtFs& fs = *m.fs;
    SimTime t = m.done;
    auto op = kvdb::Db::open(fs, t, db_config());
    if (!op.ok()) {
      return CheckResult::fail(std::string("db reopen failed: ") +
                               errno_name(op.err));
    }
    kvdb::Db& db = *op.db;
    t = op.done;

    for (const auto& [key, attempted_version] : attempted_) {
      const auto dit = durable_.find(key);
      const std::uint32_t durable_version =
          dit == durable_.end() ? 0 : dit->second;
      kvdb::DbGetResult g = db.get(t, key);
      t = g.done;
      if (!g.ok()) {
        return CheckResult::fail(key + ": get failed after recovery");
      }
      if (!g.found) {
        if (durable_version != 0) {
          std::ostringstream os;
          os << key << ": synced key lost (durable version "
             << durable_version << ")";
          return CheckResult::fail(os.str());
        }
        continue;
      }
      unsigned version = 0;
      if (std::sscanf(g.value.c_str(), "%06u|", &version) != 1 ||
          version == 0 || version > attempted_version ||
          g.value != kv_value(opt_, key, version)) {
        return CheckResult::fail(key +
                                 ": value failed checksum validation");
      }
      if (version < durable_version) {
        std::ostringstream os;
        os << key << ": rolled back past durable version ("
           << version << " < " << durable_version << ")";
        return CheckResult::fail(os.str());
      }
    }
    kvdb::Db::VerifyReport vr = db.verify_integrity(t);
    t = vr.done;
    if (!vr.clean()) {
      return CheckResult::fail(
          "sst integrity: " +
          (vr.problems.empty() ? std::string("io error")
                               : vr.problems.front()));
    }
    kvdb::DbResult c = db.close(t);
    t = c.done;
    if (!c.ok()) return CheckResult::fail("db close failed after recovery");
    FsResult u = fs.unmount(t);
    if (!u.ok()) return CheckResult::fail("unmount failed after recovery");
    ExtFs::FsckReport rep = ExtFs::fsck(*inner_, u.done);
    if (!rep.clean()) {
      return CheckResult::fail(
          "fsck: " + (rep.problems.empty() ? std::string("io error")
                                           : rep.problems.front()));
    }
    return CheckResult::ok();
  }

 private:
  kvdb::DbConfig db_config() const {
    kvdb::DbConfig cfg;
    cfg.root = "/db";
    cfg.write_buffer_bytes = 4ull << 10;  // frequent memtable switches
    cfg.l0_compaction_trigger = 3;
    cfg.target_sst_bytes = 64ull << 10;
    cfg.seed = 0xdb5eedull;
    return cfg;
  }

  KvdbWorkloadOptions opt_;
  std::unique_ptr<MemDisk> inner_;
  std::unique_ptr<FaultyDisk> faulty_;
  std::unordered_map<std::string, std::uint32_t> attempted_;
  std::unordered_map<std::string, std::uint32_t> acked_;
  std::unordered_map<std::string, std::uint32_t> durable_;
};

}  // namespace

WorkloadFactory extfs_append_workload(AppendWorkloadOptions options) {
  return [options] {
    return std::make_unique<ExtfsAppendWorkload>(options);
  };
}

WorkloadFactory raid1_workload(AppendWorkloadOptions options) {
  return [options] { return std::make_unique<Raid1Workload>(options); };
}

WorkloadFactory journal_pair_workload(JournalWorkloadOptions options) {
  return [options] {
    return std::make_unique<JournalPairWorkload>(options);
  };
}

WorkloadFactory kvdb_workload(KvdbWorkloadOptions options) {
  return [options] { return std::make_unique<KvdbCrashWorkload>(options); };
}

}  // namespace deepnote::storage
