#include "storage/faulty_disk.h"

#include <algorithm>
#include <cstring>

namespace deepnote::storage {

FaultyDisk::FaultyDisk(BlockDevice& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

void FaultyDisk::revive() {
  dead_ = false;
  plan_ = FaultPlan{};
  cache_.clear();  // volatile cache contents die with the power
}

bool FaultyDisk::eio_hit(DiskOpKind kind) {
  if (plan_.eio_len == 0) return false;
  if ((plan_.eio_ops & fault_ops::mask_of(kind)) == 0) return false;
  const std::uint64_t n = eio_matched_++;
  if (n < plan_.eio_start) return false;
  const std::uint64_t since = n - plan_.eio_start;
  if (plan_.eio_period == 0) return since < plan_.eio_len;
  return since % plan_.eio_period < plan_.eio_len;
}

void FaultyDisk::record_failure(DiskOpKind kind, std::uint64_t lba,
                                std::uint32_t sector_count) {
  if (!first_failure_) {
    first_failure_ = FailedOp{ops_seen_ - 1, kind, lba, sector_count};
  }
}

void FaultyDisk::cut(sim::SimTime now, std::uint64_t lba,
                     std::uint32_t sector_count,
                     std::span<const std::byte> in) {
  // A real cache may complete its queued commands in any subset before
  // the motor spins down; persisting a seeded subset in queue order is
  // one such outcome.
  for (auto& cw : cache_) {
    if (rng_.bernoulli(0.5)) {
      inner_.write(now, cw.lba,
                   static_cast<std::uint32_t>(cw.data.size() /
                                              kBlockSectorSize),
                   cw.data);
    }
  }
  cache_.clear();
  if (plan_.tear_cut_write && sector_count > 1) {
    const auto prefix = static_cast<std::uint32_t>(
        rng_.uniform_int(1, sector_count - 1));
    inner_.write(now, lba, prefix,
                 in.first(static_cast<std::size_t>(prefix) *
                          kBlockSectorSize));
  }
  dead_ = true;
}

BlockIo FaultyDisk::drain_cache(sim::SimTime now) {
  sim::SimTime t = now;
  while (!cache_.empty()) {
    CachedWrite cw = std::move(cache_.front());
    cache_.pop_front();
    BlockIo io = inner_.write(
        t, cw.lba,
        static_cast<std::uint32_t>(cw.data.size() / kBlockSectorSize),
        cw.data);
    if (!io.ok()) return io;
    t = io.complete;
  }
  return BlockIo{BlockStatus::kOk, t};
}

BlockIo FaultyDisk::read(sim::SimTime now, std::uint64_t lba,
                         std::uint32_t sector_count,
                         std::span<std::byte> out) {
  ++ops_seen_;
  if (dead_ || eio_hit(DiskOpKind::kRead)) {
    record_failure(DiskOpKind::kRead, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  BlockIo io = inner_.read(now, lba, sector_count, out);
  if (!io.ok()) return io;
  // Overlay cached (volatile) writes, oldest first, so reads observe the
  // device as if the cache had been written through.
  const std::uint64_t req_end = lba + sector_count;
  for (const auto& cw : cache_) {
    const std::uint64_t cw_end =
        cw.lba + cw.data.size() / kBlockSectorSize;
    const std::uint64_t lo = std::max(lba, cw.lba);
    const std::uint64_t hi = std::min(req_end, cw_end);
    if (lo >= hi) continue;
    std::memcpy(out.data() + (lo - lba) * kBlockSectorSize,
                cw.data.data() + (lo - cw.lba) * kBlockSectorSize,
                static_cast<std::size_t>(hi - lo) * kBlockSectorSize);
  }
  return io;
}

BlockIo FaultyDisk::write(sim::SimTime now, std::uint64_t lba,
                          std::uint32_t sector_count,
                          std::span<const std::byte> in) {
  ++ops_seen_;
  const std::uint64_t windex = writes_seen_++;
  if (dead_) {
    record_failure(DiskOpKind::kWrite, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  if (plan_.cut_at_write && windex == *plan_.cut_at_write) {
    cut(now, lba, sector_count, in);
    record_failure(DiskOpKind::kWrite, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  if (eio_hit(DiskOpKind::kWrite)) {
    record_failure(DiskOpKind::kWrite, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  if (plan_.cache_window > 0) {
    cache_.push_back(CachedWrite{lba, {in.begin(), in.end()}});
    sim::SimTime t = now;
    while (cache_.size() > plan_.cache_window) {
      CachedWrite cw = std::move(cache_.front());
      cache_.pop_front();
      BlockIo io = inner_.write(
          t, cw.lba,
          static_cast<std::uint32_t>(cw.data.size() / kBlockSectorSize),
          cw.data);
      if (!io.ok()) return io;
      t = io.complete;
    }
    return BlockIo{BlockStatus::kOk, t};
  }
  return inner_.write(now, lba, sector_count, in);
}

BlockIo FaultyDisk::erase(sim::SimTime now, std::uint64_t lba,
                          std::uint32_t sector_count) {
  ++ops_seen_;
  const std::uint64_t eindex = erases_seen_++;
  if (dead_) {
    record_failure(DiskOpKind::kErase, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  if (plan_.cut_at_erase && eindex == *plan_.cut_at_erase) {
    // Interrupted erase: the power event catches the block mid-erase.
    // Two physically plausible outcomes, seeded: the erase pulse never
    // bit (the old contents read back stale), or the block cleared and a
    // seeded garbage prefix got burned before the charge pump died.
    // Either way the volatile cache behaves as in any power cut.
    for (auto& cw : cache_) {
      if (rng_.bernoulli(0.5)) {
        inner_.write(now, cw.lba,
                     static_cast<std::uint32_t>(cw.data.size() /
                                                kBlockSectorSize),
                     cw.data);
      }
    }
    cache_.clear();
    if (rng_.bernoulli(0.5)) {
      inner_.erase(now, lba, sector_count);
      const auto junk_sectors = static_cast<std::uint32_t>(
          rng_.uniform_int(1, sector_count));
      std::vector<std::byte> junk(
          static_cast<std::size_t>(junk_sectors) * kBlockSectorSize);
      for (auto& b : junk) {
        b = static_cast<std::byte>(rng_.uniform_int(0, 255));
      }
      inner_.write(now, lba, junk_sectors, junk);
    }
    dead_ = true;
    record_failure(DiskOpKind::kErase, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  if (eio_hit(DiskOpKind::kErase)) {
    record_failure(DiskOpKind::kErase, lba, sector_count);
    return BlockIo{BlockStatus::kIoError, now};
  }
  return inner_.erase(now, lba, sector_count);
}

BlockIo FaultyDisk::flush(sim::SimTime now) {
  ++ops_seen_;
  if (dead_ || eio_hit(DiskOpKind::kFlush)) {
    record_failure(DiskOpKind::kFlush, 0, 0);
    return BlockIo{BlockStatus::kIoError, now};
  }
  BlockIo io = drain_cache(now);
  if (!io.ok()) return io;
  return inner_.flush(io.complete);
}

}  // namespace deepnote::storage
