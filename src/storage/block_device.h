// Block device abstraction used by the filesystem and database layers.
//
// Implementations run in virtual time: each operation takes the caller's
// current SimTime and reports the operation's completion time. A blocking
// caller simply continues from `complete`.
#pragma once

#include <cstdint>
#include <span>

#include "sim/time.h"

namespace deepnote::storage {

enum class BlockStatus {
  kOk,
  kIoError,  ///< the command ultimately failed (buffer I/O error)
};

struct BlockIo {
  BlockStatus status = BlockStatus::kOk;
  sim::SimTime complete = sim::SimTime::zero();

  bool ok() const { return status == BlockStatus::kOk; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::uint64_t total_sectors() const = 0;

  virtual BlockIo read(sim::SimTime now, std::uint64_t lba,
                       std::uint32_t sector_count,
                       std::span<std::byte> out) = 0;
  virtual BlockIo write(sim::SimTime now, std::uint64_t lba,
                        std::uint32_t sector_count,
                        std::span<const std::byte> in) = 0;
  /// Durability barrier: completes when previously acknowledged writes
  /// are persistent.
  virtual BlockIo flush(sim::SimTime now) = 0;
};

inline constexpr std::uint32_t kBlockSectorSize = 512;

}  // namespace deepnote::storage
