// Block device abstraction used by the filesystem and database layers.
//
// Implementations run in virtual time: each operation takes the caller's
// current SimTime and reports the operation's completion time. A blocking
// caller simply continues from `complete`.
#pragma once

#include <cstdint>
#include <span>

#include "sim/time.h"

namespace deepnote::storage {

enum class BlockStatus {
  kOk,
  kIoError,  ///< the command ultimately failed (buffer I/O error)
};

/// The command kinds a BlockDevice serves. Fault injectors select
/// victims by kind (e.g. "fail writes only") and report failures by kind.
/// kErase only does real work on erase-block media (flash); other
/// devices treat it as a TRIM-like hint.
enum class DiskOpKind : std::uint8_t {
  kRead,
  kWrite,
  kFlush,
  kErase,
};

const char* disk_op_name(DiskOpKind kind);

/// Bitmask of DiskOpKind values for fault-injection selectors.
namespace fault_ops {
inline constexpr unsigned kReads = 1u << 0;
inline constexpr unsigned kWrites = 1u << 1;
inline constexpr unsigned kFlushes = 1u << 2;
inline constexpr unsigned kErases = 1u << 3;
inline constexpr unsigned kAll = kReads | kWrites | kFlushes | kErases;

constexpr unsigned mask_of(DiskOpKind kind) {
  switch (kind) {
    case DiskOpKind::kRead: return kReads;
    case DiskOpKind::kWrite: return kWrites;
    case DiskOpKind::kFlush: return kFlushes;
    case DiskOpKind::kErase: return kErases;
  }
  return 0;
}
}  // namespace fault_ops

/// The first operation an injector failed: everything a shrink report
/// needs to name the victim precisely.
struct FailedOp {
  std::uint64_t op_index = 0;  ///< 0-based index over all ops on the device
  DiskOpKind kind = DiskOpKind::kRead;
  std::uint64_t lba = 0;            ///< 0 for flush
  std::uint32_t sector_count = 0;   ///< 0 for flush
};

struct BlockIo {
  BlockStatus status = BlockStatus::kOk;
  sim::SimTime complete = sim::SimTime::zero();

  bool ok() const { return status == BlockStatus::kOk; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::uint64_t total_sectors() const = 0;

  virtual BlockIo read(sim::SimTime now, std::uint64_t lba,
                       std::uint32_t sector_count,
                       std::span<std::byte> out) = 0;
  virtual BlockIo write(sim::SimTime now, std::uint64_t lba,
                        std::uint32_t sector_count,
                        std::span<const std::byte> in) = 0;
  /// Durability barrier: completes when previously acknowledged writes
  /// are persistent.
  virtual BlockIo flush(sim::SimTime now) = 0;

  /// Erase-block command. Flash devices require it before re-programming
  /// a block and charge the (long) erase latency; devices without erase
  /// geometry treat it as an instant TRIM-like no-op, which keeps fault
  /// injectors and stacking layers device-agnostic.
  virtual BlockIo erase(sim::SimTime now, std::uint64_t lba,
                        std::uint32_t sector_count) {
    (void)lba;
    (void)sector_count;
    return BlockIo{BlockStatus::kOk, now};
  }
};

inline constexpr std::uint32_t kBlockSectorSize = 512;

}  // namespace deepnote::storage
