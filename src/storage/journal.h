// Physical block journal (JBD2-style) used by extfs.
//
// A transaction is written as: descriptor block (sequence + list of home
// block numbers), the verbatim copies of those blocks, a flush barrier,
// a commit block carrying a checksum of the copies, and a second flush.
// Only after the commit block is durable may the blocks be checkpointed
// to their home locations.
//
// If any journal write or flush fails, the journal *aborts* with error
// -EIO (-5) — the exact failure mode the paper observes when the acoustic
// attack blocks the drive ("Ext4 terminates its service with a Journal
// Block Device (JBD) error in code -5").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/block_device.h"
#include "storage/errors.h"
#include "storage/extfs_format.h"

namespace deepnote::storage {

struct JournalResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();

  bool ok() const { return err == Errno::kOk; }
};

/// One block staged for commit.
struct JournalBlock {
  std::uint32_t home_block = 0;
  std::vector<std::byte> data;  ///< kFsBlockSize bytes
};

class Journal {
 public:
  /// `start_block`/`num_blocks` locate the journal area in fs blocks.
  Journal(BlockDevice& device, std::uint32_t start_block,
          std::uint32_t num_blocks, std::uint64_t next_sequence);

  /// Append and durably commit one transaction. On success the caller may
  /// checkpoint the blocks home. On device failure the journal aborts and
  /// every subsequent commit fails fast with kEIO.
  JournalResult commit(sim::SimTime now,
                       const std::vector<JournalBlock>& blocks);

  /// Scan the journal and re-apply every fully committed transaction with
  /// sequence >= the constructor's `next_sequence`, in sequence order,
  /// writing blocks to their home locations. Older transactions were
  /// checkpointed in a previous epoch and are skipped — replaying them
  /// would resurrect stale block images. Used during mount. `applied_out`
  /// (optional) counts replayed transactions.
  JournalResult replay(sim::SimTime now, std::uint64_t* applied_out = nullptr);

  /// Erase the journal area (descriptor magic bytes only — cheap).
  JournalResult clear(sim::SimTime now);

  bool aborted() const { return aborted_; }
  /// Linux-style error code after abort (-5).
  int abort_code() const { return aborted_ ? errno_code(Errno::kEIO) : 0; }
  std::uint64_t next_sequence() const { return sequence_; }
  std::uint32_t capacity_blocks() const { return num_blocks_; }

 private:
  JournalResult fail(sim::SimTime t);
  BlockIo write_block(sim::SimTime now, std::uint32_t journal_block,
                      std::span<const std::byte> data);
  BlockIo read_block(sim::SimTime now, std::uint32_t journal_block,
                     std::span<std::byte> out);

  BlockDevice& device_;
  std::uint32_t start_block_;
  std::uint32_t num_blocks_;
  std::uint64_t sequence_;
  std::uint32_t head_ = 0;  ///< next free journal block index
  bool aborted_ = false;
};

}  // namespace deepnote::storage
