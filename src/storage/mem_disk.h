// In-memory block device with constant latency; unit-test substrate and
// the "SSD-like" comparison device. Storage is sparse (chunked, allocated
// on first write) so huge devices cost nothing until touched.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/block_device.h"

namespace deepnote::storage {

class MemDisk final : public BlockDevice {
 public:
  MemDisk(std::uint64_t total_sectors,
          sim::Duration latency = sim::Duration::from_micros(20));

  std::uint64_t total_sectors() const override { return total_sectors_; }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;

  /// Fail every operation from now on (fault injection).
  void set_failing(bool failing) { failing_ = failing; }
  /// Fail operations after `count` more successes (fault injection).
  void fail_after(std::uint64_t count) { fail_after_ = count; }

  std::uint64_t op_count() const { return ops_; }

 private:
  bool should_fail();

  static constexpr std::uint32_t kSectorsPerChunk = 256;  // 128 KiB

  std::uint64_t total_sectors_;
  sim::Duration latency_;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> chunks_;
  bool failing_ = false;
  std::uint64_t fail_after_ = ~0ull;
  std::uint64_t ops_ = 0;
};

}  // namespace deepnote::storage
