// In-memory block device with constant latency; unit-test substrate and
// the "SSD-like" comparison device. Storage is sparse (chunked, allocated
// on first write) so huge devices cost nothing until touched.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/block_device.h"

namespace deepnote::storage {

class MemDisk final : public BlockDevice {
 public:
  MemDisk(std::uint64_t total_sectors,
          sim::Duration latency = sim::Duration::from_micros(20));

  std::uint64_t total_sectors() const override { return total_sectors_; }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;

  /// Fail every operation from now on (fault injection).
  void set_failing(bool failing) { failing_ = failing; }
  /// Fail matching operations after `count` more matching successes;
  /// `ops` is a fault_ops:: mask selecting which kinds count (and fail).
  /// Non-matching kinds keep working — e.g. fail_after(0,
  /// fault_ops::kWrites) models a drive that stops taking writes but
  /// still reads. Replaces any previous countdown.
  void fail_after(std::uint64_t count, unsigned ops = fault_ops::kAll);
  /// Disarm fail_after()/set_failing() and forget the recorded failure.
  void clear_fault();

  /// The first operation an armed injector failed, with its op index and
  /// kind, so fault-harness shrink reports can name the victim.
  const std::optional<FailedOp>& first_failure() const {
    return first_failure_;
  }

  std::uint64_t op_count() const { return ops_; }
  std::uint64_t read_count() const { return reads_; }
  std::uint64_t write_count() const { return writes_; }
  std::uint64_t flush_count() const { return flushes_; }

 private:
  bool should_fail(DiskOpKind kind, std::uint64_t lba,
                   std::uint32_t sector_count);

  static constexpr std::uint32_t kSectorsPerChunk = 256;  // 128 KiB

  std::uint64_t total_sectors_;
  sim::Duration latency_;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> chunks_;
  bool failing_ = false;
  std::uint64_t fail_after_ = ~0ull;
  unsigned fail_ops_ = fault_ops::kAll;
  std::uint64_t matched_ops_ = 0;  ///< matching ops since fail_after()
  std::optional<FailedOp> first_failure_;
  std::uint64_t ops_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace deepnote::storage
