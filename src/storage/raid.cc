#include "storage/raid.h"

#include <algorithm>
#include <stdexcept>

namespace deepnote::storage {

// ===========================================================================
// RAID-1

Raid1Device::Raid1Device(std::vector<BlockDevice*> members,
                         std::uint32_t eject_after_errors)
    : members_(std::move(members)),
      eject_after_errors_(std::max<std::uint32_t>(eject_after_errors, 1)) {
  if (members_.empty()) {
    throw std::invalid_argument("raid1: needs at least one member");
  }
  total_sectors_ = members_.front()->total_sectors();
  for (auto* m : members_) {
    total_sectors_ = std::min(total_sectors_, m->total_sectors());
  }
  failed_.assign(members_.size(), false);
  consecutive_errors_.assign(members_.size(), 0);
}

std::size_t Raid1Device::active_members() const {
  std::size_t n = 0;
  for (bool f : failed_) {
    if (!f) ++n;
  }
  return n;
}

void Raid1Device::readmit(std::size_t i) {
  failed_.at(i) = false;
  consecutive_errors_.at(i) = 0;
}

void Raid1Device::note_result(std::size_t member, bool ok) {
  if (ok) {
    consecutive_errors_[member] = 0;
    return;
  }
  if (++consecutive_errors_[member] >= eject_after_errors_) {
    failed_[member] = true;
  }
}

BlockIo Raid1Device::read(sim::SimTime now, std::uint64_t lba,
                          std::uint32_t sector_count,
                          std::span<std::byte> out) {
  ++stats_.reads;
  sim::SimTime t = now;
  bool first_choice = true;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (failed_[i]) continue;
    const BlockIo io = members_[i]->read(t, lba, sector_count, out);
    note_result(i, io.ok());
    if (io.ok()) {
      if (!first_choice) ++stats_.read_failovers;
      return io;
    }
    // Failover: the next member is tried after the failure completes
    // (the md layer learns of the error first).
    t = io.complete;
    first_choice = false;
  }
  ++stats_.failed_ios;
  return BlockIo{BlockStatus::kIoError, t};
}

BlockIo Raid1Device::write(sim::SimTime now, std::uint64_t lba,
                           std::uint32_t sector_count,
                           std::span<const std::byte> in) {
  ++stats_.writes;
  // Mirrored writes are issued concurrently to the active members; the
  // array acknowledges when the slowest active member finishes. A member
  // failure degrades the array but the write succeeds while at least one
  // member took it.
  sim::SimTime done = now;
  std::size_t ok_members = 0;
  bool any_sent = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (failed_[i]) continue;
    any_sent = true;
    const BlockIo io = members_[i]->write(now, lba, sector_count, in);
    done = sim::max(done, io.complete);
    note_result(i, io.ok());
    if (io.ok()) ++ok_members;
  }
  if (!any_sent || ok_members == 0) {
    ++stats_.failed_ios;
    return BlockIo{BlockStatus::kIoError, done};
  }
  if (ok_members < members_.size()) ++stats_.degraded_writes;
  return BlockIo{BlockStatus::kOk, done};
}

BlockIo Raid1Device::flush(sim::SimTime now) {
  sim::SimTime done = now;
  std::size_t ok_members = 0;
  bool any_sent = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (failed_[i]) continue;
    any_sent = true;
    const BlockIo io = members_[i]->flush(now);
    done = sim::max(done, io.complete);
    note_result(i, io.ok());
    if (io.ok()) ++ok_members;
  }
  if (!any_sent || ok_members == 0) {
    ++stats_.failed_ios;
    return BlockIo{BlockStatus::kIoError, done};
  }
  return BlockIo{BlockStatus::kOk, done};
}

// ===========================================================================
// RAID-0

Raid0Device::Raid0Device(std::vector<BlockDevice*> members,
                         std::uint32_t chunk_sectors)
    : members_(std::move(members)), chunk_sectors_(chunk_sectors) {
  if (members_.empty()) {
    throw std::invalid_argument("raid0: needs at least one member");
  }
  if (chunk_sectors_ == 0) {
    throw std::invalid_argument("raid0: chunk must be positive");
  }
  std::uint64_t per_member = members_.front()->total_sectors();
  for (auto* m : members_) {
    per_member = std::min(per_member, m->total_sectors());
  }
  total_sectors_ = per_member * members_.size();
}

void Raid0Device::locate(std::uint64_t lba, std::size_t* member,
                         std::uint64_t* member_lba) const {
  const std::uint64_t chunk = lba / chunk_sectors_;
  const std::uint64_t in_chunk = lba % chunk_sectors_;
  *member = static_cast<std::size_t>(chunk % members_.size());
  *member_lba = (chunk / members_.size()) * chunk_sectors_ + in_chunk;
}

BlockIo Raid0Device::run_chunked(sim::SimTime now, std::uint64_t lba,
                                 std::uint32_t sector_count,
                                 std::span<std::byte> out,
                                 std::span<const std::byte> in,
                                 bool is_write) {
  // Split the request at chunk boundaries; members work concurrently, the
  // request completes with the slowest piece.
  sim::SimTime done = now;
  std::uint32_t processed = 0;
  while (processed < sector_count) {
    const std::uint64_t cur = lba + processed;
    const std::uint32_t in_chunk =
        static_cast<std::uint32_t>(cur % chunk_sectors_);
    const std::uint32_t n = std::min(sector_count - processed,
                                     chunk_sectors_ - in_chunk);
    std::size_t member = 0;
    std::uint64_t member_lba = 0;
    locate(cur, &member, &member_lba);
    const std::size_t byte_off =
        static_cast<std::size_t>(processed) * kBlockSectorSize;
    const std::size_t byte_len =
        static_cast<std::size_t>(n) * kBlockSectorSize;
    BlockIo io;
    if (is_write) {
      io = members_[member]->write(now, member_lba, n,
                                   in.subspan(byte_off, byte_len));
    } else {
      io = members_[member]->read(now, member_lba, n,
                                  out.subspan(byte_off, byte_len));
    }
    done = sim::max(done, io.complete);
    if (!io.ok()) {
      ++stats_.failed_ios;
      return BlockIo{BlockStatus::kIoError, done};
    }
    processed += n;
  }
  return BlockIo{BlockStatus::kOk, done};
}

BlockIo Raid0Device::read(sim::SimTime now, std::uint64_t lba,
                          std::uint32_t sector_count,
                          std::span<std::byte> out) {
  ++stats_.reads;
  return run_chunked(now, lba, sector_count, out, {}, false);
}

BlockIo Raid0Device::write(sim::SimTime now, std::uint64_t lba,
                           std::uint32_t sector_count,
                           std::span<const std::byte> in) {
  ++stats_.writes;
  return run_chunked(now, lba, sector_count, {}, in, true);
}

BlockIo Raid0Device::flush(sim::SimTime now) {
  sim::SimTime done = now;
  for (auto* m : members_) {
    const BlockIo io = m->flush(now);
    done = sim::max(done, io.complete);
    if (!io.ok()) {
      ++stats_.failed_ios;
      return BlockIo{BlockStatus::kIoError, done};
    }
  }
  return BlockIo{BlockStatus::kOk, done};
}

}  // namespace deepnote::storage
