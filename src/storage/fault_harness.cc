#include "storage/fault_harness.h"

#include <algorithm>
#include <sstream>

#include "sim/trial_runner.h"

namespace deepnote::storage {

const char* fault_variant_name(FaultVariant v) {
  switch (v) {
    case FaultVariant::kClean: return "clean cut";
    case FaultVariant::kTorn: return "torn cut";
    case FaultVariant::kReorder: return "reordered-cache cut";
    case FaultVariant::kEio: return "eio burst";
    case FaultVariant::kEraseInterrupt: return "interrupted erase";
  }
  return "variant?";
}

FaultSchedule schedule_at(std::uint64_t base_seed, std::uint64_t index) {
  FaultSchedule s;
  s.base_seed = base_seed;
  s.index = index;
  s.cut_write = index / kNumFaultVariants;
  s.variant = static_cast<FaultVariant>(index % kNumFaultVariants);
  return s;
}

FaultPlan FaultSchedule::plan(std::uint32_t cache_window) const {
  FaultPlan p;
  p.seed = sim::trial_seed(base_seed, index);
  switch (variant) {
    case FaultVariant::kClean:
      p.cut_at_write = cut_write;
      break;
    case FaultVariant::kTorn:
      p.cut_at_write = cut_write;
      p.tear_cut_write = true;
      break;
    case FaultVariant::kReorder:
      p.cut_at_write = cut_write;
      p.cache_window = cache_window;
      break;
    case FaultVariant::kEio:
      // One transient burst starting at this write; length seeded so
      // adjacent indices probe different burst widths.
      p.eio_start = cut_write;
      p.eio_len = 1 + p.seed % 5;
      p.eio_period = 0;
      p.eio_ops = fault_ops::kWrites | fault_ops::kFlushes;
      break;
    case FaultVariant::kEraseInterrupt:
      // cut_write counts erases for this variant: the Nth erase is
      // interrupted (block reads back stale or garbage, seeded).
      p.cut_at_erase = cut_write;
      break;
  }
  return p;
}

std::string FaultSchedule::describe() const {
  std::ostringstream os;
  os << "schedule " << index << " (seed 0x" << std::hex << base_seed
     << std::dec << "): " << fault_variant_name(variant) << " at "
     << (variant == FaultVariant::kEraseInterrupt ? "erase " : "write ")
     << cut_write;
  return os.str();
}

std::string ExploreReport::summary() const {
  std::ostringstream os;
  os << "explored " << schedules_run << " schedules over " << write_count
     << " writes: ";
  if (!benign_failure.empty()) {
    os << "benign run failed: " << benign_failure;
    return os.str();
  }
  if (failures.empty()) {
    os << "all consistent";
  } else {
    os << failures.size() << " failing; first: "
       << failures.front().schedule.describe() << " — "
       << failures.front().detail;
  }
  return os.str();
}

namespace {

struct TrialOutcome {
  bool passed = true;
  std::string detail;
};

bool variant_enabled(FaultVariant v, const ExploreOptions& options) {
  switch (v) {
    case FaultVariant::kClean: return true;
    case FaultVariant::kTorn: return options.torn_writes;
    case FaultVariant::kReorder: return options.reorder;
    case FaultVariant::kEio: return options.eio_bursts;
    case FaultVariant::kEraseInterrupt: return options.erase_interrupts;
  }
  return false;
}

}  // namespace

ExploreReport explore(const WorkloadFactory& factory,
                      const ExploreOptions& options) {
  ExploreReport report;

  // Benign pass: size the schedule space and prove the oracle itself
  // holds without faults (a broken workload must not masquerade as a
  // crash-consistency bug).
  {
    auto benign = factory();
    benign->run(FaultPlan{});
    report.write_count = benign->faulted_writes();
    report.erase_count = benign->faulted_erases();
    CheckResult c = benign->check();
    if (!c.passed) {
      report.benign_failure = c.detail;
      return report;
    }
  }

  std::vector<std::uint64_t> indices;
  indices.reserve(report.write_count * kNumFaultVariants);
  const std::uint64_t cuts = std::max(report.write_count, report.erase_count);
  for (std::uint64_t cut = 0; cut < cuts; ++cut) {
    for (std::uint32_t v = 0; v < kNumFaultVariants; ++v) {
      const auto variant = static_cast<FaultVariant>(v);
      if (!variant_enabled(variant, options)) continue;
      // The cut index counts erases for the erase variant and writes for
      // everything else; enumerate each variant only over its own space.
      const std::uint64_t space = variant == FaultVariant::kEraseInterrupt
                                      ? report.erase_count
                                      : report.write_count;
      if (cut >= space) continue;
      indices.push_back(cut * kNumFaultVariants + v);
    }
  }
  report.schedules_run = indices.size();

  // Embarrassingly parallel: every schedule builds its own workload.
  std::vector<TrialOutcome> outcomes = sim::run_trials<TrialOutcome>(
      indices.size(), options.jobs, [&](std::size_t i) {
        const FaultSchedule schedule =
            schedule_at(options.seed, indices[i]);
        auto workload = factory();
        workload->run(schedule.plan(options.cache_window));
        CheckResult c = workload->check();
        return TrialOutcome{c.passed, std::move(c.detail)};
      });

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].passed) {
      report.failures.push_back(ScheduleFailure{
          schedule_at(options.seed, indices[i]),
          std::move(outcomes[i].detail)});
    }
  }
  return report;
}

CheckResult replay_schedule(const WorkloadFactory& factory,
                            std::uint64_t base_seed, std::uint64_t index,
                            std::uint32_t cache_window,
                            FaultSchedule* schedule_out) {
  const FaultSchedule schedule = schedule_at(base_seed, index);
  if (schedule_out) *schedule_out = schedule;
  auto workload = factory();
  workload->run(schedule.plan(cache_window));
  return workload->check();
}

FaultSchedule shrink(const WorkloadFactory& factory,
                     const FaultSchedule& failing,
                     std::uint32_t cache_window) {
  auto still_fails = [&](const FaultSchedule& s) {
    auto workload = factory();
    workload->run(s.plan(cache_window));
    return !workload->check().passed;
  };
  auto at = [&](std::uint64_t cut, FaultVariant v) {
    return schedule_at(failing.base_seed,
                       cut * kNumFaultVariants +
                           static_cast<std::uint64_t>(v));
  };

  // 1. Simplify the fault variant at the same cut point.
  FaultSchedule best = failing;
  for (FaultVariant v : {FaultVariant::kClean, FaultVariant::kTorn}) {
    if (v == best.variant) break;
    const FaultSchedule candidate = at(best.cut_write, v);
    if (still_fails(candidate)) {
      best = candidate;
      break;
    }
  }
  // 2. Earliest failing cut under the simplified variant.
  for (std::uint64_t cut = 0; cut < best.cut_write; ++cut) {
    const FaultSchedule candidate = at(cut, best.variant);
    if (still_fails(candidate)) {
      best = candidate;
      break;
    }
  }
  return best;
}

}  // namespace deepnote::storage
