// extfs: namespace operations, file I/O, commit machinery.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "storage/extfs.h"

namespace deepnote::storage {
namespace {

bool split_path(std::string_view path, std::vector<std::string_view>& out) {
  if (path.empty() || path.front() != '/') return false;
  out.clear();
  std::size_t i = 1;
  while (i < path.size()) {
    std::size_t j = path.find('/', i);
    if (j == std::string_view::npos) j = path.size();
    if (j > i) out.push_back(path.substr(i, j - i));
    i = j + 1;
  }
  for (auto c : out) {
    if (c.size() > kMaxNameLen) return false;
  }
  return true;
}

}  // namespace

// ===========================================================================
// Directories

Errno ExtFs::dir_find(sim::SimTime& t, std::uint32_t dir_ino,
                      std::string_view name, std::uint32_t* out) {
  *out = 0;
  InodeRef dir = load_inode(t, dir_ino);
  t = dir.done;
  if (dir.err != Errno::kOk) return dir.err;
  if (dir.inode->kind != static_cast<std::uint16_t>(InodeKind::kDirectory)) {
    return Errno::kENOTDIR;
  }
  const std::uint64_t nblocks =
      (dir.inode->size_bytes + kFsBlockSize - 1) / kFsBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    Errno err = Errno::kOk;
    const std::uint32_t blk = bmap(t, *dir.inode, dir_ino, fb, false, err);
    if (err != Errno::kOk) return err;
    if (blk == 0) continue;
    CacheRead cr = load_block(t, blk);
    t = cr.done;
    if (cr.err != Errno::kOk) return cr.err;
    const auto* ents =
        reinterpret_cast<const DirentDisk*>(cr.block->data.data());
    for (std::uint32_t i = 0; i < kDirentsPerBlock; ++i) {
      const DirentDisk& e = ents[i];
      if (e.inode == 0) continue;
      if (e.name_len == name.size() &&
          std::memcmp(e.name, name.data(), name.size()) == 0) {
        *out = e.inode;
        return Errno::kOk;
      }
    }
  }
  return Errno::kENOENT;
}

Errno ExtFs::dir_insert(sim::SimTime& t, std::uint32_t dir_ino,
                        std::string_view name, std::uint32_t ino,
                        InodeKind kind) {
  InodeRef dir = load_inode(t, dir_ino);
  t = dir.done;
  if (dir.err != Errno::kOk) return dir.err;
  const std::uint64_t nblocks =
      (dir.inode->size_bytes + kFsBlockSize - 1) / kFsBlockSize;
  // Look for a free slot in existing blocks.
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    Errno err = Errno::kOk;
    const std::uint32_t blk = bmap(t, *dir.inode, dir_ino, fb, false, err);
    if (err != Errno::kOk) return err;
    if (blk == 0) continue;
    CacheRead cr = load_block(t, blk);
    t = cr.done;
    if (cr.err != Errno::kOk) return cr.err;
    auto* ents = reinterpret_cast<DirentDisk*>(cr.block->data.data());
    for (std::uint32_t i = 0; i < kDirentsPerBlock; ++i) {
      if (ents[i].inode == 0) {
        ents[i].inode = ino;
        ents[i].name_len = static_cast<std::uint8_t>(name.size());
        ents[i].kind = static_cast<std::uint8_t>(kind);
        std::memset(ents[i].name, 0, sizeof(ents[i].name));
        std::memcpy(ents[i].name, name.data(), name.size());
        mark_dirty(blk);
        return Errno::kOk;
      }
    }
  }
  // Extend the directory with a fresh block.
  Errno err = Errno::kOk;
  const std::uint32_t blk = bmap(t, *dir.inode, dir_ino, nblocks, true, err);
  if (err != Errno::kOk) return err;
  CachedBlock cb;
  cb.data.assign(kFsBlockSize, std::byte{0});
  cache_[blk] = std::move(cb);
  auto* ents = reinterpret_cast<DirentDisk*>(cache_[blk].data.data());
  ents[0].inode = ino;
  ents[0].name_len = static_cast<std::uint8_t>(name.size());
  ents[0].kind = static_cast<std::uint8_t>(kind);
  std::memcpy(ents[0].name, name.data(), name.size());
  mark_dirty(blk);
  dir.inode->size_bytes += kFsBlockSize;
  mark_dirty(dir.block_no);
  return Errno::kOk;
}

Errno ExtFs::dir_remove(sim::SimTime& t, std::uint32_t dir_ino,
                        std::string_view name) {
  InodeRef dir = load_inode(t, dir_ino);
  t = dir.done;
  if (dir.err != Errno::kOk) return dir.err;
  const std::uint64_t nblocks =
      (dir.inode->size_bytes + kFsBlockSize - 1) / kFsBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    Errno err = Errno::kOk;
    const std::uint32_t blk = bmap(t, *dir.inode, dir_ino, fb, false, err);
    if (err != Errno::kOk) return err;
    if (blk == 0) continue;
    CacheRead cr = load_block(t, blk);
    t = cr.done;
    if (cr.err != Errno::kOk) return cr.err;
    auto* ents = reinterpret_cast<DirentDisk*>(cr.block->data.data());
    for (std::uint32_t i = 0; i < kDirentsPerBlock; ++i) {
      DirentDisk& e = ents[i];
      if (e.inode != 0 && e.name_len == name.size() &&
          std::memcmp(e.name, name.data(), name.size()) == 0) {
        e = DirentDisk{};
        mark_dirty(blk);
        return Errno::kOk;
      }
    }
  }
  return Errno::kENOENT;
}

Errno ExtFs::dir_empty(sim::SimTime& t, std::uint32_t dir_ino, bool* out) {
  *out = true;
  InodeRef dir = load_inode(t, dir_ino);
  t = dir.done;
  if (dir.err != Errno::kOk) return dir.err;
  const std::uint64_t nblocks =
      (dir.inode->size_bytes + kFsBlockSize - 1) / kFsBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    Errno err = Errno::kOk;
    const std::uint32_t blk = bmap(t, *dir.inode, dir_ino, fb, false, err);
    if (err != Errno::kOk) return err;
    if (blk == 0) continue;
    CacheRead cr = load_block(t, blk);
    t = cr.done;
    if (cr.err != Errno::kOk) return cr.err;
    const auto* ents =
        reinterpret_cast<const DirentDisk*>(cr.block->data.data());
    for (std::uint32_t i = 0; i < kDirentsPerBlock; ++i) {
      if (ents[i].inode != 0) {
        *out = false;
        return Errno::kOk;
      }
    }
  }
  return Errno::kOk;
}

ExtFs::PathTarget ExtFs::resolve(sim::SimTime now, std::string_view path) {
  PathTarget r;
  r.done = now;
  std::vector<std::string_view> parts;
  if (!split_path(path, parts)) {
    r.err = path.size() > 0 && path.front() == '/' ? Errno::kENAMETOOLONG
                                                   : Errno::kEINVAL;
    return r;
  }
  sim::SimTime t = now + config_.op_cpu_cost;
  if (parts.empty()) {  // "/"
    r.parent = 0;
    r.inode = kRootInode;
    r.done = t;
    return r;
  }
  std::uint32_t cur = kRootInode;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    std::uint32_t next = 0;
    Errno err = dir_find(t, cur, parts[i], &next);
    if (err != Errno::kOk) {
      r.err = err;
      r.done = t;
      return r;
    }
    InodeRef ref = load_inode(t, next);
    t = ref.done;
    if (ref.err != Errno::kOk) {
      r.err = ref.err;
      r.done = t;
      return r;
    }
    if (ref.inode->kind !=
        static_cast<std::uint16_t>(InodeKind::kDirectory)) {
      r.err = Errno::kENOTDIR;
      r.done = t;
      return r;
    }
    cur = next;
  }
  r.parent = cur;
  r.leaf = std::string(parts.back());
  std::uint32_t leaf_ino = 0;
  Errno err = dir_find(t, cur, parts.back(), &leaf_ino);
  if (err == Errno::kOk) {
    r.inode = leaf_ino;
  } else if (err != Errno::kENOENT) {
    r.err = err;
  }
  r.done = t;
  return r;
}

// ===========================================================================
// Namespace API

FsResult ExtFs::create(sim::SimTime now, std::string_view path,
                       std::uint32_t* inode_out) {
  if (read_only_at(now)) return FsResult{Errno::kEROFS, now};
  PathTarget pt = resolve(now, path);
  if (pt.err != Errno::kOk) return FsResult{pt.err, pt.done};
  if (pt.inode != 0) return FsResult{Errno::kEEXIST, pt.done};
  sim::SimTime t = pt.done;
  Errno err = Errno::kOk;
  const std::uint32_t ino = alloc_inode(t, err);
  if (err != Errno::kOk) return FsResult{err, t};
  InodeRef ref = load_inode(t, ino);
  t = ref.done;
  if (ref.err != Errno::kOk) return FsResult{ref.err, t};
  *ref.inode = InodeDisk{};
  ref.inode->kind = static_cast<std::uint16_t>(InodeKind::kFile);
  ref.inode->link_count = 1;
  ref.inode->mtime_ns = static_cast<std::uint64_t>(t.ns());
  mark_dirty(ref.block_no);
  err = dir_insert(t, pt.parent, pt.leaf, ino, InodeKind::kFile);
  if (err != Errno::kOk) return FsResult{err, t};
  if (inode_out) *inode_out = ino;
  return FsResult{Errno::kOk, t};
}

FsResult ExtFs::mkdir(sim::SimTime now, std::string_view path) {
  if (read_only_at(now)) return FsResult{Errno::kEROFS, now};
  PathTarget pt = resolve(now, path);
  if (pt.err != Errno::kOk) return FsResult{pt.err, pt.done};
  if (pt.inode != 0) return FsResult{Errno::kEEXIST, pt.done};
  if (pt.leaf.empty()) return FsResult{Errno::kEEXIST, pt.done};  // "/"
  sim::SimTime t = pt.done;
  Errno err = Errno::kOk;
  const std::uint32_t ino = alloc_inode(t, err);
  if (err != Errno::kOk) return FsResult{err, t};
  InodeRef ref = load_inode(t, ino);
  t = ref.done;
  if (ref.err != Errno::kOk) return FsResult{ref.err, t};
  *ref.inode = InodeDisk{};
  ref.inode->kind = static_cast<std::uint16_t>(InodeKind::kDirectory);
  ref.inode->link_count = 2;
  ref.inode->mtime_ns = static_cast<std::uint64_t>(t.ns());
  mark_dirty(ref.block_no);
  err = dir_insert(t, pt.parent, pt.leaf, ino, InodeKind::kDirectory);
  if (err != Errno::kOk) return FsResult{err, t};
  return FsResult{Errno::kOk, t};
}

FsResult ExtFs::unlink(sim::SimTime now, std::string_view path) {
  if (read_only_at(now)) return FsResult{Errno::kEROFS, now};
  PathTarget pt = resolve(now, path);
  if (pt.err != Errno::kOk) return FsResult{pt.err, pt.done};
  if (pt.inode == 0) return FsResult{Errno::kENOENT, pt.done};
  if (pt.inode == kRootInode) return FsResult{Errno::kEINVAL, pt.done};
  sim::SimTime t = pt.done;
  InodeRef ref = load_inode(t, pt.inode);
  t = ref.done;
  if (ref.err != Errno::kOk) return FsResult{ref.err, t};
  if (ref.inode->kind == static_cast<std::uint16_t>(InodeKind::kDirectory)) {
    bool empty = false;
    Errno err = dir_empty(t, pt.inode, &empty);
    if (err != Errno::kOk) return FsResult{err, t};
    if (!empty) return FsResult{Errno::kENOTEMPTY, t};
  }
  // Drop cached pages belonging to the victim.
  drop_inode_pages(pt.inode);
  Errno err = release_blocks(t, *ref.inode, pt.inode);
  if (err != Errno::kOk) return FsResult{err, t};
  ref.inode->kind = static_cast<std::uint16_t>(InodeKind::kFree);
  ref.inode->link_count = 0;
  ref.inode->size_bytes = 0;
  mark_dirty(ref.block_no);
  err = free_inode(t, pt.inode);
  if (err != Errno::kOk) return FsResult{err, t};
  err = dir_remove(t, pt.parent, pt.leaf);
  if (err != Errno::kOk) return FsResult{err, t};
  return FsResult{Errno::kOk, t};
}

FsResult ExtFs::rename(sim::SimTime now, std::string_view from,
                       std::string_view to) {
  if (read_only_at(now)) return FsResult{Errno::kEROFS, now};
  PathTarget src = resolve(now, from);
  if (src.err != Errno::kOk) return FsResult{src.err, src.done};
  if (src.inode == 0) return FsResult{Errno::kENOENT, src.done};
  if (src.inode == kRootInode) return FsResult{Errno::kEINVAL, src.done};
  PathTarget dst = resolve(src.done, to);
  if (dst.err != Errno::kOk) return FsResult{dst.err, dst.done};
  if (dst.leaf.empty()) return FsResult{Errno::kEEXIST, dst.done};  // "/"
  sim::SimTime t = dst.done;

  InodeRef ref = load_inode(t, src.inode);
  t = ref.done;
  if (ref.err != Errno::kOk) return FsResult{ref.err, t};
  const auto kind = static_cast<InodeKind>(ref.inode->kind);

  if (dst.inode != 0) {
    if (dst.inode == src.inode) return FsResult{Errno::kOk, t};
    InodeRef victim = load_inode(t, dst.inode);
    t = victim.done;
    if (victim.err != Errno::kOk) return FsResult{victim.err, t};
    if (victim.inode->kind ==
        static_cast<std::uint16_t>(InodeKind::kDirectory)) {
      return FsResult{Errno::kEEXIST, t};
    }
    // Replace: free the victim file.
    drop_inode_pages(dst.inode);
    Errno err = release_blocks(t, *victim.inode, dst.inode);
    if (err != Errno::kOk) return FsResult{err, t};
    victim.inode->kind = static_cast<std::uint16_t>(InodeKind::kFree);
    victim.inode->link_count = 0;
    victim.inode->size_bytes = 0;
    mark_dirty(victim.block_no);
    err = free_inode(t, dst.inode);
    if (err != Errno::kOk) return FsResult{err, t};
    err = dir_remove(t, dst.parent, dst.leaf);
    if (err != Errno::kOk) return FsResult{err, t};
  }

  Errno err = dir_insert(t, dst.parent, dst.leaf, src.inode, kind);
  if (err != Errno::kOk) return FsResult{err, t};
  err = dir_remove(t, src.parent, src.leaf);
  if (err != Errno::kOk) return FsResult{err, t};
  return FsResult{Errno::kOk, t};
}

FsLookupResult ExtFs::lookup(sim::SimTime now, std::string_view path) {
  FsLookupResult r;
  PathTarget pt = resolve(now, path);
  r.done = pt.done;
  if (pt.err != Errno::kOk) {
    r.err = pt.err;
    return r;
  }
  if (pt.inode == 0) {
    r.err = Errno::kENOENT;
    return r;
  }
  r.inode = pt.inode;
  return r;
}

FsReaddirResult ExtFs::readdir(sim::SimTime now, std::string_view path) {
  FsReaddirResult r;
  PathTarget pt = resolve(now, path);
  r.done = pt.done;
  if (pt.err != Errno::kOk) {
    r.err = pt.err;
    return r;
  }
  if (pt.inode == 0) {
    r.err = Errno::kENOENT;
    return r;
  }
  sim::SimTime t = pt.done;
  InodeRef dir = load_inode(t, pt.inode);
  t = dir.done;
  if (dir.err != Errno::kOk) {
    r.err = dir.err;
    r.done = t;
    return r;
  }
  if (dir.inode->kind != static_cast<std::uint16_t>(InodeKind::kDirectory)) {
    r.err = Errno::kENOTDIR;
    r.done = t;
    return r;
  }
  const std::uint64_t nblocks =
      (dir.inode->size_bytes + kFsBlockSize - 1) / kFsBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    Errno err = Errno::kOk;
    const std::uint32_t blk = bmap(t, *dir.inode, pt.inode, fb, false, err);
    if (err != Errno::kOk) {
      r.err = err;
      r.done = t;
      return r;
    }
    if (blk == 0) continue;
    CacheRead cr = load_block(t, blk);
    t = cr.done;
    if (cr.err != Errno::kOk) {
      r.err = cr.err;
      r.done = t;
      return r;
    }
    const auto* ents =
        reinterpret_cast<const DirentDisk*>(cr.block->data.data());
    for (std::uint32_t i = 0; i < kDirentsPerBlock; ++i) {
      const DirentDisk& e = ents[i];
      if (e.inode == 0) continue;
      r.entries.push_back(FsDirEntry{
          std::string(e.name, e.name_len), e.inode,
          static_cast<InodeKind>(e.kind)});
    }
  }
  r.done = t;
  return r;
}

FsStatResult ExtFs::stat(sim::SimTime now, std::uint32_t inode) {
  FsStatResult r;
  InodeRef ref = load_inode(now, inode);
  r.done = ref.done;
  if (ref.err != Errno::kOk) {
    r.err = ref.err;
    return r;
  }
  r.kind = static_cast<InodeKind>(ref.inode->kind);
  r.size = ref.inode->size_bytes;
  r.link_count = ref.inode->link_count;
  return r;
}

// ===========================================================================
// File I/O

FsIoResult ExtFs::write(sim::SimTime now, std::uint32_t inode,
                        std::uint64_t offset,
                        std::span<const std::byte> data) {
  FsIoResult r;
  r.done = now;
  if (read_only_at(now)) {
    r.err = Errno::kEROFS;
    return r;
  }
  sim::SimTime t = now + config_.op_cpu_cost;
  InodeRef ref = load_inode(t, inode);
  t = ref.done;
  if (ref.err != Errno::kOk) {
    r.err = ref.err;
    r.done = t;
    return r;
  }
  if (ref.inode->kind != static_cast<std::uint16_t>(InodeKind::kFile)) {
    r.err = Errno::kEISDIR;
    r.done = t;
    return r;
  }

  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t fblock = pos / kFsBlockSize;
    const std::uint32_t in_page = static_cast<std::uint32_t>(pos % kFsBlockSize);
    const std::size_t n =
        std::min<std::size_t>(kFsBlockSize - in_page, data.size() - consumed);
    const std::uint64_t key = page_key(inode, fblock);
    DirtyPage* page_ptr = nullptr;
    if (hot_page_ != nullptr && hot_page_key_ == key) {
      page_ptr = hot_page_;
    } else {
      auto it = dirty_pages_.find(key);
      if (it == dirty_pages_.end()) {
        DirtyPage page{inode, fblock, {}};
        // Base content: clean page cache if present, else read-modify-write
        // from the device (only for partial overwrites of mapped blocks).
        auto clean_it = clean_pages_.find(key);
        if (clean_it != clean_pages_.end()) {
          page.data = std::move(clean_it->second);
          clean_pages_.erase(clean_it);
          clean_bytes_ -= kFsBlockSize;
        } else {
          page.data.assign(kFsBlockSize, std::byte{0});
          const bool partial = in_page != 0 || n != kFsBlockSize;
          if (partial) {
            Errno err = Errno::kOk;
            const std::uint32_t blk = bmap(t, *ref.inode, inode, fblock, false,
                                           err);
            if (err != Errno::kOk) {
              r.err = err;
              r.done = t;
              return r;
            }
            if (blk != 0) {
              BlockIo io = dev_.read(
                  t, static_cast<std::uint64_t>(blk) * kFsSectorsPerBlock,
                  kFsSectorsPerBlock, page.data);
              t = io.complete;
              if (!io.ok()) {
                r.err = Errno::kEIO;
                r.done = t;
                return r;
              }
            }
          }
        }
        it = dirty_pages_.emplace(key, std::move(page)).first;
        dirty_fifo_.push_back(key);
        dirty_bytes_ += kFsBlockSize;
      }
      hot_page_key_ = key;
      hot_page_ = &it->second;
      page_ptr = hot_page_;
    }
    std::memcpy(page_ptr->data.data() + in_page, data.data() + consumed, n);
    // Ensure the block is mapped now so metadata changes ride the same
    // transaction as the data they describe.
    Errno err = Errno::kOk;
    bmap(t, *ref.inode, inode, fblock, true, err);
    if (err != Errno::kOk) {
      r.err = err;
      r.done = t;
      return r;
    }
    pos += n;
    consumed += n;
  }

  if (pos > ref.inode->size_bytes) {
    ref.inode->size_bytes = pos;
  }
  ref.inode->mtime_ns = static_cast<std::uint64_t>(t.ns());
  mark_dirty(ref.block_no);

  // Dirty throttling: block the writer while over the limit.
  if (dirty_bytes_ > config_.dirty_limit_bytes) {
    ++stats_.throttle_stalls;
    const std::uint64_t target = config_.dirty_limit_bytes * 9 / 10;
    Errno err = writeback_some(t, dirty_bytes_ - target);
    if (err != Errno::kOk) {
      r.err = err;
      r.done = t;
      r.bytes = consumed;
      return r;
    }
  }

  // Oversized running transaction: commit inline.
  if (txn_blocks_.size() >= config_.txn_block_limit) {
    FsResult cr = do_commit(t);
    t = cr.done;
    if (!cr.ok()) {
      r.err = cr.err;
      r.done = t;
      r.bytes = consumed;
      return r;
    }
  }

  r.bytes = consumed;
  r.done = t;
  return r;
}

FsIoResult ExtFs::read(sim::SimTime now, std::uint32_t inode,
                       std::uint64_t offset, std::span<std::byte> out) {
  FsIoResult r;
  sim::SimTime t = now + config_.op_cpu_cost;
  InodeRef ref = load_inode(t, inode);
  t = ref.done;
  if (ref.err != Errno::kOk) {
    r.err = ref.err;
    r.done = t;
    return r;
  }
  if (ref.inode->kind != static_cast<std::uint16_t>(InodeKind::kFile)) {
    r.err = Errno::kEISDIR;
    r.done = t;
    return r;
  }
  const std::uint64_t size = ref.inode->size_bytes;
  if (offset >= size) {
    r.done = t;
    return r;  // EOF: zero bytes
  }
  std::uint64_t pos = offset;
  const std::uint64_t want =
      std::min<std::uint64_t>(out.size(), size - offset);
  std::size_t produced = 0;
  if (read_scratch_.size() != kFsBlockSize) read_scratch_.resize(kFsBlockSize);
  std::vector<std::byte>& temp = read_scratch_;
  while (produced < want) {
    const std::uint64_t fblock = pos / kFsBlockSize;
    const std::uint32_t in_page = static_cast<std::uint32_t>(pos % kFsBlockSize);
    const std::size_t n =
        std::min<std::size_t>(kFsBlockSize - in_page, want - produced);
    const std::uint64_t key = page_key(inode, fblock);
    const DirtyPage* dirty = nullptr;
    if (hot_page_ != nullptr && hot_page_key_ == key) {
      dirty = hot_page_;
    } else if (const auto it = dirty_pages_.find(key);
               it != dirty_pages_.end()) {
      dirty = &it->second;
    }
    if (dirty != nullptr) {
      std::memcpy(out.data() + produced, dirty->data.data() + in_page, n);
    } else if (const auto cit = clean_pages_.find(key);
               cit != clean_pages_.end()) {
      std::memcpy(out.data() + produced, cit->second.data() + in_page, n);
    } else {
      Errno err = Errno::kOk;
      const std::uint32_t blk = bmap(t, *ref.inode, inode, fblock, false,
                                     err);
      if (err != Errno::kOk) {
        r.err = err;
        r.done = t;
        r.bytes = produced;
        return r;
      }
      if (blk == 0) {
        std::memset(out.data() + produced, 0, n);
      } else {
        BlockIo io = dev_.read(
            t, static_cast<std::uint64_t>(blk) * kFsSectorsPerBlock,
            kFsSectorsPerBlock, temp);
        t = io.complete;
        if (!io.ok()) {
          r.err = Errno::kEIO;
          r.done = t;
          r.bytes = produced;
          return r;
        }
        clean_insert(key, temp);
        std::memcpy(out.data() + produced, temp.data() + in_page, n);
      }
    }
    pos += n;
    produced += n;
  }
  r.bytes = produced;
  r.done = t;
  return r;
}

FsResult ExtFs::truncate(sim::SimTime now, std::uint32_t inode,
                         std::uint64_t new_size) {
  if (read_only_at(now)) return FsResult{Errno::kEROFS, now};
  sim::SimTime t = now + config_.op_cpu_cost;
  InodeRef ref = load_inode(t, inode);
  t = ref.done;
  if (ref.err != Errno::kOk) return FsResult{ref.err, t};
  if (ref.inode->kind != static_cast<std::uint16_t>(InodeKind::kFile)) {
    return FsResult{Errno::kEISDIR, t};
  }
  if (new_size == 0) {
    drop_inode_pages(inode);
    Errno err = release_blocks(t, *ref.inode, inode);
    if (err != Errno::kOk) return FsResult{err, t};
  }
  // Shrink-to-nonzero keeps blocks (lazy); grow is sparse.
  ref.inode->size_bytes = new_size;
  ref.inode->mtime_ns = static_cast<std::uint64_t>(t.ns());
  mark_dirty(ref.block_no);
  return FsResult{Errno::kOk, t};
}

Errno ExtFs::release_blocks(sim::SimTime& t, InodeDisk& inode,
                            std::uint32_t ino) {
  Errno err = Errno::kOk;
  auto free_data = [&](std::uint32_t blk) -> Errno {
    if (blk == 0) return Errno::kOk;
    return free_block(t, blk);
  };
  for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
    err = free_data(inode.direct[i]);
    if (err != Errno::kOk) return err;
    inode.direct[i] = 0;
  }
  auto free_ptr_block = [&](std::uint32_t pb) -> Errno {
    if (pb == 0) return Errno::kOk;
    CacheRead cr = load_block(t, pb);
    t = cr.done;
    if (cr.err != Errno::kOk) return cr.err;
    const auto* ptrs =
        reinterpret_cast<const std::uint32_t*>(cr.block->data.data());
    for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      Errno e = free_data(ptrs[i]);
      if (e != Errno::kOk) return e;
    }
    return free_block(t, pb);
  };
  err = free_ptr_block(inode.indirect);
  if (err != Errno::kOk) return err;
  inode.indirect = 0;
  if (inode.double_indirect != 0) {
    CacheRead cr = load_block(t, inode.double_indirect);
    t = cr.done;
    if (cr.err != Errno::kOk) return cr.err;
    // Copy the outer pointers: freeing inner blocks mutates the cache.
    std::vector<std::uint32_t> outer(kPtrsPerBlock);
    std::memcpy(outer.data(), cr.block->data.data(),
                kPtrsPerBlock * sizeof(std::uint32_t));
    for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      err = free_ptr_block(outer[i]);
      if (err != Errno::kOk) return err;
    }
    err = free_block(t, inode.double_indirect);
    if (err != Errno::kOk) return err;
    inode.double_indirect = 0;
  }
  const std::uint32_t inode_block =
      sb_.inode_table_start + ino / kInodesPerBlock;
  mark_dirty(inode_block);
  return Errno::kOk;
}

// ===========================================================================
// Writeback & fsync

Errno ExtFs::writeback_page(sim::SimTime& t, std::uint64_t key) {
  auto it = dirty_pages_.find(key);
  if (it == dirty_pages_.end()) return Errno::kOk;
  DirtyPage& page = it->second;
  InodeRef ref = load_inode(t, page.ino);
  if (ref.err != Errno::kOk) return ref.err;
  t = ref.done;
  Errno err = Errno::kOk;
  const std::uint32_t blk =
      bmap(t, *ref.inode, page.ino, page.fblock, true, err);
  if (err != Errno::kOk) return err;
  BlockIo io =
      dev_.write(t, static_cast<std::uint64_t>(blk) * kFsSectorsPerBlock,
                 kFsSectorsPerBlock, page.data);
  t = io.complete;
  // Drop the dirty page either way: a failed data write is a buffer I/O
  // error, not a journal abort (data=ordered semantics). On success the
  // page stays cached clean.
  if (io.ok()) clean_insert(key, std::move(page.data));
  dirty_bytes_ -= kFsBlockSize;
  hot_page_ = nullptr;  // the hot pointer may reference the erased node
  dirty_pages_.erase(it);
  ++stats_.data_pages_written;
  if (!io.ok() && uncommitted_allocs_.count(blk) != 0) {
    // The dropped page's block was allocated under the still-running
    // transaction, so the mapping that references it has not committed.
    // Letting a later commit publish that metadata would expose a block
    // whose data never reached the device — on a reused block, the
    // previous file's content resurrects under the new name. Record the
    // violation; the next commit finds it (jbd2 keeps such errors sticky
    // on the mapping and checks them at commit) and aborts instead of
    // publishing the mapping. (A failed overwrite of a long-committed
    // block stays a plain buffer I/O error above — only the durability
    // of the new bytes is lost, never the mapping's integrity.)
    ordered_data_lost_ = true;
  }
  return io.ok() ? Errno::kOk : Errno::kEIO;
}

Errno ExtFs::writeback_some(sim::SimTime& t, std::uint64_t max_bytes) {
  std::uint64_t written = 0;
  while (written < max_bytes && !dirty_fifo_.empty()) {
    const std::uint64_t key = dirty_fifo_.front();
    dirty_fifo_.pop_front();
    if (dirty_pages_.find(key) == dirty_pages_.end()) continue;
    Errno err = writeback_page(t, key);
    if (err != Errno::kOk) return err;
    written += kFsBlockSize;
  }
  return Errno::kOk;
}

Errno ExtFs::writeback_inode(sim::SimTime& t, std::uint32_t ino) {
  // Collect this inode's dirty pages (FIFO order preserved for the rest).
  std::vector<std::uint64_t> keys;
  for (auto key : dirty_fifo_) {
    if ((key >> 32) == ino) keys.push_back(key);
  }
  for (auto key : keys) {
    Errno err = writeback_page(t, key);
    if (err != Errno::kOk) return err;
  }
  return Errno::kOk;
}

FsResult ExtFs::fsync(sim::SimTime now, std::uint32_t inode) {
  if (read_only_at(now)) return FsResult{Errno::kEIO, now};
  sim::SimTime t = now + config_.op_cpu_cost;
  Errno err = writeback_inode(t, inode);
  if (err != Errno::kOk) return FsResult{err, t};
  if (!txn_blocks_.empty()) {
    FsResult cr = do_commit(t);
    if (!cr.ok()) return cr;
    t = cr.done;
  }
  BlockIo io = dev_.flush(t);
  t = io.complete;
  if (!io.ok()) return FsResult{Errno::kEIO, t};
  return FsResult{Errno::kOk, t};
}

// ===========================================================================
// Commit

bool ExtFs::commit_due(sim::SimTime now) const {
  if (read_only_) return false;
  if (txn_blocks_.empty() && dirty_bytes_ == 0) return false;
  return now - last_commit_ >= config_.commit_interval;
}

FsResult ExtFs::commit(sim::SimTime now) { return do_commit(now); }

FsResult ExtFs::do_commit(sim::SimTime now) {
  if (read_only_) return FsResult{Errno::kEIO, now};
  sim::SimTime t = now;

  // Ordered mode: file data reaches the device before the metadata that
  // references it is committed. A data writeback failure at commit time
  // means the transaction cannot honour ordered-mode semantics; like
  // jbd2, the journal aborts with -EIO.
  Errno err = writeback_some(t, ~0ull);
  if (err != Errno::kOk) {
    abort_fs(errno_code(Errno::kEIO), t);
    return FsResult{Errno::kEIO, t};
  }
  // A page backing a freshly-allocated block was dropped by an earlier
  // writeback failure; committing now would publish its mapping anyway.
  // See writeback_page.
  if (ordered_data_lost_) {
    abort_fs(errno_code(Errno::kEIO), t);
    return FsResult{Errno::kEIO, t};
  }

  if (txn_blocks_.empty()) {
    uncommitted_allocs_.clear();
    last_commit_ = t;
    return FsResult{Errno::kOk, t};
  }

  std::vector<JournalBlock> blocks;
  blocks.reserve(txn_blocks_.size());
  for (std::uint32_t b : txn_blocks_) {
    auto it = cache_.find(b);
    assert(it != cache_.end());
    blocks.push_back(JournalBlock{b, it->second.data});
  }
  JournalResult jr = journal_->commit(t, blocks);
  if (!jr.ok()) {
    abort_fs(journal_->abort_code(), jr.done);
    return FsResult{Errno::kEIO, jr.done};
  }
  t = jr.done;

  // Checkpoint home.
  for (std::uint32_t b : txn_blocks_) {
    auto it = cache_.find(b);
    BlockIo io =
        dev_.write(t, static_cast<std::uint64_t>(b) * kFsSectorsPerBlock,
                   kFsSectorsPerBlock, it->second.data);
    t = io.complete;
    if (!io.ok()) {
      abort_fs(errno_code(Errno::kEIO), t);
      return FsResult{Errno::kEIO, t};
    }
    it->second.dirty = false;
    ++stats_.checkpoint_blocks;
  }
  BlockIo io = dev_.flush(t);
  t = io.complete;
  if (!io.ok()) {
    abort_fs(errno_code(Errno::kEIO), t);
    return FsResult{Errno::kEIO, t};
  }
  txn_blocks_.clear();
  uncommitted_allocs_.clear();
  ++stats_.commits;
  last_commit_ = t;
  return FsResult{Errno::kOk, t};
}

void ExtFs::abort_fs(int code, sim::SimTime when) {
  if (read_only_) return;
  read_only_ = true;
  error_code_ = code != 0 ? code : errno_code(Errno::kEIO);
  abort_time_ = when;
}

FsResult ExtFs::writeback(sim::SimTime now, std::uint64_t max_bytes) {
  sim::SimTime t = now;
  Errno err = writeback_some(t, max_bytes);
  return FsResult{err, t};
}

FsResult ExtFs::sync(sim::SimTime now) {
  FsResult cr = do_commit(now);
  if (!cr.ok()) return cr;
  BlockIo io = dev_.flush(cr.done);
  if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
  return FsResult{Errno::kOk, io.complete};
}

FsResult ExtFs::unmount(sim::SimTime now) {
  FsResult sr = sync(now);
  if (!sr.ok()) return sr;
  sim::SimTime t = sr.done;
  sb_.clean = 1;
  sb_.journal_sequence = journal_->next_sequence();
  sb_.error_code = error_code_;
  Errno err = write_superblock(t);
  if (err != Errno::kOk) return FsResult{err, t};
  return FsResult{Errno::kOk, t};
}

void ExtFs::clean_insert(std::uint64_t key, std::vector<std::byte> data) {
  auto it = clean_pages_.find(key);
  if (it != clean_pages_.end()) {
    it->second = std::move(data);
    return;
  }
  clean_pages_.emplace(key, std::move(data));
  clean_fifo_.push_back(key);
  clean_bytes_ += kFsBlockSize;
  while (clean_bytes_ > config_.page_cache_bytes && !clean_fifo_.empty()) {
    const std::uint64_t victim = clean_fifo_.front();
    clean_fifo_.pop_front();
    if (clean_pages_.erase(victim) != 0) clean_bytes_ -= kFsBlockSize;
  }
}

void ExtFs::drop_inode_pages(std::uint32_t ino) {
  hot_page_ = nullptr;
  std::deque<std::uint64_t> kept;
  for (auto key : dirty_fifo_) {
    if ((key >> 32) == ino) {
      auto it = dirty_pages_.find(key);
      if (it != dirty_pages_.end()) {
        dirty_bytes_ -= kFsBlockSize;
        dirty_pages_.erase(it);
      }
    } else {
      kept.push_back(key);
    }
  }
  dirty_fifo_ = std::move(kept);
  std::deque<std::uint64_t> kept_clean;
  for (auto key : clean_fifo_) {
    if ((key >> 32) == ino) {
      if (clean_pages_.erase(key) != 0) clean_bytes_ -= kFsBlockSize;
    } else {
      kept_clean.push_back(key);
    }
  }
  clean_fifo_ = std::move(kept_clean);
}

}  // namespace deepnote::storage
