// Error codes for the storage stack.
//
// Values mirror the Linux errno numbers so failure reports read like the
// paper's observations (e.g. the Ext4 journal aborting "with error -5").
#pragma once

namespace deepnote::storage {

enum class Errno : int {
  kOk = 0,
  kENOENT = 2,    ///< no such file or directory
  kEIO = 5,       ///< I/O error (the JBD abort code in the paper)
  kEBADF = 9,     ///< bad file handle
  kEAGAIN = 11,   ///< resource temporarily unavailable (write stall)
  kEEXIST = 17,   ///< file exists
  kENOTDIR = 20,  ///< not a directory
  kEISDIR = 21,   ///< is a directory
  kEINVAL = 22,   ///< invalid argument
  kENOSPC = 28,   ///< no space left on device
  kEROFS = 30,    ///< read-only filesystem (after journal abort)
  kENAMETOOLONG = 36,
  kENOTEMPTY = 39,
};

/// Linux-style signed code (kEIO -> -5).
constexpr int errno_code(Errno e) { return -static_cast<int>(e); }

const char* errno_name(Errno e);

}  // namespace deepnote::storage
