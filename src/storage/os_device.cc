#include "storage/os_device.h"

namespace deepnote::storage {

OsBlockDevice::OsBlockDevice(hdd::Hdd& drive, OsDeviceConfig config)
    : drive_(drive), config_(config) {}

std::uint64_t OsBlockDevice::total_sectors() const {
  return drive_.geometry().total_sectors();
}

BlockIo OsBlockDevice::run_command(sim::SimTime now, OpKind kind,
                                   std::uint64_t lba,
                                   std::uint32_t sector_count,
                                   std::span<std::byte> out,
                                   std::span<const std::byte> in) {
  ++stats_.commands;
  sim::SimTime t = now;
  for (std::uint32_t attempt = 0; attempt < config_.attempts; ++attempt) {
    const sim::SimTime deadline = t + config_.command_timeout;
    hdd::IoResult r;
    switch (kind) {
      case OpKind::kRead:
        r = drive_.read(t, lba, sector_count, out, deadline);
        break;
      case OpKind::kWrite:
        r = drive_.write(t, lba, sector_count, in, deadline);
        break;
      case OpKind::kFlush:
        r = drive_.flush(t, deadline);
        break;
    }
    if (r.status == hdd::IoStatus::kOk) {
      return BlockIo{BlockStatus::kOk, r.complete};
    }
    if (r.status == hdd::IoStatus::kMediaError) {
      // The drive reported a hard error before the timer fired; retry
      // immediately from the error completion time.
      t = r.complete;
      continue;
    }
    // Command timer expired (hung drive, or a completion beyond the
    // deadline): error handler resets the device and retries.
    ++stats_.timeouts;
    ++stats_.device_resets;
    t = deadline;
    drive_.reset(t);
  }
  ++stats_.buffer_io_errors;
  return BlockIo{BlockStatus::kIoError, t};
}

BlockIo OsBlockDevice::read(sim::SimTime now, std::uint64_t lba,
                            std::uint32_t sector_count,
                            std::span<std::byte> out) {
  return run_command(now, OpKind::kRead, lba, sector_count, out, {});
}

BlockIo OsBlockDevice::write(sim::SimTime now, std::uint64_t lba,
                             std::uint32_t sector_count,
                             std::span<const std::byte> in) {
  return run_command(now, OpKind::kWrite, lba, sector_count, {}, in);
}

BlockIo OsBlockDevice::flush(sim::SimTime now) {
  return run_command(now, OpKind::kFlush, 0, 0, {}, {});
}

}  // namespace deepnote::storage
