// Built-in CrashWorkloads for the fault harness (fault_harness.h):
//
//  * extfs_append_workload — append-only file workload on extfs over a
//    faulted MemDisk. After the crash: remount, every fsync-acked prefix
//    present, no unacked bytes visible beyond what a failed call could
//    have buffered, fsck clean after unmount.
//  * kvdb_workload — checksummed puts against kvdb on extfs over a
//    faulted MemDisk, durability barriers via Db::flush + ExtFs::sync.
//    After the crash: remount + WAL replay, every barrier-acked key at a
//    version >= the acked one, every visible value checksum-valid,
//    SST integrity + fsck clean.
//  * raid1_workload — the append workload on a RAID-1 pair whose first
//    member is faulted. The array must absorb the member failure: the
//    surviving mirror alone mounts, fscks clean, and serves every
//    acknowledged byte (no loss at all — the array never went down).
//
// The workloads' own op sequences are fixed by `workload_seed`
// (independent of the fault plan), so every schedule of one workload
// sees the same write stream and cut indices line up across variants.
#pragma once

#include <cstdint>

#include "storage/fault_harness.h"

namespace deepnote::storage {

struct AppendWorkloadOptions {
  std::uint32_t files = 3;
  std::uint32_t appends = 56;       ///< total appends, round-robin
  std::uint32_t max_append_bytes = 2500;  ///< keeps files in direct blocks
  std::uint32_t fsync_every = 2;    ///< fsync the written file every N
  std::uint32_t sync_every = 9;     ///< full ExtFs::sync every N
  std::uint64_t workload_seed = 0xf11e5ull;
};

WorkloadFactory extfs_append_workload(AppendWorkloadOptions options = {});

WorkloadFactory raid1_workload(AppendWorkloadOptions options = {});

struct JournalWorkloadOptions {
  std::uint32_t transactions = 2;  ///< committed generations after the seed
  /// Injected regression: the device lies about flush barriers (a
  /// write-cache firmware bug). The journal's commit protocol depends on
  /// its pre-commit barrier; only the harness's reorder variant can see
  /// the difference, so this knob is how the test suite proves the
  /// harness catches a real protocol bug with a replayable schedule.
  bool drop_flush_barriers = false;
};

/// Two-block journaled update through the real Journal: each generation
/// commits a matching (A, B) block pair, then checkpoints it home. After
/// the crash: replay on the healthy device, homes must hold the SAME
/// generation (atomicity), at least as new as the last acked commit.
WorkloadFactory journal_pair_workload(JournalWorkloadOptions options = {});

struct KvdbWorkloadOptions {
  std::uint32_t keys = 24;
  std::uint32_t puts = 160;
  std::uint32_t value_bytes = 40;
  std::uint32_t barrier_every = 25;  ///< Db::flush + ExtFs::sync cadence
  std::uint64_t workload_seed = 0x4b5eedull;
};

WorkloadFactory kvdb_workload(KvdbWorkloadOptions options = {});

}  // namespace deepnote::storage
