// Kernel block-layer model: command timeout, retries, error accounting.
//
// Wraps the HDD model the way the Linux SCSI/libata stack wraps a real
// drive: each command gets a timer; on expiry the error handler resets
// the device and retries; after the retry budget the command completes
// with an I/O error ("Buffer I/O error on device sdX" — the dmesg line
// the paper reports before the Ubuntu crash).
#pragma once

#include <cstdint>

#include "hdd/drive.h"
#include "storage/block_device.h"

namespace deepnote::storage {

struct OsDeviceConfig {
  /// SCSI command timer. Linux defaults to 30 s; the calibrated value in
  /// core/scenario.cc reproduces the paper's ~80 s crash cadence together
  /// with `attempts`.
  sim::Duration command_timeout = sim::Duration::from_seconds(25.0);
  /// Total tries per command (1 initial + retries after reset).
  std::uint32_t attempts = 3;
};

struct OsDeviceStats {
  std::uint64_t commands = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t device_resets = 0;
  std::uint64_t buffer_io_errors = 0;  ///< commands that ultimately failed
};

class OsBlockDevice final : public BlockDevice {
 public:
  /// Does not take ownership of the drive.
  OsBlockDevice(hdd::Hdd& drive, OsDeviceConfig config = {});

  std::uint64_t total_sectors() const override;

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;

  const OsDeviceStats& stats() const { return stats_; }
  const OsDeviceConfig& config() const { return config_; }
  hdd::Hdd& drive() { return drive_; }

 private:
  enum class OpKind { kRead, kWrite, kFlush };

  BlockIo run_command(sim::SimTime now, OpKind kind, std::uint64_t lba,
                      std::uint32_t sector_count, std::span<std::byte> out,
                      std::span<const std::byte> in);

  hdd::Hdd& drive_;
  OsDeviceConfig config_;
  OsDeviceStats stats_;
};

}  // namespace deepnote::storage
