#include "storage/server_os.h"

#include <vector>

namespace deepnote::storage {

ServerOs::ServerOs(ExtFs& rootfs, ServerOsConfig config)
    : fs_(rootfs), config_(config) {}

ServerOs::BootResult ServerOs::boot(sim::SimTime now) {
  BootResult out;
  sim::SimTime t = now;

  for (const char* dir : {"/bin", "/var", "/var/log"}) {
    FsResult r = fs_.mkdir(t, dir);
    if (!r.ok() && r.err != Errno::kEEXIST) {
      out.err = r.err;
      out.done = r.done;
      return out;
    }
    t = r.done;
  }

  FsResult cr = fs_.create(t, "/bin/ls", &ls_inode_);
  if (cr.err == Errno::kEEXIST) {
    FsLookupResult lr = fs_.lookup(t, "/bin/ls");
    if (!lr.ok()) {
      out.err = lr.err;
      out.done = lr.done;
      return out;
    }
    ls_inode_ = lr.inode;
    t = lr.done;
  } else if (!cr.ok()) {
    out.err = cr.err;
    out.done = cr.done;
    return out;
  } else {
    t = cr.done;
    // A plausible binary payload.
    std::vector<std::byte> body(48 << 10, std::byte{0x7f});
    FsIoResult wr = fs_.write(t, ls_inode_, 0, body);
    if (!wr.ok()) {
      out.err = wr.err;
      out.done = wr.done;
      return out;
    }
    t = wr.done;
  }

  cr = fs_.create(t, "/var/log/syslog", &syslog_inode_);
  if (cr.err == Errno::kEEXIST) {
    FsLookupResult lr = fs_.lookup(t, "/var/log/syslog");
    if (!lr.ok()) {
      out.err = lr.err;
      out.done = lr.done;
      return out;
    }
    syslog_inode_ = lr.inode;
    FsStatResult st = fs_.stat(lr.done, syslog_inode_);
    if (!st.ok()) {
      out.err = st.err;
      out.done = st.done;
      return out;
    }
    syslog_offset_ = st.size;
    t = st.done;
  } else if (!cr.ok()) {
    out.err = cr.err;
    out.done = cr.done;
    return out;
  } else {
    t = cr.done;
  }

  // First exec: load /bin/ls into the exec page cache.
  std::vector<std::byte> buf(4096);
  FsIoResult rr = fs_.read(t, ls_inode_, 0, buf);
  if (!rr.ok()) {
    out.err = rr.err;
    out.done = rr.done;
    return out;
  }
  t = rr.done;
  exec_cached_ = true;

  // Boot chatter: daemons log startup messages. This warms the allocator
  // metadata the steady-state log appends touch.
  std::vector<std::byte> line(config_.log_line_bytes,
                              static_cast<std::byte>('b'));
  for (int i = 0; i < 64; ++i) {
    FsIoResult wr = fs_.write(t, syslog_inode_, syslog_offset_, line);
    if (!wr.ok()) {
      out.err = wr.err;
      out.done = wr.done;
      return out;
    }
    syslog_offset_ += line.size();
    t = wr.done;
  }
  // Boot finishes with a sync (filesystems settle before multi-user).
  FsResult sr = fs_.sync(t);
  if (!sr.ok()) {
    out.err = sr.err;
    out.done = sr.done;
    return out;
  }
  t = sr.done;

  next_tick_ = t + config_.tick_interval;
  out.done = t;
  return out;
}

void ServerOs::declare_crash(sim::SimTime when, std::string reason) {
  if (crashed_) return;
  crashed_ = true;
  crash_time_ = when;
  crash_reason_ = std::move(reason);
}

ServerOs::TickResult ServerOs::tick(sim::SimTime now) {
  TickResult out;
  out.done = now;
  if (crashed_) {
    out.err = Errno::kEIO;
    return out;
  }
  ++tick_count_;
  next_tick_ = now + config_.tick_interval;

  // The root filesystem aborting read-only kills every service.
  if (fs_.read_only_at(now)) {
    declare_crash(now, "root filesystem read-only after journal abort (" +
                           std::to_string(fs_.error_code()) +
                           "); all file access failing");
    out.err = Errno::kEROFS;
    return out;
  }

  sim::SimTime t = now;

  // Periodic re-exec of a binary (cold exec hits the device).
  const bool reread = config_.exec_reread_ticks != 0 &&
                      tick_count_ % config_.exec_reread_ticks == 0;
  if (reread || !exec_cached_) {
    std::vector<std::byte> buf(4096);
    FsIoResult rr = fs_.read(t, ls_inode_, 0, buf);
    t = rr.done;
    if (!rr.ok()) {
      declare_crash(t, "buffer I/O error reading /bin/ls: cannot exec");
      out.err = rr.err;
      out.done = t;
      return out;
    }
    exec_cached_ = true;
  }

  // Daemon log append.
  std::vector<std::byte> line(config_.log_line_bytes,
                              static_cast<std::byte>('a'));
  line.back() = static_cast<std::byte>('\n');
  FsIoResult wr = fs_.write(t, syslog_inode_, syslog_offset_, line);
  t = wr.done;
  if (!wr.ok()) {
    declare_crash(t, std::string("syslog write failed: ") +
                         errno_name(wr.err));
    out.err = wr.err;
    out.done = t;
    return out;
  }
  syslog_offset_ += line.size();

  out.done = t;
  return out;
}

}  // namespace deepnote::storage
