// Crash-consistency harness: exhaustive fault-schedule exploration.
//
// A CrashWorkload runs a storage workload against a FaultyDisk it owns,
// then checks durable-state invariants after the simulated crash
// (remount + fsck for extfs, WAL replay for kvdb, surviving-mirror image
// for RAID — see fault_workloads.h for the built-ins).
//
// The explorer first runs the workload benignly to learn its device
// write count W (and erase count E on erase-block media), then
// enumerates every (cut point, fault variant) schedule — littlefs-style:
// "re-run the workload with a power cut at every write boundary" —
// fanned across the task pool. Schedules are pure functions of
// (base seed, schedule index):
//
//     index = cut * 5 + variant        (variant: 0 clean, 1 torn,
//                                       2 reorder, 3 eio-burst,
//                                       4 erase-interrupt)
//     plan.seed = sim::trial_seed(base_seed, index)
//
// so a failure logged as (seed, index) replays exactly with
// replay_schedule(), and shrink() reduces it to a minimal failing
// schedule (simplest variant, earliest cut).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/faulty_disk.h"

namespace deepnote::storage {

/// Outcome of one post-crash consistency check.
struct CheckResult {
  bool passed = true;
  std::string detail;  ///< human-readable failure description

  static CheckResult ok() { return {}; }
  static CheckResult fail(std::string why) {
    return CheckResult{false, std::move(why)};
  }
};

/// One storage workload under test. Implementations own their devices:
/// run() builds the stack (format healthy, then wrap the device in a
/// FaultyDisk armed with `plan`), executes the workload tolerating
/// errors, and check() inspects only what the crash left durable.
class CrashWorkload {
 public:
  virtual ~CrashWorkload() = default;

  /// Execute the workload once with `plan` armed on the faulted device.
  virtual void run(const FaultPlan& plan) = 0;
  /// Write attempts the faulted device saw during the last run().
  virtual std::uint64_t faulted_writes() const = 0;
  /// Erase attempts the faulted device saw during the last run(). Sizes
  /// the interrupted-erase schedule space; 0 (the default, for media
  /// without erase blocks) disables that variant for the workload.
  virtual std::uint64_t faulted_erases() const { return 0; }
  /// Post-crash invariants over the durable state.
  virtual CheckResult check() = 0;
};

/// Workloads are re-created per schedule (trials share no state).
using WorkloadFactory = std::function<std::unique_ptr<CrashWorkload>()>;

enum class FaultVariant : std::uint8_t {
  kClean = 0,          ///< power cut, whole write lost
  kTorn = 1,           ///< power cut, sector-prefix of the write persists
  kReorder = 2,        ///< power cut under a volatile write cache
  kEio = 3,            ///< transient EIO burst, no cut
  kEraseInterrupt = 4, ///< power cut mid-erase; block stale or garbage
};

inline constexpr std::uint32_t kNumFaultVariants = 5;

const char* fault_variant_name(FaultVariant v);

/// A fully determined schedule; pure function of (base seed, index).
struct FaultSchedule {
  std::uint64_t base_seed = 0;
  std::uint64_t index = 0;
  /// index / kNumFaultVariants — the Nth write for the write-cut
  /// variants, the Nth erase for kEraseInterrupt.
  std::uint64_t cut_write = 0;
  FaultVariant variant = FaultVariant::kClean;

  FaultPlan plan(std::uint32_t cache_window) const;
  /// e.g. "schedule 37 (seed 0x5eed): torn cut at write 9"
  std::string describe() const;
};

/// Decode `index` under `base_seed` (no workload knowledge needed).
FaultSchedule schedule_at(std::uint64_t base_seed, std::uint64_t index);

struct ExploreOptions {
  std::uint64_t seed = 0x5eedull;
  bool torn_writes = true;   ///< include FaultVariant::kTorn
  bool reorder = true;       ///< include FaultVariant::kReorder
  bool eio_bursts = true;    ///< include FaultVariant::kEio
  /// Include FaultVariant::kEraseInterrupt — only enumerated up to the
  /// benign run's erase count, so workloads that never erase (plain
  /// disks) get no erase schedules at all.
  bool erase_interrupts = true;
  std::uint32_t cache_window = 8;  ///< reorder-variant cache size
  unsigned jobs = 0;  ///< task-pool width; 0 = $DEEPNOTE_JOBS / all cores
};

struct ScheduleFailure {
  FaultSchedule schedule;
  std::string detail;
};

struct ExploreReport {
  std::uint64_t write_count = 0;     ///< writes in the benign run
  std::uint64_t erase_count = 0;     ///< erases in the benign run
  std::uint64_t schedules_run = 0;
  std::string benign_failure;        ///< non-empty: oracle broken, no crash
  std::vector<ScheduleFailure> failures;

  bool passed() const { return benign_failure.empty() && failures.empty(); }
  std::string summary() const;
};

/// Run the workload benignly to size the schedule space, then every
/// enabled (cut, variant) schedule in parallel on the task pool.
ExploreReport explore(const WorkloadFactory& factory,
                      const ExploreOptions& options = {});

/// Re-run one schedule from its logged (seed, index) pair.
CheckResult replay_schedule(const WorkloadFactory& factory,
                            std::uint64_t base_seed, std::uint64_t index,
                            std::uint32_t cache_window = 8,
                            FaultSchedule* schedule_out = nullptr);

/// Reduce a failing schedule: first simplify the variant
/// (reorder/eio -> torn -> clean cut), then find the earliest failing
/// cut under that variant. Returns the minimal schedule (always fails
/// when replayed; falls back to the input if nothing simpler fails).
FaultSchedule shrink(const WorkloadFactory& factory,
                     const FaultSchedule& failing,
                     std::uint32_t cache_window = 8);

}  // namespace deepnote::storage
