#include "storage/extfs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace deepnote::storage {
namespace {

constexpr std::uint32_t kBitsPerBlock = kFsBlockSize * 8;

std::uint64_t device_blocks(const BlockDevice& dev) {
  return dev.total_sectors() / kFsSectorsPerBlock;
}

bool bit_get(const std::byte* block, std::uint32_t bit) {
  return (static_cast<unsigned char>(block[bit / 8]) >> (bit % 8)) & 1u;
}

void bit_set(std::byte* block, std::uint32_t bit, bool value) {
  auto b = static_cast<unsigned char>(block[bit / 8]);
  if (value) {
    b |= static_cast<unsigned char>(1u << (bit % 8));
  } else {
    b &= static_cast<unsigned char>(~(1u << (bit % 8)));
  }
  block[bit / 8] = static_cast<std::byte>(b);
}

struct Layout {
  SuperblockDisk sb;
};

Layout compute_layout(std::uint64_t dev_blocks, const MkfsOptions& opt) {
  Layout l;
  SuperblockDisk& sb = l.sb;
  sb.total_blocks = static_cast<std::uint32_t>(
      opt.total_blocks ? std::min<std::uint64_t>(opt.total_blocks, dev_blocks)
                       : dev_blocks);
  sb.journal_start = 1;
  sb.journal_blocks = opt.journal_blocks;
  sb.block_bitmap_start = sb.journal_start + sb.journal_blocks;
  sb.block_bitmap_blocks =
      (sb.total_blocks + kBitsPerBlock - 1) / kBitsPerBlock;
  sb.inode_bitmap_start = sb.block_bitmap_start + sb.block_bitmap_blocks;
  sb.num_inodes = opt.num_inodes;
  sb.inode_bitmap_blocks = (sb.num_inodes + kBitsPerBlock - 1) / kBitsPerBlock;
  sb.inode_table_start = sb.inode_bitmap_start + sb.inode_bitmap_blocks;
  sb.inode_table_blocks =
      (sb.num_inodes + kInodesPerBlock - 1) / kInodesPerBlock;
  sb.data_start = sb.inode_table_start + sb.inode_table_blocks;
  return l;
}

BlockIo write_fs_block(BlockDevice& dev, sim::SimTime t, std::uint32_t block,
                       std::span<const std::byte> data) {
  return dev.write(t, static_cast<std::uint64_t>(block) * kFsSectorsPerBlock,
                   kFsSectorsPerBlock, data);
}

BlockIo read_fs_block(BlockDevice& dev, sim::SimTime t, std::uint32_t block,
                      std::span<std::byte> out) {
  return dev.read(t, static_cast<std::uint64_t>(block) * kFsSectorsPerBlock,
                  kFsSectorsPerBlock, out);
}

}  // namespace

// ===========================================================================
// mkfs

FsResult ExtFs::mkfs(BlockDevice& device, sim::SimTime now,
                     MkfsOptions options) {
  const std::uint64_t dblocks = device_blocks(device);
  Layout layout = compute_layout(dblocks, options);
  SuperblockDisk& sb = layout.sb;
  if (sb.data_start + 16 > sb.total_blocks) {
    return FsResult{Errno::kENOSPC, now};
  }

  sim::SimTime t = now;
  std::vector<std::byte> zero(kFsBlockSize, std::byte{0});

  // Journal area.
  for (std::uint32_t b = 0; b < sb.journal_blocks; ++b) {
    BlockIo io = write_fs_block(device, t, sb.journal_start + b, zero);
    if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
    t = io.complete;
  }

  // Block bitmap: blocks [0, data_start) are metadata and marked used.
  for (std::uint32_t b = 0; b < sb.block_bitmap_blocks; ++b) {
    std::vector<std::byte> bm(kFsBlockSize, std::byte{0});
    const std::uint64_t first_bit =
        static_cast<std::uint64_t>(b) * kBitsPerBlock;
    for (std::uint32_t i = 0; i < kBitsPerBlock; ++i) {
      const std::uint64_t block_no = first_bit + i;
      if (block_no < sb.data_start) {
        bit_set(bm.data(), i, true);
      } else if (block_no >= sb.total_blocks && block_no < first_bit + kBitsPerBlock) {
        // Bits beyond the device are marked used so the allocator never
        // hands them out.
        bit_set(bm.data(), i, true);
      }
    }
    BlockIo io = write_fs_block(device, t, sb.block_bitmap_start + b, bm);
    if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
    t = io.complete;
  }

  // Inode bitmap: inode 0 (invalid) and 1 (root) used.
  for (std::uint32_t b = 0; b < sb.inode_bitmap_blocks; ++b) {
    std::vector<std::byte> bm(kFsBlockSize, std::byte{0});
    if (b == 0) {
      bit_set(bm.data(), 0, true);
      bit_set(bm.data(), kRootInode, true);
    }
    const std::uint64_t first_bit =
        static_cast<std::uint64_t>(b) * kBitsPerBlock;
    for (std::uint32_t i = 0; i < kBitsPerBlock; ++i) {
      if (first_bit + i >= sb.num_inodes) bit_set(bm.data(), i, true);
    }
    BlockIo io = write_fs_block(device, t, sb.inode_bitmap_start + b, bm);
    if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
    t = io.complete;
  }

  // Inode table, with the root directory in place.
  for (std::uint32_t b = 0; b < sb.inode_table_blocks; ++b) {
    std::vector<std::byte> blk(kFsBlockSize, std::byte{0});
    if (b == 0) {
      InodeDisk root;
      root.kind = static_cast<std::uint16_t>(InodeKind::kDirectory);
      root.link_count = 2;
      std::memcpy(blk.data() + kRootInode * kInodeSize, &root, sizeof(root));
    }
    BlockIo io = write_fs_block(device, t, sb.inode_table_start + b, blk);
    if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
    t = io.complete;
  }

  // Superblock last, then a barrier.
  std::vector<std::byte> sblk(kFsBlockSize, std::byte{0});
  sb.clean = 1;
  std::memcpy(sblk.data(), &sb, sizeof(sb));
  BlockIo io = write_fs_block(device, t, 0, sblk);
  if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
  io = device.flush(io.complete);
  if (!io.ok()) return FsResult{Errno::kEIO, io.complete};
  return FsResult{Errno::kOk, io.complete};
}

// ===========================================================================
// mount

ExtFs::ExtFs(BlockDevice& device, ExtFsConfig config)
    : dev_(device), config_(config) {}

ExtFs::MountOutcome ExtFs::mount(BlockDevice& device, sim::SimTime now,
                                 ExtFsConfig config) {
  MountOutcome out;
  std::vector<std::byte> sblk(kFsBlockSize);
  BlockIo io = read_fs_block(device, now, 0, sblk);
  if (!io.ok()) {
    out.err = Errno::kEIO;
    out.done = io.complete;
    return out;
  }
  SuperblockDisk sb;
  std::memcpy(&sb, sblk.data(), sizeof(sb));
  if (sb.magic != kFsMagic || sb.version != kFsVersion) {
    out.err = Errno::kEINVAL;
    out.done = io.complete;
    return out;
  }

  auto fs = std::unique_ptr<ExtFs>(new ExtFs(device, config));
  fs->sb_ = sb;
  fs->journal_ = std::make_unique<Journal>(device, sb.journal_start,
                                           sb.journal_blocks,
                                           sb.journal_sequence);
  sim::SimTime t = io.complete;

  // Replay committed transactions (no-op on a clean filesystem).
  std::uint64_t replayed = 0;
  JournalResult jr = fs->journal_->replay(t, &replayed);
  if (!jr.ok()) {
    out.err = Errno::kEIO;
    out.done = jr.done;
    return out;
  }
  t = jr.done;
  if (replayed > 0) {
    jr = fs->journal_->clear(t);
    if (!jr.ok()) {
      out.err = Errno::kEIO;
      out.done = jr.done;
      return out;
    }
    t = jr.done;
  }

  // Count free blocks/inodes from the (replayed) bitmaps.
  std::vector<std::byte> bm(kFsBlockSize);
  std::uint64_t free_blocks = 0;
  for (std::uint32_t b = 0; b < sb.block_bitmap_blocks; ++b) {
    io = read_fs_block(device, t, sb.block_bitmap_start + b, bm);
    if (!io.ok()) {
      out.err = Errno::kEIO;
      out.done = io.complete;
      return out;
    }
    t = io.complete;
    for (std::uint32_t i = 0; i < kBitsPerBlock; ++i) {
      if (!bit_get(bm.data(), i)) ++free_blocks;
    }
  }
  std::uint64_t free_inodes = 0;
  for (std::uint32_t b = 0; b < sb.inode_bitmap_blocks; ++b) {
    io = read_fs_block(device, t, sb.inode_bitmap_start + b, bm);
    if (!io.ok()) {
      out.err = Errno::kEIO;
      out.done = io.complete;
      return out;
    }
    t = io.complete;
    for (std::uint32_t i = 0; i < kBitsPerBlock; ++i) {
      if (!bit_get(bm.data(), i)) ++free_inodes;
    }
  }
  fs->free_blocks_ = free_blocks;
  fs->free_inodes_ = free_inodes;
  fs->alloc_hint_ = sb.data_start;

  // Mark mounted-dirty.
  fs->sb_.clean = 0;
  fs->sb_.mount_count++;
  fs->sb_.journal_sequence = fs->journal_->next_sequence();
  Errno e = fs->write_superblock(t);
  if (e != Errno::kOk) {
    out.err = e;
    out.done = t;
    return out;
  }
  fs->last_commit_ = t;

  out.err = Errno::kOk;
  out.done = t;
  out.fs = std::move(fs);
  out.replayed_transactions = replayed;
  return out;
}

Errno ExtFs::write_superblock(sim::SimTime& t) {
  std::vector<std::byte> sblk(kFsBlockSize, std::byte{0});
  std::memcpy(sblk.data(), &sb_, sizeof(sb_));
  BlockIo io = write_fs_block(dev_, t, 0, sblk);
  t = io.complete;
  if (!io.ok()) return Errno::kEIO;
  io = dev_.flush(t);
  t = io.complete;
  if (!io.ok()) return Errno::kEIO;
  sb_dirty_ = false;
  return Errno::kOk;
}

// ===========================================================================
// Metadata cache

ExtFs::CacheRead ExtFs::load_block(sim::SimTime now, std::uint32_t block_no) {
  CacheRead r;
  r.done = now;
  if (CachedBlock* hot = hot_lookup(block_no)) {
    ++stats_.cache_hits;
    r.block = hot;
    return r;
  }
  auto it = cache_.find(block_no);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    hot_insert(block_no, &it->second);
    r.block = &it->second;
    return r;
  }
  ++stats_.cache_misses;
  CachedBlock cb;
  cb.data.resize(kFsBlockSize);
  BlockIo io = read_fs_block(dev_, now, block_no, cb.data);
  r.done = io.complete;
  if (!io.ok()) {
    r.err = Errno::kEIO;
    return r;
  }
  auto [ins, _] = cache_.emplace(block_no, std::move(cb));
  hot_insert(block_no, &ins->second);
  r.block = &ins->second;
  return r;
}

void ExtFs::mark_dirty(std::uint32_t block_no) {
  CachedBlock* b = hot_lookup(block_no);
  if (b == nullptr) {
    auto it = cache_.find(block_no);
    assert(it != cache_.end());
    b = &it->second;
  }
  // mark_dirty is the only dirty-setter and do_commit the only clearer,
  // so dirty == true implies membership in txn_blocks_ already.
  if (b->dirty) return;
  b->dirty = true;
  txn_blocks_.insert(block_no);
}

// ===========================================================================
// Inodes

ExtFs::InodeRef ExtFs::load_inode(sim::SimTime now, std::uint32_t ino) {
  InodeRef r;
  r.done = now;
  if (ino == 0 || ino >= sb_.num_inodes) {
    r.err = Errno::kEINVAL;
    return r;
  }
  const std::uint32_t block =
      sb_.inode_table_start + ino / kInodesPerBlock;
  CacheRead cr = load_block(now, block);
  r.done = cr.done;
  if (cr.err != Errno::kOk) {
    r.err = cr.err;
    return r;
  }
  r.inode = reinterpret_cast<InodeDisk*>(
      cr.block->data.data() + (ino % kInodesPerBlock) * kInodeSize);
  r.block_no = block;
  return r;
}

std::uint32_t ExtFs::alloc_inode(sim::SimTime& t, Errno& err) {
  for (std::uint32_t b = 0; b < sb_.inode_bitmap_blocks; ++b) {
    CacheRead cr = load_block(t, sb_.inode_bitmap_start + b);
    t = cr.done;
    if (cr.err != Errno::kOk) {
      err = cr.err;
      return 0;
    }
    for (std::uint32_t i = 0; i < kBitsPerBlock; ++i) {
      const std::uint64_t ino = static_cast<std::uint64_t>(b) * kBitsPerBlock + i;
      if (ino >= sb_.num_inodes) break;
      if (!bit_get(cr.block->data.data(), i)) {
        bit_set(cr.block->data.data(), i, true);
        mark_dirty(sb_.inode_bitmap_start + b);
        --free_inodes_;
        err = Errno::kOk;
        return static_cast<std::uint32_t>(ino);
      }
    }
  }
  err = Errno::kENOSPC;
  return 0;
}

Errno ExtFs::free_inode(sim::SimTime& t, std::uint32_t ino) {
  const std::uint32_t b = ino / kBitsPerBlock;
  CacheRead cr = load_block(t, sb_.inode_bitmap_start + b);
  t = cr.done;
  if (cr.err != Errno::kOk) return cr.err;
  bit_set(cr.block->data.data(), ino % kBitsPerBlock, false);
  mark_dirty(sb_.inode_bitmap_start + b);
  ++free_inodes_;
  return Errno::kOk;
}

// ===========================================================================
// Block allocation

std::uint32_t ExtFs::alloc_block(sim::SimTime& t, Errno& err) {
  if (free_blocks_ == 0) {
    err = Errno::kENOSPC;
    return 0;
  }
  const std::uint32_t start_bm = alloc_hint_ / kBitsPerBlock;
  for (std::uint32_t pass = 0; pass < sb_.block_bitmap_blocks; ++pass) {
    const std::uint32_t b = (start_bm + pass) % sb_.block_bitmap_blocks;
    CacheRead cr = load_block(t, sb_.block_bitmap_start + b);
    t = cr.done;
    if (cr.err != Errno::kOk) {
      err = cr.err;
      return 0;
    }
    for (std::uint32_t i = 0; i < kBitsPerBlock; ++i) {
      // Skip fully-allocated 64-bit words. The all-ones test is
      // endian-independent, and per-bit examination order below is
      // unchanged, so the block chosen is exactly the one the plain
      // scan would pick.
      if (i % 64 == 0) {
        while (i + 64 <= kBitsPerBlock) {
          std::uint64_t word;
          std::memcpy(&word, cr.block->data.data() + i / 8, sizeof(word));
          if (word != ~std::uint64_t{0}) break;
          i += 64;
        }
        if (i >= kBitsPerBlock) break;
      }
      const std::uint64_t block_no =
          static_cast<std::uint64_t>(b) * kBitsPerBlock + i;
      if (block_no >= sb_.total_blocks) break;
      if (block_no < sb_.data_start) continue;
      if (!bit_get(cr.block->data.data(), i)) {
        bit_set(cr.block->data.data(), i, true);
        mark_dirty(sb_.block_bitmap_start + b);
        --free_blocks_;
        alloc_hint_ = static_cast<std::uint32_t>(block_no) + 1;
        uncommitted_allocs_.insert(static_cast<std::uint32_t>(block_no));
        err = Errno::kOk;
        return static_cast<std::uint32_t>(block_no);
      }
    }
  }
  err = Errno::kENOSPC;
  return 0;
}

Errno ExtFs::free_block(sim::SimTime& t, std::uint32_t block_no) {
  if (block_no < sb_.data_start || block_no >= sb_.total_blocks) {
    return Errno::kEINVAL;
  }
  const std::uint32_t b = block_no / kBitsPerBlock;
  CacheRead cr = load_block(t, sb_.block_bitmap_start + b);
  t = cr.done;
  if (cr.err != Errno::kOk) return cr.err;
  bit_set(cr.block->data.data(), block_no % kBitsPerBlock, false);
  mark_dirty(sb_.block_bitmap_start + b);
  ++free_blocks_;
  uncommitted_allocs_.erase(block_no);
  return Errno::kOk;
}

// ===========================================================================
// bmap

std::uint32_t ExtFs::bmap(sim::SimTime& t, InodeDisk& inode, std::uint32_t ino,
                          std::uint64_t file_block, bool allocate,
                          Errno& err) {
  err = Errno::kOk;
  const std::uint32_t inode_block =
      sb_.inode_table_start + ino / kInodesPerBlock;

  auto get_or_alloc_ptr_block = [&](std::uint32_t& slot,
                                    bool mark_inode) -> std::uint32_t {
    if (slot != 0) return slot;
    if (!allocate) return 0;
    const std::uint32_t nb = alloc_block(t, err);
    if (err != Errno::kOk) return 0;
    // Fresh pointer block: install zeroed content in the cache directly
    // (never read stale device bytes).
    CachedBlock cb;
    cb.data.assign(kFsBlockSize, std::byte{0});
    cache_[nb] = std::move(cb);
    slot = nb;
    mark_dirty(nb);
    if (mark_inode) mark_dirty(inode_block);
    return nb;
  };

  if (file_block < kDirectBlocks) {
    if (inode.direct[file_block] == 0 && allocate) {
      const std::uint32_t nb = alloc_block(t, err);
      if (err != Errno::kOk) return 0;
      inode.direct[file_block] = nb;
      mark_dirty(inode_block);
    }
    return inode.direct[file_block];
  }

  std::uint64_t idx = file_block - kDirectBlocks;
  if (idx < kPtrsPerBlock) {
    const std::uint32_t ptr_block =
        get_or_alloc_ptr_block(inode.indirect, true);
    if (ptr_block == 0) return 0;
    CacheRead cr = load_block(t, ptr_block);
    t = cr.done;
    if (cr.err != Errno::kOk) {
      err = cr.err;
      return 0;
    }
    auto* ptrs = reinterpret_cast<std::uint32_t*>(cr.block->data.data());
    if (ptrs[idx] == 0 && allocate) {
      const std::uint32_t nb = alloc_block(t, err);
      if (err != Errno::kOk) return 0;
      ptrs[idx] = nb;
      mark_dirty(ptr_block);
    }
    return ptrs[idx];
  }

  idx -= kPtrsPerBlock;
  const std::uint64_t max_double =
      static_cast<std::uint64_t>(kPtrsPerBlock) * kPtrsPerBlock;
  if (idx >= max_double) {
    err = Errno::kEINVAL;  // file too large
    return 0;
  }
  const std::uint32_t outer_block =
      get_or_alloc_ptr_block(inode.double_indirect, true);
  if (outer_block == 0) return 0;
  CacheRead cr = load_block(t, outer_block);
  t = cr.done;
  if (cr.err != Errno::kOk) {
    err = cr.err;
    return 0;
  }
  auto* outer = reinterpret_cast<std::uint32_t*>(cr.block->data.data());
  const std::uint64_t outer_idx = idx / kPtrsPerBlock;
  std::uint32_t inner_block = outer[outer_idx];
  if (inner_block == 0) {
    if (!allocate) return 0;
    const std::uint32_t nb = alloc_block(t, err);
    if (err != Errno::kOk) return 0;
    CachedBlock cb;
    cb.data.assign(kFsBlockSize, std::byte{0});
    cache_[nb] = std::move(cb);
    // Re-find the outer block: alloc_block may have rehashed the cache.
    CacheRead cr2 = load_block(t, outer_block);
    t = cr2.done;
    if (cr2.err != Errno::kOk) {
      err = cr2.err;
      return 0;
    }
    reinterpret_cast<std::uint32_t*>(cr2.block->data.data())[outer_idx] = nb;
    mark_dirty(outer_block);
    mark_dirty(nb);
    inner_block = nb;
  }
  CacheRead icr = load_block(t, inner_block);
  t = icr.done;
  if (icr.err != Errno::kOk) {
    err = icr.err;
    return 0;
  }
  auto* inner = reinterpret_cast<std::uint32_t*>(icr.block->data.data());
  const std::uint64_t inner_idx = idx % kPtrsPerBlock;
  if (inner[inner_idx] == 0 && allocate) {
    const std::uint32_t nb = alloc_block(t, err);
    if (err != Errno::kOk) return 0;
    // Same rehash hazard as above.
    CacheRead icr2 = load_block(t, inner_block);
    t = icr2.done;
    if (icr2.err != Errno::kOk) {
      err = icr2.err;
      return 0;
    }
    reinterpret_cast<std::uint32_t*>(icr2.block->data.data())[inner_idx] = nb;
    mark_dirty(inner_block);
    return nb;
  }
  return inner[inner_idx];
}

}  // namespace deepnote::storage
