// Minimal RAID layer over BlockDevices.
//
// Exists to quantify a deployment consequence of the acoustic attack:
// redundancy assumes *independent* drive failures, but an attack on a
// shared enclosure kills all members at once (see bench/ablation_rack).
//
//  * Raid1Device — mirror: writes go to every member (command completion
//    = slowest member), reads are served by the first member that
//    answers, failing over on error. The array stays available as long
//    as one member serves.
//  * Raid0Device — stripe: chunks alternate across members; any member
//    failure fails the affected I/O (no redundancy, more spindles).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/block_device.h"

namespace deepnote::storage {

struct RaidStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_failovers = 0;   ///< mirror reads served by a backup
  std::uint64_t degraded_writes = 0;  ///< mirror writes with failed members
  std::uint64_t failed_ios = 0;
};

class Raid1Device final : public BlockDevice {
 public:
  /// Does not take ownership; all members must be the same size (the
  /// array exposes the smallest). Like md, the array ejects a member
  /// after `eject_after_errors` consecutive failed commands and stops
  /// sending it I/O (a failed-but-acknowledged write no longer paces the
  /// array).
  explicit Raid1Device(std::vector<BlockDevice*> members,
                       std::uint32_t eject_after_errors = 2);

  std::uint64_t total_sectors() const override { return total_sectors_; }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;

  const RaidStats& stats() const { return stats_; }
  std::size_t members() const { return members_.size(); }
  std::size_t active_members() const;
  bool member_failed(std::size_t i) const { return failed_.at(i); }
  /// Re-admit an ejected member (post-repair rebuild is out of scope;
  /// contents are assumed resynced).
  void readmit(std::size_t i);

 private:
  void note_result(std::size_t member, bool ok);

  std::vector<BlockDevice*> members_;
  std::uint64_t total_sectors_;
  std::uint32_t eject_after_errors_;
  std::vector<bool> failed_;
  std::vector<std::uint32_t> consecutive_errors_;
  RaidStats stats_;
};

class Raid0Device final : public BlockDevice {
 public:
  Raid0Device(std::vector<BlockDevice*> members,
              std::uint32_t chunk_sectors = 128);

  std::uint64_t total_sectors() const override { return total_sectors_; }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;

  const RaidStats& stats() const { return stats_; }

 private:
  /// Map an array LBA to (member, member LBA).
  void locate(std::uint64_t lba, std::size_t* member,
              std::uint64_t* member_lba) const;
  BlockIo run_chunked(sim::SimTime now, std::uint64_t lba,
                      std::uint32_t sector_count, std::span<std::byte> out,
                      std::span<const std::byte> in, bool is_write);

  std::vector<BlockDevice*> members_;
  std::uint32_t chunk_sectors_;
  std::uint64_t total_sectors_;
  RaidStats stats_;
};

}  // namespace deepnote::storage
