// Server operating system model ("Ubuntu server 16.04" in the paper).
//
// The OS in the crash experiment is not a workload generator; it is the
// set of background processes whose survival defines "the OS is up":
// daemons periodically append to logs and access files. The paper
// observes that once buffer I/O errors blocked the root filesystem, every
// file access — including `ls` — failed and the server died.
//
// Model: a 1 Hz system tick (daemon activity) appends a log line to
// /var/log/syslog and occasionally execs a binary (reads /bin/ls; served
// from the exec page cache after first load). The OS is declared crashed
// when a tick fails: the root filesystem has aborted read-only (journal
// error -5) or a file access returns EIO.
#pragma once

#include <cstdint>
#include <string>

#include "storage/extfs.h"

namespace deepnote::storage {

struct ServerOsConfig {
  sim::Duration tick_interval = sim::Duration::from_seconds(1.0);
  /// Re-read (re-exec) the binary from disk every N ticks; 0 = always
  /// served from the exec cache after boot.
  std::uint32_t exec_reread_ticks = 0;
  /// Syslog line size per tick.
  std::size_t log_line_bytes = 120;
};

class ServerOs {
 public:
  /// Boots on a mounted root filesystem: creates /bin/ls, /var/log/syslog,
  /// loads the exec cache.
  struct BootResult {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    bool ok() const { return err == Errno::kOk; }
  };
  ServerOs(ExtFs& rootfs, ServerOsConfig config = {});
  BootResult boot(sim::SimTime now);

  /// Next scheduled system tick.
  sim::SimTime next_tick() const { return next_tick_; }

  struct TickResult {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    bool ok() const { return err == Errno::kOk; }
  };
  /// Run one tick of system activity. Declares the crash on failure.
  TickResult tick(sim::SimTime now);

  bool crashed() const { return crashed_; }
  sim::SimTime crash_time() const { return crash_time_; }
  const std::string& crash_reason() const { return crash_reason_; }
  std::uint64_t ticks() const { return tick_count_; }

 private:
  void declare_crash(sim::SimTime when, std::string reason);

  ExtFs& fs_;
  ServerOsConfig config_;
  std::uint32_t syslog_inode_ = 0;
  std::uint32_t ls_inode_ = 0;
  std::uint64_t syslog_offset_ = 0;
  bool exec_cached_ = false;
  sim::SimTime next_tick_ = sim::SimTime::zero();
  std::uint64_t tick_count_ = 0;

  bool crashed_ = false;
  sim::SimTime crash_time_ = sim::SimTime::zero();
  std::string crash_reason_;
};

}  // namespace deepnote::storage
