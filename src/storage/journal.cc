#include "storage/journal.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

namespace deepnote::storage {

Journal::Journal(BlockDevice& device, std::uint32_t start_block,
                 std::uint32_t num_blocks, std::uint64_t next_sequence)
    : device_(device),
      start_block_(start_block),
      num_blocks_(num_blocks),
      sequence_(next_sequence) {
  if (num_blocks_ < 4) {
    throw std::invalid_argument("journal: needs at least 4 blocks");
  }
}

BlockIo Journal::write_block(sim::SimTime now, std::uint32_t journal_block,
                             std::span<const std::byte> data) {
  return device_.write(now,
                       static_cast<std::uint64_t>(start_block_ +
                                                  journal_block) *
                           kFsSectorsPerBlock,
                       kFsSectorsPerBlock, data);
}

BlockIo Journal::read_block(sim::SimTime now, std::uint32_t journal_block,
                            std::span<std::byte> out) {
  return device_.read(now,
                      static_cast<std::uint64_t>(start_block_ +
                                                 journal_block) *
                          kFsSectorsPerBlock,
                      kFsSectorsPerBlock, out);
}

JournalResult Journal::fail(sim::SimTime t) {
  aborted_ = true;
  return JournalResult{Errno::kEIO, t};
}

JournalResult Journal::commit(sim::SimTime now,
                              const std::vector<JournalBlock>& blocks) {
  if (aborted_) return JournalResult{Errno::kEIO, now};
  if (blocks.empty()) return JournalResult{Errno::kOk, now};
  if (blocks.size() > kMaxBlocksPerTransaction) {
    throw std::invalid_argument("journal: transaction too large");
  }
  const std::uint32_t needed = static_cast<std::uint32_t>(blocks.size()) + 2;
  if (needed > num_blocks_) {
    throw std::invalid_argument("journal: transaction exceeds journal size");
  }
  // Wrap to the start when the tail has no room (everything earlier is
  // already checkpointed).
  if (head_ + needed > num_blocks_) head_ = 0;

  sim::SimTime t = now;

  // 1. Descriptor block.
  std::vector<std::byte> desc(kFsBlockSize, std::byte{0});
  JournalDescriptorDisk dh;
  dh.sequence = sequence_;
  dh.count = static_cast<std::uint32_t>(blocks.size());
  std::memcpy(desc.data(), &dh, sizeof(dh));
  {
    auto* homes = reinterpret_cast<std::uint32_t*>(desc.data() + sizeof(dh));
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      homes[i] = blocks[i].home_block;
    }
  }
  BlockIo io = write_block(t, head_, desc);
  if (!io.ok()) return fail(io.complete);
  t = io.complete;

  // 2. Payload copies + running checksum.
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto& b = blocks[i];
    if (b.data.size() != kFsBlockSize) {
      throw std::invalid_argument("journal: block payload must be 4 KiB");
    }
    checksum = fnv1a64(b.data.data(), b.data.size(), checksum);
    io = write_block(t, head_ + 1 + static_cast<std::uint32_t>(i), b.data);
    if (!io.ok()) return fail(io.complete);
    t = io.complete;
  }

  // 3. Barrier: descriptor and payload must be durable before the commit
  //    record.
  io = device_.flush(t);
  if (!io.ok()) return fail(io.complete);
  t = io.complete;

  // 4. Commit block.
  std::vector<std::byte> commit(kFsBlockSize, std::byte{0});
  JournalCommitDisk ch;
  ch.sequence = sequence_;
  ch.checksum = checksum;
  std::memcpy(commit.data(), &ch, sizeof(ch));
  io = write_block(t, head_ + 1 + dh.count, commit);
  if (!io.ok()) return fail(io.complete);
  t = io.complete;

  // 5. Barrier: the transaction is committed once this completes.
  io = device_.flush(t);
  if (!io.ok()) return fail(io.complete);
  t = io.complete;

  head_ += needed;
  ++sequence_;
  return JournalResult{Errno::kOk, t};
}

JournalResult Journal::replay(sim::SimTime now, std::uint64_t* applied_out) {
  sim::SimTime t = now;
  // Collect candidate transactions (descriptor + matching commit with a
  // valid checksum), then apply them in sequence order.
  struct Txn {
    std::vector<std::uint32_t> homes;
    std::vector<std::vector<std::byte>> payloads;
  };
  std::map<std::uint64_t, Txn> txns;

  std::vector<std::byte> block(kFsBlockSize);
  std::uint32_t pos = 0;
  while (pos + 2 <= num_blocks_) {
    BlockIo io = read_block(t, pos, block);
    if (!io.ok()) return fail(io.complete);
    t = io.complete;
    JournalDescriptorDisk dh;
    std::memcpy(&dh, block.data(), sizeof(dh));
    if (dh.magic != kJournalMagic ||
        dh.type != static_cast<std::uint32_t>(
                       JournalBlockType::kDescriptor) ||
        dh.count == 0 || dh.count > kMaxBlocksPerTransaction ||
        pos + 2 + dh.count > num_blocks_) {
      ++pos;
      continue;
    }
    Txn txn;
    txn.homes.resize(dh.count);
    std::memcpy(txn.homes.data(), block.data() + sizeof(dh),
                dh.count * sizeof(std::uint32_t));
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    bool ok = true;
    for (std::uint32_t i = 0; i < dh.count; ++i) {
      io = read_block(t, pos + 1 + i, block);
      if (!io.ok()) return fail(io.complete);
      t = io.complete;
      checksum = fnv1a64(block.data(), block.size(), checksum);
      txn.payloads.push_back(block);
    }
    io = read_block(t, pos + 1 + dh.count, block);
    if (!io.ok()) return fail(io.complete);
    t = io.complete;
    JournalCommitDisk ch;
    std::memcpy(&ch, block.data(), sizeof(ch));
    ok = ch.magic == kJournalMagic &&
         ch.type == static_cast<std::uint32_t>(JournalBlockType::kCommit) &&
         ch.sequence == dh.sequence && ch.checksum == checksum;
    // Sequence floor: a committed transaction older than the mount-time
    // next_sequence was already checkpointed in a previous epoch. Re-applying
    // it would resurrect stale block images (JBD2 solves this with revoke
    // records; we solve it by never replaying across the floor).
    if (ok && dh.sequence < sequence_) {
      pos += 2 + dh.count;
      continue;
    }
    if (ok) {
      txns[dh.sequence] = std::move(txn);
      pos += 2 + dh.count;
    } else {
      ++pos;
    }
  }

  std::uint64_t applied = 0;
  for (auto& [seq, txn] : txns) {
    for (std::size_t i = 0; i < txn.homes.size(); ++i) {
      BlockIo io = device_.write(
          t, static_cast<std::uint64_t>(txn.homes[i]) * kFsSectorsPerBlock,
          kFsSectorsPerBlock, txn.payloads[i]);
      if (!io.ok()) return fail(io.complete);
      t = io.complete;
    }
    ++applied;
    sequence_ = std::max(sequence_, seq + 1);
  }
  if (applied > 0) {
    BlockIo io = device_.flush(t);
    if (!io.ok()) return fail(io.complete);
    t = io.complete;
  }
  if (applied_out) *applied_out = applied;
  return JournalResult{Errno::kOk, t};
}

JournalResult Journal::clear(sim::SimTime now) {
  if (aborted_) return JournalResult{Errno::kEIO, now};
  // Invalidate by zeroing the first 4 bytes of every block that could be
  // parsed as a descriptor. Writing whole blocks keeps the device API
  // simple; the journal is small.
  std::vector<std::byte> zero(kFsBlockSize, std::byte{0});
  sim::SimTime t = now;
  for (std::uint32_t i = 0; i < num_blocks_; ++i) {
    BlockIo io = write_block(t, i, zero);
    if (!io.ok()) return fail(io.complete);
    t = io.complete;
  }
  BlockIo io = device_.flush(t);
  if (!io.ok()) return fail(io.complete);
  head_ = 0;
  return JournalResult{Errno::kOk, io.complete};
}

}  // namespace deepnote::storage
