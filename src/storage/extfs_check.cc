// extfs offline consistency checker (fsck).
//
// Verifies, on an unmounted device:
//  * the superblock is sane;
//  * every block referenced by an allocated inode lies in the data region
//    and is referenced exactly once;
//  * the block bitmap matches the computed reference set;
//  * the inode bitmap matches the set of inodes with kind != free;
//  * every directory entry points to an allocated inode of matching kind;
//  * every allocated inode is reachable from the root;
//  * link counts are 1 for files and 2 for directories (this filesystem
//    stores no "."/".." entries).
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "storage/extfs.h"

namespace deepnote::storage {
namespace {

constexpr std::uint32_t kBitsPerBlock = kFsBlockSize * 8;

struct Checker {
  BlockDevice& dev;
  sim::SimTime t;
  SuperblockDisk sb;
  std::vector<std::string> problems;
  bool io_failed = false;

  std::map<std::uint32_t, std::vector<std::byte>> block_cache;

  void problem(std::string msg) { problems.push_back(std::move(msg)); }

  const std::vector<std::byte>* block(std::uint32_t no) {
    auto it = block_cache.find(no);
    if (it != block_cache.end()) return &it->second;
    std::vector<std::byte> data(kFsBlockSize);
    BlockIo io = dev.read(t, static_cast<std::uint64_t>(no) *
                                 kFsSectorsPerBlock,
                          kFsSectorsPerBlock, data);
    t = io.complete;
    if (!io.ok()) {
      io_failed = true;
      return nullptr;
    }
    return &block_cache.emplace(no, std::move(data)).first->second;
  }

  bool bitmap_bit(std::uint32_t start_block, std::uint64_t bit) {
    const auto* blk = block(start_block + static_cast<std::uint32_t>(
                                               bit / kBitsPerBlock));
    if (!blk) return false;
    const std::uint64_t i = bit % kBitsPerBlock;
    return (static_cast<unsigned char>((*blk)[i / 8]) >> (i % 8)) & 1u;
  }

  InodeDisk read_inode(std::uint32_t ino, bool* ok) {
    InodeDisk inode{};
    const auto* blk =
        block(sb.inode_table_start + ino / kInodesPerBlock);
    if (!blk) {
      *ok = false;
      return inode;
    }
    std::memcpy(&inode, blk->data() + (ino % kInodesPerBlock) * kInodeSize,
                sizeof(inode));
    *ok = true;
    return inode;
  }

  /// Collect all data + pointer blocks of an inode; returns false on I/O
  /// failure.
  bool collect_blocks(std::uint32_t ino, const InodeDisk& inode,
                      std::vector<std::uint32_t>& out) {
    auto take = [&](std::uint32_t b, const char* what) {
      if (b == 0) return;
      if (b < sb.data_start || b >= sb.total_blocks) {
        std::ostringstream os;
        os << "inode " << ino << ": " << what << " block " << b
           << " outside data region";
        problem(os.str());
        return;
      }
      out.push_back(b);
    };
    for (std::uint32_t i = 0; i < kDirectBlocks; ++i) {
      take(inode.direct[i], "direct");
    }
    auto walk_ptr_block = [&](std::uint32_t pb, const char* what) -> bool {
      if (pb == 0) return true;
      take(pb, what);
      const auto* blk = block(pb);
      if (!blk) return false;
      const auto* ptrs = reinterpret_cast<const std::uint32_t*>(blk->data());
      for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        take(ptrs[i], "indirect data");
      }
      return true;
    };
    if (!walk_ptr_block(inode.indirect, "indirect")) return false;
    if (inode.double_indirect != 0) {
      take(inode.double_indirect, "double indirect");
      const auto* blk = block(inode.double_indirect);
      if (!blk) return false;
      std::vector<std::uint32_t> outer(kPtrsPerBlock);
      std::memcpy(outer.data(), blk->data(),
                  kPtrsPerBlock * sizeof(std::uint32_t));
      for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        if (!walk_ptr_block(outer[i], "double-indirect inner")) return false;
      }
    }
    return true;
  }
};

}  // namespace

ExtFs::FsckReport ExtFs::fsck(BlockDevice& device, sim::SimTime now) {
  FsckReport report;
  Checker c{device, now, {}, {}, false, {}};

  const auto* sblk = c.block(0);
  if (!sblk) {
    report.err = Errno::kEIO;
    report.done = c.t;
    return report;
  }
  std::memcpy(&c.sb, sblk->data(), sizeof(c.sb));
  if (c.sb.magic != kFsMagic) {
    report.problems.push_back("bad superblock magic");
    report.done = c.t;
    return report;
  }

  // Pass 1: inodes and their blocks.
  std::set<std::uint32_t> referenced_blocks;
  std::set<std::uint32_t> allocated_inodes;
  for (std::uint32_t ino = 1; ino < c.sb.num_inodes; ++ino) {
    bool ok = false;
    InodeDisk inode = c.read_inode(ino, &ok);
    if (!ok) break;
    const auto kind = static_cast<InodeKind>(inode.kind);
    if (kind == InodeKind::kFree) continue;
    if (kind != InodeKind::kFile && kind != InodeKind::kDirectory) {
      c.problem("inode " + std::to_string(ino) + ": invalid kind");
      continue;
    }
    allocated_inodes.insert(ino);
    std::vector<std::uint32_t> blocks;
    if (!c.collect_blocks(ino, inode, blocks)) break;
    for (auto b : blocks) {
      if (!referenced_blocks.insert(b).second) {
        c.problem("block " + std::to_string(b) +
                  " multiply referenced (inode " + std::to_string(ino) + ")");
      }
    }
    const std::uint16_t expected_links =
        kind == InodeKind::kDirectory ? 2 : 1;
    if (inode.link_count != expected_links) {
      c.problem("inode " + std::to_string(ino) + ": link count " +
                std::to_string(inode.link_count) + " != " +
                std::to_string(expected_links));
    }
  }

  // Pass 2: block bitmap vs referenced set.
  if (!c.io_failed) {
    for (std::uint32_t b = c.sb.data_start; b < c.sb.total_blocks; ++b) {
      const bool used = c.bitmap_bit(c.sb.block_bitmap_start, b);
      if (c.io_failed) break;
      const bool referenced = referenced_blocks.count(b) != 0;
      if (used && !referenced) {
        c.problem("block " + std::to_string(b) +
                  " marked used but unreferenced");
      } else if (!used && referenced) {
        c.problem("block " + std::to_string(b) +
                  " referenced but marked free");
      }
    }
  }

  // Pass 3: inode bitmap vs allocated set.
  if (!c.io_failed) {
    for (std::uint32_t ino = 1; ino < c.sb.num_inodes; ++ino) {
      const bool used = c.bitmap_bit(c.sb.inode_bitmap_start, ino);
      if (c.io_failed) break;
      const bool allocated =
          allocated_inodes.count(ino) != 0 || ino == kRootInode;
      if (used && !allocated) {
        c.problem("inode " + std::to_string(ino) +
                  " marked used but kind is free");
      } else if (!used && allocated) {
        c.problem("inode " + std::to_string(ino) +
                  " allocated but marked free in bitmap");
      }
    }
  }

  // Pass 4: directory tree reachability.
  if (!c.io_failed) {
    std::set<std::uint32_t> reachable;
    std::vector<std::uint32_t> queue{kRootInode};
    reachable.insert(kRootInode);
    while (!queue.empty()) {
      const std::uint32_t dir_ino = queue.back();
      queue.pop_back();
      bool ok = false;
      InodeDisk dir = c.read_inode(dir_ino, &ok);
      if (!ok) break;
      // Walk the directory's data blocks in file order (direct +
      // single-indirect + double-indirect).
      auto dir_block_at = [&](std::uint64_t fb) -> std::uint32_t {
        if (fb < kDirectBlocks) return dir.direct[fb];
        std::uint64_t idx = fb - kDirectBlocks;
        if (idx < kPtrsPerBlock) {
          if (dir.indirect == 0) return 0;
          const auto* pb = c.block(dir.indirect);
          if (!pb) return 0;
          return reinterpret_cast<const std::uint32_t*>(pb->data())[idx];
        }
        idx -= kPtrsPerBlock;
        if (dir.double_indirect == 0) return 0;
        const auto* ob = c.block(dir.double_indirect);
        if (!ob) return 0;
        const std::uint32_t inner = reinterpret_cast<const std::uint32_t*>(
            ob->data())[idx / kPtrsPerBlock];
        if (inner == 0) return 0;
        const auto* ib = c.block(inner);
        if (!ib) return 0;
        return reinterpret_cast<const std::uint32_t*>(
            ib->data())[idx % kPtrsPerBlock];
      };
      const std::uint64_t nblocks =
          (dir.size_bytes + kFsBlockSize - 1) / kFsBlockSize;
      for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
        const std::uint32_t dirblk = dir_block_at(fb);
        if (dirblk == 0) continue;
        const auto* blk = c.block(dirblk);
        if (!blk) break;
        const auto* ents = reinterpret_cast<const DirentDisk*>(blk->data());
        for (std::uint32_t i = 0; i < kDirentsPerBlock; ++i) {
          const DirentDisk& e = ents[i];
          if (e.inode == 0) continue;
          if (allocated_inodes.count(e.inode) == 0) {
            c.problem("dirent '" + std::string(e.name, e.name_len) +
                      "' points to unallocated inode " +
                      std::to_string(e.inode));
            continue;
          }
          if (!reachable.insert(e.inode).second) {
            c.problem("inode " + std::to_string(e.inode) +
                      " linked more than once");
            continue;
          }
          bool iok = false;
          InodeDisk child = c.read_inode(e.inode, &iok);
          if (!iok) break;
          if (static_cast<InodeKind>(child.kind) == InodeKind::kDirectory) {
            queue.push_back(e.inode);
          }
        }
      }
    }
    for (auto ino : allocated_inodes) {
      if (reachable.count(ino) == 0) {
        c.problem("inode " + std::to_string(ino) +
                  " allocated but unreachable from root");
      }
    }
  }

  report.err = c.io_failed ? Errno::kEIO : Errno::kOk;
  report.done = c.t;
  report.problems = std::move(c.problems);
  return report;
}

}  // namespace deepnote::storage
