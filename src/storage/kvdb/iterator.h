// Merged range scans over the LSM store.
//
// A scan merges the memtable, the immutable memtable and every SST by
// internal key (user key ascending, newest first), deduplicates user
// keys (newest version wins) and drops tombstones — the classic LSM
// merging iterator, materialised through a visitor API.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/time.h"
#include "storage/errors.h"

namespace deepnote::storage::kvdb {

struct ScanResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  std::uint64_t entries = 0;  ///< live entries visited
  bool ok() const { return err == Errno::kOk; }
};

/// Visitor: return false to stop the scan early.
using ScanVisitor =
    std::function<bool(std::string_view key, std::string_view value)>;

}  // namespace deepnote::storage::kvdb
