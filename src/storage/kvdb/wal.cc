#include "storage/kvdb/wal.h"

#include <cstring>
#include <vector>

namespace deepnote::storage::kvdb {
namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

template <typename T>
bool get_pod(const std::vector<std::byte>& buf, std::uint64_t& pos, T* out) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

Wal::Wal(ExtFs& fs, std::string path, std::uint32_t inode)
    : fs_(fs), path_(std::move(path)), inode_(inode) {}

Wal::OpenResult Wal::create(ExtFs& fs, sim::SimTime now,
                            std::string_view path) {
  OpenResult out;
  std::uint32_t ino = 0;
  FsResult cr = fs.create(now, path, &ino);
  if (!cr.ok()) {
    out.err = cr.err;
    out.done = cr.done;
    return out;
  }
  out.done = cr.done;
  out.wal = std::unique_ptr<Wal>(new Wal(fs, std::string(path), ino));
  return out;
}

FsResult Wal::append(sim::SimTime now, EntryType type, std::string_view key,
                     std::string_view value, std::uint64_t sequence) {
  std::vector<std::byte> payload;
  payload.reserve(key.size() + value.size() + 16);
  put_u64(payload, sequence);
  payload.push_back(static_cast<std::byte>(type));
  put_u16(payload, static_cast<std::uint16_t>(key.size()));
  put_u32(payload, static_cast<std::uint32_t>(value.size()));
  const auto* kp = reinterpret_cast<const std::byte*>(key.data());
  payload.insert(payload.end(), kp, kp + key.size());
  const auto* vp = reinterpret_cast<const std::byte*>(value.data());
  payload.insert(payload.end(), vp, vp + value.size());

  std::vector<std::byte> record;
  record.reserve(payload.size() + 12);
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  put_u64(record, fnv1a64(payload.data(), payload.size()));

  FsIoResult io = fs_.write(now, inode_, offset_, record);
  if (!io.ok()) return FsResult{io.err, io.done};
  offset_ += record.size();
  return FsResult{Errno::kOk, io.done};
}

FsResult Wal::sync(sim::SimTime now) { return fs_.fsync(now, inode_); }

Wal::ReplayResult Wal::replay(
    ExtFs& fs, sim::SimTime now, std::string_view path,
    const std::function<void(EntryType, std::string_view, std::string_view,
                             std::uint64_t)>& fn) {
  ReplayResult out;
  FsLookupResult lr = fs.lookup(now, path);
  if (!lr.ok()) {
    out.err = lr.err;
    out.done = lr.done;
    return out;
  }
  FsStatResult st = fs.stat(lr.done, lr.inode);
  if (!st.ok()) {
    out.err = st.err;
    out.done = st.done;
    return out;
  }
  std::vector<std::byte> buf(st.size);
  FsIoResult io = fs.read(st.done, lr.inode, 0, buf);
  out.done = io.done;
  if (!io.ok()) {
    out.err = io.err;
    return out;
  }
  buf.resize(io.bytes);

  std::uint64_t pos = 0;
  while (true) {
    std::uint32_t len = 0;
    if (!get_pod(buf, pos, &len)) break;
    if (pos + len + 8 > buf.size()) break;  // torn tail
    const std::byte* payload = buf.data() + pos;
    std::uint64_t ppos = pos;
    pos += len;
    std::uint64_t crc = 0;
    if (!get_pod(buf, pos, &crc)) break;
    if (crc != fnv1a64(payload, len)) break;  // corrupt: stop

    std::uint64_t seq = 0;
    if (!get_pod(buf, ppos, &seq)) break;
    std::uint8_t type = 0;
    if (!get_pod(buf, ppos, &type)) break;
    std::uint16_t klen = 0;
    if (!get_pod(buf, ppos, &klen)) break;
    std::uint32_t vlen = 0;
    if (!get_pod(buf, ppos, &vlen)) break;
    if (ppos + klen + vlen > buf.size()) break;
    std::string_view key(reinterpret_cast<const char*>(buf.data() + ppos),
                         klen);
    std::string_view value(
        reinterpret_cast<const char*>(buf.data() + ppos + klen), vlen);
    fn(static_cast<EntryType>(type), key, value, seq);
    ++out.records;
    out.max_sequence = std::max(out.max_sequence, seq);
  }
  return out;
}

}  // namespace deepnote::storage::kvdb
