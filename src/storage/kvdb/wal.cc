#include "storage/kvdb/wal.h"

#include <cstring>
#include <vector>

namespace deepnote::storage::kvdb {
namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

// Record checksum: FNV-1a folded over 8-byte words with a byte tail.
// Private to the WAL format (writer and reader live in this file), so it
// only has to agree with itself; the word-at-a-time fold cuts the
// per-byte multiply dependency chain that made fnv1a64 the single
// largest cost of a small append.
std::uint64_t wal_checksum(const std::byte* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  for (; i < n; ++i) {
    h = (h ^ static_cast<std::uint64_t>(data[i])) * 1099511628211ull;
  }
  return h;
}

template <typename T>
bool get_pod(const std::vector<std::byte>& buf, std::uint64_t& pos, T* out) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

Wal::Wal(ExtFs& fs, std::string path, std::uint32_t inode)
    : fs_(fs), path_(std::move(path)), inode_(inode) {}

Wal::OpenResult Wal::create(ExtFs& fs, sim::SimTime now,
                            std::string_view path) {
  OpenResult out;
  std::uint32_t ino = 0;
  FsResult cr = fs.create(now, path, &ino);
  if (!cr.ok()) {
    out.err = cr.err;
    out.done = cr.done;
    return out;
  }
  out.done = cr.done;
  out.wal = std::unique_ptr<Wal>(new Wal(fs, std::string(path), ino));
  return out;
}

FsResult Wal::append(sim::SimTime now, EntryType type, std::string_view key,
                     std::string_view value, std::uint64_t sequence) {
  // Build the whole record ([u32 len][payload][u64 crc]) in one reusable
  // buffer; the payload lives at offset 4 so the crc can hash it in place.
  const std::size_t payload_len = 8 + 1 + 2 + 4 + key.size() + value.size();
  record_scratch_.clear();
  record_scratch_.reserve(payload_len + 12);
  put_u32(record_scratch_, static_cast<std::uint32_t>(payload_len));
  put_u64(record_scratch_, sequence);
  record_scratch_.push_back(static_cast<std::byte>(type));
  put_u16(record_scratch_, static_cast<std::uint16_t>(key.size()));
  put_u32(record_scratch_, static_cast<std::uint32_t>(value.size()));
  const auto* kp = reinterpret_cast<const std::byte*>(key.data());
  record_scratch_.insert(record_scratch_.end(), kp, kp + key.size());
  const auto* vp = reinterpret_cast<const std::byte*>(value.data());
  record_scratch_.insert(record_scratch_.end(), vp, vp + value.size());
  put_u64(record_scratch_,
          wal_checksum(record_scratch_.data() + 4, payload_len));

  FsIoResult io = fs_.write(now, inode_, offset_, record_scratch_);
  if (!io.ok()) return FsResult{io.err, io.done};
  offset_ += record_scratch_.size();
  return FsResult{Errno::kOk, io.done};
}

FsResult Wal::sync(sim::SimTime now) { return fs_.fsync(now, inode_); }

Wal::ReplayResult Wal::replay(
    ExtFs& fs, sim::SimTime now, std::string_view path,
    const std::function<void(EntryType, std::string_view, std::string_view,
                             std::uint64_t)>& fn) {
  ReplayResult out;
  FsLookupResult lr = fs.lookup(now, path);
  if (!lr.ok()) {
    out.err = lr.err;
    out.done = lr.done;
    return out;
  }
  FsStatResult st = fs.stat(lr.done, lr.inode);
  if (!st.ok()) {
    out.err = st.err;
    out.done = st.done;
    return out;
  }
  std::vector<std::byte> buf(st.size);
  FsIoResult io = fs.read(st.done, lr.inode, 0, buf);
  out.done = io.done;
  if (!io.ok()) {
    out.err = io.err;
    return out;
  }
  buf.resize(io.bytes);

  std::uint64_t pos = 0;
  while (true) {
    std::uint32_t len = 0;
    if (!get_pod(buf, pos, &len)) break;
    if (pos + len + 8 > buf.size()) break;  // torn tail
    const std::byte* payload = buf.data() + pos;
    std::uint64_t ppos = pos;
    pos += len;
    std::uint64_t crc = 0;
    if (!get_pod(buf, pos, &crc)) break;
    if (crc != wal_checksum(payload, len)) break;  // corrupt: stop

    std::uint64_t seq = 0;
    if (!get_pod(buf, ppos, &seq)) break;
    std::uint8_t type = 0;
    if (!get_pod(buf, ppos, &type)) break;
    std::uint16_t klen = 0;
    if (!get_pod(buf, ppos, &klen)) break;
    std::uint32_t vlen = 0;
    if (!get_pod(buf, ppos, &vlen)) break;
    if (ppos + klen + vlen > buf.size()) break;
    std::string_view key(reinterpret_cast<const char*>(buf.data() + ppos),
                         klen);
    std::string_view value(
        reinterpret_cast<const char*>(buf.data() + ppos + klen), vlen);
    fn(static_cast<EntryType>(type), key, value, seq);
    ++out.records;
    out.max_sequence = std::max(out.max_sequence, seq);
  }
  return out;
}

}  // namespace deepnote::storage::kvdb
