// Memtable: in-memory sorted buffer of recent writes.
//
// Entries are keyed by (user_key, inverted sequence) so that a lookup
// finds the *newest* entry for a user key first — the RocksDB internal-key
// trick.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "storage/kvdb/skiplist.h"

namespace deepnote::storage::kvdb {

enum class EntryType : std::uint8_t {
  kPut = 1,
  kDelete = 2,
};

struct MemEntry {
  EntryType type = EntryType::kPut;
  std::uint64_t sequence = 0;
  std::string value;
};

/// Result of a point lookup against one container.
enum class LookupState {
  kFound,    ///< value present
  kDeleted,  ///< tombstone: stop searching older containers
  kMissing,  ///< not in this container: search older ones
};

/// Orders internal keys by (user key ascending, sequence descending) —
/// raw byte comparison of the concatenated encoding would mis-order user
/// keys that are prefixes of one another (the binary ~sequence suffix
/// compares higher than printable key bytes).
struct InternalKeyLess {
  bool operator()(std::string_view a, std::string_view b) const;
};

class MemTable {
 public:
  explicit MemTable(std::uint64_t seed = 0x9e37ull) : list_(seed) {}

  void put(std::string_view key, std::string_view value,
           std::uint64_t sequence);
  void del(std::string_view key, std::uint64_t sequence);

  LookupState get(std::string_view key, std::string* value_out) const;

  /// Approximate memory footprint (keys + values + node overhead).
  std::uint64_t approximate_bytes() const { return bytes_; }
  std::size_t entry_count() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

  /// Iterate entries in internal-key order (ascending user key, newest
  /// first within a key).
  void for_each(const std::function<void(std::string_view user_key,
                                         const MemEntry&)>& fn) const;

  /// Iterate from the first entry with user key >= `from`; the visitor
  /// returns false to stop.
  void for_each_from(std::string_view from,
                     const std::function<bool(std::string_view user_key,
                                              const MemEntry&)>& fn) const;

  /// Streaming cursor in internal-key order.
  class Cursor {
   public:
    Cursor() = default;
    bool valid() const { return inner_.valid(); }
    /// The full internal key (user key + inverted sequence).
    std::string_view internal_key() const { return inner_.key(); }
    const MemEntry& entry() const { return inner_.value(); }
    void next() { inner_.next(); }

   private:
    friend class MemTable;
    explicit Cursor(SkipList<MemEntry, InternalKeyLess>::Cursor inner)
        : inner_(inner) {}
    SkipList<MemEntry, InternalKeyLess>::Cursor inner_;
  };
  Cursor cursor_at(std::string_view user_key_from) const;

  /// Internal-key encoding helpers (shared with the SST writer).
  static std::string internal_key(std::string_view user_key,
                                  std::uint64_t sequence);
  static std::string_view user_key_of(std::string_view internal_key);
  static std::uint64_t sequence_of(std::string_view internal_key);

 private:
  /// Encode (user_key, sequence) into the reusable scratch buffer and
  /// return a view of it — the hot-path equivalent of internal_key()
  /// without the per-call string allocation. The view is only valid until
  /// the next build_key call; the skiplist copies it on insert.
  std::string_view build_key(std::string_view user_key,
                             std::uint64_t sequence) const;

  SkipList<MemEntry, InternalKeyLess> list_;
  std::uint64_t bytes_ = 0;
  mutable std::string key_scratch_;  // reused by build_key (const lookups too)
};

}  // namespace deepnote::storage::kvdb
