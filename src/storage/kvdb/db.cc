#include "storage/kvdb/db.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <queue>

namespace deepnote::storage::kvdb {

Db::Db(ExtFs& fs, DbConfig config)
    : fs_(fs), config_(std::move(config)), rng_(config_.seed) {
  memtable_ = std::make_unique<MemTable>(rng_.next_u64());
}

std::string Db::file_path(std::uint64_t number, const char* ext) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06" PRIu64 ".%s", number, ext);
  return config_.root + buf;
}

void Db::enter_fatal(sim::SimTime when, std::string message) {
  if (fatal_) return;
  fatal_ = true;
  fatal_message_ = std::move(message);
  fatal_time_ = when;
}

// ===========================================================================
// Open / recovery

Db::OpenResult Db::open(ExtFs& fs, sim::SimTime now, DbConfig config) {
  OpenResult out;
  auto db = std::unique_ptr<Db>(new Db(fs, std::move(config)));

  FsResult md = fs.mkdir(now, db->config_.root);
  if (!md.ok() && md.err != Errno::kEEXIST) {
    out.err = md.err;
    out.done = md.done;
    return out;
  }
  sim::SimTime t = md.done;

  FsReaddirResult rd = fs.readdir(t, db->config_.root);
  if (!rd.ok()) {
    out.err = rd.err;
    out.done = rd.done;
    return out;
  }
  t = rd.done;

  struct Found {
    std::uint64_t number;
    std::string name;
  };
  std::vector<Found> l0s, l1s, wals;
  for (const auto& e : rd.entries) {
    std::uint64_t number = 0;
    char ext[8] = {};
    if (std::sscanf(e.name.c_str(), "%06" SCNu64 ".%7s", &number, ext) == 2) {
      if (std::string_view(ext) == "l0") l0s.push_back({number, e.name});
      else if (std::string_view(ext) == "l1") l1s.push_back({number, e.name});
      else if (std::string_view(ext) == "wal") wals.push_back({number, e.name});
      db->next_file_number_ = std::max(db->next_file_number_, number + 1);
    }
  }
  // L0: newest (highest number) first.
  std::sort(l0s.begin(), l0s.end(),
            [](const Found& a, const Found& b) { return a.number > b.number; });
  std::sort(l1s.begin(), l1s.end(),
            [](const Found& a, const Found& b) { return a.number < b.number; });
  std::sort(wals.begin(), wals.end(),
            [](const Found& a, const Found& b) { return a.number < b.number; });

  struct OpenedSst {
    std::uint64_t number = 0;
    std::unique_ptr<SstReader> reader;
  };
  auto open_sst = [&](const Found& f, std::vector<OpenedSst>& into) -> bool {
    auto r = SstReader::open(fs, t, db->config_.root + "/" + f.name);
    t = r.done;
    if (r.err == Errno::kEINVAL) {
      // Structurally corrupt: the leftover of a failed or crashed flush.
      // Its WAL was only retired after a successful SstReader::open, so
      // the data is still in a .wal below — delete the garbage and move
      // on (RocksDB does the same for files missing from the manifest).
      FsResult ul = fs.unlink(t, db->config_.root + "/" + f.name);
      t = ul.done;
      if (!ul.ok()) {
        out.err = ul.err;
        return false;
      }
      ++out.corrupt_ssts_removed;
      return true;
    }
    if (!r.ok()) {
      out.err = r.err;
      return false;
    }
    // The open only proves the tail of the file (footer, filter, index)
    // reached the disk. An I/O-error burst during writeback can land
    // those pages while dropping data pages in the middle, leaving a
    // file that opens cleanly and then fails mid-read — compact() hits
    // the write error and goes fatal without a chance to clean up (and
    // a power cut never gives it one). Inputs are unlinked only after
    // every output opens, so a file that fails a full structural scan
    // is always a redundant partial copy: its data is still in a .wal
    // or in the surviving input SSTs. Delete it like an open-time
    // EINVAL. A real disk error (EIO) still fails the open instead.
    FsResult sc = r.reader->scan(t, [](std::string_view, const MemEntry&) {});
    t = sc.done;
    if (sc.err == Errno::kEINVAL) {
      FsResult ul = fs.unlink(t, db->config_.root + "/" + f.name);
      t = ul.done;
      if (!ul.ok()) {
        out.err = ul.err;
        return false;
      }
      ++out.corrupt_ssts_removed;
      return true;
    }
    if (!sc.ok()) {
      out.err = sc.err;
      return false;
    }
    db->last_sequence_ =
        std::max(db->last_sequence_, r.reader->max_sequence());
    into.push_back({f.number, std::move(r.reader)});
    return true;
  };
  std::vector<OpenedSst> l0r, l1r;
  for (const auto& f : l0s) {
    if (!open_sst(f, l0r)) {
      out.done = t;
      return out;
    }
  }
  for (const auto& f : l1s) {
    if (!open_sst(f, l1r)) {
      out.done = t;
      return out;
    }
  }
  std::sort(l1r.begin(), l1r.end(), [](const auto& a, const auto& b) {
    return a.reader->smallest() < b.reader->smallest();
  });

  // Resolve L1 overlaps left by a crashed compaction. Outputs are
  // fsync'd before the input unlinks commit, so a crash can leave both
  // generations visible, and there is no manifest to arbitrate. The
  // higher-numbered file of an overlapping pair is the orphaned
  // compaction output — a merged duplicate of the surviving inputs —
  // so demote it to L0, where lookup precedence is by recency. The
  // next compaction folds everything back into a disjoint L1.
  std::vector<OpenedSst> l1_keep;
  for (auto& s : l1r) {
    if (!l1_keep.empty() &&
        !(l1_keep.back().reader->largest() < s.reader->smallest())) {
      ++out.l1_overlaps_demoted;
      if (s.number > l1_keep.back().number) {
        l0r.push_back(std::move(s));
      } else {
        l0r.push_back(std::move(l1_keep.back()));
        l1_keep.back() = std::move(s);
      }
      continue;
    }
    l1_keep.push_back(std::move(s));
  }

  // L0: newest (highest number) first.
  std::sort(l0r.begin(), l0r.end(), [](const auto& a, const auto& b) {
    return a.number > b.number;
  });
  for (auto& s : l0r) db->l0_.push_back(std::move(s.reader));
  for (auto& s : l1_keep) db->l1_.push_back(std::move(s.reader));

  // Replay WALs oldest-first, then delete them (their contents will be in
  // the next flush).
  for (const auto& f : wals) {
    auto rr = Wal::replay(
        fs, t, db->config_.root + "/" + f.name,
        [&](EntryType type, std::string_view key, std::string_view value,
            std::uint64_t seq) {
          if (type == EntryType::kPut) {
            db->memtable_->put(key, value, seq);
          } else {
            db->memtable_->del(key, seq);
          }
          db->last_sequence_ = std::max(db->last_sequence_, seq);
        });
    t = rr.done;
    if (rr.err != Errno::kOk) {
      out.err = rr.err;
      out.done = t;
      return out;
    }
    out.wal_records_recovered += rr.records;
    FsResult ul = fs.unlink(t, db->config_.root + "/" + f.name);
    t = ul.done;
    if (!ul.ok()) {
      out.err = ul.err;
      out.done = t;
      return out;
    }
  }

  // Fresh WAL.
  db->wal_number_ = db->next_file_number_++;
  auto wr = Wal::create(fs, t, db->file_path(db->wal_number_, "wal"));
  t = wr.done;
  if (!wr.ok()) {
    out.err = wr.err;
    out.done = t;
    return out;
  }
  db->wal_ = std::move(wr.wal);

  out.done = t;
  out.db = std::move(db);
  return out;
}

// ===========================================================================
// Writes

DbResult Db::put(sim::SimTime now, std::string_view key,
                 std::string_view value) {
  if (fatal_) return DbResult{Errno::kEIO, now};
  if (immutable_ &&
      (memtable_->approximate_bytes() >= config_.write_buffer_bytes ||
       now - flush_pending_since_ > config_.stall_grace)) {
    // Write stall: the active memtable is full again, or the flush thread
    // has been wedged long enough that the write path is blocked behind
    // the outstanding WAL sync.
    ++stats_.stalled_writes;
    return DbResult{Errno::kEAGAIN, now + config_.put_cpu};
  }
  sim::SimTime t = now + config_.put_cpu;
  ++stats_.puts;
  const std::uint64_t seq = ++last_sequence_;
  FsResult ap = wal_->append(t, EntryType::kPut, key, value, seq);
  t = ap.done;
  if (!ap.ok()) {
    enter_fatal(t, std::string("WAL append failed: ") + errno_name(ap.err));
    return DbResult{Errno::kEIO, t};
  }
  memtable_->put(key, value, seq);
  stats_.bytes_written += key.size() + value.size();
  if (!immutable_ &&
      memtable_->approximate_bytes() >= config_.write_buffer_bytes) {
    DbResult fr = switch_memtable(t);
    if (!fr.ok()) return fr;
    t = fr.done;
  }
  return DbResult{Errno::kOk, t};
}

DbResult Db::del(sim::SimTime now, std::string_view key) {
  if (fatal_) return DbResult{Errno::kEIO, now};
  if (immutable_ &&
      (memtable_->approximate_bytes() >= config_.write_buffer_bytes ||
       now - flush_pending_since_ > config_.stall_grace)) {
    ++stats_.stalled_writes;
    return DbResult{Errno::kEAGAIN, now + config_.put_cpu};
  }
  sim::SimTime t = now + config_.put_cpu;
  ++stats_.deletes;
  const std::uint64_t seq = ++last_sequence_;
  FsResult ap = wal_->append(t, EntryType::kDelete, key, {}, seq);
  t = ap.done;
  if (!ap.ok()) {
    enter_fatal(t, std::string("WAL append failed: ") + errno_name(ap.err));
    return DbResult{Errno::kEIO, t};
  }
  memtable_->del(key, seq);
  if (!immutable_ &&
      memtable_->approximate_bytes() >= config_.write_buffer_bytes) {
    DbResult fr = switch_memtable(t);
    if (!fr.ok()) return fr;
    t = fr.done;
  }
  return DbResult{Errno::kOk, t};
}

DbResult Db::switch_memtable(sim::SimTime now) {
  sim::SimTime t = now;
  immutable_ = std::move(memtable_);
  old_wal_ = std::move(wal_);
  old_wal_number_ = wal_number_;
  flush_pending_since_ = t;

  wal_number_ = next_file_number_++;
  auto wc = Wal::create(fs_, t, file_path(wal_number_, "wal"));
  t = wc.done;
  if (!wc.ok()) {
    enter_fatal(t, "WAL creation failed");
    return DbResult{Errno::kEIO, t};
  }
  wal_ = std::move(wc.wal);
  memtable_ = std::make_unique<MemTable>(rng_.next_u64());
  return DbResult{Errno::kOk, t};
}

DbResult Db::do_flush(sim::SimTime now) {
  if (fatal_) return DbResult{Errno::kEIO, now};
  if (!immutable_) return DbResult{Errno::kOk, now};
  sim::SimTime t = now;
  ++stats_.flushes;

  // RocksDB syncs the outgoing WAL before its memtable is flushed; a
  // failure here is the paper's RocksDB crash signature.
  ++stats_.wal_syncs;
  FsResult sr = old_wal_->sync(t);
  t = sr.done;
  if (!sr.ok()) {
    enter_fatal(t,
                "sync_without_flush_called: WAL sync failed (" +
                    std::string(errno_name(sr.err)) + ")");
    return DbResult{Errno::kEIO, t};
  }

  // Write the immutable memtable out as an L0 file.
  SstBuilder builder(immutable_->entry_count());
  immutable_->for_each([&](std::string_view key, const MemEntry& e) {
    builder.add(key, e);
  });
  const std::uint64_t file_no = next_file_number_++;
  FsResult wr = builder.write_to(fs_, t, file_path(file_no, "l0"));
  t = wr.done;
  if (!wr.ok()) {
    enter_fatal(t, std::string("memtable flush failed: ") +
                       errno_name(wr.err));
    return DbResult{Errno::kEIO, t};
  }
  auto open = SstReader::open(fs_, t, file_path(file_no, "l0"));
  t = open.done;
  if (!open.ok()) {
    enter_fatal(t, "flushed SST unreadable");
    return DbResult{Errno::kEIO, t};
  }
  l0_.insert(l0_.begin(), std::move(open.reader));
  immutable_.reset();

  // Retire the flushed WAL.
  FsResult ul = fs_.unlink(t, file_path(old_wal_number_, "wal"));
  t = ul.done;
  old_wal_.reset();
  if (!ul.ok()) {
    enter_fatal(t, "WAL retirement failed");
    return DbResult{Errno::kEIO, t};
  }

  if (l0_.size() >= config_.l0_compaction_trigger) {
    DbResult cr = compact(t);
    if (!cr.ok()) return cr;
    t = cr.done;
  }
  return DbResult{Errno::kOk, t};
}

DbResult Db::compact(sim::SimTime now) {
  sim::SimTime t = now;
  ++stats_.compactions;

  // Load every input (all L0 + all L1) and k-way merge by internal key.
  struct Input {
    std::vector<std::pair<std::string, MemEntry>> entries;  // internal order
    std::size_t pos = 0;
  };
  std::vector<Input> inputs;
  std::vector<std::string> input_paths;
  auto load = [&](SstReader& r) -> Errno {
    Input in;
    FsResult sr = r.scan(t, [&](std::string_view key, const MemEntry& e) {
      in.entries.emplace_back(MemTable::internal_key(key, e.sequence), e);
    });
    t = sr.done;
    if (!sr.ok()) return sr.err;
    inputs.push_back(std::move(in));
    input_paths.push_back(r.path());
    return Errno::kOk;
  };
  for (auto& r : l0_) {
    Errno e = load(*r);
    if (e != Errno::kOk) {
      enter_fatal(t, "compaction input read failed");
      return DbResult{Errno::kEIO, t};
    }
  }
  for (auto& r : l1_) {
    Errno e = load(*r);
    if (e != Errno::kOk) {
      enter_fatal(t, "compaction input read failed");
      return DbResult{Errno::kEIO, t};
    }
  }

  const InternalKeyLess less;
  auto cmp = [&](std::size_t a, std::size_t b) {
    // min-heap on internal key order (user key asc, sequence desc).
    return less(inputs[b].entries[inputs[b].pos].first,
                inputs[a].entries[inputs[a].pos].first);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)>
      heap(cmp);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].entries.empty()) heap.push(i);
  }

  // Emit the newest version of each user key; drop tombstones (this is a
  // full compaction — nothing older remains beneath L1).
  std::vector<std::unique_ptr<SstBuilder>> outputs;
  std::vector<std::uint64_t> output_numbers;
  auto new_output = [&] {
    outputs.push_back(std::make_unique<SstBuilder>(1 << 16));
    output_numbers.push_back(next_file_number_++);
  };
  std::string last_user_key;
  bool have_last = false;
  while (!heap.empty()) {
    const std::size_t i = heap.top();
    heap.pop();
    auto& in = inputs[i];
    const auto& [ikey, entry] = in.entries[in.pos];
    const std::string_view ukey = MemTable::user_key_of(ikey);
    if (!have_last || ukey != last_user_key) {
      last_user_key.assign(ukey);
      have_last = true;
      if (entry.type == EntryType::kPut) {
        if (outputs.empty() ||
            outputs.back()->data_bytes() >= config_.target_sst_bytes) {
          new_output();
        }
        outputs.back()->add(ukey, entry);
      }
    }
    if (++in.pos < in.entries.size()) heap.push(i);
  }

  // Write outputs, open readers.
  std::vector<std::unique_ptr<SstReader>> new_l1;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const std::string path = file_path(output_numbers[i], "l1");
    FsResult wr = outputs[i]->write_to(fs_, t, path);
    t = wr.done;
    if (!wr.ok()) {
      enter_fatal(t, "compaction output write failed");
      return DbResult{Errno::kEIO, t};
    }
    auto open = SstReader::open(fs_, t, path);
    t = open.done;
    if (!open.ok()) {
      enter_fatal(t, "compaction output unreadable");
      return DbResult{Errno::kEIO, t};
    }
    new_l1.push_back(std::move(open.reader));
  }

  // Install the new version and delete the inputs.
  l0_.clear();
  l1_ = std::move(new_l1);
  for (const auto& path : input_paths) {
    FsResult ul = fs_.unlink(t, path);
    t = ul.done;
    if (!ul.ok()) {
      enter_fatal(t, "compaction input deletion failed");
      return DbResult{Errno::kEIO, t};
    }
  }
  return DbResult{Errno::kOk, t};
}

// ===========================================================================
// Reads

DbGetResult Db::get(sim::SimTime now, std::string_view key) {
  DbGetResult r;
  if (fatal_) {
    r.err = Errno::kEIO;
    r.done = now;
    return r;
  }
  if (immutable_ && now - flush_pending_since_ > config_.stall_grace) {
    // The flush thread has been wedged long enough that the whole store
    // is blocked behind the commit path (global stall).
    ++stats_.stalled_reads;
    r.err = Errno::kEAGAIN;
    r.done = now + config_.get_cpu;
    return r;
  }
  sim::SimTime t = now + config_.get_cpu;
  ++stats_.gets;

  LookupState ms = memtable_->get(key, &r.value);
  if (ms == LookupState::kMissing && immutable_) {
    ms = immutable_->get(key, &r.value);
  }
  if (ms == LookupState::kFound) {
    ++stats_.memtable_hits;
    r.found = true;
    r.done = t;
    stats_.bytes_read += key.size() + r.value.size();
    return r;
  }
  if (ms == LookupState::kDeleted) {
    r.done = t;
    return r;
  }

  for (auto& sst : l0_) {
    SstGetResult sr = sst->get(t, key);
    t = sr.done;
    ++stats_.sst_block_reads;
    if (sr.err != Errno::kOk) {
      r.err = sr.err;
      r.done = t;
      return r;
    }
    if (sr.state == LookupState::kFound) {
      r.found = true;
      r.value = std::move(sr.value);
      r.done = t;
      stats_.bytes_read += key.size() + r.value.size();
      return r;
    }
    if (sr.state == LookupState::kDeleted) {
      r.done = t;
      return r;
    }
  }

  // L1: at most one file can contain the key.
  auto it = std::lower_bound(
      l1_.begin(), l1_.end(), key,
      [](const std::unique_ptr<SstReader>& r2, std::string_view k) {
        return r2->largest() < k;
      });
  if (it != l1_.end() && (*it)->smallest() <= key) {
    SstGetResult sr = (*it)->get(t, key);
    t = sr.done;
    ++stats_.sst_block_reads;
    if (sr.err != Errno::kOk) {
      r.err = sr.err;
      r.done = t;
      return r;
    }
    if (sr.state == LookupState::kFound) {
      r.found = true;
      r.value = std::move(sr.value);
      stats_.bytes_read += key.size() + r.value.size();
    }
  }
  r.done = t;
  return r;
}

// ===========================================================================
// Flush / close

DbResult Db::flush(sim::SimTime now) {
  if (fatal_) return DbResult{Errno::kEIO, now};
  sim::SimTime t = now;
  if (immutable_) {
    DbResult fr = do_flush(t);
    if (!fr.ok()) return fr;
    t = fr.done;
  }
  if (memtable_->empty()) return DbResult{Errno::kOk, t};
  DbResult sw = switch_memtable(t);
  if (!sw.ok()) return sw;
  return do_flush(sw.done);
}

DbResult Db::close(sim::SimTime now) {
  if (fatal_) return DbResult{Errno::kEIO, now};
  DbResult fr = flush(now);
  if (!fr.ok()) return fr;
  FsResult sr = wal_->sync(fr.done);
  if (!sr.ok()) {
    enter_fatal(sr.done, "WAL sync on close failed");
    return DbResult{Errno::kEIO, sr.done};
  }
  return DbResult{Errno::kOk, sr.done};
}


// ===========================================================================
// Range scans

namespace {

/// Uniform view over the per-level cursors for the merge heap.
struct ScanSource {
  enum class Kind { kMem, kSst } kind;
  MemTable::Cursor mem;
  SstReader::Cursor sst;

  bool valid() const {
    return kind == Kind::kMem ? mem.valid() : sst.valid();
  }
  std::string_view internal_key() const {
    if (kind == Kind::kMem) return mem.internal_key();
    return sst.key();
  }
  const MemEntry& entry() const {
    return kind == Kind::kMem ? mem.entry() : sst.entry();
  }
  Errno next(sim::SimTime& t) {
    if (kind == Kind::kMem) {
      mem.next();
      return Errno::kOk;
    }
    return sst.next(t);
  }
};

}  // namespace

ScanResult Db::scan(sim::SimTime now, std::string_view start_key,
                    std::string_view end_key, const ScanVisitor& visit) {
  ScanResult out;
  if (fatal_) {
    out.err = Errno::kEIO;
    out.done = now;
    return out;
  }
  if (immutable_ && now - flush_pending_since_ > config_.stall_grace) {
    ++stats_.stalled_reads;
    out.err = Errno::kEAGAIN;
    out.done = now + config_.get_cpu;
    return out;
  }
  sim::SimTime t = now + config_.get_cpu;

  // One streaming cursor per level; blocks load lazily as the merge
  // advances, so a short scan touches only a handful of blocks.
  std::vector<ScanSource> sources;
  {
    ScanSource s{ScanSource::Kind::kMem, memtable_->cursor_at(start_key), {}};
    if (s.valid()) sources.push_back(std::move(s));
  }
  if (immutable_) {
    ScanSource s{ScanSource::Kind::kMem, immutable_->cursor_at(start_key), {}};
    if (s.valid()) sources.push_back(std::move(s));
  }
  auto add_sst = [&](SstReader& sst) -> Errno {
    if (sst.largest() < start_key) return Errno::kOk;
    if (!end_key.empty() && sst.smallest() >= end_key) return Errno::kOk;
    Errno err = Errno::kOk;
    ScanSource s{ScanSource::Kind::kSst, {}, sst.seek(t, start_key, &err)};
    if (err != Errno::kOk) return err;
    if (s.valid()) sources.push_back(std::move(s));
    return Errno::kOk;
  };
  for (auto& sst : l0_) {
    const Errno err = add_sst(*sst);
    if (err != Errno::kOk) {
      out.err = err;
      out.done = t;
      return out;
    }
  }
  for (auto& sst : l1_) {
    const Errno err = add_sst(*sst);
    if (err != Errno::kOk) {
      out.err = err;
      out.done = t;
      return out;
    }
  }

  const InternalKeyLess less;
  auto cmp = [&](std::size_t a, std::size_t b) {
    // min-heap on internal key order.
    return less(sources[b].internal_key(), sources[a].internal_key());
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)>
      heap(cmp);
  for (std::size_t i = 0; i < sources.size(); ++i) heap.push(i);

  std::string last_user_key;
  bool have_last = false;
  while (!heap.empty()) {
    const std::size_t i = heap.top();
    heap.pop();
    ScanSource& src = sources[i];
    const std::string_view ukey = MemTable::user_key_of(src.internal_key());
    if (!end_key.empty() && ukey >= end_key) {
      // This source is past the range; drop it (keys only grow).
      continue;
    }
    bool stop = false;
    if (!have_last || ukey != last_user_key) {
      last_user_key.assign(ukey);
      have_last = true;
      if (src.entry().type == EntryType::kPut) {
        ++out.entries;
        stats_.bytes_read += ukey.size() + src.entry().value.size();
        if (!visit(ukey, src.entry().value)) stop = true;
      }
    }
    if (stop) break;
    const Errno err = src.next(t);
    if (err != Errno::kOk) {
      out.err = err;
      out.done = t;
      return out;
    }
    if (src.valid()) heap.push(i);
  }
  out.done = t;
  return out;
}


// ===========================================================================
// Integrity verification

Db::VerifyReport Db::verify_integrity(sim::SimTime now) {
  VerifyReport report;
  sim::SimTime t = now;
  const InternalKeyLess less;

  auto check_sst = [&](SstReader& sst, const char* level) {
    std::string prev_ikey;
    bool have_prev = false;
    std::uint64_t count = 0;
    std::uint64_t max_seq = 0;
    FsResult sr = sst.scan(t, [&](std::string_view key, const MemEntry& e) {
      const std::string ikey = MemTable::internal_key(key, e.sequence);
      if (have_prev && !less(prev_ikey, ikey)) {
        report.problems.push_back(std::string(level) + " " + sst.path() +
                                  ": entries out of order near key '" +
                                  std::string(key) + "'");
      }
      if (key < sst.smallest() || sst.largest() < key) {
        report.problems.push_back(std::string(level) + " " + sst.path() +
                                  ": key '" + std::string(key) +
                                  "' outside [smallest, largest]");
      }
      prev_ikey = ikey;
      have_prev = true;
      ++count;
      max_seq = std::max(max_seq, e.sequence);
      return;
    });
    t = sr.done;
    if (!sr.ok()) {
      report.problems.push_back(std::string(level) + " " + sst.path() +
                                ": unreadable (" + errno_name(sr.err) + ")");
      return;
    }
    if (count != sst.entry_count()) {
      report.problems.push_back(
          std::string(level) + " " + sst.path() + ": footer entry count " +
          std::to_string(sst.entry_count()) + " != scanned " +
          std::to_string(count));
    }
    if (max_seq != sst.max_sequence()) {
      report.problems.push_back(std::string(level) + " " + sst.path() +
                                ": footer max sequence mismatch");
    }
  };
  for (auto& sst : l0_) check_sst(*sst, "L0");
  for (auto& sst : l1_) check_sst(*sst, "L1");

  // L1 files must be sorted and non-overlapping.
  for (std::size_t i = 1; i < l1_.size(); ++i) {
    if (!(l1_[i - 1]->largest() < l1_[i]->smallest())) {
      report.problems.push_back("L1 files overlap: " + l1_[i - 1]->path() +
                                " and " + l1_[i]->path());
    }
  }
  report.done = t;
  return report;
}

}  // namespace deepnote::storage::kvdb
