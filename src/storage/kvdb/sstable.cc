#include "storage/kvdb/sstable.h"

#include <algorithm>
#include <cstring>

namespace deepnote::storage::kvdb {
namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}
void put_bytes(std::vector<std::byte>& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

struct ByteCursor {
  const std::byte* p;
  const std::byte* end;
  bool ok = true;

  template <typename T>
  T get() {
    if (p + sizeof(T) > end) {
      ok = false;
      return T{};
    }
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
  std::string get_string(std::size_t len) {
    if (p + len > end) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
};

}  // namespace

// ===========================================================================
// Builder

SstBuilder::SstBuilder(std::size_t expected_keys) : bloom_(expected_keys) {}

void SstBuilder::add(std::string_view user_key, const MemEntry& entry) {
  if (entry_count_ == 0) smallest_.assign(user_key);
  largest_.assign(user_key);
  if (user_key != last_user_key_seen_) {
    bloom_.add(user_key);
    last_user_key_seen_.assign(user_key);
  }
  max_sequence_ = std::max(max_sequence_, entry.sequence);

  put_u16(current_, static_cast<std::uint16_t>(user_key.size()));
  put_u32(current_, static_cast<std::uint32_t>(entry.value.size()));
  put_u64(current_, entry.sequence);
  current_.push_back(static_cast<std::byte>(entry.type));
  put_bytes(current_, user_key);
  put_bytes(current_, entry.value);
  block_last_key_.assign(user_key);
  ++entry_count_;

  if (current_.size() >= kTargetDataBlockBytes) finish_block();
}

void SstBuilder::finish_block() {
  if (current_.empty()) return;
  index_.push_back(IndexEntry{data_.size(),
                              static_cast<std::uint32_t>(current_.size()),
                              block_last_key_});
  data_.insert(data_.end(), current_.begin(), current_.end());
  current_.clear();
}

FsResult SstBuilder::write_to(ExtFs& fs, sim::SimTime now,
                              std::string_view path) {
  finish_block();

  std::vector<std::byte> file = std::move(data_);
  data_.clear();

  SstFooter footer;
  footer.entry_count = entry_count_;
  footer.max_sequence = max_sequence_;

  // Filter block.
  footer.filter_offset = file.size();
  {
    const auto bits = bloom_.serialize();
    footer.filter_size = static_cast<std::uint32_t>(bits.size());
    const auto* p = reinterpret_cast<const std::byte*>(bits.data());
    file.insert(file.end(), p, p + bits.size());
  }

  // Index block.
  footer.index_offset = file.size();
  {
    std::vector<std::byte> idx;
    put_u32(idx, static_cast<std::uint32_t>(index_.size()));
    for (const auto& e : index_) {
      put_u64(idx, e.offset);
      put_u32(idx, e.size);
      put_u16(idx, static_cast<std::uint16_t>(e.last_key.size()));
      put_bytes(idx, e.last_key);
    }
    footer.index_size = static_cast<std::uint32_t>(idx.size());
    file.insert(file.end(), idx.begin(), idx.end());
  }

  // Props.
  footer.props_offset = file.size();
  {
    std::vector<std::byte> props;
    put_u16(props, static_cast<std::uint16_t>(smallest_.size()));
    put_bytes(props, smallest_);
    put_u16(props, static_cast<std::uint16_t>(largest_.size()));
    put_bytes(props, largest_);
    footer.props_size = static_cast<std::uint32_t>(props.size());
    file.insert(file.end(), props.begin(), props.end());
  }

  // Footer.
  {
    std::vector<std::byte> f;
    put_u64(f, footer.index_offset);
    put_u32(f, footer.index_size);
    put_u64(f, footer.filter_offset);
    put_u32(f, footer.filter_size);
    put_u64(f, footer.props_offset);
    put_u32(f, footer.props_size);
    put_u64(f, footer.entry_count);
    put_u64(f, footer.max_sequence);
    put_u32(f, footer.magic);
    file.insert(file.end(), f.begin(), f.end());
  }

  std::uint32_t ino = 0;
  FsResult cr = fs.create(now, path, &ino);
  if (!cr.ok()) return cr;
  FsIoResult wr = fs.write(cr.done, ino, 0, file);
  if (!wr.ok()) return FsResult{wr.err, wr.done};
  return fs.fsync(wr.done, ino);
}

// ===========================================================================
// Reader

SstReader::SstReader(ExtFs& fs, std::string path, std::uint32_t inode)
    : fs_(fs), path_(std::move(path)), inode_(inode) {}

SstReader::OpenResult SstReader::open(ExtFs& fs, sim::SimTime now,
                                      std::string_view path) {
  OpenResult out;
  FsLookupResult lr = fs.lookup(now, path);
  if (!lr.ok()) {
    out.err = lr.err;
    out.done = lr.done;
    return out;
  }
  FsStatResult st = fs.stat(lr.done, lr.inode);
  if (!st.ok()) {
    out.err = st.err;
    out.done = st.done;
    return out;
  }
  constexpr std::uint64_t kFooterSize = 8 + 4 + 8 + 4 + 8 + 4 + 8 + 8 + 4;
  if (st.size < kFooterSize) {
    out.err = Errno::kEINVAL;
    out.done = st.done;
    return out;
  }
  auto reader = std::unique_ptr<SstReader>(
      new SstReader(fs, std::string(path), lr.inode));

  std::vector<std::byte> fbuf(kFooterSize);
  FsIoResult io = fs.read(st.done, lr.inode, st.size - kFooterSize, fbuf);
  if (!io.ok() || io.bytes != kFooterSize) {
    out.err = io.ok() ? Errno::kEINVAL : io.err;
    out.done = io.done;
    return out;
  }
  ByteCursor c{fbuf.data(), fbuf.data() + fbuf.size()};
  SstFooter footer;
  footer.index_offset = c.get<std::uint64_t>();
  footer.index_size = c.get<std::uint32_t>();
  footer.filter_offset = c.get<std::uint64_t>();
  footer.filter_size = c.get<std::uint32_t>();
  footer.props_offset = c.get<std::uint64_t>();
  footer.props_size = c.get<std::uint32_t>();
  footer.entry_count = c.get<std::uint64_t>();
  footer.max_sequence = c.get<std::uint64_t>();
  footer.magic = c.get<std::uint32_t>();
  if (!c.ok || footer.magic != kSstMagic) {
    out.err = Errno::kEINVAL;
    out.done = io.done;
    return out;
  }
  reader->entry_count_ = footer.entry_count;
  reader->max_sequence_ = footer.max_sequence;

  sim::SimTime t = io.done;

  // Filter.
  {
    std::vector<std::byte> buf(footer.filter_size);
    io = fs.read(t, lr.inode, footer.filter_offset, buf);
    if (!io.ok() || io.bytes != footer.filter_size) {
      out.err = io.ok() ? Errno::kEINVAL : io.err;
      out.done = io.done;
      return out;
    }
    t = io.done;
    reader->bloom_ = BloomFilter::deserialize(
        reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size());
  }

  // Index.
  {
    std::vector<std::byte> buf(footer.index_size);
    io = fs.read(t, lr.inode, footer.index_offset, buf);
    if (!io.ok() || io.bytes != footer.index_size) {
      out.err = io.ok() ? Errno::kEINVAL : io.err;
      out.done = io.done;
      return out;
    }
    t = io.done;
    ByteCursor ic{buf.data(), buf.data() + buf.size()};
    const std::uint32_t count = ic.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count && ic.ok; ++i) {
      IndexEntry e;
      e.offset = ic.get<std::uint64_t>();
      e.size = ic.get<std::uint32_t>();
      const std::uint16_t klen = ic.get<std::uint16_t>();
      e.last_key = ic.get_string(klen);
      reader->index_.push_back(std::move(e));
    }
    if (!ic.ok) {
      out.err = Errno::kEINVAL;
      out.done = t;
      return out;
    }
  }

  // Props.
  {
    std::vector<std::byte> buf(footer.props_size);
    io = fs.read(t, lr.inode, footer.props_offset, buf);
    if (!io.ok() || io.bytes != footer.props_size) {
      out.err = io.ok() ? Errno::kEINVAL : io.err;
      out.done = io.done;
      return out;
    }
    t = io.done;
    ByteCursor pc{buf.data(), buf.data() + buf.size()};
    const std::uint16_t slen = pc.get<std::uint16_t>();
    reader->smallest_ = pc.get_string(slen);
    const std::uint16_t llen = pc.get<std::uint16_t>();
    reader->largest_ = pc.get_string(llen);
    if (!pc.ok) {
      out.err = Errno::kEINVAL;
      out.done = t;
      return out;
    }
  }

  out.done = t;
  out.reader = std::move(reader);
  return out;
}

SstGetResult SstReader::get(sim::SimTime now, std::string_view user_key) {
  SstGetResult r;
  r.done = now;
  if (user_key < smallest_ || user_key > largest_) return r;
  if (bloom_ && !bloom_->may_contain(user_key)) return r;

  // First block whose last key >= user_key.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), user_key,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  if (it == index_.end()) return r;

  std::vector<std::byte> block(it->size);
  FsIoResult io = fs_.read(now, inode_, it->offset, block);
  r.done = io.done;
  if (!io.ok() || io.bytes != it->size) {
    r.err = io.ok() ? Errno::kEINVAL : io.err;
    return r;
  }
  ByteCursor c{block.data(), block.data() + block.size()};
  while (c.ok && c.p < c.end) {
    const std::uint16_t klen = c.get<std::uint16_t>();
    const std::uint32_t vlen = c.get<std::uint32_t>();
    const std::uint64_t seq = c.get<std::uint64_t>();
    const auto type = static_cast<EntryType>(c.get<std::uint8_t>());
    const std::string key = c.get_string(klen);
    const std::string value = c.get_string(vlen);
    (void)seq;
    if (!c.ok) break;
    if (key == user_key) {
      // Entries for a user key are newest-first: the first hit wins.
      if (type == EntryType::kDelete) {
        r.state = LookupState::kDeleted;
      } else {
        r.state = LookupState::kFound;
        r.value = value;
      }
      return r;
    }
    if (key > user_key) break;
  }
  return r;
}

FsResult SstReader::scan(
    sim::SimTime now,
    const std::function<void(std::string_view, const MemEntry&)>& fn) {
  sim::SimTime t = now;
  for (const auto& ie : index_) {
    std::vector<std::byte> block(ie.size);
    FsIoResult io = fs_.read(t, inode_, ie.offset, block);
    t = io.done;
    if (!io.ok() || io.bytes != ie.size) {
      return FsResult{io.ok() ? Errno::kEINVAL : io.err, t};
    }
    ByteCursor c{block.data(), block.data() + block.size()};
    while (c.ok && c.p < c.end) {
      const std::uint16_t klen = c.get<std::uint16_t>();
      const std::uint32_t vlen = c.get<std::uint32_t>();
      MemEntry e;
      e.sequence = c.get<std::uint64_t>();
      e.type = static_cast<EntryType>(c.get<std::uint8_t>());
      const std::string key = c.get_string(klen);
      e.value = c.get_string(vlen);
      if (!c.ok) return FsResult{Errno::kEINVAL, t};
      fn(key, e);
    }
  }
  return FsResult{Errno::kOk, t};
}


FsResult SstReader::scan_from(
    sim::SimTime now, std::string_view start,
    const std::function<bool(std::string_view, const MemEntry&)>& fn) {
  sim::SimTime t = now;
  // First block whose last key >= start.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), start,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  for (; it != index_.end(); ++it) {
    std::vector<std::byte> block(it->size);
    FsIoResult io = fs_.read(t, inode_, it->offset, block);
    t = io.done;
    if (!io.ok() || io.bytes != it->size) {
      return FsResult{io.ok() ? Errno::kEINVAL : io.err, t};
    }
    ByteCursor c{block.data(), block.data() + block.size()};
    while (c.ok && c.p < c.end) {
      const std::uint16_t klen = c.get<std::uint16_t>();
      const std::uint32_t vlen = c.get<std::uint32_t>();
      MemEntry e;
      e.sequence = c.get<std::uint64_t>();
      e.type = static_cast<EntryType>(c.get<std::uint8_t>());
      const std::string key = c.get_string(klen);
      e.value = c.get_string(vlen);
      if (!c.ok) return FsResult{Errno::kEINVAL, t};
      if (key < start) continue;
      if (!fn(key, e)) return FsResult{Errno::kOk, t};
    }
  }
  return FsResult{Errno::kOk, t};
}


/// Decodes a data block into (internal key, entry) pairs.
static void Cursor_decode(
    const std::vector<std::byte>& block,
    std::vector<std::pair<std::string, MemEntry>>& out) {
  ByteCursor c{block.data(), block.data() + block.size()};
  while (c.ok && c.p < c.end) {
    const std::uint16_t klen = c.get<std::uint16_t>();
    const std::uint32_t vlen = c.get<std::uint32_t>();
    MemEntry e;
    e.sequence = c.get<std::uint64_t>();
    e.type = static_cast<EntryType>(c.get<std::uint8_t>());
    const std::string key = c.get_string(klen);
    e.value = c.get_string(vlen);
    if (!c.ok) return;
    out.emplace_back(MemTable::internal_key(key, e.sequence), std::move(e));
  }
}


Errno SstReader::Cursor::load_next_block(sim::SimTime& t) {
  entries_.clear();
  pos_ = 0;
  if (!sst_ || block_idx_ >= sst_->index_.size()) return Errno::kOk;
  const auto& ie = sst_->index_[block_idx_++];
  std::vector<std::byte> block(ie.size);
  FsIoResult io = sst_->fs_.read(t, sst_->inode_, ie.offset, block);
  t = io.done;
  if (!io.ok() || io.bytes != ie.size) {
    return io.ok() ? Errno::kEINVAL : io.err;
  }
  Cursor_decode(block, entries_);
  return entries_.empty() ? Errno::kEINVAL : Errno::kOk;
}

Errno SstReader::Cursor::next(sim::SimTime& t) {
  if (pos_ + 1 < entries_.size()) {
    ++pos_;
    return Errno::kOk;
  }
  return load_next_block(t);
}

SstReader::Cursor SstReader::seek(sim::SimTime& t, std::string_view start,
                                  Errno* err) {
  if (err) *err = Errno::kOk;
  Cursor c;
  c.sst_ = this;
  // First block whose last key >= start.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), start,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  c.block_idx_ = static_cast<std::size_t>(it - index_.begin());
  const Errno e = c.load_next_block(t);
  if (e != Errno::kOk) {
    if (err) *err = e;
    c.entries_.clear();
    return c;
  }
  // Skip entries below the start key within the block.
  while (c.valid() && c.key().size() >= 8 &&
         MemTable::user_key_of(c.key()) < start) {
    const Errno e2 = c.next(t);
    if (e2 != Errno::kOk) {
      if (err) *err = e2;
      c.entries_.clear();
      return c;
    }
  }
  return c;
}

}  // namespace deepnote::storage::kvdb
