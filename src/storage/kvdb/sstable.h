// Sorted string table (SST) files on extfs.
//
// File layout:
//   [data block]*            entries in internal-key order
//   [filter block]           serialized bloom filter over user keys
//   [index block]            per data block: offset/size/last user key
//   [props]                  smallest & largest user key, max sequence
//   [footer, 64 bytes]       offsets/sizes + magic
//
// Data block entry: u16 klen | u32 vlen | u64 seq | u8 type | key | value.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/extfs.h"
#include "storage/kvdb/bloom.h"
#include "storage/kvdb/memtable.h"

namespace deepnote::storage::kvdb {

inline constexpr std::uint32_t kSstMagic = 0x53535431;  // "SST1"
inline constexpr std::uint32_t kTargetDataBlockBytes = 4096;

struct SstFooter {
  std::uint64_t index_offset = 0;
  std::uint32_t index_size = 0;
  std::uint64_t filter_offset = 0;
  std::uint32_t filter_size = 0;
  std::uint64_t props_offset = 0;
  std::uint32_t props_size = 0;
  std::uint64_t entry_count = 0;
  std::uint64_t max_sequence = 0;
  std::uint32_t magic = kSstMagic;
};

/// Builds an SST in memory; entries must arrive in internal-key order
/// (ascending user key, newest first within a user key).
class SstBuilder {
 public:
  explicit SstBuilder(std::size_t expected_keys);

  void add(std::string_view user_key, const MemEntry& entry);

  /// Finalize and write to a fresh file at `path`. Durable (fsynced) on
  /// success. Returns the fs error and completion time.
  FsResult write_to(ExtFs& fs, sim::SimTime now, std::string_view path);

  std::uint64_t entry_count() const { return entry_count_; }
  std::uint64_t data_bytes() const { return data_.size(); }

 private:
  void finish_block();

  std::vector<std::byte> data_;         // concatenated data blocks
  std::vector<std::byte> current_;      // block under construction
  struct IndexEntry {
    std::uint64_t offset;
    std::uint32_t size;
    std::string last_key;
  };
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  std::string smallest_;
  std::string largest_;
  std::string block_last_key_;
  std::uint64_t entry_count_ = 0;
  std::uint64_t max_sequence_ = 0;
  std::string last_user_key_seen_;  // dedup keys for the bloom filter
};

struct SstGetResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  LookupState state = LookupState::kMissing;
  std::string value;
};

/// Reader: index + bloom are loaded once at open (table cache); point
/// lookups read one data block from the filesystem.
class SstReader {
 public:
  struct OpenResult {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    std::unique_ptr<SstReader> reader;
    bool ok() const { return err == Errno::kOk; }
  };
  static OpenResult open(ExtFs& fs, sim::SimTime now, std::string_view path);

  SstGetResult get(sim::SimTime now, std::string_view user_key);

  /// Stream every entry in order (used by compaction). Reads the whole
  /// data area; returns err/time.
  FsResult scan(sim::SimTime now,
                const std::function<void(std::string_view user_key,
                                         const MemEntry&)>& fn);

  /// Stream entries with user key >= start, using the block index to
  /// skip ahead; the visitor returns false to stop (e.g. past the range
  /// end). Only touched blocks are read.
  FsResult scan_from(sim::SimTime now, std::string_view start,
                     const std::function<bool(std::string_view user_key,
                                              const MemEntry&)>& fn);

  /// Streaming cursor over the file's entries in internal-key order.
  /// Blocks are read lazily through the filesystem; the shared clock `t`
  /// advances with each block read.
  class Cursor {
   public:
    Cursor() = default;
    bool valid() const { return pos_ < entries_.size(); }
    const std::string& key() const { return entries_[pos_].first; }
    const MemEntry& entry() const { return entries_[pos_].second; }
    /// Advance; loads the next block when the current one is exhausted.
    /// Returns kEIO on a device error (cursor becomes invalid).
    Errno next(sim::SimTime& t);

   private:
    friend class SstReader;
    SstReader* sst_ = nullptr;
    std::size_t block_idx_ = 0;  ///< next index entry to load
    std::vector<std::pair<std::string, MemEntry>> entries_;
    std::size_t pos_ = 0;

    Errno load_next_block(sim::SimTime& t);
  };
  /// Cursor positioned at the first entry with user key >= `start`.
  Cursor seek(sim::SimTime& t, std::string_view start, Errno* err);

  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  std::uint64_t max_sequence() const { return max_sequence_; }
  std::uint64_t entry_count() const { return entry_count_; }
  const std::string& path() const { return path_; }

 private:
  SstReader(ExtFs& fs, std::string path, std::uint32_t inode);

  ExtFs& fs_;
  std::string path_;
  std::uint32_t inode_;
  struct IndexEntry {
    std::uint64_t offset;
    std::uint32_t size;
    std::string last_key;
  };
  std::vector<IndexEntry> index_;
  std::optional<BloomFilter> bloom_;
  std::string smallest_;
  std::string largest_;
  std::uint64_t entry_count_ = 0;
  std::uint64_t max_sequence_ = 0;
};

}  // namespace deepnote::storage::kvdb
