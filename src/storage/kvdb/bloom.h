// Bloom filter for SST files (double-hashing scheme, ~10 bits/key).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace deepnote::storage::kvdb {

class BloomFilter {
 public:
  /// Build a filter sized for `expected_keys` at `bits_per_key`.
  explicit BloomFilter(std::size_t expected_keys, int bits_per_key = 10);
  /// Reconstruct from serialized bytes.
  explicit BloomFilter(std::vector<std::uint8_t> bits, int num_probes);

  void add(std::string_view key);
  bool may_contain(std::string_view key) const;

  const std::vector<std::uint8_t>& bits() const { return bits_; }
  int num_probes() const { return num_probes_; }

  /// Serialize: [u32 probes][bits...].
  std::vector<std::uint8_t> serialize() const;
  static BloomFilter deserialize(const std::uint8_t* data, std::size_t len);

 private:
  static std::uint64_t hash(std::string_view key);

  std::vector<std::uint8_t> bits_;
  int num_probes_;
};

}  // namespace deepnote::storage::kvdb
