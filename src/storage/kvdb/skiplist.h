// Deterministic skiplist used by the memtable.
//
// Keys are byte strings ordered lexicographically; values are opaque.
// Duplicate keys are allowed (callers append a sequence suffix); insert
// places equal keys adjacent in insertion order.
//
// Nodes live in a bump arena: one allocation holds the node, its next
// pointers, and a copy of the key bytes. Nothing is freed individually —
// the memtable drops the whole list at flush — so insert does zero
// per-node heap allocations beyond the amortised arena block.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/rng.h"

namespace deepnote::storage::kvdb {

template <typename Value, typename Less = std::less<std::string_view>>
class SkipList {
 private:
  struct Node;  // defined below; forward-declared for Cursor

 public:
  explicit SkipList(std::uint64_t seed = 0x5eedull, Less less = Less{})
      : rng_(seed), less_(less) {
    head_ = make_node({}, Value{}, kMaxHeight);
    rightmost_.fill(head_);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    // Arena blocks free the storage; only the non-trivial members (Value,
    // and nothing else) need their destructors run, via the level-0 chain.
    Node* x = head_;
    while (x != nullptr) {
      Node* next = x->next[0];
      x->~Node();
      x = next;
    }
  }

  void insert(std::string_view key, Value value) {
    std::array<Node*, kMaxHeight> prev;
    if (tail_ != nullptr && less_(tail_->key(), key)) {
      // Append fast path: the key is strictly greater than every stored
      // key, so the predecessor at each level is the rightmost node there
      // — no walk needed. Equal keys never take this branch, preserving
      // insertion-order adjacency of duplicates.
      prev = rightmost_;
    } else {
      Node* x = find_greater_or_equal(key, &prev);
      (void)x;
      for (int i = height_; i < kMaxHeight; ++i) prev[i] = head_;
    }
    const int height = random_height();
    if (height > height_) height_ = height;
    Node* raw = make_node(key, std::move(value), height);
    for (int i = 0; i < height; ++i) {
      raw->next[i] = prev[i]->next[i];
      prev[i]->next[i] = raw;
      if (raw->next[i] == nullptr) rightmost_[i] = raw;
    }
    if (raw->next[0] == nullptr) tail_ = raw;
    ++size_;
  }

  /// First node with node.key >= key, nullptr if none.
  const Value* find_first_at_least(std::string_view key,
                                   std::string_view* found_key = nullptr)
      const {
    Node* x = find_greater_or_equal(key, nullptr);
    if (!x) return nullptr;
    if (found_key) *found_key = x->key();
    return &x->value;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order traversal.
  void for_each(const std::function<void(std::string_view, const Value&)>&
                    fn) const {
    for (Node* x = head_->next[0]; x != nullptr; x = x->next[0]) {
      fn(x->key(), x->value);
    }
  }

  /// In-order traversal starting at the first key >= `from`; the visitor
  /// returns false to stop.
  void for_each_from(
      std::string_view from,
      const std::function<bool(std::string_view, const Value&)>& fn)
      const {
    for (Node* x = find_greater_or_equal(from, nullptr); x != nullptr;
         x = x->next[0]) {
      if (!fn(x->key(), x->value)) return;
    }
  }

  /// Forward cursor over the list (O(log n) seek, O(1) next).
  class Cursor {
   public:
    Cursor() = default;
    bool valid() const { return node_ != nullptr; }
    std::string_view key() const { return node_->key(); }
    const Value& value() const { return node_->value; }
    void next() { node_ = node_->next[0]; }

   private:
    friend class SkipList;
    explicit Cursor(const Node* node) : node_(node) {}
    const Node* node_ = nullptr;
  };

  /// Cursor at the first key >= `from` (invalid when past the end).
  Cursor cursor_at(std::string_view from) const {
    return Cursor{find_greater_or_equal(from, nullptr)};
  }

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    Value value;
    Node** next = nullptr;        // `height` pointers, in the same arena block
    const char* key_data = nullptr;
    std::uint32_t key_len = 0;
    std::string_view key() const { return {key_data, key_len}; }
  };

  static constexpr std::size_t kArenaBlock = std::size_t{1} << 16;

  char* arena_alloc(std::size_t bytes) {
    bytes = (bytes + 7) & ~std::size_t{7};
    if (bytes > arena_left_) {
      const std::size_t block = bytes > kArenaBlock ? bytes : kArenaBlock;
      arena_.push_back(std::make_unique<char[]>(block));
      arena_ptr_ = arena_.back().get();
      arena_left_ = block;
    }
    char* p = arena_ptr_;
    arena_ptr_ += bytes;
    arena_left_ -= bytes;
    return p;
  }

  Node* make_node(std::string_view key, Value value, int height) {
    const std::size_t node_sz = (sizeof(Node) + 7) & ~std::size_t{7};
    const std::size_t ptr_sz =
        sizeof(Node*) * static_cast<std::size_t>(height);
    char* mem = arena_alloc(node_sz + ptr_sz + key.size());
    Node* n = new (mem) Node;
    n->value = std::move(value);
    n->next = reinterpret_cast<Node**>(mem + node_sz);
    std::fill(n->next, n->next + height, nullptr);
    char* kd = mem + node_sz + ptr_sz;
    if (!key.empty()) std::memcpy(kd, key.data(), key.size());
    n->key_data = kd;
    n->key_len = static_cast<std::uint32_t>(key.size());
    return n;
  }

  int random_height() {
    int h = 1;
    while (h < kMaxHeight && (rng_.next_u64() & 3u) == 0) ++h;  // p = 1/4
    return h;
  }

  Node* find_greater_or_equal(std::string_view key,
                              std::array<Node*, kMaxHeight>* prev) const {
    Node* x = head_;
    int level = height_ - 1;
    while (true) {
      Node* next = x->next[static_cast<std::size_t>(level)];
      if (next != nullptr && less_(next->key(), key)) {
        x = next;
      } else {
        if (prev) (*prev)[static_cast<std::size_t>(level)] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  mutable sim::Rng rng_;
  Less less_;
  Node* head_ = nullptr;
  std::vector<std::unique_ptr<char[]>> arena_;
  char* arena_ptr_ = nullptr;
  std::size_t arena_left_ = 0;
  int height_ = 1;
  std::size_t size_ = 0;
  // Append fast-path state: rightmost node per level (head when the level
  // is empty) and the overall last node. Sequential inserts — the fillseq
  // hot path, and the common case with sequence-suffixed internal keys —
  // skip the O(log n) walk entirely.
  std::array<Node*, kMaxHeight> rightmost_{};
  Node* tail_ = nullptr;
};

}  // namespace deepnote::storage::kvdb
