// Deterministic skiplist used by the memtable.
//
// Keys are byte strings ordered lexicographically; values are opaque.
// Duplicate keys are allowed (callers append a sequence suffix); insert
// places equal keys adjacent in insertion order.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.h"

namespace deepnote::storage::kvdb {

template <typename Value, typename Less = std::less<std::string_view>>
class SkipList {
 private:
  struct Node;  // defined below; forward-declared for Cursor

 public:
  explicit SkipList(std::uint64_t seed = 0x5eedull, Less less = Less{})
      : rng_(seed), less_(less) {
    head_ = make_node({}, Value{}, kMaxHeight);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  void insert(std::string key, Value value) {
    std::array<Node*, kMaxHeight> prev;
    Node* x = find_greater_or_equal(key, &prev);
    (void)x;
    const int height = random_height();
    if (height > height_) {
      for (int i = height_; i < height; ++i) prev[i] = head_.get();
      height_ = height;
    }
    auto node = make_node(std::move(key), std::move(value), height);
    Node* raw = node.get();
    nodes_.push_back(std::move(node));
    for (int i = 0; i < height; ++i) {
      raw->next[i] = prev[i]->next[i];
      prev[i]->next[i] = raw;
    }
    ++size_;
  }

  /// First node with node.key >= key, nullptr if none.
  const Value* find_first_at_least(std::string_view key,
                                   std::string_view* found_key = nullptr)
      const {
    Node* x = find_greater_or_equal(key, nullptr);
    if (!x) return nullptr;
    if (found_key) *found_key = x->key;
    return &x->value;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order traversal.
  void for_each(const std::function<void(const std::string&, const Value&)>&
                    fn) const {
    for (Node* x = head_->next[0]; x != nullptr; x = x->next[0]) {
      fn(x->key, x->value);
    }
  }

  /// In-order traversal starting at the first key >= `from`; the visitor
  /// returns false to stop.
  void for_each_from(
      std::string_view from,
      const std::function<bool(const std::string&, const Value&)>& fn)
      const {
    for (Node* x = find_greater_or_equal(from, nullptr); x != nullptr;
         x = x->next[0]) {
      if (!fn(x->key, x->value)) return;
    }
  }

  /// Forward cursor over the list (O(log n) seek, O(1) next).
  class Cursor {
   public:
    Cursor() = default;
    bool valid() const { return node_ != nullptr; }
    const std::string& key() const { return node_->key; }
    const Value& value() const { return node_->value; }
    void next() { node_ = node_->next[0]; }

   private:
    friend class SkipList;
    explicit Cursor(const Node* node) : node_(node) {}
    const Node* node_ = nullptr;
  };

  /// Cursor at the first key >= `from` (invalid when past the end).
  Cursor cursor_at(std::string_view from) const {
    return Cursor{find_greater_or_equal(from, nullptr)};
  }

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    std::string key;
    Value value;
    std::vector<Node*> next;  // size = height
  };

  std::unique_ptr<Node> make_node(std::string key, Value value, int height) {
    auto n = std::make_unique<Node>();
    n->key = std::move(key);
    n->value = std::move(value);
    n->next.assign(static_cast<std::size_t>(height), nullptr);
    return n;
  }

  int random_height() {
    int h = 1;
    while (h < kMaxHeight && (rng_.next_u64() & 3u) == 0) ++h;  // p = 1/4
    return h;
  }

  Node* find_greater_or_equal(std::string_view key,
                              std::array<Node*, kMaxHeight>* prev) const {
    Node* x = head_.get();
    int level = height_ - 1;
    while (true) {
      Node* next = x->next[static_cast<std::size_t>(level)];
      if (next != nullptr && less_(next->key, key)) {
        x = next;
      } else {
        if (prev) (*prev)[static_cast<std::size_t>(level)] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  mutable sim::Rng rng_;
  Less less_;
  std::unique_ptr<Node> head_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int height_ = 1;
  std::size_t size_ = 0;
};

}  // namespace deepnote::storage::kvdb
