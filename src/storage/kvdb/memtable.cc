#include "storage/kvdb/memtable.h"

#include <cstring>

namespace deepnote::storage::kvdb {

bool InternalKeyLess::operator()(std::string_view a,
                                 std::string_view b) const {
  const std::string_view ua = MemTable::user_key_of(a);
  const std::string_view ub = MemTable::user_key_of(b);
  if (ua != ub) return ua < ub;
  return MemTable::sequence_of(a) > MemTable::sequence_of(b);
}

std::string MemTable::internal_key(std::string_view user_key,
                                   std::uint64_t sequence) {
  // user_key + big-endian(~sequence): ascending key order, newest (highest
  // sequence) first among equal user keys.
  std::string k;
  k.reserve(user_key.size() + 8);
  k.assign(user_key);
  const std::uint64_t inv = ~sequence;
  for (int shift = 56; shift >= 0; shift -= 8) {
    k.push_back(static_cast<char>((inv >> shift) & 0xff));
  }
  return k;
}

std::string_view MemTable::build_key(std::string_view user_key,
                                     std::uint64_t sequence) const {
  // Same encoding as internal_key(), into a buffer whose capacity sticks
  // across calls.
  key_scratch_.assign(user_key);
  const std::uint64_t inv = ~sequence;
  for (int shift = 56; shift >= 0; shift -= 8) {
    key_scratch_.push_back(static_cast<char>((inv >> shift) & 0xff));
  }
  return key_scratch_;
}

std::string_view MemTable::user_key_of(std::string_view internal_key) {
  return internal_key.substr(0, internal_key.size() - 8);
}

std::uint64_t MemTable::sequence_of(std::string_view internal_key) {
  std::uint64_t inv = 0;
  const auto* p = internal_key.data() + internal_key.size() - 8;
  for (int i = 0; i < 8; ++i) {
    inv = (inv << 8) | static_cast<unsigned char>(p[i]);
  }
  return ~inv;
}

void MemTable::put(std::string_view key, std::string_view value,
                   std::uint64_t sequence) {
  MemEntry e;
  e.type = EntryType::kPut;
  e.sequence = sequence;
  e.value.assign(value);
  bytes_ += key.size() + value.size() + 48;  // node overhead estimate
  list_.insert(build_key(key, sequence), std::move(e));
}

void MemTable::del(std::string_view key, std::uint64_t sequence) {
  MemEntry e;
  e.type = EntryType::kDelete;
  e.sequence = sequence;
  bytes_ += key.size() + 48;
  list_.insert(build_key(key, sequence), std::move(e));
}

LookupState MemTable::get(std::string_view key, std::string* value_out) const {
  // The newest entry for `key` sorts first among internal keys with this
  // user key; seek to (key, max sequence).
  const std::string_view seek = build_key(key, ~std::uint64_t{0});
  std::string_view found_key;
  const MemEntry* e = list_.find_first_at_least(seek, &found_key);
  if (e == nullptr) return LookupState::kMissing;
  if (user_key_of(found_key) != key) return LookupState::kMissing;
  if (e->type == EntryType::kDelete) return LookupState::kDeleted;
  if (value_out) *value_out = e->value;
  return LookupState::kFound;
}

void MemTable::for_each(
    const std::function<void(std::string_view, const MemEntry&)>& fn) const {
  list_.for_each([&](std::string_view ikey, const MemEntry& e) {
    fn(user_key_of(ikey), e);
  });
}

void MemTable::for_each_from(
    std::string_view from,
    const std::function<bool(std::string_view, const MemEntry&)>& fn) const {
  // Seek to (from, max sequence): the first internal key of `from`.
  const std::string_view seek = build_key(from, ~std::uint64_t{0});
  list_.for_each_from(seek, [&](std::string_view ikey, const MemEntry& e) {
    return fn(user_key_of(ikey), e);
  });
}


MemTable::Cursor MemTable::cursor_at(std::string_view user_key_from) const {
  return Cursor{
      list_.cursor_at(build_key(user_key_from, ~std::uint64_t{0}))};
}

}  // namespace deepnote::storage::kvdb
