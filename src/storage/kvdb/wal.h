// Write-ahead log on extfs.
//
// Record: u32 payload_len | payload | u64 fnv1a(payload)
// Payload: u64 seq | u8 type | u16 klen | u32 vlen | key | value.
//
// Appends are buffered filesystem writes (fast); sync() runs fsync.
// RocksDB syncs the old WAL when switching memtables — if that sync hits
// a dead drive, the store fails with its "sync WAL" fatal error, which is
// the RocksDB crash mode the paper reports (Table 3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/extfs.h"
#include "storage/kvdb/memtable.h"

namespace deepnote::storage::kvdb {

class Wal {
 public:
  struct OpenResult {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    std::unique_ptr<Wal> wal;
    bool ok() const { return err == Errno::kOk; }
  };
  /// Create a fresh WAL file at `path` (must not exist).
  static OpenResult create(ExtFs& fs, sim::SimTime now, std::string_view path);

  FsResult append(sim::SimTime now, EntryType type, std::string_view key,
                  std::string_view value, std::uint64_t sequence);
  FsResult sync(sim::SimTime now);

  /// Replay a WAL file, invoking fn per valid record; stops quietly at the
  /// first torn/corrupt record (normal crash tail).
  struct ReplayResult {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    std::uint64_t records = 0;
    std::uint64_t max_sequence = 0;
  };
  static ReplayResult replay(
      ExtFs& fs, sim::SimTime now, std::string_view path,
      const std::function<void(EntryType, std::string_view key,
                               std::string_view value,
                               std::uint64_t sequence)>& fn);

  std::uint64_t bytes_appended() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  Wal(ExtFs& fs, std::string path, std::uint32_t inode);

  ExtFs& fs_;
  std::string path_;
  std::uint32_t inode_;
  std::uint64_t offset_ = 0;
  // Reusable record-build scratch; append() is the put hot path and the
  // buffer keeps its capacity across calls.
  std::vector<std::byte> record_scratch_;
};

}  // namespace deepnote::storage::kvdb
