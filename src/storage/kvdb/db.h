// KvDb: a RocksDB-like LSM key-value store on extfs.
//
// Architecture: WAL + memtable (skiplist); a full memtable is swapped out
// as an immutable memtable and flushed to an L0 SST by a *background*
// flush job (driven by a daemon actor); L0 files compact into a sorted,
// non-overlapping L1. Point lookups consult memtable -> immutable ->
// L0 (newest first) -> L1 with bloom filters.
//
// Backpressure mirrors RocksDB's write stalls: while a flush is pending
// and the active memtable is full again, writes return kEAGAIN; if the
// flush remains stuck past a grace period (the flush thread wedged on a
// dead device), reads stall too — the whole store wedges behind the
// commit path, which is what the paper's Table 2 observes (0 ops/s).
//
// Failure semantics mirror RocksDB's: when a WAL sync or a flush hits an
// I/O error the store enters a fatal state and refuses further writes —
// the paper's Table 3 reports RocksDB crashing with a WAL-sync failure
// ("sysc_without_flush_called") when the drive stops serving I/O.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/extfs.h"
#include "storage/kvdb/iterator.h"
#include "storage/kvdb/memtable.h"
#include "storage/kvdb/sstable.h"
#include "storage/kvdb/wal.h"

namespace deepnote::storage::kvdb {

struct DbConfig {
  std::string root = "/db";
  std::uint64_t write_buffer_bytes = 16ull << 20;
  std::size_t l0_compaction_trigger = 4;
  std::uint64_t target_sst_bytes = 16ull << 20;
  /// CPU cost per operation (key comparison, skiplist walk, checksum).
  sim::Duration put_cpu = sim::Duration::from_micros(4);
  sim::Duration get_cpu = sim::Duration::from_micros(4);
  /// How long a flush may stay pending before reads stall behind it.
  sim::Duration stall_grace = sim::Duration::from_seconds(1.0);
  std::uint64_t seed = 0xdbdbull;
};

struct DbResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  bool ok() const { return err == Errno::kOk; }
};

struct DbGetResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  bool found = false;
  std::string value;
  bool ok() const { return err == Errno::kOk; }
};

struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_syncs = 0;
  std::uint64_t memtable_hits = 0;
  std::uint64_t sst_block_reads = 0;
  std::uint64_t stalled_writes = 0;
  std::uint64_t stalled_reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class Db {
 public:
  struct OpenResult {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    std::unique_ptr<Db> db;
    std::uint64_t wal_records_recovered = 0;
    /// Leftovers of failed/crashed flushes deleted during recovery; their
    /// contents were still covered by a live WAL (see open_sst).
    std::uint64_t corrupt_ssts_removed = 0;
    /// Orphaned compaction outputs found overlapping surviving L1 inputs
    /// after a crash; demoted to L0 until the next compaction.
    std::uint64_t l1_overlaps_demoted = 0;
    bool ok() const { return err == Errno::kOk; }
  };
  static OpenResult open(ExtFs& fs, sim::SimTime now, DbConfig config = {});

  /// Writes return kEAGAIN (retry later) while the store is stalled on a
  /// pending flush; reads return kEAGAIN once the stall outlives the
  /// grace period.
  DbResult put(sim::SimTime now, std::string_view key, std::string_view value);
  DbResult del(sim::SimTime now, std::string_view key);
  DbGetResult get(sim::SimTime now, std::string_view key);

  /// Ordered range scan over [start_key, end_key): merges every level,
  /// newest version wins, tombstones hidden. The visitor may stop the
  /// scan early by returning false. An empty end_key means "to the end".
  ScanResult scan(sim::SimTime now, std::string_view start_key,
                  std::string_view end_key, const ScanVisitor& visit);

  /// Offline-style integrity check of every SST: entries in internal-key
  /// order, keys within the file's [smallest, largest] bounds, entry
  /// counts matching the footer, every key present in the bloom filter.
  struct VerifyReport {
    Errno err = Errno::kOk;  ///< kEIO when the check itself failed
    sim::SimTime done = sim::SimTime::zero();
    std::vector<std::string> problems;
    bool clean() const { return err == Errno::kOk && problems.empty(); }
  };
  VerifyReport verify_integrity(sim::SimTime now);

  /// Background flush job, driven by a daemon actor.
  bool flush_pending() const { return immutable_ != nullptr; }
  DbResult do_flush(sim::SimTime now);

  /// Foreground flush: swap + flush everything now (setup/teardown).
  DbResult flush(sim::SimTime now);
  /// Sync the WAL and flush; the object must not be used afterward.
  DbResult close(sim::SimTime now);

  /// Fatal-state inspection: once fatal, every operation fails with kEIO.
  bool fatal() const { return fatal_; }
  const std::string& fatal_message() const { return fatal_message_; }
  sim::SimTime fatal_time() const { return fatal_time_; }

  const DbStats& stats() const { return stats_; }
  std::uint64_t memtable_bytes() const {
    return memtable_ ? memtable_->approximate_bytes() : 0;
  }
  std::size_t l0_count() const { return l0_.size(); }
  std::size_t l1_count() const { return l1_.size(); }
  std::uint64_t last_sequence() const { return last_sequence_; }

 private:
  Db(ExtFs& fs, DbConfig config);

  std::string file_path(std::uint64_t number, const char* ext) const;
  void enter_fatal(sim::SimTime when, std::string message);

  /// Swap the full memtable + WAL into the immutable slot; the flush
  /// daemon persists them.
  DbResult switch_memtable(sim::SimTime now);
  DbResult compact(sim::SimTime now);

  ExtFs& fs_;
  DbConfig config_;
  sim::Rng rng_;

  std::unique_ptr<MemTable> memtable_;
  std::unique_ptr<MemTable> immutable_;   // pending flush
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Wal> old_wal_;          // WAL of the immutable memtable
  std::uint64_t wal_number_ = 0;
  std::uint64_t old_wal_number_ = 0;
  sim::SimTime flush_pending_since_ = sim::SimTime::zero();
  std::vector<std::unique_ptr<SstReader>> l0_;  // newest first
  std::vector<std::unique_ptr<SstReader>> l1_;  // sorted by smallest key

  std::uint64_t next_file_number_ = 1;
  std::uint64_t last_sequence_ = 0;

  bool fatal_ = false;
  std::string fatal_message_;
  sim::SimTime fatal_time_ = sim::SimTime::zero();

  DbStats stats_;
};

}  // namespace deepnote::storage::kvdb
