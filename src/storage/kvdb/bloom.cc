#include "storage/kvdb/bloom.h"

#include <algorithm>
#include <cstring>

namespace deepnote::storage::kvdb {

BloomFilter::BloomFilter(std::size_t expected_keys, int bits_per_key) {
  std::size_t bits = std::max<std::size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  num_probes_ = std::clamp(
      static_cast<int>(bits_per_key * 0.69), 1, 30);  // ln 2 * bits/key
}

BloomFilter::BloomFilter(std::vector<std::uint8_t> bits, int num_probes)
    : bits_(std::move(bits)), num_probes_(num_probes) {}

std::uint64_t BloomFilter::hash(std::string_view key) {
  // FNV-1a 64.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void BloomFilter::add(std::string_view key) {
  const std::uint64_t h = hash(key);
  std::uint64_t h1 = h;
  const std::uint64_t h2 = (h >> 33) | (h << 31);
  const std::uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const std::uint64_t bit = h1 % nbits;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    h1 += h2;
  }
}

bool BloomFilter::may_contain(std::string_view key) const {
  const std::uint64_t h = hash(key);
  std::uint64_t h1 = h;
  const std::uint64_t h2 = (h >> 33) | (h << 31);
  const std::uint64_t nbits = bits_.size() * 8;
  if (nbits == 0) return true;
  for (int i = 0; i < num_probes_; ++i) {
    const std::uint64_t bit = h1 % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h1 += h2;
  }
  return true;
}

std::vector<std::uint8_t> BloomFilter::serialize() const {
  std::vector<std::uint8_t> out(4 + bits_.size());
  const auto probes = static_cast<std::uint32_t>(num_probes_);
  std::memcpy(out.data(), &probes, 4);
  std::memcpy(out.data() + 4, bits_.data(), bits_.size());
  return out;
}

BloomFilter BloomFilter::deserialize(const std::uint8_t* data,
                                     std::size_t len) {
  std::uint32_t probes = 1;
  if (len >= 4) std::memcpy(&probes, data, 4);
  std::vector<std::uint8_t> bits;
  if (len > 4) bits.assign(data + 4, data + len);
  return BloomFilter(std::move(bits), static_cast<int>(probes));
}

}  // namespace deepnote::storage::kvdb
