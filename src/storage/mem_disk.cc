#include "storage/mem_disk.h"

#include <cstring>
#include <stdexcept>

namespace deepnote::storage {

MemDisk::MemDisk(std::uint64_t total_sectors, sim::Duration latency)
    : total_sectors_(total_sectors), latency_(latency) {}

void MemDisk::fail_after(std::uint64_t count, unsigned ops) {
  fail_after_ = count;
  fail_ops_ = ops;
  matched_ops_ = 0;
  first_failure_.reset();
}

void MemDisk::clear_fault() {
  failing_ = false;
  fail_after_ = ~0ull;
  fail_ops_ = fault_ops::kAll;
  matched_ops_ = 0;
  first_failure_.reset();
}

bool MemDisk::should_fail(DiskOpKind kind, std::uint64_t lba,
                          std::uint32_t sector_count) {
  const std::uint64_t index = ops_++;
  switch (kind) {
    case DiskOpKind::kRead: ++reads_; break;
    case DiskOpKind::kWrite: ++writes_; break;
    case DiskOpKind::kFlush: ++flushes_; break;
  }
  bool fail = failing_;
  if (!fail && (fail_ops_ & fault_ops::mask_of(kind)) != 0) {
    fail = matched_ops_++ >= fail_after_;
  }
  if (fail && !first_failure_) {
    first_failure_ = FailedOp{index, kind, lba, sector_count};
  }
  return fail;
}

BlockIo MemDisk::read(sim::SimTime now, std::uint64_t lba,
                      std::uint32_t sector_count, std::span<std::byte> out) {
  if (lba + sector_count > total_sectors_) {
    throw std::out_of_range("MemDisk::read beyond device");
  }
  if (out.size() != static_cast<std::size_t>(sector_count) * kBlockSectorSize) {
    throw std::invalid_argument("MemDisk::read size mismatch");
  }
  if (should_fail(DiskOpKind::kRead, lba, sector_count)) {
    return BlockIo{BlockStatus::kIoError, now + latency_};
  }
  for (std::uint32_t s = 0; s < sector_count; ++s) {
    const std::uint64_t sector = lba + s;
    const auto it = chunks_.find(sector / kSectorsPerChunk);
    auto* dst = out.data() + static_cast<std::size_t>(s) * kBlockSectorSize;
    if (it == chunks_.end()) {
      std::memset(dst, 0, kBlockSectorSize);
    } else {
      std::memcpy(dst,
                  it->second.data() +
                      (sector % kSectorsPerChunk) * kBlockSectorSize,
                  kBlockSectorSize);
    }
  }
  return BlockIo{BlockStatus::kOk, now + latency_};
}

BlockIo MemDisk::write(sim::SimTime now, std::uint64_t lba,
                       std::uint32_t sector_count,
                       std::span<const std::byte> in) {
  if (lba + sector_count > total_sectors_) {
    throw std::out_of_range("MemDisk::write beyond device");
  }
  if (in.size() != static_cast<std::size_t>(sector_count) * kBlockSectorSize) {
    throw std::invalid_argument("MemDisk::write size mismatch");
  }
  if (should_fail(DiskOpKind::kWrite, lba, sector_count)) {
    return BlockIo{BlockStatus::kIoError, now + latency_};
  }
  for (std::uint32_t s = 0; s < sector_count; ++s) {
    const std::uint64_t sector = lba + s;
    auto& chunk = chunks_[sector / kSectorsPerChunk];
    if (chunk.empty()) {
      chunk.assign(static_cast<std::size_t>(kSectorsPerChunk) *
                       kBlockSectorSize,
                   std::byte{0});
    }
    std::memcpy(chunk.data() +
                    (sector % kSectorsPerChunk) * kBlockSectorSize,
                in.data() + static_cast<std::size_t>(s) * kBlockSectorSize,
                kBlockSectorSize);
  }
  return BlockIo{BlockStatus::kOk, now + latency_};
}

BlockIo MemDisk::flush(sim::SimTime now) {
  if (should_fail(DiskOpKind::kFlush, 0, 0)) {
    return BlockIo{BlockStatus::kIoError, now + latency_};
  }
  return BlockIo{BlockStatus::kOk, now + latency_};
}

}  // namespace deepnote::storage
