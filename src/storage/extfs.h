// extfs: an ext4-like journaling filesystem on a BlockDevice.
//
// Features modelled after ext4's data=ordered mode:
//  * metadata (superblock, bitmaps, inode table, indirect blocks,
//    directory blocks) is journaled through a JBD2-style physical journal
//    (journal.h) and checkpointed home after each commit;
//  * file data is buffered in dirty pages, flushed before the journal
//    commit (ordered mode) and throttled against a global dirty limit;
//  * fsync writes the file's dirty pages, commits the running
//    transaction and issues a device cache flush;
//  * a commit failure aborts the journal with error -5 (EIO) and the
//    filesystem degrades to read-only — the crash signature reported in
//    the paper's Table 3.
//
// All operations run in virtual time: they take the caller's SimTime and
// report their completion time. Background work (the 5-second commit
// timer, dirty writeback) is exposed via commit_due()/commit() and
// writeback() so an experiment can drive it as a daemon actor.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/block_device.h"
#include "storage/errors.h"
#include "storage/extfs_format.h"
#include "storage/journal.h"

namespace deepnote::storage {

struct FsResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  bool ok() const { return err == Errno::kOk; }
};

struct FsIoResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  std::uint64_t bytes = 0;
  bool ok() const { return err == Errno::kOk; }
};

struct FsStatResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  InodeKind kind = InodeKind::kFree;
  std::uint64_t size = 0;
  std::uint16_t link_count = 0;
  bool ok() const { return err == Errno::kOk; }
};

struct FsLookupResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  std::uint32_t inode = 0;
  bool ok() const { return err == Errno::kOk; }
};

struct FsDirEntry {
  std::string name;
  std::uint32_t inode = 0;
  InodeKind kind = InodeKind::kFree;
};

struct FsReaddirResult {
  Errno err = Errno::kOk;
  sim::SimTime done = sim::SimTime::zero();
  std::vector<FsDirEntry> entries;
  bool ok() const { return err == Errno::kOk; }
};

struct MkfsOptions {
  std::uint32_t journal_blocks = 1024;  ///< 4 MiB journal
  std::uint32_t num_inodes = 8192;
  /// Optionally cap the filesystem to this many blocks (0 = whole device).
  std::uint32_t total_blocks = 0;
};

struct ExtFsConfig {
  sim::Duration commit_interval = sim::Duration::from_seconds(5.0);
  std::uint64_t dirty_limit_bytes = 64ull << 20;
  /// Clean page cache (pages kept in memory after writeback / read).
  std::uint64_t page_cache_bytes = 256ull << 20;
  /// CPU cost charged per filesystem call (path walk, copies).
  sim::Duration op_cpu_cost = sim::Duration::from_micros(2);
  /// Force a commit once the running transaction holds this many blocks.
  std::uint32_t txn_block_limit = 256;
};

struct ExtFsStats {
  std::uint64_t commits = 0;
  std::uint64_t checkpoint_blocks = 0;
  std::uint64_t data_pages_written = 0;
  std::uint64_t throttle_stalls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class ExtFs {
 public:
  /// Format the device. Returns when the empty filesystem is durable.
  static FsResult mkfs(BlockDevice& device, sim::SimTime now,
                       MkfsOptions options = {});

  struct MountOutcome {
    Errno err = Errno::kOk;
    sim::SimTime done = sim::SimTime::zero();
    std::unique_ptr<ExtFs> fs;
    std::uint64_t replayed_transactions = 0;
    bool ok() const { return err == Errno::kOk; }
  };
  /// Mount: read the superblock, replay the journal, mark the fs dirty.
  static MountOutcome mount(BlockDevice& device, sim::SimTime now,
                            ExtFsConfig config = {});

  // -- Namespace operations (absolute paths, '/'-separated). --

  FsResult create(sim::SimTime now, std::string_view path,
                  std::uint32_t* inode_out = nullptr);
  FsResult mkdir(sim::SimTime now, std::string_view path);
  /// Removes a file or an empty directory.
  FsResult unlink(sim::SimTime now, std::string_view path);
  /// Renames a file or directory. An existing file at `to` is replaced
  /// (POSIX rename semantics); an existing directory is not.
  FsResult rename(sim::SimTime now, std::string_view from,
                  std::string_view to);
  FsLookupResult lookup(sim::SimTime now, std::string_view path);
  FsReaddirResult readdir(sim::SimTime now, std::string_view path);
  FsStatResult stat(sim::SimTime now, std::uint32_t inode);

  // -- File I/O (by inode number, from lookup/create). --

  FsIoResult write(sim::SimTime now, std::uint32_t inode,
                   std::uint64_t offset, std::span<const std::byte> data);
  FsIoResult read(sim::SimTime now, std::uint32_t inode, std::uint64_t offset,
                  std::span<std::byte> out);
  FsResult truncate(sim::SimTime now, std::uint32_t inode,
                    std::uint64_t new_size);
  FsResult fsync(sim::SimTime now, std::uint32_t inode);

  // -- Maintenance / daemons. --

  /// True when the periodic commit should run (interval elapsed and there
  /// is work).
  bool commit_due(sim::SimTime now) const;
  /// Ordered-mode commit: flush dirty data, journal the metadata
  /// transaction, checkpoint. Aborts the fs on journal failure.
  FsResult commit(sim::SimTime now);
  /// Background writeback step: write up to `max_bytes` of dirty data.
  FsResult writeback(sim::SimTime now, std::uint64_t max_bytes);
  /// writeback-everything + commit + flush.
  FsResult sync(sim::SimTime now);
  /// sync + mark superblock clean. The object must not be used afterward.
  FsResult unmount(sim::SimTime now);

  // -- State inspection. --

  bool read_only() const { return read_only_; }
  /// Time-aware read-only test: the abort takes effect at abort_time_.
  /// Virtual-time actors whose steps span the abort must not observe it
  /// "from the future".
  bool read_only_at(sim::SimTime now) const {
    return read_only_ && now >= abort_time_;
  }
  /// Sticky error code (-5 after a journal abort), 0 when healthy.
  int error_code() const { return error_code_; }
  /// When the journal aborted (valid only when read_only()).
  sim::SimTime abort_time() const { return abort_time_; }
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  std::uint64_t free_blocks() const { return free_blocks_; }
  std::uint64_t free_inodes() const { return free_inodes_; }
  const ExtFsStats& stats() const { return stats_; }
  const SuperblockDisk& superblock() const { return sb_; }

  /// Offline consistency check (run on an unmounted device). Returns
  /// human-readable descriptions of every inconsistency found.
  struct FsckReport {
    Errno err = Errno::kOk;  ///< kEIO if the check itself failed
    sim::SimTime done = sim::SimTime::zero();
    std::vector<std::string> problems;
    bool clean() const { return err == Errno::kOk && problems.empty(); }
  };
  static FsckReport fsck(BlockDevice& device, sim::SimTime now);

 private:
  ExtFs(BlockDevice& device, ExtFsConfig config);

  struct CachedBlock {
    std::vector<std::byte> data;
    bool dirty = false;
  };

  // Metadata block cache. ---------------------------------------------------
  struct CacheRead {
    Errno err = Errno::kOk;
    sim::SimTime done;
    CachedBlock* block = nullptr;
  };
  CacheRead load_block(sim::SimTime now, std::uint32_t block_no);
  void mark_dirty(std::uint32_t block_no);

  // Inode helpers. -----------------------------------------------------------
  struct InodeRef {
    Errno err = Errno::kOk;
    sim::SimTime done;
    InodeDisk* inode = nullptr;
    std::uint32_t block_no = 0;  ///< cache block holding the inode
  };
  InodeRef load_inode(sim::SimTime now, std::uint32_t ino);
  std::uint32_t alloc_inode(sim::SimTime& t, Errno& err);
  Errno free_inode(sim::SimTime& t, std::uint32_t ino);

  // Block allocation. ---------------------------------------------------------
  std::uint32_t alloc_block(sim::SimTime& t, Errno& err);
  Errno free_block(sim::SimTime& t, std::uint32_t block_no);

  /// Map file block index -> disk block. Returns 0 for unmapped holes
  /// (when allocate is false). Sets err on failure.
  std::uint32_t bmap(sim::SimTime& t, InodeDisk& inode, std::uint32_t ino,
                     std::uint64_t file_block, bool allocate, Errno& err);

  // Directories. ---------------------------------------------------------------
  struct PathTarget {
    Errno err = Errno::kOk;
    sim::SimTime done;
    std::uint32_t parent = 0;     ///< parent directory inode
    std::uint32_t inode = 0;      ///< 0 if the leaf does not exist
    std::string leaf;
  };
  PathTarget resolve(sim::SimTime now, std::string_view path);
  Errno dir_insert(sim::SimTime& t, std::uint32_t dir_ino,
                   std::string_view name, std::uint32_t ino, InodeKind kind);
  Errno dir_remove(sim::SimTime& t, std::uint32_t dir_ino,
                   std::string_view name);
  Errno dir_find(sim::SimTime& t, std::uint32_t dir_ino,
                 std::string_view name, std::uint32_t* out);
  Errno dir_empty(sim::SimTime& t, std::uint32_t dir_ino, bool* out);

  // Data pages. ----------------------------------------------------------------
  static std::uint64_t page_key(std::uint32_t ino, std::uint64_t fblock) {
    return (static_cast<std::uint64_t>(ino) << 32) | fblock;
  }
  Errno writeback_page(sim::SimTime& t, std::uint64_t key);
  Errno writeback_some(sim::SimTime& t, std::uint64_t max_bytes);
  Errno writeback_inode(sim::SimTime& t, std::uint32_t ino);

  /// Free every data/indirect block of an inode (truncate to 0).
  Errno release_blocks(sim::SimTime& t, InodeDisk& inode, std::uint32_t ino);

  // Commit machinery. -----------------------------------------------------------
  FsResult do_commit(sim::SimTime now);
  void abort_fs(int code, sim::SimTime when);
  Errno write_superblock(sim::SimTime& t);

  BlockDevice& dev_;
  ExtFsConfig config_;
  SuperblockDisk sb_;
  std::unique_ptr<Journal> journal_;

  std::unordered_map<std::uint32_t, CachedBlock> cache_;
  std::unordered_set<std::uint32_t> txn_blocks_;  ///< dirty metadata blocks
  /// Blocks allocated since the last successful commit. The mappings
  /// that reference them ride the running transaction; if one of their
  /// data writebacks fails and the page is dropped, committing that
  /// metadata would publish a file pointing at an unwritten (possibly
  /// reused) block — the journal must abort instead. See writeback_page.
  std::unordered_set<std::uint32_t> uncommitted_allocs_;
  /// Set when a dropped data writeback hit a block in uncommitted_allocs_.
  /// Like jbd2's sticky mapping error under data_err=abort, the violation
  /// is surfaced at the next commit, which aborts instead of publishing
  /// the mapping.
  bool ordered_data_lost_ = false;

  struct DirtyPage {
    std::uint32_t ino;
    std::uint64_t fblock;
    std::vector<std::byte> data;
  };
  std::unordered_map<std::uint64_t, DirtyPage> dirty_pages_;
  std::deque<std::uint64_t> dirty_fifo_;
  std::uint64_t dirty_bytes_ = 0;

  // Hot-path lookup memoization. Pure caches over node-stable
  // unordered_map storage: no timing or state effects, only skipped hash
  // lookups. cache_ never erases entries so hot block pointers cannot go
  // stale; hot_page_ is reset wherever dirty_pages_ erases.
  struct HotBlock {
    std::uint32_t block_no = 0;
    CachedBlock* block = nullptr;
  };
  std::array<HotBlock, 2> hot_blocks_{};
  std::uint32_t hot_victim_ = 0;
  std::uint64_t hot_page_key_ = 0;
  DirtyPage* hot_page_ = nullptr;
  CachedBlock* hot_lookup(std::uint32_t block_no) {
    for (const HotBlock& h : hot_blocks_) {
      if (h.block != nullptr && h.block_no == block_no) return h.block;
    }
    return nullptr;
  }
  void hot_insert(std::uint32_t block_no, CachedBlock* block) {
    hot_blocks_[hot_victim_] = HotBlock{block_no, block};
    hot_victim_ ^= 1;
  }

  /// Reusable block-sized buffer for read()'s device path.
  std::vector<std::byte> read_scratch_;

  /// Clean page cache (FIFO eviction). Holds post-writeback and read-in
  /// pages so hot files are served from memory, like the OS page cache.
  std::unordered_map<std::uint64_t, std::vector<std::byte>> clean_pages_;
  std::deque<std::uint64_t> clean_fifo_;
  std::uint64_t clean_bytes_ = 0;

  void clean_insert(std::uint64_t key, std::vector<std::byte> data);
  void drop_inode_pages(std::uint32_t ino);

  sim::SimTime last_commit_ = sim::SimTime::zero();
  sim::SimTime abort_time_ = sim::SimTime::zero();
  bool read_only_ = false;
  int error_code_ = 0;
  bool sb_dirty_ = false;

  std::uint64_t free_blocks_ = 0;
  std::uint64_t free_inodes_ = 0;
  std::uint32_t alloc_hint_ = 0;

  ExtFsStats stats_;
};

}  // namespace deepnote::storage
