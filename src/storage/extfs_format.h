// On-disk format of extfs (the ext4-like journaling filesystem).
//
// Little-endian POD structs, copied to/from 4 KiB blocks verbatim. Layout:
//
//   block 0                superblock
//   [journal_start, +journal_blocks)      physical block journal
//   [block_bitmap_start, +block_bitmap_blocks)
//   [inode_bitmap_start, +inode_bitmap_blocks)
//   [inode_table_start, +inode_table_blocks)
//   [data_start, total_blocks)            data region
//
// Inode 1 is the root directory; inode 0 is reserved as "invalid".
#pragma once

#include <cstdint>
#include <cstring>

namespace deepnote::storage {

inline constexpr std::uint32_t kFsBlockSize = 4096;
inline constexpr std::uint32_t kFsSectorsPerBlock = kFsBlockSize / 512;
inline constexpr std::uint32_t kFsMagic = 0x44454550;  // "DEEP"
inline constexpr std::uint16_t kFsVersion = 1;

inline constexpr std::uint32_t kInodeSize = 256;
inline constexpr std::uint32_t kInodesPerBlock = kFsBlockSize / kInodeSize;
inline constexpr std::uint32_t kDirectBlocks = 12;
inline constexpr std::uint32_t kPtrsPerBlock = kFsBlockSize / 4;
inline constexpr std::uint32_t kRootInode = 1;

inline constexpr std::uint32_t kDirentSize = 64;
inline constexpr std::uint32_t kDirentsPerBlock = kFsBlockSize / kDirentSize;
inline constexpr std::uint32_t kMaxNameLen = 58;

enum class InodeKind : std::uint16_t {
  kFree = 0,
  kFile = 1,
  kDirectory = 2,
};

#pragma pack(push, 1)

struct SuperblockDisk {
  std::uint32_t magic = kFsMagic;
  std::uint16_t version = kFsVersion;
  std::uint16_t clean = 1;          ///< 1 = cleanly unmounted
  std::int32_t error_code = 0;      ///< sticky error (e.g. -5 after abort)
  std::uint32_t total_blocks = 0;
  std::uint32_t journal_start = 0;
  std::uint32_t journal_blocks = 0;
  std::uint32_t block_bitmap_start = 0;
  std::uint32_t block_bitmap_blocks = 0;
  std::uint32_t inode_bitmap_start = 0;
  std::uint32_t inode_bitmap_blocks = 0;
  std::uint32_t inode_table_start = 0;
  std::uint32_t inode_table_blocks = 0;
  std::uint32_t data_start = 0;
  std::uint32_t num_inodes = 0;
  std::uint64_t journal_sequence = 1;  ///< next expected commit sequence
  std::uint32_t mount_count = 0;
};
static_assert(sizeof(SuperblockDisk) <= kFsBlockSize);

struct InodeDisk {
  std::uint16_t kind = 0;  ///< InodeKind
  std::uint16_t link_count = 0;
  std::uint64_t size_bytes = 0;
  std::uint64_t mtime_ns = 0;
  std::uint32_t direct[kDirectBlocks] = {};
  std::uint32_t indirect = 0;         ///< block of kPtrsPerBlock pointers
  std::uint32_t double_indirect = 0;  ///< block of pointer blocks
  std::uint8_t reserved[256 - 2 - 2 - 8 - 8 - 4 * kDirectBlocks - 4 - 4] = {};
};
static_assert(sizeof(InodeDisk) == kInodeSize);

struct DirentDisk {
  std::uint32_t inode = 0;  ///< 0 = slot free
  std::uint8_t name_len = 0;
  std::uint8_t kind = 0;  ///< InodeKind of the target (advisory)
  char name[kDirentSize - 6] = {};
};
static_assert(sizeof(DirentDisk) == kDirentSize);

// ---- Journal records -------------------------------------------------------

inline constexpr std::uint32_t kJournalMagic = 0x4a424432;  // "JBD2"

enum class JournalBlockType : std::uint32_t {
  kDescriptor = 1,
  kCommit = 2,
};

/// Header of a journal descriptor block. Followed (in the same block) by
/// `count` u32 home-block numbers; the next `count` journal blocks hold
/// verbatim copies of those blocks.
struct JournalDescriptorDisk {
  std::uint32_t magic = kJournalMagic;
  std::uint32_t type = static_cast<std::uint32_t>(
      JournalBlockType::kDescriptor);
  std::uint64_t sequence = 0;
  std::uint32_t count = 0;
};

struct JournalCommitDisk {
  std::uint32_t magic = kJournalMagic;
  std::uint32_t type = static_cast<std::uint32_t>(JournalBlockType::kCommit);
  std::uint64_t sequence = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a over the payload blocks
};

#pragma pack(pop)

/// Max home blocks describable by one descriptor block.
inline constexpr std::uint32_t kMaxBlocksPerTransaction =
    (kFsBlockSize - sizeof(JournalDescriptorDisk)) / 4;

/// FNV-1a 64-bit, the journal payload checksum.
inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace deepnote::storage
